package polce_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"polce"
)

func atoms(n int) []*polce.Term {
	out := make([]*polce.Term, n)
	for i := range out {
		out[i] = polce.NewTerm(polce.NewConstructor(fmt.Sprintf("a%d", i)))
	}
	return out
}

func lsNames(terms []*polce.Term) []string {
	out := make([]string, len(terms))
	for i, t := range terms {
		out[i] = t.String()
	}
	return out
}

// TestFacadeBasics drives the whole public surface once: construction,
// ingestion, least solutions, stats, graph inspection and DOT output.
func TestFacadeBasics(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 3})
		a := atoms(2)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		z := s.Fresh("Z")
		s.AddConstraint(a[0], x)
		s.AddConstraint(x, y)
		s.AddConstraint(y, z)
		s.AddConstraint(a[1], y)
		s.ComputeLeastSolutions()

		if got := lsNames(s.LeastSolution(z)); len(got) != 2 {
			t.Fatalf("%v: LS(Z) = %v, want both atoms", form, got)
		}
		if s.Form() != form {
			t.Errorf("Form() = %v, want %v", s.Form(), form)
		}
		if s.Policy() != polce.CycleOnline {
			t.Errorf("Policy() = %v", s.Policy())
		}
		if s.NumCreated() != 3 || s.Stats().VarsCreated != 3 {
			t.Errorf("%v: created %d vars, stats %d", form, s.NumCreated(), s.Stats().VarsCreated)
		}
		if s.CreatedVar(0) != x || s.Find(x) != x {
			t.Errorf("%v: handle bookkeeping broken", form)
		}
		if got := len(s.CanonicalVars()); got != 3 {
			t.Errorf("%v: %d canonical vars, want 3", form, got)
		}
		if vv, src, _ := s.EdgeCounts(); vv != 2 || src < 2 || s.TotalEdges() < 4 {
			t.Errorf("%v: edge counts vv=%d src=%d total=%d", form, vv, src, s.TotalEdges())
		}
		if st := s.CurrentGraphStats(); st.Vars != 3 {
			t.Errorf("%v: graph stats %+v", form, st)
		}
		if s.ErrorCount() != 0 || len(s.Errors()) != 0 {
			t.Errorf("%v: unexpected errors %v", form, s.Errors())
		}
		var sb strings.Builder
		if err := s.WriteDOT(&sb); err != nil || !strings.Contains(sb.String(), "digraph") {
			t.Errorf("%v: WriteDOT err=%v out=%q", form, err, sb.String())
		}
	}
}

// TestAddBatchMatchesSequential pins AddBatch's contract: a batch is
// exactly the same sequence of online AddConstraint steps under one lock.
func TestAddBatchMatchesSequential(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		a := atoms(4)
		// An index-based script, instantiated per solver: each solver gets
		// its own Var objects, so the two runs cannot contaminate each other
		// through shared variable state.
		type op struct{ atom, l, r int } // atom < 0: var l ⊆ var r
		var script []op
		for i := 0; i < 120; i++ {
			if rng.Intn(4) == 0 {
				script = append(script, op{rng.Intn(len(a)), 0, rng.Intn(30)})
			} else {
				script = append(script, op{-1, rng.Intn(30), rng.Intn(30)})
			}
		}
		build := func() (*polce.Solver, []*polce.Var, []polce.Constraint) {
			s := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed})
			vars := make([]*polce.Var, 30)
			for i := range vars {
				vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
			}
			cs := make([]polce.Constraint, len(script))
			for i, o := range script {
				if o.atom >= 0 {
					cs[i] = polce.Constraint{L: a[o.atom], R: vars[o.r]}
				} else {
					cs[i] = polce.Constraint{L: vars[o.l], R: vars[o.r]}
				}
			}
			return s, vars, cs
		}

		s1, v1, cs1 := build()
		for _, c := range cs1 {
			s1.AddConstraint(c.L, c.R)
		}
		s2, v2, cs2 := build()
		s2.AddBatch(cs2)

		if s1.Stats() != s2.Stats() {
			t.Fatalf("seed %d: stats diverge:\n%+v\n%+v", seed, s1.Stats(), s2.Stats())
		}
		for i := range v1 {
			a := fmt.Sprint(lsNames(s1.LeastSolution(v1[i])))
			b := fmt.Sprint(lsNames(s2.LeastSolution(v2[i])))
			if a != b {
				t.Fatalf("seed %d: LS(v%d) diverges: %s vs %s", seed, i, a, b)
			}
		}
	}
}

// TestCollapseAndOracleThroughFacade exercises the cycle surface: online
// collapse, offline CollapseCycles, CycleClassStats, and the
// BuildOracle → CycleOracle round trip.
func TestCollapseAndOracleThroughFacade(t *testing.T) {
	a := atoms(1)
	build := func(opt polce.Options) (*polce.Solver, []*polce.Var) {
		s := polce.New(opt)
		vars := make([]*polce.Var, 10)
		for i := range vars {
			vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
		}
		s.AddConstraint(a[0], vars[0])
		for i := range vars {
			s.AddConstraint(vars[i], vars[(i+1)%len(vars)])
		}
		return s, vars
	}

	plain, pv := build(polce.Options{Form: polce.IF, Cycles: polce.CycleNone, Seed: 5})
	if in, max := plain.CycleClassStats(); in != 10 || max != 10 {
		t.Fatalf("cycle classes: in=%d max=%d, want 10/10", in, max)
	}
	if n := plain.CollapseCycles(); n == 0 {
		t.Fatal("offline collapse found nothing")
	}
	if plain.Find(pv[3]) != plain.Find(pv[7]) {
		t.Fatal("ring not merged after CollapseCycles")
	}

	online, _ := build(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 5})
	oracle := polce.BuildOracle(online)
	if oracle.Len() != 10 {
		t.Fatalf("oracle len = %d", oracle.Len())
	}
	guided, gv := build(polce.Options{Form: polce.IF, Cycles: polce.CycleOracle, Oracle: oracle, Seed: 5})
	if guided.Stats().VarsEliminated != 9 {
		t.Fatalf("oracle eliminated %d vars, want 9", guided.Stats().VarsEliminated)
	}
	if got := lsNames(guided.LeastSolution(gv[6])); len(got) != 1 || got[0] != "a0" {
		t.Fatalf("oracle-guided LS = %v", got)
	}
}

// TestInitialGraphFacade checks NewInitialGraph skips closure.
func TestInitialGraphFacade(t *testing.T) {
	a := atoms(1)
	s := polce.NewInitialGraph(polce.Options{Form: polce.SF, Seed: 1})
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	if vv, src, _ := s.EdgeCounts(); vv != 1 || src != 1 {
		t.Fatalf("initial graph propagated: vv=%d src=%d", vv, src)
	}
}
