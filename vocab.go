package polce

import "polce/internal/core"

// This file re-exports the solver vocabulary so API clients import one
// package. Every name is a true alias of the core (and transitively the
// storage-layer) type, so values flow freely between the layers — a
// telemetry.SolverMetrics still satisfies polce.MetricsSink, and a
// polce.Var is a core.Var.

type (
	// Options configures a Solver; see core.Options for the fields.
	Options = core.Options
	// Form selects the constraint-graph representation.
	Form = core.Form
	// CyclePolicy selects how cyclic constraints are eliminated.
	CyclePolicy = core.CyclePolicy
	// OrderStrategy selects how the total order o(·) is assigned.
	OrderStrategy = core.OrderStrategy
	// Oracle predicts each variable's eventual cycle witness; see
	// BuildOracle.
	Oracle = core.Oracle
	// Stats holds the solver's work counters.
	Stats = core.Stats
	// GraphStats summarises the current graph's size and density.
	GraphStats = core.GraphStats
	// LSCacheState describes the least-solution cache for introspection.
	LSCacheState = core.LSCacheState
	// MetricsSink receives per-operation solver measurements.
	MetricsSink = core.MetricsSink
	// LSPass describes one least-solution engine pass.
	LSPass = core.LSPass
	// RetractReport describes one RetractBatch pass: batches retracted,
	// dirty cone rolled back, survivors replayed; see core.RetractReport.
	RetractReport = core.RetractReport
	// StorageRepr selects the adjacency storage representation (hybrid or
	// arena-backed CSR); see Options.Repr.
	StorageRepr = core.StorageRepr
	// StorageStats reports the storage backend and drain-shape counters.
	StorageStats = core.StorageStats
	// ArenaStats describes the flat-memory (CSR) storage backend.
	ArenaStats = core.ArenaStats
	// VEClosure is an immutable closed-world least-solution table built by
	// vertex elimination; see Solver.BuildVEClosure.
	VEClosure = core.VEClosure
	// VEOrder selects the elimination order of a VEClosure build.
	VEOrder = core.VEOrder
	// VEStats describes the shape of a built VEClosure.
	VEStats = core.VEStats
	// Event is one solver occurrence, delivered to Options.Observer.
	Event = core.Event
	// EventKind classifies solver events.
	EventKind = core.EventKind

	// Variance describes how a constructor argument position behaves
	// under inclusion.
	Variance = core.Variance
	// Constructor is an n-ary set constructor with a fixed signature.
	Constructor = core.Constructor
	// Expr is a set expression.
	Expr = core.Expr
	// Var is a set variable, created with Solver.Fresh.
	Var = core.Var
	// Term is a constructed set expression c(se1, ..., sen).
	Term = core.Term
	// Union is a set union usable on the left-hand side of a constraint.
	Union = core.Union
	// Intersection is a set intersection usable on the right-hand side
	// of a constraint.
	Intersection = core.Intersection
)

const (
	// SF is standard form; IF is inductive form.
	SF = core.SF
	IF = core.IF

	// CycleNone through CyclePeriodic are the cycle-elimination policies;
	// see the core.CyclePolicy constants.
	CycleNone             = core.CycleNone
	CycleOnline           = core.CycleOnline
	CycleOnlineIncreasing = core.CycleOnlineIncreasing
	CycleOracle           = core.CycleOracle
	CyclePeriodic         = core.CyclePeriodic

	// OrderRandom through OrderReverseCreation are the variable-order
	// strategies.
	OrderRandom          = core.OrderRandom
	OrderCreation        = core.OrderCreation
	OrderReverseCreation = core.OrderReverseCreation

	// ReprHybrid and ReprCSR are the adjacency storage representations.
	ReprHybrid = core.ReprHybrid
	ReprCSR    = core.ReprCSR

	// VEOrderMinDegree and VEOrderTotal are the vertex-elimination orders.
	VEOrderMinDegree = core.VEOrderMinDegree
	VEOrderTotal     = core.VEOrderTotal

	// Covariant and Contravariant are the constructor argument variances.
	Covariant     = core.Covariant
	Contravariant = core.Contravariant

	// EventSourceEdge through EventSweep classify observer events.
	EventSourceEdge = core.EventSourceEdge
	EventSinkEdge   = core.EventSinkEdge
	EventVarEdge    = core.EventVarEdge
	EventCycle      = core.EventCycle
	EventSweep      = core.EventSweep
)

var (
	// Zero is the empty set; One is the universal set.
	Zero = core.Zero
	One  = core.One
)

// NewConstructor returns a fresh constructor with the given name and
// per-argument variance signature.
func NewConstructor(name string, sig ...Variance) *Constructor {
	return core.NewConstructor(name, sig...)
}

// NewTerm builds a constructed term; it panics on an arity mismatch.
func NewTerm(c *Constructor, args ...Expr) *Term {
	return core.NewTerm(c, args...)
}

// NewUnion builds the union of the given expressions.
func NewUnion(exprs ...Expr) *Union { return core.NewUnion(exprs...) }

// NewIntersection builds the intersection of the given expressions.
func NewIntersection(exprs ...Expr) *Intersection {
	return core.NewIntersection(exprs...)
}

// ParseRepr parses a -repr flag value ("hybrid" or "csr").
func ParseRepr(s string) (StorageRepr, error) { return core.ParseRepr(s) }

// ResolveLSWorkers resolves an Options.LSWorkers setting to the effective
// least-solution pool size (<= 0 → GOMAXPROCS).
func ResolveLSWorkers(w int) int { return core.ResolveLSWorkers(w) }
