package polce

import (
	"context"
	"io"
	"sync"

	"polce/internal/core"
)

// Constraint is one pending inclusion L ⊆ R for AddBatch.
type Constraint struct {
	L, R Expr
}

// BatchID is the retraction handle returned by every mutating call. On a
// solver built with Options.Retractable it names the recorded batch and can
// later be passed to RetractBatch; on a non-retractable solver it is always
// zero and never usable. IDs are assigned in application order, are unique
// for the solver's lifetime, and are never reused after retraction.
type BatchID uint64

// Solver is a thread-safe façade over one constraint system. All methods
// are safe for concurrent use; each takes the solver's lock, so a method
// call is one atomic step of the underlying online solver. For bulk
// ingestion use AddBatch, which holds the lock across the whole batch; for
// concurrent reads use Snapshot, which is lock-free after capture.
type Solver struct {
	mu  sync.Mutex
	sys *core.System

	// snap is the last snapshot taken, reused (copy-on-write) while the
	// graph version is unchanged.
	snap *Snapshot

	// closed is set by Close; context-aware ingestion refuses with
	// ErrSolverClosed afterwards while reads keep working.
	closed bool
}

// New creates an empty constraint system with the given options.
func New(opt Options) *Solver {
	return &Solver{sys: core.NewSystem(opt)}
}

// NewInitialGraph creates a solver that resolves constraints to atomic
// edges but performs no closure and no cycle elimination (the paper's
// "initial graph").
func NewInitialGraph(opt Options) *Solver {
	return &Solver{sys: core.NewInitialGraph(opt)}
}

// BuildOracle derives a cycle oracle from a solved system; see
// core.BuildOracle.
func BuildOracle(s *Solver) *Oracle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.BuildOracle(s.sys)
}

// Fresh creates a new set variable.
func (s *Solver) Fresh(name string) *Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Fresh(name)
}

// AddConstraint adds l ⊆ r and immediately restores closure. On a
// retractable solver the constraint is recorded as an implicit
// one-constraint batch whose id is returned; on a non-retractable solver
// the id is zero.
func (s *Solver) AddConstraint(l, r Expr) BatchID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := BatchID(s.sys.BeginBatch())
	s.sys.AddConstraint(l, r)
	s.sys.EndBatch()
	return id
}

// AddConstraintContext adds l ⊆ r unless ctx is already cancelled or the
// solver has been closed. A single constraint's closure drain is one
// atomic step and is never interrupted part-way, so the system is always
// consistent when this returns. The returned BatchID is the constraint's
// retraction handle (zero on a non-retractable solver or when nothing was
// added).
func (s *Solver) AddConstraintContext(ctx context.Context, l, r Expr) (BatchID, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, ErrSolverClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	id := BatchID(s.sys.BeginBatch())
	s.sys.AddConstraint(l, r)
	s.sys.EndBatch()
	return id, nil
}

// AddBatch adds every constraint of the batch under one lock acquisition.
// The constraints are applied in order through the same online path as
// AddConstraint — closure and cycle elimination run at each one — so a
// batch is exactly a sequence of AddConstraint calls that no concurrent
// reader can interleave.
// The returned BatchID is the batch's retraction handle (zero on a
// non-retractable solver).
func (s *Solver) AddBatch(batch []Constraint) BatchID {
	s.mu.Lock()
	defer s.mu.Unlock()
	id := BatchID(s.sys.BeginBatch())
	for _, c := range batch {
		s.sys.AddConstraint(c.L, c.R)
	}
	s.sys.EndBatch()
	return id
}

// AddBatchContext is AddBatch with cancellation: between worklist drains —
// that is, between consecutive constraints of the batch — it checks ctx
// and stops early if the context is done, returning how many constraints
// were applied together with ctx's error. Each individual constraint is
// still applied atomically (its closure drain runs to completion), so an
// aborted batch leaves the solver fully consistent: the first n
// constraints are in, the rest are not, and a later AddBatch of the
// remainder yields exactly the same system as an uninterrupted run.
//
// If the solver has been closed, no constraint is applied and the error is
// ErrSolverClosed.
//
// The returned BatchID is the batch's retraction handle. An interrupted
// batch still gets a handle covering exactly the constraints that were
// applied, so a caller unwinding a cancelled ingest can RetractBatch the
// partial batch. The id is zero when the solver is non-retractable or when
// no constraint was applied.
func (s *Solver) AddBatchContext(ctx context.Context, batch []Constraint) (applied int, id BatchID, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0, ErrSolverClosed
	}
	if err := ctx.Err(); err != nil {
		return 0, 0, err
	}
	id = BatchID(s.sys.BeginBatch())
	defer s.sys.EndBatch()
	for i, c := range batch {
		if err := ctx.Err(); err != nil {
			return i, id, err
		}
		s.sys.AddConstraint(c.L, c.R)
	}
	return len(batch), id, nil
}

// RetractBatch removes the named batches' constraints as if they had never
// been added, preserving every fact the surviving constraints still
// justify (reason multisets: a derivation justified two ways survives
// losing one). Unknown ids fail with ErrUnknownBatch and retract nothing;
// a solver built without Options.Retractable fails with ErrNotRetractable.
// The report describes the rolled-back dirty cone and the replayed
// survivors; see RetractReport.
func (s *Solver) RetractBatch(ids ...BatchID) (RetractReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.RetractBatches(batchIDs(ids))
}

// RetractBatchContext is RetractBatch with the façade's standard
// closed/cancelled preflight. A retraction that starts runs to completion
// — rollback and replay are one atomic step, never interrupted part-way —
// so ctx is only consulted before any work begins.
func (s *Solver) RetractBatchContext(ctx context.Context, ids ...BatchID) (RetractReport, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return RetractReport{}, ErrSolverClosed
	}
	if err := ctx.Err(); err != nil {
		return RetractReport{}, err
	}
	return s.sys.RetractBatches(batchIDs(ids))
}

func batchIDs(ids []BatchID) []uint64 {
	out := make([]uint64, len(ids))
	for i, id := range ids {
		out[i] = uint64(id)
	}
	return out
}

// Retractable reports whether the solver was built with
// Options.Retractable and so tracks batches for retraction.
func (s *Solver) Retractable() bool {
	// Fixed at construction; no lock needed.
	return s.sys.Retractable()
}

// BatchCount returns the number of live (added, not yet retracted)
// batches; zero on a non-retractable solver.
func (s *Solver) BatchCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.BatchCount()
}

// Close marks the solver closed: context-aware ingestion
// (AddConstraintContext, AddBatchContext) fails with ErrSolverClosed from
// then on, while queries and snapshots keep working on the final state.
// Close is idempotent and always returns nil; the error result exists so
// the solver satisfies io.Closer in teardown paths.
func (s *Solver) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Closed reports whether Close has been called.
func (s *Solver) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// ComputeLeastSolutions materialises the least solution for every
// variable (a no-op under standard form or while the cache is hot).
func (s *Solver) ComputeLeastSolutions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.ComputeLeastSolutions()
}

// LeastSolution returns the source terms in the least solution of v, in
// first-reached order. The returned slice must not be modified, and — as
// it may alias live solver storage — must be consumed before further
// constraints are added. Concurrent readers should use Snapshot instead.
func (s *Solver) LeastSolution(v *Var) []*Term {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.LeastSolution(v)
}

// Stats returns the solver's counters so far.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Stats()
}

// StorageStats reports the storage backend in use (hybrid or CSR), the
// arena's edge-block state and the delta-worklist high-water marks. The
// counters are O(1) reads, so this is cheap enough for metric scrapes.
func (s *Solver) StorageStats() StorageStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.StorageStats()
}

// BuildVEClosure materialises a closed-world least-solution table by
// vertex elimination over the current (collapsed) inclusion graph; see
// core.VEClosure. The build holds the solver's lock; the returned closure
// is immutable and lock-free to query, like a Snapshot, but reflects only
// constraints added before the call (compare Version against
// Solver.Version to detect staleness).
func (s *Solver) BuildVEClosure(ord VEOrder) *VEClosure {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.BuildVEClosure(ord)
}

// Errors returns the retained inconsistency errors. Every returned error
// matches errors.Is(err, ErrInconsistent) and unwraps to an
// *InconsistentError via errors.As.
func (s *Solver) Errors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Errors()
}

// ErrorCount returns the total number of inconsistencies seen.
func (s *Solver) ErrorCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.ErrorCount()
}

// CollapseCycles runs an offline Tarjan pass and collapses every
// non-trivial strongly connected component.
func (s *Solver) CollapseCycles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CollapseCycles()
}

// CycleClassStats reports how many variables belong to cyclic equivalence
// classes and the size of the largest class.
func (s *Solver) CycleClassStats() (inCycles, maxClass int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CycleClassStats()
}

// TotalEdges returns the total number of distinct edges in the graph.
func (s *Solver) TotalEdges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TotalEdges()
}

// EdgeCounts tallies the distinct edges in the current graph.
func (s *Solver) EdgeCounts() (varVar, source, sink int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.EdgeCounts()
}

// CurrentGraphStats measures the graph as it stands.
func (s *Solver) CurrentGraphStats() GraphStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CurrentGraphStats()
}

// WriteDOT renders the current constraint graph in Graphviz DOT format.
func (s *Solver) WriteDOT(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.WriteDOT(w)
}

// NumCreated returns the number of Fresh calls so far.
func (s *Solver) NumCreated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.NumCreated()
}

// CreatedVar returns the variable handed out for creation index i.
func (s *Solver) CreatedVar(i int) *Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CreatedVar(i)
}

// Find returns the canonical representative of v.
func (s *Solver) Find(v *Var) *Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Find(v)
}

// CanonicalVars returns the canonical (non-eliminated) variables in
// creation order.
func (s *Solver) CanonicalVars() []*Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CanonicalVars()
}

// VarAdjacency builds the directed inclusion adjacency over vars.
func (s *Solver) VarAdjacency(vars []*Var) (adj [][]int, index map[*Var]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.VarAdjacency(vars)
}

// Form returns the graph representation in use.
func (s *Solver) Form() Form {
	// The representation is fixed at construction; no lock needed.
	return s.sys.Form()
}

// Policy returns the cycle-elimination policy in use.
func (s *Solver) Policy() CyclePolicy {
	// The policy is fixed at construction; no lock needed.
	return s.sys.Policy()
}

// Version returns the least-solution epoch of the graph; it advances
// exactly when a mutation that can change some least solution is applied.
func (s *Solver) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Version()
}
