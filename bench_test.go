package polce_test

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the two theorems of the analytical model. Each benchmark runs the
// computation that produces the corresponding table/figure cell on a
// representative mid-sized program (the full-suite sweeps live behind
// cmd/polce-bench; a testing.B loop over multi-minute Plain runs would be
// unusable). Custom metrics report the paper's headline quantities —
// work counts, eliminated-variable fractions, speedups — alongside ns/op.

import (
	"testing"

	"polce"
	"polce/internal/andersen"
	"polce/internal/bench"
	"polce/internal/cfa"
	"polce/internal/cgen"
	"polce/internal/mlang"
	"polce/internal/model"
	"polce/internal/progen"
	"polce/internal/randgraph"
)

// benchFile caches one generated program per size across benchmarks.
var benchFiles = map[int]*cgen.File{}

func loadBenchFile(b *testing.B, ast int) *cgen.File {
	b.Helper()
	if f, ok := benchFiles[ast]; ok {
		return f
	}
	src := progen.Generate(progen.ByScale(int64(ast), ast))
	f, err := cgen.MustParse("bench.c", src)
	if err != nil {
		b.Fatal(err)
	}
	benchFiles[ast] = f
	return f
}

// solve runs one configuration, including the least-solution pass for IF
// (the paper's timing convention).
func solve(f *cgen.File, form polce.Form, pol polce.CyclePolicy, oracle *polce.Oracle) *andersen.Result {
	r := andersen.Analyze(f, andersen.Options{Form: form, Cycles: pol, Seed: 1, Oracle: oracle})
	if form == polce.IF {
		r.Sys.ComputeLeastSolutions()
	}
	return r
}

func buildOracle(b *testing.B, f *cgen.File) *polce.Oracle {
	b.Helper()
	ref := andersen.Analyze(f, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	return polce.BuildOracle(ref.Sys)
}

const midAST = 4000 // representative medium benchmark (≈ the paper's "ratfor")

// BenchmarkTable1 measures the Table 1 pipeline: generate → parse →
// initial constraint graph → SCC statistics.
func BenchmarkTable1_InitialGraph(b *testing.B) {
	f := loadBenchFile(b, midAST)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		init := andersen.AnalyzeInitial(f, andersen.Options{Form: polce.SF, Seed: 1})
		inSCC, _ := init.Sys.CycleClassStats()
		if inSCC < 0 {
			b.Fatal("impossible")
		}
	}
}

// Table 2 cells: the two Plain and two Oracle configurations.

func BenchmarkTable2_SFPlain(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var work int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work = solve(f, polce.SF, polce.CycleNone, nil).Sys.Stats().Work
	}
	b.ReportMetric(float64(work), "edge-adds")
}

func BenchmarkTable2_IFPlain(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var work int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work = solve(f, polce.IF, polce.CycleNone, nil).Sys.Stats().Work
	}
	b.ReportMetric(float64(work), "edge-adds")
}

func BenchmarkTable2_SFOracle(b *testing.B) {
	f := loadBenchFile(b, midAST)
	oracle := buildOracle(b, f)
	var work int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work = solve(f, polce.SF, polce.CycleOracle, oracle).Sys.Stats().Work
	}
	b.ReportMetric(float64(work), "edge-adds")
}

func BenchmarkTable2_IFOracle(b *testing.B) {
	f := loadBenchFile(b, midAST)
	oracle := buildOracle(b, f)
	var work int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work = solve(f, polce.IF, polce.CycleOracle, oracle).Sys.Stats().Work
	}
	b.ReportMetric(float64(work), "edge-adds")
}

// Table 3 cells: the two Online configurations, reporting eliminations.

func BenchmarkTable3_SFOnline(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var st polce.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = solve(f, polce.SF, polce.CycleOnline, nil).Sys.Stats()
	}
	b.ReportMetric(float64(st.Work), "edge-adds")
	b.ReportMetric(float64(st.VarsEliminated), "eliminated")
}

func BenchmarkTable3_IFOnline(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var st polce.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st = solve(f, polce.IF, polce.CycleOnline, nil).Sys.Stats()
	}
	b.ReportMetric(float64(st.Work), "edge-adds")
	b.ReportMetric(float64(st.VarsEliminated), "eliminated")
}

// BenchmarkFigure7 runs the two no-elimination configurations back to
// back — the scaling comparison Figure 7 plots.
func BenchmarkFigure7_PlainScaling(b *testing.B) {
	f := loadBenchFile(b, midAST)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = solve(f, polce.SF, polce.CycleNone, nil)
		_ = solve(f, polce.IF, polce.CycleNone, nil)
	}
}

// BenchmarkFigure8 runs the four elimination configurations Figure 8
// plots.
func BenchmarkFigure8_EliminationConfigs(b *testing.B) {
	f := loadBenchFile(b, midAST)
	oracle := buildOracle(b, f)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = solve(f, polce.SF, polce.CycleOracle, oracle)
		_ = solve(f, polce.IF, polce.CycleOracle, oracle)
		_ = solve(f, polce.SF, polce.CycleOnline, nil)
		_ = solve(f, polce.IF, polce.CycleOnline, nil)
	}
}

// BenchmarkFigure9 measures the headline speedup: IF-Online against
// SF-Plain (reported as the work ratio, the machine-independent analogue).
func BenchmarkFigure9_Speedup(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain := solve(f, polce.SF, polce.CycleNone, nil).Sys.Stats().Work
		online := solve(f, polce.IF, polce.CycleOnline, nil).Sys.Stats().Work
		ratio = float64(plain) / float64(online)
	}
	b.ReportMetric(ratio, "work-ratio")
}

// BenchmarkFigure10 measures SF-Online against IF-Online.
func BenchmarkFigure10_SFvsIFOnline(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf := solve(f, polce.SF, polce.CycleOnline, nil).Sys.Stats().Work
		inf := solve(f, polce.IF, polce.CycleOnline, nil).Sys.Stats().Work
		ratio = float64(sf) / float64(inf)
	}
	b.ReportMetric(ratio, "work-ratio")
}

// BenchmarkFigure11 measures the cycle-detection rates of the two online
// policies.
func BenchmarkFigure11_DetectionRate(b *testing.B) {
	f := loadBenchFile(b, midAST)
	var rateIF, rateSF float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ifr := solve(f, polce.IF, polce.CycleOnline, nil)
		sfr := solve(f, polce.SF, polce.CycleOnline, nil)
		cyc, _ := ifr.Sys.CycleClassStats()
		if cyc > 0 {
			rateIF = 100 * float64(ifr.Sys.Stats().VarsEliminated) / float64(cyc)
			rateSF = 100 * float64(sfr.Sys.Stats().VarsEliminated) / float64(cyc)
		}
	}
	b.ReportMetric(rateIF, "IF-detect-%")
	b.ReportMetric(rateSF, "SF-detect-%")
}

// BenchmarkTheorem51 evaluates the analytic work expectations and the
// Monte-Carlo closure ratio.
func BenchmarkTheorem51_Model(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		n := 100000
		m := 2 * n / 3
		p := 1 / float64(n)
		ratio = model.EdgeAdditionsSF(n, m, p) / model.EdgeAdditionsIF(n, m, p)
	}
	b.ReportMetric(ratio, "SF/IF-ratio")
}

func BenchmarkTheorem51_MonteCarlo(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = randgraph.MeanClosureRatio(randgraph.Params{
			N: 800, M: 533, P: 1.0 / 800, Seed: int64(i),
		}, 3)
	}
	b.ReportMetric(ratio, "SF/IF-ratio")
}

// BenchmarkTheorem52 measures chain-search reach, the constant that makes
// online detection cheap.
func BenchmarkTheorem52_Reach(b *testing.B) {
	var reach float64
	for i := 0; i < b.N; i++ {
		reach = randgraph.MeanReach(400, 2.0/400, int64(i), 2)
	}
	b.ReportMetric(reach, "mean-reach")
	b.ReportMetric(model.ExpectedReachBound(2), "bound")
}

// BenchmarkFutureWork_ClosureAnalysis measures the paper's §7 future-work
// claim on a generated higher-order program: 0-CFA with online elimination
// versus plain resolution (work ratio reported).
func BenchmarkFutureWork_ClosureAnalysis(b *testing.B) {
	prog := mlang.MustParse(cfa.GenProgram(42, 4000))
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plain := cfa.Analyze(prog, cfa.Options{Form: polce.IF, Cycles: polce.CycleNone, Seed: 1})
		online := cfa.Analyze(prog, cfa.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
		ratio = float64(plain.Sys.Stats().Work) / float64(online.Sys.Stats().Work)
	}
	b.ReportMetric(ratio, "work-ratio")
}

// BenchmarkHarness runs the full per-benchmark measurement pipeline (all
// six experiments on one small suite entry) — the unit of work behind
// every row of Tables 2 and 3.
func BenchmarkHarness_AllExperiments(b *testing.B) {
	bm := bench.Benchmark{Name: "bench-harness", TargetAST: 1200, Seed: 77}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunBenchmark(bm, nil, bench.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
