package polce_test

import (
	"errors"
	"testing"

	"polce"
)

// TestInconsistentErrorsAreTyped checks the typed-error contract: every
// recorded inconsistency matches ErrInconsistent via errors.Is and unwraps
// to *InconsistentError via errors.As, with the offending constraint
// attached.
func TestInconsistentErrorsAreTyped(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.IF, Seed: 1})
	a := polce.NewTerm(polce.NewConstructor("a"))
	b := polce.NewTerm(polce.NewConstructor("b"))
	x := s.Fresh("X")
	s.AddConstraint(a, x) // fine
	s.AddConstraint(a, b) // distinct constructors: inconsistent
	u := polce.NewUnion(a, b)
	s.AddConstraint(x, u) // union on the right: inexpressible

	if s.ErrorCount() != 2 {
		t.Fatalf("ErrorCount = %d, want 2", s.ErrorCount())
	}
	errs := s.Errors()
	if len(errs) != 2 {
		t.Fatalf("Errors() = %v", errs)
	}
	for i, err := range errs {
		if !errors.Is(err, polce.ErrInconsistent) {
			t.Errorf("error %d (%v) does not match ErrInconsistent", i, err)
		}
		var ie *polce.InconsistentError
		if !errors.As(err, &ie) {
			t.Errorf("error %d (%v) is not an *InconsistentError", i, err)
		}
	}
	var ie *polce.InconsistentError
	if errors.As(errs[0], &ie); ie.L != a || ie.R != b {
		t.Errorf("structural mismatch endpoints = %v ⊆ %v, want a ⊆ b", ie.L, ie.R)
	}

	// The sentinels are distinct kinds.
	if errors.Is(polce.ErrQueueFull, polce.ErrInconsistent) ||
		errors.Is(polce.ErrSolverClosed, polce.ErrQueueFull) {
		t.Fatal("sentinel errors are not distinct")
	}
}
