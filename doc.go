// Package polce is the public API of the inclusion-constraint solver from
// Fähndrich, Foster, Su and Aiken, "Partial Online Cycle Elimination in
// Inclusion Constraint Graphs" (PLDI 1998): the top of the three-layer
// stack over the resolution engine (internal/core) and the graph storage
// layer (internal/core/graph).
//
// A Solver wraps one constraint system with a mutex, so one goroutine can
// ingest constraints while others take Snapshots and run least-solution
// queries against them; snapshots are immutable and read without locking.
// The package exports the whole constraint vocabulary (variables, terms,
// options, events), so clients need only this import. Long-running
// services should use the context-aware variants (AddConstraintContext,
// AddBatchContext, SnapshotContext), which observe cancellation between
// worklist drains and report typed errors (ErrSolverClosed,
// ErrInconsistent, ErrQueueFull) suitable for errors.Is / errors.As.
//
// The rest of the reproduction lives under internal/: the resolution
// engine with standard and inductive graph representations and partial
// online cycle elimination (internal/core), Andersen's points-to analysis
// for C with alias/MOD/escape clients (internal/andersen) over a small C
// front end (internal/cgen), the Steensgaard unification baseline
// (internal/steens), the synthetic benchmark generator (internal/progen),
// the analytical model of Section 5 (internal/model, internal/randgraph),
// the experiment harness that regenerates every table and figure
// (internal/bench), the paper's §7 future work — closure analysis for a
// functional language (internal/mlang, internal/cfa) — a textual
// constraint language for driving the solver standalone (internal/scl),
// and the snapshot-backed HTTP constraint service (internal/serve).
//
// Entry points: cmd/polce analyses one C file; cmd/polce-bench regenerates
// the paper's tables, figures, ablations and diagnostics (and load-tests
// the service with -serve-load); cmd/polce-solve runs the solver on .scl
// constraint programs; cmd/polce-serve serves the solver as a JSON HTTP
// API; the runnable examples under examples/ tour the API. The benchmarks
// in bench_test.go exercise one table or figure each.
package polce
