// Package polce reproduces Fähndrich, Foster, Su and Aiken, "Partial
// Online Cycle Elimination in Inclusion Constraint Graphs" (PLDI 1998).
//
// The library lives under internal/: the inclusion-constraint solver with
// standard and inductive graph representations and partial online cycle
// elimination (internal/core), Andersen's points-to analysis for C with
// alias/MOD/escape clients (internal/andersen) over a small C front end
// (internal/cgen), the Steensgaard unification baseline (internal/steens),
// the synthetic benchmark generator (internal/progen), the analytical
// model of Section 5 (internal/model, internal/randgraph), the experiment
// harness that regenerates every table and figure (internal/bench), the
// paper's §7 future work — closure analysis for a functional language
// (internal/mlang, internal/cfa) — and a textual constraint language for
// driving the solver standalone (internal/scl).
//
// Entry points: cmd/polce analyses one C file; cmd/polce-bench regenerates
// the paper's tables, figures, ablations and diagnostics; cmd/polce-solve
// runs the solver on .scl constraint programs; the runnable examples under
// examples/ tour the API. The benchmarks in bench_test.go exercise one
// table or figure each.
package polce
