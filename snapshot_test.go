package polce_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"polce"
)

// TestSnapshotCaching pins the epoch guard: snapshots of an unchanged
// graph are the same object, and any least-solution-changing mutation
// produces a fresh one.
func TestSnapshotCaching(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 9})
		a := atoms(2)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(a[0], x)
		s.AddConstraint(x, y)

		s1 := s.Snapshot()
		if s2 := s.Snapshot(); s2 != s1 {
			t.Fatalf("%v: unchanged graph rebuilt the snapshot", form)
		}
		// A redundant re-add leaves the version, and hence the snapshot,
		// untouched.
		s.AddConstraint(a[0], x)
		if s2 := s.Snapshot(); s2 != s1 {
			t.Fatalf("%v: redundant re-add invalidated the snapshot", form)
		}
		s.AddConstraint(a[1], y)
		s3 := s.Snapshot()
		if s3 == s1 || s3.Version() <= s1.Version() {
			t.Fatalf("%v: mutation did not advance the snapshot", form)
		}
		if got := lsNames(s1.LeastSolution(y)); len(got) != 1 {
			t.Fatalf("%v: old snapshot LS(Y) = %v, want 1 atom", form, got)
		}
		if got := lsNames(s3.LeastSolution(y)); len(got) != 2 {
			t.Fatalf("%v: new snapshot LS(Y) = %v, want 2 atoms", form, got)
		}
		if s3.Form() != form || s3.NumVars() != 2 {
			t.Fatalf("%v: snapshot meta form=%v vars=%d", form, s3.Form(), s3.NumVars())
		}
	}
}

// TestSnapshotIsolation checks that a captured snapshot is frozen: later
// ingestion, collapses included, must not change what an old snapshot
// reports.
func TestSnapshotIsolation(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 11})
		a := atoms(8)
		vars := make([]*polce.Var, 40)
		for i := range vars {
			vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 80; i++ {
			s.AddConstraint(a[rng.Intn(len(a))], vars[rng.Intn(len(vars))])
			s.AddConstraint(vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		snap := s.Snapshot()
		frozen := make([][]string, len(vars))
		for i, v := range vars {
			frozen[i] = lsNames(snap.LeastSolution(v))
		}
		// Keep ingesting, forcing plenty of new sources and collapses.
		for i := 0; i < 200; i++ {
			s.AddConstraint(a[rng.Intn(len(a))], vars[rng.Intn(len(vars))])
			s.AddConstraint(vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		s.ComputeLeastSolutions()
		for i, v := range vars {
			if got := lsNames(snap.LeastSolution(v)); fmt.Sprint(got) != fmt.Sprint(frozen[i]) {
				t.Fatalf("%v: snapshot LS(v%d) drifted:\nbefore %v\nafter  %v", form, i, frozen[i], got)
			}
		}
	}
}

// TestSnapshotConcurrentQueries is the headline concurrency test: one
// goroutine ingests constraint batches while five reader goroutines race
// it, each taking snapshots and checking two invariants — snapshot
// versions never go backwards, and least solutions only grow (the system
// is monotone). Run under -race this also proves the capture/read paths
// are race-clean.
func TestSnapshotConcurrentQueries(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		t.Run(form.String(), func(t *testing.T) {
			s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 17})
			const nVars = 120
			vars := make([]*polce.Var, nVars)
			for i := range vars {
				vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
			}
			a := atoms(16)

			done := make(chan struct{})
			errc := make(chan error, 8)
			var wg sync.WaitGroup

			wg.Add(1)
			go func() { // ingestion
				defer wg.Done()
				defer close(done)
				rng := rand.New(rand.NewSource(23))
				for i := 0; i < 300; i++ {
					batch := make([]polce.Constraint, 0, 8)
					for j := 0; j < 8; j++ {
						if rng.Intn(3) == 0 {
							batch = append(batch, polce.Constraint{
								L: a[rng.Intn(len(a))], R: vars[rng.Intn(nVars)]})
						} else {
							batch = append(batch, polce.Constraint{
								L: vars[rng.Intn(nVars)], R: vars[rng.Intn(nVars)]})
						}
					}
					s.AddBatch(batch)
				}
			}()

			const readers = 5
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var lastVersion uint64
					sizes := make([]int, nVars)
					snaps := 0
					for alive := true; alive; {
						select {
						case <-done:
							alive = false // one final snapshot after ingestion
						default:
						}
						snap := s.Snapshot()
						if snap.Version() < lastVersion {
							errc <- fmt.Errorf("reader %d: version went backwards: %d -> %d",
								r, lastVersion, snap.Version())
							return
						}
						lastVersion = snap.Version()
						for i, v := range vars {
							n := len(snap.LeastSolution(v))
							if n < sizes[i] {
								errc <- fmt.Errorf("reader %d: LS(v%d) shrank %d -> %d",
									r, i, sizes[i], n)
								return
							}
							sizes[i] = n
						}
						snaps++
					}
					if snaps == 0 {
						errc <- fmt.Errorf("reader %d took no snapshots", r)
					}
				}(r)
			}

			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}

			// All readers' final snapshots and the live solver agree.
			final := s.Snapshot()
			for _, v := range vars {
				want := fmt.Sprint(lsNames(s.LeastSolution(v)))
				if got := fmt.Sprint(lsNames(final.LeastSolution(v))); got != want {
					t.Fatalf("final snapshot diverges from live LS: %s vs %s", got, want)
				}
			}
		})
	}
}

// TestSnapshotIntrospection checks the debug-surface data captured with a
// snapshot: graph stats, collapsed-class sizes, LS cache state and the
// top-k ranking — all answered from the frozen capture, so an old
// snapshot keeps its numbers while the solver moves on.
func TestSnapshotIntrospection(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})
	a := atoms(4)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	z := s.Fresh("Z")
	big := s.Fresh("Big")
	for _, t := range a {
		s.AddConstraint(t, big)
	}
	s.AddConstraint(a[0], x)
	// Collapse {X, Y, Z} into one class.
	s.AddConstraint(x, y)
	s.AddConstraint(y, z)
	s.AddConstraint(z, x)

	sn := s.Snapshot()
	if g := sn.Graph(); g.Vars <= 0 || g.VarVarEdges+g.SourceEdges+g.SinkEdges <= 0 {
		t.Fatalf("snapshot graph stats empty: %+v", g)
	}
	classes := sn.CollapsedClasses()
	if len(classes) != 1 || classes[0] != 3 {
		t.Fatalf("collapsed classes = %v, want [3]", classes)
	}
	eliminated := 0
	for _, sz := range classes {
		eliminated += sz - 1
	}
	if eliminated != sn.Stats().VarsEliminated {
		t.Fatalf("classes imply %d eliminated vars, stats say %d", eliminated, sn.Stats().VarsEliminated)
	}
	if lc := sn.LSCache(); !lc.Hot || lc.InternedNodes == 0 {
		t.Fatalf("LS cache after capture = %+v, want hot with interned nodes", lc)
	}

	top := sn.Top(2)
	if len(top) != 2 || top[0].Var.Name() != "Big" || top[0].Terms != 4 {
		t.Fatalf("Top(2) = %+v, want Big with 4 terms first", top)
	}
	if top[1].Terms > top[0].Terms {
		t.Fatalf("Top(2) not sorted: %+v", top)
	}
	if got := sn.Top(0); got != nil {
		t.Fatalf("Top(0) = %v, want nil", got)
	}
	if got := sn.Top(100); len(got) != sn.NumVars() {
		t.Fatalf("Top(100) returned %d entries, want all %d", len(got), sn.NumVars())
	}

	// Ties rank by name, so repeated calls are deterministic.
	t1, t2 := fmt.Sprint(sn.Top(100)), fmt.Sprint(sn.Top(100))
	if t1 != t2 {
		t.Fatalf("Top is nondeterministic:\n%s\n%s", t1, t2)
	}

	// The capture is frozen: more ingestion must not change it.
	w := s.Fresh("W")
	s.AddConstraint(a[1], w)
	s.AddConstraint(w, x)
	if got := fmt.Sprint(sn.CollapsedClasses()); got != fmt.Sprint(classes) {
		t.Fatalf("old snapshot classes changed after ingestion: %v", got)
	}
	if sn2 := s.Snapshot(); len(sn2.CollapsedClasses()) == 0 {
		t.Fatalf("new snapshot lost collapsed classes")
	}
}

// TestSnapshotIntrospectionSF covers the standard-form capture: the LS
// cache reports hot (the closed graph is the solution) and the class
// accounting still matches the stats.
func TestSnapshotIntrospectionSF(t *testing.T) {
	s := polce.New(polce.Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 3})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	s.AddConstraint(y, x)
	sn := s.Snapshot()
	if !sn.LSCache().Hot {
		t.Fatalf("SF LS cache = %+v, want hot", sn.LSCache())
	}
	if classes := sn.CollapsedClasses(); len(classes) != 1 || classes[0] != 2 {
		t.Fatalf("SF collapsed classes = %v, want [2]", classes)
	}
}
