package polce_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"polce"
)

// TestSnapshotCaching pins the epoch guard: snapshots of an unchanged
// graph are the same object, and any least-solution-changing mutation
// produces a fresh one.
func TestSnapshotCaching(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 9})
		a := atoms(2)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(a[0], x)
		s.AddConstraint(x, y)

		s1 := s.Snapshot()
		if s2 := s.Snapshot(); s2 != s1 {
			t.Fatalf("%v: unchanged graph rebuilt the snapshot", form)
		}
		// A redundant re-add leaves the version, and hence the snapshot,
		// untouched.
		s.AddConstraint(a[0], x)
		if s2 := s.Snapshot(); s2 != s1 {
			t.Fatalf("%v: redundant re-add invalidated the snapshot", form)
		}
		s.AddConstraint(a[1], y)
		s3 := s.Snapshot()
		if s3 == s1 || s3.Version() <= s1.Version() {
			t.Fatalf("%v: mutation did not advance the snapshot", form)
		}
		if got := lsNames(s1.LeastSolution(y)); len(got) != 1 {
			t.Fatalf("%v: old snapshot LS(Y) = %v, want 1 atom", form, got)
		}
		if got := lsNames(s3.LeastSolution(y)); len(got) != 2 {
			t.Fatalf("%v: new snapshot LS(Y) = %v, want 2 atoms", form, got)
		}
		if s3.Form() != form || s3.NumVars() != 2 {
			t.Fatalf("%v: snapshot meta form=%v vars=%d", form, s3.Form(), s3.NumVars())
		}
	}
}

// TestSnapshotIsolation checks that a captured snapshot is frozen: later
// ingestion, collapses included, must not change what an old snapshot
// reports.
func TestSnapshotIsolation(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 11})
		a := atoms(8)
		vars := make([]*polce.Var, 40)
		for i := range vars {
			vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
		}
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 80; i++ {
			s.AddConstraint(a[rng.Intn(len(a))], vars[rng.Intn(len(vars))])
			s.AddConstraint(vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		snap := s.Snapshot()
		frozen := make([][]string, len(vars))
		for i, v := range vars {
			frozen[i] = lsNames(snap.LeastSolution(v))
		}
		// Keep ingesting, forcing plenty of new sources and collapses.
		for i := 0; i < 200; i++ {
			s.AddConstraint(a[rng.Intn(len(a))], vars[rng.Intn(len(vars))])
			s.AddConstraint(vars[rng.Intn(len(vars))], vars[rng.Intn(len(vars))])
		}
		s.ComputeLeastSolutions()
		for i, v := range vars {
			if got := lsNames(snap.LeastSolution(v)); fmt.Sprint(got) != fmt.Sprint(frozen[i]) {
				t.Fatalf("%v: snapshot LS(v%d) drifted:\nbefore %v\nafter  %v", form, i, frozen[i], got)
			}
		}
	}
}

// TestSnapshotConcurrentQueries is the headline concurrency test: one
// goroutine ingests constraint batches while five reader goroutines race
// it, each taking snapshots and checking two invariants — snapshot
// versions never go backwards, and least solutions only grow (the system
// is monotone). Run under -race this also proves the capture/read paths
// are race-clean.
func TestSnapshotConcurrentQueries(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		t.Run(form.String(), func(t *testing.T) {
			s := polce.New(polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 17})
			const nVars = 120
			vars := make([]*polce.Var, nVars)
			for i := range vars {
				vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
			}
			a := atoms(16)

			done := make(chan struct{})
			errc := make(chan error, 8)
			var wg sync.WaitGroup

			wg.Add(1)
			go func() { // ingestion
				defer wg.Done()
				defer close(done)
				rng := rand.New(rand.NewSource(23))
				for i := 0; i < 300; i++ {
					batch := make([]polce.Constraint, 0, 8)
					for j := 0; j < 8; j++ {
						if rng.Intn(3) == 0 {
							batch = append(batch, polce.Constraint{
								L: a[rng.Intn(len(a))], R: vars[rng.Intn(nVars)]})
						} else {
							batch = append(batch, polce.Constraint{
								L: vars[rng.Intn(nVars)], R: vars[rng.Intn(nVars)]})
						}
					}
					s.AddBatch(batch)
				}
			}()

			const readers = 5
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					var lastVersion uint64
					sizes := make([]int, nVars)
					snaps := 0
					for alive := true; alive; {
						select {
						case <-done:
							alive = false // one final snapshot after ingestion
						default:
						}
						snap := s.Snapshot()
						if snap.Version() < lastVersion {
							errc <- fmt.Errorf("reader %d: version went backwards: %d -> %d",
								r, lastVersion, snap.Version())
							return
						}
						lastVersion = snap.Version()
						for i, v := range vars {
							n := len(snap.LeastSolution(v))
							if n < sizes[i] {
								errc <- fmt.Errorf("reader %d: LS(v%d) shrank %d -> %d",
									r, i, sizes[i], n)
								return
							}
							sizes[i] = n
						}
						snaps++
					}
					if snaps == 0 {
						errc <- fmt.Errorf("reader %d took no snapshots", r)
					}
				}(r)
			}

			wg.Wait()
			close(errc)
			for err := range errc {
				t.Error(err)
			}

			// All readers' final snapshots and the live solver agree.
			final := s.Snapshot()
			for _, v := range vars {
				want := fmt.Sprint(lsNames(s.LeastSolution(v)))
				if got := fmt.Sprint(lsNames(final.LeastSolution(v))); got != want {
					t.Fatalf("final snapshot diverges from live LS: %s vs %s", got, want)
				}
			}
		})
	}
}
