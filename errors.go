package polce

import (
	"errors"

	"polce/internal/core"
)

// The package's error vocabulary is three sentinels plus one detail type,
// all matching through errors.Is / errors.As so callers — the HTTP layer
// in internal/serve foremost — can branch on kind without parsing
// messages.

var (
	// ErrInconsistent is matched (via errors.Is) by every inconsistency
	// the solver records: a constraint between distinct constructors, or a
	// set operation in an inexpressible position. The concrete errors are
	// *InconsistentError values carrying the offending constraint.
	ErrInconsistent = core.ErrInconsistent

	// ErrQueueFull reports that a bounded ingestion queue rejected a
	// batch; the caller should retry after backing off.
	ErrQueueFull = errors.New("polce: ingestion queue full")

	// ErrSolverClosed reports that the solver has been closed and accepts
	// no further constraints; queries against existing snapshots keep
	// working.
	ErrSolverClosed = errors.New("polce: solver closed")

	// ErrUnknownBatch is matched by RetractBatch failures naming a batch id
	// that is not live — never issued, or already retracted. Nothing is
	// retracted when any id is unknown.
	ErrUnknownBatch = core.ErrUnknownBatch

	// ErrNotRetractable is matched by RetractBatch failures on a solver
	// built without Options.Retractable, or whose graph was mutated outside
	// batch tracking (an offline CollapseCycles) so replay could no longer
	// reproduce it.
	ErrNotRetractable = core.ErrNotRetractable
)

// InconsistentError records one inconsistent constraint; see
// core.InconsistentError. It satisfies errors.Is(err, ErrInconsistent).
type InconsistentError = core.InconsistentError
