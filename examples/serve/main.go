// Serve: talking to the constraint query service over HTTP.
//
// Starts a polce-serve instance in-process (so the example is
// self-contained — against a deployed service, replace the base URL),
// streams two SCL constraint batches into it, and queries least solutions
// and points-to sets back out while ingestion stays live. This is API v1
// exactly as curl sees it; see the README's Serving section.
//
// Run with: go run ./examples/serve
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"polce"
	"polce/internal/serve"
)

func main() {
	// An in-process service: one online-IF solver behind the HTTP API.
	srv := serve.New(serve.Config{
		Solver: polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 42}),
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fail(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// Batch one: atoms flowing through a variable chain. ?wait=1 blocks
	// until the batch is applied and reports the graph version.
	post(base, `
		cons apple; cons pear
		apple <= X; pear <= X
		X <= Y; Y <= Z
	`)
	get(base, "/v1/least-solution/Z")

	// Batch two grows the same constraint program: a ref-term makes P a
	// pointer to X, and a cycle Y <= X that online elimination collapses.
	post(base, `
		cons ref(+)
		ref(X) <= P
		Y <= X
	`)
	get(base, "/v1/points-to/P")
	get(base, "/v1/snapshot")

	// Drain exactly like polce-serve does on SIGTERM: finish in-flight
	// requests, flush the ingestion queue, close the solver.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fail(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		fail(err)
	}
	fmt.Printf("\ndrained after %d constraints\n", srv.Ingested())
}

// post sends one SCL batch and prints the service's reply.
func post(base, program string) {
	resp, err := http.Post(base+"/v1/constraints?wait=1", "text/plain", strings.NewReader(program))
	if err != nil {
		fail(err)
	}
	fmt.Printf("POST /v1/constraints  -> %s %s", resp.Status, body(resp))
}

// get queries one read endpoint and prints the JSON.
func get(base, path string) {
	resp, err := http.Get(base + path)
	if err != nil {
		fail(err)
	}
	fmt.Printf("GET  %-20s -> %s %s", path, resp.Status, body(resp))
}

// body re-indents a JSON response for display.
func body(resp *http.Response) string {
	defer resp.Body.Close()
	var v any
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		fail(err)
	}
	out, _ := json.Marshal(v)
	return string(out) + "\n"
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serve example:", err)
	os.Exit(1)
}
