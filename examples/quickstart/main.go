// Quickstart: solving inclusion constraints directly with the core API.
//
// Builds the constraint system of the paper's Section 2 examples — atoms
// flowing through variable chains, a constructed term with a covariant and
// a contravariant field — and prints least solutions before and after a
// cycle is introduced and eliminated online.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"polce"
)

func main() {
	// A system in inductive form with online cycle elimination — the
	// paper's recommended configuration.
	sys := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 42})

	// Nullary constructors act as atoms; the least solution of a variable
	// is the set of constructed terms that reach it.
	apple := polce.NewTerm(polce.NewConstructor("apple"))
	pear := polce.NewTerm(polce.NewConstructor("pear"))

	x := sys.Fresh("X")
	y := sys.Fresh("Y")
	z := sys.Fresh("Z")

	// apple ⊆ X ⊆ Y ⊆ Z, pear ⊆ Y.
	sys.AddConstraint(apple, x)
	sys.AddConstraint(x, y)
	sys.AddConstraint(y, z)
	sys.AddConstraint(pear, y)

	show := func(name string, v *polce.Var) {
		fmt.Printf("  LS(%s) = %v\n", name, sys.LeastSolution(v))
	}
	fmt.Println("after apple ⊆ X ⊆ Y ⊆ Z and pear ⊆ Y:")
	show("X", x)
	show("Y", y)
	show("Z", z)

	// Close the cycle Z ⊆ X: all three variables become equal in every
	// solution, and the online detector collapses them to one node.
	sys.AddConstraint(z, x)
	fmt.Println("\nafter closing the cycle Z ⊆ X:")
	show("X", x)
	show("Z", z)
	fmt.Printf("  variables eliminated by online collapse: %d\n", sys.Stats().VarsEliminated)
	fmt.Printf("  X and Z share a representative: %v\n", sys.Find(x) == sys.Find(z))

	// Constructed terms decompose by variance: box is covariant, sink is
	// contravariant, so box(A) ⊆ box(B) yields A ⊆ B while
	// sink(A̅) ⊆ sink(B̅) yields B ⊆ A.
	box := polce.NewConstructor("box", polce.Covariant)
	a := sys.Fresh("A")
	b := sys.Fresh("B")
	sys.AddConstraint(apple, a)
	sys.AddConstraint(polce.NewTerm(box, a), polce.NewTerm(box, b))
	fmt.Println("\nafter box(A) ⊆ box(B) with apple ⊆ A:")
	show("B", b)

	fmt.Printf("\nsolver statistics: %v\n", sys.Stats())
}
