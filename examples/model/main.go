// The analytical model of Section 5, side by side with simulation.
//
// Prints (1) the expected closure work of standard vs inductive form on
// random constraint graphs — the analytic sums, the paper's closed-form
// approximations, and a Monte-Carlo run — and (2) the expected reach of an
// order-decreasing chain search, the quantity that makes online cycle
// detection cheap.
//
// Run with: go run ./examples/model
package main

import (
	"fmt"

	"polce/internal/model"
	"polce/internal/randgraph"
)

func main() {
	fmt.Println("Theorem 5.1 — closure work on G(n, 1/n), m = 2n/3")
	fmt.Printf("%8s %14s %14s %14s %14s %7s\n", "n", "E(X_SF)", "approx SF", "E(X_IF)", "approx IF", "ratio")
	for _, n := range []int{1000, 10000, 100000} {
		m := 2 * n / 3
		p := 1 / float64(n)
		sf := model.EdgeAdditionsSF(n, m, p)
		inf := model.EdgeAdditionsIF(n, m, p)
		fmt.Printf("%8d %14.0f %14.0f %14.0f %14.0f %7.3f\n",
			n, sf, model.ApproxSF(n, m), inf, model.ApproxIF(n, m), sf/inf)
	}

	fmt.Println("\nMonte-Carlo closure on simulated random graphs (perfect cycle elimination):")
	for _, n := range []int{500, 2000} {
		ps := randgraph.Params{N: n, M: 2 * n / 3, P: 1 / float64(n), Seed: 7}
		r := randgraph.Closure(ps)
		fmt.Printf("  n=%5d  workSF=%8d  workIF=%8d  ratio=%.2f\n",
			n, r.WorkSF, r.WorkIF, float64(r.WorkSF)/float64(r.WorkIF))
	}

	fmt.Println("\nTheorem 5.2 — expected nodes visited by an order-decreasing chain search")
	fmt.Printf("%6s %10s %12s %12s\n", "k", "bound", "exact", "measured")
	for _, k := range []float64{1, 2, 3} {
		measured := randgraph.MeanReach(400, k/400, 13, 6)
		fmt.Printf("%6.1f %10.3f %12.3f %12.3f\n",
			k, model.ExpectedReachBound(k), model.ExpectedReachExact(10000, k/10000), measured)
	}
	fmt.Println("\nAt the k ≈ 2 density of closed constraint graphs a search touches about")
	fmt.Println("two nodes — constant-time cycle detection — and the cost explodes for")
	fmt.Println("denser graphs, which is why the technique relies on sparsity.")
}
