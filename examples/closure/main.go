// Closure analysis (0-CFA) on the same constraint solver — the paper's
// stated future work ("We plan to study the impact of online cycle
// elimination on the performance of closure analysis").
//
// Analyses a small higher-order program, prints the resolved call graph
// (which lambdas each application may invoke), then contrasts solver work
// with and without online cycle elimination on a larger generated program.
//
// Run with: go run ./examples/closure
package main

import (
	"fmt"
	"sort"
	"time"

	"polce"
	"polce/internal/cfa"
	"polce/internal/mlang"
)

const src = `
let compose = fn f => fn g => fn x => f (g x) in
let inc = fn n => n + 1 in
let dec = fn m => m - 1 in
letrec iter k = if0 k then inc else compose inc (iter (k - 1)) in
(compose (iter 3) dec) 10`

func main() {
	prog := mlang.MustParse(src)
	fmt.Println("program:")
	fmt.Println(" ", prog)

	r := cfa.Analyze(prog, cfa.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})

	fmt.Println("\nresolved call graph (application site → lambdas that may be applied):")
	var labels []int
	for l := range r.AppSites {
		labels = append(labels, l)
	}
	sort.Ints(labels)
	byLabel := map[int]mlang.Expr{}
	mlang.Walk(prog, func(e mlang.Expr) { byLabel[e.Label()] = e })
	for _, l := range labels {
		clos := r.CalledAt(l)
		if len(clos) == 0 {
			continue
		}
		var params []string
		for _, c := range clos {
			params = append(params, "fn "+c.Lam.Param)
		}
		sort.Strings(params)
		app := byLabel[l].(*mlang.App)
		fmt.Printf("  %-34s -> %v\n", truncate(app.String(), 34), params)
	}
	st := r.Sys.Stats()
	fmt.Printf("\nsolver: %d vars, %d eliminated by online collapse, %d edge additions\n",
		st.VarsCreated, st.VarsEliminated, st.Work)

	// Scale comparison: higher-order programs are cycle-dense, so
	// elimination pays off even more than for C.
	fmt.Println("\nscaling on a generated higher-order program:")
	big := mlang.MustParse(cfa.GenProgram(42, 8000))
	for _, cfg := range []struct {
		name string
		pol  polce.CyclePolicy
	}{
		{"IF-Plain ", polce.CycleNone},
		{"IF-Online", polce.CycleOnline},
	} {
		start := time.Now()
		res := cfa.Analyze(big, cfa.Options{Form: polce.IF, Cycles: cfg.pol, Seed: 1})
		res.Sys.ComputeLeastSolutions()
		s := res.Sys.Stats()
		fmt.Printf("  %s  work=%-10d eliminated=%-5d time=%v\n",
			cfg.name, s.Work, s.VarsEliminated, time.Since(start).Round(time.Millisecond))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
