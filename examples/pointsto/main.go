// Points-to analysis of a realistic C fragment: a memory pool with a free
// list, callbacks through function pointers, and heap allocation — the
// kind of code the paper's benchmarks are made of.
//
// The example runs Andersen's analysis (inclusion-based, the paper's
// subject) and Steensgaard's analysis (unification-based, the almost-
// linear baseline) on the same program and prints both points-to graphs,
// making the precision difference visible.
//
// Run with: go run ./examples/pointsto
package main

import (
	"fmt"
	"sort"
	"strings"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
	"polce/internal/steens"
)

const src = `
int stdin_buf, stdout_buf, err_buf, net_buf;

int *console;        /* aliases the console buffers only        */
int *first;          /* a copy of console                        */
int *anywhere;       /* deliberately flows everywhere           */

int log_write(int *b)   { return *b; }
int net_write(int *b)   { return 1; }

int *pick(int *a, int *b) { if (*a) return a; return b; }

int main(void) {
	int (*sink)(int *);
	console = &stdin_buf;
	first = console;              /* inclusion: console's set flows here  */
	console = &stdout_buf;

	anywhere = pick(first, &err_buf);
	anywhere = (int *)malloc(sizeof(int));

	sink = log_write;
	sink(console);                /* console buffers reach log_write     */
	net_write(&net_buf);          /* only net_buf reaches net_write      */
	return 0;
}
`

func main() {
	file, err := cgen.MustParse("server.c", src)
	if err != nil {
		panic(err)
	}

	fmt.Println("=== Andersen (inclusion constraints, IF + online cycle elimination) ===")
	res := andersen.Analyze(file, andersen.Options{
		Form: polce.IF, Cycles: polce.CycleOnline, Seed: 7,
	})
	var names []string
	rows := map[string][]string{}
	for _, l := range res.Locations {
		p := res.PointsToNames(l)
		if len(p) == 0 {
			continue
		}
		sort.Strings(p)
		names = append(names, l.Name)
		rows[l.Name] = p
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-22s -> {%s}\n", n, strings.Join(rows[n], ", "))
	}
	st := res.Sys.Stats()
	fmt.Printf("  [%d set variables, %d eliminated by cycle collapse, %d edge additions]\n",
		st.VarsCreated, st.VarsEliminated, st.Work)

	fmt.Println("\n=== Steensgaard (unification baseline) ===")
	sa := steens.Analyze(file)
	var snames []string
	srows := map[string][]string{}
	for _, l := range sa.Locations() {
		p := sa.PointsToNames(l)
		if len(p) == 0 {
			continue
		}
		sort.Strings(p)
		snames = append(snames, l.Name)
		srows[l.Name] = p
	}
	sort.Strings(snames)
	for _, n := range snames {
		fmt.Printf("  %-22s -> {%s}\n", n, strings.Join(srows[n], ", "))
	}
	fmt.Println("\nNote how unification merges what inclusion keeps apart: passing `first`")
	fmt.Println("to pick() makes Steensgaard unify it — and therefore `console` and the")
	fmt.Println("console buffers' class — with err_buf and the heap cell, while Andersen")
	fmt.Println("keeps console -> {stdin_buf, stdout_buf}. Inclusion constraints buy this")
	fmt.Println("precision; the paper's online cycle elimination is what makes them")
	fmt.Println("affordable at scale.")
}
