// Watching partial online cycle elimination at work.
//
// This example generates a mid-sized synthetic C program, analyses it
// under all six of the paper's experiment configurations, and prints the
// work counters side by side — a miniature of the paper's Tables 2 and 3
// that runs in a couple of seconds.
//
// Run with: go run ./examples/cycles
package main

import (
	"fmt"
	"time"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
	"polce/internal/progen"
)

func main() {
	src := progen.Generate(progen.ByScale(2026, 6000))
	file, err := cgen.MustParse("generated.c", src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("generated program: %d AST nodes, %d lines\n\n",
		cgen.CountNodes(file), cgen.CountLines(src))

	type cfg struct {
		name   string
		form   polce.Form
		cycles polce.CyclePolicy
	}
	configs := []cfg{
		{"SF-Plain", polce.SF, polce.CycleNone},
		{"IF-Plain", polce.IF, polce.CycleNone},
		{"SF-Online", polce.SF, polce.CycleOnline},
		{"IF-Online", polce.IF, polce.CycleOnline},
		{"SF-Oracle", polce.SF, polce.CycleOracle},
		{"IF-Oracle", polce.IF, polce.CycleOracle},
	}

	// The oracle needs a completed run to predict eventual cycle
	// membership; the paper builds it the same way.
	ref := andersen.Analyze(file, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	oracle := polce.BuildOracle(ref.Sys)
	cycVars, maxSCC := ref.Sys.CycleClassStats()
	fmt.Printf("cyclic variables in the closed graph: %d (largest class %d)\n\n", cycVars, maxSCC)

	fmt.Printf("%-10s %12s %12s %10s %8s %12s\n", "config", "work", "redundant", "elim", "elim%", "time")
	for _, c := range configs {
		start := time.Now()
		r := andersen.Analyze(file, andersen.Options{
			Form: c.form, Cycles: c.cycles, Seed: 1, Oracle: oracle,
		})
		if c.form == polce.IF {
			r.Sys.ComputeLeastSolutions() // included in IF timings, as in the paper
		}
		elapsed := time.Since(start)
		st := r.Sys.Stats()
		pct := 0.0
		if cycVars > 0 {
			pct = 100 * float64(st.VarsEliminated) / float64(cycVars)
		}
		fmt.Printf("%-10s %12d %12d %10d %7.1f%% %12v\n",
			c.name, st.Work, st.Redundant, st.VarsEliminated, pct, elapsed.Round(time.Microsecond))
	}

	fmt.Println("\nThe paper's story in one table: cycles make the Plain runs do orders of")
	fmt.Println("magnitude more (mostly redundant) work; online elimination removes most")
	fmt.Println("cyclic variables — a larger share under inductive form — and lands near")
	fmt.Println("the oracle's perfect-elimination floor.")
}
