// The downstream-client layer: what a compiler or checker actually asks a
// points-to analysis once it has run — may-alias queries, call-target
// resolution, interprocedural MOD sets, escape analysis — plus the JSON
// report for external tools.
//
// Run with: go run ./examples/clients
package main

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
)

const src = `
int config, cache, scratch;
int *shared;

void set_shared(int *p) { shared = p; }

int load(int *slot) { return *slot; }
int store(int *slot) { *slot = 1; return 0; }

int (*op)(int *);

int main(void) {
	int local_only;
	int *a = &config;
	int *b = &cache;
	int *c = &local_only;
	set_shared(a);
	set_shared(&local_only);   /* a local's address escapes here */
	op = load;
	op = store;
	op(b);
	*c = 2;
	return 0;
}
`

func main() {
	file, err := cgen.MustParse("clients.c", src)
	if err != nil {
		panic(err)
	}
	res := andersen.Analyze(file, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})

	loc := func(name string) *andersen.Location {
		l := res.LocationByName(name)
		if l == nil {
			panic("no location " + name)
		}
		return l
	}

	fmt.Println("may-alias queries:")
	for _, pair := range [][2]string{{"main::a", "shared"}, {"main::a", "main::b"}, {"main::b", "main::c"}} {
		fmt.Printf("  alias(%s, %s) = %v\n", pair[0], pair[1], res.MayAlias(loc(pair[0]), loc(pair[1])))
	}

	fmt.Println("\nindirect call targets of op:")
	for _, f := range res.CallTargets(loc("op")) {
		fmt.Printf("  %s\n", f.Name)
	}

	fmt.Println("\ninterprocedural MOD sets:")
	for _, fn := range []string{"set_shared", "store", "load", "main"} {
		names := res.ModNames(loc(fn))
		sort.Strings(names)
		fmt.Printf("  MOD(%-10s) = {%s}\n", fn, strings.Join(names, ", "))
	}

	fmt.Println("\nescaping locals (cannot be stack-allocated blindly):")
	for _, l := range res.EscapingLocals() {
		fmt.Printf("  %s\n", l.Name)
	}

	fmt.Println("\nJSON report (excerpt):")
	var sb strings.Builder
	if err := res.WriteJSON(&sb, false); err != nil {
		panic(err)
	}
	lines := strings.Split(sb.String(), "\n")
	for i, line := range lines {
		if i >= 12 {
			fmt.Println("  ...")
			break
		}
		fmt.Println(" ", line)
	}
	_ = os.Stdout
}
