package scc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func adjOf(edges [][2]int, n int) func(int) []int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
	}
	return func(i int) []int { return adj[i] }
}

func TestEmpty(t *testing.T) {
	comp, count := Strong(0, func(int) []int { return nil })
	if len(comp) != 0 || count != 0 {
		t.Errorf("empty graph: comp=%v count=%d", comp, count)
	}
}

func TestSingletons(t *testing.T) {
	comp, count := Strong(3, func(int) []int { return nil })
	if count != 3 {
		t.Errorf("3 isolated vertices: count=%d, want 3", count)
	}
	seen := map[int]bool{}
	for _, c := range comp {
		if seen[c] {
			t.Errorf("isolated vertices share a component: %v", comp)
		}
		seen[c] = true
	}
}

func TestSimpleCycle(t *testing.T) {
	comp, count := Strong(4, adjOf([][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}}, 4))
	if count != 2 {
		t.Fatalf("count=%d, want 2", count)
	}
	if comp[0] != comp[1] || comp[1] != comp[2] {
		t.Errorf("cycle not grouped: %v", comp)
	}
	if comp[3] == comp[0] {
		t.Errorf("vertex 3 wrongly in the cycle: %v", comp)
	}
}

func TestReverseTopologicalOrder(t *testing.T) {
	// For edges across components, the source's component index must be
	// larger (reverse topological order).
	edges := [][2]int{{0, 1}, {1, 2}, {3, 1}, {2, 4}}
	comp, _ := Strong(5, adjOf(edges, 5))
	for _, e := range edges {
		if comp[e[0]] != comp[e[1]] && comp[e[0]] < comp[e[1]] {
			t.Errorf("edge %v violates reverse topological order: %v", e, comp)
		}
	}
}

func TestTwoCycles(t *testing.T) {
	edges := [][2]int{{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}}
	comp, count := Strong(4, adjOf(edges, 4))
	if count != 2 {
		t.Fatalf("count=%d, want 2", count)
	}
	if comp[0] != comp[1] || comp[2] != comp[3] || comp[0] == comp[2] {
		t.Errorf("bad grouping: %v", comp)
	}
}

func TestSelfLoop(t *testing.T) {
	comp, count := Strong(2, adjOf([][2]int{{0, 0}, {0, 1}}, 2))
	if count != 2 || comp[0] == comp[1] {
		t.Errorf("self loop mishandled: comp=%v count=%d", comp, count)
	}
}

func TestDeepPathNoOverflow(t *testing.T) {
	// A 200k-vertex path would overflow a recursive implementation's
	// stack budget in pathological settings; the explicit stack must cope.
	const n = 200000
	adj := func(i int) []int {
		if i+1 < n {
			return []int{i + 1}
		}
		return nil
	}
	comp, count := Strong(n, adj)
	if count != n {
		t.Fatalf("path graph: count=%d, want %d", count, n)
	}
	_ = comp
}

func TestLargeCycleDeep(t *testing.T) {
	const n = 100000
	adj := func(i int) []int { return []int{(i + 1) % n} }
	_, count := Strong(n, adj)
	if count != 1 {
		t.Fatalf("n-cycle: count=%d, want 1", count)
	}
}

func TestSizesAndNontrivialStats(t *testing.T) {
	comp := []int{0, 0, 1, 2, 2, 2}
	sizes := Sizes(comp, 3)
	if sizes[0] != 2 || sizes[1] != 1 || sizes[2] != 3 {
		t.Errorf("Sizes = %v", sizes)
	}
	in, max := NontrivialStats(comp, 3)
	if in != 5 || max != 3 {
		t.Errorf("NontrivialStats = (%d,%d), want (5,3)", in, max)
	}
}

// reachable computes reachability from u via BFS.
func reachable(n int, adj func(int) []int, u int) []bool {
	seen := make([]bool, n)
	queue := []int{u}
	seen[u] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range adj(v) {
			if !seen[w] {
				seen[w] = true
				queue = append(queue, w)
			}
		}
	}
	return seen
}

// TestQuickAgainstReachability cross-checks Tarjan against the definition:
// u and v share a component iff u reaches v and v reaches u.
func TestQuickAgainstReachability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		var edges [][2]int
		m := rng.Intn(3 * n)
		for i := 0; i < m; i++ {
			edges = append(edges, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		adj := adjOf(edges, n)
		comp, _ := Strong(n, adj)
		reach := make([][]bool, n)
		for u := 0; u < n; u++ {
			reach[u] = reachable(n, adj, u)
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				same := reach[u][v] && reach[v][u]
				if same != (comp[u] == comp[v]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
