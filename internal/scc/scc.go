// Package scc computes strongly connected components of directed graphs
// given as adjacency lists. It is used by the solver's oracle (to predict
// eventual cycle membership), by the benchmark harness (Table 1's SCC
// columns and Figure 11's denominators) and by the Steensgaard baseline.
package scc

// Strong returns, for a directed graph with n vertices and adjacency
// function adj, a slice comp of length n assigning each vertex the index of
// its strongly connected component, and the number of components. Component
// indices are in reverse topological order: every edge u → v with
// comp[u] != comp[v] has comp[u] > comp[v].
//
// The implementation is Tarjan's algorithm with an explicit stack, so it is
// safe on graphs whose DFS depth would overflow a goroutine stack.
func Strong(n int, adj func(int) []int) (comp []int, count int) {
	const unvisited = -1
	comp = make([]int, n)
	index := make([]int, n)
	lowlink := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}

	var stack []int // Tarjan's component stack
	next := 0       // next DFS index

	// frame is an explicit DFS activation record: vertex v, and the
	// position within adj(v) to resume from.
	type frame struct {
		v    int
		edge int
	}
	var dfs []frame

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		dfs = append(dfs[:0], frame{v: root})
		index[root] = next
		lowlink[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true

		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := f.v
			out := adj(v)
			if f.edge < len(out) {
				w := out[f.edge]
				f.edge++
				if index[w] == unvisited {
					index[w] = next
					lowlink[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					dfs = append(dfs, frame{v: w})
				} else if onStack[w] && index[w] < lowlink[v] {
					lowlink[v] = index[w]
				}
				continue
			}
			// v is finished: pop a component if v is a root.
			if lowlink[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = count
					if w == v {
						break
					}
				}
				count++
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				parent := dfs[len(dfs)-1].v
				if lowlink[v] < lowlink[parent] {
					lowlink[parent] = lowlink[v]
				}
			}
		}
	}
	return comp, count
}

// Sizes returns the size of each component given the assignment produced by
// Strong.
func Sizes(comp []int, count int) []int {
	sizes := make([]int, count)
	for _, c := range comp {
		sizes[c]++
	}
	return sizes
}

// NontrivialStats reports how many vertices belong to non-trivial
// components (size ≥ 2) and the size of the largest component, given a
// component assignment. These are the two SCC statistics Table 1 reports
// for initial and final constraint graphs.
func NontrivialStats(comp []int, count int) (varsInSCCs, maxSCC int) {
	sizes := Sizes(comp, count)
	for _, sz := range sizes {
		if sz >= 2 {
			varsInSCCs += sz
			if sz > maxSCC {
				maxSCC = sz
			}
		}
	}
	return varsInSCCs, maxSCC
}
