package randgraph

import (
	"testing"

	"polce/internal/model"
)

func TestClosureDeterministic(t *testing.T) {
	ps := Params{N: 200, M: 133, P: 1.0 / 200, Seed: 7}
	a := Closure(ps)
	b := Closure(ps)
	if a != b {
		t.Fatalf("closure not deterministic: %+v vs %+v", a, b)
	}
}

func TestSFDoesMoreWorkThanIF(t *testing.T) {
	// Theorem 5.1's direction: at the paper's operating point SF does
	// strictly more closure work than IF on average.
	ps := Params{N: 1500, M: 1000, P: 1.0 / 1500, Seed: 3}
	ratio := MeanClosureRatio(ps, 20)
	if ratio <= 1.2 {
		t.Errorf("mean work ratio %.2f, want clearly above 1 (paper predicts ≈2.5, measures 4.1)", ratio)
	}
	if ratio > 12 {
		t.Errorf("mean work ratio %.2f implausibly high", ratio)
	}
}

func TestMeanReachMatchesTheorem52(t *testing.T) {
	// At density p = 2/n the expected number of nodes reachable through
	// order-decreasing chains is below the (e²−3)/2 ≈ 2.19 bound and in
	// its vicinity.
	got := MeanReach(400, 2.0/400, 11, 10)
	bound := model.ExpectedReachBound(2)
	if got > bound*1.15 {
		t.Errorf("measured reach %.3f well above the theorem's bound %.3f", got, bound)
	}
	if got < 0.8 {
		t.Errorf("measured reach %.3f implausibly small", got)
	}
}

func TestMeanReachSparseVsDense(t *testing.T) {
	sparse := MeanReach(300, 1.0/300, 5, 8)
	dense := MeanReach(300, 4.0/300, 5, 8)
	if dense <= sparse {
		t.Errorf("reach should grow with density: sparse %.3f dense %.3f", sparse, dense)
	}
}

func TestClosureWorkGrowsWithDensity(t *testing.T) {
	lo := Closure(Params{N: 500, M: 300, P: 0.5 / 500, Seed: 9})
	hi := Closure(Params{N: 500, M: 300, P: 2.0 / 500, Seed: 9})
	if hi.WorkSF <= lo.WorkSF {
		t.Errorf("SF work should grow with density: %d vs %d", lo.WorkSF, hi.WorkSF)
	}
	if hi.WorkIF <= lo.WorkIF {
		t.Errorf("IF work should grow with density: %d vs %d", lo.WorkIF, hi.WorkIF)
	}
}
