// Package randgraph runs Monte-Carlo experiments on the random constraint
// graphs G(n, p) of the paper's Section 5, validating the analytical model
// against direct simulation: the expected closure work of standard versus
// inductive form under perfect cycle elimination (Theorem 5.1), and the
// expected number of nodes reachable through order-decreasing chains
// (Theorem 5.2).
//
// The closures here are small, abstract re-implementations working on
// plain integer graphs — deliberately independent of internal/core — so
// they double as a cross-check of the solver's asymptotic behaviour.
package randgraph

import (
	"math/rand"

	"polce/internal/scc"
)

// Params describes one random-graph experiment.
type Params struct {
	N    int     // variable nodes
	M    int     // constructed (source/sink) nodes
	P    float64 // edge probability per ordered pair
	Seed int64
}

// ClosureResult reports the closure work of one simulated run.
type ClosureResult struct {
	WorkSF int64 // edge additions performed by the SF closure
	WorkIF int64 // edge additions performed by the IF closure
}

// edge kinds in the abstract graph: cons nodes are numbered n..n+m-1.
type graph struct {
	n, m int
	// consToVar[c] lists vars with an initial edge c→X.
	consToVar [][]int
	// varToVar and varToCons are the var-sourced initial edges.
	varToVar  [][]int
	varToCons [][]int
}

// generate draws G(n, p): each meaningful ordered pair (cons→var,
// var→var, var→cons) is an edge with probability p. Cons→cons pairs are
// irrelevant to closure work and omitted.
func generate(ps Params, rng *rand.Rand) *graph {
	g := &graph{
		n: ps.N, m: ps.M,
		consToVar: make([][]int, ps.M),
		varToVar:  make([][]int, ps.N),
		varToCons: make([][]int, ps.N),
	}
	for c := 0; c < ps.M; c++ {
		for x := 0; x < ps.N; x++ {
			if rng.Float64() < ps.P {
				g.consToVar[c] = append(g.consToVar[c], x)
			}
		}
	}
	for x := 0; x < ps.N; x++ {
		for y := 0; y < ps.N; y++ {
			if x != y && rng.Float64() < ps.P {
				g.varToVar[x] = append(g.varToVar[x], y)
			}
		}
	}
	for x := 0; x < ps.N; x++ {
		for c := 0; c < ps.M; c++ {
			if rng.Float64() < ps.P {
				g.varToCons[x] = append(g.varToCons[x], c)
			}
		}
	}
	return g
}

// condense collapses the strongly connected components of the var-var
// graph — the model's "perfect cycle elimination" — returning the
// component assignment and count.
func (g *graph) condense() ([]int, int) {
	return scc.Strong(g.n, func(x int) []int { return g.varToVar[x] })
}

// Closure simulates both closures on the same random graph with perfect
// cycle elimination, counting every attempted edge addition (the model's
// work measure, redundant additions included).
func Closure(ps Params) ClosureResult {
	rng := rand.New(rand.NewSource(ps.Seed))
	g := generate(ps, rng)
	comp, nv := g.condense()

	// Rebuild the condensed initial adjacency.
	type key struct{ a, b int }
	predS := make([]map[int]bool, nv) // cons sources per var class
	succV := make([]map[int]bool, nv) // var class successors
	succK := make([]map[int]bool, nv) // cons sinks per var class
	predV := make([]map[int]bool, nv) // var class predecessors (IF only)
	for i := 0; i < nv; i++ {
		predS[i] = map[int]bool{}
		succV[i] = map[int]bool{}
		succK[i] = map[int]bool{}
		predV[i] = map[int]bool{}
	}
	var initSrc []key // (c, class)
	var initVV []key
	var initSnk []key // (class, c)
	for c := range g.consToVar {
		for _, x := range g.consToVar[c] {
			initSrc = append(initSrc, key{c, comp[x]})
		}
	}
	for x := range g.varToVar {
		for _, y := range g.varToVar[x] {
			if comp[x] != comp[y] {
				initVV = append(initVV, key{comp[x], comp[y]})
			}
		}
	}
	for x := range g.varToCons {
		for _, c := range g.varToCons[x] {
			initSnk = append(initSnk, key{comp[x], c})
		}
	}

	res := ClosureResult{}

	// --- Standard form -----------------------------------------------
	{
		var work int64
		ccPairs := map[key]bool{}
		type item struct{ c, x int } // pending source propagation c ⊆ x
		var stack []item
		addSrc := func(c, x int, initial bool) {
			if !initial {
				work++
			}
			if predS[x][c] {
				return
			}
			predS[x][c] = true
			stack = append(stack, item{c, x})
		}
		// Seed the initial edges (not counted as closure work).
		for i := range predS {
			clear(predS[i])
			clear(succV[i])
			clear(succK[i])
		}
		for _, e := range initVV {
			succV[e.a][e.b] = true
		}
		for _, e := range initSnk {
			succK[e.a][e.b] = true
		}
		for _, e := range initSrc {
			addSrc(e.a, e.b, true)
		}
		for len(stack) > 0 {
			it := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for y := range succV[it.x] {
				addSrc(it.c, y, false)
			}
			for k := range succK[it.x] {
				work++ // the (c, c') addition
				ccPairs[key{it.c, k}] = true
			}
		}
		res.WorkSF = work
	}

	// --- Inductive form ----------------------------------------------
	{
		var work int64
		order := rng.Perm(nv)
		pos := make([]int, nv)
		for i, v := range order {
			pos[v] = i
		}
		for i := 0; i < nv; i++ {
			clear(predS[i])
			clear(succV[i])
			clear(succK[i])
			clear(predV[i])
		}
		// pending constraints: l ⊆ r where l may be a source (consBase+c)
		// or var class, r may be a sink or var class.
		const consBase = 1 << 30
		type item struct{ l, r int }
		var stack []item
		var addEdge func(l, r int, initial bool)
		addEdge = func(l, r int, initial bool) {
			if !initial {
				work++
			}
			switch {
			case l >= consBase && r >= consBase:
				// source ⊆ sink: counted, no propagation
			case l >= consBase:
				c := l - consBase
				if predS[r][c] {
					return
				}
				predS[r][c] = true
				for y := range succV[r] {
					stack = append(stack, item{l, y})
				}
				for k := range succK[r] {
					stack = append(stack, item{l, consBase + k})
				}
			case r >= consBase:
				k := r - consBase
				if succK[l][k] {
					return
				}
				succK[l][k] = true
				for c := range predS[l] {
					stack = append(stack, item{consBase + c, r})
				}
				for v := range predV[l] {
					stack = append(stack, item{v, r})
				}
			default:
				if l == r {
					return
				}
				if pos[l] > pos[r] { // successor edge l → r
					if succV[l][r] {
						return
					}
					succV[l][r] = true
					for c := range predS[l] {
						stack = append(stack, item{consBase + c, r})
					}
					for v := range predV[l] {
						stack = append(stack, item{v, r})
					}
				} else { // predecessor edge l ⋯→ r
					if predV[r][l] {
						return
					}
					predV[r][l] = true
					for y := range succV[r] {
						stack = append(stack, item{l, y})
					}
					for k := range succK[r] {
						stack = append(stack, item{l, consBase + k})
					}
				}
			}
		}
		drain := func() {
			for len(stack) > 0 {
				it := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				addEdge(it.l, it.r, false)
			}
		}
		for _, e := range initSrc {
			addEdge(consBase+e.a, e.b, true)
			drain()
		}
		for _, e := range initVV {
			addEdge(e.a, e.b, true)
			drain()
		}
		for _, e := range initSnk {
			addEdge(e.a, consBase+e.b, true)
			drain()
		}
		res.WorkIF = work
	}
	return res
}

// MeanClosureRatio runs `trials` independent closures and returns the mean
// WorkSF/WorkIF ratio — the Monte-Carlo counterpart of Theorem 5.1.
func MeanClosureRatio(ps Params, trials int) float64 {
	var sum float64
	for t := 0; t < trials; t++ {
		p := ps
		p.Seed = ps.Seed + int64(t)
		r := Closure(p)
		if r.WorkIF > 0 {
			sum += float64(r.WorkSF) / float64(r.WorkIF)
		}
	}
	return sum / float64(trials)
}

// MeanReach measures the expected number of variables reachable through
// order-decreasing chains in a random directed graph with n nodes and edge
// probability p — the Monte-Carlo counterpart of Theorem 5.2. Each node's
// chain-reachable set is counted by DFS following inclusion edges backward
// toward strictly smaller order.
func MeanReach(n int, p float64, seed int64, trials int) float64 {
	var total, count float64
	for t := 0; t < trials; t++ {
		rng := rand.New(rand.NewSource(seed + int64(t)))
		// incoming[y] lists x for edges x ⊆ y.
		incoming := make([][]int, n)
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				if x != y && rng.Float64() < p {
					incoming[y] = append(incoming[y], x)
				}
			}
		}
		order := rng.Perm(n)
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		mark := make([]int, n)
		for i := range mark {
			mark[i] = -1
		}
		var dfs func(u, epoch int) int
		dfs = func(u, epoch int) int {
			mark[u] = epoch
			visited := 1
			for _, v := range incoming[u] {
				if mark[v] != epoch && pos[v] < pos[u] {
					visited += dfs(v, epoch)
				}
			}
			return visited
		}
		for u := 0; u < n; u++ {
			total += float64(dfs(u, u) - 1) // exclude u itself
			count++
		}
	}
	return total / count
}
