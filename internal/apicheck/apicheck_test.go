package apicheck

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite api/polce.api with the current exported surface")

// repoRoot locates the repository from this source file, so the test works
// from any working directory (go test ./..., CI, IDEs).
func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file)))
}

// TestPublicAPIUnchanged is the compatibility gate: the exported surface of
// the root polce package must match the checked-in golden api/polce.api.
// A diff here means the public API changed — if that is intentional,
// regenerate the golden with `go test ./internal/apicheck -update` and
// commit it so the change is visible in review.
func TestPublicAPIUnchanged(t *testing.T) {
	root := repoRoot(t)
	got, err := Surface(root)
	if err != nil {
		t.Fatalf("rendering API surface: %v", err)
	}
	golden := filepath.Join(root, "api", "polce.api")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed:\n%s\nIf intentional, run: go test ./internal/apicheck -update",
			diff(string(want), got))
	}
}

// TestSurfaceIsDeterministic guards the gate itself: two renders must be
// byte-identical, or CI would flake.
func TestSurfaceIsDeterministic(t *testing.T) {
	root := repoRoot(t)
	a, err := Surface(root)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Surface(root)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("two renders of the API surface differ")
	}
}

// TestSurfaceMentionsCoreAPI spot-checks that the render sees the
// load-bearing exported names, so an empty or misrooted render can't pass
// the gate vacuously.
func TestSurfaceMentionsCoreAPI(t *testing.T) {
	got, err := Surface(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"func New(opt Options) *Solver",
		"func (s *Solver) AddBatchContext(ctx context.Context, batch []Constraint) (applied int, id BatchID, err error)",
		"func (s *Solver) RetractBatch(ids ...BatchID) (RetractReport, error)",
		"func (s *Solver) Snapshot() *Snapshot",
		"func (sn *Snapshot) LeastSolution(v *Var) []*Term",
		"var ErrQueueFull",
		"var ErrUnknownBatch",
		"type BatchID uint64",
		"type Solver struct",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("surface is missing %q", want)
		}
	}
	if strings.Contains(got, "\tmu ") || strings.Contains(got, "snap *") {
		t.Error("surface leaks unexported struct fields")
	}
}

// diff prints a minimal line diff, enough to see what moved in review.
func diff(want, got string) string {
	wantLines := strings.Split(want, "\n")
	gotLines := strings.Split(got, "\n")
	var b strings.Builder
	max := len(wantLines)
	if len(gotLines) > max {
		max = len(gotLines)
	}
	shown := 0
	for i := 0; i < max && shown < 40; i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			fmt.Fprintf(&b, "line %d:\n  golden: %s\n  now:    %s\n", i+1, w, g)
			shown++
		}
	}
	return b.String()
}
