package cfa

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"polce"
	"polce/internal/mlang"
)

func run(t *testing.T, src string, opts Options) (*Result, mlang.Expr) {
	t.Helper()
	prog, err := mlang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(prog, opts), prog
}

// appLabels collects application labels in source order.
func appLabels(prog mlang.Expr) []int {
	var out []int
	mlang.Walk(prog, func(e mlang.Expr) {
		if _, ok := e.(*mlang.App); ok {
			out = append(out, e.Label())
		}
	})
	sort.Ints(out)
	return out
}

func TestIdentityApplication(t *testing.T) {
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		for _, pol := range []polce.CyclePolicy{polce.CycleNone, polce.CycleOnline} {
			r, prog := run(t, "(fn x => x) 41", Options{Form: form, Cycles: pol, Seed: 1})
			apps := appLabels(prog)
			if len(apps) != 1 {
				t.Fatalf("apps = %v", apps)
			}
			clos := r.CalledAt(apps[0])
			if len(clos) != 1 || clos[0].Lam.Param != "x" {
				t.Fatalf("%v/%v: CalledAt = %v", form, pol, clos)
			}
			// The program's value: the identity returns its numeric
			// argument.
			root, ok := r.Root.(*polce.Var)
			if !ok {
				t.Fatalf("root is %T", r.Root)
			}
			cs, hasNum := r.ValuesOf(root)
			if len(cs) != 0 || !hasNum {
				t.Errorf("%v/%v: program value = (%v, num=%v), want pure num", form, pol, cs, hasNum)
			}
		}
	}
}

func TestHigherOrderFlow(t *testing.T) {
	// twice f = f ∘ f; both inner applications must resolve to the same
	// lambda `inc`.
	src := `
let twice = fn f => fn x => f (f x) in
let inc = fn n => n + 1 in
twice inc 3`
	r, prog := run(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 2})
	resolved := 0
	mlang.Walk(prog, func(e mlang.Expr) {
		if _, ok := e.(*mlang.App); !ok {
			return
		}
		for _, c := range r.CalledAt(e.Label()) {
			if c.Lam.Param == "n" { // the inc lambda
				resolved++
			}
		}
	})
	if resolved < 2 {
		t.Errorf("inc resolved at %d sites, want ≥2 (both f applications)", resolved)
	}
	if r.Sys.ErrorCount() != 0 {
		t.Errorf("well-typed program produced %d mismatches", r.Sys.ErrorCount())
	}
}

func TestLetrecCreatesCycleAndCollapses(t *testing.T) {
	// A recursive identity-like function: loop flows into its own
	// application, creating a constraint cycle.
	src := `
letrec loop n = if0 n then 0 else loop (n - 1) in
loop 10`
	plain, _ := run(t, src, Options{Form: polce.IF, Cycles: polce.CycleNone, Seed: 3})
	online, _ := run(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})
	if online.Sys.Stats().Work > plain.Sys.Stats().Work {
		t.Errorf("online work %d exceeds plain %d", online.Sys.Stats().Work, plain.Sys.Stats().Work)
	}
	// Call graph: the single call site in the body plus the recursive
	// site both resolve to loop.
	if online.CallGraphEdges() < 2 {
		t.Errorf("call graph edges = %d, want ≥2", online.CallGraphEdges())
	}
}

func TestSelfApplication(t *testing.T) {
	// (fn x => x x) (fn y => y): classic 0-CFA workout.
	r, prog := run(t, "(fn x => x x) (fn y => y)", Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 4})
	apps := appLabels(prog)
	if len(apps) != 2 {
		t.Fatalf("apps = %v", apps)
	}
	// The inner x x site must resolve to fn y => y (x is bound to it).
	found := false
	for _, l := range apps {
		for _, c := range r.CalledAt(l) {
			if c.Lam.Param == "y" {
				found = true
			}
		}
	}
	if !found {
		t.Error("self application never resolves to fn y => y")
	}
}

func TestConditionalMerge(t *testing.T) {
	src := `
let f = fn a => a in
let g = fn b => b in
let pick = fn c => if0 c then f else g in
pick 0 7`
	r, prog := run(t, src, Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 5})
	// The outer application (pick 0) 7 must see both f and g.
	var outer int
	mlang.Walk(prog, func(e mlang.Expr) {
		if app, ok := e.(*mlang.App); ok {
			if _, isApp := app.Fn.(*mlang.App); isApp {
				outer = app.Label()
			}
		}
	})
	params := map[string]bool{}
	for _, c := range r.CalledAt(outer) {
		params[c.Lam.Param] = true
	}
	if !params["a"] || !params["b"] {
		t.Errorf("conditional closures = %v, want both a and b lambdas", params)
	}
}

// TestAllConfigsAgree: the call graph must be identical across every
// representation and cycle policy, including the oracle.
func TestAllConfigsAgree(t *testing.T) {
	src := GenProgram(11, 600)
	prog, err := mlang.Parse(src)
	if err != nil {
		t.Fatalf("generated program does not parse: %v\n%s", err, src)
	}

	snapshot := func(r *Result) map[int][]int {
		m := map[int][]int{}
		for label := range r.AppSites {
			var ls []int
			for _, c := range r.CalledAt(label) {
				ls = append(ls, c.Lam.Label())
			}
			sort.Ints(ls)
			m[label] = ls
		}
		return m
	}

	ref := Analyze(prog, Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: 0})
	want := snapshot(ref)
	oracle := polce.BuildOracle(ref.Sys)

	configs := []Options{
		{Form: polce.IF, Cycles: polce.CycleNone, Seed: 0},
		{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 0},
		{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 0},
		{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 12345},
		{Form: polce.SF, Cycles: polce.CyclePeriodic, Seed: 0, PeriodicInterval: 100},
		{Form: polce.IF, Cycles: polce.CyclePeriodic, Seed: 0, PeriodicInterval: 100},
		{Form: polce.SF, Cycles: polce.CycleOracle, Seed: 0, Oracle: oracle},
		{Form: polce.IF, Cycles: polce.CycleOracle, Seed: 0, Oracle: oracle},
	}
	for _, cfg := range configs {
		got := snapshot(Analyze(prog, cfg))
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%v/%v: call graph differs", cfg.Form, cfg.Cycles)
		}
	}
}

// TestClosureWorkloadsAreCyclic confirms the premise of the future-work
// experiment: higher-order programs create proportionally more constraint
// cycles than the C benchmarks do, so online elimination matters at least
// as much here.
func TestClosureWorkloadsAreCyclic(t *testing.T) {
	prog := mlang.MustParse(GenProgram(7, 2000))
	plain := Analyze(prog, Options{Form: polce.IF, Cycles: polce.CycleNone, Seed: 1})
	inCycles, _ := plain.Sys.CycleClassStats()
	if inCycles == 0 {
		t.Fatal("no cyclic variables in a higher-order workload")
	}
	online := Analyze(prog, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	st := online.Sys.Stats()
	if st.VarsEliminated == 0 {
		t.Error("online elimination found nothing")
	}
	if st.Work > plain.Sys.Stats().Work {
		t.Errorf("online work %d exceeds plain %d", st.Work, plain.Sys.Stats().Work)
	}
}

func TestCallGraphDOT(t *testing.T) {
	r, _ := run(t, "let id = fn x => x in id 1", Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	var sb strings.Builder
	if err := r.WriteCallGraphDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph callgraph", "app@", "fn x@", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("call graph DOT missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	if err := r.WriteCallGraphDOT(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("call graph DOT not deterministic")
	}
}

func TestGenProgramDeterministicAndParses(t *testing.T) {
	a := GenProgram(3, 800)
	if a != GenProgram(3, 800) {
		t.Fatal("generator not deterministic")
	}
	if a == GenProgram(4, 800) {
		t.Fatal("seeds do not vary output")
	}
	for seed := int64(0); seed < 6; seed++ {
		src := GenProgram(seed, 500)
		if _, err := mlang.Parse(src); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
	}
}
