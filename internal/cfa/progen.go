package cfa

import (
	"fmt"
	"math/rand"
	"strings"
)

// GenProgram produces a random higher-order program of roughly `size`
// expression nodes, in mlang concrete syntax. The shapes are the ones that
// stress closure analysis: chains of higher-order combinators (compose,
// twice, apply), recursive functions passed as values, conditionals mixing
// closure sources, and accumulator-passing loops. These create constraint
// cycles at a far higher rate than C programs — the regime in which the
// paper expected online cycle elimination to pay off for closure analysis.
//
// Generation is deterministic in (seed, size).
func GenProgram(seed int64, size int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder

	nFuncs := size / 28
	if nFuncs < 4 {
		nFuncs = 4
	}

	// A pool of named combinators bound by nested lets; each later
	// binding can reference earlier ones, and the final body applies a
	// random sample of them to each other.
	names := []string{"id", "zero"}
	b.WriteString("let id = fn x => x in\n")
	b.WriteString("let zero = fn x => 0 in\n")

	pick := func() string { return names[rng.Intn(len(names))] }

	for i := 0; i < nFuncs; i++ {
		name := fmt.Sprintf("f%d", i)
		switch rng.Intn(6) {
		case 0: // compose two earlier functions
			b.WriteString(fmt.Sprintf("let %s = fn x => %s (%s x) in\n", name, pick(), pick()))
		case 1: // twice-style self application of the argument
			b.WriteString(fmt.Sprintf("let %s = fn g => fn x => g (g x) in\n", name))
		case 2: // recursive accumulator that threads a closure through
			b.WriteString(fmt.Sprintf(
				"letrec %s n = if0 n then %s else %s (n - 1) in\n", name, pick(), name))
		case 3: // conditional closure source
			b.WriteString(fmt.Sprintf(
				"let %s = fn x => if0 x then %s else %s in\n", name, pick(), pick()))
		case 4: // curried application chain
			b.WriteString(fmt.Sprintf(
				"let %s = fn g => fn h => fn x => g (h x) in\n", name))
		default: // eta-expansion of an earlier function
			b.WriteString(fmt.Sprintf("let %s = fn x => %s x in\n", name, pick()))
		}
		names = append(names, name)
	}

	// Body: a cascade of applications mixing the pool, including
	// self-application patterns that close cycles.
	apps := nFuncs
	b.WriteString("(")
	for i := 0; i < apps; i++ {
		f, g, h := pick(), pick(), pick()
		switch rng.Intn(4) {
		case 0:
			b.WriteString(fmt.Sprintf("(%s %s 1) + ", f, g))
		case 1:
			b.WriteString(fmt.Sprintf("(%s (%s %s) 2) + ", f, g, h))
		case 2:
			b.WriteString(fmt.Sprintf("(%s %s (%s 3)) + ", f, g, h))
		default:
			b.WriteString(fmt.Sprintf("(%s (%s %s)) + ", f, g, h))
		}
	}
	b.WriteString("0)")
	return b.String()
}
