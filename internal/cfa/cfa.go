// Package cfa implements monovariant closure analysis (0-CFA, the
// set-based analysis of Heintze's SBA and of Palsberg/Schwartzbach) for
// the functional language in internal/mlang, formulated as inclusion
// constraints over internal/core — the client the paper's conclusion names
// as future work for online cycle elimination.
//
// Each lambda ℓ becomes a constructed value clo_ℓ(r̄ₓ, C_body) with a
// contravariant parameter set and covariant result set; an application
// e₁ e₂ adds the sink constraint C_{e₁} ⊆ clo(C̄_{e₂}, R). Recursion —
// letrec, self application, closures flowing through accumulators — is
// what creates constraint cycles, and higher-order programs create them
// at a much higher rate than C programs do, which makes closure analysis
// an even better fit for online elimination.
package cfa

import (
	"fmt"
	"io"
	"sort"

	"polce"
	"polce/internal/mlang"
)

// cloCon is the closure constructor: contravariant parameter, covariant
// body result.
var cloCon = polce.NewConstructor("clo", polce.Contravariant, polce.Covariant)

// numCon is the abstract integer value.
var numCon = polce.NewConstructor("num")

// Options configures an analysis run, mirroring the solver options.
type Options struct {
	Form             polce.Form
	Cycles           polce.CyclePolicy
	Seed             int64
	Oracle           *polce.Oracle
	PeriodicInterval int
}

// Closure describes one lambda abstraction's analysis artefacts.
type Closure struct {
	// Lam is the abstraction (identified by its Label).
	Lam *mlang.Lam
	// Param is the set variable of the parameter's bindings.
	Param *polce.Var
	// Result is the set variable of the body's value.
	Result *polce.Var
	// Value is the clo term representing the abstraction.
	Value *polce.Term
}

// Result is a completed closure analysis.
type Result struct {
	Sys *polce.Solver
	// Root is the whole program's value set.
	Root polce.Expr
	// Closures maps lambda labels to their artefacts.
	Closures map[int]*Closure
	// AppSites maps application labels to the set variable of the
	// operator position (whose closure content is the call graph).
	AppSites map[int]*polce.Var

	valOf map[*polce.Term]*Closure
	num   *polce.Term
}

// Analyze runs 0-CFA over the program.
func Analyze(program mlang.Expr, opts Options) *Result {
	sys := polce.New(polce.Options{
		Form:             opts.Form,
		Cycles:           opts.Cycles,
		Seed:             opts.Seed,
		Oracle:           opts.Oracle,
		PeriodicInterval: opts.PeriodicInterval,
	})
	r := &Result{
		Sys:      sys,
		Closures: map[int]*Closure{},
		AppSites: map[int]*polce.Var{},
		valOf:    map[*polce.Term]*Closure{},
		num:      polce.NewTerm(numCon),
	}
	g := &gen{sys: sys, res: r, env: map[string][]*polce.Var{}}
	r.Root = g.gen(program)
	return r
}

// CalledAt returns the closures that may be applied at the application
// with the given label, in deterministic order.
func (r *Result) CalledAt(appLabel int) []*Closure {
	v, ok := r.AppSites[appLabel]
	if !ok {
		return nil
	}
	var out []*Closure
	for _, t := range r.Sys.LeastSolution(v) {
		if c, ok := r.valOf[t]; ok {
			out = append(out, c)
		}
	}
	return out
}

// ValuesOf filters a least solution into closures (and reports whether an
// integer may also appear).
func (r *Result) ValuesOf(v *polce.Var) (clos []*Closure, hasNum bool) {
	for _, t := range r.Sys.LeastSolution(v) {
		if c, ok := r.valOf[t]; ok {
			clos = append(clos, c)
		} else if t == r.num {
			hasNum = true
		}
	}
	return clos, hasNum
}

// CallGraphEdges counts application→lambda resolution edges, the output
// size measure for closure analysis.
func (r *Result) CallGraphEdges() int {
	n := 0
	for label := range r.AppSites {
		n += len(r.CalledAt(label))
	}
	return n
}

// WriteCallGraphDOT renders the resolved call graph in Graphviz DOT
// format: application sites (circles, labelled app@N) point to the
// lambdas they may invoke (boxes, labelled by parameter and label).
// Output is deterministic.
func (r *Result) WriteCallGraphDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph callgraph {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [fontsize=10];")
	var apps []int
	for label := range r.AppSites {
		apps = append(apps, label)
	}
	sort.Ints(apps)
	lamSeen := map[int]bool{}
	for _, label := range apps {
		clos := r.CalledAt(label)
		if len(clos) == 0 {
			continue
		}
		fmt.Fprintf(w, "  a%d [label=\"app@%d\"];\n", label, label)
		for _, c := range clos {
			if !lamSeen[c.Lam.Label()] {
				lamSeen[c.Lam.Label()] = true
				fmt.Fprintf(w, "  l%d [label=\"fn %s@%d\", shape=box];\n",
					c.Lam.Label(), c.Lam.Param, c.Lam.Label())
			}
		}
		for _, c := range clos {
			fmt.Fprintf(w, "  a%d -> l%d;\n", label, c.Lam.Label())
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// gen is the constraint generator: a standard environment-based walk.
type gen struct {
	sys *polce.Solver
	res *Result
	env map[string][]*polce.Var // lexical scope stack per name
}

func (g *gen) bind(name string, v *polce.Var) {
	g.env[name] = append(g.env[name], v)
}

func (g *gen) unbind(name string) {
	g.env[name] = g.env[name][:len(g.env[name])-1]
}

func (g *gen) lookup(name string) *polce.Var {
	if vs := g.env[name]; len(vs) > 0 {
		return vs[len(vs)-1]
	}
	return nil
}

// gen returns the set expression for e's value.
func (g *gen) gen(e mlang.Expr) polce.Expr {
	switch x := e.(type) {
	case *mlang.Var:
		if v := g.lookup(x.Name); v != nil {
			return v
		}
		// Unbound variable: an empty set (the program is open).
		return g.sys.Fresh("unbound$" + x.Name)
	case *mlang.Num:
		return g.res.num
	case *mlang.Lam:
		param := g.sys.Fresh(fmt.Sprintf("x%s@%d", x.Param, x.Label()))
		result := g.sys.Fresh(fmt.Sprintf("body@%d", x.Label()))
		g.bind(x.Param, param)
		body := g.gen(x.Body)
		g.unbind(x.Param)
		g.sys.AddConstraint(body, result)
		clo := &Closure{Lam: x, Param: param, Result: result,
			Value: polce.NewTerm(cloCon, param, result)}
		g.res.Closures[x.Label()] = clo
		g.res.valOf[clo.Value] = clo
		return clo.Value
	case *mlang.App:
		fn := g.gen(x.Fn)
		arg := g.gen(x.Arg)
		// Materialise the operator set so the call graph is queryable.
		site := g.sys.Fresh(fmt.Sprintf("op@%d", x.Label()))
		g.sys.AddConstraint(fn, site)
		g.res.AppSites[x.Label()] = site
		res := g.sys.Fresh(fmt.Sprintf("app@%d", x.Label()))
		g.sys.AddConstraint(site, polce.NewTerm(cloCon, arg, res))
		return res
	case *mlang.Let:
		bound := g.gen(x.Bound)
		v := g.sys.Fresh(fmt.Sprintf("let%s@%d", x.Name, x.Label()))
		g.sys.AddConstraint(bound, v)
		g.bind(x.Name, v)
		defer g.unbind(x.Name)
		return g.gen(x.Body)
	case *mlang.Letrec:
		f := g.sys.Fresh(fmt.Sprintf("rec%s@%d", x.Name, x.Label()))
		g.bind(x.Name, f)
		defer g.unbind(x.Name)
		// The function value: a lambda whose body sees f in scope.
		param := g.sys.Fresh(fmt.Sprintf("x%s@%d", x.Param, x.Label()))
		result := g.sys.Fresh(fmt.Sprintf("body@%d", x.Label()))
		g.bind(x.Param, param)
		body := g.gen(x.FnBody)
		g.unbind(x.Param)
		g.sys.AddConstraint(body, result)
		clo := &Closure{
			Lam:    &mlang.Lam{Param: x.Param, Body: x.FnBody},
			Param:  param,
			Result: result,
			Value:  polce.NewTerm(cloCon, param, result),
		}
		g.res.Closures[x.Label()] = clo
		g.res.valOf[clo.Value] = clo
		g.sys.AddConstraint(clo.Value, f)
		return g.gen(x.Body)
	case *mlang.If0:
		g.gen(x.Cond)
		res := g.sys.Fresh(fmt.Sprintf("if@%d", x.Label()))
		g.sys.AddConstraint(g.gen(x.Then), res)
		g.sys.AddConstraint(g.gen(x.Else), res)
		return res
	case *mlang.Binop:
		g.gen(x.L)
		g.gen(x.R)
		return g.res.num
	}
	panic(fmt.Sprintf("cfa: unknown expression %T", e))
}
