package mlang

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseNeverPanicsOnRandomInput(t *testing.T) {
	property := func(data []byte) bool {
		Parse(string(data)) // may error, must not panic
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	pieces := []string{
		"fn", "let", "letrec", "in", "if0", "then", "else", "=>", "=",
		"(", ")", "+", "-", "x", "f", "42", "0",
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 400; trial++ {
		var src string
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			src += pieces[rng.Intn(len(pieces))] + " "
		}
		Parse(src)
	}
}
