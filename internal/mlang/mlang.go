// Package mlang is a minimal functional language — lambda abstraction,
// application, let/letrec, conditionals and integer arithmetic — serving
// as the substrate for the closure analysis in internal/cfa. The paper's
// conclusion names closure analysis as the next client for online cycle
// elimination ("We plan to study the impact of online cycle elimination on
// the performance of closure analysis in future work"); this package and
// internal/cfa carry out that study.
//
// Concrete syntax:
//
//	e ::= fn x => e            (abstraction)
//	    | let x = e in e       (binding)
//	    | letrec f x = e in e  (recursive function)
//	    | if0 e then e else e  (zero test)
//	    | e e                  (application, left associative)
//	    | e + e | e - e        (arithmetic)
//	    | x | 42 | (e)
package mlang

import "fmt"

// Expr is an expression node. Every node carries a unique Label assigned
// by the parser; the closure analysis reports its results per label.
type Expr interface {
	Label() int
	String() string
	isExpr()
}

type base struct{ label int }

func (b base) Label() int { return b.label }

// Var is a variable reference.
type Var struct {
	base
	Name string
}

// Num is an integer literal.
type Num struct {
	base
	Value string
}

// Lam is a lambda abstraction fn Param => Body.
type Lam struct {
	base
	Param string
	Body  Expr
}

// App applies Fn to Arg.
type App struct {
	base
	Fn, Arg Expr
}

// Let binds Name to Bound in Body.
type Let struct {
	base
	Name        string
	Bound, Body Expr
}

// Letrec binds the recursive function Name with parameter Param and
// function body FnBody in Body.
type Letrec struct {
	base
	Name, Param  string
	FnBody, Body Expr
}

// If0 branches on whether Cond is zero.
type If0 struct {
	base
	Cond, Then, Else Expr
}

// Binop is integer arithmetic.
type Binop struct {
	base
	Op   byte // '+' or '-'
	L, R Expr
}

func (*Var) isExpr()    {}
func (*Num) isExpr()    {}
func (*Lam) isExpr()    {}
func (*App) isExpr()    {}
func (*Let) isExpr()    {}
func (*Letrec) isExpr() {}
func (*If0) isExpr()    {}
func (*Binop) isExpr()  {}

func (e *Var) String() string { return e.Name }
func (e *Num) String() string { return e.Value }
func (e *Lam) String() string { return "(fn " + e.Param + " => " + e.Body.String() + ")" }
func (e *App) String() string { return "(" + e.Fn.String() + " " + e.Arg.String() + ")" }
func (e *Let) String() string {
	return "(let " + e.Name + " = " + e.Bound.String() + " in " + e.Body.String() + ")"
}
func (e *Letrec) String() string {
	return "(letrec " + e.Name + " " + e.Param + " = " + e.FnBody.String() + " in " + e.Body.String() + ")"
}
func (e *If0) String() string {
	return "(if0 " + e.Cond.String() + " then " + e.Then.String() + " else " + e.Else.String() + ")"
}
func (e *Binop) String() string {
	return "(" + e.L.String() + " " + string(e.Op) + " " + e.R.String() + ")"
}

// Count returns the number of expression nodes under e.
func Count(e Expr) int {
	n := 0
	Walk(e, func(Expr) { n++ })
	return n
}

// Walk visits every node, parents first.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch x := e.(type) {
	case *Lam:
		Walk(x.Body, fn)
	case *App:
		Walk(x.Fn, fn)
		Walk(x.Arg, fn)
	case *Let:
		Walk(x.Bound, fn)
		Walk(x.Body, fn)
	case *Letrec:
		Walk(x.FnBody, fn)
		Walk(x.Body, fn)
	case *If0:
		Walk(x.Cond, fn)
		Walk(x.Then, fn)
		Walk(x.Else, fn)
	case *Binop:
		Walk(x.L, fn)
		Walk(x.R, fn)
	}
}

// --- parsing -------------------------------------------------------------

type parser struct {
	toks  []string
	pos   int
	label int
}

// Parse parses the concrete syntax above.
func Parse(src string) (Expr, error) {
	p := &parser{toks: tokenize(src)}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("mlang: trailing input at %q", p.toks[p.pos])
	}
	return e, nil
}

// MustParse parses or panics; for tests and generated programs.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func tokenize(src string) []string {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == '+' || c == '-':
			toks = append(toks, string(c))
			i++
		case c == '=':
			if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, "=>")
				i += 2
			} else {
				toks = append(toks, "=")
				i++
			}
		case c >= '0' && c <= '9':
			j := i
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(src) && (src[j] == '_' ||
				(src[j] >= 'a' && src[j] <= 'z') ||
				(src[j] >= 'A' && src[j] <= 'Z') ||
				(src[j] >= '0' && src[j] <= '9')) {
				j++
			}
			toks = append(toks, src[i:j])
			i = j
		default:
			toks = append(toks, string(c)) // surfaced as a parse error
			i++
		}
	}
	return toks
}

func (p *parser) next() int { p.label++; return p.label }

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) take() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *parser) expect(tok string) error {
	if got := p.take(); got != tok {
		return fmt.Errorf("mlang: expected %q, found %q", tok, got)
	}
	return nil
}

func isIdent(t string) bool {
	if t == "" || t == "fn" || t == "let" || t == "letrec" || t == "in" ||
		t == "if0" || t == "then" || t == "else" || t == "=>" || t == "=" {
		return false
	}
	c := t[0]
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNum(t string) bool {
	if t == "" {
		return false
	}
	for i := 0; i < len(t); i++ {
		if t[i] < '0' || t[i] > '9' {
			return false
		}
	}
	return true
}

func (p *parser) expr() (Expr, error) {
	switch p.peek() {
	case "fn":
		p.take()
		param := p.take()
		if !isIdent(param) {
			return nil, fmt.Errorf("mlang: bad parameter %q", param)
		}
		if err := p.expect("=>"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Lam{base{p.next()}, param, body}, nil
	case "let":
		p.take()
		name := p.take()
		if !isIdent(name) {
			return nil, fmt.Errorf("mlang: bad let name %q", name)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		bound, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Let{base{p.next()}, name, bound, body}, nil
	case "letrec":
		p.take()
		name := p.take()
		param := p.take()
		if !isIdent(name) || !isIdent(param) {
			return nil, fmt.Errorf("mlang: bad letrec header %q %q", name, param)
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		fnBody, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("in"); err != nil {
			return nil, err
		}
		body, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &Letrec{base{p.next()}, name, param, fnBody, body}, nil
	case "if0":
		p.take()
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("then"); err != nil {
			return nil, err
		}
		then, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("else"); err != nil {
			return nil, err
		}
		els, err := p.expr()
		if err != nil {
			return nil, err
		}
		return &If0{base{p.next()}, cond, then, els}, nil
	}
	return p.arith()
}

// arith parses application chains joined by + and -.
func (p *parser) arith() (Expr, error) {
	l, err := p.app()
	if err != nil {
		return nil, err
	}
	for p.peek() == "+" || p.peek() == "-" {
		op := p.take()[0]
		r, err := p.app()
		if err != nil {
			return nil, err
		}
		l = &Binop{base{p.next()}, op, l, r}
	}
	return l, nil
}

// app parses left-associative application of atoms.
func (p *parser) app() (Expr, error) {
	fn, err := p.atom()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t == "(" || isIdent(t) || isNum(t) {
			arg, err := p.atom()
			if err != nil {
				return nil, err
			}
			fn = &App{base{p.next()}, fn, arg}
			continue
		}
		return fn, nil
	}
}

func (p *parser) atom() (Expr, error) {
	t := p.peek()
	switch {
	case t == "(":
		p.take()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case isNum(t):
		p.take()
		return &Num{base{p.next()}, t}, nil
	case isIdent(t):
		p.take()
		return &Var{base{p.next()}, t}, nil
	}
	return nil, fmt.Errorf("mlang: unexpected token %q", t)
}
