package mlang

import (
	"strings"
	"testing"
)

func TestParseBasics(t *testing.T) {
	e := MustParse("fn x => x")
	lam, ok := e.(*Lam)
	if !ok || lam.Param != "x" {
		t.Fatalf("parsed %#v", e)
	}
	if _, ok := lam.Body.(*Var); !ok {
		t.Fatalf("body %#v", lam.Body)
	}
}

func TestParseApplicationAssociativity(t *testing.T) {
	e := MustParse("f g h")
	outer, ok := e.(*App)
	if !ok {
		t.Fatalf("not an application: %#v", e)
	}
	if _, ok := outer.Fn.(*App); !ok {
		t.Errorf("application not left-associative: %s", e)
	}
}

func TestParseLetAndLetrec(t *testing.T) {
	e := MustParse("let y = fn x => x in y y")
	let, ok := e.(*Let)
	if !ok || let.Name != "y" {
		t.Fatalf("let parsed wrong: %#v", e)
	}
	e = MustParse("letrec loop n = if0 n then 0 else loop (n - 1) in loop 10")
	lr, ok := e.(*Letrec)
	if !ok || lr.Name != "loop" || lr.Param != "n" {
		t.Fatalf("letrec parsed wrong: %#v", e)
	}
	if _, ok := lr.FnBody.(*If0); !ok {
		t.Errorf("letrec body not if0: %#v", lr.FnBody)
	}
}

func TestParseArith(t *testing.T) {
	e := MustParse("1 + 2 - 3")
	b, ok := e.(*Binop)
	if !ok || b.Op != '-' {
		t.Fatalf("top operator: %#v", e)
	}
	if inner, ok := b.L.(*Binop); !ok || inner.Op != '+' {
		t.Errorf("left-associativity broken: %s", e)
	}
}

func TestParseArrowNotSplit(t *testing.T) {
	// '=>' must never lex as '=' '>'.
	if _, err := Parse("fn x => x = 1"); err == nil {
		t.Error("trailing '=' should be an error")
	}
	MustParse("fn abc => abc")
}

func TestLabelsUniqueAndCount(t *testing.T) {
	e := MustParse("let f = fn x => x x in f (fn y => y)")
	seen := map[int]bool{}
	Walk(e, func(n Expr) {
		if seen[n.Label()] {
			t.Errorf("duplicate label %d", n.Label())
		}
		seen[n.Label()] = true
	})
	if Count(e) != len(seen) {
		t.Errorf("Count=%d, labels=%d", Count(e), len(seen))
	}
	if Count(e) < 8 {
		t.Errorf("Count=%d implausibly small", Count(e))
	}
}

func TestStringRoundtrip(t *testing.T) {
	srcs := []string{
		"fn x => x",
		"let c = fn f => fn g => fn x => f (g x) in c",
		"letrec go n = if0 n then 0 else go (n - 1) in go 5",
		"(fn x => x + 1) 41",
	}
	for _, src := range srcs {
		e1 := MustParse(src)
		s1 := e1.String()
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		if s2 := e2.String(); s1 != s2 {
			t.Errorf("String not a fixpoint:\n%s\n%s", s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"fn => x",
		"let = 1 in x",
		"let x 1 in x",
		"if0 1 then 2",
		"(x",
		"x)",
		"fn 1 => x",
		"letrec f = x in f",
		"x ?",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestShadowing(t *testing.T) {
	e := MustParse("let x = 1 in let x = fn y => y in x 2")
	if !strings.Contains(e.String(), "let x") {
		t.Fatalf("parse failed: %s", e)
	}
}
