package steens

import (
	"fmt"

	"polce/internal/cgen"
)

// This file walks statements and expressions, mirroring the Andersen
// generator's L-value discipline but emitting unifications instead of
// inclusion constraints.

func (a *Analysis) genFuncBody(d *cgen.FuncDecl) {
	l := a.declareFunc(d)
	sig := find(l.Cell).sig
	a.fname = d.Name
	a.ret = sig.Ret
	a.pushScope()
	for i, p := range d.Params {
		if i < len(sig.paramLocs) && p.Name != "" {
			a.bind(p.Name, sig.paramLocs[i], p.Type)
		}
	}
	a.genStmt(d.Body)
	a.popScope()
	a.ret = nil
	a.fname = ""
}

func (a *Analysis) genStmt(s cgen.Stmt) {
	switch st := s.(type) {
	case nil:
		return
	case *cgen.Block:
		if st == nil {
			return
		}
		a.pushScope()
		for _, inner := range st.Stmts {
			a.genStmt(inner)
		}
		a.popScope()
	case *cgen.DeclStmt:
		for _, d := range st.Decls {
			switch dd := d.(type) {
			case *cgen.VarDecl:
				l := a.declareVar(dd, a.fname)
				if dd.Init != nil && l != nil {
					a.genInit(l.Cell, dd.Init)
				}
			case *cgen.FuncDecl:
				a.declareFunc(dd)
			case *cgen.RecordDecl:
				a.tenv.DefineRecord(dd)
			}
		}
	case *cgen.ExprStmt:
		a.rval(st.X)
	case *cgen.If:
		a.rval(st.Cond)
		a.genStmt(st.Then)
		a.genStmt(st.Else)
	case *cgen.While:
		a.rval(st.Cond)
		a.genStmt(st.Body)
	case *cgen.DoWhile:
		a.genStmt(st.Body)
		a.rval(st.Cond)
	case *cgen.For:
		a.pushScope()
		a.genStmt(st.Init)
		if st.Cond != nil {
			a.rval(st.Cond)
		}
		if st.Post != nil {
			a.rval(st.Post)
		}
		a.genStmt(st.Body)
		a.popScope()
	case *cgen.Return:
		if st.X != nil {
			v := a.rval(st.X)
			if a.ret != nil && v != nil {
				a.unify(a.ret, v)
			}
		}
	case *cgen.Switch:
		a.rval(st.Tag)
		a.genStmt(st.Body)
	case *cgen.Case:
		if st.X != nil {
			a.rval(st.X)
		}
		a.genStmt(st.Body)
	case *cgen.Label:
		a.genStmt(st.Body)
	case *cgen.Goto, *cgen.Break, *cgen.Continue, *cgen.Empty:
	}
}

func (a *Analysis) genInit(locCell *Cell, init cgen.Expr) {
	if lst, ok := init.(*cgen.InitList); ok {
		for _, e := range lst.Elems {
			a.genInit(locCell, e)
		}
		return
	}
	if v := a.rval(init); v != nil {
		a.unify(a.pts(locCell), v)
	}
}

func decays(t *cgen.Type) bool {
	return t != nil && (t.Kind == cgen.TArray || t.Kind == cgen.TFunc)
}

// lval returns the class of locations e designates, or nil.
func (a *Analysis) lval(e cgen.Expr) *Cell {
	switch x := e.(type) {
	case *cgen.IdentExpr:
		if l := a.lookup(x.Name); l != nil {
			return l.Cell
		}
		return nil
	case *cgen.StrExpr:
		return a.newLocation(fmt.Sprintf("str@%d:%d", x.Line, x.Col)).Cell
	case *cgen.UnaryExpr:
		if x.Op == cgen.Star {
			return a.rval(x.X)
		}
		if x.Op == cgen.Inc || x.Op == cgen.Dec {
			return a.lval(x.X)
		}
		a.rval(e)
		return nil
	case *cgen.IndexExpr:
		a.rval(x.Idx)
		return a.rval(x.X)
	case *cgen.MemberExpr:
		if x.Arrow {
			return a.rval(x.X)
		}
		return a.lval(x.X)
	case *cgen.CastExpr:
		return a.lval(x.X)
	case *cgen.AssignExpr:
		a.rval(e)
		return a.lval(x.L)
	case *cgen.CommaExpr:
		a.rval(x.L)
		return a.lval(x.R)
	case *cgen.CondExpr:
		a.rval(x.Cond)
		lt := a.lval(x.Then)
		le := a.lval(x.Else)
		switch {
		case lt == nil:
			return le
		case le == nil:
			return lt
		default:
			a.unify(lt, le)
			return lt
		}
	case *cgen.PostfixExpr:
		return a.lval(x.X)
	}
	a.rval(e)
	return nil
}

// rval returns the value class of e (nil when it cannot carry pointers).
func (a *Analysis) rval(e cgen.Expr) *Cell {
	switch x := e.(type) {
	case nil:
		return nil
	case *cgen.IntExpr, *cgen.FloatExpr:
		return nil
	case *cgen.SizeofExpr:
		if x.X != nil {
			a.rval(x.X)
		}
		return nil
	case *cgen.StrExpr:
		return a.lval(e)
	case *cgen.IdentExpr:
		l := a.lookup(x.Name)
		if l == nil {
			return nil
		}
		if decays(a.tenv.Lookup(x.Name)) || find(l.Cell).sig != nil {
			return l.Cell
		}
		return a.pts(l.Cell)
	case *cgen.UnaryExpr:
		switch x.Op {
		case cgen.Amp:
			return a.lval(x.X)
		case cgen.Star:
			inner := a.rval(x.X)
			if inner == nil {
				return nil
			}
			if t := a.tenv.TypeOf(x.X); t != nil && t.Kind == cgen.TPointer && t.Elem != nil && t.Elem.Kind == cgen.TFunc {
				return inner
			}
			if decays(a.tenv.TypeOf(e)) {
				return inner
			}
			return a.pts(inner)
		case cgen.Inc, cgen.Dec:
			return a.rval(x.X)
		default:
			a.rval(x.X)
			return nil
		}
	case *cgen.PostfixExpr:
		return a.rval(x.X)
	case *cgen.BinaryExpr:
		l := a.rval(x.L)
		r := a.rval(x.R)
		if x.Op == cgen.Plus || x.Op == cgen.Minus {
			if a.tenv.TypeOf(x.L).IsPointerLike() {
				return l
			}
			if a.tenv.TypeOf(x.R).IsPointerLike() {
				return r
			}
			// Unknown types: join conservatively (this is Steensgaard's
			// characteristic coarseness).
			switch {
			case l == nil:
				return r
			case r == nil:
				return l
			default:
				a.unify(l, r)
				return l
			}
		}
		return nil
	case *cgen.AssignExpr:
		val := a.rval(x.R)
		lv := a.lval(x.L)
		if x.Op != cgen.Assign {
			old := a.rval(x.L)
			if old != nil && val != nil {
				a.unify(old, val)
			} else if val == nil {
				val = old
			}
		}
		if lv != nil && val != nil {
			a.unify(a.pts(lv), val)
		}
		if lv != nil {
			return a.pts(lv)
		}
		return val
	case *cgen.CondExpr:
		a.rval(x.Cond)
		l := a.rval(x.Then)
		r := a.rval(x.Else)
		switch {
		case l == nil:
			return r
		case r == nil:
			return l
		default:
			a.unify(l, r)
			return l
		}
	case *cgen.CommaExpr:
		a.rval(x.L)
		return a.rval(x.R)
	case *cgen.CastExpr:
		return a.rval(x.X)
	case *cgen.IndexExpr:
		a.rval(x.Idx)
		base := a.rval(x.X)
		if base == nil {
			return nil
		}
		if decays(a.tenv.TypeOf(e)) {
			return base
		}
		return a.pts(base)
	case *cgen.MemberExpr:
		lv := a.lval(e)
		if lv == nil {
			return nil
		}
		if decays(a.tenv.TypeOf(e)) {
			return lv
		}
		return a.pts(lv)
	case *cgen.CallExpr:
		return a.genCall(x)
	case *cgen.InitList:
		for _, el := range x.Elems {
			a.rval(el)
		}
		return nil
	}
	return nil
}

var allocators = map[string]bool{
	"malloc": true, "calloc": true, "valloc": true, "alloca": true,
	"xmalloc": true, "strdup": true, "xstrdup": true,
}

func (a *Analysis) genCall(call *cgen.CallExpr) *Cell {
	if id, ok := call.Fun.(*cgen.IdentExpr); ok && a.lookup(id.Name) == nil {
		return a.genSpecialCall(id.Name, call)
	}
	if id, ok := call.Fun.(*cgen.IdentExpr); ok {
		if l := a.lookup(id.Name); l != nil {
			if sig := find(l.Cell).sig; sig != nil {
				return a.genSigCall(sig, call)
			}
		}
	}
	// Indirect call: the callee's value class contains function
	// locations; its signature lives on that class.
	fnVals := a.rval(call.Fun)
	if fnVals == nil {
		for _, arg := range call.Args {
			a.rval(arg)
		}
		return nil
	}
	cls := find(fnVals)
	if cls.sig == nil {
		sig := &Sig{Ret: a.newCell()}
		for range call.Args {
			sig.Params = append(sig.Params, a.newCell())
		}
		cls.sig = sig
	}
	return a.genSigCall(find(fnVals).sig, call)
}

func (a *Analysis) genSigCall(sig *Sig, call *cgen.CallExpr) *Cell {
	for i, arg := range call.Args {
		v := a.rval(arg)
		if v != nil && i < len(sig.Params) {
			a.unify(v, sig.Params[i])
		}
	}
	return sig.Ret
}

func (a *Analysis) genSpecialCall(name string, call *cgen.CallExpr) *Cell {
	argv := make([]*Cell, len(call.Args))
	for i, arg := range call.Args {
		argv[i] = a.rval(arg)
	}
	switch {
	case allocators[name]:
		return a.newLocation(fmt.Sprintf("heap@%d:%d", call.Line, call.Col)).Cell
	case name == "realloc":
		l := a.newLocation(fmt.Sprintf("heap@%d:%d", call.Line, call.Col))
		if len(argv) > 0 && argv[0] != nil {
			a.unify(l.Cell, argv[0])
		}
		return l.Cell
	case (name == "memcpy" || name == "memmove" || name == "strcpy" ||
		name == "strncpy" || name == "strcat" || name == "strncat") && len(argv) >= 2:
		if argv[0] != nil && argv[1] != nil {
			a.unify(a.pts(argv[0]), a.pts(argv[1]))
		}
		return argv[0]
	default:
		return nil
	}
}
