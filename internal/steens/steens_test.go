package steens

import (
	"sort"
	"testing"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
)

func analyze(t *testing.T, src string) *Analysis {
	t.Helper()
	f, err := cgen.MustParse("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(f)
}

func pts(t *testing.T, a *Analysis, name string) []string {
	t.Helper()
	l := a.LocationByName(name)
	if l == nil {
		t.Fatalf("no location %q", name)
	}
	out := a.PointsToNames(l)
	sort.Strings(out)
	return out
}

func has(set []string, name string) bool {
	for _, s := range set {
		if s == name {
			return true
		}
	}
	return false
}

func TestBasic(t *testing.T) {
	a := analyze(t, `
int x;
int *p, *q;
void f(void) { p = &x; q = p; }
`)
	if got := pts(t, a, "p"); !has(got, "x") {
		t.Errorf("pts(p) = %v, want to include x", got)
	}
	if got := pts(t, a, "q"); !has(got, "x") {
		t.Errorf("pts(q) = %v, want to include x", got)
	}
}

func TestUnificationCoarseness(t *testing.T) {
	// The hallmark of Steensgaard: q = &x and p = q force x and y into
	// one class once p = &y, so pts(q) picks up y even though no
	// assignment ever put y into q. Andersen keeps them separate.
	src := `
int x, y;
int *p, *q;
void f(void) {
	q = &x;
	p = q;
	p = &y;
}
`
	a := analyze(t, src)
	got := pts(t, a, "q")
	if !has(got, "x") || !has(got, "y") {
		t.Errorf("pts(q) = %v; unification should have merged x and y", got)
	}

	f, err := cgen.MustParse("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	and := andersen.Analyze(f, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	al := and.LocationByName("q")
	andPts := and.PointsToNames(al)
	if len(andPts) != 1 || andPts[0] != "x" {
		t.Errorf("Andersen pts(q) = %v, want exactly [x]", andPts)
	}
}

func TestDerefWrite(t *testing.T) {
	a := analyze(t, `
int x;
int *p;
int **pp;
void f(void) { pp = &p; *pp = &x; }
`)
	if got := pts(t, a, "p"); !has(got, "x") {
		t.Errorf("pts(p) = %v, want to include x", got)
	}
}

func TestHeap(t *testing.T) {
	a := analyze(t, `
int *p, *q;
void f(void) { p = malloc(4); q = malloc(4); }
`)
	pp := pts(t, a, "p")
	qq := pts(t, a, "q")
	if len(pp) == 0 || len(qq) == 0 {
		t.Fatalf("pts(p)=%v pts(q)=%v", pp, qq)
	}
	// Distinct sites, never assigned together: classes stay apart.
	if pp[0] == qq[0] {
		t.Errorf("separate malloc sites unified: %v vs %v", pp, qq)
	}
}

func TestCalls(t *testing.T) {
	a := analyze(t, `
int x;
int *id(int *a) { return a; }
void f(void) { int *p = id(&x); }
`)
	if got := pts(t, a, "f::p"); !has(got, "x") {
		t.Errorf("pts(p) = %v, want to include x", got)
	}
	if got := pts(t, a, "id::a"); !has(got, "x") {
		t.Errorf("pts(id::a) = %v, want to include x", got)
	}
}

func TestFunctionPointerCalls(t *testing.T) {
	a := analyze(t, `
int x;
int *id(int *a) { return a; }
void f(void) {
	int *(*fp)(int *);
	int *p;
	fp = id;
	p = fp(&x);
}
`)
	if got := pts(t, a, "f::p"); !has(got, "x") {
		t.Errorf("pts(p) = %v, want to include x", got)
	}
}

func TestStructsAndArrays(t *testing.T) {
	a := analyze(t, `
int x;
struct s { int *f; } s1;
int *arr[4];
int *q, *r;
void f(void) {
	s1.f = &x;
	q = s1.f;
	arr[0] = &x;
	r = arr[1];
}
`)
	if got := pts(t, a, "q"); !has(got, "x") {
		t.Errorf("pts(q) = %v", got)
	}
	if got := pts(t, a, "r"); !has(got, "x") {
		t.Errorf("pts(r) = %v", got)
	}
}

// TestSoundnessVsAndersen: Steensgaard must over-approximate Andersen —
// every Andersen points-to pair appears in Steensgaard's result.
func TestSoundnessVsAndersen(t *testing.T) {
	src := `
struct node { struct node *next; int *data; };
int g1, g2, g3;
int *gp, *gq;
struct node n1, n2, n3;
struct node *cur;
int *pick(struct node *n) { return n->data; }
void link(struct node *a, struct node *b) { a->next = b; }
int main(void) {
	int *(*get)(struct node *) = pick;
	n1.data = &g1;
	n2.data = &g2;
	n3.data = &g3;
	link(&n1, &n2);
	link(&n2, &n3);
	cur = &n1;
	cur = cur->next;
	gp = get(cur);
	gq = pick(&n3);
	gq = (int *)malloc(8);
	return 0;
}
`
	f, err := cgen.MustParse("test.c", src)
	if err != nil {
		t.Fatal(err)
	}
	st := Analyze(f)
	and := andersen.Analyze(f, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 7})
	if and.Sys.ErrorCount() != 0 {
		t.Fatalf("andersen errors: %v", and.Sys.Errors())
	}

	for _, al := range and.Locations {
		sl := st.LocationByName(al.Name)
		if sl == nil {
			continue // fresh temporaries differ; named locations match
		}
		sPts := st.PointsToNames(sl)
		for _, target := range and.PointsToNames(al) {
			if !has(sPts, target) {
				t.Errorf("unsound: Andersen has %s → %s but Steensgaard pts = %v",
					al.Name, target, sPts)
			}
		}
	}
}

func TestCellCount(t *testing.T) {
	a := analyze(t, `int x; int *p; void f(void) { p = &x; }`)
	if a.CellCount() == 0 {
		t.Error("no cells allocated")
	}
	if len(a.Locations()) < 3 {
		t.Errorf("locations = %v", a.Locations())
	}
}
