// Package steens implements Steensgaard's unification-based points-to
// analysis as the almost-linear-time baseline the paper's related work
// compares against (Shapiro and Horwitz's study [SH97] contrasts it with
// Andersen's analysis). Where Andersen's analysis resolves inclusion
// constraints, Steensgaard's merges: every assignment unifies the
// points-to classes of its two sides, so the result is coarser — each
// location class points to at most one location class — but the analysis
// runs in near-linear time using only union-find.
//
// The implementation mirrors internal/andersen's treatment of C (L-value
// discipline, array collapsing, field insensitivity, heap location per
// allocation site) so precision comparisons between the two analyses
// reflect the algorithms, not the front-end modelling.
package steens

import (
	"fmt"

	"polce/internal/cgen"
)

// Cell is an equivalence class node. Every abstract location starts in its
// own class; assignments unify classes. A class lazily acquires a single
// points-to class.
type Cell struct {
	parent *Cell
	rank   int8

	pts *Cell // the one class this class may point to (lazily created)
	sig *Sig  // function signature if the class contains functions

	// Loc is non-nil when the cell was created for a named abstract
	// location (variable, function, heap site, string literal).
	Loc *Location
}

// Location is a named abstract memory location.
type Location struct {
	Name string
	Cell *Cell
}

// Sig is the calling interface carried by classes containing functions.
type Sig struct {
	Params []*Cell // value classes of the parameters' contents
	Ret    *Cell

	paramLocs []*Location // parameter locations, for body binding
}

// find returns the class representative with path compression.
func find(c *Cell) *Cell {
	for c.parent != nil {
		if c.parent.parent != nil {
			c.parent = c.parent.parent
		}
		c = c.parent
	}
	return c
}

// Analysis holds the analysis state and results.
type Analysis struct {
	locs  []*Location
	cells int // total cells allocated (the work-space size metric)

	tenv   *cgen.TypeEnv
	scopes []map[string]*Location
	ret    *Cell // return-value class of the function being analysed
	fname  string
	names  map[string]int
}

// Analyze runs Steensgaard's analysis over a parsed file.
func Analyze(file *cgen.File) *Analysis {
	a := &Analysis{
		tenv:   cgen.NewTypeEnv(),
		scopes: []map[string]*Location{{}},
		names:  map[string]int{},
	}
	// Pass 1: records, globals and function interfaces.
	for _, d := range file.Decls {
		switch decl := d.(type) {
		case *cgen.RecordDecl:
			a.tenv.DefineRecord(decl)
		case *cgen.VarDecl:
			a.declareVar(decl, "")
		case *cgen.FuncDecl:
			a.declareFunc(decl)
		}
	}
	// Pass 2: initialisers and bodies.
	for _, d := range file.Decls {
		switch decl := d.(type) {
		case *cgen.VarDecl:
			if decl.Init != nil {
				if l := a.lookup(decl.Name); l != nil {
					a.genInit(l.Cell, decl.Init)
				}
			}
		case *cgen.FuncDecl:
			if decl.Body != nil {
				a.genFuncBody(decl)
			}
		}
	}
	return a
}

// Locations returns every abstract location, in creation order.
func (a *Analysis) Locations() []*Location { return a.locs }

// CellCount returns the number of union-find cells allocated.
func (a *Analysis) CellCount() int { return a.cells }

// LocationByName finds a location by name, or nil.
func (a *Analysis) LocationByName(name string) *Location {
	for _, l := range a.locs {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// PointsTo returns the locations l may point to: every location in the
// class its class points to. Coarse by construction.
func (a *Analysis) PointsTo(l *Location) []*Location {
	cls := find(l.Cell)
	if cls.pts == nil {
		return nil
	}
	target := find(cls.pts)
	var out []*Location
	for _, cand := range a.locs {
		if find(cand.Cell) == target {
			out = append(out, cand)
		}
	}
	return out
}

// PointsToNames returns the names of PointsTo(l).
func (a *Analysis) PointsToNames(l *Location) []string {
	ls := a.PointsTo(l)
	out := make([]string, len(ls))
	for i, t := range ls {
		out[i] = t.Name
	}
	return out
}

// newCell allocates a fresh class.
func (a *Analysis) newCell() *Cell {
	a.cells++
	return &Cell{}
}

// newLocation allocates a named location in its own class.
func (a *Analysis) newLocation(name string) *Location {
	if n := a.names[name]; n > 0 {
		a.names[name] = n + 1
		name = fmt.Sprintf("%s#%d", name, n)
	} else {
		a.names[name] = 1
	}
	l := &Location{Name: name, Cell: a.newCell()}
	l.Cell.Loc = l
	a.locs = append(a.locs, l)
	return l
}

// pts returns (creating if needed) the class c points to.
func (a *Analysis) pts(c *Cell) *Cell {
	c = find(c)
	if c.pts == nil {
		c.pts = a.newCell()
	}
	return find(c.pts)
}

// unify merges two classes, recursively unifying their points-to classes
// and signatures (Steensgaard's join).
func (a *Analysis) unify(x, y *Cell) {
	x, y = find(x), find(y)
	if x == y {
		return
	}
	if x.rank < y.rank {
		x, y = y, x
	} else if x.rank == y.rank {
		x.rank++
	}
	// y joins x.
	y.parent = x
	ypts, ysig := y.pts, y.sig
	y.pts, y.sig = nil, nil
	if ypts != nil {
		if x.pts != nil {
			a.unify(x.pts, ypts)
		} else {
			x.pts = ypts
		}
	}
	if ysig != nil {
		if x.sig != nil {
			a.unifySig(x.sig, ysig)
		} else {
			x.sig = ysig
		}
	}
}

// unifySig merges two calling interfaces pointwise.
func (a *Analysis) unifySig(s, t *Sig) {
	n := len(s.Params)
	if len(t.Params) < n {
		n = len(t.Params)
	}
	for i := 0; i < n; i++ {
		a.unify(s.Params[i], t.Params[i])
	}
	a.unify(s.Ret, t.Ret)
}

// --- scoping -------------------------------------------------------------

func (a *Analysis) pushScope() {
	a.scopes = append(a.scopes, map[string]*Location{})
	a.tenv.Push()
}

func (a *Analysis) popScope() {
	a.scopes = a.scopes[:len(a.scopes)-1]
	a.tenv.Pop()
}

func (a *Analysis) bind(name string, l *Location, t *cgen.Type) {
	a.scopes[len(a.scopes)-1][name] = l
	a.tenv.Bind(name, t)
}

func (a *Analysis) lookup(name string) *Location {
	for i := len(a.scopes) - 1; i >= 0; i-- {
		if l, ok := a.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

func (a *Analysis) declareVar(d *cgen.VarDecl, prefix string) *Location {
	if d.Name == "" {
		return nil
	}
	name := d.Name
	if prefix != "" {
		name = prefix + "::" + name
	}
	l := a.newLocation(name)
	a.bind(d.Name, l, d.Type)
	return l
}

func (a *Analysis) declareFunc(d *cgen.FuncDecl) *Location {
	l := a.lookup(d.Name)
	if l == nil {
		l = a.newLocation(d.Name)
		a.bind(d.Name, l, d.Type)
	}
	cls := find(l.Cell)
	if cls.sig != nil {
		return l
	}
	sig := &Sig{Ret: a.newCell()}
	for i, p := range d.Params {
		pname := p.Name
		if pname == "" {
			pname = fmt.Sprintf("arg%d", i)
		}
		pl := a.newLocation(d.Name + "::" + pname)
		sig.Params = append(sig.Params, a.pts(pl.Cell))
		// Remember the parameter location for body binding.
		sig.paramLocs = append(sig.paramLocs, pl)
	}
	cls.sig = sig
	return l
}
