package andersen

import (
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"polce"
	"polce/internal/cgen"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden points-to snapshots")

// goldenSnapshot renders the full points-to graph deterministically.
func goldenSnapshot(r *Result) string {
	var names []string
	rows := map[string][]string{}
	for _, l := range r.Locations {
		p := r.PointsToNames(l)
		if len(p) == 0 {
			continue
		}
		sort.Strings(p)
		names = append(names, l.Name)
		rows[l.Name] = p
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, n := range names {
		sb.WriteString(n)
		sb.WriteString(" -> {")
		sb.WriteString(strings.Join(rows[n], ", "))
		sb.WriteString("}\n")
	}
	return sb.String()
}

// TestGoldenCorpus pins the points-to graphs of hand-written C programs.
// The goldens were reviewed by hand; any change to them is a semantic
// change to the analysis and must be deliberate (rerun with -update).
// Every configuration must match the same golden, so this doubles as an
// agreement test on curated inputs.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := cgen.MustParse(path, string(src))
			if err != nil {
				t.Fatal(err)
			}
			got := goldenSnapshot(Analyze(f, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1}))

			goldenPath := strings.TrimSuffix(path, ".c") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden (rerun with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("points-to graph changed:\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			// Cross-configuration agreement on the curated input.
			for _, cfg := range []Options{
				{Form: polce.SF, Cycles: polce.CycleNone, Seed: 1},
				{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 9},
				{Form: polce.IF, Cycles: polce.CyclePeriodic, Seed: 1, PeriodicInterval: 32},
			} {
				if other := goldenSnapshot(Analyze(f, cfg)); other != got {
					t.Errorf("%v/%v disagrees with golden", cfg.Form, cfg.Cycles)
				}
			}
		})
	}
}
