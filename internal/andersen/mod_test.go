package andersen

import (
	"sort"
	"testing"

	"polce"
)

func modResult(t *testing.T) *Result {
	t.Helper()
	return analyze(t, `
int g1, g2, g3;
int *gp;

void leaf(void) { g1 = 1; }

void through_ptr(int *p) { *p = 2; }

void caller(void) {
	leaf();
	through_ptr(&g2);
}

void via_fp(void) {
	void (*f)(void) = leaf;
	f();
}

int pure(int a) { return a + 1; }

void recur(int n) {
	g3 = n;
	if (n) recur(n - 1);
}
`, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 4})
}

func modNames(t *testing.T, r *Result, fn string) []string {
	t.Helper()
	f := r.LocationByName(fn)
	if f == nil {
		t.Fatalf("no function %s", fn)
	}
	names := r.ModNames(f)
	sort.Strings(names)
	return names
}

func has(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

func TestModDirect(t *testing.T) {
	r := modResult(t)
	if got := modNames(t, r, "leaf"); !has(got, "g1") {
		t.Errorf("MOD(leaf) = %v, want g1", got)
	}
}

func TestModThroughPointer(t *testing.T) {
	r := modResult(t)
	got := modNames(t, r, "through_ptr")
	if !has(got, "g2") {
		t.Errorf("MOD(through_ptr) = %v, want g2 (written through its parameter)", got)
	}
}

func TestModTransitive(t *testing.T) {
	r := modResult(t)
	got := modNames(t, r, "caller")
	if !has(got, "g1") || !has(got, "g2") {
		t.Errorf("MOD(caller) = %v, want g1 (via leaf) and g2 (via through_ptr)", got)
	}
}

func TestModThroughFunctionPointer(t *testing.T) {
	r := modResult(t)
	if got := modNames(t, r, "via_fp"); !has(got, "g1") {
		t.Errorf("MOD(via_fp) = %v, want g1 (leaf invoked through a pointer)", got)
	}
}

func TestModPureFunction(t *testing.T) {
	r := modResult(t)
	got := modNames(t, r, "pure")
	for _, n := range got {
		if n == "g1" || n == "g2" || n == "g3" {
			t.Errorf("MOD(pure) = %v, contains a global", got)
		}
	}
}

func TestModRecursionTerminates(t *testing.T) {
	r := modResult(t)
	if got := modNames(t, r, "recur"); !has(got, "g3") {
		t.Errorf("MOD(recur) = %v, want g3", got)
	}
}

func TestModOfNonFunction(t *testing.T) {
	r := modResult(t)
	if got := r.Mod(r.LocationByName("g1")); got != nil {
		t.Errorf("Mod of a variable = %v, want nil", got)
	}
	if got := r.Mod(nil); got != nil {
		t.Errorf("Mod(nil) = %v", got)
	}
}

func TestModMutualRecursion(t *testing.T) {
	r := analyze(t, `
int a, b;
void pong(int n);
void ping(int n) { a = n; if (n) pong(n - 1); }
void pong(int n) { b = n; if (n) ping(n - 1); }
`, Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 2})
	got := modNames(t, r, "ping")
	if !has(got, "a") || !has(got, "b") {
		t.Errorf("MOD(ping) = %v, want a and b", got)
	}
	got = modNames(t, r, "pong")
	if !has(got, "a") || !has(got, "b") {
		t.Errorf("MOD(pong) = %v, want a and b", got)
	}
}
