package andersen

import "polce"

// This file computes interprocedural MOD sets — for every function, the
// abstract locations it may modify, directly or through any (possibly
// indirect, possibly recursive) callee. MOD/REF information is the other
// classic client of points-to analysis besides alias queries; it doubles
// here as an end-to-end exercise of the recorded store and call-site
// facts.

// locsOf resolves a location-set expression (a ref term or a variable
// holding ref terms) to locations.
func (r *Result) locsOf(e polce.Expr) []*Location {
	switch x := e.(type) {
	case *polce.Term:
		if l, ok := r.locOf[x]; ok {
			return []*Location{l}
		}
		return nil
	case *polce.Var:
		var out []*Location
		for _, t := range r.Sys.LeastSolution(x) {
			if l, ok := r.locOf[t]; ok {
				out = append(out, l)
			}
		}
		return out
	}
	return nil
}

// ModSets computes MOD for every analysed function: the locations whose
// contents the function may change, transitively through its call graph.
// The result maps function locations to their MOD sets.
func (r *Result) ModSets() map[*Location][]*Location {
	// Function location per FuncInfo.
	locFor := map[*FuncInfo]*Location{}
	for _, l := range r.Locations {
		if l.Func != nil {
			locFor[l.Func] = l
		}
	}

	// Direct MOD and callee sets.
	direct := map[*FuncInfo]map[*Location]bool{}
	callees := map[*FuncInfo]map[*FuncInfo]bool{}
	for fi, facts := range r.facts {
		d := map[*Location]bool{}
		for _, w := range facts.writes {
			for _, l := range r.locsOf(w) {
				d[l] = true
			}
		}
		direct[fi] = d
		cs := map[*FuncInfo]bool{}
		for _, callee := range facts.direct {
			cs[callee] = true
		}
		for _, e := range facts.indirect {
			for _, l := range r.locsOf(e) {
				if l.Func != nil {
					cs[l.Func] = true
				}
			}
		}
		callees[fi] = cs
	}

	// Fixpoint over the (possibly cyclic) call graph: MOD is monotone, so
	// simple iteration converges.
	mod := map[*FuncInfo]map[*Location]bool{}
	for fi := range locFor {
		m := map[*Location]bool{}
		for l := range direct[fi] {
			m[l] = true
		}
		mod[fi] = m
	}
	for changed := true; changed; {
		changed = false
		for fi := range locFor {
			m := mod[fi]
			for callee := range callees[fi] {
				for l := range mod[callee] {
					if !m[l] {
						m[l] = true
						changed = true
					}
				}
			}
		}
	}

	out := map[*Location][]*Location{}
	for fi, floc := range locFor {
		var list []*Location
		for _, l := range r.Locations { // deterministic order
			if mod[fi][l] {
				list = append(list, l)
			}
		}
		out[floc] = list
	}
	return out
}

// Mod returns the MOD set of one function location (nil if f is not a
// function).
func (r *Result) Mod(f *Location) []*Location {
	if f == nil || f.Func == nil {
		return nil
	}
	return r.ModSets()[f]
}

// ModNames returns Mod(f) as names.
func (r *Result) ModNames(f *Location) []string {
	ls := r.Mod(f)
	out := make([]string, len(ls))
	for i, l := range ls {
		out[i] = l.Name
	}
	return out
}
