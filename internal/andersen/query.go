package andersen

import (
	"fmt"
	"io"
	"sort"

	"polce"
)

// This file is the client-facing query layer over an analysis result: the
// alias questions downstream tools ask of a points-to analysis, and a
// Graphviz export of the points-to graph.

// MayAlias reports whether two pointers may alias under the standard
// location-level definition: their points-to sets intersect (or they are
// the same location).
func (r *Result) MayAlias(a, b *Location) bool {
	if a == nil || b == nil {
		return false
	}
	if a == b {
		return true
	}
	set := map[*Location]bool{}
	for _, t := range r.PointsTo(a) {
		set[t] = true
	}
	for _, t := range r.PointsTo(b) {
		if set[t] {
			return true
		}
	}
	return false
}

// PointedToBy returns the locations whose points-to sets include target —
// the inverse points-to relation, useful for "who can write here?"
// queries.
func (r *Result) PointedToBy(target *Location) []*Location {
	var out []*Location
	for _, l := range r.Locations {
		for _, t := range r.PointsTo(l) {
			if t == target {
				out = append(out, l)
				break
			}
		}
	}
	return out
}

// CallTargets resolves the functions a location may invoke: the function
// locations in its points-to set. For a function-pointer variable this is
// the call graph edge set at its call sites.
func (r *Result) CallTargets(l *Location) []*Location {
	var out []*Location
	for _, t := range r.PointsTo(l) {
		if t.Func != nil {
			out = append(out, t)
		}
	}
	return out
}

// PointsToStats summarises the points-to graph the way the literature
// reports precision: total edges, average and maximum set size over
// locations with non-empty sets.
type PointsToStats struct {
	Locations int     `json:"locations"`
	NonEmpty  int     `json:"nonEmpty"`
	Edges     int     `json:"edges"`
	MaxSet    int     `json:"maxSet"`
	AvgSet    float64 `json:"avgSet"`
}

// Stats computes the points-to graph summary.
func (r *Result) Stats() PointsToStats {
	st := PointsToStats{Locations: len(r.Locations)}
	for _, l := range r.Locations {
		n := len(r.PointsTo(l))
		if n == 0 {
			continue
		}
		st.NonEmpty++
		st.Edges += n
		if n > st.MaxSet {
			st.MaxSet = n
		}
	}
	if st.NonEmpty > 0 {
		st.AvgSet = float64(st.Edges) / float64(st.NonEmpty)
	}
	return st
}

// WriteDOT renders the points-to graph (Andersen's output, Figure 5 of
// the paper) in Graphviz DOT format: one node per abstract location, an
// edge x → y when x may point to y. Output is deterministic.
func (r *Result) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph pointsto {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  node [fontsize=10, shape=ellipse];")
	id := map[*Location]int{}
	for i, l := range r.Locations {
		id[l] = i
	}
	for i, l := range r.Locations {
		shape := ""
		if l.Func != nil {
			shape = ", shape=box"
		}
		fmt.Fprintf(w, "  n%d [label=%q%s];\n", i, l.Name, shape)
	}
	for _, l := range r.Locations {
		tgts := r.PointsTo(l)
		sort.Slice(tgts, func(a, b int) bool { return id[tgts[a]] < id[tgts[b]] })
		for _, t := range tgts {
			fmt.Fprintf(w, "  n%d -> n%d;\n", id[l], id[t])
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// SolverGraphStats exposes the underlying constraint graph's density, the
// quantity Section 5's model is parameterised by.
func (r *Result) SolverGraphStats() polce.GraphStats {
	return r.Sys.CurrentGraphStats()
}
