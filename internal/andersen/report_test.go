package andersen

import (
	"encoding/json"
	"strings"
	"testing"

	"polce"
)

func TestBuildReport(t *testing.T) {
	r := analyze(t, `
int x;
int *p;
int *id(int *a) { return a; }
void f(void) { p = id(&x); }
`, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 2})

	rep := r.BuildReport(false)
	if len(rep.Locations) == 0 {
		t.Fatal("empty report")
	}
	// Sorted by name.
	for i := 1; i < len(rep.Locations); i++ {
		if rep.Locations[i-1].Name > rep.Locations[i].Name {
			t.Fatalf("locations not sorted: %s before %s",
				rep.Locations[i-1].Name, rep.Locations[i].Name)
		}
	}
	var foundP bool
	for _, l := range rep.Locations {
		if l.Name == "p" {
			foundP = true
			if len(l.PointsTo) != 1 || l.PointsTo[0] != "x" {
				t.Errorf("report pts(p) = %v", l.PointsTo)
			}
		}
		if l.Name == "id" && !l.Function {
			t.Error("id not marked as function")
		}
	}
	if !foundP {
		t.Error("p missing from report")
	}
	if rep.Solver.Form != "IF" || rep.Solver.CyclePolicy != "Online" {
		t.Errorf("solver metadata: %+v", rep.Solver)
	}
	if rep.Solver.VarsCreated == 0 || rep.Solver.Work == 0 {
		t.Errorf("solver counters empty: %+v", rep.Solver)
	}
}

func TestWriteJSONRoundtrips(t *testing.T) {
	r := analyze(t, `int x; int *p; void f(void) { p = &x; }`,
		Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 1})
	var sb strings.Builder
	if err := r.WriteJSON(&sb, true); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(rep.Locations) == 0 {
		t.Error("decoded report empty")
	}
	// includeEmpty=true lists every location; false drops empty sets.
	full := len(r.BuildReport(true).Locations)
	trimmed := len(r.BuildReport(false).Locations)
	if trimmed >= full {
		t.Errorf("includeEmpty filter has no effect: %d vs %d", trimmed, full)
	}
}
