package andersen

import "strings"

// This file derives an escape analysis from the points-to results — a
// standard downstream client of Andersen's analysis, included to
// demonstrate (and test) the result API end to end. A location escapes
// when it can be reached, through points-to edges, from storage that
// outlives any single activation: globals, heap cells, string literals,
// or any function's return value.

// IsLocal reports whether the location is function-local storage (a local
// variable or parameter). Heap cells and string literals are not "local"
// in this sense: they already live beyond the activation.
func (l *Location) IsLocal() bool {
	if l.Func != nil {
		return false
	}
	if strings.HasPrefix(l.Name, "heap@") || strings.HasPrefix(l.Name, "str@") {
		return false
	}
	return strings.Contains(l.Name, "::")
}

// EscapeSet computes the set of locations that escape: everything
// points-to-reachable from the escape roots (globals' contents, heap
// cells' contents, and every function's return-value set). A local in the
// set may outlive its activation through some chain of stores, so stack
// allocation of it would be unsound.
func (r *Result) EscapeSet() map[*Location]bool {
	escaped := map[*Location]bool{}
	var frontier []*Location

	reach := func(l *Location) {
		if !escaped[l] {
			escaped[l] = true
			frontier = append(frontier, l)
		}
	}

	// Roots: whatever a global, heap cell or string literal may point to,
	// and whatever any function may return.
	for _, l := range r.Locations {
		if l.IsLocal() || l.Func != nil {
			continue
		}
		for _, tgt := range r.PointsTo(l) {
			reach(tgt)
		}
	}
	for _, l := range r.Locations {
		if l.Func == nil {
			continue
		}
		for _, t := range r.Sys.LeastSolution(l.Func.Ret) {
			if tgt, ok := r.locOf[t]; ok {
				reach(tgt)
			}
		}
	}

	// Transitive closure over points-to edges.
	for len(frontier) > 0 {
		l := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, tgt := range r.PointsTo(l) {
			reach(tgt)
		}
	}
	return escaped
}

// EscapingLocals returns the local locations in the escape set, in
// creation order — the variables a compiler could not stack-allocate
// without further reasoning.
func (r *Result) EscapingLocals() []*Location {
	escaped := r.EscapeSet()
	var out []*Location
	for _, l := range r.Locations {
		if l.IsLocal() && escaped[l] {
			out = append(out, l)
		}
	}
	return out
}
