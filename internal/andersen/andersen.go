// Package andersen implements Andersen's points-to analysis for C (the
// paper's case study, Section 3) on top of the inclusion-constraint solver
// in internal/solver.
//
// Each abstract memory location l — a variable, a function, a heap object
// per allocation site, or a string literal — is modelled by a constructed
// term ref(name_l, X_l, X̄_l): a covariant name, the covariant points-to set
// X_l (the range of the location's "get" function) and the same variable
// contravariantly (the domain of its "set" function). Updating a location
// set τ with values V is the constraint τ ⊆ ref(1, 1, V̄); dereferencing is
// τ ⊆ ref(1, T, 0̄).
//
// Functions are modelled with per-arity constructors lam_n(r, p̄1...p̄n):
// covariant return, contravariant parameters. Direct calls to known
// functions are wired straight through (which also handles variadic
// functions); indirect calls flow through lam sinks.
//
// Expressions are analysed in the paper's L-value discipline: every
// expression denotes the set of abstract locations it designates, and
// R-values are obtained by one "get" projection. Arrays are collapsed to a
// single element and structs are field-insensitive, as in the paper.
package andersen

import (
	"fmt"

	"polce"
	"polce/internal/cgen"
)

// refCon is the shared 3-ary location constructor: name (covariant),
// get (covariant), set (contravariant).
var refCon = polce.NewConstructor("ref", polce.Covariant, polce.Covariant, polce.Contravariant)

// nameCon builds nullary location-name terms, one per location.
var nameCon = polce.NewConstructor("name")

// Location is one abstract memory location.
type Location struct {
	Name string // qualified name: "x", "f::local", "heap@3:7", "str@9:2"
	// Content is the location's points-to set variable X_l.
	Content *polce.Var
	// Ref is the location's ref(name_l, X_l, X̄_l) term; its identity is
	// what appears in other locations' least solutions.
	Ref *polce.Term
	// Func is non-nil for function locations.
	Func *FuncInfo
}

// FuncInfo carries the calling interface of a function location.
type FuncInfo struct {
	Params   []*Location // parameter locations, in order
	Ret      *polce.Var  // return-value set
	Lam      *polce.Term // lam_n(Ret, X̄_p1 ... X̄_pn)
	Variadic bool
	Defined  bool // a body has been analysed (not just a prototype)
}

// Options configures an analysis run; it mirrors the solver options.
type Options struct {
	Form   polce.Form
	Cycles polce.CyclePolicy
	Seed   int64
	Oracle *polce.Oracle
	// Order selects the variable-order strategy (default random, as in
	// the paper).
	Order polce.OrderStrategy
	// PeriodicInterval configures polce.CyclePeriodic (0 = solver
	// default).
	PeriodicInterval int
	// Observer receives solver events; see polce.Options.Observer.
	Observer func(polce.Event)
	// Metrics receives per-operation solver measurements; see
	// polce.Options.Metrics.
	Metrics polce.MetricsSink
	// LSWorkers is the least-solution pass worker count; see
	// polce.Options.LSWorkers.
	LSWorkers int
	// Repr selects the adjacency storage representation; see
	// polce.Options.Repr.
	Repr polce.StorageRepr
}

// Result is the outcome of an analysis: the solved constraint system plus
// the location table for extracting the points-to graph.
type Result struct {
	Sys       *polce.Solver
	Locations []*Location

	locOf map[*polce.Term]*Location
	facts map[*FuncInfo]*funcFacts
}

// funcFacts records, per analysed function body, the raw material for the
// interprocedural MOD analysis: the target set of every store, and the
// callee sets of every call site.
type funcFacts struct {
	writes   []polce.Expr // location-set expressions written through
	direct   []*FuncInfo  // statically known callees
	indirect []polce.Expr // function-location sets of indirect call sites
}

// LocationByName finds a location by its qualified name, or nil.
func (r *Result) LocationByName(name string) *Location {
	for _, l := range r.Locations {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// PointsTo returns the abstract locations l may point to, i.e. the ref
// terms in the least solution of X_l, in deterministic (first-reached)
// order. This is the points-to graph the paper's client computes.
func (r *Result) PointsTo(l *Location) []*Location {
	var out []*Location
	for _, t := range r.Sys.LeastSolution(l.Content) {
		if tgt, ok := r.locOf[t]; ok {
			out = append(out, tgt)
		}
	}
	return out
}

// PointsToNames returns the names of PointsTo(l).
func (r *Result) PointsToNames(l *Location) []string {
	ls := r.PointsTo(l)
	names := make([]string, len(ls))
	for i, t := range ls {
		names[i] = t.Name
	}
	return names
}

// PointsToEdges counts the edges of the points-to graph (the sum of
// points-to set sizes over all locations).
func (r *Result) PointsToEdges() int {
	n := 0
	for _, l := range r.Locations {
		n += len(r.PointsTo(l))
	}
	return n
}

// gen is the constraint generator state.
type gen struct {
	sys  *polce.Solver
	res  *Result
	opts Options

	lamCons map[int]*polce.Constructor
	tenv    *cgen.TypeEnv

	// scopes is a stack of name→location tables; scopes[0] is the file
	// scope.
	scopes []map[string]*Location

	curFunc     *FuncInfo // function whose body is being analysed
	curFuncName string

	nameCount map[string]int // qualified-name collision counter
}

// Analyze runs Andersen's analysis over a parsed file.
func Analyze(file *cgen.File, opts Options) *Result {
	sys := polce.New(polce.Options{
		Form:             opts.Form,
		Order:            opts.Order,
		Cycles:           opts.Cycles,
		Seed:             opts.Seed,
		Oracle:           opts.Oracle,
		PeriodicInterval: opts.PeriodicInterval,
		Observer:         opts.Observer,
		Metrics:          opts.Metrics,
		LSWorkers:        opts.LSWorkers,
		Repr:             opts.Repr,
	})
	return analyzeInto(file, sys, opts)
}

// AnalyzeInitial builds only the initial (unclosed) constraint graph for
// Table 1's initial statistics.
func AnalyzeInitial(file *cgen.File, opts Options) *Result {
	sys := polce.NewInitialGraph(polce.Options{
		Form:   opts.Form,
		Cycles: polce.CycleNone,
		Seed:   opts.Seed,
		Repr:   opts.Repr,
	})
	return analyzeInto(file, sys, opts)
}

func analyzeInto(file *cgen.File, sys *polce.Solver, opts Options) *Result {
	g := &gen{
		sys:       sys,
		opts:      opts,
		lamCons:   map[int]*polce.Constructor{},
		tenv:      cgen.NewTypeEnv(),
		scopes:    []map[string]*Location{{}},
		nameCount: map[string]int{},
	}
	g.res = &Result{
		Sys:   sys,
		locOf: map[*polce.Term]*Location{},
		facts: map[*FuncInfo]*funcFacts{},
	}

	// Pass 1: register record layouts, globals and functions so that
	// top-level use-before-declaration (mutual recursion, function
	// pointers to later functions) resolves.
	for _, d := range file.Decls {
		switch decl := d.(type) {
		case *cgen.RecordDecl:
			g.tenv.DefineRecord(decl)
		case *cgen.VarDecl:
			g.declareVar(decl, "")
		case *cgen.FuncDecl:
			g.declareFunc(decl)
		}
	}

	// Pass 2: initialisers and function bodies.
	for _, d := range file.Decls {
		switch decl := d.(type) {
		case *cgen.VarDecl:
			if decl.Init != nil {
				if l := g.lookup(decl.Name); l != nil {
					g.genInit(l.Ref, decl.Init)
				}
			}
		case *cgen.FuncDecl:
			if decl.Body != nil {
				g.genFuncBody(decl)
			}
		}
	}
	return g.res
}

// lam returns the lam constructor for arity n.
func (g *gen) lam(n int) *polce.Constructor {
	if c, ok := g.lamCons[n]; ok {
		return c
	}
	sig := make([]polce.Variance, n+1)
	sig[0] = polce.Covariant
	for i := 1; i <= n; i++ {
		sig[i] = polce.Contravariant
	}
	c := polce.NewConstructor(fmt.Sprintf("lam%d", n), sig...)
	g.lamCons[n] = c
	return c
}

// newLocation allocates an abstract location with a fresh content
// variable. Names are made unique with a #k suffix when shadowing
// re-declares the same qualified name.
func (g *gen) newLocation(name string) *Location {
	if n := g.nameCount[name]; n > 0 {
		g.nameCount[name] = n + 1
		name = fmt.Sprintf("%s#%d", name, n)
	} else {
		g.nameCount[name] = 1
	}
	content := g.sys.Fresh("X_" + name)
	l := &Location{
		Name:    name,
		Content: content,
		Ref:     polce.NewTerm(refCon, polce.NewTerm(nameCon), content, content),
	}
	g.res.Locations = append(g.res.Locations, l)
	g.res.locOf[l.Ref] = l
	return l
}

// pushScope / popScope manage function-body scoping.
func (g *gen) pushScope() {
	g.scopes = append(g.scopes, map[string]*Location{})
	g.tenv.Push()
}

func (g *gen) popScope() {
	g.scopes = g.scopes[:len(g.scopes)-1]
	g.tenv.Pop()
}

// bind installs a location (and its declared type) in the current scope.
func (g *gen) bind(name string, l *Location, t *cgen.Type) {
	g.scopes[len(g.scopes)-1][name] = l
	g.tenv.Bind(name, t)
}

// lookup resolves a name to its location, innermost scope first.
func (g *gen) lookup(name string) *Location {
	for i := len(g.scopes) - 1; i >= 0; i-- {
		if l, ok := g.scopes[i][name]; ok {
			return l
		}
	}
	return nil
}

// lookupType resolves a name's declared type.
func (g *gen) lookupType(name string) *cgen.Type { return g.tenv.Lookup(name) }

// typeOf infers an expression's static type via the shared TypeEnv.
func (g *gen) typeOf(e cgen.Expr) *cgen.Type { return g.tenv.TypeOf(e) }

// declareVar creates the location for a variable declaration. prefix
// qualifies locals.
func (g *gen) declareVar(d *cgen.VarDecl, prefix string) *Location {
	if d.Name == "" {
		return nil
	}
	name := d.Name
	if prefix != "" {
		name = prefix + "::" + name
	}
	l := g.newLocation(name)
	g.bind(d.Name, l, d.Type)
	return l
}

// declareFunc registers a function's location, parameter locations,
// return variable and lam term. Re-declaring (prototype then definition)
// reuses the location but refreshes the interface to the definition's.
func (g *gen) declareFunc(d *cgen.FuncDecl) *Location {
	l := g.lookup(d.Name)
	if l == nil {
		l = g.newLocation(d.Name)
		g.bind(d.Name, l, d.Type)
	}
	if l.Func != nil && (l.Func.Defined || d.Body == nil) {
		return l // keep the definition's interface
	}
	fi := &FuncInfo{
		Ret:      g.sys.Fresh("ret_" + d.Name),
		Variadic: d.Type.Variadic,
		Defined:  d.Body != nil,
	}
	args := []polce.Expr{fi.Ret}
	for i, p := range d.Params {
		pname := p.Name
		if pname == "" {
			pname = fmt.Sprintf("arg%d", i)
		}
		pl := g.newLocation(d.Name + "::" + pname)
		fi.Params = append(fi.Params, pl)
		args = append(args, pl.Content)
	}
	fi.Lam = polce.NewTerm(g.lam(len(d.Params)), args...)
	l.Func = fi
	// The function location's content holds the function value.
	g.sys.AddConstraint(fi.Lam, l.Content)
	return l
}

// genFuncBody analyses one function definition.
func (g *gen) genFuncBody(d *cgen.FuncDecl) {
	l := g.lookup(d.Name)
	if l == nil || l.Func == nil {
		l = g.declareFunc(d)
	}
	fi := l.Func
	fi.Defined = true
	g.curFunc = fi
	g.curFuncName = d.Name
	g.pushScope()
	for i, p := range d.Params {
		if i < len(fi.Params) && p.Name != "" {
			g.bind(p.Name, fi.Params[i], p.Type)
		}
	}
	g.genStmt(d.Body)
	g.popScope()
	g.curFunc = nil
	g.curFuncName = ""
}
