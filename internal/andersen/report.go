package andersen

import (
	"encoding/json"
	"io"
	"sort"
)

// Report is the JSON-serialisable form of an analysis result, for
// consumption by external tooling.
type Report struct {
	// Locations lists every abstract location with its points-to set.
	Locations []LocationReport `json:"locations"`
	// Stats summarises the points-to graph.
	Stats PointsToStats `json:"stats"`
	// Solver carries the constraint-solver counters.
	Solver SolverReport `json:"solver"`
}

// LocationReport is one location's row.
type LocationReport struct {
	Name     string   `json:"name"`
	Function bool     `json:"function,omitempty"`
	Local    bool     `json:"local,omitempty"`
	PointsTo []string `json:"pointsTo,omitempty"`
}

// SolverReport carries the solver-side counters.
type SolverReport struct {
	Form           string `json:"form"`
	CyclePolicy    string `json:"cyclePolicy"`
	VarsCreated    int    `json:"varsCreated"`
	VarsEliminated int    `json:"varsEliminated"`
	Work           int64  `json:"work"`
	Redundant      int64  `json:"redundant"`
	FinalEdges     int    `json:"finalEdges"`
	Errors         int    `json:"errors,omitempty"`
}

// BuildReport assembles the serialisable report (locations sorted by
// name, points-to sets sorted, empty sets omitted unless includeEmpty).
func (r *Result) BuildReport(includeEmpty bool) Report {
	rep := Report{Stats: r.Stats()}
	for _, l := range r.Locations {
		pts := r.PointsToNames(l)
		if len(pts) == 0 && !includeEmpty {
			continue
		}
		sort.Strings(pts)
		rep.Locations = append(rep.Locations, LocationReport{
			Name:     l.Name,
			Function: l.Func != nil,
			Local:    l.IsLocal(),
			PointsTo: pts,
		})
	}
	sort.Slice(rep.Locations, func(i, j int) bool {
		return rep.Locations[i].Name < rep.Locations[j].Name
	})
	st := r.Sys.Stats()
	rep.Solver = SolverReport{
		Form:           r.Sys.Form().String(),
		CyclePolicy:    r.Sys.Policy().String(),
		VarsCreated:    st.VarsCreated,
		VarsEliminated: st.VarsEliminated,
		Work:           st.Work,
		Redundant:      st.Redundant,
		FinalEdges:     r.Sys.TotalEdges(),
		Errors:         r.Sys.ErrorCount(),
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Result) WriteJSON(w io.Writer, includeEmpty bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.BuildReport(includeEmpty))
}
