package andersen

import (
	"testing"

	"polce"
)

func escapeResult(t *testing.T) *Result {
	t.Helper()
	return analyze(t, `
int *global_slot;
int **gpp;

int *returned(void) {
	int through_return;          /* escapes via return */
	return &through_return;
}

void stored(void) {
	int through_global;          /* escapes via a global store */
	global_slot = &through_global;
}

void chained(void) {
	int deep;                    /* escapes via a two-hop chain */
	int *mid;
	mid = &deep;
	gpp = &mid;
}

void contained(void) {
	int stays;                   /* never escapes */
	int *lp;
	lp = &stays;
	*lp = 1;
}
`, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 5})
}

func TestEscapeViaReturn(t *testing.T) {
	r := escapeResult(t)
	escaped := r.EscapeSet()
	if !escaped[r.LocationByName("returned::through_return")] {
		t.Error("address returned from a function does not escape")
	}
}

func TestEscapeViaGlobalStore(t *testing.T) {
	r := escapeResult(t)
	escaped := r.EscapeSet()
	if !escaped[r.LocationByName("stored::through_global")] {
		t.Error("address stored into a global does not escape")
	}
}

func TestEscapeTransitive(t *testing.T) {
	r := escapeResult(t)
	escaped := r.EscapeSet()
	if !escaped[r.LocationByName("chained::mid")] {
		t.Error("mid (stored in gpp) does not escape")
	}
	if !escaped[r.LocationByName("chained::deep")] {
		t.Error("deep (reachable through mid) does not escape")
	}
}

func TestNoFalseEscape(t *testing.T) {
	r := escapeResult(t)
	escaped := r.EscapeSet()
	for _, name := range []string{"contained::stays", "contained::lp"} {
		if escaped[r.LocationByName(name)] {
			t.Errorf("%s escapes but never leaves its function", name)
		}
	}
}

func TestEscapingLocalsList(t *testing.T) {
	r := escapeResult(t)
	names := map[string]bool{}
	for _, l := range r.EscapingLocals() {
		names[l.Name] = true
	}
	for _, want := range []string{
		"returned::through_return", "stored::through_global",
		"chained::mid", "chained::deep",
	} {
		if !names[want] {
			t.Errorf("EscapingLocals missing %s (have %v)", want, names)
		}
	}
	if names["contained::stays"] {
		t.Error("EscapingLocals includes a non-escaping local")
	}
}

func TestIsLocal(t *testing.T) {
	r := escapeResult(t)
	cases := map[string]bool{
		"global_slot":              false,
		"returned":                 false, // function
		"contained::stays":         true,
		"returned::through_return": true,
	}
	for name, want := range cases {
		l := r.LocationByName(name)
		if l == nil {
			t.Fatalf("no location %s", name)
		}
		if got := l.IsLocal(); got != want {
			t.Errorf("IsLocal(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestHeapEscapesWhenStored(t *testing.T) {
	r := analyze(t, `
int *g;
void f(void) { g = (int *)malloc(4); }
`, Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 1})
	escaped := r.EscapeSet()
	found := false
	for l := range escaped {
		if len(l.Name) > 5 && l.Name[:5] == "heap@" {
			found = true
		}
	}
	if !found {
		t.Error("heap cell stored in a global not in the escape set")
	}
}
