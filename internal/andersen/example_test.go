package andersen_test

import (
	"fmt"
	"sort"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
)

// Analyze runs Andersen's points-to analysis over a parsed C file; the
// result answers points-to and alias queries.
func ExampleAnalyze() {
	file, err := cgen.MustParse("demo.c", `
int x, y;
int *p, *q;
void f(void) {
	p = &x;
	q = p;
	q = &y;
}
`)
	if err != nil {
		panic(err)
	}
	res := andersen.Analyze(file, andersen.Options{
		Form:   polce.IF,
		Cycles: polce.CycleOnline,
		Seed:   1,
	})

	p := res.LocationByName("p")
	q := res.LocationByName("q")
	qNames := res.PointsToNames(q) // first-reached order; sort for display
	sort.Strings(qNames)
	fmt.Println(res.PointsToNames(p))
	fmt.Println(qNames)
	fmt.Println(res.MayAlias(p, q))
	// Output:
	// [x]
	// [x y]
	// true
}

// CallTargets resolves indirect calls through the points-to sets of
// function-pointer variables.
func ExampleResult_CallTargets() {
	file, err := cgen.MustParse("fp.c", `
int *id(int *a) { return a; }
int *zero(int *a) { return (int *)0; }
int *(*handler)(int *);
void install(int which) {
	if (which) handler = id;
	else handler = zero;
}
`)
	if err != nil {
		panic(err)
	}
	res := andersen.Analyze(file, andersen.Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 1})
	for _, f := range res.CallTargets(res.LocationByName("handler")) {
		fmt.Println(f.Name)
	}
	// Output:
	// id
	// zero
}
