package andersen

import (
	"strings"
	"testing"

	"polce"
)

func queryResult(t *testing.T) *Result {
	t.Helper()
	return analyze(t, `
int x, y, z;
int *p, *q, *r;
int *id(int *a) { return a; }
int *other(int *a) { return a; }
void f(void) {
	int *(*fp)(int *) = id;
	p = &x;
	q = &x;
	q = &y;
	r = &z;
	p = fp(p);
}
`, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})
}

func TestMayAlias(t *testing.T) {
	r := queryResult(t)
	p := r.LocationByName("p")
	q := r.LocationByName("q")
	rr := r.LocationByName("r")
	if !r.MayAlias(p, q) {
		t.Error("p and q share x but MayAlias is false")
	}
	if r.MayAlias(p, rr) {
		t.Error("p and r are disjoint but MayAlias is true")
	}
	if !r.MayAlias(p, p) {
		t.Error("a location must alias itself")
	}
	if r.MayAlias(nil, p) || r.MayAlias(p, nil) {
		t.Error("nil locations must not alias")
	}
}

func TestPointedToBy(t *testing.T) {
	r := queryResult(t)
	x := r.LocationByName("x")
	holders := map[string]bool{}
	for _, l := range r.PointedToBy(x) {
		holders[l.Name] = true
	}
	if !holders["p"] || !holders["q"] {
		t.Errorf("PointedToBy(x) = %v, want p and q included", holders)
	}
	if holders["r"] {
		t.Errorf("r wrongly points to x")
	}
}

func TestCallTargets(t *testing.T) {
	r := queryResult(t)
	fp := r.LocationByName("f::fp")
	if fp == nil {
		t.Fatal("no fp location")
	}
	tgts := r.CallTargets(fp)
	if len(tgts) != 1 || tgts[0].Name != "id" {
		names := make([]string, len(tgts))
		for i, l := range tgts {
			names[i] = l.Name
		}
		t.Errorf("CallTargets(fp) = %v, want [id]", names)
	}
}

func TestPointsToStats(t *testing.T) {
	r := queryResult(t)
	st := r.Stats()
	if st.Locations == 0 || st.NonEmpty == 0 || st.Edges == 0 {
		t.Fatalf("degenerate stats %+v", st)
	}
	if st.MaxSet < 2 {
		t.Errorf("MaxSet = %d, want ≥2 (q points to x and y)", st.MaxSet)
	}
	if st.AvgSet <= 0 || st.AvgSet > float64(st.MaxSet) {
		t.Errorf("AvgSet = %v out of range", st.AvgSet)
	}
}

func TestPointsToDOT(t *testing.T) {
	r := queryResult(t)
	var sb strings.Builder
	if err := r.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph pointsto", `"p"`, `"x"`, "->", "shape=box"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
	var sb2 strings.Builder
	if err := r.WriteDOT(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("points-to DOT not deterministic")
	}
}

func TestSolverGraphStats(t *testing.T) {
	r := queryResult(t)
	st := r.SolverGraphStats()
	if st.Vars == 0 || st.Density <= 0 {
		t.Errorf("solver graph stats degenerate: %+v", st)
	}
}
