/* Mutual recursion and a pointer-copy ring: this file exists to create
 * constraint cycles, so the online-elimination counters are non-trivial. */
int obj0, obj1;
int *ra, *rb, *rc, *rd;

int *even(int *v, int n);

int *odd(int *v, int n) {
	if (n == 0) return v;
	return even(v, n - 1);
}

int *even(int *v, int n) {
	if (n == 0) return v;
	return odd(v, n - 1);
}

void ring(void) {
	ra = rb;
	rb = rc;
	rc = rd;
	rd = ra;
	ra = &obj0;
}

int main(void) {
	int *r = odd(&obj1, 5);
	ring();
	return 0;
}
