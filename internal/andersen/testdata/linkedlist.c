/* Linked list with push/pop through a head pointer: the classic
 * points-to workout mixing heap cells, double indirection and loops. */
struct node { struct node *next; int *val; };

struct node *head;
int a, b;

void push(int *v) {
	struct node *n = (struct node *)malloc(sizeof(struct node));
	n->val = v;
	n->next = head;
	head = n;
}

int *pop(void) {
	struct node *n = head;
	if (!n) return (int *)0;
	head = n->next;
	return n->val;
}

int main(void) {
	int *got;
	push(&a);
	push(&b);
	got = pop();
	got = pop();
	return 0;
}
