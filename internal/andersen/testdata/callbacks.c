/* Callback dispatch table: function pointers stored in an array, bound
 * dynamically, invoked indirectly. */
int ok, fail;

int *on_ok(int *x)   { return x; }
int *on_fail(int *x) { return &fail; }

int *(*table[2])(int *);

void install(void) {
	table[0] = on_ok;
	table[1] = &on_fail;
}

int *dispatch(int which, int *arg) {
	return table[which](arg);
}

int main(void) {
	int *r;
	install();
	r = dispatch(0, &ok);
	return 0;
}
