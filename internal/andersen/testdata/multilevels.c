/* Multi-level indirection: three stars deep, with writes at each level. */
int x, y;
int *p1, *q1;
int **p2, **q2;
int ***p3;

void deep(void) {
	p1 = &x;
	p2 = &p1;
	p3 = &p2;
	**p3 = &y;   /* writes into p1 */
	q2 = *p3;    /* q2 = p2's contents = {p1} */
	q1 = **p3;   /* q1 = p1's contents = {x, y} */
	*q2 = q1;    /* p1 gets q1's contents: no new names */
}
