package andersen

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"polce"
	"polce/internal/cgen"
)

// analyze parses and analyses src under the given configuration.
func analyze(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	f, err := cgen.MustParse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Analyze(f, opts)
}

// pts returns the sorted points-to set of the location named name.
func pts(t *testing.T, r *Result, name string) []string {
	t.Helper()
	l := r.LocationByName(name)
	if l == nil {
		t.Fatalf("no location %q; have %v", name, locNames(r))
	}
	names := r.PointsToNames(l)
	sort.Strings(names)
	return names
}

func locNames(r *Result) []string {
	var out []string
	for _, l := range r.Locations {
		out = append(out, l.Name)
	}
	return out
}

func wantPts(t *testing.T, r *Result, name string, want ...string) {
	t.Helper()
	got := pts(t, r, name)
	sort.Strings(want)
	if len(want) == 0 {
		want = []string{}
	}
	if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
		t.Errorf("pts(%s) = %v, want %v", name, got, want)
	}
}

// allConfigs are the six experiment configurations plus the increasing
// ablation.
func allConfigs() []Options {
	var out []Options
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		for _, pol := range []polce.CyclePolicy{polce.CycleNone, polce.CycleOnline, polce.CycleOnlineIncreasing} {
			out = append(out, Options{Form: form, Cycles: pol, Seed: 17})
		}
	}
	return out
}

func TestBasicAddressOf(t *testing.T) {
	src := `
int x, y;
int *p, *q;
void f(void) {
	p = &x;
	q = p;
	p = &y;
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		wantPts(t, r, "p", "x", "y")
		wantPts(t, r, "q", "x", "y") // flow-insensitive: q sees both
		wantPts(t, r, "x")
		if r.Sys.ErrorCount() != 0 {
			t.Errorf("%v/%v: constraint errors: %v", cfg.Form, cfg.Cycles, r.Sys.Errors())
		}
	}
}

func TestDerefWrite(t *testing.T) {
	src := `
int x;
int *p;
int **pp;
void f(void) {
	pp = &p;
	*pp = &x;
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		wantPts(t, r, "pp", "p")
		wantPts(t, r, "p", "x")
	}
}

func TestDerefRead(t *testing.T) {
	src := `
int x;
int *p, *q;
int **pp;
void f(void) {
	p = &x;
	pp = &p;
	q = *pp;
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		wantPts(t, r, "q", "x")
	}
}

func TestFigure5Shape(t *testing.T) {
	// The shape of the paper's Figure 5 example: a points to b and c,
	// b points to d, c points to b.
	src := `
int d;
int *b, *c;
int **a;
void f(void) {
	a = &b;
	b = &d;
	a = &c;
	c = b;
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	wantPts(t, r, "a", "b", "c")
	wantPts(t, r, "b", "d")
	wantPts(t, r, "c", "d")
}

func TestHeapAllocation(t *testing.T) {
	src := `
int *p, *q, *r;
void f(void) {
	p = malloc(4);
	q = malloc(4);
	r = p;
}
`
	for _, cfg := range allConfigs() {
		res := analyze(t, src, cfg)
		pp := pts(t, res, "p")
		qq := pts(t, res, "q")
		rr := pts(t, res, "r")
		if len(pp) != 1 || len(qq) != 1 {
			t.Fatalf("%v/%v: pts(p)=%v pts(q)=%v", cfg.Form, cfg.Cycles, pp, qq)
		}
		if pp[0] == qq[0] {
			t.Errorf("distinct malloc sites share a location: %v", pp)
		}
		if !reflect.DeepEqual(rr, pp) {
			t.Errorf("pts(r)=%v, want %v", rr, pp)
		}
	}
}

func TestReallocFlows(t *testing.T) {
	src := `
int *p, *q;
void f(void) {
	p = malloc(8);
	q = realloc(p, 16);
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})
	qq := pts(t, r, "q")
	if len(qq) != 2 {
		t.Errorf("pts(q) = %v, want the old and the new heap cell", qq)
	}
}

func TestDirectCall(t *testing.T) {
	src := `
int x, y;
int *id(int *a) { return a; }
void f(void) {
	int *p = id(&x);
	int *q = id(&y);
	p = q;
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		// One return variable: both sites merge (context-insensitive).
		wantPts(t, r, "f::p", "x", "y")
		wantPts(t, r, "id::a", "x", "y")
	}
}

func TestFunctionPointers(t *testing.T) {
	src := `
int x, y;
int *id(int *a) { return a; }
int *other(int *b) { return b; }
void f(void) {
	int *(*fp)(int *);
	int *p;
	fp = id;
	fp = &other;
	p = fp(&x);
	p = (*fp)(&y);
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		wantPts(t, r, "f::fp", "id", "other")
		// Both targets receive both arguments; p sees both returns.
		wantPts(t, r, "id::a", "x", "y")
		wantPts(t, r, "other::b", "x", "y")
		wantPts(t, r, "f::p", "x", "y")
		if r.Sys.ErrorCount() != 0 {
			t.Errorf("%v/%v: constraint errors: %v", cfg.Form, cfg.Cycles, r.Sys.Errors())
		}
	}
}

func TestFunctionPointerInStruct(t *testing.T) {
	src := `
int x;
int *id(int *a) { return a; }
struct ops { int *(*get)(int *); };
void f(void) {
	struct ops o;
	int *p;
	o.get = id;
	p = o.get(&x);
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 4})
	wantPts(t, r, "f::p", "x")
}

func TestArrayCollapse(t *testing.T) {
	src := `
int a[10];
int *p, *q, *r;
int *tab[4];
int x;
void f(void) {
	p = a;
	q = &a[2];
	tab[0] = &x;
	r = tab[1];
}
`
	for _, cfg := range allConfigs() {
		res := analyze(t, src, cfg)
		wantPts(t, res, "p", "a")
		wantPts(t, res, "q", "a")
		wantPts(t, res, "r", "x") // collapsed elements
	}
}

func TestStructFieldInsensitive(t *testing.T) {
	src := `
int x;
struct s { int *f; int *g; };
struct s s1;
int *q;
void f(void) {
	s1.f = &x;
	q = s1.g;
}
`
	r := analyze(t, src, Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 2})
	wantPts(t, r, "q", "x") // fields collapse onto the struct
}

func TestLinkedList(t *testing.T) {
	src := `
struct node { struct node *next; int v; };
struct node n1, n2;
struct node *q;
void f(void) {
	n1.next = &n2;
	n2.next = &n1;
	q = n1.next->next;
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		// n1.next = {n2}; reading ->next of n2 gives n2's contents {n1}.
		wantPts(t, r, "q", "n1")
	}
}

func TestStringLiterals(t *testing.T) {
	src := `
char *s, *u;
void f(void) {
	s = "hello";
	u = s;
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 5})
	ss := pts(t, r, "s")
	if len(ss) != 1 {
		t.Fatalf("pts(s) = %v", ss)
	}
	if got := pts(t, r, "u"); !reflect.DeepEqual(got, ss) {
		t.Errorf("pts(u) = %v, want %v", got, ss)
	}
}

func TestMemcpyModel(t *testing.T) {
	src := `
int x;
int *a[2];
int *b[2];
int *q;
void f(void) {
	a[0] = &x;
	memcpy(b, a, sizeof(a));
	q = b[0];
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 6})
	wantPts(t, r, "q", "x")
}

func TestTernaryCommaCast(t *testing.T) {
	src := `
int x, y, c;
int *p;
void f(void) {
	p = c ? &x : (int *)&y;
	p = (c, &x);
}
`
	r := analyze(t, src, Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 7})
	wantPts(t, r, "p", "x", "y")
}

func TestPointerArithmetic(t *testing.T) {
	src := `
int a[8];
int *p, *q;
void f(void) {
	p = a + 2;
	q = p - 1;
	q = 1 + p;
	p += 3;
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 8})
	wantPts(t, r, "p", "a")
	wantPts(t, r, "q", "a")
}

func TestRecursion(t *testing.T) {
	src := `
struct node { struct node *next; };
struct node *walk(struct node *n) {
	if (n) return walk(n->next);
	return n;
}
struct node head, tail;
struct node *end;
void f(void) {
	head.next = &tail;
	end = walk(&head);
}
`
	for _, cfg := range allConfigs() {
		r := analyze(t, src, cfg)
		wantPts(t, r, "end", "head", "tail")
	}
}

func TestPointerCopyCycleCollapses(t *testing.T) {
	src := `
int x;
int *p, *q, *r;
void f(void) {
	p = &x;
	q = p;
	r = q;
	p = r;
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 9})
	if r.Sys.Stats().VarsEliminated == 0 {
		t.Errorf("copy cycle produced no eliminations")
	}
	wantPts(t, r, "p", "x")
	wantPts(t, r, "q", "x")
	wantPts(t, r, "r", "x")
}

// TestAllConfigsAgreeOnProgram is the integration analogue of the solver's
// agreement property: the points-to graph is identical across every
// representation, policy, seed and the oracle.
func TestAllConfigsAgreeOnProgram(t *testing.T) {
	src := `
struct node { struct node *next; int *data; };
int g1, g2;
int *gp;
struct node pool[16];
struct node *freelist;
struct node *alloc_node(void) {
	struct node *n;
	if (freelist) { n = freelist; freelist = n->next; return n; }
	n = (struct node *)malloc(sizeof(struct node));
	return n;
}
void release(struct node *n) { n->next = freelist; freelist = n; }
void fill(struct node *n, int *v) { n->data = v; }
int *fetch(struct node *n) { return n->data; }
int main(void) {
	struct node *a = alloc_node();
	struct node *b = alloc_node();
	int *(*get)(struct node *) = fetch;
	fill(a, &g1);
	fill(b, &g2);
	gp = get(a);
	release(a);
	release(b);
	freelist = pool;
	return 0;
}
`
	f, err := cgen.MustParse("prog.c", src)
	if err != nil {
		t.Fatal(err)
	}

	snapshot := func(r *Result) map[string][]string {
		m := map[string][]string{}
		for _, l := range r.Locations {
			names := r.PointsToNames(l)
			sort.Strings(names)
			m[l.Name] = names
		}
		return m
	}

	ref := Analyze(f, Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: 0})
	refSnap := snapshot(ref)
	oracle := polce.BuildOracle(ref.Sys)

	configs := []Options{
		{Form: polce.IF, Cycles: polce.CycleNone, Seed: 0},
		{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 0},
		{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 0},
		{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 99},
		{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 99},
		{Form: polce.SF, Cycles: polce.CycleOnlineIncreasing, Seed: 0},
		{Form: polce.SF, Cycles: polce.CycleOracle, Seed: 0, Oracle: oracle},
		{Form: polce.IF, Cycles: polce.CycleOracle, Seed: 0, Oracle: oracle},
	}
	for _, cfg := range configs {
		r := Analyze(f, cfg)
		got := snapshot(r)
		if !reflect.DeepEqual(got, refSnap) {
			for k := range refSnap {
				if !reflect.DeepEqual(refSnap[k], got[k]) {
					t.Errorf("%v/%v: pts(%s) = %v, want %v", cfg.Form, cfg.Cycles, k, got[k], refSnap[k])
				}
			}
		}
	}
}

func TestInitializers(t *testing.T) {
	src := `
int x, y;
int *tab[] = { &x, &y };
struct pair { int *a; int *b; };
struct pair pr = { &x, &y };
int *p = &x;
int *q;
void f(void) { q = tab[0]; }
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 10})
	wantPts(t, r, "p", "x")
	wantPts(t, r, "tab", "x", "y")
	wantPts(t, r, "pr", "x", "y")
	wantPts(t, r, "q", "x", "y")
}

func TestShadowing(t *testing.T) {
	src := `
int x, g;
int *p;
void f(void) {
	int x;
	p = &x;
	{
		int x;
		p = &x;
	}
}
`
	r := analyze(t, src, Options{Form: polce.SF, Cycles: polce.CycleOnline, Seed: 11})
	got := pts(t, r, "p")
	if len(got) != 2 {
		t.Errorf("pts(p) = %v, want the two local x's", got)
	}
	for _, n := range got {
		if n == "x" {
			t.Errorf("global x wrongly in pts(p): %v", got)
		}
	}
}

func TestInitialGraphSmallerThanClosed(t *testing.T) {
	src := `
int x; int *p, *q, *r;
void f(void) { p = &x; q = p; r = q; }
`
	f, err := cgen.MustParse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	init := AnalyzeInitial(f, Options{Form: polce.SF, Seed: 1})
	full := Analyze(f, Options{Form: polce.SF, Seed: 1})
	if init.Sys.TotalEdges() >= full.Sys.TotalEdges() {
		t.Errorf("initial edges %d not smaller than closed edges %d",
			init.Sys.TotalEdges(), full.Sys.TotalEdges())
	}
}

func TestVariadicCalls(t *testing.T) {
	src := `
int printf(const char *fmt, ...);
int x;
int *p;
void f(void) {
	printf("%d %p", x, (void *)&x);
	p = &x;
}
`
	r := analyze(t, src, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 12})
	wantPts(t, r, "p", "x")
	if r.Sys.ErrorCount() != 0 {
		t.Errorf("variadic call produced errors: %v", r.Sys.Errors())
	}
}

func TestDeterministicVarCreation(t *testing.T) {
	src := `
int x; int *p; int *f(int *a) { return a; }
void g(void) { p = f(&x); }
`
	f, err := cgen.MustParse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(f, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})
	b := Analyze(f, Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: 3})
	if a.Sys.NumCreated() != b.Sys.NumCreated() {
		t.Errorf("variable creation depends on solver config: %d vs %d",
			a.Sys.NumCreated(), b.Sys.NumCreated())
	}
}

func TestPointsToEdges(t *testing.T) {
	src := `int x; int *p; void f(void) { p = &x; }`
	r := analyze(t, src, Options{Form: polce.SF, Seed: 1})
	if n := r.PointsToEdges(); n != 1 {
		t.Errorf("PointsToEdges = %d, want 1", n)
	}
}

func TestManySeedsNoErrors(t *testing.T) {
	src := `
struct s { struct s *n; int *d; };
int a, b;
struct s x, y;
void f(struct s *p) {
	p->n = &y;
	y.n = &x;
	x.d = &a;
	y.d = &b;
}
void g(void) { f(&x); f(x.n); }
`
	for seed := int64(0); seed < 20; seed++ {
		for _, form := range []polce.Form{polce.SF, polce.IF} {
			r := analyze(t, src, Options{Form: form, Cycles: polce.CycleOnline, Seed: seed})
			if r.Sys.ErrorCount() != 0 {
				t.Fatalf("%v seed %d: %v", form, seed, r.Sys.Errors())
			}
			// X_p = {x, y, a}; p->n = &y writes y into each of their
			// contents; plus the direct field writes.
			got := pts(t, r, "x")
			want := []string{"a", "y"}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%v seed %d: pts(x) = %v, want %v", form, seed, got, want)
			}
			goty := pts(t, r, "y")
			wanty := []string{"b", "x", "y"}
			if fmt.Sprint(goty) != fmt.Sprint(wanty) {
				t.Fatalf("%v seed %d: pts(y) = %v, want %v", form, seed, goty, wanty)
			}
		}
	}
}
