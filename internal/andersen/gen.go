package andersen

import (
	"fmt"

	"polce"
	"polce/internal/cgen"
)

// This file generates constraints from statements and expressions. The
// analysis follows the paper's L-value discipline: lvalue(e) is a set
// expression denoting the ref terms of the locations e designates, and
// rvalue(e) projects one "get" out of it — except for arrays, functions
// and string literals, whose value is their own location (C decay).

// read projects the contents out of the location set lv: fresh T with
// lv ⊆ ref(1, T, 0̄).
func (g *gen) read(lv polce.Expr, hint string) *polce.Var {
	t := g.sys.Fresh(hint)
	g.sys.AddConstraint(lv, polce.NewTerm(refCon, polce.One, t, polce.Zero))
	return t
}

// write stores the values val into every location in lv:
// lv ⊆ ref(1, 1, v̄al), whose contravariant position sends val into each
// location's content. The write target is recorded for the MOD analysis.
func (g *gen) write(lv polce.Expr, val polce.Expr) {
	if lv == nil || val == nil {
		return
	}
	if g.curFunc != nil {
		g.fact().writes = append(g.fact().writes, lv)
	}
	g.sys.AddConstraint(lv, polce.NewTerm(refCon, polce.One, polce.One, val))
}

// fact returns the current function's MOD-fact record.
func (g *gen) fact() *funcFacts {
	f := g.res.facts[g.curFunc]
	if f == nil {
		f = &funcFacts{}
		g.res.facts[g.curFunc] = f
	}
	return f
}

// genStmt generates constraints for a statement (flow-insensitively: the
// control structure is irrelevant, only the contained assignments and
// calls matter).
func (g *gen) genStmt(s cgen.Stmt) {
	switch st := s.(type) {
	case nil:
		return
	case *cgen.Block:
		if st == nil {
			return
		}
		g.pushScope()
		for _, inner := range st.Stmts {
			g.genStmt(inner)
		}
		g.popScope()
	case *cgen.DeclStmt:
		for _, d := range st.Decls {
			switch dd := d.(type) {
			case *cgen.VarDecl:
				l := g.declareVar(dd, g.curFuncName)
				if dd.Init != nil && l != nil {
					g.genInit(l.Ref, dd.Init)
				}
			case *cgen.FuncDecl:
				g.declareFunc(dd)
			case *cgen.RecordDecl:
				g.tenv.DefineRecord(dd)
			}
		}
	case *cgen.ExprStmt:
		g.rvalue(st.X)
	case *cgen.If:
		g.rvalue(st.Cond)
		g.genStmt(st.Then)
		g.genStmt(st.Else)
	case *cgen.While:
		g.rvalue(st.Cond)
		g.genStmt(st.Body)
	case *cgen.DoWhile:
		g.genStmt(st.Body)
		g.rvalue(st.Cond)
	case *cgen.For:
		g.pushScope() // C99 for-init declarations scope to the loop
		g.genStmt(st.Init)
		if st.Cond != nil {
			g.rvalue(st.Cond)
		}
		if st.Post != nil {
			g.rvalue(st.Post)
		}
		g.genStmt(st.Body)
		g.popScope()
	case *cgen.Return:
		if st.X != nil {
			v := g.rvalue(st.X)
			if g.curFunc != nil {
				g.sys.AddConstraint(v, g.curFunc.Ret)
			}
		}
	case *cgen.Switch:
		g.rvalue(st.Tag)
		g.genStmt(st.Body)
	case *cgen.Case:
		if st.X != nil {
			g.rvalue(st.X)
		}
		g.genStmt(st.Body)
	case *cgen.Label:
		g.genStmt(st.Body)
	case *cgen.Goto, *cgen.Break, *cgen.Continue, *cgen.Empty:
		// no data flow
	}
}

// genInit generates constraints for an initialiser writing into the
// location set lv. Brace lists collapse onto the same location (arrays are
// one element; structs are field-insensitive). Constant elements carry no
// pointers and are skipped entirely, so large initialised data tables —
// the paper's flex outlier — cost the analysis nothing.
func (g *gen) genInit(lv polce.Expr, init cgen.Expr) {
	if lst, ok := init.(*cgen.InitList); ok {
		for _, e := range lst.Elems {
			switch e.(type) {
			case *cgen.IntExpr, *cgen.FloatExpr:
				continue
			}
			g.genInit(lv, e)
		}
		return
	}
	g.write(lv, g.rvalue(init))
}

// emptySet returns a fresh variable with no constraints — the value of
// expressions that cannot carry pointers.
func (g *gen) emptySet() *polce.Var { return g.sys.Fresh("t") }

// lvalue returns the set expression for the locations e designates, or nil
// when e has no l-value (e.g. arithmetic). Side effects inside e are
// generated.
func (g *gen) lvalue(e cgen.Expr) polce.Expr {
	switch x := e.(type) {
	case *cgen.IdentExpr:
		if l := g.lookup(x.Name); l != nil {
			return l.Ref
		}
		// Unknown identifier (undeclared extern, enumerator): no
		// locations.
		return nil
	case *cgen.StrExpr:
		l := g.newLocation(fmt.Sprintf("str@%d:%d", x.Line, x.Col))
		return l.Ref
	case *cgen.UnaryExpr:
		if x.Op == cgen.Star {
			return g.rvalue(x.X)
		}
		if x.Op == cgen.Inc || x.Op == cgen.Dec {
			return g.lvalue(x.X) // ++p designates p
		}
		// &e and arithmetic unaries have no l-value.
		g.rvalue(e)
		return nil
	case *cgen.IndexExpr:
		g.rvalue(x.Idx)
		return g.rvalue(x.X) // a[i] ≡ *(a+i); decay happens in rvalue
	case *cgen.MemberExpr:
		if x.Arrow {
			return g.rvalue(x.X) // p->f designates p's pointees
		}
		return g.lvalue(x.X) // s.f collapses onto s
	case *cgen.CastExpr:
		return g.lvalue(x.X)
	case *cgen.AssignExpr:
		g.rvalue(e)
		return g.lvalue2(x.L)
	case *cgen.CommaExpr:
		g.rvalue(x.L)
		return g.lvalue(x.R)
	case *cgen.CondExpr:
		g.rvalue(x.Cond)
		out := g.sys.Fresh("cond")
		if lv := g.lvalue(x.Then); lv != nil {
			g.sys.AddConstraint(lv, out)
		}
		if lv := g.lvalue(x.Else); lv != nil {
			g.sys.AddConstraint(lv, out)
		}
		return out
	case *cgen.PostfixExpr:
		return g.lvalue(x.X)
	}
	// Expressions without l-values: evaluate for effect.
	g.rvalue(e)
	return nil
}

// lvalue2 re-derives the l-value of an already-evaluated expression
// without regenerating its side effects; used where an expression is both
// assigned and read (x = y = z). Regenerating constraints would be sound —
// the system is a set — so this is just an economy.
func (g *gen) lvalue2(e cgen.Expr) polce.Expr {
	switch x := e.(type) {
	case *cgen.IdentExpr:
		if l := g.lookup(x.Name); l != nil {
			return l.Ref
		}
		return nil
	case *cgen.CastExpr:
		return g.lvalue2(x.X)
	case *cgen.MemberExpr:
		if !x.Arrow {
			return g.lvalue2(x.X)
		}
	}
	return g.lvalue(e)
}

// decays reports whether values of type t are the location itself rather
// than its contents (arrays and functions).
func decays(t *cgen.Type) bool {
	return t != nil && (t.Kind == cgen.TArray || t.Kind == cgen.TFunc)
}

// rvalue returns the value set of e, generating its constraints.
func (g *gen) rvalue(e cgen.Expr) polce.Expr {
	switch x := e.(type) {
	case nil:
		return g.emptySet()
	case *cgen.IntExpr, *cgen.FloatExpr, *cgen.SizeofExpr:
		if sz, ok := e.(*cgen.SizeofExpr); ok && sz.X != nil {
			g.rvalue(sz.X)
		}
		return g.emptySet()
	case *cgen.StrExpr:
		return g.lvalue(e) // the literal's own location, decayed
	case *cgen.IdentExpr:
		l := g.lookup(x.Name)
		if l == nil {
			return g.emptySet()
		}
		if decays(g.lookupType(x.Name)) || l.Func != nil {
			return l.Ref
		}
		return g.read(l.Ref, x.Name+"$v")
	case *cgen.UnaryExpr:
		switch x.Op {
		case cgen.Amp:
			lv := g.lvalue(x.X)
			if lv == nil {
				return g.emptySet()
			}
			return lv // the value of &e is e's locations
		case cgen.Star:
			inner := g.rvalue(x.X)
			if t := g.typeOf(x.X); t != nil && t.Kind == cgen.TPointer && t.Elem != nil && t.Elem.Kind == cgen.TFunc {
				return inner // *fp on a function pointer is fp
			}
			if t := g.typeOf(e); decays(t) {
				return inner
			}
			return g.read(inner, "deref")
		case cgen.Inc, cgen.Dec:
			return g.rvalue(x.X) // ++p's value is p's (updated) value
		default:
			g.rvalue(x.X)
			return g.emptySet()
		}
	case *cgen.PostfixExpr:
		return g.rvalue(x.X)
	case *cgen.BinaryExpr:
		l := g.rvalue(x.L)
		r := g.rvalue(x.R)
		if x.Op == cgen.Plus || x.Op == cgen.Minus {
			// Pointer arithmetic: the result may carry either side's
			// locations (p+i, i+p).
			out := g.sys.Fresh("arith")
			g.sys.AddConstraint(l, out)
			g.sys.AddConstraint(r, out)
			return out
		}
		return g.emptySet()
	case *cgen.AssignExpr:
		val := g.rvalue(x.R)
		lv := g.lvalue(x.L)
		if x.Op != cgen.Assign {
			// Compound assignment: the stored value also keeps the old
			// one (p += i keeps p's targets).
			old := g.rvalue(x.L)
			merged := g.sys.Fresh("upd")
			g.sys.AddConstraint(val, merged)
			g.sys.AddConstraint(old, merged)
			val = merged
		}
		if lv != nil {
			g.write(lv, val)
		}
		return val
	case *cgen.CondExpr:
		g.rvalue(x.Cond)
		out := g.sys.Fresh("cond$v")
		g.sys.AddConstraint(g.rvalue(x.Then), out)
		g.sys.AddConstraint(g.rvalue(x.Else), out)
		return out
	case *cgen.CommaExpr:
		g.rvalue(x.L)
		return g.rvalue(x.R)
	case *cgen.CastExpr:
		v := g.rvalue(x.X)
		if t := g.typeOf(x.X); decays(t) {
			return v
		}
		return v
	case *cgen.IndexExpr:
		g.rvalue(x.Idx)
		base := g.rvalue(x.X)
		if decays(g.typeOf(e)) {
			return base // multi-dimensional arrays stay collapsed
		}
		return g.read(base, "elem")
	case *cgen.MemberExpr:
		lv := g.lvalue(e)
		if lv == nil {
			return g.emptySet()
		}
		if decays(g.typeOf(e)) {
			return lv
		}
		return g.read(lv, "field")
	case *cgen.CallExpr:
		return g.genCall(x)
	case *cgen.InitList:
		for _, el := range x.Elems {
			g.rvalue(el)
		}
		return g.emptySet()
	}
	return g.emptySet()
}

// allocators are the standard allocation functions; each call site of one
// becomes a fresh heap location.
var allocators = map[string]bool{
	"malloc": true, "calloc": true, "valloc": true, "alloca": true,
	"xmalloc": true, "strdup": true, "xstrdup": true,
}

// genCall generates constraints for a call expression and returns its
// value set.
func (g *gen) genCall(call *cgen.CallExpr) polce.Expr {
	// Allocation sites and a few well-known library functions are
	// modelled specially.
	if id, ok := call.Fun.(*cgen.IdentExpr); ok && g.lookup(id.Name) == nil {
		return g.genSpecialCall(id.Name, call)
	}
	if id, ok := call.Fun.(*cgen.IdentExpr); ok {
		if l := g.lookup(id.Name); l != nil && l.Func != nil {
			if g.curFunc != nil {
				g.fact().direct = append(g.fact().direct, l.Func)
			}
			return g.genDirectCall(l.Func, call)
		}
	}
	// Indirect call: flow through a lam sink. The callee expression's
	// value is a set of function locations (a function designator's value
	// is its own location, like an array's), so one read reaches the lam
	// values stored in those locations.
	fnLocs := g.rvalue(call.Fun)
	if g.curFunc != nil {
		g.fact().indirect = append(g.fact().indirect, fnLocs)
	}
	fnVals := g.read(fnLocs, "fnval")
	ret := g.sys.Fresh("call$v")
	args := []polce.Expr{ret}
	for _, a := range call.Args {
		args = append(args, g.rvalue(a))
	}
	g.sys.AddConstraint(fnVals, polce.NewTerm(g.lam(len(call.Args)), args...))
	return ret
}

// genDirectCall wires a call to a known function without going through lam
// decomposition, which both saves work and tolerates arity mismatches
// (variadics, old-style declarations).
func (g *gen) genDirectCall(fi *FuncInfo, call *cgen.CallExpr) polce.Expr {
	for i, a := range call.Args {
		v := g.rvalue(a)
		if i < len(fi.Params) {
			g.sys.AddConstraint(v, fi.Params[i].Content)
		}
	}
	return fi.Ret
}

// genSpecialCall models calls to undeclared externals: allocators return a
// fresh heap location per site, the copying functions propagate contents,
// and everything else only evaluates its arguments.
func (g *gen) genSpecialCall(name string, call *cgen.CallExpr) polce.Expr {
	argv := make([]polce.Expr, len(call.Args))
	for i, a := range call.Args {
		argv[i] = g.rvalue(a)
	}
	switch {
	case allocators[name]:
		l := g.newLocation(fmt.Sprintf("heap@%d:%d", call.Line, call.Col))
		out := g.sys.Fresh("alloc$v")
		g.sys.AddConstraint(l.Ref, out)
		return out
	case name == "realloc":
		// realloc may return its argument or fresh storage.
		l := g.newLocation(fmt.Sprintf("heap@%d:%d", call.Line, call.Col))
		out := g.sys.Fresh("realloc$v")
		g.sys.AddConstraint(l.Ref, out)
		if len(argv) > 0 {
			g.sys.AddConstraint(argv[0], out)
		}
		return out
	case (name == "memcpy" || name == "memmove" || name == "strcpy" ||
		name == "strncpy" || name == "strcat" || name == "strncat" ||
		name == "bcopy") && len(argv) >= 2:
		// Contents of the source's targets flow into the destination's
		// targets; the destination pointer is returned.
		src, dst := argv[1], argv[0]
		if name == "bcopy" {
			src, dst = argv[0], argv[1]
		}
		vals := g.read(src, "copy$src")
		g.write(dst, vals)
		out := g.sys.Fresh(name + "$v")
		g.sys.AddConstraint(dst, out)
		return out
	default:
		return g.emptySet()
	}
}
