package andersen

import (
	"testing"

	"polce"
	"polce/internal/cgen"
	"polce/internal/progen"
)

// TestDensityPremise verifies the empirical premise of the paper's
// Section 5 on a realistic points-to workload: initial constraint graphs
// sit near one edge per variable (p ≈ 1/n) and closed graphs stay sparse
// (a few edges per variable, the k ≈ 2 regime where Theorem 5.2 bounds the
// online chain search at about two visited nodes).
func TestDensityPremise(t *testing.T) {
	src := progen.Generate(progen.ByScale(31, 8000))
	f, err := cgen.MustParse("g.c", src)
	if err != nil {
		t.Fatal(err)
	}

	initial := AnalyzeInitial(f, Options{Form: polce.IF, Seed: 1})
	ist := initial.Sys.CurrentGraphStats()
	if ist.Density < 0.5 || ist.Density > 2.5 {
		t.Errorf("initial density %.2f, want ≈1 edge/var (paper's p ≈ 1/n)", ist.Density)
	}

	closed := Analyze(f, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	cst := closed.Sys.CurrentGraphStats()
	if cst.Density < ist.Density {
		t.Errorf("closure decreased density: %.2f -> %.2f", ist.Density, cst.Density)
	}
	if cst.Density > 12 {
		t.Errorf("closed density %.2f far above the sparse regime", cst.Density)
	}

	// The measured search cost should be a small constant, the empirical
	// face of Theorem 5.2.
	if v := closed.Sys.Stats().VisitsPerSearch(); v <= 0 || v > 8 {
		t.Errorf("visits/search = %.2f, want a small constant (paper observes ≈2)", v)
	}
}
