package andersen

import (
	"sort"
	"testing"
	"testing/quick"

	"polce"
	"polce/internal/cgen"
	"polce/internal/progen"
)

// snapshotPts renders the full points-to graph as name → sorted names.
func snapshotPts(r *Result) map[string][]string {
	m := map[string][]string{}
	for _, l := range r.Locations {
		names := r.PointsToNames(l)
		sort.Strings(names)
		m[l.Name] = names
	}
	return m
}

func equalSnapshots(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok || len(va) != len(vb) {
			return false
		}
		for i := range va {
			if va[i] != vb[i] {
				return false
			}
		}
	}
	return true
}

// TestDifferentialConfigs is the repository's broadest correctness net:
// for randomly generated programs, every representation × policy × order
// seed must compute exactly the same points-to graph. This is run as a
// property over seeds via testing/quick.
func TestDifferentialConfigs(t *testing.T) {
	property := func(seed16 uint16) bool {
		seed := int64(seed16)
		src := progen.Generate(progen.Config{Seed: seed, Functions: 8, StmtsPerFunc: 18})
		f, err := cgen.MustParse("fuzz.c", src)
		if err != nil {
			t.Logf("seed %d: parse error %v", seed, err)
			return false
		}
		ref := Analyze(f, Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: seed})
		want := snapshotPts(ref)
		oracle := polce.BuildOracle(ref.Sys)

		configs := []Options{
			{Form: polce.IF, Cycles: polce.CycleNone, Seed: seed},
			{Form: polce.SF, Cycles: polce.CycleOnline, Seed: seed},
			{Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed + 7},
			{Form: polce.SF, Cycles: polce.CycleOnlineIncreasing, Seed: seed},
			{Form: polce.SF, Cycles: polce.CyclePeriodic, Seed: seed, PeriodicInterval: 64},
			{Form: polce.IF, Cycles: polce.CyclePeriodic, Seed: seed, PeriodicInterval: 64},
			{Form: polce.SF, Cycles: polce.CycleOracle, Seed: seed, Oracle: oracle},
			{Form: polce.IF, Cycles: polce.CycleOracle, Seed: seed, Oracle: oracle},
		}
		for _, cfg := range configs {
			got := snapshotPts(Analyze(f, cfg))
			if !equalSnapshots(want, got) {
				t.Logf("seed %d: %v/%v diverges", seed, cfg.Form, cfg.Cycles)
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 3
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDifferentialRoundtrip adds the printer to the loop: analysing the
// pretty-printed program must give the same points-to graph as analysing
// the original (location names survive because the printer preserves all
// declarations).
func TestDifferentialRoundtrip(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		src := progen.Generate(progen.Config{Seed: seed, Functions: 6, StmtsPerFunc: 15})
		f1, err := cgen.MustParse("orig.c", src)
		if err != nil {
			t.Fatal(err)
		}
		f2, err := cgen.MustParse("printed.c", cgen.Print(f1))
		if err != nil {
			t.Fatalf("seed %d: printed program does not parse: %v", seed, err)
		}
		a := snapshotPts(Analyze(f1, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1}))
		b := snapshotPts(Analyze(f2, Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1}))
		// Heap/string locations embed line:col which shifts under
		// printing, so compare only named variables.
		for k, va := range a {
			if len(k) > 5 && (k[:5] == "heap@" || k[:4] == "str@") {
				continue
			}
			vb := b[k]
			filter := func(xs []string) []string {
				var out []string
				for _, x := range xs {
					if len(x) > 5 && (x[:5] == "heap@" || x[:4] == "str@") {
						continue
					}
					out = append(out, x)
				}
				return out
			}
			fa, fb := filter(va), filter(vb)
			if len(fa) != len(fb) {
				t.Fatalf("seed %d: pts(%s) changed across printing: %v vs %v", seed, k, fa, fb)
			}
			for i := range fa {
				if fa[i] != fb[i] {
					t.Fatalf("seed %d: pts(%s) changed across printing: %v vs %v", seed, k, fa, fb)
				}
			}
		}
	}
}
