package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"polce/internal/core"
)

// TraceRecord is one line of an NDJSON solver trace: a solver event with a
// wall-clock offset and the solver's Work counter at the time, a
// request-scoped span ("kind": "span", see Tracer), or the final
// cumulative-stats record ("kind": "stats") closing the trace.
type TraceRecord struct {
	// Kind is a core.EventKind string (source-edge, sink-edge, var-edge,
	// cycle, sweep), "span" for a Tracer span, or "stats" for the closing
	// record.
	Kind string `json:"kind"`
	// TMicros is the wall-clock offset from trace start, in microseconds.
	// For spans it is the span's start offset.
	TMicros int64 `json:"t_us"`
	// Work is the solver's edge-addition counter at the time of the
	// record; in the closing record it is the final Stats.Work. Spans
	// leave it zero.
	Work int64 `json:"work,omitempty"`

	From      string   `json:"from,omitempty"`
	To        string   `json:"to,omitempty"`
	Witness   string   `json:"witness,omitempty"`
	Vars      []string `json:"vars,omitempty"`
	Collapsed int      `json:"collapsed,omitempty"`

	// Span fields (kind "span"): Trace is the request ID shared by every
	// span of one request, Span the span's own ID, Parent the enclosing
	// span's ID (empty for a root span), Name the span name (http,
	// queue-wait, ingest-drain, cycle-search, ls-pass, ...), DurMicros
	// the span's duration, and Attrs free-form key/value detail.
	Trace     string         `json:"trace,omitempty"`
	Span      string         `json:"span,omitempty"`
	Parent    string         `json:"parent,omitempty"`
	Name      string         `json:"name,omitempty"`
	DurMicros int64          `json:"dur_us,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`

	// Stats holds the full cumulative counters on the closing record.
	Stats *TraceStats `json:"stats,omitempty"`
}

// TraceStats mirrors core.Stats field by field for the closing record, so
// traces can be replayed and checked against the solver's own accounting.
type TraceStats struct {
	VarsCreated    int   `json:"vars_created"`
	VarsEliminated int   `json:"vars_eliminated"`
	Work           int64 `json:"work"`
	Redundant      int64 `json:"redundant"`
	CycleSearches  int64 `json:"cycle_searches"`
	CycleVisits    int64 `json:"cycle_visits"`
	CyclesFound    int64 `json:"cycles_found"`
	LSWork         int64 `json:"ls_work"`
	PeriodicSweeps int64 `json:"periodic_sweeps"`
	SweepVisits    int64 `json:"sweep_visits"`
}

// toTraceStats copies a core.Stats snapshot.
func toTraceStats(st core.Stats) *TraceStats {
	return &TraceStats{
		VarsCreated:    st.VarsCreated,
		VarsEliminated: st.VarsEliminated,
		Work:           st.Work,
		Redundant:      st.Redundant,
		CycleSearches:  st.CycleSearches,
		CycleVisits:    st.CycleVisits,
		CyclesFound:    st.CyclesFound,
		LSWork:         st.LSWork,
		PeriodicSweeps: st.PeriodicSweeps,
		SweepVisits:    st.SweepVisits,
	}
}

// TraceWriter streams solver events as NDJSON, one record per line, each
// stamped with the wall-clock offset from trace start and the solver's
// Work counter. Install Observe as (or inside) core.Options.Observer,
// call WriteStats with the final Stats, then Close.
//
// The writer is safe for concurrent use; the solver itself is
// single-threaded but HTTP handlers may flush concurrently.
type TraceWriter struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	closer io.Closer
	start  time.Time
	events int64
	err    error
}

// NewTraceWriter starts a trace on w.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{bw: bufio.NewWriter(w), start: time.Now()}
}

// CreateTrace creates (truncating) the file at path and starts a trace on
// it; Close closes the file.
func CreateTrace(path string) (*TraceWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	t := NewTraceWriter(f)
	t.closer = f
	return t, nil
}

// write appends one record, retaining the first error.
func (t *TraceWriter) write(rec TraceRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	line, err := json.Marshal(rec)
	if err == nil {
		_, err = t.bw.Write(append(line, '\n'))
	}
	if err != nil {
		t.err = err
	}
}

// exprString renders an expression endpoint, tolerating nil.
func exprString(e core.Expr) string {
	if e == nil {
		return ""
	}
	return e.String()
}

// Observe converts one solver event into a trace record. It has the
// signature of core.Options.Observer, so a TraceWriter can be installed
// directly: opts.Observer = tw.Observe.
func (t *TraceWriter) Observe(ev core.Event) {
	rec := TraceRecord{
		Kind:    ev.Kind.String(),
		TMicros: time.Since(t.start).Microseconds(),
		Work:    ev.Work,
	}
	switch ev.Kind {
	case core.EventCycle:
		rec.Witness = ev.Witness.Name()
		rec.Vars = make([]string, len(ev.Vars))
		for i, v := range ev.Vars {
			rec.Vars[i] = v.Name()
		}
		rec.Collapsed = ev.Collapsed
	case core.EventSweep:
		rec.Collapsed = ev.Collapsed
	default:
		rec.From = exprString(ev.From)
		rec.To = exprString(ev.To)
	}
	t.mu.Lock()
	t.events++
	t.mu.Unlock()
	t.write(rec)
}

// Events returns the number of events written so far (stats records
// excluded).
func (t *TraceWriter) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// WriteStats appends the closing cumulative-stats record; its Work stamp
// is the solver's final Stats.Work.
func (t *TraceWriter) WriteStats(st core.Stats) {
	t.write(TraceRecord{
		Kind:    "stats",
		TMicros: time.Since(t.start).Microseconds(),
		Work:    st.Work,
		Stats:   toTraceStats(st),
	})
}

// Close flushes the trace and closes the underlying file if the writer
// opened it, returning the first error encountered.
func (t *TraceWriter) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.bw.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	if t.closer != nil {
		if err := t.closer.Close(); err != nil && t.err == nil {
			t.err = err
		}
		t.closer = nil
	}
	return t.err
}

// ReadTrace parses an NDJSON trace back into records, for replay and
// verification against the solver's Stats.
func ReadTrace(r io.Reader) ([]TraceRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []TraceRecord
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec TraceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("telemetry: trace line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
