package telemetry

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestLogBuckets(t *testing.T) {
	got := LogBuckets(1, 2, 5)
	want := []float64{1, 2, 4, 8, 16}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("LogBuckets(1,2,5) = %v, want %v", got, want)
	}
}

// TestHistogramBucketBoundaries pins the inclusive-upper-bound ("le")
// semantics: an observation equal to a bound lands in that bound's bucket,
// one just above it lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(LogBuckets(1, 2, 4)) // bounds 1 2 4 8, plus overflow
	obs := []float64{0, 1, 1.5, 2, 3, 4, 8, 8.1, 100}
	for _, v := range obs {
		h.Observe(v)
	}
	// v ≤ 1 → bucket 0; 1 < v ≤ 2 → bucket 1; …; v > 8 → overflow.
	want := []uint64{2, 2, 2, 1, 2}
	if got := h.BucketCounts(); !reflect.DeepEqual(got, want) {
		t.Fatalf("BucketCounts = %v, want %v", got, want)
	}
	if h.Count() != uint64(len(obs)) {
		t.Errorf("Count = %d, want %d", h.Count(), len(obs))
	}
	var sum float64
	for _, v := range obs {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-9 {
		t.Errorf("Sum = %v, want %v", h.Sum(), sum)
	}
	if h.Max() != 100 {
		t.Errorf("Max = %v, want 100", h.Max())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(LogBuckets(1, 2, 8))
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram Quantile(0.5) = %v, want 0", q)
	}
	// 90 observations of 1, 10 of 5: p50 in the le=1 bucket, p99 in le=8.
	for i := 0; i < 90; i++ {
		h.Observe(1)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("Quantile(0.5) = %v, want 1", q)
	}
	if q := h.Quantile(0.99); q != 8 {
		t.Errorf("Quantile(0.99) = %v, want 8 (upper bound of 5's bucket)", q)
	}
	// Overflow observations report the tracked max.
	h2 := NewHistogram(LogBuckets(1, 2, 2))
	h2.Observe(1000)
	if q := h2.Quantile(0.5); q != 1000 {
		t.Errorf("overflow Quantile(0.5) = %v, want Max = 1000", q)
	}
}

// TestConcurrentUpdates exercises the lock-free paths; run under -race it
// is the concurrency regression test for a future parallel solver sharing
// the metrics.
func TestConcurrentUpdates(t *testing.T) {
	const goroutines = 8
	const perG = 10000
	c := &Counter{}
	g := &Gauge{}
	h := NewHistogram(LogBuckets(1, 2, 10))
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(1 + (j % 512)))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != goroutines*perG {
		t.Errorf("Counter = %d, want %d", c.Value(), goroutines*perG)
	}
	if g.Value() != goroutines*perG {
		t.Errorf("Gauge = %v, want %d", g.Value(), goroutines*perG)
	}
	if h.Count() != goroutines*perG {
		t.Errorf("Histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	if h.Max() != 512 {
		t.Errorf("Histogram max = %v, want 512", h.Max())
	}
	var total uint64
	for _, n := range h.BucketCounts() {
		total += n
	}
	if total != h.Count() {
		t.Errorf("bucket counts sum %d != count %d", total, h.Count())
	}
}

// goldenRegistry builds a registry with one metric of every kind and
// fully deterministic values.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("zz_edges_total", "attempted edge additions").Add(42)
	reg.Gauge("aa_ratio", "a plain gauge").Set(0.25)
	reg.GaugeFunc("mm_live", "a computed gauge", func() float64 { return 3 })
	h := reg.Histogram("hh_depth", "search depth", LogBuckets(1, 2, 3))
	for _, v := range []float64{1, 2, 2, 5, 50} {
		h.Observe(v)
	}
	tm := reg.Timers("pp_phase", "phase timers")
	tm.Add(PhaseParse, 250*time.Millisecond)
	tm.Add(PhaseClosure, time.Second)
	tm.Add(PhaseClosure, 500*time.Millisecond)
	return reg
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_ratio a plain gauge
# TYPE aa_ratio gauge
aa_ratio 0.25
# HELP hh_depth search depth
# TYPE hh_depth histogram
hh_depth_bucket{le="1"} 1
hh_depth_bucket{le="2"} 3
hh_depth_bucket{le="4"} 3
hh_depth_bucket{le="+Inf"} 5
hh_depth_sum 60
hh_depth_count 5
# HELP mm_live a computed gauge
# TYPE mm_live gauge
mm_live 3
# HELP pp_phase phase timers
# TYPE pp_phase_seconds counter
pp_phase_seconds{phase="closure"} 1.5
pp_phase_seconds{phase="parse"} 0.25
# TYPE pp_phase_count counter
pp_phase_count{phase="closure"} 2
pp_phase_count{phase="parse"} 1
# HELP zz_edges_total attempted edge additions
# TYPE zz_edges_total counter
zz_edges_total 42
`
	if got := b.String(); got != want {
		t.Errorf("Prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := goldenRegistry().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	// Round-trip through a map: json.Marshal sorts map keys, so the text
	// is deterministic, but asserting on structure is less brittle.
	var got map[string]map[string]any
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("exposition is not valid JSON: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("got %d metrics, want 5: %v", len(got), b.String())
	}
	if k := got["zz_edges_total"]["kind"]; k != "counter" {
		t.Errorf("zz_edges_total kind = %v", k)
	}
	if v := got["zz_edges_total"]["value"]; v != float64(42) {
		t.Errorf("zz_edges_total value = %v", v)
	}
	if v := got["aa_ratio"]["value"]; v != 0.25 {
		t.Errorf("aa_ratio value = %v", v)
	}
	if v := got["mm_live"]["value"]; v != float64(3) {
		t.Errorf("mm_live value = %v", v)
	}
	hist := got["hh_depth"]
	if hist["count"] != float64(5) || hist["sum"] != float64(60) || hist["max"] != float64(50) {
		t.Errorf("hh_depth summary = %v", hist)
	}
	if n := len(hist["buckets"].([]any)); n != 4 {
		t.Errorf("hh_depth has %d buckets, want 4 (3 bounds + overflow)", n)
	}
	phases := got["pp_phase"]["phases"].(map[string]any)
	closure := phases["closure"].(map[string]any)
	if closure["seconds"] != 1.5 || closure["count"] != float64(2) {
		t.Errorf("closure phase = %v", closure)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	reg := NewRegistry()
	reg.Counter("x", "")
	reg.Gauge("x", "")
}

func TestSpanStop(t *testing.T) {
	tm := NewTimers()
	sp := tm.Start("p")
	d1 := sp.Stop()
	if d1 < 0 {
		t.Fatalf("negative span duration %v", d1)
	}
	if d2 := sp.Stop(); d2 != 0 {
		t.Fatalf("second Stop returned %v, want 0", d2)
	}
	total, count := tm.Get("p")
	if count != 1 || total != d1 {
		t.Fatalf("Get = (%v, %d), want (%v, 1)", total, count, d1)
	}
}
