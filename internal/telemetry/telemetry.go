// Package telemetry is a zero-dependency, stdlib-only observability layer
// for the solver: atomic Counter/Gauge/Histogram metrics collected in a
// Registry with Prometheus-text and JSON exposition, a Span/Phase timer
// API for the solver's pipeline phases, an NDJSON trace writer streaming
// solver events with wall-clock and Work stamps, and an HTTP mux serving
// /metrics, /debug/vars (expvar) and /debug/pprof.
//
// The paper's argument is quantitative — Work counts, redundant edge
// additions, nodes visited per online cycle search (Theorem 5.2) — and
// most of those quantities are distributions, not means. Counters and
// histograms here are lock-free (sync/atomic) so a future parallel solver
// can share them; the Registry serialises only at exposition time.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous float64 metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d to the current value.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// GaugeFunc is a gauge whose value is computed at exposition time.
type GaugeFunc func() float64

// Histogram counts observations into fixed buckets with inclusive upper
// bounds (Prometheus "le" semantics) plus an overflow bucket, and tracks
// the observation count, sum and maximum. All methods are safe for
// concurrent use and lock-free. Observations must be non-negative (every
// solver quantity — search depth, collapse size, worklist length — is).
type Histogram struct {
	bounds  []float64       // inclusive upper bounds, ascending
	counts  []atomic.Uint64 // len(bounds)+1; last is the overflow bucket
	total   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
	maxBits atomic.Uint64 // float64 bits of the maximum (non-negative)
}

// NewHistogram builds a histogram over the given ascending upper bounds.
// Most callers want LogBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("telemetry: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("telemetry: histogram bounds must be ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// LogBuckets returns n log-spaced upper bounds start, start·factor,
// start·factor², …  (factor > 1). LogBuckets(1, 2, 16) covers 1..32768 in
// powers of two, a good default for search depths and collapse sizes.
func LogBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n <= 0 {
		panic("telemetry: LogBuckets wants start > 0, factor > 1, n > 0")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n evenly spaced upper bounds start, start+width,
// start+2·width, …  LinearBuckets(0, 0.1, 11) covers a [0, 1] ratio in
// tenths. Bounds must ascend, so width must be positive.
func LinearBuckets(start, width float64, n int) []float64 {
	if width <= 0 || n <= 0 {
		panic("telemetry: LinearBuckets wants width > 0, n > 0")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v, or overflow
	h.counts[i].Add(1)
	h.total.Add(1)
	for { // sum += v
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for { // max = max(max, v)
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) {
			break
		}
		if h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Max returns the largest observation (0 before any observation).
func (h *Histogram) Max() float64 { return math.Float64frombits(h.maxBits.Load()) }

// Bounds returns the bucket upper bounds (not including the overflow
// bucket). The returned slice must not be modified.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts; the last entry
// is the overflow bucket.
func (h *Histogram) BucketCounts() []uint64 {
	out := make([]uint64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the bucket counts,
// returning the upper bound of the bucket containing the rank (Max for the
// overflow bucket, 0 with no observations). The estimate is conservative:
// it never under-reports by more than one bucket's width.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i == len(h.bounds) {
				return h.Max()
			}
			return h.bounds[i]
		}
	}
	return h.Max()
}

// entry is one registered metric.
type entry struct {
	name, help string
	metric     any // *Counter | *Gauge | GaugeFunc | *Histogram | *Timers
}

// Registry holds named metrics and renders them as Prometheus text or
// JSON. Registration is typically done once at start-up; exposition may
// run concurrently with metric updates.
type Registry struct {
	mu      sync.Mutex
	entries map[string]entry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{entries: map[string]entry{}}
}

func (r *Registry) register(name, help string, m any) {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[name]; dup {
		panic("telemetry: duplicate metric " + name)
	}
	r.entries[name] = entry{name, help, m}
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, c)
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, g)
	return g
}

// GaugeFunc registers a gauge computed by fn at exposition time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, GaugeFunc(fn))
}

// Histogram registers and returns a new histogram over bounds.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := NewHistogram(bounds)
	r.register(name, help, h)
	return h
}

// Timers registers and returns a new phase-timer set; it is exposed as
// <name>_seconds{phase="…"} and <name>_count{phase="…"}.
func (r *Registry) Timers(name, help string) *Timers {
	t := NewTimers()
	r.register(name, help, t)
	return t
}

// sorted returns the entries in name order.
func (r *Registry) sorted() []entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// fmtFloat renders a float the way Prometheus expects.
func fmtFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format, in name order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, e := range r.sorted() {
		if e.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", e.name, e.help)
		}
		switch m := e.metric.(type) {
		case *Counter:
			fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", e.name, e.name, m.Value())
		case *Gauge:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", e.name, e.name, fmtFloat(m.Value()))
		case GaugeFunc:
			fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", e.name, e.name, fmtFloat(m()))
		case *Histogram:
			fmt.Fprintf(&b, "# TYPE %s histogram\n", e.name)
			counts := m.BucketCounts()
			var cum uint64
			for i, bound := range m.Bounds() {
				cum += counts[i]
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", e.name, fmtFloat(bound), cum)
			}
			cum += counts[len(counts)-1]
			fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", e.name, cum)
			fmt.Fprintf(&b, "%s_sum %s\n", e.name, fmtFloat(m.Sum()))
			fmt.Fprintf(&b, "%s_count %d\n", e.name, m.Count())
		case *Timers:
			fmt.Fprintf(&b, "# TYPE %s_seconds counter\n", e.name)
			snap := m.Snapshot()
			for _, p := range snap {
				fmt.Fprintf(&b, "%s_seconds{phase=%q} %s\n", e.name, p.Phase, fmtFloat(p.Total.Seconds()))
			}
			fmt.Fprintf(&b, "# TYPE %s_count counter\n", e.name)
			for _, p := range snap {
				fmt.Fprintf(&b, "%s_count{phase=%q} %d\n", e.name, p.Phase, p.Count)
			}
		default:
			fmt.Fprintf(&b, "# %s: unknown metric kind %T\n", e.name, e.metric)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Snapshot returns a JSON-marshalable view of every metric, keyed by name.
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	for _, e := range r.sorted() {
		switch m := e.metric.(type) {
		case *Counter:
			out[e.name] = map[string]any{"kind": "counter", "value": m.Value()}
		case *Gauge:
			out[e.name] = map[string]any{"kind": "gauge", "value": m.Value()}
		case GaugeFunc:
			out[e.name] = map[string]any{"kind": "gauge", "value": m()}
		case *Histogram:
			counts := m.BucketCounts()
			buckets := make([]map[string]any, 0, len(counts))
			for i, bound := range m.Bounds() {
				buckets = append(buckets, map[string]any{"le": bound, "n": counts[i]})
			}
			buckets = append(buckets, map[string]any{"le": "+Inf", "n": counts[len(counts)-1]})
			out[e.name] = map[string]any{
				"kind":    "histogram",
				"count":   m.Count(),
				"sum":     m.Sum(),
				"max":     m.Max(),
				"buckets": buckets,
			}
		case *Timers:
			phases := map[string]any{}
			for _, p := range m.Snapshot() {
				phases[p.Phase] = map[string]any{"seconds": p.Total.Seconds(), "count": p.Count}
			}
			out[e.name] = map[string]any{"kind": "timer", "phases": phases}
		}
	}
	return out
}

// WriteJSON renders the Snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return writeJSON(w, r.Snapshot())
}

// Handler serves the registry: Prometheus text by default, JSON with
// ?format=json.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
}
