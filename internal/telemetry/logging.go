package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLogLevel maps a -log-level flag value to a slog.Level.
func ParseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (debug, info, warn, error)", s)
}

// NewLogger returns a JSON slog logger writing to w at the given level —
// the shared logger shape of the polce binaries, so their diagnostics
// aggregate uniformly and correlate with request IDs where one exists.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything — the default for
// components whose caller configured no logging.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}
