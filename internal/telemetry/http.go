package telemetry

import (
	"encoding/json"
	"expvar"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
)

// writeJSON marshals v with indentation (shared by WriteJSON and the mux).
func writeJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// NewMux returns an http.ServeMux serving the live telemetry surface:
//
//	/metrics        Prometheus text (JSON with ?format=json)
//	/metrics.json   JSON exposition
//	/debug/vars     expvar (stdlib memstats + anything published)
//	/debug/pprof/   the full net/http/pprof suite
//
// Everything is wired explicitly so the registry can be served on a
// dedicated mux instead of http.DefaultServeMux.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// PublishExpvar publishes the registry's JSON snapshot as one expvar
// variable, so /debug/vars carries the solver metrics alongside the
// stdlib's memstats. Publishing the same name twice panics (expvar
// semantics), so call it once per process.
func PublishExpvar(name string, reg *Registry) {
	expvar.Publish(name, expvar.Func(func() any { return reg.Snapshot() }))
}

// Serve binds addr, then serves NewMux(reg) on it in a background
// goroutine. The bind happens synchronously so configuration errors (port
// in use, bad address) surface immediately; Serve errors after that are
// reported through errs if non-nil. The returned server's Addr is the
// concretely bound address (useful with ":0"); shut it down via Close or
// Shutdown.
func Serve(addr string, reg *Registry, errs func(error)) (*http.Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: NewMux(reg)}
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed && errs != nil {
			errs(err)
		}
	}()
	return srv, nil
}
