package telemetry

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTracerParentChildNesting opens a root span, a child via StartSpan,
// and an Emit'd grandchild, then rebuilds the tree from the NDJSON and
// checks trace sharing and parent links.
func TestTracerParentChildNesting(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tr := NewTracer(tw)

	ctx := WithTraceID(context.Background(), "req-1")
	ctx, root := tr.StartSpan(ctx, "http")
	childCtx, child := tr.StartSpan(ctx, "ingest-drain")
	tr.Emit(childCtx, "cycle-search", time.Now(), 5*time.Millisecond, map[string]any{"work": 7})
	child.SetAttr("applied", 3)
	child.End()
	root.SetAttr("status", 200)
	root.End()
	if err := tw.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	spans := Spans(recs)
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3:\n%+v", len(spans), spans)
	}
	byName := map[string]TraceRecord{}
	for _, sp := range spans {
		if sp.Trace != "req-1" {
			t.Errorf("span %q has trace %q, want req-1", sp.Name, sp.Trace)
		}
		byName[sp.Name] = sp
	}
	http, drain, search := byName["http"], byName["ingest-drain"], byName["cycle-search"]
	if http.Parent != "" {
		t.Errorf("root span has parent %q, want none", http.Parent)
	}
	if drain.Parent != http.Span {
		t.Errorf("ingest-drain parent = %q, want http's span %q", drain.Parent, http.Span)
	}
	if search.Parent != drain.Span {
		t.Errorf("cycle-search parent = %q, want ingest-drain's span %q", search.Parent, drain.Span)
	}
	if search.DurMicros != 5000 {
		t.Errorf("cycle-search dur_us = %d, want 5000", search.DurMicros)
	}
	if got := byName["ingest-drain"].Attrs["applied"]; got != float64(3) {
		t.Errorf("ingest-drain attrs[applied] = %v, want 3", got)
	}
	if tree := SpanTree(recs); len(tree["req-1"]) != 3 {
		t.Errorf("SpanTree[req-1] has %d spans, want 3", len(tree["req-1"]))
	}
}

// TestTracerGeneratesTraceID checks that a root span under a bare context
// mints a trace ID and propagates it to children.
func TestTracerGeneratesTraceID(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(NewTraceWriter(&buf))
	ctx, root := tr.StartSpan(context.Background(), "http")
	if root.TraceID() == "" {
		t.Fatal("root span has no trace ID")
	}
	if got := TraceIDFrom(ctx); got != root.TraceID() {
		t.Errorf("context trace ID = %q, want %q", got, root.TraceID())
	}
	_, child := tr.StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Errorf("child trace = %q, want %q", child.TraceID(), root.TraceID())
	}
}

// TestNilTracerNoOps: every Tracer and TraceSpan method must be callable
// through nil receivers, so disabled tracing needs no call-site guards.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	ctx, sp := tr.StartSpan(context.Background(), "http")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	if ctx == nil {
		t.Fatal("nil tracer dropped the context")
	}
	sp.SetAttr("k", "v")
	sp.End()
	if id := sp.ID(); id != "" {
		t.Errorf("nil span ID = %q", id)
	}
	if tr.Emit(ctx, "x", time.Now(), time.Second, nil) != "" {
		t.Error("nil tracer Emit returned an ID")
	}
	if tr.Writer() != nil {
		t.Error("nil tracer has a writer")
	}
}

// TestSpanEndIdempotent: a span ended twice writes one record.
func TestSpanEndIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tr := NewTracer(tw)
	_, sp := tr.StartSpan(context.Background(), "once")
	sp.End()
	sp.End()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Fatalf("got %d records, want 1:\n%s", n, buf.String())
	}
}

// TestNewTraceIDUnique spot-checks ID shape and uniqueness.
func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace ID %q has length %d, want 16", id, len(id))
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// TestTracerConcurrentSpans hammers one tracer from many goroutines and
// verifies every span line survives intact (the interleaved-line
// integrity guarantee of the shared TraceWriter).
func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tr := NewTracer(tw)
	const goroutines, spans = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spans; i++ {
				ctx, root := tr.StartSpan(context.Background(), "http")
				tr.Emit(ctx, "queue-wait", time.Now(), time.Microsecond, nil)
				root.End()
			}
		}()
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace on concurrent output: %v", err)
	}
	if got, want := len(Spans(recs)), goroutines*spans*2; got != want {
		t.Fatalf("got %d spans, want %d", got, want)
	}
	ids := map[string]bool{}
	for _, sp := range Spans(recs) {
		if ids[sp.Span] {
			t.Fatalf("duplicate span ID %q", sp.Span)
		}
		ids[sp.Span] = true
	}
}
