package telemetry

import (
	"sort"
	"sync"
	"time"
)

// Canonical phase names for the solver pipeline. Clients are free to use
// their own, but sticking to these keeps dashboards and the bench CSV
// comparable across runs.
const (
	PhaseParse         = "parse"          // front-end lexing/parsing
	PhaseConstraintGen = "constraint-gen" // constraint generation minus closure
	PhaseClosure       = "closure"        // worklist drains inside AddConstraint
	PhaseLeastSolution = "least-solution" // IF least-solution pass
	PhaseOraclePass1   = "oracle-pass1"   // reference run + oracle construction
	PhaseOraclePass2   = "oracle-pass2"   // the oracle-policy run itself
	PhaseRetract       = "retract"        // RetractBatches rollback + replay
)

// Timers accumulates wall-clock time per named phase. Unlike the metric
// types it takes a mutex: phase boundaries are rare (a handful per run),
// never on the solver's hot path.
type Timers struct {
	mu     sync.Mutex
	phases map[string]*phaseAgg
}

type phaseAgg struct {
	total time.Duration
	count int
}

// NewTimers returns an empty timer set. Registry.Timers both creates and
// registers one.
func NewTimers() *Timers {
	return &Timers{phases: map[string]*phaseAgg{}}
}

// Span is one in-flight timed region; obtain with Timers.Start, finish
// with Stop.
type Span struct {
	t     *Timers
	phase string
	start time.Time
	done  bool
}

// Start begins timing one span of the named phase.
func (t *Timers) Start(phase string) *Span {
	return &Span{t: t, phase: phase, start: time.Now()}
}

// Stop ends the span, accumulates its duration under the phase, and
// returns it. Stopping twice is a no-op.
func (s *Span) Stop() time.Duration {
	if s.done {
		return 0
	}
	s.done = true
	d := time.Since(s.start)
	s.t.Add(s.phase, d)
	return d
}

// Add accumulates an externally measured duration under phase (used when a
// phase is derived, e.g. constraint-gen = analysis total − closure).
func (t *Timers) Add(phase string, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.phases[phase]
	if a == nil {
		a = &phaseAgg{}
		t.phases[phase] = a
	}
	a.total += d
	a.count++
}

// Get returns the accumulated duration and span count of a phase.
func (t *Timers) Get(phase string) (time.Duration, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if a := t.phases[phase]; a != nil {
		return a.total, a.count
	}
	return 0, 0
}

// PhaseTiming is one phase's accumulated totals.
type PhaseTiming struct {
	Phase string
	Total time.Duration
	Count int
}

// Snapshot returns every phase's totals, sorted by phase name.
func (t *Timers) Snapshot() []PhaseTiming {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseTiming, 0, len(t.phases))
	for name, a := range t.phases {
		out = append(out, PhaseTiming{Phase: name, Total: a.total, Count: a.count})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Phase < out[j].Phase })
	return out
}
