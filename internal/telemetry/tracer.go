package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync/atomic"
	"time"
)

// Tracer emits request-scoped parent/child spans into a TraceWriter's
// NDJSON stream, alongside (or instead of) the solver-event records. A
// span line has "kind": "span" and carries a trace ID shared by every
// span of one request, its own span ID, its parent's span ID, a name, the
// start offset from trace start (t_us) and a duration (dur_us) — enough
// to rebuild the tree offline with jq or ReadTrace.
//
// Trace and span identity travel through context.Context: the serve edge
// attaches a request ID with WithTraceID, StartSpan reads the enclosing
// span from the context and returns a child context carrying the new one,
// and Emit records an externally measured child span. A nil *Tracer is a
// valid no-op everywhere, so call sites need no conditionals on the
// tracing-disabled path.
type Tracer struct {
	tw  *TraceWriter
	ids atomic.Uint64
}

// NewTracer returns a Tracer writing span records through tw.
func NewTracer(tw *TraceWriter) *Tracer {
	return &Tracer{tw: tw}
}

// Writer returns the underlying TraceWriter (nil on a nil Tracer).
func (t *Tracer) Writer() *TraceWriter {
	if t == nil {
		return nil
	}
	return t.tw
}

// nextSpanID returns a tracer-unique span ID.
func (t *Tracer) nextSpanID() string {
	return fmt.Sprintf("%06x", t.ids.Add(1))
}

// NewTraceID returns a fresh 16-hex-character request ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// timestamp so tracing degrades rather than panics.
		return fmt.Sprintf("%016x", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// ctxKey keys the tracing state in a context.
type ctxKey int

const (
	traceIDKey ctxKey = iota
	spanKey
)

// WithTraceID returns a context carrying the request's trace ID; every
// span started under it shares the ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey, id)
}

// TraceIDFrom returns the trace ID carried by ctx, or "".
func TraceIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(traceIDKey).(string)
	return id
}

// SpanFrom returns the innermost span carried by ctx, or nil.
func SpanFrom(ctx context.Context) *TraceSpan {
	sp, _ := ctx.Value(spanKey).(*TraceSpan)
	return sp
}

// TraceSpan is one in-flight request-scoped span; finish it with End.
// A nil *TraceSpan is a valid no-op.
type TraceSpan struct {
	tracer *Tracer
	trace  string
	id     string
	parent string
	name   string
	start  time.Time
	attrs  map[string]any
	done   atomic.Bool
}

// StartSpan opens a span named name under ctx's trace and innermost span,
// returning a child context carrying the new span. If ctx has no trace ID
// yet, one is generated. On a nil Tracer the context is returned unchanged
// with a nil span.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *TraceSpan) {
	if t == nil {
		return ctx, nil
	}
	trace := TraceIDFrom(ctx)
	if trace == "" {
		trace = NewTraceID()
		ctx = WithTraceID(ctx, trace)
	}
	sp := &TraceSpan{
		tracer: t,
		trace:  trace,
		id:     t.nextSpanID(),
		name:   name,
		start:  time.Now(),
	}
	if parent := SpanFrom(ctx); parent != nil {
		sp.parent = parent.id
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// Emit records an externally measured span of the given name and extent
// as a child of ctx's innermost span, returning its span ID ("" on a nil
// Tracer). It is the fit for phases whose boundaries are observed after
// the fact — a queue wait, a phase-timer delta — where there is no code
// region to wrap with StartSpan/End.
func (t *Tracer) Emit(ctx context.Context, name string, start time.Time, d time.Duration, attrs map[string]any) string {
	if t == nil {
		return ""
	}
	id := t.nextSpanID()
	rec := TraceRecord{
		Kind:      "span",
		TMicros:   start.Sub(t.tw.start).Microseconds(),
		Trace:     TraceIDFrom(ctx),
		Span:      id,
		Name:      name,
		DurMicros: d.Microseconds(),
		Attrs:     attrs,
	}
	if parent := SpanFrom(ctx); parent != nil {
		rec.Parent = parent.id
	}
	t.tw.write(rec)
	return id
}

// ID returns the span's ID ("" on a nil span).
func (s *TraceSpan) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// TraceID returns the span's trace (request) ID ("" on a nil span).
func (s *TraceSpan) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SetAttr attaches one key/value to the span; call before End. Spans are
// request-scoped and owned by one goroutine at a time, so SetAttr is not
// synchronised.
func (s *TraceSpan) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = map[string]any{}
	}
	s.attrs[key] = value
}

// End writes the span record with the duration since StartSpan and
// returns the duration. Ending twice writes once.
func (s *TraceSpan) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if !s.done.CompareAndSwap(false, true) {
		return d
	}
	s.tracer.tw.write(TraceRecord{
		Kind:      "span",
		TMicros:   s.start.Sub(s.tracer.tw.start).Microseconds(),
		Trace:     s.trace,
		Span:      s.id,
		Parent:    s.parent,
		Name:      s.name,
		DurMicros: d.Microseconds(),
		Attrs:     s.attrs,
	})
	return d
}

// Spans filters a parsed trace down to its span records.
func Spans(recs []TraceRecord) []TraceRecord {
	var out []TraceRecord
	for _, r := range recs {
		if r.Kind == "span" {
			out = append(out, r)
		}
	}
	return out
}

// SpanTree groups span records by trace ID.
func SpanTree(recs []TraceRecord) map[string][]TraceRecord {
	byTrace := map[string][]TraceRecord{}
	for _, r := range Spans(recs) {
		byTrace[r.Trace] = append(byTrace[r.Trace], r)
	}
	return byTrace
}
