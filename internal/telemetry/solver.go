package telemetry

import (
	"time"

	"polce/internal/core"
)

// SolverMetrics is the standard core.MetricsSink implementation: it turns
// the solver's per-operation callbacks into distribution-level metrics.
// Where core.Stats collapses the cycle-search cost to a mean
// (VisitsPerSearch), SearchDepth records the empirical distribution behind
// Theorem 5.2; CollapseSize does the same for the sizes of collapsed
// cycles and Worklist for the pending-constraint backlog.
type SolverMetrics struct {
	// EdgeAttempts counts every attempted edge addition (the paper's
	// Work); RedundantEdges the attempts that found the edge present.
	EdgeAttempts   *Counter
	RedundantEdges *Counter
	// SearchDepth is the per-search nodes-visited distribution.
	SearchDepth *Histogram
	// CollapseSize is the distribution of variables merged per collapse.
	CollapseSize *Histogram
	// Worklist is the sampled pending-constraint worklist length.
	Worklist *Histogram
	// Phases accumulates per-phase wall-clock; the solver feeds the
	// closure and least-solution phases, clients add parse and
	// constraint-gen.
	Phases *Timers
	// LSLevels is the topological level count of the predecessor DAG in
	// the most recent least-solution pass; LSCone is the distribution of
	// dirty-cone sizes (variables recomputed per pass).
	LSLevels *Gauge
	LSCone   *Histogram
	// LSUnionHits and LSUnionMisses count the engine's memoized-union
	// lookups; the hit-ratio gauge is derived at exposition time.
	LSUnionHits   *Counter
	LSUnionMisses *Counter
	// Retracts counts RetractBatches calls; RetractCone is the
	// distribution of dirty-cone sizes rolled back per retraction, and
	// RetractConeFrac the cone as a fraction of the canonical variables —
	// the "re-drain only what retraction invalidates" measure.
	Retracts        *Counter
	RetractCone     *Histogram
	RetractConeFrac *Histogram
	RetractReplayed *Counter
}

var _ core.MetricsSink = (*SolverMetrics)(nil)

// NewSolverMetrics registers the standard solver metrics in reg and
// returns the sink to install as core.Options.Metrics. The redundant-edge
// ratio is exposed as a gauge computed at exposition time.
func NewSolverMetrics(reg *Registry) *SolverMetrics {
	m := &SolverMetrics{
		EdgeAttempts:    reg.Counter("polce_edge_attempts_total", "attempted edge additions (the paper's Work), redundant included"),
		RedundantEdges:  reg.Counter("polce_edge_redundant_total", "edge additions that found the edge already present"),
		SearchDepth:     reg.Histogram("polce_cycle_search_depth", "nodes visited per online cycle search (Theorem 5.2's R_X)", LogBuckets(1, 2, 16)),
		CollapseSize:    reg.Histogram("polce_collapse_size", "variables merged away per cycle collapse or sweep", LogBuckets(1, 2, 16)),
		Worklist:        reg.Histogram("polce_worklist_len", "pending-constraint worklist length, sampled every 64 steps", LogBuckets(1, 4, 12)),
		Phases:          reg.Timers("polce_phase", "cumulative wall-clock per solver phase"),
		LSLevels:        reg.Gauge("polce_ls_levels", "topological levels of the predecessor DAG in the last least-solution pass"),
		LSCone:          reg.Histogram("polce_ls_cone_vars", "variables recomputed per least-solution pass (dirty cone size)", LogBuckets(1, 4, 12)),
		LSUnionHits:     reg.Counter("polce_ls_union_hits_total", "least-solution memoized-union lookups answered from the memo"),
		LSUnionMisses:   reg.Counter("polce_ls_union_misses_total", "least-solution memoized-union lookups that computed a union"),
		Retracts:        reg.Counter("polce_retracts_total", "RetractBatches calls"),
		RetractCone:     reg.Histogram("polce_retract_cone_vars", "variables rolled back per retraction (dirty cone size)", LogBuckets(1, 4, 12)),
		RetractConeFrac: reg.Histogram("polce_retract_cone_frac", "retraction dirty cone as a fraction of canonical variables", LinearBuckets(0, 0.1, 11)),
		RetractReplayed: reg.Counter("polce_retract_replayed_total", "surviving constraints replayed during retraction rebuilds"),
	}
	reg.GaugeFunc("polce_redundant_edge_ratio", "fraction of attempted edge additions that were redundant",
		func() float64 {
			w := m.EdgeAttempts.Value()
			if w == 0 {
				return 0
			}
			return float64(m.RedundantEdges.Value()) / float64(w)
		})
	reg.GaugeFunc("polce_ls_union_hit_ratio", "fraction of least-solution union lookups answered from the memo",
		func() float64 {
			h, ms := m.LSUnionHits.Value(), m.LSUnionMisses.Value()
			if h+ms == 0 {
				return 0
			}
			return float64(h) / float64(h+ms)
		})
	return m
}

// EdgeAttempt implements core.MetricsSink.
func (m *SolverMetrics) EdgeAttempt(redundant bool) {
	m.EdgeAttempts.Inc()
	if redundant {
		m.RedundantEdges.Inc()
	}
}

// CycleSearch implements core.MetricsSink.
func (m *SolverMetrics) CycleSearch(visits int) {
	m.SearchDepth.Observe(float64(visits))
}

// Collapse implements core.MetricsSink.
func (m *SolverMetrics) Collapse(merged int) {
	m.CollapseSize.Observe(float64(merged))
}

// WorklistLen implements core.MetricsSink.
func (m *SolverMetrics) WorklistLen(n int) {
	m.Worklist.Observe(float64(n))
}

// ClosureDone implements core.MetricsSink.
func (m *SolverMetrics) ClosureDone(d time.Duration) {
	m.Phases.Add(PhaseClosure, d)
}

// LeastSolutionDone implements core.MetricsSink.
func (m *SolverMetrics) LeastSolutionDone(p core.LSPass) {
	m.Phases.Add(PhaseLeastSolution, p.Duration)
	m.LSLevels.Set(float64(p.Levels))
	m.LSCone.Observe(float64(p.ConeVars))
	m.LSUnionHits.Add(p.UnionHits)
	m.LSUnionMisses.Add(p.UnionMisses)
}

// RetractDone implements core.MetricsSink.
func (m *SolverMetrics) RetractDone(p core.RetractReport) {
	m.Retracts.Inc()
	m.RetractCone.Observe(float64(p.DirtyVars))
	if p.TotalVars > 0 {
		m.RetractConeFrac.Observe(float64(p.DirtyVars) / float64(p.TotalVars))
	}
	m.RetractReplayed.Add(int64(p.ReplayedConstraints))
	m.Phases.Add(PhaseRetract, p.Duration)
}

// PublishStats registers the final core.Stats counters as gauges named
// polce_stats_*. Call it after solving completes: a System is not safe
// for concurrent use, so live scrapes read the lock-free SolverMetrics
// and the cumulative Stats snapshot is published once at the end.
func PublishStats(reg *Registry, st core.Stats) {
	pub := func(name, help string, v float64) {
		reg.Gauge("polce_stats_"+name, help).Set(v)
	}
	pub("vars_created", "variables allocated", float64(st.VarsCreated))
	pub("vars_eliminated", "variables merged away by cycle elimination", float64(st.VarsEliminated))
	pub("work", "total attempted edge additions", float64(st.Work))
	pub("redundant", "attempted edge additions that were redundant", float64(st.Redundant))
	pub("cycle_searches", "online closing-chain searches", float64(st.CycleSearches))
	pub("cycle_visits", "nodes visited across all searches", float64(st.CycleVisits))
	pub("cycles_found", "searches that found and collapsed a cycle", float64(st.CyclesFound))
	pub("ls_work", "terms materialised by the least-solution engine", float64(st.LSWork))
	pub("ls_passes", "least-solution engine passes run", float64(st.LSPasses))
	pub("ls_cone_vars", "variables recomputed across all least-solution passes", float64(st.LSConeVars))
	pub("ls_levels", "predecessor-DAG levels in the most recent least-solution pass", float64(st.LSLevels))
	pub("ls_union_hit_rate", "fraction of least-solution union lookups answered from the memo", st.LSUnionHitRate())
	pub("periodic_sweeps", "offline elimination sweeps", float64(st.PeriodicSweeps))
	pub("sweep_visits", "variables examined by periodic sweeps", float64(st.SweepVisits))
	pub("retracts", "RetractBatches calls", float64(st.Retractions))
	pub("retract_cone_vars", "variables rolled back across all retractions", float64(st.RetractConeVars))
	pub("retract_replayed", "surviving constraints replayed during retraction rebuilds", float64(st.RetractReplayed))
}
