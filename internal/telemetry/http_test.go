package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMux checks every route of the live telemetry surface.
func TestMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("polce_edge_attempts_total", "help").Add(7)
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "polce_edge_attempts_total 7") {
		t.Errorf("/metrics: code %d body %q", code, body)
	}
	if code, body := get("/metrics?format=json"); code != 200 || !strings.Contains(body, `"counter"`) {
		t.Errorf("/metrics?format=json: code %d body %q", code, body)
	}
	if code, body := get("/metrics.json"); code != 200 || !strings.Contains(body, `"value": 7`) {
		t.Errorf("/metrics.json: code %d body %q", code, body)
	}
	if code, body := get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: code %d body %.80q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d body %.80q", code, body)
	}
	if code, _ := get("/debug/pprof/cmdline"); code != 200 {
		t.Errorf("/debug/pprof/cmdline: code %d", code)
	}
}

// TestServe binds an ephemeral port and scrapes it, the CLI -http path in
// miniature.
func TestServe(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("g", "").Set(1)
	srv, err := Serve("127.0.0.1:0", reg, func(err error) { t.Errorf("serve: %v", err) })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "g 1") {
		t.Errorf("scrape: code %d body %q", resp.StatusCode, body)
	}
	// The bound port must be concrete, not the requested ":0".
	if strings.HasSuffix(srv.Addr, ":0") {
		t.Errorf("Serve did not report the bound address: %s", srv.Addr)
	}
}
