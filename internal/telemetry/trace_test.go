package telemetry

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"polce/internal/core"
)

// runTracedWorkload solves a small cyclic system with a TraceWriter (and
// SolverMetrics) attached and returns the trace records plus final stats.
func runTracedWorkload(t *testing.T, tw *TraceWriter, sink core.MetricsSink) core.Stats {
	t.Helper()
	opt := core.Options{Form: core.IF, Cycles: core.CycleOnline, Seed: 5, Observer: tw.Observe}
	if sink != nil {
		opt.Metrics = sink
	}
	s := core.NewSystem(opt)
	atom := core.NewTerm(core.NewConstructor("a"))
	vars := make([]*core.Var, 16)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	s.AddConstraint(atom, vars[0])
	for i := range vars {
		s.AddConstraint(vars[i], vars[(i+1)%len(vars)])
	}
	for i := 0; i < len(vars); i += 3 {
		s.AddConstraint(vars[(i+5)%len(vars)], vars[i])
	}
	st := s.Stats()
	tw.WriteStats(st)
	return st
}

// TestTraceRoundTrip writes a trace, parses it back, and replays it
// against the solver's own accounting: the closing record must carry the
// final Stats counters, event Work stamps must be monotone and bounded by
// the final Work, and the cycle records must match CyclesFound.
func TestTraceRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	st := runTracedWorkload(t, tw, nil)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("trace has %d records, want events + closing stats", len(recs))
	}

	last := recs[len(recs)-1]
	if last.Kind != "stats" {
		t.Fatalf("last record kind = %q, want stats", last.Kind)
	}
	if last.Work != st.Work {
		t.Errorf("final Work stamp = %d, Stats.Work = %d", last.Work, st.Work)
	}
	if last.Stats == nil {
		t.Fatal("closing record has no stats payload")
	}
	if last.Stats.Work != st.Work || last.Stats.Redundant != st.Redundant ||
		last.Stats.CycleSearches != st.CycleSearches || last.Stats.CycleVisits != st.CycleVisits ||
		last.Stats.CyclesFound != st.CyclesFound || last.Stats.VarsEliminated != st.VarsEliminated {
		t.Errorf("replayed stats %+v do not match Stats %+v", *last.Stats, st)
	}

	events := recs[:len(recs)-1]
	if int64(len(events)) != tw.Events() {
		t.Errorf("parsed %d events, writer reports %d", len(events), tw.Events())
	}
	var cycles int64
	var eliminated int
	prevWork := int64(0)
	for i, r := range events {
		if r.Work < prevWork {
			t.Errorf("event %d: Work went backwards (%d after %d)", i, r.Work, prevWork)
		}
		prevWork = r.Work
		if r.Work > st.Work {
			t.Errorf("event %d: Work stamp %d exceeds final %d", i, r.Work, st.Work)
		}
		if r.TMicros < 0 {
			t.Errorf("event %d: negative timestamp", i)
		}
		if r.Kind == "cycle" {
			cycles++
			eliminated += r.Collapsed
			if r.Witness == "" || len(r.Vars) != r.Collapsed {
				t.Errorf("event %d: malformed cycle record %+v", i, r)
			}
		}
	}
	if cycles != st.CyclesFound {
		t.Errorf("trace has %d cycle records, Stats.CyclesFound = %d", cycles, st.CyclesFound)
	}
	if eliminated != st.VarsEliminated {
		t.Errorf("trace eliminates %d variables, Stats.VarsEliminated = %d", eliminated, st.VarsEliminated)
	}
}

// TestCreateTrace exercises the file-backed path end to end.
func TestCreateTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.ndjson")
	tw, err := CreateTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	st := runTracedWorkload(t, tw, nil)
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if last := recs[len(recs)-1]; last.Kind != "stats" || last.Work != st.Work {
		t.Errorf("closing record = %+v, want stats with work=%d", last, st.Work)
	}
}

// TestTraceWriterConcurrentWriters drives one TraceWriter from many
// goroutines mixing Observe and WriteStats, then parses the output: every
// NDJSON line must survive intact (no interleaving mid-line) and every
// record must be accounted for.
func TestTraceWriterConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	const goroutines, events = 8, 500
	longName := make([]byte, 256)
	for i := range longName {
		longName[i] = 'x'
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := core.NewSystem(core.Options{Form: core.IF, Seed: int64(g)})
			// Long names make torn writes overwhelmingly likely to corrupt
			// a line if the writer's locking ever regresses.
			v := s.Fresh(string(longName))
			w := s.Fresh("w")
			for i := 0; i < events; i++ {
				tw.Observe(core.Event{Kind: core.EventVarEdge, From: v, To: w, Work: int64(i)})
				if i%100 == 0 {
					tw.WriteStats(core.Stats{Work: int64(i)})
				}
			}
		}(g)
	}
	wg.Wait()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace on concurrently written trace: %v", err)
	}
	var evs, stats int
	for _, r := range recs {
		switch r.Kind {
		case "stats":
			stats++
		default:
			evs++
		}
	}
	if want := goroutines * events; evs != want {
		t.Errorf("parsed %d event records, want %d", evs, want)
	}
	if want := goroutines * (events / 100); stats != want {
		t.Errorf("parsed %d stats records, want %d", stats, want)
	}
	if tw.Events() != int64(goroutines*events) {
		t.Errorf("writer counted %d events, want %d", tw.Events(), goroutines*events)
	}
}

// TestSolverMetricsAgainstStats runs the solver with the standard sink and
// checks the registry's counters against the final Stats.
func TestSolverMetricsAgainstStats(t *testing.T) {
	reg := NewRegistry()
	sm := NewSolverMetrics(reg)
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	st := runTracedWorkload(t, tw, sm)
	_ = tw.Close()

	if sm.EdgeAttempts.Value() != st.Work {
		t.Errorf("edge attempts = %d, Stats.Work = %d", sm.EdgeAttempts.Value(), st.Work)
	}
	if sm.RedundantEdges.Value() != st.Redundant {
		t.Errorf("redundant = %d, Stats.Redundant = %d", sm.RedundantEdges.Value(), st.Redundant)
	}
	if sm.SearchDepth.Count() != uint64(st.CycleSearches) {
		t.Errorf("search-depth count = %d, Stats.CycleSearches = %d", sm.SearchDepth.Count(), st.CycleSearches)
	}
	if sm.SearchDepth.Sum() != float64(st.CycleVisits) {
		t.Errorf("search-depth sum = %v, Stats.CycleVisits = %d", sm.SearchDepth.Sum(), st.CycleVisits)
	}
	if sm.CollapseSize.Sum() != float64(st.VarsEliminated) {
		t.Errorf("collapse-size sum = %v, Stats.VarsEliminated = %d", sm.CollapseSize.Sum(), st.VarsEliminated)
	}
	closure, n := sm.Phases.Get(PhaseClosure)
	if n == 0 || closure < 0 {
		t.Errorf("closure phase = (%v, %d), want at least one drain", closure, n)
	}

	PublishStats(reg, st)
	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"polce_edge_attempts_total", "polce_redundant_edge_ratio",
		"polce_cycle_search_depth_bucket", "polce_collapse_size_bucket",
		"polce_phase_seconds{phase=\"closure\"}", "polce_stats_work",
	} {
		if !bytes.Contains(out.Bytes(), []byte(want)) {
			t.Errorf("Prometheus exposition missing %q:\n%s", want, text)
		}
	}
}
