package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"polce"
	"polce/internal/andersen"
)

// This file is the parallel experiment runner. The sequential harness
// (RunSuite) walks the benchmark × experiment matrix one cell at a time;
// for grid explorations (form × policy × order × seed) that leaves all but
// one core idle. RunParallel fans the cells across a worker pool instead.
// Each cell is fully self-contained — its own program load (cached behind
// a mutex), its own solver, and, for oracle policies, its own reference
// pass — so cells never share mutable state and the runner is race-free.
// Results are written by input index, so the output order is exactly the
// input order no matter how workers interleave.

// Cell is one point of the experiment grid: a benchmark solved under one
// experiment configuration, order strategy, storage representation and
// seed.
type Cell struct {
	Bench Benchmark
	Exp   Experiment
	Order polce.OrderStrategy
	Repr  polce.StorageRepr
	Seed  int64
}

// Grid expands the cross product benches × exps × orders × reprs × seeds
// into cells, in that nesting order (seed varies fastest). The expansion
// is deterministic, so two processes given the same inputs enumerate the
// same cells at the same indices.
func Grid(benches []Benchmark, exps []Experiment, orders []polce.OrderStrategy, reprs []polce.StorageRepr, seeds []int64) []Cell {
	if len(reprs) == 0 {
		reprs = []polce.StorageRepr{polce.ReprHybrid}
	}
	cells := make([]Cell, 0, len(benches)*len(exps)*len(orders)*len(reprs)*len(seeds))
	for _, b := range benches {
		for _, e := range exps {
			for _, o := range orders {
				for _, rp := range reprs {
					for _, s := range seeds {
						cells = append(cells, Cell{Bench: b, Exp: e, Order: o, Repr: rp, Seed: s})
					}
				}
			}
		}
	}
	return cells
}

// CellSeed derives a per-cell solver seed from a base seed, mixing in the
// cell's coordinates so distinct cells draw distinct (but reproducible)
// variable orders. FNV-1a over the cell identity keeps it stable across
// runs and processes. Repr is deliberately NOT mixed in: a hybrid and a
// CSR cell at the same coordinates must draw the same variable order so
// their counters are directly comparable (the representations are
// bit-identical by contract).
func CellSeed(base int64, c Cell) int64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // field separator
		h *= prime
	}
	mix(c.Bench.Name)
	mix(c.Exp.Name)
	mix(c.Order.String())
	h ^= uint64(base)
	h *= prime
	// Keep the seed positive so it survives flag round-trips readably.
	return int64(h >> 1)
}

// CellResult pairs a cell with its measurements. Results returned by
// RunParallel appear at the same index as their cell in the input slice.
type CellResult struct {
	Cell Cell
	Run  Run
	Err  error
}

// ParallelOptions configures RunParallel.
type ParallelOptions struct {
	// Workers is the pool size; <= 0 means GOMAXPROCS.
	Workers int
	// Repeat re-runs each timed cell and keeps the best time (0 = 1).
	Repeat int
	// Phases installs the telemetry sink per cell, recording closure time
	// and search-depth quantiles (see Options.Phases).
	Phases bool
	// LSWorkers is the least-solution pass worker count per cell; see
	// polce.Options.LSWorkers.
	LSWorkers int
	// VE additionally times a vertex-elimination closure build per cell
	// (BaselineCell.VEClosureNS).
	VE bool
}

// RunParallel measures every cell on a pool of workers. Cells are claimed
// with an atomic counter (no channel ordering involved) and each result is
// stored at its cell's input index, so the returned slice is order-stable:
// results[i].Cell == cells[i] regardless of worker count or scheduling.
func RunParallel(cells []Cell, opt ParallelOptions) []CellResult {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	results := make([]CellResult, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				results[i] = runCell(cells[i], opt)
			}
		}()
	}
	wg.Wait()
	return results
}

// runCell measures one cell in isolation. Oracle cells build their own
// oracle from a cell-local IF-Online reference pass (same program, order
// and seed), so no state crosses cell boundaries.
func runCell(c Cell, opt ParallelOptions) CellResult {
	p, err := load(c.Bench)
	if err != nil {
		return CellResult{Cell: c, Err: err}
	}
	var oracle *polce.Oracle
	if c.Exp.Cycles == polce.CycleOracle {
		ref := andersen.Analyze(p.file, andersen.Options{
			Form: polce.IF, Cycles: polce.CycleOnline, Seed: c.Seed, Order: c.Order, Repr: c.Repr,
		})
		oracle = polce.BuildOracle(ref.Sys)
	}
	repeat := opt.Repeat
	if repeat <= 0 {
		repeat = 1
	}
	run := runOne(p, c.Exp, oracle, Options{Seed: c.Seed, Order: c.Order, Phases: opt.Phases, LSWorkers: opt.LSWorkers, Repr: c.Repr, VE: opt.VE}, repeat)
	return CellResult{Cell: c, Run: run}
}

// Baseline is the committed benchmark-baseline format (BENCH_pr2.json):
// one record per grid cell with the phase timings and solver counters a
// later change can be diffed against. Timings are nanoseconds; counters
// are deterministic for a given cell, timings are environment-dependent.
type Baseline struct {
	Schema    string         `json:"schema"`
	Generated string         `json:"generated"` // RFC 3339
	GoVersion string         `json:"go_version"`
	Workers   int            `json:"workers"`
	Repeat    int            `json:"repeat"`
	LSWorkers int            `json:"ls_workers"`
	Cells     []BaselineCell `json:"cells"`
}

// BaselineCell is one cell's record in a Baseline.
type BaselineCell struct {
	Benchmark  string `json:"benchmark"`
	Experiment string `json:"experiment"`
	Order      string `json:"order"`
	Repr       string `json:"repr"`
	Seed       int64  `json:"seed"`

	SolveNS         int64 `json:"solve_ns"`
	ClosureNS       int64 `json:"closure_ns"`
	LeastSolutionNS int64 `json:"least_solution_ns"`
	TotalNS         int64 `json:"total_ns"`

	Edges      int     `json:"edges"`
	Work       int64   `json:"work"`
	Eliminated int     `json:"eliminated"`
	Searches   int64   `json:"searches"`
	Visits     int64   `json:"visits"`
	DepthP50   float64 `json:"depth_p50"`
	DepthP90   float64 `json:"depth_p90"`
	DepthMax   float64 `json:"depth_max"`

	// Least-solution engine shape (schema /2; zero for SF cells).
	LSLevels       int64   `json:"ls_levels"`
	LSUnionHitRate float64 `json:"ls_union_hit_rate"`

	// Vertex-elimination closure build time (schema /3; zero unless the
	// run asked for it with ParallelOptions.VE).
	VEClosureNS int64 `json:"ve_closure_ns"`
}

// NewBaseline assembles the baseline record for a parallel run. Cells with
// errors are skipped (the caller reports them separately).
func NewBaseline(results []CellResult, opt ParallelOptions, now time.Time) Baseline {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	repeat := opt.Repeat
	if repeat <= 0 {
		repeat = 1
	}
	b := Baseline{
		Schema:    "polce-bench-baseline/3",
		Generated: now.UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		Workers:   workers,
		Repeat:    repeat,
		LSWorkers: opt.LSWorkers,
	}
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		b.Cells = append(b.Cells, BaselineCell{
			Benchmark:       r.Cell.Bench.Name,
			Experiment:      r.Cell.Exp.Name,
			Order:           r.Cell.Order.String(),
			Repr:            r.Cell.Repr.String(),
			Seed:            r.Cell.Seed,
			SolveNS:         r.Run.SolveTime.Nanoseconds(),
			ClosureNS:       r.Run.ClosureTime.Nanoseconds(),
			LeastSolutionNS: r.Run.LSTime.Nanoseconds(),
			TotalNS:         r.Run.Time.Nanoseconds(),
			Edges:           r.Run.Edges,
			Work:            r.Run.Work,
			Eliminated:      r.Run.Eliminated,
			Searches:        r.Run.Searches,
			Visits:          r.Run.Visits,
			DepthP50:        r.Run.DepthP50,
			DepthP90:        r.Run.DepthP90,
			DepthMax:        r.Run.DepthMax,
			LSLevels:        r.Run.LSLevels,
			LSUnionHitRate:  r.Run.LSUnionHitRate,
			VEClosureNS:     r.Run.VETime.Nanoseconds(),
		})
	}
	return b
}

// WriteBaseline writes the baseline as indented JSON.
func WriteBaseline(w io.Writer, b Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ParallelTable prints a compact per-cell summary of a parallel run.
func ParallelTable(w io.Writer, results []CellResult) {
	fmt.Fprintf(w, "%-14s %-12s %-9s %-7s %10s %10s %10s %10s %8s\n",
		"benchmark", "experiment", "order", "repr", "solve", "closure", "ls", "edges", "elim")
	for _, r := range results {
		if r.Err != nil {
			fmt.Fprintf(w, "%-14s %-12s %-9s %-7s ERROR: %v\n", r.Cell.Bench.Name, r.Cell.Exp.Name, r.Cell.Order, r.Cell.Repr, r.Err)
			continue
		}
		fmt.Fprintf(w, "%-14s %-12s %-9s %-7s %10s %10s %10s %10d %8d\n",
			r.Cell.Bench.Name, r.Cell.Exp.Name, r.Cell.Order, r.Cell.Repr,
			r.Run.SolveTime.Round(time.Microsecond),
			r.Run.ClosureTime.Round(time.Microsecond),
			r.Run.LSTime.Round(time.Microsecond),
			r.Run.Edges, r.Run.Eliminated)
	}
}
