package bench

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// phaseExpOrder returns the experiments present in results, in Table 4
// order followed by any ablations (the same ordering WriteCSV uses).
func phaseExpOrder(results []*Result) []string {
	present := map[string]bool{}
	for _, r := range results {
		for name := range r.Runs {
			present[name] = true
		}
	}
	var names []string
	for _, e := range Experiments {
		if present[e.Name] {
			names = append(names, e.Name)
			delete(present, e.Name)
		}
	}
	var extra []string
	for name := range present {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	return append(names, extra...)
}

// PhaseTable renders the per-benchmark phase timings and search-depth
// distribution summaries recorded under Options.Phases: the solve
// (constraint generation + closure) and least-solution shares of each
// run's time, the solver-side closure share, and the p50/p90/max of the
// per-search nodes-visited distribution (the empirical shape behind
// Theorem 5.2, which the tables otherwise collapse to a mean).
func PhaseTable(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Phase timings and search-depth distributions (best-timed run; closure ⊆ solve)")
	names := phaseExpOrder(results)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Benchmark\tExperiment\tsolve\tclosure\tleast-sol\ttotal\tdepth p50\tp90\tmax\t")
	for _, r := range results {
		for _, name := range names {
			run, ok := r.Runs[name]
			if !ok {
				continue
			}
			depths := "-\t-\t-"
			if run.Searches > 0 {
				depths = fmt.Sprintf("%.0f\t%.0f\t%.0f", run.DepthP50, run.DepthP90, run.DepthMax)
			}
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t\n",
				r.Bench.Name, name, secs(run.SolveTime), secs(run.ClosureTime),
				secs(run.LSTime), secs(run.Time), depths)
		}
		if r.OraclePass1 > 0 {
			fmt.Fprintf(tw, "%s\toracle-pass1\t%s\t-\t-\t%s\t-\t-\t-\t\n",
				r.Bench.Name, secs(r.OraclePass1), secs(r.OraclePass1))
		}
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(solve = constraint generation + closure; oracle-pass1 = reference run +")
	fmt.Fprintln(w, " oracle construction; an oracle run's own time is its pass 2.)")
}
