package bench

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
	"time"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
	"polce/internal/progen"
)

// Sweep quantifies the scaling claim behind Figures 7 and 9: one workload
// shape is generated at doubling sizes, SF-Plain and IF-Online are run at
// each size, and the local growth exponent (the log-log slope between
// consecutive sizes) is printed for both work and time. The paper's story
// in two numbers per row: SF-Plain's exponent drifts well above 1 as
// cycles dominate, while IF-Online stays near linear.
func Sweep(w io.Writer, sizes []int, seed int64) error {
	if len(sizes) == 0 {
		sizes = []int{2000, 4000, 8000, 16000, 32000}
	}
	fmt.Fprintln(w, "Scaling sweep: growth exponents of SF-Plain vs IF-Online")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "AST Nodes\tSF-Plain Work\tSF exp\tSF-Plain (s)\tIF-Online Work\tIF exp\tIF-Online (s)\t")

	type point struct {
		nodes          int
		sfWork, ifWork int64
		sfSec, ifSec   float64
	}
	var prev *point
	var first *point
	var last *point
	for _, size := range sizes {
		src := progen.Generate(progen.ByScale(seed+int64(size), size))
		file, err := cgen.MustParse("sweep.c", src)
		if err != nil {
			return err
		}
		cur := point{nodes: cgen.CountNodes(file)}

		start := time.Now()
		sf := andersen.Analyze(file, andersen.Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: seed})
		cur.sfSec = time.Since(start).Seconds()
		cur.sfWork = sf.Sys.Stats().Work

		start = time.Now()
		ifr := andersen.Analyze(file, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed})
		ifr.Sys.ComputeLeastSolutions()
		cur.ifSec = time.Since(start).Seconds()
		cur.ifWork = ifr.Sys.Stats().Work

		sfExp, ifExp := "-", "-"
		if prev != nil {
			dn := math.Log(float64(cur.nodes) / float64(prev.nodes))
			sfExp = fmt.Sprintf("%.2f", math.Log(float64(cur.sfWork)/float64(prev.sfWork))/dn)
			ifExp = fmt.Sprintf("%.2f", math.Log(float64(cur.ifWork)/float64(prev.ifWork))/dn)
		}
		fmt.Fprintf(tw, "%d\t%d\t%s\t%.3f\t%d\t%s\t%.3f\t\n",
			cur.nodes, cur.sfWork, sfExp, cur.sfSec, cur.ifWork, ifExp, cur.ifSec)
		c := cur
		prev = &c
		if first == nil {
			first = &c
		}
		last = &c
	}
	tw.Flush()
	if first != nil && last != nil && last != first {
		dn := math.Log(float64(last.nodes) / float64(first.nodes))
		overallSF := math.Log(float64(last.sfWork)/float64(first.sfWork)) / dn
		overallIF := math.Log(float64(last.ifWork)/float64(first.ifWork)) / dn
		fmt.Fprintf(w, "\nShape check: over the whole sweep SF-Plain's work grows as n^%.1f while\n", overallSF)
		fmt.Fprintf(w, "IF-Online's grows as n^%.1f — the scaling gap Figures 7 and 9 plot.\n", overallIF)
	}
	return nil
}
