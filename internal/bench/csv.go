package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
)

// WriteCSV emits the full measurement matrix as CSV — one row per
// benchmark, columns for the Table 1 statistics followed by
// edges/work/eliminated/seconds for every experiment present in the
// results — for plotting the figures with external tools.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)

	// Collect the union of experiment names, in Table 4 order followed by
	// any ablations.
	present := map[string]bool{}
	for _, r := range results {
		for name := range r.Runs {
			present[name] = true
		}
	}
	var names []string
	for _, e := range Experiments {
		if present[e.Name] {
			names = append(names, e.Name)
			delete(present, e.Name)
		}
	}
	var extra []string
	for name := range present {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	names = append(names, extra...)

	header := []string{
		"benchmark", "ast_nodes", "loc", "set_vars",
		"initial_nodes", "initial_edges",
		"init_scc_vars", "init_scc_max", "final_scc_vars", "final_scc_max",
		"initial_density", "final_density",
	}
	for _, n := range names {
		header = append(header,
			n+"_edges", n+"_work", n+"_eliminated", n+"_seconds", n+"_alloc_bytes")
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	for _, r := range results {
		row := []string{
			r.Bench.Name,
			fmt.Sprint(r.ASTNodes), fmt.Sprint(r.LOC), fmt.Sprint(r.SetVars),
			fmt.Sprint(r.InitialNodes), fmt.Sprint(r.InitialEdges),
			fmt.Sprint(r.InitSCCVars), fmt.Sprint(r.InitSCCMax),
			fmt.Sprint(r.FinalSCCVars), fmt.Sprint(r.FinalSCCMax),
			fmt.Sprintf("%.4f", r.InitialDensity), fmt.Sprintf("%.4f", r.FinalDensity),
		}
		for _, n := range names {
			run, ok := r.Runs[n]
			if !ok {
				row = append(row, "", "", "", "", "")
				continue
			}
			row = append(row,
				fmt.Sprint(run.Edges), fmt.Sprint(run.Work),
				fmt.Sprint(run.Eliminated), fmt.Sprintf("%.6f", run.Time.Seconds()),
				fmt.Sprint(run.AllocBytes))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
