package bench

import (
	"encoding/csv"
	"fmt"
	"io"
)

// perExpCols is the number of CSV columns written per experiment.
const perExpCols = 13

// WriteCSV emits the full measurement matrix as CSV — one row per
// benchmark, columns for the Table 1 statistics followed by, for every
// experiment present in the results, the headline measurements
// (edges/work/eliminated/seconds/alloc), the phase breakdown
// (solve/closure/least-solution seconds), the search-depth
// distribution summaries (p50/p90/max) and the least-solution engine
// shape (levels, union-memo hit rate) — for plotting the figures and
// Fig. 11 / diagnostics runs with external tools. The phase and depth
// columns are zero unless the suite ran with Options.Phases.
func WriteCSV(w io.Writer, results []*Result) error {
	cw := csv.NewWriter(w)

	names := phaseExpOrder(results)

	header := []string{
		"benchmark", "ast_nodes", "loc", "set_vars",
		"initial_nodes", "initial_edges",
		"init_scc_vars", "init_scc_max", "final_scc_vars", "final_scc_max",
		"initial_density", "final_density", "oracle_pass1_seconds",
	}
	for _, n := range names {
		header = append(header,
			n+"_edges", n+"_work", n+"_eliminated", n+"_seconds", n+"_alloc_bytes",
			n+"_solve_seconds", n+"_closure_seconds", n+"_ls_seconds",
			n+"_depth_p50", n+"_depth_p90", n+"_depth_max",
			n+"_ls_levels", n+"_ls_union_hit_rate")
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	for _, r := range results {
		row := []string{
			r.Bench.Name,
			fmt.Sprint(r.ASTNodes), fmt.Sprint(r.LOC), fmt.Sprint(r.SetVars),
			fmt.Sprint(r.InitialNodes), fmt.Sprint(r.InitialEdges),
			fmt.Sprint(r.InitSCCVars), fmt.Sprint(r.InitSCCMax),
			fmt.Sprint(r.FinalSCCVars), fmt.Sprint(r.FinalSCCMax),
			fmt.Sprintf("%.4f", r.InitialDensity), fmt.Sprintf("%.4f", r.FinalDensity),
			fmt.Sprintf("%.6f", r.OraclePass1.Seconds()),
		}
		for _, n := range names {
			run, ok := r.Runs[n]
			if !ok {
				for i := 0; i < perExpCols; i++ {
					row = append(row, "")
				}
				continue
			}
			row = append(row,
				fmt.Sprint(run.Edges), fmt.Sprint(run.Work),
				fmt.Sprint(run.Eliminated), fmt.Sprintf("%.6f", run.Time.Seconds()),
				fmt.Sprint(run.AllocBytes),
				fmt.Sprintf("%.6f", run.SolveTime.Seconds()),
				fmt.Sprintf("%.6f", run.ClosureTime.Seconds()),
				fmt.Sprintf("%.6f", run.LSTime.Seconds()),
				fmt.Sprintf("%.1f", run.DepthP50),
				fmt.Sprintf("%.1f", run.DepthP90),
				fmt.Sprintf("%.1f", run.DepthMax),
				fmt.Sprint(run.LSLevels),
				fmt.Sprintf("%.4f", run.LSUnionHitRate))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
