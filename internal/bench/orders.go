package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"polce"
	"polce/internal/andersen"
)

// OrderExperiment reproduces the paper's §2.4 remark that a random total
// order o(·) "performs as well or better than any other order we picked":
// IF-Online is run with random, creation and reverse-creation orders over
// the given benchmarks, comparing work, eliminations and time.
func OrderExperiment(w io.Writer, benches []Benchmark, seed int64) error {
	strategies := []polce.OrderStrategy{polce.OrderRandom, polce.OrderCreation, polce.OrderReverseCreation}

	fmt.Fprintln(w, "Order-choice ablation (§2.4): IF-Online under different variable orders")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "Benchmark\tCycleVars\t")
	for _, s := range strategies {
		fmt.Fprintf(tw, "%s Work\t%s Elim\t%s Time\t", s, s, s)
	}
	fmt.Fprintln(tw)

	var wins int
	for _, b := range benches {
		p, err := load(b)
		if err != nil {
			return err
		}
		fmt.Fprintf(tw, "%s\t", b.Name)
		var works []int64
		var cycOnce bool
		for _, strat := range strategies {
			start := time.Now()
			r := andersen.Analyze(p.file, andersen.Options{
				Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed, Order: strat,
			})
			r.Sys.ComputeLeastSolutions()
			elapsed := time.Since(start)
			if !cycOnce {
				cyc, _ := r.Sys.CycleClassStats()
				fmt.Fprintf(tw, "%d\t", cyc)
				cycOnce = true
			}
			st := r.Sys.Stats()
			works = append(works, st.Work)
			fmt.Fprintf(tw, "%d\t%d\t%s\t", st.Work, st.VarsEliminated, secs(elapsed))
		}
		fmt.Fprintln(tw)
		if works[0] <= works[1] || works[0] <= works[2] {
			wins++
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: random order beats (or matches) a fixed order on %d/%d benchmarks\n", wins, len(benches))
	fmt.Fprintln(w, "(the paper found random as good as or better than every order it tried).")
	return nil
}
