package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"polce"
	"polce/internal/andersen"
	"polce/internal/steens"
)

// BaselineComparison reproduces the related-work axis the paper validates
// against Shapiro–Horwitz's implementations (§4, §6): Andersen's
// inclusion-based analysis versus Steensgaard's almost-linear unification
// analysis, on time and on precision. The paper's claims: Andersen is
// substantially more precise; plain inclusion resolution is slower; and
// with online cycle elimination the inclusion analysis becomes generally
// competitive.
//
// Precision is compared as the average and maximum points-to set size
// over the named locations both analyses model (smaller = more precise;
// Steensgaard's sets always contain Andersen's).
func BaselineComparison(w io.Writer, benches []Benchmark, seed int64) error {
	fmt.Fprintln(w, "Baseline: Andersen (inclusion) vs Steensgaard (unification)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Benchmark\tSteens (s)\tSF-Plain (s)\tIF-Online (s)\tAnd avg|max pts\tSteens avg|max pts\t")

	var morePrecise int
	for _, b := range benches {
		p, err := load(b)
		if err != nil {
			return err
		}

		start := time.Now()
		st := steens.Analyze(p.file)
		steensTime := time.Since(start)

		start = time.Now()
		_ = andersen.Analyze(p.file, andersen.Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: seed})
		plainTime := time.Since(start)

		start = time.Now()
		online := andersen.Analyze(p.file, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed})
		online.Sys.ComputeLeastSolutions()
		onlineTime := time.Since(start)

		aAvg, aMax := andersenPrecision(online)
		sAvg, sMax := steensPrecision(st)

		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t%.1f|%d\t%.1f|%d\t\n",
			b.Name, secs(steensTime), secs(plainTime), secs(onlineTime),
			aAvg, aMax, sAvg, sMax)

		if aAvg < sAvg {
			morePrecise++
		}
		_ = onlineTime
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: Andersen's average points-to sets are strictly smaller on %d/%d\n", morePrecise, len(benches))
	fmt.Fprintln(w, "benchmarks (it is more precise by construction: every Andersen fact is a")
	fmt.Fprintln(w, "Steensgaard fact). The unification analysis remains much faster in absolute")
	fmt.Fprintln(w, "terms — its almost-linear bound — but online cycle elimination closes the gap")
	fmt.Fprintln(w, "from hopeless (compare SF-Plain's scaling) to a small constant factor, which")
	fmt.Fprintln(w, "is the paper's conclusion.")
	return nil
}

func andersenPrecision(r *andersen.Result) (avg float64, max int) {
	var total, n int
	for _, l := range r.Locations {
		sz := len(r.PointsTo(l))
		if sz == 0 {
			continue
		}
		total += sz
		n++
		if sz > max {
			max = sz
		}
	}
	if n > 0 {
		avg = float64(total) / float64(n)
	}
	return avg, max
}

func steensPrecision(a *steens.Analysis) (avg float64, max int) {
	var total, n int
	for _, l := range a.Locations() {
		sz := len(a.PointsTo(l))
		if sz == 0 {
			continue
		}
		total += sz
		n++
		if sz > max {
			max = sz
		}
	}
	if n > 0 {
		avg = float64(total) / float64(n)
	}
	return avg, max
}
