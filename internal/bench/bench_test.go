package bench

import (
	"strings"
	"testing"
)

var tiny = Benchmark{Name: "tiny-test", TargetAST: 900, Seed: 9001}

func runTiny(t *testing.T, names []string) *Result {
	t.Helper()
	r, err := RunBenchmark(tiny, names, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunBenchmarkAllExperiments(t *testing.T) {
	r := runTiny(t, nil)
	if len(r.Runs) != len(Experiments) {
		t.Fatalf("got %d runs, want %d", len(r.Runs), len(Experiments))
	}
	for name, run := range r.Runs {
		if run.Edges <= 0 || run.Work <= 0 || run.Time <= 0 {
			t.Errorf("%s: degenerate run %+v", name, run)
		}
	}
	if r.ASTNodes == 0 || r.LOC == 0 || r.SetVars == 0 || r.InitialEdges == 0 {
		t.Errorf("missing table-1 stats: %+v", r)
	}
}

func TestWorkOrdering(t *testing.T) {
	// The paper's central quantitative relations, checked on one small
	// benchmark: elimination reduces work, and the oracle is the floor.
	r := runTiny(t, nil)
	ifPlain := r.Runs["IF-Plain"]
	ifOnline := r.Runs["IF-Online"]
	ifOracle := r.Runs["IF-Oracle"]
	sfPlain := r.Runs["SF-Plain"]
	sfOnline := r.Runs["SF-Online"]

	if ifOnline.Work > ifPlain.Work {
		t.Errorf("IF-Online work %d exceeds IF-Plain %d", ifOnline.Work, ifPlain.Work)
	}
	if sfOnline.Work > sfPlain.Work {
		t.Errorf("SF-Online work %d exceeds SF-Plain %d", sfOnline.Work, sfPlain.Work)
	}
	if ifOracle.Work > ifOnline.Work {
		t.Errorf("IF-Oracle work %d exceeds IF-Online %d", ifOracle.Work, ifOnline.Work)
	}
	if ifOnline.Eliminated == 0 {
		t.Errorf("IF-Online eliminated nothing")
	}
	// The oracle pre-merges every cyclic variable except one witness per
	// class; online elimination cannot beat it.
	if ifOnline.Eliminated > ifOracle.Eliminated {
		t.Errorf("online eliminated %d > oracle %d", ifOnline.Eliminated, ifOracle.Eliminated)
	}
	// Oracle runs find no cycles at all: their graphs stay acyclic.
	if ifOracle.Searches != 0 {
		t.Errorf("oracle run performed %d online searches", ifOracle.Searches)
	}
}

func TestEdgesAgreeIshAcrossConfigs(t *testing.T) {
	// Final edge counts differ across representations (IF stores
	// transitive var-var edges SF never materialises), but the oracle and
	// online variants of the same form should not exceed the plain runs.
	r := runTiny(t, nil)
	if r.Runs["IF-Online"].Edges > r.Runs["IF-Plain"].Edges {
		t.Errorf("IF-Online edges %d > IF-Plain %d", r.Runs["IF-Online"].Edges, r.Runs["IF-Plain"].Edges)
	}
	if r.Runs["SF-Online"].Edges > r.Runs["SF-Plain"].Edges {
		t.Errorf("SF-Online edges %d > SF-Plain %d", r.Runs["SF-Online"].Edges, r.Runs["SF-Plain"].Edges)
	}
}

func TestAblationRuns(t *testing.T) {
	r := runTiny(t, []string{"SF-Online", "IF-Online", Ablation.Name})
	if _, ok := r.Runs[Ablation.Name]; !ok {
		t.Fatal("ablation did not run")
	}
}

func TestPeriodicAblations(t *testing.T) {
	names := []string{"IF-Online", "SF-Online"}
	for _, e := range PeriodicAblations {
		names = append(names, e.Name)
	}
	r := runTiny(t, names)
	for _, e := range PeriodicAblations {
		run, ok := r.Runs[e.Name]
		if !ok {
			t.Fatalf("%s did not run", e.Name)
		}
		if run.Work <= 0 {
			t.Errorf("%s: no work recorded", e.Name)
		}
	}
	var sb strings.Builder
	AblationTable(&sb, []*Result{r})
	if !strings.Contains(sb.String(), "IF-Periodic Work") {
		t.Error("ablation table missing periodic columns")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := RunBenchmark(tiny, []string{"bogus"}, Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestSuiteHelpers(t *testing.T) {
	if len(Suite) < 20 {
		t.Errorf("suite has only %d benchmarks", len(Suite))
	}
	small := SuiteUpTo(3000)
	for _, b := range small {
		if b.TargetAST > 3000 {
			t.Errorf("SuiteUpTo leaked %s (%d)", b.Name, b.TargetAST)
		}
	}
	if len(small) == 0 || len(small) >= len(Suite) {
		t.Errorf("SuiteUpTo(3000) returned %d benchmarks", len(small))
	}
	if _, ok := ByName("li"); !ok {
		t.Error("ByName(li) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName(nope) succeeded")
	}
	seen := map[int64]bool{}
	for _, b := range Suite {
		if seen[b.Seed] {
			t.Errorf("duplicate seed %d", b.Seed)
		}
		seen[b.Seed] = true
	}
}

func TestRenderers(t *testing.T) {
	r := runTiny(t, nil)
	results := []*Result{r}
	var sb strings.Builder
	Table1(&sb, results)
	Table2(&sb, results)
	Table3(&sb, results)
	Table4(&sb)
	Figure7(&sb, results)
	Figure8(&sb, results)
	Figure9(&sb, results)
	Figure10(&sb, results)
	Figure11(&sb, results)
	out := sb.String()
	if !strings.Contains(out, "tiny-test") {
		t.Error("renderers never mention the benchmark")
	}
	for _, want := range []string{"Table 1", "Table 2", "Table 3", "Table 4",
		"Figure 7", "Figure 8", "Figure 9", "Figure 10", "Figure 11", "Shape check"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing section %q", want)
		}
	}
}

func TestDiagnosticsAndCSV(t *testing.T) {
	r := runTiny(t, []string{"SF-Online", "IF-Online"})
	results := []*Result{r}

	var sb strings.Builder
	Diagnostics(&sb, results)
	out := sb.String()
	if !strings.Contains(out, "Section 5 premises") || !strings.Contains(out, "tiny-test") {
		t.Errorf("diagnostics output wrong:\n%s", out)
	}
	if r.InitialDensity <= 0 || r.FinalDensity < r.InitialDensity {
		t.Errorf("densities wrong: init=%v final=%v", r.InitialDensity, r.FinalDensity)
	}

	var csvOut strings.Builder
	if err := WriteCSV(&csvOut, results); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvOut.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv rows = %d, want header + 1", len(lines))
	}
	if !strings.Contains(lines[0], "IF-Online_work") || !strings.Contains(lines[1], "tiny-test") {
		t.Errorf("csv malformed:\n%s", csvOut.String())
	}
	if nh, nr := strings.Count(lines[0], ",")+1, strings.Count(lines[1], ",")+1; nh != nr {
		t.Errorf("csv header has %d columns, row has %d", nh, nr)
	}
}

func TestSweepRenders(t *testing.T) {
	var sb strings.Builder
	if err := Sweep(&sb, []int{600, 1200}, 3); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Scaling sweep") || !strings.Contains(out, "Shape check") {
		t.Errorf("sweep output wrong:\n%s", out)
	}
}

func TestOrderExperimentRenders(t *testing.T) {
	var sb strings.Builder
	if err := OrderExperiment(&sb, []Benchmark{tiny}, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Order-choice ablation") || !strings.Contains(out, "tiny-test") {
		t.Errorf("order experiment output wrong:\n%s", out)
	}
}

func TestAllocBytesRecorded(t *testing.T) {
	r := runTiny(t, []string{"IF-Online"})
	if r.Runs["IF-Online"].AllocBytes == 0 {
		t.Error("no allocation recorded")
	}
}

func TestBaselineComparisonRenders(t *testing.T) {
	var sb strings.Builder
	if err := BaselineComparison(&sb, []Benchmark{tiny}, 1); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Steensgaard") || !strings.Contains(out, "tiny-test") {
		t.Errorf("baseline output wrong:\n%s", out)
	}
}

func TestCFAExperimentRenders(t *testing.T) {
	var sb strings.Builder
	if err := CFAExperiment(&sb, []int{300, 600}, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "closure analysis") || !strings.Contains(out, "Shape check") {
		t.Errorf("cfa experiment output wrong:\n%s", out)
	}
}

func TestRepeatKeepsBestTime(t *testing.T) {
	r1, err := RunBenchmark(tiny, []string{"IF-Online"}, Options{Seed: 1, Repeat: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Runs["IF-Online"].Time <= 0 {
		t.Error("repeat run lost its timing")
	}
}

func TestDeterministicCounters(t *testing.T) {
	a := runTiny(t, []string{"IF-Online"})
	b := runTiny(t, []string{"IF-Online"})
	ra, rb := a.Runs["IF-Online"], b.Runs["IF-Online"]
	if ra.Work != rb.Work || ra.Edges != rb.Edges || ra.Eliminated != rb.Eliminated {
		t.Errorf("counters not reproducible: %+v vs %+v", ra, rb)
	}
}
