package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"
)

// secs renders a duration the way the paper's tables do (seconds).
func secs(d time.Duration) string {
	return fmt.Sprintf("%.3f", d.Seconds())
}

// Table1 renders the benchmark-characteristics table: program sizes,
// constraint-graph sizes, and the initial and final SCC statistics.
func Table1(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 1: Benchmark data common to all experiments")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Benchmark\tAST Nodes\tLOC\tSet Vars\tInitial Nodes\tInitial Edges\tinit #Vars\tinit maxSCC\tfinal #Vars\tfinal maxSCC\t")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t\n",
			r.Bench.Name, r.ASTNodes, r.LOC, r.SetVars, r.InitialNodes,
			r.InitialEdges, r.InitSCCVars, r.InitSCCMax, r.FinalSCCVars, r.FinalSCCMax)
	}
	tw.Flush()
	fmt.Fprintln(w, "\n(init/final #Vars = variables in non-trivial SCCs of the initial/closed graph;")
	fmt.Fprintln(w, " most cyclic variables appear only during resolution, as in the paper's §2.5.)")
}

// table2Exps are the four configurations Table 2 reports.
var table2Exps = []string{"SF-Plain", "IF-Plain", "SF-Oracle", "IF-Oracle"}

// Table2 renders the plain and oracle measurements: final edges, total
// edge additions (Work, including redundant ones) and time.
func Table2(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 2: Benchmark data for SF-Plain, IF-Plain, SF-Oracle, and IF-Oracle")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "Benchmark\t")
	for _, e := range table2Exps {
		fmt.Fprintf(tw, "%s Edges\t%s Work\t%s Time\t", e, e, e)
	}
	fmt.Fprintln(tw)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t", r.Bench.Name)
		for _, e := range table2Exps {
			run, ok := r.Runs[e]
			if !ok {
				fmt.Fprint(tw, "-\t-\t-\t")
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t", run.Edges, run.Work, secs(run.Time))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// table3Exps are the two online configurations Table 3 reports.
var table3Exps = []string{"SF-Online", "IF-Online"}

// Table3 renders the online cycle-elimination measurements, adding the
// number of variables eliminated by cycle detection.
func Table3(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Table 3: Benchmark data for SF-Online and IF-Online")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(tw, "Benchmark\t")
	for _, e := range table3Exps {
		fmt.Fprintf(tw, "%s Edges\t%s Work\t%s Elim\t%s Time\t", e, e, e, e)
	}
	fmt.Fprintln(tw)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t", r.Bench.Name)
		for _, e := range table3Exps {
			run, ok := r.Runs[e]
			if !ok {
				fmt.Fprint(tw, "-\t-\t-\t-\t")
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%d\t%s\t", run.Edges, run.Work, run.Eliminated, secs(run.Time))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// Table4 renders the experiment roster.
func Table4(w io.Writer) {
	fmt.Fprintln(w, "Table 4: Experiments")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Experiment\tDescription\t")
	for _, e := range Experiments {
		fmt.Fprintf(tw, "%s\t%s\t\n", e.Name, e.Desc)
	}
	tw.Flush()
}
