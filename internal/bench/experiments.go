package bench

import (
	"fmt"
	"runtime"
	"time"

	"polce"
	"polce/internal/andersen"
	"polce/internal/telemetry"
)

// Experiment is one of the paper's configurations (Table 4).
type Experiment struct {
	Name   string
	Form   polce.Form
	Cycles polce.CyclePolicy
	Desc   string
	// Interval configures polce.CyclePeriodic (0 = solver default).
	Interval int
}

// Experiments lists the six configurations of Table 4, in the paper's
// order.
var Experiments = []Experiment{
	{Name: "SF-Plain", Form: polce.SF, Cycles: polce.CycleNone, Desc: "Standard form, no cycle elimination"},
	{Name: "IF-Plain", Form: polce.IF, Cycles: polce.CycleNone, Desc: "Inductive form, no cycle elimination"},
	{Name: "SF-Oracle", Form: polce.SF, Cycles: polce.CycleOracle, Desc: "Standard form, with full (oracle) cycle elimination"},
	{Name: "IF-Oracle", Form: polce.IF, Cycles: polce.CycleOracle, Desc: "Inductive form, with full (oracle) cycle elimination"},
	{Name: "SF-Online", Form: polce.SF, Cycles: polce.CycleOnline, Desc: "Standard form, using online cycle elimination"},
	{Name: "IF-Online", Form: polce.IF, Cycles: polce.CycleOnline, Desc: "Inductive form, with online cycle elimination"},
}

// Ablation is the §4 extra experiment: standard form searching
// increasing successor chains, which the paper reports detecting more
// cycles than the decreasing search at much higher cost.
var Ablation = Experiment{
	Name: "SF-Incr", Form: polce.SF, Cycles: polce.CycleOnlineIncreasing,
	Desc: "Standard form, online elimination via increasing chains (ablation)",
}

// PeriodicAblations are the prior-work strategy the paper's introduction
// argues against: offline elimination sweeps at a fixed frequency
// ([FA96, FF97, MW97]-style periodic simplification), here every 2000
// edge additions.
var PeriodicAblations = []Experiment{
	{Name: "SF-Periodic", Form: polce.SF, Cycles: polce.CyclePeriodic, Interval: 2000,
		Desc: "Standard form, offline sweep every 2000 edge additions (prior work)"},
	{Name: "IF-Periodic", Form: polce.IF, Cycles: polce.CyclePeriodic, Interval: 2000,
		Desc: "Inductive form, offline sweep every 2000 edge additions (prior work)"},
}

// ExperimentByName looks up a configuration, including the ablations.
func ExperimentByName(name string) (Experiment, bool) {
	for _, e := range Experiments {
		if e.Name == name {
			return e, true
		}
	}
	if name == Ablation.Name {
		return Ablation, true
	}
	for _, e := range PeriodicAblations {
		if e.Name == name {
			return e, true
		}
	}
	return Experiment{}, false
}

// Run holds the measurements of one (benchmark, experiment) cell: the
// paper's Tables 2 and 3 columns, plus (under Options.Phases) the phase
// breakdown and search-depth distribution summaries.
type Run struct {
	Edges      int           // edges in the final graph
	Work       int64         // total edge additions, including redundant
	Time       time.Duration // solve time; includes the LS pass for IF
	Eliminated int           // variables removed by cycle elimination
	Searches   int64         // online chain searches
	Visits     int64         // nodes visited by the searches
	AllocBytes uint64        // heap allocated during the run (space cost)

	// Phase breakdown of Time: SolveTime is the constraint-generation +
	// closure share (the Analyze call), LSTime the least-solution pass
	// (IF only; Time = SolveTime + LSTime), and ClosureTime the
	// solver-side closure share of SolveTime (recorded only under
	// Options.Phases).
	SolveTime   time.Duration
	ClosureTime time.Duration
	LSTime      time.Duration

	// Search-depth distribution summaries (nodes visited per online
	// cycle search — the empirical distribution behind Theorem 5.2),
	// recorded only under Options.Phases.
	DepthP50 float64
	DepthP90 float64
	DepthMax float64

	// Least-solution engine shape (IF only): topological levels of the
	// predecessor DAG and the memoized-union hit rate of the pass.
	LSLevels       int64
	LSUnionHitRate float64

	// VETime is the closed-world vertex-elimination closure build time
	// (recorded only under Options.VE; not part of Time).
	VETime time.Duration
}

// VisitsPerSearch is the measured analogue of Theorem 5.2's E(R_X).
func (r Run) VisitsPerSearch() float64 {
	if r.Searches == 0 {
		return 0
	}
	return float64(r.Visits) / float64(r.Searches)
}

// Result aggregates one benchmark's measurements.
type Result struct {
	Bench Benchmark

	// Table 1 statistics.
	ASTNodes     int
	LOC          int
	SetVars      int
	InitialNodes int // variables + distinct sources and sinks (graph nodes)
	InitialEdges int
	InitSCCVars  int
	InitSCCMax   int
	FinalSCCVars int
	FinalSCCMax  int

	// Section 5 premises: edge density (edges per variable) of the
	// initial and closed graphs — the model's p·n parameter.
	InitialDensity float64
	FinalDensity   float64

	// Runs maps experiment name → measurements.
	Runs map[string]Run

	// OraclePass1 is the cost of obtaining the oracle — the reference
	// IF-Online pass plus BuildOracle — recorded when an oracle
	// experiment ran. The oracle run itself (pass 2) is its Run.Time.
	OraclePass1 time.Duration
}

// Options configures a harness run.
type Options struct {
	// Seed is the solver's variable-order seed.
	Seed int64
	// Order selects the variable-order strategy (default OrderRandom, as
	// in the paper's experiments).
	Order polce.OrderStrategy
	// Repeat re-runs each timed experiment and keeps the best time (the
	// paper reports best of three). 0 means 1.
	Repeat int
	// Phases installs a telemetry sink in every timed run, recording the
	// closure/least-solution phase breakdown and the search-depth
	// distribution summaries (Run.ClosureTime, Run.DepthP50/P90/Max).
	// The hooks add a small constant per edge addition, so leave this
	// off when reproducing the paper's timing tables exactly.
	Phases bool
	// LSWorkers is the least-solution pass worker count; see
	// polce.Options.LSWorkers.
	LSWorkers int
	// Repr selects the adjacency storage representation; see
	// polce.Options.Repr. Both representations are bit-identical in their
	// results, so this is a pure performance axis.
	Repr polce.StorageRepr
	// VE additionally times a closed-world vertex-elimination closure
	// build after each solve (Run.VETime).
	VE bool
}

// RunBenchmark measures the named experiments (nil = all six) on one
// benchmark. The oracle experiments derive their oracle from an untimed
// IF-Online pass on the same program.
func RunBenchmark(b Benchmark, names []string, opt Options) (*Result, error) {
	p, err := load(b)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		for _, e := range Experiments {
			names = append(names, e.Name)
		}
	}
	repeat := opt.Repeat
	if repeat <= 0 {
		repeat = 1
	}

	res := &Result{Bench: b, ASTNodes: p.nodes, LOC: p.loc, Runs: map[string]Run{}}

	// Table 1 statistics from the initial (unclosed) graph.
	initial := andersen.AnalyzeInitial(p.file, andersen.Options{Form: polce.SF, Seed: opt.Seed})
	res.SetVars = initial.Sys.Stats().VarsCreated
	vv, src, snk := initial.Sys.EdgeCounts()
	res.InitialEdges = vv + src + snk
	res.InitialNodes = res.SetVars + src + snk // distinct sources/sinks per edge occurrence
	res.InitSCCVars, res.InitSCCMax = initial.Sys.CycleClassStats()
	res.InitialDensity = initial.Sys.CurrentGraphStats().Density

	// Reference pass: IF-Online, used both for the final SCC statistics
	// and to build the oracle. Not part of any experiment's timing (a
	// requested IF-Online run is re-run timed below), but measured so
	// the oracle experiments can report their pass-1 cost.
	refStart := time.Now()
	ref := andersen.Analyze(p.file, andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: opt.Seed, Order: opt.Order})
	refElapsed := time.Since(refStart)
	res.FinalSCCVars, res.FinalSCCMax = ref.Sys.CycleClassStats()
	res.FinalDensity = ref.Sys.CurrentGraphStats().Density
	var oracle *polce.Oracle

	for _, name := range names {
		exp, ok := ExperimentByName(name)
		if !ok {
			return nil, fmt.Errorf("bench: unknown experiment %q", name)
		}
		if exp.Cycles == polce.CycleOracle && oracle == nil {
			buildStart := time.Now()
			oracle = polce.BuildOracle(ref.Sys)
			res.OraclePass1 = refElapsed + time.Since(buildStart)
		}
		res.Runs[name] = runOne(p, exp, oracle, opt, repeat)
	}
	return res, nil
}

// runOne times one experiment configuration, keeping the best-timed of
// repeat runs (the solver is deterministic, so the counters and
// distribution summaries are identical across repeats; only the timings
// and allocation noise vary).
func runOne(p *program, exp Experiment, oracle *polce.Oracle, opt Options, repeat int) Run {
	var best Run
	for i := 0; i < repeat; i++ {
		aOpts := andersen.Options{
			Form:             exp.Form,
			Cycles:           exp.Cycles,
			Seed:             opt.Seed,
			Order:            opt.Order,
			Oracle:           oracle,
			PeriodicInterval: exp.Interval,
			LSWorkers:        opt.LSWorkers,
			Repr:             opt.Repr,
		}
		var sm *telemetry.SolverMetrics
		if opt.Phases {
			sm = telemetry.NewSolverMetrics(telemetry.NewRegistry())
			aOpts.Metrics = sm
		}
		// Settle the heap before timing so a cell is not charged for
		// collecting the previous cell's (or repeat's) floating garbage —
		// with sequential workers the grid otherwise bleeds GC tax from
		// each cell into the next, drowning small deltas on large cells.
		runtime.GC()
		var msBefore runtime.MemStats
		runtime.ReadMemStats(&msBefore)
		start := time.Now()
		r := andersen.Analyze(p.file, aOpts)
		solveElapsed := time.Since(start)
		var lsElapsed time.Duration
		if exp.Form == polce.IF {
			// The paper always includes the least-solution pass in
			// inductive-form timings.
			lsStart := time.Now()
			r.Sys.ComputeLeastSolutions()
			lsElapsed = time.Since(lsStart)
		}
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		// Stats are read after ComputeLeastSolutions so the LS engine
		// counters (levels, union hit rate) describe the pass just timed.
		st := r.Sys.Stats()
		run := Run{
			Edges:      r.Sys.TotalEdges(),
			Work:       st.Work,
			Time:       solveElapsed + lsElapsed,
			Eliminated: st.VarsEliminated,
			Searches:   st.CycleSearches,
			Visits:     st.CycleVisits,
			AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
			SolveTime:  solveElapsed,
			LSTime:     lsElapsed,
		}
		if exp.Form == polce.IF {
			run.LSLevels = st.LSLevels
			run.LSUnionHitRate = st.LSUnionHitRate()
		}
		if opt.VE {
			veStart := time.Now()
			r.Sys.BuildVEClosure(polce.VEOrderMinDegree)
			run.VETime = time.Since(veStart)
		}
		if sm != nil {
			run.ClosureTime, _ = sm.Phases.Get(telemetry.PhaseClosure)
			run.DepthP50 = sm.SearchDepth.Quantile(0.5)
			run.DepthP90 = sm.SearchDepth.Quantile(0.9)
			run.DepthMax = sm.SearchDepth.Max()
		}
		if i == 0 || run.Time < best.Time {
			best = run
		}
	}
	return best
}

// RunSuite measures the experiments across a benchmark list.
func RunSuite(benches []Benchmark, names []string, opt Options) ([]*Result, error) {
	var out []*Result
	for _, b := range benches {
		r, err := RunBenchmark(b, names, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
