package bench

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"polce"
)

// smallGrid is a grid small enough for tests but wide enough to exercise
// form × policy × order × repr fan-out, including a per-cell oracle build.
func smallGrid(t *testing.T) []Cell {
	t.Helper()
	benches := []Benchmark{Suite[0], Suite[1]} // allroots, diff.diffh
	exps := []Experiment{
		Experiments[4], // SF-Online
		Experiments[5], // IF-Online
		Experiments[3], // IF-Oracle: exercises the cell-local reference pass
	}
	orders := []polce.OrderStrategy{polce.OrderRandom, polce.OrderCreation}
	reprs := []polce.StorageRepr{polce.ReprHybrid, polce.ReprCSR}
	cells := Grid(benches, exps, orders, reprs, []int64{1})
	for i := range cells {
		cells[i].Seed = CellSeed(1, cells[i])
	}
	return cells
}

// TestGridDeterministic pins the expansion order and the derived seeds:
// two independent expansions must agree cell for cell.
func TestGridDeterministic(t *testing.T) {
	a, b := smallGrid(t), smallGrid(t)
	if len(a) != len(b) || len(a) != 2*3*2*2 {
		t.Fatalf("grid sizes %d, %d; want %d", len(a), len(b), 2*3*2*2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cell %d differs across expansions: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Distinct coordinates must draw distinct derived seeds — except the
	// repr axis, which deliberately shares the seed so a hybrid cell and
	// its CSR twin are directly comparable.
	seen := map[int64]Cell{}
	for i, c := range a {
		prev, dup := seen[c.Seed]
		if !dup {
			seen[c.Seed] = c
			continue
		}
		twin := c
		twin.Repr = prev.Repr
		if twin != prev {
			t.Errorf("cell %d shares derived seed %d with a non-twin cell %+v", i, c.Seed, prev)
		}
	}
	if len(seen) != len(a)/2 {
		t.Errorf("distinct seeds = %d, want one per repr pair (%d)", len(seen), len(a)/2)
	}
}

// TestRunParallelOrderStableAndDeterministic runs the same grid on one
// worker and on four and checks (a) results come back in input order, and
// (b) every deterministic counter agrees across worker counts — the
// parallel runner must not perturb what it measures.
func TestRunParallelOrderStableAndDeterministic(t *testing.T) {
	cells := smallGrid(t)
	seq := RunParallel(cells, ParallelOptions{Workers: 1, Phases: true})
	par := RunParallel(cells, ParallelOptions{Workers: 4, Phases: true})
	if len(seq) != len(cells) || len(par) != len(cells) {
		t.Fatalf("result lengths %d, %d; want %d", len(seq), len(par), len(cells))
	}
	for i := range cells {
		if par[i].Cell != cells[i] {
			t.Fatalf("result %d holds cell %+v, want input cell %+v (order not stable)", i, par[i].Cell, cells[i])
		}
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("cell %d errored: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		s, p := seq[i].Run, par[i].Run
		if s.Edges != p.Edges || s.Work != p.Work || s.Eliminated != p.Eliminated ||
			s.Searches != p.Searches || s.Visits != p.Visits {
			t.Errorf("cell %d (%s/%s/%s): counters differ across worker counts:\n seq %+v\n par %+v",
				i, cells[i].Bench.Name, cells[i].Exp.Name, cells[i].Order, s, p)
		}
		if s.DepthP50 != p.DepthP50 || s.DepthMax != p.DepthMax {
			t.Errorf("cell %d: depth quantiles differ: seq p50=%v max=%v, par p50=%v max=%v",
				i, s.DepthP50, s.DepthMax, p.DepthP50, p.DepthMax)
		}
	}
	// The oracle cells must actually have eliminated variables (their
	// cell-local reference pass found the cycles for them).
	sawOracle := false
	for i, c := range cells {
		if c.Exp.Cycles == polce.CycleOracle {
			sawOracle = true
			if par[i].Run.Eliminated == 0 {
				t.Errorf("oracle cell %d eliminated nothing; per-cell oracle not built?", i)
			}
		}
	}
	if !sawOracle {
		t.Fatal("grid contained no oracle cell")
	}
}

// TestBaselineRoundTrip checks the committed-baseline JSON writer: every
// successful cell appears, in order, with the phase timings filled in and
// the schema marker present.
func TestBaselineRoundTrip(t *testing.T) {
	cells := smallGrid(t)[:4]
	results := RunParallel(cells, ParallelOptions{Workers: 2, Phases: true})
	b := NewBaseline(results, ParallelOptions{Workers: 2}, time.Unix(1700000000, 0))
	var buf bytes.Buffer
	if err := WriteBaseline(&buf, b); err != nil {
		t.Fatal(err)
	}
	var back Baseline
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("baseline does not round-trip: %v", err)
	}
	if back.Schema != "polce-bench-baseline/3" {
		t.Errorf("schema = %q", back.Schema)
	}
	if len(back.Cells) != len(cells) {
		t.Fatalf("baseline has %d cells, want %d", len(back.Cells), len(cells))
	}
	for i, bc := range back.Cells {
		if bc.Benchmark != cells[i].Bench.Name || bc.Experiment != cells[i].Exp.Name {
			t.Errorf("baseline cell %d is %s/%s, want %s/%s", i, bc.Benchmark, bc.Experiment, cells[i].Bench.Name, cells[i].Exp.Name)
		}
		if bc.TotalNS <= 0 || bc.SolveNS <= 0 {
			t.Errorf("baseline cell %d has empty timings: %+v", i, bc)
		}
		if bc.Edges == 0 || bc.Work == 0 {
			t.Errorf("baseline cell %d has empty counters: %+v", i, bc)
		}
		if bc.Repr != cells[i].Repr.String() {
			t.Errorf("baseline cell %d repr = %q, want %q", i, bc.Repr, cells[i].Repr)
		}
	}
}
