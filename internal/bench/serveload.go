package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polce"
	"polce/internal/serve"
	"polce/internal/telemetry"
)

// ServeLoadOptions configures the service load generator.
type ServeLoadOptions struct {
	// Addr targets an already-running polce-serve instance
	// ("host:port"). Empty self-hosts an in-process server on a loopback
	// port, which is the race-detector-friendly default.
	Addr string
	// Readers is the number of concurrent query goroutines. Zero means 8.
	Readers int
	// Duration is the minimum length of the read phase. Zero means 3s.
	Duration time.Duration
	// MinQueries keeps the run going past Duration until this many queries
	// have completed, so the reported sustained rate is backed by a floor
	// of actual traffic on slow machines too. Zero means 10000; negative
	// disables the floor.
	MinQueries int
	// Batch is the number of constraints per ingestion POST. Zero means 32.
	Batch int
	// Seed is the solver's variable-order seed for the self-hosted server.
	Seed int64
	// Conditional makes each reader a well-behaved re-polling client: it
	// remembers the last ETag it saw per path and sends it back as
	// If-None-Match, so an unchanged graph answers 304 with no body. The
	// report then includes the not-modified ratio — the fraction of reads
	// the server satisfied without rendering a response.
	Conditional bool
	// TracePath, when set, wires a telemetry.Tracer into the self-hosted
	// server, writes every request's spans to this NDJSON file, and appends
	// a trace-derived breakdown to the report: how much of the ingest p50
	// was queue wait versus solve time. Requires self-hosting (empty Addr) —
	// an external server's spans land in its own trace file, not ours.
	TracePath string
}

func (o ServeLoadOptions) withDefaults() ServeLoadOptions {
	if o.Readers <= 0 {
		o.Readers = 8
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.MinQueries == 0 {
		o.MinQueries = 10000
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// serveLoadStats aggregates one run: per-query latencies and error counts
// from the readers, plus the writer's progress.
type serveLoadStats struct {
	mu        sync.Mutex
	latencies []time.Duration

	queries     atomic.Int64
	errors      atomic.Int64
	batches     atomic.Int64
	notModified atomic.Int64
}

func (st *serveLoadStats) record(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, d)
	st.mu.Unlock()
}

func (st *serveLoadStats) percentile(p float64) time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.latencies) == 0 {
		return 0
	}
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	idx := int(p * float64(len(st.latencies)-1))
	return st.latencies[idx]
}

// RunServeLoad races opt.Readers query goroutines against one ingestion
// writer through real HTTP and reports sustained QPS and the p50/p99 query
// latency. With no Addr it self-hosts a serve.Server for the run and
// drains it afterwards, so the whole exercise (including the server) sits
// under the race detector when the binary is built with -race.
func RunServeLoad(w io.Writer, opt ServeLoadOptions) error {
	opt = opt.withDefaults()

	base := "http://" + opt.Addr
	var shutdown func() error
	if opt.TracePath != "" && opt.Addr != "" {
		return fmt.Errorf("serve-load: -serve-trace requires the self-hosted server (leave Addr empty)")
	}
	if opt.Addr == "" {
		// The self-hosted server reads with 2ms bounded staleness: under a
		// saturating writer every graph-version bump would otherwise force
		// an O(vars) snapshot capture per read.
		solverOpt := polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: opt.Seed}
		cfg := serve.Config{
			QueueDepth:       256,
			SnapshotMaxStale: 2 * time.Millisecond,
		}
		var tw *telemetry.TraceWriter
		if opt.TracePath != "" {
			var err error
			if tw, err = telemetry.CreateTrace(opt.TracePath); err != nil {
				return fmt.Errorf("creating trace: %w", err)
			}
			reg := telemetry.NewRegistry()
			sm := telemetry.NewSolverMetrics(reg)
			solverOpt.Metrics = sm
			cfg.Registry = reg
			cfg.Tracer = telemetry.NewTracer(tw)
			cfg.SolverMetrics = sm
		}
		cfg.Solver = polce.New(solverOpt)
		srv := serve.New(cfg)
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		base = "http://" + ln.Addr().String()
		shutdown = func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				return err
			}
			if err := srv.Shutdown(ctx); err != nil {
				return err
			}
			if tw != nil {
				return tw.Close()
			}
			return nil
		}
		fmt.Fprintf(w, "serve-load: self-hosted polce-serve on %s\n", ln.Addr())
	}

	// The default transport keeps only two idle connections per host, which
	// would make every reader redial constantly; give each goroutine its
	// own persistent connection instead.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = opt.Readers + 4
	transport.MaxIdleConnsPerHost = opt.Readers + 4
	client := &http.Client{Timeout: 10 * time.Second, Transport: transport}

	// Seed the program so every reader has a live variable from the start.
	if err := postBatch(client, base, "cons a0\na0 <= v0", true); err != nil {
		if shutdown != nil {
			_ = shutdown()
		}
		return fmt.Errorf("seeding program: %w", err)
	}

	var (
		st        serveLoadStats
		stopWrite = make(chan struct{}) // closed when Duration elapses
		stop      = make(chan struct{}) // closed once the query floor is met too
		wg        sync.WaitGroup
	)

	// The writer streams bounded constraint clusters, opt.Batch constraints
	// per POST: each batch is a fresh small chain seeded by its own atom and
	// linked back to the shared v0 atom. Least solutions stay small this
	// way — one endless chain would make both ingestion and snapshot
	// capture superlinear, which benchmarks the workload's density, not the
	// service. Each batch is synchronous so ingestion paces itself and a
	// full queue shows up as backpressure here rather than dropped work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stopWrite:
				return
			default:
			}
			var b strings.Builder
			fmt.Fprintf(&b, "cons b%d\nb%d <= w%d_0; a0 <= w%d_0\n", k, k, k, k)
			for i := 2; i < opt.Batch; i++ {
				fmt.Fprintf(&b, "w%d_%d <= w%d_%d\n", k, i-2, k, i-1)
			}
			if err := postBatch(client, base, b.String(), true); err != nil {
				st.errors.Add(1)
				return
			}
			st.batches.Add(1)
		}
	}()

	paths := []string{"/v1/least-solution/default/v0", "/v1/points-to/default/v0", "/v1/snapshot/default", "/v1/healthz"}
	for r := 0; r < opt.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			// Each reader remembers the last ETag per path, like a real
			// re-polling client with its own cache.
			etags := make([]string, len(paths))
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				p := i % len(paths)
				req, err := http.NewRequest(http.MethodGet, base+paths[p], nil)
				if err != nil {
					st.errors.Add(1)
					continue
				}
				if opt.Conditional && etags[p] != "" {
					req.Header.Set("If-None-Match", etags[p])
				}
				begin := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					st.errors.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.record(time.Since(begin))
				st.queries.Add(1)
				switch resp.StatusCode {
				case http.StatusOK:
					if tag := resp.Header.Get("ETag"); tag != "" {
						etags[p] = tag
					}
				case http.StatusNotModified:
					st.notModified.Add(1)
				default:
					st.errors.Add(1)
				}
			}
		}(r)
	}

	// Phase one races readers against the writer for Duration; if the
	// query floor is not yet met (slow machine, race-instrumented build),
	// the writer stops and readers keep draining queries against the
	// now-static graph until it is.
	start := time.Now()
	time.Sleep(opt.Duration)
	close(stopWrite)
	for opt.MinQueries > 0 && st.queries.Load() < int64(opt.MinQueries) {
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if shutdown != nil {
		if err := shutdown(); err != nil {
			return fmt.Errorf("draining self-hosted server: %w", err)
		}
	}

	queries := st.queries.Load()
	qps := float64(queries) / elapsed.Seconds()
	fmt.Fprintf(w, "serve-load: %d readers vs 1 writer for %s\n", opt.Readers, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  queries   %10d   (%.0f QPS)\n", queries, qps)
	fmt.Fprintf(w, "  latency   p50 %8s   p99 %8s\n",
		st.percentile(0.50).Round(time.Microsecond), st.percentile(0.99).Round(time.Microsecond))
	fmt.Fprintf(w, "  ingested  %10d batches (%d constraints)\n", st.batches.Load(), st.batches.Load()*int64(opt.Batch))
	if opt.Conditional {
		nm := st.notModified.Load()
		var ratio float64
		if queries > 0 {
			ratio = float64(nm) / float64(queries)
		}
		fmt.Fprintf(w, "  not-mod   %10d   (%.0f%% of reads answered 304 from the ETag)\n", nm, ratio*100)
	}
	fmt.Fprintf(w, "  errors    %10d\n", st.errors.Load())
	if opt.TracePath != "" {
		bd, err := readServeTrace(opt.TracePath)
		if err != nil {
			return fmt.Errorf("serve-load: reading trace: %w", err)
		}
		fmt.Fprintf(w, "  trace     %s: %d spans, %d/%d ingest requests with linked queue-wait+drain spans\n",
			opt.TracePath, bd.spans, bd.linked, bd.ingests)
		fmt.Fprintf(w, "  ingest    p50 http %s, apply wait %s = queue-wait %s + ingest-drain %s + handoff %s (covers %.0f%%)\n",
			bd.p50HTTP.Round(time.Microsecond), bd.p50Await.Round(time.Microsecond),
			bd.p50Wait.Round(time.Microsecond), bd.p50Drain.Round(time.Microsecond),
			bd.p50Handoff.Round(time.Microsecond), bd.coverage*100)
		if bd.linked < bd.ingests {
			return fmt.Errorf("serve-load: %d of %d traced ingest requests missing linked spans", bd.ingests-bd.linked, bd.ingests)
		}
	}
	if st.errors.Load() > 0 {
		return fmt.Errorf("serve-load: %d request error(s)", st.errors.Load())
	}
	return nil
}

// traceBreakdown is what the NDJSON trace says about the write path.
type traceBreakdown struct {
	spans   int
	ingests int // traces whose http root is a constraints request
	linked  int // of those, how many carry queue-wait + ingest-drain children
	p50HTTP, p50Await, p50Wait, p50Drain,
	p50Handoff time.Duration
	// coverage is the median per-request (wait+drain+handoff)/await ratio —
	// computed per request, not from the p50s, because the phases'
	// distributions are skewed differently and medians do not add.
	coverage float64
}

// readServeTrace rebuilds per-request span trees from the trace file and
// reduces the ingest requests to a p50 breakdown: the http root span
// against its queue-wait and ingest-drain children. The two children are
// measured by the server on either side of the queue, so their sum
// accounting for (almost all of) the http span is the end-to-end check
// that the tracing pipeline measures where ingest latency actually goes.
func readServeTrace(path string) (traceBreakdown, error) {
	var bd traceBreakdown
	f, err := os.Open(path)
	if err != nil {
		return bd, err
	}
	defer f.Close()
	recs, err := telemetry.ReadTrace(f)
	if err != nil {
		return bd, err
	}
	var httpDs, awaitDs, waitDs, drainDs, handoffDs []time.Duration
	var ratios []float64
	for _, spans := range telemetry.SpanTree(recs) {
		bd.spans += len(spans)
		var root, await, wait, drain, handoff *telemetry.TraceRecord
		for i := range spans {
			switch spans[i].Name {
			case "http":
				root = &spans[i]
			case "await-apply":
				await = &spans[i]
			case "queue-wait":
				wait = &spans[i]
			case "ingest-drain":
				drain = &spans[i]
			case "result-handoff":
				handoff = &spans[i]
			}
		}
		if root == nil || root.Attrs["route"] != "constraints" {
			continue
		}
		bd.ingests++
		if await == nil || wait == nil || drain == nil ||
			await.Parent != root.Span || wait.Parent != root.Span || drain.Parent != root.Span {
			continue
		}
		bd.linked++
		httpDs = append(httpDs, time.Duration(root.DurMicros)*time.Microsecond)
		awaitDs = append(awaitDs, time.Duration(await.DurMicros)*time.Microsecond)
		waitDs = append(waitDs, time.Duration(wait.DurMicros)*time.Microsecond)
		drainDs = append(drainDs, time.Duration(drain.DurMicros)*time.Microsecond)
		var handoffUs int64
		if handoff != nil {
			handoffUs = handoff.DurMicros
		}
		handoffDs = append(handoffDs, time.Duration(handoffUs)*time.Microsecond)
		if await.DurMicros > 0 {
			ratios = append(ratios, float64(wait.DurMicros+drain.DurMicros+handoffUs)/float64(await.DurMicros))
		}
	}
	bd.p50HTTP = p50(httpDs)
	bd.p50Await = p50(awaitDs)
	bd.p50Wait = p50(waitDs)
	bd.p50Drain = p50(drainDs)
	bd.p50Handoff = p50(handoffDs)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		bd.coverage = ratios[len(ratios)/2]
	}
	return bd, nil
}

func p50(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// postBatch POSTs one SCL program and fails on any non-2xx status.
func postBatch(client *http.Client, base, program string, wait bool) error {
	url := base + "/v1/constraints"
	if wait {
		url += "?wait=1"
	}
	resp, err := client.Post(url, "text/plain", strings.NewReader(program))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST /v1/constraints: %d: %s", resp.StatusCode, body)
	}
	return nil
}
