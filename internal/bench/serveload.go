package bench

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"polce"
	"polce/internal/serve"
)

// ServeLoadOptions configures the service load generator.
type ServeLoadOptions struct {
	// Addr targets an already-running polce-serve instance
	// ("host:port"). Empty self-hosts an in-process server on a loopback
	// port, which is the race-detector-friendly default.
	Addr string
	// Readers is the number of concurrent query goroutines. Zero means 8.
	Readers int
	// Duration is the minimum length of the read phase. Zero means 3s.
	Duration time.Duration
	// MinQueries keeps the run going past Duration until this many queries
	// have completed, so the reported sustained rate is backed by a floor
	// of actual traffic on slow machines too. Zero means 10000; negative
	// disables the floor.
	MinQueries int
	// Batch is the number of constraints per ingestion POST. Zero means 32.
	Batch int
	// Seed is the solver's variable-order seed for the self-hosted server.
	Seed int64
}

func (o ServeLoadOptions) withDefaults() ServeLoadOptions {
	if o.Readers <= 0 {
		o.Readers = 8
	}
	if o.Duration <= 0 {
		o.Duration = 3 * time.Second
	}
	if o.MinQueries == 0 {
		o.MinQueries = 10000
	}
	if o.Batch <= 0 {
		o.Batch = 32
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// serveLoadStats aggregates one run: per-query latencies and error counts
// from the readers, plus the writer's progress.
type serveLoadStats struct {
	mu        sync.Mutex
	latencies []time.Duration

	queries atomic.Int64
	errors  atomic.Int64
	batches atomic.Int64
}

func (st *serveLoadStats) record(d time.Duration) {
	st.mu.Lock()
	st.latencies = append(st.latencies, d)
	st.mu.Unlock()
}

func (st *serveLoadStats) percentile(p float64) time.Duration {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.latencies) == 0 {
		return 0
	}
	sort.Slice(st.latencies, func(i, j int) bool { return st.latencies[i] < st.latencies[j] })
	idx := int(p * float64(len(st.latencies)-1))
	return st.latencies[idx]
}

// RunServeLoad races opt.Readers query goroutines against one ingestion
// writer through real HTTP and reports sustained QPS and the p50/p99 query
// latency. With no Addr it self-hosts a serve.Server for the run and
// drains it afterwards, so the whole exercise (including the server) sits
// under the race detector when the binary is built with -race.
func RunServeLoad(w io.Writer, opt ServeLoadOptions) error {
	opt = opt.withDefaults()

	base := "http://" + opt.Addr
	var shutdown func() error
	if opt.Addr == "" {
		// The self-hosted server reads with 2ms bounded staleness: under a
		// saturating writer every graph-version bump would otherwise force
		// an O(vars) snapshot capture per read.
		srv := serve.New(serve.Config{
			Solver:           polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: opt.Seed}),
			QueueDepth:       256,
			SnapshotMaxStale: 2 * time.Millisecond,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		httpSrv := &http.Server{Handler: srv.Handler()}
		go httpSrv.Serve(ln)
		base = "http://" + ln.Addr().String()
		shutdown = func() error {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := httpSrv.Shutdown(ctx); err != nil {
				return err
			}
			return srv.Shutdown(ctx)
		}
		fmt.Fprintf(w, "serve-load: self-hosted polce-serve on %s\n", ln.Addr())
	}

	// The default transport keeps only two idle connections per host, which
	// would make every reader redial constantly; give each goroutine its
	// own persistent connection instead.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = opt.Readers + 4
	transport.MaxIdleConnsPerHost = opt.Readers + 4
	client := &http.Client{Timeout: 10 * time.Second, Transport: transport}

	// Seed the program so every reader has a live variable from the start.
	if err := postBatch(client, base, "cons a0\na0 <= v0", true); err != nil {
		if shutdown != nil {
			_ = shutdown()
		}
		return fmt.Errorf("seeding program: %w", err)
	}

	var (
		st        serveLoadStats
		stopWrite = make(chan struct{}) // closed when Duration elapses
		stop      = make(chan struct{}) // closed once the query floor is met too
		wg        sync.WaitGroup
	)

	// The writer streams bounded constraint clusters, opt.Batch constraints
	// per POST: each batch is a fresh small chain seeded by its own atom and
	// linked back to the shared v0 atom. Least solutions stay small this
	// way — one endless chain would make both ingestion and snapshot
	// capture superlinear, which benchmarks the workload's density, not the
	// service. Each batch is synchronous so ingestion paces itself and a
	// full queue shows up as backpressure here rather than dropped work.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; ; k++ {
			select {
			case <-stopWrite:
				return
			default:
			}
			var b strings.Builder
			fmt.Fprintf(&b, "cons b%d\nb%d <= w%d_0; a0 <= w%d_0\n", k, k, k, k)
			for i := 2; i < opt.Batch; i++ {
				fmt.Fprintf(&b, "w%d_%d <= w%d_%d\n", k, i-2, k, i-1)
			}
			if err := postBatch(client, base, b.String(), true); err != nil {
				st.errors.Add(1)
				return
			}
			st.batches.Add(1)
		}
	}()

	paths := []string{"/v1/least-solution/v0", "/v1/points-to/v0", "/v1/snapshot", "/v1/healthz"}
	for r := 0; r < opt.Readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				begin := time.Now()
				resp, err := client.Get(base + paths[i%len(paths)])
				if err != nil {
					st.errors.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				st.record(time.Since(begin))
				st.queries.Add(1)
				if resp.StatusCode != http.StatusOK {
					st.errors.Add(1)
				}
			}
		}(r)
	}

	// Phase one races readers against the writer for Duration; if the
	// query floor is not yet met (slow machine, race-instrumented build),
	// the writer stops and readers keep draining queries against the
	// now-static graph until it is.
	start := time.Now()
	time.Sleep(opt.Duration)
	close(stopWrite)
	for opt.MinQueries > 0 && st.queries.Load() < int64(opt.MinQueries) {
		time.Sleep(50 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	if shutdown != nil {
		if err := shutdown(); err != nil {
			return fmt.Errorf("draining self-hosted server: %w", err)
		}
	}

	queries := st.queries.Load()
	qps := float64(queries) / elapsed.Seconds()
	fmt.Fprintf(w, "serve-load: %d readers vs 1 writer for %s\n", opt.Readers, elapsed.Round(time.Millisecond))
	fmt.Fprintf(w, "  queries   %10d   (%.0f QPS)\n", queries, qps)
	fmt.Fprintf(w, "  latency   p50 %8s   p99 %8s\n",
		st.percentile(0.50).Round(time.Microsecond), st.percentile(0.99).Round(time.Microsecond))
	fmt.Fprintf(w, "  ingested  %10d batches (%d constraints)\n", st.batches.Load(), st.batches.Load()*int64(opt.Batch))
	fmt.Fprintf(w, "  errors    %10d\n", st.errors.Load())
	if st.errors.Load() > 0 {
		return fmt.Errorf("serve-load: %d request error(s)", st.errors.Load())
	}
	return nil
}

// postBatch POSTs one SCL program and fails on any non-2xx status.
func postBatch(client *http.Client, base, program string, wait bool) error {
	url := base + "/v1/constraints"
	if wait {
		url += "?wait=1"
	}
	resp, err := client.Post(url, "text/plain", strings.NewReader(program))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("POST /v1/constraints: %d: %s", resp.StatusCode, body)
	}
	return nil
}
