package bench

import (
	"strings"
	"testing"
	"time"
)

// TestRunServeLoad smoke-tests the load generator end to end on a short
// self-hosted run: it must finish without request errors and report its
// query count and latency percentiles.
func TestRunServeLoad(t *testing.T) {
	var out strings.Builder
	err := RunServeLoad(&out, ServeLoadOptions{
		Readers:    4,
		Duration:   150 * time.Millisecond,
		Batch:      8,
		MinQueries: -1, // keep the smoke test fast on any machine
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("RunServeLoad: %v\n%s", err, out.String())
	}
	for _, want := range []string{"self-hosted polce-serve", "QPS", "p50", "p99", "errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}
