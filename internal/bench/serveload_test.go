package bench

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestRunServeLoad smoke-tests the load generator end to end on a short
// self-hosted run: it must finish without request errors and report its
// query count and latency percentiles.
func TestRunServeLoad(t *testing.T) {
	var out strings.Builder
	err := RunServeLoad(&out, ServeLoadOptions{
		Readers:    4,
		Duration:   150 * time.Millisecond,
		Batch:      8,
		MinQueries: -1, // keep the smoke test fast on any machine
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("RunServeLoad: %v\n%s", err, out.String())
	}
	for _, want := range []string{"self-hosted polce-serve", "QPS", "p50", "p99", "errors"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}

// TestRunServeLoadConditional runs the generator with re-polling readers:
// every reader sends If-None-Match from its last-seen ETag, and because the
// query floor keeps the readers draining after the writer stops, some polls
// must hit an unchanged graph and come back 304.
func TestRunServeLoadConditional(t *testing.T) {
	var out strings.Builder
	err := RunServeLoad(&out, ServeLoadOptions{
		Readers:     4,
		Duration:    150 * time.Millisecond,
		Batch:       8,
		MinQueries:  1500, // past the write phase: static graph, guaranteed 304s
		Seed:        1,
		Conditional: true,
	})
	if err != nil {
		t.Fatalf("RunServeLoad: %v\n%s", err, out.String())
	}
	report := out.String()
	m := regexp.MustCompile(`not-mod\s+(\d+)`).FindStringSubmatch(report)
	if m == nil {
		t.Fatalf("report missing the not-mod line:\n%s", report)
	}
	if n, _ := strconv.Atoi(m[1]); n == 0 {
		t.Errorf("conditional run saw no 304s:\n%s", report)
	}
}

// TestRunServeLoadTraced runs the generator with request tracing on and
// checks the trace-derived breakdown end to end: RunServeLoad itself fails
// if any traced ingest request is missing its linked queue-wait and
// ingest-drain spans, and the breakdown must decompose the ingest p50 into
// phases that substantially account for it.
func TestRunServeLoadTraced(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "serve.trace.ndjson")
	var out strings.Builder
	err := RunServeLoad(&out, ServeLoadOptions{
		Readers:    4,
		Duration:   200 * time.Millisecond,
		Batch:      8,
		MinQueries: -1,
		Seed:       1,
		TracePath:  tracePath,
	})
	if err != nil {
		t.Fatalf("RunServeLoad: %v\n%s", err, out.String())
	}
	report := out.String()
	for _, want := range []string{"ingest requests with linked queue-wait+drain spans", "p50 http", "queue-wait", "ingest-drain"} {
		if !strings.Contains(report, want) {
			t.Errorf("traced report missing %q:\n%s", want, report)
		}
	}
	bd, err := readServeTrace(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if bd.ingests == 0 || bd.linked != bd.ingests {
		t.Errorf("trace has %d/%d linked ingest requests, want all of a nonzero count", bd.linked, bd.ingests)
	}
	if bd.p50HTTP <= 0 {
		t.Errorf("p50 http span = %v, want positive", bd.p50HTTP)
	}
	// queue-wait + drain + handoff are all measured inside the handler's
	// await interval, so their sum must substantially account for it —
	// substantially less means the pipeline lost time somewhere, and much
	// more means double-counting. The slack absorbs p50-of-sums vs
	// sum-of-p50s skew at microsecond scale.
	if bd.coverage < 0.75 || bd.coverage > 1.25 {
		t.Errorf("breakdown covers %.0f%% of the ingest apply wait, want 75%%-125%%\n%s", bd.coverage*100, report)
	}
}
