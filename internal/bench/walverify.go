package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"polce/internal/wal"
	"polce/internal/walreplay"
)

// WALVerifyOptions configures RunWALVerify.
type WALVerifyOptions struct {
	// Dir is the constraint-log directory (the -wal directory of a
	// polce-serve run).
	Dir string
	// ManifestPath is where the reference manifest lives. Empty means
	// <Dir>/manifest.json. A missing manifest is recorded (first run); an
	// existing one is compared against (subsequent runs).
	ManifestPath string
	// Samples bounds the least solutions recorded in the manifest (0 = 64).
	Samples int
}

// RunWALVerify replays a constraint log standalone — same parse → lower →
// solve path the server uses, under the options pinned in the log's meta —
// and fingerprints the recovered graph: version, partition signature,
// sampled least solutions, mutation counters. On the first run the
// fingerprint is recorded as the manifest; on later runs it is compared
// field by field, and any divergence (a lost frame, a reordered batch, a
// mismatched seed) fails with the exact mismatches. Replay is read-only on
// the log: a torn tail is reported, not truncated.
func RunWALVerify(out io.Writer, o WALVerifyOptions) error {
	meta, err := wal.ReadMeta(o.Dir)
	if err != nil {
		return fmt.Errorf("reading log meta: %w", err)
	}
	opt, err := walreplay.OptionsFromMeta(meta)
	if err != nil {
		return err
	}
	rec, err := wal.ReadDir(o.Dir)
	if err != nil {
		return fmt.Errorf("scanning log: %w", err)
	}
	fmt.Fprintf(out, "wal-verify: %s\n", o.Dir)
	fmt.Fprintf(out, "  options:  form=%s cycles=%s seed=%s\n", meta["form"], meta["cycles"], meta["seed"])
	fmt.Fprintf(out, "  log:      %d frames, %d bytes, last seq %d\n", len(rec.Frames), rec.Bytes, rec.LastSeq)
	if rec.TruncatedBytes > 0 {
		fmt.Fprintf(out, "  torn tail: %d trailing bytes are not intact frames (a restart with -wal would truncate them)\n",
			rec.TruncatedBytes)
	}

	solver, _, constraints, err := walreplay.Replay(rec.Frames, opt)
	if err != nil {
		return err
	}
	m := walreplay.Fingerprint(solver, o.Samples)
	m.Options = meta
	m.Frames = len(rec.Frames)
	m.LastSeq = rec.LastSeq
	m.Constraints = constraints
	fmt.Fprintf(out, "  replayed: %d constraints -> version %d, %d vars, %d errors\n",
		constraints, m.Version, m.Vars, m.Errors)
	if m.Retractions > 0 {
		fmt.Fprintf(out, "  retracted: %d batches (cone %d vars, %d constraints re-drained)\n",
			m.Retractions, m.RetractConeVars, m.RetractReplayed)
	}
	fmt.Fprintf(out, "  partition: %s (%d LS samples)\n", m.PartitionSig, len(m.Samples))

	path := o.ManifestPath
	if path == "" {
		path = filepath.Join(o.Dir, "manifest.json")
	}
	raw, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		// Record mode: this run becomes the reference.
		blob, err := json.MarshalIndent(m, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("recording manifest: %w", err)
		}
		fmt.Fprintf(out, "  recorded manifest: %s\n", path)
		return nil
	}
	if err != nil {
		return fmt.Errorf("reading manifest: %w", err)
	}
	var want walreplay.Manifest
	if err := json.Unmarshal(raw, &want); err != nil {
		return fmt.Errorf("decoding manifest %s: %w", path, err)
	}
	if diffs := want.Diff(m); len(diffs) != 0 {
		fmt.Fprintf(out, "  MISMATCH against %s:\n", path)
		for _, d := range diffs {
			fmt.Fprintf(out, "    %s\n", d)
		}
		return fmt.Errorf("recovered graph diverges from manifest %s in %d field(s)", path, len(diffs))
	}
	fmt.Fprintf(out, "  manifest OK: recovered graph matches %s\n", path)
	return nil
}
