package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polce"
	"polce/internal/serve"
	"polce/internal/wal"
	"polce/internal/walreplay"
)

// TestRunRetract smoke-tests the retraction benchmark on both storage
// representations; RunRetract self-verifies against a from-scratch solve,
// so a nil error is the whole assertion.
func TestRunRetract(t *testing.T) {
	for _, repr := range []polce.StorageRepr{polce.ReprHybrid, polce.ReprCSR} {
		var out bytes.Buffer
		err := RunRetract(&out, RetractOptions{
			Clusters: 24, ClusterSize: 8, Frac: 0.25, Seed: 3, Repr: repr,
		})
		if err != nil {
			t.Fatalf("%v: RunRetract: %v\n%s", repr, err, out.String())
		}
		text := out.String()
		for _, want := range []string{"verify:   OK", "counters: retracts=6"} {
			if !strings.Contains(text, want) {
				t.Fatalf("%v: report missing %q:\n%s", repr, want, text)
			}
		}
	}
}

// TestWALVerifyRetractHeavy runs the offline log audit over a log in which
// half the batches were retracted: the manifest must record the retraction
// counters, and a second verification pass against the recorded manifest
// must find the replay deterministic.
func TestWALVerifyRetractHeavy(t *testing.T) {
	opt := polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 7, Retractable: true}
	dir := t.TempDir()
	log, _, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways, Meta: walreplay.OptionsMeta(opt)})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{Solver: polce.New(opt), WAL: log})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	var handles []uint64
	for i := 0; i < 10; i++ {
		prog := fmt.Sprintf("cons a%d\na%d <= V%d\nV%d <= S", i, i, i, i)
		resp, err := http.Post(base+"/v1/constraints/default?wait=1", "text/plain", strings.NewReader(prog))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d = %d %v", i, resp.StatusCode, body)
		}
		handles = append(handles, uint64(body["batch"].(float64)))
	}
	for i := 0; i < len(handles); i += 2 {
		req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", base, handles[i]), nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE %d = %d", handles[i], resp.StatusCode)
		}
	}
	httpSrv.Close()
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := RunWALVerify(&out, WALVerifyOptions{Dir: dir}); err != nil {
		t.Fatalf("record pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "retracted: 5 batches") {
		t.Fatalf("record pass did not report retractions:\n%s", out.String())
	}

	raw, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m walreplay.Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m.Retractions != 5 || m.RetractConeVars == 0 {
		t.Fatalf("manifest counters = retractions %d, cone %d; want 5 and nonzero", m.Retractions, m.RetractConeVars)
	}

	out.Reset()
	if err := RunWALVerify(&out, WALVerifyOptions{Dir: dir}); err != nil {
		t.Fatalf("verify pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "manifest OK") {
		t.Fatalf("verify pass did not confirm the manifest:\n%s", out.String())
	}
}
