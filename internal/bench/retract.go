package bench

import (
	"fmt"
	"io"
	"time"

	"polce"
	"polce/internal/walreplay"
)

// RetractOptions configures RunRetract.
type RetractOptions struct {
	// Clusters is the number of constraint batches; each batch is one
	// mostly-independent cluster of variables, so the dirty cone of a
	// retraction is a locality measurement, not the whole graph. Zero
	// means 64.
	Clusters int
	// ClusterSize is the number of variables per cluster. Zero means 12.
	ClusterSize int
	// Frac is the fraction of batches retracted (every ⌈1/Frac⌉-th batch,
	// deterministically). Zero means 0.10.
	Frac float64
	// Seed is the solver's variable-order seed.
	Seed int64
	// Repr picks the adjacency storage representation.
	Repr polce.StorageRepr
}

func (o RetractOptions) withDefaults() RetractOptions {
	if o.Clusters <= 0 {
		o.Clusters = 64
	}
	if o.ClusterSize <= 0 {
		o.ClusterSize = 12
	}
	if o.Frac <= 0 {
		o.Frac = 0.10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// retractWorkload builds the clustered batch list against s: each batch
// seeds its cluster with an atom, chains the cluster's variables, closes a
// small cycle, and every third cluster links back into its predecessor —
// enough entanglement that some retractions must replay a surviving
// neighbour, as real incremental workloads do. Batches whose index keep
// rejects are constructed but not applied — every variable and constructor
// is still created in the original order, so two runs with different keeps
// share the seeded variable order o(·). Skipped batches report id 0.
func retractWorkload(s *polce.Solver, o RetractOptions, keep func(c int) bool) []polce.BatchID {
	vars := make([][]*polce.Var, o.Clusters)
	for c := range vars {
		vars[c] = make([]*polce.Var, o.ClusterSize)
		for i := range vars[c] {
			vars[c][i] = s.Fresh(fmt.Sprintf("c%d_v%d", c, i))
		}
	}
	ids := make([]polce.BatchID, o.Clusters)
	for c := 0; c < o.Clusters; c++ {
		atom := polce.NewTerm(polce.NewConstructor(fmt.Sprintf("a%d", c)))
		batch := []polce.Constraint{{L: atom, R: vars[c][0]}}
		for i := 1; i < o.ClusterSize; i++ {
			batch = append(batch, polce.Constraint{L: vars[c][i-1], R: vars[c][i]})
		}
		// A small internal cycle exercises collapse bookkeeping.
		batch = append(batch, polce.Constraint{L: vars[c][o.ClusterSize-1], R: vars[c][o.ClusterSize/2]})
		if c%3 == 2 {
			batch = append(batch, polce.Constraint{L: vars[c-1][o.ClusterSize-1], R: vars[c][0]})
		}
		if keep(c) {
			ids[c] = s.AddBatch(batch)
		}
	}
	return ids
}

// RunRetract measures the tentpole claim end to end: on a clustered
// instance, retracting a fraction of the batches re-drains only each
// retraction's dirty cone — a small slice of the graph — rather than
// re-solving from scratch, and the surviving state is bit-identical to a
// from-scratch solve of the surviving batches. The cone sizes come from
// the solver's own retraction telemetry counters.
func RunRetract(w io.Writer, o RetractOptions) error {
	o = o.withDefaults()
	opt := polce.Options{
		Form: polce.IF, Cycles: polce.CycleOnline,
		Seed: o.Seed, Repr: o.Repr, Retractable: true,
	}

	s := polce.New(opt)
	buildStart := time.Now()
	ids := retractWorkload(s, o, func(int) bool { return true })
	buildTime := time.Since(buildStart)

	stride := int(1.0/o.Frac + 0.5)
	if stride < 1 {
		stride = 1
	}
	var targets []polce.BatchID
	retracted := make(map[polce.BatchID]bool)
	for c := 0; c < o.Clusters; c += stride {
		targets = append(targets, ids[c])
		retracted[ids[c]] = true
	}

	fmt.Fprintf(w, "retract: %d clusters x %d vars, frac %.2f (%d batches retracted), repr %s, seed %d\n",
		o.Clusters, o.ClusterSize, o.Frac, len(targets), opt.Repr, o.Seed)
	fmt.Fprintf(w, "  build:    %d batches, %d vars, %d edge attempts in %s\n",
		o.Clusters, s.NumCreated(), s.Stats().Work, buildTime.Round(time.Microsecond))

	var (
		retractTime time.Duration
		dirtySum    int64
		replayedCs  int64
	)
	for _, id := range targets {
		rep, err := s.RetractBatch(id)
		if err != nil {
			return fmt.Errorf("retract %d: %w", id, err)
		}
		retractTime += rep.Duration
		dirtySum += int64(rep.DirtyVars)
		replayedCs += int64(rep.ReplayedConstraints)
	}
	stats := s.Stats()
	totalVars := int64(s.NumCreated())
	coneFrac := float64(dirtySum) / float64(totalVars*int64(len(targets)))
	fmt.Fprintf(w, "  retract:  %d batches in %s; avg cone %.1f vars (%.1f%% of %d), %d constraints replayed\n",
		len(targets), retractTime.Round(time.Microsecond),
		float64(dirtySum)/float64(len(targets)), coneFrac*100, totalVars, replayedCs)
	fmt.Fprintf(w, "  counters: retracts=%d cone_vars=%d replayed=%d\n",
		stats.Retractions, stats.RetractConeVars, stats.RetractReplayed)
	if stats.Retractions != int64(len(targets)) || stats.RetractConeVars != dirtySum {
		return fmt.Errorf("telemetry counters disagree with reports: retracts=%d cone_vars=%d, want %d/%d",
			stats.Retractions, stats.RetractConeVars, len(targets), dirtySum)
	}
	// The point of the partial re-drain: the summed cones must stay well
	// under re-solving the whole graph once per retraction.
	if coneFrac >= 0.5 {
		return fmt.Errorf("dirty cones cover %.0f%% of the graph per retraction — partial re-drain is not partial", coneFrac*100)
	}

	// Reference: a from-scratch solve of the surviving batches, in order,
	// on a fresh solver with the same options but no retraction tracking.
	refOpt := opt
	refOpt.Retractable = false
	ref := polce.New(refOpt)
	retractWorkload(ref, o, func(c int) bool { return !retracted[ids[c]] })
	// Compare state, not history: the retract run's cumulative counters
	// (version, work, cycle searches, retraction telemetry) record the
	// retractions themselves and legitimately exceed the reference's.
	if diffs := walreplay.Fingerprint(s, 64).StateDiff(walreplay.Fingerprint(ref, 64)); len(diffs) != 0 {
		fmt.Fprintf(w, "  MISMATCH against from-scratch solve of survivors:\n")
		for _, d := range diffs {
			fmt.Fprintf(w, "    %s\n", d)
		}
		return fmt.Errorf("retracted graph diverges from reference in %d field(s)", len(diffs))
	}
	fmt.Fprintf(w, "  verify:   OK — bit-identical to a from-scratch solve of the %d surviving batches\n",
		o.Clusters-len(targets))
	return nil
}
