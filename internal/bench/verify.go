package bench

import (
	"fmt"
	"io"
	"sort"

	"polce"
	"polce/internal/andersen"
)

// VerifyLeastSolutions checks the least-solution engine's determinism
// claim end-to-end: for every benchmark it runs IF-Online twice — once
// with the sequential pass (LSWorkers = 1) and once with the given worker
// count — and compares every location's LeastSolution term sequence
// exactly, order included. The two runs use separate solvers on the same
// deterministic program, so their location lists align by index. Any
// divergence is reported and an error returned; this is the CI gate
// behind the engine's "bit-identical at any worker count" contract. Both
// runs use the given storage representation, so a `-repr csr` invocation
// gates the delta-worklist path the same way.
func VerifyLeastSolutions(w io.Writer, benches []Benchmark, seed int64, workers int, repr polce.StorageRepr) error {
	if workers <= 1 {
		return fmt.Errorf("bench: verify needs workers > 1 (got %d)", workers)
	}
	bad := 0
	for _, b := range benches {
		p, err := load(b)
		if err != nil {
			return err
		}
		mismatches, locs, err := verifyOne(p, seed, workers, repr)
		if err != nil {
			return err
		}
		if mismatches == 0 {
			fmt.Fprintf(w, "%-14s ok: %d locations identical (1 vs %d workers, %s)\n", b.Name, locs, workers, repr)
			continue
		}
		bad += mismatches
		fmt.Fprintf(w, "%-14s FAIL: %d of %d locations differ (1 vs %d workers, %s)\n", b.Name, mismatches, locs, workers, repr)
	}
	if bad > 0 {
		return fmt.Errorf("bench: parallel least-solution pass diverged on %d locations", bad)
	}
	return nil
}

// verifyOne compares the sequential and parallel least solutions of one
// program and returns the number of mismatching locations.
func verifyOne(p *program, seed int64, workers int, repr polce.StorageRepr) (mismatches, locs int, err error) {
	opts := andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed, Repr: repr}
	opts.LSWorkers = 1
	seq := andersen.Analyze(p.file, opts)
	opts.LSWorkers = workers
	par := andersen.Analyze(p.file, opts)
	seq.Sys.ComputeLeastSolutions()
	par.Sys.ComputeLeastSolutions()
	if len(seq.Locations) != len(par.Locations) {
		return 0, 0, fmt.Errorf("bench: location counts differ (%d vs %d); analysis is not deterministic", len(seq.Locations), len(par.Locations))
	}
	for i, sl := range seq.Locations {
		pl := par.Locations[i]
		a := seq.Sys.LeastSolution(sl.Content)
		b := par.Sys.LeastSolution(pl.Content)
		if !sameTermStrings(a, b) {
			mismatches++
		}
	}
	return mismatches, len(seq.Locations), nil
}

// VerifyVEClosures checks the vertex-elimination closure's oracle
// property end-to-end: for every benchmark it runs IF-Online under the
// given storage representation, builds a closed-world VE closure with
// each elimination order, and compares every location's closure least
// solution — as a set — against the online engine's. Closure and online
// results come from the same solver, so terms compare by identity.
func VerifyVEClosures(w io.Writer, benches []Benchmark, seed int64, repr polce.StorageRepr) error {
	bad := 0
	for _, b := range benches {
		p, err := load(b)
		if err != nil {
			return err
		}
		res := andersen.Analyze(p.file, andersen.Options{
			Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed, Repr: repr,
		})
		res.Sys.ComputeLeastSolutions()
		for _, ord := range []polce.VEOrder{polce.VEOrderMinDegree, polce.VEOrderTotal} {
			ve := res.Sys.BuildVEClosure(ord)
			mismatches := 0
			for _, l := range res.Locations {
				want := sortedTermSet(res.Sys.LeastSolution(l.Content))
				if !sameTerms(ve.LeastSolution(l.Content), want) {
					mismatches++
				}
			}
			if mismatches == 0 {
				fmt.Fprintf(w, "%-14s ok: %d locations identical (ve %s vs online, %s)\n",
					b.Name, len(res.Locations), ve.Order(), repr)
				continue
			}
			bad += mismatches
			fmt.Fprintf(w, "%-14s FAIL: %d of %d locations differ (ve %s vs online, %s)\n",
				b.Name, mismatches, len(res.Locations), ve.Order(), repr)
		}
	}
	if bad > 0 {
		return fmt.Errorf("bench: vertex-elimination closure diverged on %d locations", bad)
	}
	return nil
}

// sortedTermSet renders a least solution in the VE closure's reporting
// form: Seq-sorted with duplicates removed.
func sortedTermSet(src []*polce.Term) []*polce.Term {
	out := make([]*polce.Term, len(src))
	copy(out, src)
	sort.Slice(out, func(a, b int) bool { return out[a].Seq() < out[b].Seq() })
	w := 0
	for i, t := range out {
		if i > 0 && t == out[i-1] {
			continue
		}
		out[w] = t
		w++
	}
	return out[:w]
}

// sameTerms compares two term sequences by identity, in order.
func sameTerms(a, b []*polce.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sameTermStrings compares two term sequences by rendered content, in
// order. The runs use distinct *Term pointers, so identity comparison is
// not available across systems.
func sameTermStrings(a, b []*polce.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}
