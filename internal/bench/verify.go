package bench

import (
	"fmt"
	"io"

	"polce"
	"polce/internal/andersen"
)

// VerifyLeastSolutions checks the least-solution engine's determinism
// claim end-to-end: for every benchmark it runs IF-Online twice — once
// with the sequential pass (LSWorkers = 1) and once with the given worker
// count — and compares every location's LeastSolution term sequence
// exactly, order included. The two runs use separate solvers on the same
// deterministic program, so their location lists align by index. Any
// divergence is reported and an error returned; this is the CI gate
// behind the engine's "bit-identical at any worker count" contract.
func VerifyLeastSolutions(w io.Writer, benches []Benchmark, seed int64, workers int) error {
	if workers <= 1 {
		return fmt.Errorf("bench: verify needs workers > 1 (got %d)", workers)
	}
	bad := 0
	for _, b := range benches {
		p, err := load(b)
		if err != nil {
			return err
		}
		mismatches, locs, err := verifyOne(p, seed, workers)
		if err != nil {
			return err
		}
		if mismatches == 0 {
			fmt.Fprintf(w, "%-14s ok: %d locations identical (1 vs %d workers)\n", b.Name, locs, workers)
			continue
		}
		bad += mismatches
		fmt.Fprintf(w, "%-14s FAIL: %d of %d locations differ (1 vs %d workers)\n", b.Name, mismatches, locs, workers)
	}
	if bad > 0 {
		return fmt.Errorf("bench: parallel least-solution pass diverged on %d locations", bad)
	}
	return nil
}

// verifyOne compares the sequential and parallel least solutions of one
// program and returns the number of mismatching locations.
func verifyOne(p *program, seed int64, workers int) (mismatches, locs int, err error) {
	opts := andersen.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: seed}
	opts.LSWorkers = 1
	seq := andersen.Analyze(p.file, opts)
	opts.LSWorkers = workers
	par := andersen.Analyze(p.file, opts)
	seq.Sys.ComputeLeastSolutions()
	par.Sys.ComputeLeastSolutions()
	if len(seq.Locations) != len(par.Locations) {
		return 0, 0, fmt.Errorf("bench: location counts differ (%d vs %d); analysis is not deterministic", len(seq.Locations), len(par.Locations))
	}
	for i, sl := range seq.Locations {
		pl := par.Locations[i]
		a := seq.Sys.LeastSolution(sl.Content)
		b := par.Sys.LeastSolution(pl.Content)
		if !sameTermStrings(a, b) {
			mismatches++
		}
	}
	return mismatches, len(seq.Locations), nil
}

// sameTermStrings compares two term sequences by rendered content, in
// order. The runs use distinct *Term pointers, so identity comparison is
// not available across systems.
func sameTermStrings(a, b []*polce.Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			return false
		}
	}
	return true
}
