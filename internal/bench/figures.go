package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// The figures are rendered as aligned data series (x column plus one
// column per curve) followed by a one-line statement of the shape the
// paper's plot shows, so a reader can check the qualitative claim without
// a plotting tool.

// Figure7 plots analysis time against program size for the two
// no-elimination configurations. The paper's shape: both blow up past
// ~15000 AST nodes, and SF-Plain generally beats IF-Plain (cycles add many
// redundant variable-variable edges under IF).
func Figure7(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Figure 7: Analysis time without cycle elimination vs program size")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "AST Nodes\tSF-Plain (s)\tIF-Plain (s)\tBenchmark\t")
	var sfWins int
	var n int
	for _, r := range results {
		sf, okSF := r.Runs["SF-Plain"]
		ifp, okIF := r.Runs["IF-Plain"]
		if !okSF || !okIF {
			continue
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t\n", r.ASTNodes, secs(sf.Time), secs(ifp.Time), r.Bench.Name)
		n++
		if sf.Time <= ifp.Time {
			sfWins++
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: SF-Plain ≤ IF-Plain on %d/%d benchmarks (paper: SF generally wins without elimination).\n", sfWins, n)
}

// Figure8 plots the oracle and online configurations. The paper's shape:
// IF-Oracle fastest, then SF-Oracle, IF-Online close behind the oracles,
// SF-Online clearly slower; all scale far better than the plain runs.
func Figure8(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Figure 8: Analysis time with oracle and online cycle elimination vs program size")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "AST Nodes\tIF-Oracle (s)\tSF-Oracle (s)\tIF-Online (s)\tSF-Online (s)\tBenchmark\t")
	var ifOnNearOracle, n int
	for _, r := range results {
		ifo, ok1 := r.Runs["IF-Oracle"]
		sfo, ok2 := r.Runs["SF-Oracle"]
		ifn, ok3 := r.Runs["IF-Online"]
		sfn, ok4 := r.Runs["SF-Online"]
		if !ok1 || !ok2 || !ok3 || !ok4 {
			continue
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t\n", r.ASTNodes,
			secs(ifo.Time), secs(sfo.Time), secs(ifn.Time), secs(sfn.Time), r.Bench.Name)
		n++
		if ifn.Time <= 3*ifo.Time {
			ifOnNearOracle++
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: IF-Online within 3x of IF-Oracle on %d/%d benchmarks (paper: online stays close to the oracle).\n", ifOnNearOracle, n)
}

// Figure9 plots speedups over the standard implementation (SF-Plain)
// against SF-Plain's absolute time. The paper's shape: speedups grow with
// problem size, exceeding an order of magnitude for large programs, while
// very small programs may see slowdowns.
func Figure9(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Figure 9: Speedup over SF-Plain vs SF-Plain execution time")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "SF-Plain (s)\tIF-Online speedup\tSF-Online speedup\tBenchmark\t")
	var maxSpeed float64
	for _, r := range results {
		sf, ok1 := r.Runs["SF-Plain"]
		ifn, ok2 := r.Runs["IF-Online"]
		sfn, ok3 := r.Runs["SF-Online"]
		if !ok1 || !ok2 || !ok3 {
			continue
		}
		s1 := sf.Time.Seconds() / ifn.Time.Seconds()
		s2 := sf.Time.Seconds() / sfn.Time.Seconds()
		if s1 > maxSpeed {
			maxSpeed = s1
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%s\t\n", secs(sf.Time), s1, s2, r.Bench.Name)
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: best IF-Online speedup %.1fx (paper: growing with size, >10x for large programs).\n", maxSpeed)
}

// Figure10 plots the ratio of SF-Online to IF-Online times. The paper's
// shape: IF-Online consistently faster on programs of at least ~10000 AST
// nodes, approaching 4x on the largest; small programs may favour SF.
func Figure10(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Figure 10: Time ratio SF-Online / IF-Online vs program size")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "AST Nodes\tSF-Online/IF-Online\tBenchmark\t")
	var bigWins, bigN int
	for _, r := range results {
		ifn, ok1 := r.Runs["IF-Online"]
		sfn, ok2 := r.Runs["SF-Online"]
		if !ok1 || !ok2 {
			continue
		}
		ratio := sfn.Time.Seconds() / ifn.Time.Seconds()
		fmt.Fprintf(tw, "%d\t%.2f\t%s\t\n", r.ASTNodes, ratio, r.Bench.Name)
		if r.ASTNodes >= 10000 {
			bigN++
			if ratio > 1 {
				bigWins++
			}
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: IF-Online faster on %d/%d benchmarks of ≥10000 AST nodes (paper: consistently faster there).\n", bigWins, bigN)
}

// Figure11 plots the fraction of cycle-involved variables each online
// policy eliminates. The paper's shape: around 80%% for IF and half that
// for SF, which explains IF-Online's advantage.
func Figure11(w io.Writer, results []*Result) {
	hasAblation := false
	for _, r := range results {
		if _, ok := r.Runs[Ablation.Name]; ok {
			hasAblation = true
		}
	}
	fmt.Fprintln(w, "Figure 11: Percentage of variables on cycles detected by online elimination")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	if hasAblation {
		fmt.Fprintln(tw, "AST Nodes\tCycle Vars\tIF-Online %\tSF-Online %\tSF-Incr %\tSF-Incr time (s)\tBenchmark\t")
	} else {
		fmt.Fprintln(tw, "AST Nodes\tCycle Vars\tIF-Online %\tSF-Online %\tBenchmark\t")
	}
	var sumIF, sumSF float64
	var n int
	for _, r := range results {
		ifn, ok1 := r.Runs["IF-Online"]
		sfn, ok2 := r.Runs["SF-Online"]
		if !ok1 || !ok2 || r.FinalSCCVars == 0 {
			continue
		}
		pIF := 100 * float64(ifn.Eliminated) / float64(r.FinalSCCVars)
		pSF := 100 * float64(sfn.Eliminated) / float64(r.FinalSCCVars)
		sumIF += pIF
		sumSF += pSF
		n++
		if hasAblation {
			if inc, ok := r.Runs[Ablation.Name]; ok {
				pInc := 100 * float64(inc.Eliminated) / float64(r.FinalSCCVars)
				fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t%.1f\t%s\t%s\t\n",
					r.ASTNodes, r.FinalSCCVars, pIF, pSF, pInc, secs(inc.Time), r.Bench.Name)
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t-\t-\t%s\t\n", r.ASTNodes, r.FinalSCCVars, pIF, pSF, r.Bench.Name)
			continue
		}
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t%s\t\n", r.ASTNodes, r.FinalSCCVars, pIF, pSF, r.Bench.Name)
	}
	tw.Flush()
	if n > 0 {
		fmt.Fprintf(w, "\nShape check: mean detection IF %.1f%%, SF %.1f%% (paper: ≈80%% vs ≈40%% — IF finds about twice as many).\n",
			sumIF/float64(n), sumSF/float64(n))
	}
}
