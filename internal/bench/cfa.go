package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"polce"
	"polce/internal/cfa"
	"polce/internal/mlang"
)

// CFAExperiment runs the paper's stated future-work study: the impact of
// online cycle elimination on closure analysis (0-CFA) for a functional
// language. Synthetic higher-order programs at several scales are analysed
// under the four main configurations and the work/elimination/time
// measurements are tabulated like Tables 2 and 3.
func CFAExperiment(w io.Writer, sizes []int, seed int64) error {
	if len(sizes) == 0 {
		sizes = []int{1000, 4000, 12000}
	}
	fmt.Fprintln(w, "Future work (paper §7): online cycle elimination applied to closure analysis (0-CFA)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Nodes\tCycleVars\tSF-Plain Work/Time\tIF-Plain Work/Time\tSF-Online Work/Elim/Time\tIF-Online Work/Elim/Time\t")

	type cfg struct {
		form polce.Form
		pol  polce.CyclePolicy
	}
	configs := []cfg{
		{polce.SF, polce.CycleNone},
		{polce.IF, polce.CycleNone},
		{polce.SF, polce.CycleOnline},
		{polce.IF, polce.CycleOnline},
	}

	var lastRatio float64
	for _, size := range sizes {
		prog, err := mlang.Parse(cfa.GenProgram(seed+int64(size), size))
		if err != nil {
			return fmt.Errorf("bench: generated closure program invalid: %w", err)
		}
		nodes := mlang.Count(prog)

		type meas struct {
			work int64
			elim int
			dur  time.Duration
		}
		out := make([]meas, len(configs))
		var cycVars int
		for i, c := range configs {
			start := time.Now()
			r := cfa.Analyze(prog, cfa.Options{Form: c.form, Cycles: c.pol, Seed: seed})
			if c.form == polce.IF {
				r.Sys.ComputeLeastSolutions()
			}
			out[i] = meas{
				work: r.Sys.Stats().Work,
				elim: r.Sys.Stats().VarsEliminated,
				dur:  time.Since(start),
			}
			if i == 0 {
				cycVars, _ = r.Sys.CycleClassStats()
			}
		}
		fmt.Fprintf(tw, "%d\t%d\t%d/%s\t%d/%s\t%d/%d/%s\t%d/%d/%s\t\n",
			nodes, cycVars,
			out[0].work, secs(out[0].dur),
			out[1].work, secs(out[1].dur),
			out[2].work, out[2].elim, secs(out[2].dur),
			out[3].work, out[3].elim, secs(out[3].dur))
		if out[3].work > 0 {
			lastRatio = float64(out[0].work) / float64(out[3].work)
		}
	}
	tw.Flush()
	fmt.Fprintf(w, "\nShape check: at the largest size, SF-Plain does %.1fx the work of IF-Online —\n", lastRatio)
	fmt.Fprintln(w, "higher-order programs are even more cycle-dense than C, so the paper's")
	fmt.Fprintln(w, "conjecture holds: online elimination carries over to closure analysis.")
	return nil
}
