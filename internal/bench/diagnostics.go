package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// Diagnostics prints the measured quantities behind the analytical model's
// assumptions (Section 5) for every benchmark:
//
//   - the initial graph's density (the model assumes p ≈ 1/n, i.e. about
//     one edge per variable);
//   - the closed graph's density (the model's E(R_X) bound is evaluated at
//     p = 2/n, and climbs sharply for denser graphs);
//   - the mean number of nodes visited per online closing-chain search for
//     both representations (Theorem 5.2 predicts ≈2.2 at density 2/n).
//
// Together these validate that the suite sits in the sparse regime where
// partial online cycle detection costs a constant per edge insertion.
func Diagnostics(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Section 5 premises: graph densities and online-search cost")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "Benchmark\tVars\tinit density\tfinal density\tIF visits/search\tSF visits/search\t")
	var sumIF, sumSF float64
	var nIF, nSF int
	for _, r := range results {
		ifv, sfv := "-", "-"
		if run, ok := r.Runs["IF-Online"]; ok && run.Searches > 0 {
			v := run.VisitsPerSearch()
			ifv = fmt.Sprintf("%.2f", v)
			sumIF += v
			nIF++
		}
		if run, ok := r.Runs["SF-Online"]; ok && run.Searches > 0 {
			v := run.VisitsPerSearch()
			sfv = fmt.Sprintf("%.2f", v)
			sumSF += v
			nSF++
		}
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%.2f\t%s\t%s\t\n",
			r.Bench.Name, r.SetVars, r.InitialDensity, r.FinalDensity, ifv, sfv)
	}
	tw.Flush()
	if nIF > 0 {
		fmt.Fprintf(w, "\nMean visits/search: IF %.2f", sumIF/float64(nIF))
		if nSF > 0 {
			fmt.Fprintf(w, ", SF %.2f", sumSF/float64(nSF))
		}
		fmt.Fprintln(w, "  (Theorem 5.2 predicts ≈2.2 at density 2/n; the paper")
		fmt.Fprintln(w, "observes the number of reachable variables is close to two).")
	}
}
