package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
)

// AblationTable compares the paper's online elimination against the two
// alternatives it displaces: periodic offline sweeps (the prior-work
// strategy of [FA96, FF97, MW97]) and the increasing-chain search variant
// for standard form (§4). One row per benchmark and strategy with the
// work, eliminated-variable and time columns side by side.
func AblationTable(w io.Writer, results []*Result) {
	fmt.Fprintln(w, "Ablation: online elimination vs periodic sweeps vs increasing-chain search")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	cols := []string{"IF-Online", "IF-Periodic", "SF-Online", "SF-Periodic", Ablation.Name}
	fmt.Fprint(tw, "Benchmark\t")
	for _, c := range cols {
		fmt.Fprintf(tw, "%s Work\t%s Elim\t%s Time\t", c, c, c)
	}
	fmt.Fprintln(tw)
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t", r.Bench.Name)
		for _, c := range cols {
			run, ok := r.Runs[c]
			if !ok {
				fmt.Fprint(tw, "-\t-\t-\t")
				continue
			}
			fmt.Fprintf(tw, "%d\t%d\t%s\t", run.Work, run.Eliminated, secs(run.Time))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintln(w, "\nReading guide (the paper's §1 and §6 claims):")
	fmt.Fprintln(w, " - periodic sweeps eliminate at least as many variables (offline Tarjan is")
	fmt.Fprintln(w, "   complete over the current graph) but pay a whole-graph pass per sweep,")
	fmt.Fprintln(w, "   so their cost-benefit depends delicately on the sweep frequency;")
	fmt.Fprintln(w, " - the online search costs a near-constant ≈2 visited nodes per edge")
	fmt.Fprintln(w, "   insertion and needs no frequency tuning;")
	fmt.Fprintln(w, " - the SF increasing-chain variant shows the search-direction choice is")
	fmt.Fprintln(w, "   not free: it visits far more nodes per insertion.")
}
