package cgen

import (
	"strings"
	"testing"
)

func TestFormatDecl(t *testing.T) {
	intT := IntType
	tests := []struct {
		name string
		t    *Type
		want string
	}{
		{"x", intT, "int x"},
		{"p", Ptr(intT), "int *p"},
		{"pp", Ptr(Ptr(intT)), "int **pp"},
		{"a", &Type{Kind: TArray, Elem: intT}, "int a[]"},
		{"ap", &Type{Kind: TArray, Elem: Ptr(intT)}, "int *ap[]"},
		{"pa", Ptr(&Type{Kind: TArray, Elem: intT}), "int (*pa)[]"},
		{"fp", Ptr(&Type{Kind: TFunc, Ret: intT, Params: []*Type{Ptr(intT)}}), "int (*fp)(int *)"},
		{"f", &Type{Kind: TFunc, Ret: Ptr(intT), Params: nil}, "int *f(void)"},
		{"v", VoidType, "void v"},
		{"s", &Type{Kind: TStruct, Tag: "node"}, "struct node s"},
	}
	for _, tc := range tests {
		if got := FormatDecl(tc.name, tc.t); got != tc.want {
			t.Errorf("FormatDecl(%s) = %q, want %q", tc.name, got, tc.want)
		}
	}
}

// roundtrip parses src, prints it, reparses the print, and reprints; the
// two prints must be identical (printing is a fixpoint) and the second
// parse must succeed.
func roundtrip(t *testing.T, src string) string {
	t.Helper()
	f1, err := MustParse("orig.c", src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	p1 := Print(f1)
	f2, err := MustParse("printed.c", p1)
	if err != nil {
		t.Fatalf("reparse printed source: %v\n--- printed ---\n%s", err, p1)
	}
	p2 := Print(f2)
	if p1 != p2 {
		t.Fatalf("printing is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", p1, p2)
	}
	// Node counts must survive the trip (parens add no nodes). The one
	// benign exception: a multi-declarator statement prints as several
	// single-declarator statements, adding DeclStmt wrappers — so count
	// everything but those.
	count := func(f *File) int {
		n := 0
		Walk(f, func(x any) {
			if _, ok := x.(*DeclStmt); !ok {
				n++
			}
		})
		return n
	}
	if n1, n2 := count(f1), count(f2); n1 != n2 {
		t.Errorf("node count changed: %d -> %d\n--- printed ---\n%s", n1, n2, p1)
	}
	return p1
}

func TestRoundtripDecls(t *testing.T) {
	roundtrip(t, `
int x;
int *p, **pp;
int a[10];
int *tab[4];
int (*fp)(int *, char *);
struct node { struct node *next; int *data; };
struct node n1, *n2;
union u { int i; char *s; };
enum color { RED, GREEN, BLUE };
typedef int myint;
char *msg = "hello";
int init[3] = { 1, 2, 3 };
`)
}

func TestRoundtripFunctions(t *testing.T) {
	out := roundtrip(t, `
int add(int a, int b) { return a + b; }
int *id(int *p) { return p; }
void control(int n) {
	int i;
	for (i = 0; i < n; i++) {
		if (i % 2) continue;
		else break;
	}
	while (n > 0) n--;
	do { n++; } while (n < 5);
	switch (n) {
	case 0: n = 1; break;
	default: n = 2;
	}
	goto out;
out:
	return;
}
int vararg(const char *fmt, ...);
`)
	for _, want := range []string{"for (", "while (", "do", "switch (", "case 0:", "default:", "goto out;", "..."} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q", want)
		}
	}
}

func TestRoundtripExprs(t *testing.T) {
	roundtrip(t, `
int g(int);
struct s { int *f; };
void exprs(struct s *sp, int **qq) {
	int x = 1, *p = &x;
	x = -x + ~x * !x;
	x = (x << 2) >> 1 | (x & 3) ^ 4;
	x = x < 1 || x >= 2 && x != 3;
	p = (int *)(void *)&x;
	*qq = p;
	x = *p + sp->f[0] - (*sp).f[1];
	x = sizeof(int *) + sizeof x;
	x = x ? g(x) : g(-x);
	x++, --x;
	x += 2; x <<= 1;
}
`)
}

func TestRoundtripGeneratedProgram(t *testing.T) {
	// The synthetic benchmarks must survive a round trip too; this
	// exercises the printer at scale.
	src := `
struct node { struct node *next; int *data; int key; };
int *gp0; struct node gn0; struct node *gm0;
int *fn0(int *a0, int *a1) {
	int *lp0;
	lp0 = a0;
	gm0->next = gm0;
	gm0->data = lp0;
	if (1) { lp0 = fn0(lp0, gp0); }
	return &gn0.key;
}
int main(void) { gp0 = fn0(gp0, gp0); return 0; }
`
	roundtrip(t, src)
}

func TestPrintStmtAndExpr(t *testing.T) {
	f := parseOK(t, "void f(void) { return; }")
	fd := f.Decls[0].(*FuncDecl)
	if got := PrintStmt(fd.Body.Stmts[0]); !strings.Contains(got, "return;") {
		t.Errorf("PrintStmt = %q", got)
	}
	if got := PrintExpr(&BinaryExpr{Op: Plus, L: &IntExpr{Text: "1"}, R: &IntExpr{Text: "2"}}); got != "(1 + 2)" {
		t.Errorf("PrintExpr = %q", got)
	}
}

func TestRoundtripPreservesAnalysis(t *testing.T) {
	// Printing must not change the program's meaning: parse, print,
	// reparse, and compare statement/expression census.
	src := `
int x, y;
int *p;
int *pick(int *a, int *b) { if (*a) return a; return b; }
void f(void) { p = pick(&x, &y); }
`
	f1, err := MustParse("a.c", src)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := MustParse("b.c", Print(f1))
	if err != nil {
		t.Fatal(err)
	}
	census := func(f *File) map[string]int {
		m := map[string]int{}
		Walk(f, func(n any) {
			switch n.(type) {
			case *CallExpr:
				m["call"]++
			case *UnaryExpr:
				m["unary"]++
			case *AssignExpr:
				m["assign"]++
			case *Return:
				m["return"]++
			case *VarDecl:
				m["var"]++
			}
		})
		return m
	}
	c1, c2 := census(f1), census(f2)
	for k, v := range c1 {
		if c2[k] != v {
			t.Errorf("census[%s] changed: %d -> %d", k, v, c2[k])
		}
	}
}
