package cgen

// TypeEnv is a scoped table of declared types with best-effort expression
// type inference. Both points-to analyses use it to answer the shape
// questions that drive C's decay rules — is an expression an array, a
// function, a function pointer — so a nil answer ("unknown") is always
// acceptable and yields generic treatment.
type TypeEnv struct {
	scopes  []map[string]*Type
	structs map[string]map[string]*Type
}

// NewTypeEnv returns an environment with a single (file) scope.
func NewTypeEnv() *TypeEnv {
	return &TypeEnv{
		scopes:  []map[string]*Type{{}},
		structs: map[string]map[string]*Type{},
	}
}

// Push enters a new scope.
func (e *TypeEnv) Push() { e.scopes = append(e.scopes, map[string]*Type{}) }

// Pop leaves the innermost scope.
func (e *TypeEnv) Pop() { e.scopes = e.scopes[:len(e.scopes)-1] }

// Bind records name's declared type in the innermost scope.
func (e *TypeEnv) Bind(name string, t *Type) {
	e.scopes[len(e.scopes)-1][name] = t
}

// DefineRecord records a struct/union's field types.
func (e *TypeEnv) DefineRecord(d *RecordDecl) {
	fields := map[string]*Type{}
	for _, f := range d.Fields {
		fields[f.Name] = f.Type
	}
	e.structs[d.Tag] = fields
}

// Lookup resolves a name's declared type, innermost scope first.
func (e *TypeEnv) Lookup(name string) *Type {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if t, ok := e.scopes[i][name]; ok {
			return t
		}
	}
	return nil
}

// Field resolves a field's declared type given the record's tag.
func (e *TypeEnv) Field(tag, name string) *Type {
	if fields, ok := e.structs[tag]; ok {
		return fields[name]
	}
	return nil
}

// TypeOf computes a best-effort static type for an expression; nil means
// unknown.
func (e *TypeEnv) TypeOf(expr Expr) *Type {
	switch x := expr.(type) {
	case *IdentExpr:
		return e.Lookup(x.Name)
	case *IntExpr, *SizeofExpr:
		return IntType
	case *FloatExpr:
		return &Type{Kind: TBase, Tag: "double"}
	case *StrExpr:
		return &Type{Kind: TArray, Elem: &Type{Kind: TBase, Tag: "char"}}
	case *UnaryExpr:
		switch x.Op {
		case Star:
			t := e.TypeOf(x.X)
			if t == nil {
				return nil
			}
			switch t.Kind {
			case TPointer, TArray:
				return t.Elem
			case TFunc:
				return t // *f on a function designator is the function
			}
			return nil
		case Amp:
			t := e.TypeOf(x.X)
			if t == nil {
				return nil
			}
			return Ptr(t)
		case Not:
			return IntType
		default:
			return e.TypeOf(x.X)
		}
	case *PostfixExpr:
		return e.TypeOf(x.X)
	case *BinaryExpr:
		switch x.Op {
		case Plus, Minus:
			if t := e.TypeOf(x.L); t.IsPointerLike() {
				return t
			}
			if t := e.TypeOf(x.R); t.IsPointerLike() {
				return t
			}
			return IntType
		default:
			return IntType
		}
	case *AssignExpr:
		return e.TypeOf(x.L)
	case *CondExpr:
		if t := e.TypeOf(x.Then); t != nil {
			return t
		}
		return e.TypeOf(x.Else)
	case *CommaExpr:
		return e.TypeOf(x.R)
	case *CastExpr:
		return x.Type
	case *IndexExpr:
		t := e.TypeOf(x.X)
		if t != nil && (t.Kind == TPointer || t.Kind == TArray) {
			return t.Elem
		}
		return nil
	case *MemberExpr:
		t := e.TypeOf(x.X)
		if x.Arrow && t != nil && t.Kind == TPointer {
			t = t.Elem
		}
		if t == nil || t.Kind != TStruct {
			return nil
		}
		return e.Field(t.Tag, x.Name)
	case *CallExpr:
		t := e.TypeOf(x.Fun)
		if t == nil {
			return nil
		}
		if t.Kind == TPointer && t.Elem != nil {
			t = t.Elem
		}
		if t.Kind == TFunc {
			return t.Ret
		}
		return nil
	}
	return nil
}
