package cgen

// Walk calls fn for every node (declarations, statements and expressions)
// of the subtree rooted at n, parents before children. It is used for AST
// node counting (Table 1's size metric) and by tests.
func Walk(n any, fn func(any)) {
	if n == nil {
		return
	}
	switch v := n.(type) {
	case *File:
		fn(v)
		for _, d := range v.Decls {
			Walk(d, fn)
		}
	case *VarDecl:
		if v == nil {
			return
		}
		fn(v)
		if v.Init != nil {
			Walk(v.Init, fn)
		}
	case *FuncDecl:
		fn(v)
		for _, p := range v.Params {
			Walk(p, fn)
		}
		if v.Body != nil {
			Walk(v.Body, fn)
		}
	case *RecordDecl:
		fn(v)
		for _, f := range v.Fields {
			Walk(f, fn)
		}
	case *TypedefDecl, *EnumDecl:
		fn(v)
	case *Block:
		if v == nil {
			return
		}
		fn(v)
		for _, s := range v.Stmts {
			Walk(s, fn)
		}
	case *DeclStmt:
		fn(v)
		for _, d := range v.Decls {
			Walk(d, fn)
		}
	case *ExprStmt:
		fn(v)
		Walk(v.X, fn)
	case *If:
		fn(v)
		Walk(v.Cond, fn)
		Walk(v.Then, fn)
		if v.Else != nil {
			Walk(v.Else, fn)
		}
	case *While:
		fn(v)
		Walk(v.Cond, fn)
		Walk(v.Body, fn)
	case *DoWhile:
		fn(v)
		Walk(v.Body, fn)
		Walk(v.Cond, fn)
	case *For:
		fn(v)
		if v.Init != nil {
			Walk(v.Init, fn)
		}
		if v.Cond != nil {
			Walk(v.Cond, fn)
		}
		if v.Post != nil {
			Walk(v.Post, fn)
		}
		Walk(v.Body, fn)
	case *Return:
		fn(v)
		if v.X != nil {
			Walk(v.X, fn)
		}
	case *Switch:
		fn(v)
		Walk(v.Tag, fn)
		Walk(v.Body, fn)
	case *Case:
		fn(v)
		if v.X != nil {
			Walk(v.X, fn)
		}
		Walk(v.Body, fn)
	case *Label:
		fn(v)
		Walk(v.Body, fn)
	case *Goto, *Break, *Continue, *Empty:
		fn(v)
	case *IdentExpr, *IntExpr, *FloatExpr, *StrExpr:
		fn(v)
	case *UnaryExpr:
		fn(v)
		Walk(v.X, fn)
	case *PostfixExpr:
		fn(v)
		Walk(v.X, fn)
	case *BinaryExpr:
		fn(v)
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *AssignExpr:
		fn(v)
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *CondExpr:
		fn(v)
		Walk(v.Cond, fn)
		Walk(v.Then, fn)
		Walk(v.Else, fn)
	case *CommaExpr:
		fn(v)
		Walk(v.L, fn)
		Walk(v.R, fn)
	case *CallExpr:
		fn(v)
		Walk(v.Fun, fn)
		for _, a := range v.Args {
			Walk(a, fn)
		}
	case *IndexExpr:
		fn(v)
		Walk(v.X, fn)
		Walk(v.Idx, fn)
	case *MemberExpr:
		fn(v)
		Walk(v.X, fn)
	case *CastExpr:
		fn(v)
		Walk(v.X, fn)
	case *SizeofExpr:
		fn(v)
		if v.X != nil {
			Walk(v.X, fn)
		}
	case *InitList:
		fn(v)
		for _, e := range v.Elems {
			Walk(e, fn)
		}
	}
}

// CountNodes returns the number of AST nodes in the file, the size metric
// the paper plots analysis time against.
func CountNodes(f *File) int {
	n := 0
	Walk(f, func(any) { n++ })
	return n
}

// CountLines returns the number of newline-terminated lines in src, the
// paper's LOC metric (preprocessed source lines).
func CountLines(src string) int {
	n := 0
	for i := 0; i < len(src); i++ {
		if src[i] == '\n' {
			n++
		}
	}
	if len(src) > 0 && src[len(src)-1] != '\n' {
		n++
	}
	return n
}
