package cgen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// The parser must never panic, whatever bytes it is fed: errors are
// reported through the error list. These tests hammer it with random
// garbage, random token soups, and mutations of valid programs.

func TestParseNeverPanicsOnRandomBytes(t *testing.T) {
	property := func(data []byte) bool {
		// Parse must return normally (possibly with errors).
		Parse("fuzz.c", string(data))
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseNeverPanicsOnTokenSoup(t *testing.T) {
	pieces := []string{
		"int", "char", "struct", "union", "typedef", "if", "else", "while",
		"for", "return", "sizeof", "x", "y", "f", "42", `"s"`, "'c'",
		"{", "}", "(", ")", "[", "]", ";", ",", "*", "&", "=", "+", "-",
		"->", ".", "...", "==", "::", "#define", "\\",
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 300; trial++ {
		var src string
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			src += pieces[rng.Intn(len(pieces))] + " "
		}
		Parse("soup.c", src)
	}
}

func TestParseNeverPanicsOnMutations(t *testing.T) {
	base := `
struct node { struct node *next; int *v; };
int *f(int *a, int n) {
	int *p = a;
	if (n) p = f(p, n - 1);
	return p;
}
int main(void) { int x; return *f(&x, 3); }
`
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		b := []byte(base)
		// Apply a handful of random edits: deletions, swaps, injections.
		for k := 0; k < 1+rng.Intn(5); k++ {
			switch rng.Intn(3) {
			case 0: // delete a byte
				i := rng.Intn(len(b))
				b = append(b[:i], b[i+1:]...)
			case 1: // duplicate a byte
				i := rng.Intn(len(b))
				b = append(b[:i], append([]byte{b[i]}, b[i:]...)...)
			default: // random punctuation injection
				const punct = "(){}[];,*&=+-<>#\"'"
				i := rng.Intn(len(b))
				b[i] = punct[rng.Intn(len(punct))]
			}
		}
		Parse("mut.c", string(b))
	}
}

func TestTokenizeNeverPanics(t *testing.T) {
	property := func(data []byte) bool {
		Tokenize(string(data))
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
