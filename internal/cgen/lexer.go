package cgen

import "fmt"

// Lexer turns C source text into tokens. Preprocessor directives are not
// interpreted: a line starting with '#' is skipped, since the benchmark
// programs arrive preprocessed (as the paper's do).
type Lexer struct {
	src  string
	pos  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (lx *Lexer) Errors() []error { return lx.errs }

func (lx *Lexer) errorf(format string, args ...any) {
	lx.errs = append(lx.errs, fmt.Errorf("%d:%d: %s", lx.line, lx.col, fmt.Sprintf(format, args...)))
}

func (lx *Lexer) peek() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peek2() byte {
	if lx.pos+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdent(c byte) bool  { return isLetter(c) || isDigit(c) }

// skipSpace consumes whitespace, comments and preprocessor lines.
func (lx *Lexer) skipSpace() {
	for lx.pos < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '#' && lx.col == 1:
			// Preprocessor directive: skip to end of line, honouring
			// backslash continuations.
			for lx.pos < len(lx.src) {
				c := lx.advance()
				if c == '\\' && lx.peek() == '\n' {
					lx.advance()
					continue
				}
				if c == '\n' {
					break
				}
			}
		case c == '/' && lx.peek2() == '/':
			for lx.pos < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			lx.advance()
			lx.advance()
			for lx.pos < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					break
				}
				lx.advance()
			}
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF forever.
func (lx *Lexer) Next() Token {
	lx.skipSpace()
	tok := Token{Line: lx.line, Col: lx.col}
	if lx.pos >= len(lx.src) {
		tok.Kind = EOF
		return tok
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdent(lx.peek()) {
			lx.advance()
		}
		tok.Text = lx.src[start:lx.pos]
		if k, ok := keywords[tok.Text]; ok {
			tok.Kind = k
		} else {
			tok.Kind = Ident
		}
		return tok
	case isDigit(c) || (c == '.' && isDigit(lx.peek2())):
		return lx.number(tok)
	case c == '\'':
		return lx.charLit(tok)
	case c == '"':
		return lx.strLit(tok)
	}
	return lx.operator(tok)
}

func (lx *Lexer) number(tok Token) Token {
	start := lx.pos
	isFloat := false
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.pos < len(lx.src) && (isDigit(lx.peek()) || (lx.peek()|0x20 >= 'a' && lx.peek()|0x20 <= 'f')) {
			lx.advance()
		}
	} else {
		for lx.pos < len(lx.src) && isDigit(lx.peek()) {
			lx.advance()
		}
		if lx.peek() == '.' {
			isFloat = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			isFloat = true
			lx.advance()
			if lx.peek() == '+' || lx.peek() == '-' {
				lx.advance()
			}
			for lx.pos < len(lx.src) && isDigit(lx.peek()) {
				lx.advance()
			}
		}
	}
	// integer/float suffixes
	for lx.pos < len(lx.src) {
		switch lx.peek() {
		case 'u', 'U', 'l', 'L', 'f', 'F':
			lx.advance()
			continue
		}
		break
	}
	tok.Text = lx.src[start:lx.pos]
	if isFloat {
		tok.Kind = FloatLit
	} else {
		tok.Kind = IntLit
	}
	return tok
}

func (lx *Lexer) charLit(tok Token) Token {
	lx.advance() // opening quote
	start := lx.pos
	for lx.pos < len(lx.src) && lx.peek() != '\'' {
		if lx.peek() == '\\' {
			lx.advance()
		}
		if lx.pos < len(lx.src) {
			lx.advance()
		}
	}
	tok.Text = lx.src[start:lx.pos]
	if lx.pos < len(lx.src) {
		lx.advance() // closing quote
	} else {
		lx.errorf("unterminated character literal")
	}
	tok.Kind = CharLit
	return tok
}

func (lx *Lexer) strLit(tok Token) Token {
	lx.advance() // opening quote
	start := lx.pos
	for lx.pos < len(lx.src) && lx.peek() != '"' {
		if lx.peek() == '\\' {
			lx.advance()
		}
		if lx.pos < len(lx.src) {
			lx.advance()
		}
	}
	tok.Text = lx.src[start:lx.pos]
	if lx.pos < len(lx.src) {
		lx.advance() // closing quote
	} else {
		lx.errorf("unterminated string literal")
	}
	tok.Kind = StrLit
	return tok
}

// twoCharOps maps a leading operator byte to its two-character extensions.
type opExt struct {
	next byte
	kind Kind
}

var operatorTable = map[byte]struct {
	kind Kind    // kind when standing alone
	exts []opExt // two-character extensions
}{
	'(': {kind: LParen},
	')': {kind: RParen},
	'{': {kind: LBrace},
	'}': {kind: RBrace},
	'[': {kind: LBracket},
	']': {kind: RBracket},
	';': {kind: Semi},
	',': {kind: Comma},
	':': {kind: Colon},
	'?': {kind: Question},
	'~': {kind: Tilde},
	'+': {kind: Plus, exts: []opExt{{'+', Inc}, {'=', AddAssign}}},
	'-': {kind: Minus, exts: []opExt{{'-', Dec}, {'=', SubAssign}, {'>', Arrow}}},
	'*': {kind: Star, exts: []opExt{{'=', MulAssign}}},
	'/': {kind: Slash, exts: []opExt{{'=', DivAssign}}},
	'%': {kind: Percent, exts: []opExt{{'=', ModAssign}}},
	'&': {kind: Amp, exts: []opExt{{'&', AndAnd}, {'=', AndAssign}}},
	'|': {kind: Pipe, exts: []opExt{{'|', OrOr}, {'=', OrAssign}}},
	'^': {kind: Caret, exts: []opExt{{'=', XorAssign}}},
	'!': {kind: Not, exts: []opExt{{'=', NotEq}}},
	'=': {kind: Assign, exts: []opExt{{'=', EqEq}}},
	'.': {kind: Dot},
}

func (lx *Lexer) operator(tok Token) Token {
	c := lx.advance()
	switch c {
	case '<':
		if lx.peek() == '<' {
			lx.advance()
			if lx.peek() == '=' {
				lx.advance()
				tok.Kind = ShlAssign
			} else {
				tok.Kind = Shl
			}
		} else if lx.peek() == '=' {
			lx.advance()
			tok.Kind = Le
		} else {
			tok.Kind = Lt
		}
		return tok
	case '>':
		if lx.peek() == '>' {
			lx.advance()
			if lx.peek() == '=' {
				lx.advance()
				tok.Kind = ShrAssign
			} else {
				tok.Kind = Shr
			}
		} else if lx.peek() == '=' {
			lx.advance()
			tok.Kind = Ge
		} else {
			tok.Kind = Gt
		}
		return tok
	case '.':
		if lx.peek() == '.' && lx.peek2() == '.' {
			lx.advance()
			lx.advance()
			tok.Kind = Ellipsis
			return tok
		}
		tok.Kind = Dot
		return tok
	}
	ent, ok := operatorTable[c]
	if !ok {
		lx.errorf("unexpected character %q", c)
		return lx.Next()
	}
	for _, e := range ent.exts {
		if lx.peek() == e.next {
			lx.advance()
			tok.Kind = e.kind
			return tok
		}
	}
	tok.Kind = ent.kind
	return tok
}

// Tokenize lexes the whole input, excluding the final EOF.
func Tokenize(src string) ([]Token, []error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t := lx.Next()
		if t.Kind == EOF {
			break
		}
		toks = append(toks, t)
	}
	return toks, lx.errs
}
