package cgen

import "testing"

func env(t *testing.T, src string) (*TypeEnv, *File) {
	t.Helper()
	f := parseOK(t, src)
	e := NewTypeEnv()
	for _, d := range f.Decls {
		switch dd := d.(type) {
		case *RecordDecl:
			e.DefineRecord(dd)
		case *VarDecl:
			e.Bind(dd.Name, dd.Type)
		case *FuncDecl:
			e.Bind(dd.Name, dd.Type)
		}
	}
	return e, f
}

// exprIn extracts the initializer of variable `probe` so tests can write
// the expression under test in real C.
func exprIn(t *testing.T, f *File) Expr {
	t.Helper()
	for _, d := range f.Decls {
		if vd, ok := d.(*VarDecl); ok && vd.Name == "probe" {
			return vd.Init
		}
	}
	t.Fatal("no probe declaration")
	return nil
}

func typeString(e *TypeEnv, x Expr) string {
	t := e.TypeOf(x)
	if t == nil {
		return "<unknown>"
	}
	return t.String()
}

func TestTypeOfExpressions(t *testing.T) {
	tests := []struct {
		decls string
		expr  string
		want  string
	}{
		{"int x;", "x", "int"},
		{"int *p;", "p", "int*"},
		{"int *p;", "*p", "int"},
		{"int x;", "&x", "int*"},
		{"int a[4];", "a[0]", "int"},
		{"int *ap[4];", "ap[1]", "int*"},
		{"int x;", "x + 1", "int"},
		{"int *p;", "p + 1", "int*"},
		{"int *p;", "1 + p", "int*"},
		{"int *p; int *q;", "(1, q)", "int*"},
		{"int *p;", "(char *)p", "char*"},
		{"int x;", "sizeof(x)", "int"},
		{"struct s { int *f; }; struct s v;", "v.f", "int*"},
		{"struct s { int *f; }; struct s *sp;", "sp->f", "int*"},
		{"struct s { struct s *n; }; struct s *sp;", "sp->n->n", "struct s*"},
		{"int *f(int);", "f(1)", "int*"},
		{"int (*fp)(char *);", "fp(0)", "int"},
		{"int (*fp)(char *);", "*fp", "int(char*)"},
		{"int x; int y;", "x = y", "int"},
		{"int *p; int *q; int c;", "c ? p : q", "int*"},
		{"int *p;", "p++", "int*"},
		{"int x;", "!x", "int"},
	}
	for _, tc := range tests {
		e, f := env(t, tc.decls+"\nint probe_holder;\n")
		// Parse the expression by wrapping it as an initializer.
		f2 := parseOK(t, tc.decls+"\nint probe = "+wrapExpr(tc.expr)+";")
		_ = f
		x := exprIn(t, f2)
		// Rebuild env against f2 (same decls).
		e, _ = env(t, tc.decls)
		if got := typeString(e, x); got != tc.want {
			t.Errorf("TypeOf(%s | %s) = %q, want %q", tc.expr, tc.decls, got, tc.want)
		}
	}
}

// wrapExpr keeps assignment expressions parseable in initializer position.
func wrapExpr(s string) string { return "(" + s + ")" }

func TestTypeOfUnknowns(t *testing.T) {
	e, _ := env(t, "int x;")
	if got := e.TypeOf(&IdentExpr{Name: "nope"}); got != nil {
		t.Errorf("unknown ident typed as %v", got)
	}
	if got := e.TypeOf(&MemberExpr{X: &IdentExpr{Name: "nope"}, Name: "f"}); got != nil {
		t.Errorf("member of unknown typed as %v", got)
	}
}

func TestScopes(t *testing.T) {
	e := NewTypeEnv()
	e.Bind("x", IntType)
	e.Push()
	e.Bind("x", Ptr(IntType))
	if got := e.Lookup("x"); got.Kind != TPointer {
		t.Errorf("inner binding not found: %v", got)
	}
	e.Pop()
	if got := e.Lookup("x"); got.Kind != TBase {
		t.Errorf("outer binding lost: %v", got)
	}
}

func TestFieldLookup(t *testing.T) {
	e, _ := env(t, "struct s { int *f; int g; };")
	if got := e.Field("s", "f"); got == nil || got.Kind != TPointer {
		t.Errorf("Field(s, f) = %v", got)
	}
	if got := e.Field("s", "zz"); got != nil {
		t.Errorf("Field(s, zz) = %v", got)
	}
	if got := e.Field("nosuch", "f"); got != nil {
		t.Errorf("Field(nosuch, f) = %v", got)
	}
}

func TestIsPointerLike(t *testing.T) {
	if IntType.IsPointerLike() {
		t.Error("int is pointer-like")
	}
	if !Ptr(IntType).IsPointerLike() {
		t.Error("int* is not pointer-like")
	}
	if !(&Type{Kind: TArray, Elem: IntType}).IsPointerLike() {
		t.Error("array is not pointer-like")
	}
	var nilT *Type
	if nilT.IsPointerLike() {
		t.Error("nil type is pointer-like")
	}
}
