package cgen

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *File {
	t.Helper()
	f, err := MustParse("test.c", src)
	if err != nil {
		t.Fatalf("parse failed: %v", err)
	}
	return f
}

func TestLexBasics(t *testing.T) {
	toks, errs := Tokenize(`int x = 42; /* c */ char *s = "hi\n"; // line
x += 0x1f; y <<= 2; z = a->b ... 'c' 3.5e-2`)
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	var kinds []Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{KwInt, Ident, Assign, IntLit, Semi, KwChar, Star, Ident,
		Assign, StrLit, Semi, Ident, AddAssign, IntLit, Semi, Ident,
		ShlAssign, IntLit, Semi, Ident, Assign, Ident, Arrow, Ident,
		Ellipsis, CharLit, FloatLit}
	if len(kinds) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(kinds), len(want), kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestLexPreprocessorSkipped(t *testing.T) {
	toks, errs := Tokenize("#include <stdio.h>\n#define X 1 \\\n  2\nint x;")
	if len(errs) != 0 {
		t.Fatalf("lex errors: %v", errs)
	}
	if len(toks) != 3 || toks[0].Kind != KwInt {
		t.Errorf("preprocessor lines leaked into tokens: %v", toks)
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Tokenize("int\n  x;")
	if toks[1].Line != 2 || toks[1].Col != 3 {
		t.Errorf("x at %d:%d, want 2:3", toks[1].Line, toks[1].Col)
	}
}

func declOf(t *testing.T, f *File, name string) *VarDecl {
	t.Helper()
	for _, d := range f.Decls {
		if vd, ok := d.(*VarDecl); ok && vd.Name == name {
			return vd
		}
	}
	t.Fatalf("no declaration of %s", name)
	return nil
}

func TestDeclaratorShapes(t *testing.T) {
	f := parseOK(t, `
int x;
int *p;
int **pp;
int a[10];
int *ap[10];
int (*pa)[10];
int (*fp)(int, char *);
int *(*fpp)(void);
char *argv[16];
unsigned long ul;
struct node { struct node *next; int v; } n1, *n2;
`)
	tests := []struct{ name, typ string }{
		{"x", "int"},
		{"p", "int*"},
		{"pp", "int**"},
		{"a", "int[]"},
		{"ap", "int*[]"},
		{"pa", "int[]*"},
		{"fp", "int(int,char*)*"},
		{"fpp", "int*()*"},
		{"argv", "char*[]"},
		{"ul", "unsigned long"},
		{"n1", "struct node"},
		{"n2", "struct node*"},
	}
	for _, tc := range tests {
		if got := declOf(t, f, tc.name).Type.String(); got != tc.typ {
			t.Errorf("%s: type %q, want %q", tc.name, got, tc.typ)
		}
	}
}

func TestFunctionDefinition(t *testing.T) {
	f := parseOK(t, `
int add(int a, int b) { return a + b; }
void nothing(void) {}
int proto(char *s);
`)
	var fns []*FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*FuncDecl); ok {
			fns = append(fns, fd)
		}
	}
	if len(fns) != 3 {
		t.Fatalf("got %d functions, want 3", len(fns))
	}
	if fns[0].Name != "add" || len(fns[0].Params) != 2 || fns[0].Body == nil {
		t.Errorf("add parsed wrong: %+v", fns[0])
	}
	if fns[1].Body == nil || len(fns[1].Params) != 0 {
		t.Errorf("nothing parsed wrong")
	}
	if fns[2].Body != nil {
		t.Errorf("prototype has a body")
	}
}

func TestTypedef(t *testing.T) {
	f := parseOK(t, `
typedef int myint;
typedef struct pair { int a, b; } pair_t;
typedef int (*handler)(void *);
myint x;
pair_t *pt;
handler h;
int call(handler cb) { return cb((void*)0); }
`)
	if got := declOf(t, f, "x").Type.String(); got != "int" {
		t.Errorf("x: %q", got)
	}
	if got := declOf(t, f, "pt").Type.String(); got != "struct pair*" {
		t.Errorf("pt: %q", got)
	}
	if got := declOf(t, f, "h").Type.String(); got != "int(void*)*" {
		t.Errorf("h: %q", got)
	}
}

func TestStatements(t *testing.T) {
	f := parseOK(t, `
int main(int argc, char **argv) {
	int i, n = 10;
	for (i = 0; i < n; i++) {
		if (i % 2) continue; else n--;
	}
	while (n > 0) { n--; }
	do { n++; } while (n < 5);
	switch (n) {
	case 0: n = 1; break;
	case 1:
	default: n = 2;
	}
	goto out;
out:
	return n;
}
`)
	fd := f.Decls[0].(*FuncDecl)
	if fd.Body == nil || len(fd.Body.Stmts) < 6 {
		t.Fatalf("body has %d statements", len(fd.Body.Stmts))
	}
	kinds := map[string]bool{}
	Walk(fd, func(n any) {
		switch n.(type) {
		case *For:
			kinds["for"] = true
		case *While:
			kinds["while"] = true
		case *DoWhile:
			kinds["do"] = true
		case *Switch:
			kinds["switch"] = true
		case *Case:
			kinds["case"] = true
		case *Goto:
			kinds["goto"] = true
		case *Label:
			kinds["label"] = true
		case *If:
			kinds["if"] = true
		}
	})
	for _, k := range []string{"for", "while", "do", "switch", "case", "goto", "label", "if"} {
		if !kinds[k] {
			t.Errorf("statement kind %s not parsed", k)
		}
	}
}

func TestExpressions(t *testing.T) {
	f := parseOK(t, `
int g(int);
void test(void) {
	int x = 1, *p = &x, a[3];
	char *s = "lit" "eral";
	x = *p + a[1] * g(x) - (x ? 1 : 2);
	p = (int *)(void *)&a[0];
	x += sizeof(int *) + sizeof x;
	x = (x && *p) || !x;
	*p = x++ + ++x, x--;
	s = s;
}
`)
	count := 0
	Walk(f, func(n any) {
		if _, ok := n.(*AssignExpr); ok {
			count++
		}
	})
	if count < 6 {
		t.Errorf("found %d assignments, want at least 6", count)
	}
}

func TestPrecedence(t *testing.T) {
	f := parseOK(t, "int x = 1 + 2 * 3;")
	vd := declOf(t, f, "x")
	bin, ok := vd.Init.(*BinaryExpr)
	if !ok || bin.Op != Plus {
		t.Fatalf("top operator not +: %#v", vd.Init)
	}
	if r, ok := bin.R.(*BinaryExpr); !ok || r.Op != Star {
		t.Errorf("rhs not a multiplication: %#v", bin.R)
	}
}

func TestCastVsParen(t *testing.T) {
	f := parseOK(t, `
typedef int T;
int y;
int a = (T)y;
int b = (y) + 1;
`)
	if _, ok := declOf(t, f, "a").Init.(*CastExpr); !ok {
		t.Errorf("(T)y not parsed as cast")
	}
	if _, ok := declOf(t, f, "b").Init.(*BinaryExpr); !ok {
		t.Errorf("(y)+1 not parsed as addition")
	}
}

func TestInitializers(t *testing.T) {
	f := parseOK(t, `
int x;
int *tab[] = { &x, &x, 0 };
struct p { int a; int *q; };
struct p s = { 1, &x };
struct p s2 = { .a = 2, .q = &x };
int grid[2][2] = { {1, 2}, {3, 4} };
`)
	vd := declOf(t, f, "tab")
	lst, ok := vd.Init.(*InitList)
	if !ok || len(lst.Elems) != 3 {
		t.Fatalf("tab initializer: %#v", vd.Init)
	}
	if _, ok := declOf(t, f, "s2").Init.(*InitList); !ok {
		t.Errorf("designated initializer not parsed")
	}
}

func TestEnums(t *testing.T) {
	f := parseOK(t, `
enum color { RED, GREEN = 5, BLUE };
enum color c;
int x = RED;
`)
	found := false
	for _, d := range f.Decls {
		if ed, ok := d.(*EnumDecl); ok && len(ed.Names) == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("enum declaration missing")
	}
}

func TestBitfieldsAndUnions(t *testing.T) {
	parseOK(t, `
struct flags { unsigned a : 1; unsigned b : 2; };
union u { int i; char *p; } uu;
`)
}

func TestFunctionPointerCall(t *testing.T) {
	f := parseOK(t, `
int f(int x) { return x; }
int main(void) {
	int (*fp)(int) = f;
	int (*fp2)(int) = &f;
	return (*fp)(1) + fp2(2);
}
`)
	calls := 0
	Walk(f, func(n any) {
		if _, ok := n.(*CallExpr); ok {
			calls++
		}
	})
	if calls != 2 {
		t.Errorf("found %d calls, want 2", calls)
	}
}

func TestVariadicAndKR(t *testing.T) {
	f := parseOK(t, `
int printf(const char *fmt, ...);
int oldstyle();
`)
	for _, d := range f.Decls {
		fd := d.(*FuncDecl)
		if !fd.Type.Variadic {
			t.Errorf("%s not marked variadic", fd.Name)
		}
	}
}

func TestArrayParamDecay(t *testing.T) {
	f := parseOK(t, `void fill(int buf[], int n) {}`)
	fd := f.Decls[0].(*FuncDecl)
	if got := fd.Params[0].Type.String(); got != "int*" {
		t.Errorf("array parameter type %q, want int*", got)
	}
}

func TestCountNodesAndLines(t *testing.T) {
	src := "int x;\nint y = x + 1;\n"
	f := parseOK(t, src)
	if n := CountNodes(f); n < 5 {
		t.Errorf("CountNodes = %d, want >= 5", n)
	}
	if n := CountLines(src); n != 2 {
		t.Errorf("CountLines = %d, want 2", n)
	}
}

func TestParseErrorsRecover(t *testing.T) {
	f, errs := Parse("bad.c", `
int x = ;
int good;
void f(void) { y = ; }
int also_good;
`)
	if len(errs) == 0 {
		t.Fatalf("no errors reported for invalid input")
	}
	names := map[string]bool{}
	for _, d := range f.Decls {
		if vd, ok := d.(*VarDecl); ok {
			names[vd.Name] = true
		}
	}
	if !names["good"] || !names["also_good"] {
		t.Errorf("recovery lost later declarations: %v", names)
	}
}

func TestMustParseErrorMessage(t *testing.T) {
	_, err := MustParse("bad.c", "int x = ;")
	if err == nil || !strings.Contains(err.Error(), "bad.c") {
		t.Errorf("MustParse error = %v", err)
	}
}

func TestCommaInForAndCalls(t *testing.T) {
	parseOK(t, `
int f(int a, int b);
void g(void) {
	int i, j;
	for (i = 0, j = 9; i < j; i++, j--) f(i, j);
}
`)
}

func TestNestedStructAccess(t *testing.T) {
	parseOK(t, `
struct in { int *p; };
struct out { struct in i; struct in *ip; };
void h(struct out *o) {
	int x;
	o->i.p = &x;
	o->ip->p = o->i.p;
	(*o).i.p = &x;
}
`)
}
