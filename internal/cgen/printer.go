package cgen

import (
	"fmt"
	"strings"
)

// This file renders ASTs back to compilable C. The printer is conservative
// with parentheses (every nested operator is parenthesised), which keeps
// it trivially correct; since parentheses leave no AST node, printing is a
// fixpoint after one round-trip, and tests rely on that.

// Print renders a translation unit.
func Print(f *File) string {
	var p printer
	for _, d := range f.Decls {
		p.decl(d, true)
	}
	return p.b.String()
}

// FormatDecl renders a declaration of name with type t in C declarator
// syntax (e.g. FormatDecl("f", ptr-to-func) → "int *(*f)(int *)").
func FormatDecl(name string, t *Type) string {
	var p printer
	return p.declString(name, t)
}

// PrintStmt renders a single statement (primarily for tests and
// diagnostics).
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return p.b.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	return p.expr(e)
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	for i := 0; i < p.indent; i++ {
		p.b.WriteByte('\t')
	}
	fmt.Fprintf(&p.b, format, args...)
	p.b.WriteByte('\n')
}

// declString builds "base declarator" for (name, t), inside-out.
func (p *printer) declString(name string, t *Type) string {
	inner := name
	for {
		if t == nil {
			if inner == "" {
				return "int"
			}
			return "int " + inner
		}
		switch t.Kind {
		case TPointer:
			inner = "*" + inner
			t = t.Elem
		case TArray:
			if strings.HasPrefix(inner, "*") {
				inner = "(" + inner + ")"
			}
			size := ""
			if t.Size != nil {
				size = p.expr(t.Size)
			}
			inner = inner + "[" + size + "]"
			t = t.Elem
		case TFunc:
			if strings.HasPrefix(inner, "*") {
				inner = "(" + inner + ")"
			}
			var params []string
			for _, pt := range t.Params {
				params = append(params, p.declString("", pt))
			}
			if t.Variadic {
				if len(params) > 0 {
					params = append(params, "...")
				}
			} else if len(params) == 0 {
				params = append(params, "void")
			}
			inner = inner + "(" + strings.Join(params, ", ") + ")"
			t = t.Ret
		default:
			base := t.String()
			if inner == "" {
				return base
			}
			return base + " " + inner
		}
	}
}

func (p *printer) decl(d Decl, top bool) {
	switch dd := d.(type) {
	case *VarDecl:
		s := p.declString(dd.Name, dd.Type)
		if dd.Init != nil {
			s += " = " + p.expr(dd.Init)
		}
		p.line("%s;", s)
	case *FuncDecl:
		// Reconstruct the heading from the parameter declarations so
		// parameter names survive.
		var params []string
		for _, pd := range dd.Params {
			params = append(params, p.declString(pd.Name, pd.Type))
		}
		if dd.Type.Variadic {
			if len(params) > 0 {
				params = append(params, "...")
			}
		} else if len(params) == 0 {
			params = append(params, "void")
		}
		head := p.declString(dd.Name+"("+strings.Join(params, ", ")+")", wrapRet(dd.Type))
		if dd.Body == nil {
			p.line("%s;", head)
			return
		}
		p.line("%s {", head)
		p.indent++
		for _, s := range dd.Body.Stmts {
			p.stmt(s)
		}
		p.indent--
		p.line("}")
	case *RecordDecl:
		kw := "struct"
		if dd.Union {
			kw = "union"
		}
		p.line("%s %s {", kw, dd.Tag)
		p.indent++
		for _, f := range dd.Fields {
			p.line("%s;", p.declString(f.Name, f.Type))
		}
		p.indent--
		p.line("};")
	case *TypedefDecl:
		p.line("typedef %s;", p.declString(dd.Name, dd.Type))
	case *EnumDecl:
		p.line("enum %s { %s };", dd.Tag, strings.Join(dd.Names, ", "))
	}
	_ = top
}

// wrapRet strips the function layer so declString renders only the return
// type around an already-built "name(params)" core.
func wrapRet(t *Type) *Type {
	if t != nil && t.Kind == TFunc {
		return t.Ret
	}
	return t
}

func (p *printer) stmt(s Stmt) {
	switch st := s.(type) {
	case nil:
		p.line(";")
	case *Block:
		p.line("{")
		p.indent++
		for _, inner := range st.Stmts {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *DeclStmt:
		for _, d := range st.Decls {
			p.decl(d, false)
		}
	case *ExprStmt:
		p.line("%s;", p.expr(st.X))
	case *If:
		p.line("if (%s)", p.expr(st.Cond))
		p.nested(st.Then)
		if st.Else != nil {
			p.line("else")
			p.nested(st.Else)
		}
	case *While:
		p.line("while (%s)", p.expr(st.Cond))
		p.nested(st.Body)
	case *DoWhile:
		p.line("do")
		p.nested(st.Body)
		p.line("while (%s);", p.expr(st.Cond))
	case *For:
		init, cond, post := "", "", ""
		switch i := st.Init.(type) {
		case nil:
		case *ExprStmt:
			init = p.expr(i.X)
		case *DeclStmt:
			// C99-style for-init declaration; print the first declarator
			// inline (the generator only emits simple ones).
			var sub printer
			sub.decl(i.Decls[0], false)
			init = strings.TrimSuffix(strings.TrimSpace(sub.b.String()), ";")
		}
		if st.Cond != nil {
			cond = p.expr(st.Cond)
		}
		if st.Post != nil {
			post = p.expr(st.Post)
		}
		p.line("for (%s; %s; %s)", init, cond, post)
		p.nested(st.Body)
	case *Return:
		if st.X != nil {
			p.line("return %s;", p.expr(st.X))
		} else {
			p.line("return;")
		}
	case *Switch:
		p.line("switch (%s)", p.expr(st.Tag))
		p.nested(st.Body)
	case *Case:
		if st.X != nil {
			p.line("case %s:", p.expr(st.X))
		} else {
			p.line("default:")
		}
		p.nested(st.Body)
	case *Label:
		p.line("%s:", st.Name)
		p.nested(st.Body)
	case *Goto:
		p.line("goto %s;", st.Name)
	case *Break:
		p.line("break;")
	case *Continue:
		p.line("continue;")
	case *Empty:
		p.line(";")
	}
}

// nested prints a statement indented one level (blocks handle their own
// braces).
func (p *printer) nested(s Stmt) {
	if _, isBlock := s.(*Block); isBlock {
		p.stmt(s)
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

var opText = map[Kind]string{
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	Inc: "++", Dec: "--",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", ModAssign: "%=", AndAssign: "&=", OrAssign: "|=",
	XorAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
}

func (p *printer) expr(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *IdentExpr:
		return x.Name
	case *IntExpr:
		return x.Text
	case *FloatExpr:
		return x.Text
	case *StrExpr:
		return `"` + x.Text + `"`
	case *UnaryExpr:
		return opText[x.Op] + "(" + p.expr(x.X) + ")"
	case *PostfixExpr:
		return "(" + p.expr(x.X) + ")" + opText[x.Op]
	case *BinaryExpr:
		return "(" + p.expr(x.L) + " " + opText[x.Op] + " " + p.expr(x.R) + ")"
	case *AssignExpr:
		return p.expr(x.L) + " " + opText[x.Op] + " " + p.expr(x.R)
	case *CondExpr:
		return "(" + p.expr(x.Cond) + " ? " + p.expr(x.Then) + " : " + p.expr(x.Else) + ")"
	case *CommaExpr:
		return "(" + p.expr(x.L) + ", " + p.expr(x.R) + ")"
	case *CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, p.expr(a))
		}
		return p.callee(x.Fun) + "(" + strings.Join(args, ", ") + ")"
	case *IndexExpr:
		return p.callee(x.X) + "[" + p.expr(x.Idx) + "]"
	case *MemberExpr:
		sel := "."
		if x.Arrow {
			sel = "->"
		}
		return p.callee(x.X) + sel + x.Name
	case *CastExpr:
		return "(" + p.declString("", x.Type) + ")(" + p.expr(x.X) + ")"
	case *SizeofExpr:
		if x.X != nil {
			return "sizeof(" + p.expr(x.X) + ")"
		}
		return "sizeof(" + p.declString("", x.Type) + ")"
	case *InitList:
		var elems []string
		for _, el := range x.Elems {
			elems = append(elems, p.expr(el))
		}
		return "{ " + strings.Join(elems, ", ") + " }"
	}
	return "/*?*/"
}

// callee renders a postfix-position subexpression, parenthesising anything
// that is not already postfix-tight.
func (p *printer) callee(e Expr) string {
	switch e.(type) {
	case *IdentExpr, *CallExpr, *IndexExpr, *MemberExpr, *StrExpr:
		return p.expr(e)
	}
	return "(" + p.expr(e) + ")"
}
