package cgen

import (
	"errors"
	"fmt"
	"strings"
)

// Parser is a recursive-descent parser for the C subset. It tracks typedef
// names (the classic lexer-feedback problem is solved in the parser, which
// consults its typedef table when deciding whether an identifier starts a
// type) and recovers from errors at declaration/statement granularity.
type Parser struct {
	toks     []Token
	pos      int
	typedefs map[string]*Type
	enums    map[string]bool
	errs     []error
	file     *File
}

// bailout is the panic payload used for parse-error recovery.
type bailout struct{}

// Parse parses a translation unit. It returns the AST and the combined
// lexer/parser errors; the AST covers whatever could be parsed.
func Parse(name, src string) (*File, []error) {
	toks, lexErrs := Tokenize(src)
	p := &Parser{
		toks:     toks,
		typedefs: map[string]*Type{},
		enums:    map[string]bool{},
		errs:     lexErrs,
		file:     &File{Name: name},
	}
	for !p.at(EOF) {
		start := p.pos
		p.recoverDecl(func() {
			p.parseExternalDecl()
		})
		if p.pos == start {
			// no progress: skip the offending token
			p.errorf("unexpected %s %q", p.cur().Kind, p.cur().Text)
			p.pos++
		}
	}
	return p.file, p.errs
}

// MustParse parses src and fails with a single combined error if anything
// went wrong. Convenient for tests and generated programs, which must
// always be valid.
func MustParse(name, src string) (*File, error) {
	f, errs := Parse(name, src)
	if len(errs) > 0 {
		msgs := make([]string, 0, len(errs))
		for i, e := range errs {
			if i == 8 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(errs)-i))
				break
			}
			msgs = append(msgs, e.Error())
		}
		return f, errors.New(name + ": " + strings.Join(msgs, "; "))
	}
	return f, nil
}

func (p *Parser) cur() Token {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return Token{Kind: EOF}
}

func (p *Parser) peekAt(n int) Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return Token{Kind: EOF}
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) Token {
	t := p.cur()
	if t.Kind != k {
		p.bail("expected %s, found %s %q", k, t.Kind, t.Text)
	}
	p.pos++
	return t
}

func (p *Parser) errorf(format string, args ...any) {
	t := p.cur()
	p.errs = append(p.errs, fmt.Errorf("%s: %s", t.Pos(), fmt.Sprintf(format, args...)))
}

func (p *Parser) bail(format string, args ...any) {
	p.errorf(format, args...)
	panic(bailout{})
}

// recoverDecl runs f; on a parse bailout it skips to the next ';' or
// top-level '}' so parsing can continue.
func (p *Parser) recoverDecl(f func()) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
			depth := 0
			for !p.at(EOF) {
				switch p.cur().Kind {
				case LBrace:
					depth++
				case RBrace:
					depth--
					if depth <= 0 {
						p.pos++
						return
					}
				case Semi:
					if depth == 0 {
						p.pos++
						return
					}
				}
				p.pos++
			}
		}
	}()
	f()
}

// --- declarations --------------------------------------------------------

// startsType reports whether the current token can begin declaration
// specifiers.
func (p *Parser) startsType() bool {
	switch p.cur().Kind {
	case KwInt, KwChar, KwShort, KwLong, KwFloat, KwDouble, KwVoid,
		KwUnsigned, KwSigned, KwStruct, KwUnion, KwEnum, KwTypedef,
		KwStatic, KwExtern, KwConst, KwVolatile, KwRegister, KwAuto:
		return true
	case Ident:
		_, ok := p.typedefs[p.cur().Text]
		return ok
	}
	return false
}

// parseDeclSpecs consumes declaration specifiers and returns the base type
// and whether 'typedef' appeared.
func (p *Parser) parseDeclSpecs() (base *Type, isTypedef bool) {
	var baseWords []string
	for {
		t := p.cur()
		switch t.Kind {
		case KwTypedef:
			isTypedef = true
			p.pos++
		case KwStatic, KwExtern, KwConst, KwVolatile, KwRegister, KwAuto:
			p.pos++ // storage classes and qualifiers don't affect the analysis
		case KwInt, KwChar, KwShort, KwLong, KwFloat, KwDouble, KwUnsigned, KwSigned:
			baseWords = append(baseWords, t.Text)
			p.pos++
		case KwVoid:
			base = VoidType
			p.pos++
		case KwStruct, KwUnion:
			base = p.parseRecordSpec(t.Kind == KwUnion)
		case KwEnum:
			base = p.parseEnumSpec()
		case Ident:
			if td, ok := p.typedefs[t.Text]; ok && base == nil && len(baseWords) == 0 {
				base = td
				p.pos++
				continue
			}
			goto done
		default:
			goto done
		}
	}
done:
	if base == nil {
		tag := "int"
		if len(baseWords) > 0 {
			tag = strings.Join(baseWords, " ")
		}
		base = &Type{Kind: TBase, Tag: tag}
	}
	return base, isTypedef
}

// parseRecordSpec parses struct/union specifiers, emitting a RecordDecl
// for definitions.
func (p *Parser) parseRecordSpec(union bool) *Type {
	p.pos++ // struct/union
	tag := ""
	if p.at(Ident) {
		tag = p.cur().Text
		p.pos++
	}
	typ := &Type{Kind: TStruct, Tag: tag}
	if !p.at(LBrace) {
		return typ
	}
	p.expect(LBrace)
	rec := &RecordDecl{Tag: tag, Union: union}
	for !p.at(RBrace) && !p.at(EOF) {
		base, _ := p.parseDeclSpecs()
		if p.accept(Semi) {
			continue // anonymous struct/union member
		}
		for {
			name, ftyp, _ := p.parseDeclarator(base)
			if p.accept(Colon) { // bit-field width
				p.parseCondExpr()
			}
			rec.Fields = append(rec.Fields, &VarDecl{Name: name, Type: ftyp})
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(Semi)
	}
	p.expect(RBrace)
	p.file.Decls = append(p.file.Decls, rec)
	return typ
}

// parseEnumSpec parses enum specifiers; enumerators become integer
// constants.
func (p *Parser) parseEnumSpec() *Type {
	p.pos++ // enum
	tag := ""
	if p.at(Ident) {
		tag = p.cur().Text
		p.pos++
	}
	if p.at(LBrace) {
		p.expect(LBrace)
		decl := &EnumDecl{Tag: tag}
		for !p.at(RBrace) && !p.at(EOF) {
			name := p.expect(Ident).Text
			decl.Names = append(decl.Names, name)
			p.enums[name] = true
			if p.accept(Assign) {
				p.parseCondExpr()
			}
			if !p.accept(Comma) {
				break
			}
		}
		p.expect(RBrace)
		p.file.Decls = append(p.file.Decls, decl)
	}
	return &Type{Kind: TBase, Tag: "enum " + tag}
}

// parseExternalDecl parses one top-level declaration or function
// definition.
func (p *Parser) parseExternalDecl() {
	if p.accept(Semi) {
		return
	}
	base, isTypedef := p.parseDeclSpecs()
	if p.accept(Semi) {
		return // bare struct/union/enum declaration
	}
	name, typ, params := p.parseDeclarator(base)
	if typ != nil && typ.Kind == TFunc && p.at(LBrace) {
		fd := &FuncDecl{Name: name, Type: typ, Params: params, Line: p.cur().Line}
		fd.Body = p.parseBlock()
		p.file.Decls = append(p.file.Decls, fd)
		return
	}
	p.finishDeclarators(base, isTypedef, name, typ, params, func(d Decl) {
		p.file.Decls = append(p.file.Decls, d)
	})
}

// finishDeclarators completes an init-declarator list whose first
// declarator has already been parsed, emitting declarations via sink.
func (p *Parser) finishDeclarators(base *Type, isTypedef bool, name string, typ *Type, params []*VarDecl, sink func(Decl)) {
	for {
		if isTypedef {
			if name != "" {
				p.typedefs[name] = typ
				sink(&TypedefDecl{Name: name, Type: typ})
			}
		} else if typ != nil && typ.Kind == TFunc {
			sink(&FuncDecl{Name: name, Type: typ, Params: params, Line: p.cur().Line}) // prototype
		} else {
			vd := &VarDecl{Name: name, Type: typ, Line: p.cur().Line}
			if p.accept(Assign) {
				vd.Init = p.parseInitializer()
			}
			sink(vd)
		}
		if !p.accept(Comma) {
			break
		}
		name, typ, params = p.parseDeclarator(base)
	}
	p.expect(Semi)
}

// typeOp is a pending declarator suffix.
type typeOp struct {
	array    bool
	size     Expr // array size, nil when omitted
	params   []*VarDecl
	variadic bool
}

// parseDeclarator parses a (possibly abstract) declarator against the base
// type and returns the declared name (empty for abstract declarators), the
// complete type, and — when the result is a function type — the parameter
// declarations of the suffix that produced it.
func (p *Parser) parseDeclarator(base *Type) (string, *Type, []*VarDecl) {
	ptrs := 0
	for p.at(Star) {
		p.pos++
		ptrs++
		for p.at(KwConst) || p.at(KwVolatile) {
			p.pos++
		}
	}

	name := ""
	var innerStart, innerEnd int = -1, -1
	switch {
	case p.at(Ident):
		name = p.cur().Text
		p.pos++
	case p.at(LParen) && p.startsDeclaratorAfterLParen():
		// Parenthesised declarator: remember the token span and re-parse
		// it once the outer type is known (inside-out type construction).
		p.pos++
		innerStart = p.pos
		depth := 1
		for depth > 0 && !p.at(EOF) {
			if p.at(LParen) {
				depth++
			} else if p.at(RParen) {
				depth--
				if depth == 0 {
					break
				}
			}
			p.pos++
		}
		innerEnd = p.pos
		p.expect(RParen)
	}

	// Suffixes: arrays and parameter lists.
	var suffixes []typeOp
	for {
		if p.accept(LBracket) {
			var size Expr
			if !p.at(RBracket) {
				size = p.parseExpr() // value irrelevant to the analysis; kept for printing
			}
			p.expect(RBracket)
			suffixes = append(suffixes, typeOp{array: true, size: size})
			continue
		}
		if p.at(LParen) {
			p.pos++
			params, variadic := p.parseParamList()
			p.expect(RParen)
			suffixes = append(suffixes, typeOp{params: params, variadic: variadic})
			continue
		}
		break
	}

	// Build the type inside-out: pointers bind tighter than the suffixes
	// of an enclosing declarator but looser than our own suffixes.
	t := base
	for i := 0; i < ptrs; i++ {
		t = Ptr(t)
	}
	var fparams []*VarDecl
	for i := len(suffixes) - 1; i >= 0; i-- {
		op := suffixes[i]
		if op.array {
			t = &Type{Kind: TArray, Elem: t, Size: op.size}
		} else {
			ptypes := make([]*Type, len(op.params))
			for j, pd := range op.params {
				ptypes[j] = pd.Type
			}
			t = &Type{Kind: TFunc, Ret: t, Params: ptypes, Variadic: op.variadic}
			if i == 0 {
				fparams = op.params
			}
		}
	}

	if innerStart >= 0 {
		// Re-parse the parenthesised declarator with t as its base.
		savedPos := p.pos
		savedToks := p.toks
		p.toks = p.toks[:innerEnd]
		p.pos = innerStart
		iname, ityp, iparams := p.parseDeclarator(t)
		p.toks = savedToks
		p.pos = savedPos
		if iparams == nil && ityp != nil && ityp.Kind == TFunc {
			iparams = fparams
		}
		return iname, ityp, iparams
	}
	return name, t, fparams
}

// startsDeclaratorAfterLParen disambiguates '(' declarator ')' from a
// parameter-list suffix in abstract declarators.
func (p *Parser) startsDeclaratorAfterLParen() bool {
	n := p.peekAt(1)
	switch n.Kind {
	case Star, LParen, LBracket:
		return true
	case Ident:
		_, isType := p.typedefs[n.Text]
		return !isType
	}
	return false
}

// parseParamList parses function parameters (possibly empty or "void").
func (p *Parser) parseParamList() (params []*VarDecl, variadic bool) {
	if p.at(RParen) {
		return nil, true // old-style unspecified parameters: be lenient
	}
	if p.at(KwVoid) && p.peekAt(1).Kind == RParen {
		p.pos++
		return nil, false
	}
	for {
		if p.accept(Ellipsis) {
			variadic = true
			break
		}
		if !p.startsType() {
			// K&R identifier list: accept bare names as int parameters.
			if p.at(Ident) {
				params = append(params, &VarDecl{Name: p.cur().Text, Type: IntType})
				p.pos++
			} else {
				p.bail("expected parameter declaration, found %s", p.cur().Kind)
			}
		} else {
			base, _ := p.parseDeclSpecs()
			name, typ, _ := p.parseDeclarator(base)
			// Arrays and functions decay to pointers in parameter position.
			switch typ.Kind {
			case TArray:
				typ = Ptr(typ.Elem)
			case TFunc:
				typ = Ptr(typ)
			}
			params = append(params, &VarDecl{Name: name, Type: typ})
		}
		if !p.accept(Comma) {
			break
		}
	}
	return params, variadic
}

// parseTypeName parses a type-name (as in casts and sizeof).
func (p *Parser) parseTypeName() *Type {
	base, _ := p.parseDeclSpecs()
	_, typ, _ := p.parseDeclarator(base)
	return typ
}

// parseInitializer parses an initializer: an assignment expression or a
// brace list (with optional designators, which the field-insensitive
// analysis ignores).
func (p *Parser) parseInitializer() Expr {
	if !p.at(LBrace) {
		return p.parseAssignExpr()
	}
	p.expect(LBrace)
	lst := &InitList{}
	for !p.at(RBrace) && !p.at(EOF) {
		// Skip designators: .name = / [expr] =
		for {
			if p.at(Dot) && p.peekAt(1).Kind == Ident {
				p.pos += 2
				p.accept(Assign)
				continue
			}
			if p.at(LBracket) {
				p.pos++
				p.parseCondExpr()
				p.expect(RBracket)
				p.accept(Assign)
				continue
			}
			break
		}
		lst.Elems = append(lst.Elems, p.parseInitializer())
		if !p.accept(Comma) {
			break
		}
	}
	p.expect(RBrace)
	return lst
}

// --- statements ----------------------------------------------------------

func (p *Parser) parseBlock() *Block {
	p.expect(LBrace)
	b := &Block{}
	for !p.at(RBrace) && !p.at(EOF) {
		start := p.pos
		p.recoverDecl(func() {
			b.Stmts = append(b.Stmts, p.parseStmt())
		})
		if p.pos == start {
			p.errorf("unexpected %s in block", p.cur().Kind)
			p.pos++
		}
	}
	p.expect(RBrace)
	return b
}

// parseLocalDecls parses a block-level declaration into a DeclStmt.
func (p *Parser) parseLocalDecls() Stmt {
	ds := &DeclStmt{}
	base, isTypedef := p.parseDeclSpecs()
	if p.accept(Semi) {
		return ds // bare struct/enum declaration in a block
	}
	name, typ, params := p.parseDeclarator(base)
	p.finishDeclarators(base, isTypedef, name, typ, params, func(d Decl) {
		ds.Decls = append(ds.Decls, d)
	})
	return ds
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case Semi:
		p.pos++
		return &Empty{}
	case LBrace:
		return p.parseBlock()
	case KwIf:
		p.pos++
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		then := p.parseStmt()
		var els Stmt
		if p.accept(KwElse) {
			els = p.parseStmt()
		}
		return &If{Cond: cond, Then: then, Else: els}
	case KwWhile:
		p.pos++
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		return &While{Cond: cond, Body: p.parseStmt()}
	case KwDo:
		p.pos++
		body := p.parseStmt()
		p.expect(KwWhile)
		p.expect(LParen)
		cond := p.parseExpr()
		p.expect(RParen)
		p.expect(Semi)
		return &DoWhile{Body: body, Cond: cond}
	case KwFor:
		p.pos++
		p.expect(LParen)
		f := &For{}
		if !p.at(Semi) {
			if p.startsType() {
				f.Init = p.parseLocalDecls() // consumes the ';'
			} else {
				f.Init = &ExprStmt{X: p.parseExpr()}
				p.expect(Semi)
			}
		} else {
			p.expect(Semi)
		}
		if !p.at(Semi) {
			f.Cond = p.parseExpr()
		}
		p.expect(Semi)
		if !p.at(RParen) {
			f.Post = p.parseExpr()
		}
		p.expect(RParen)
		f.Body = p.parseStmt()
		return f
	case KwReturn:
		p.pos++
		r := &Return{}
		if !p.at(Semi) {
			r.X = p.parseExpr()
		}
		p.expect(Semi)
		return r
	case KwBreak:
		p.pos++
		p.expect(Semi)
		return &Break{}
	case KwContinue:
		p.pos++
		p.expect(Semi)
		return &Continue{}
	case KwGoto:
		p.pos++
		name := p.expect(Ident).Text
		p.expect(Semi)
		return &Goto{Name: name}
	case KwSwitch:
		p.pos++
		p.expect(LParen)
		tag := p.parseExpr()
		p.expect(RParen)
		var body *Block
		if p.at(LBrace) {
			body = p.parseBlock()
		} else {
			body = &Block{Stmts: []Stmt{p.parseStmt()}}
		}
		return &Switch{Tag: tag, Body: body}
	case KwCase:
		p.pos++
		x := p.parseCondExpr()
		p.expect(Colon)
		return &Case{X: x, Body: p.parseStmt()}
	case KwDefault:
		p.pos++
		p.expect(Colon)
		return &Case{Body: p.parseStmt()}
	case Ident:
		if p.peekAt(1).Kind == Colon {
			name := p.cur().Text
			p.pos += 2
			return &Label{Name: name, Body: p.parseStmt()}
		}
	}
	if p.startsType() {
		return p.parseLocalDecls()
	}
	x := p.parseExpr()
	p.expect(Semi)
	return &ExprStmt{X: x}
}

// --- expressions ---------------------------------------------------------

func (p *Parser) parseExpr() Expr {
	x := p.parseAssignExpr()
	for p.accept(Comma) {
		x = &CommaExpr{L: x, R: p.parseAssignExpr()}
	}
	return x
}

func isAssignOp(k Kind) bool {
	switch k {
	case Assign, AddAssign, SubAssign, MulAssign, DivAssign, ModAssign,
		AndAssign, OrAssign, XorAssign, ShlAssign, ShrAssign:
		return true
	}
	return false
}

func (p *Parser) parseAssignExpr() Expr {
	x := p.parseCondExpr()
	if isAssignOp(p.cur().Kind) {
		op := p.cur().Kind
		p.pos++
		return &AssignExpr{Op: op, L: x, R: p.parseAssignExpr()}
	}
	return x
}

func (p *Parser) parseCondExpr() Expr {
	x := p.parseBinaryExpr(0)
	if p.accept(Question) {
		then := p.parseExpr()
		p.expect(Colon)
		return &CondExpr{Cond: x, Then: then, Else: p.parseAssignExpr()}
	}
	return x
}

// binary operator precedence, lowest first
var binPrec = map[Kind]int{
	OrOr: 1, AndAnd: 2, Pipe: 3, Caret: 4, Amp: 5,
	EqEq: 6, NotEq: 6,
	Lt: 7, Gt: 7, Le: 7, Ge: 7,
	Shl: 8, Shr: 8,
	Plus: 9, Minus: 9,
	Star: 10, Slash: 10, Percent: 10,
}

func (p *Parser) parseBinaryExpr(minPrec int) Expr {
	x := p.parseCastExpr()
	for {
		prec, ok := binPrec[p.cur().Kind]
		if !ok || prec < minPrec {
			return x
		}
		op := p.cur().Kind
		p.pos++
		y := p.parseBinaryExpr(prec + 1)
		x = &BinaryExpr{Op: op, L: x, R: y}
	}
}

// startsTypeNameAfterLParen reports whether '(' begins a cast or a
// parenthesised expression.
func (p *Parser) startsTypeNameAfterLParen() bool {
	n := p.peekAt(1)
	switch n.Kind {
	case KwInt, KwChar, KwShort, KwLong, KwFloat, KwDouble, KwVoid,
		KwUnsigned, KwSigned, KwStruct, KwUnion, KwEnum, KwConst, KwVolatile:
		return true
	case Ident:
		_, ok := p.typedefs[n.Text]
		return ok
	}
	return false
}

func (p *Parser) parseCastExpr() Expr {
	if p.at(LParen) && p.startsTypeNameAfterLParen() {
		p.pos++
		typ := p.parseTypeName()
		p.expect(RParen)
		return &CastExpr{Type: typ, X: p.parseCastExpr()}
	}
	return p.parseUnaryExpr()
}

func (p *Parser) parseUnaryExpr() Expr {
	switch p.cur().Kind {
	case Amp, Star, Plus, Minus, Not, Tilde:
		op := p.cur().Kind
		p.pos++
		return &UnaryExpr{Op: op, X: p.parseCastExpr()}
	case Inc, Dec:
		op := p.cur().Kind
		p.pos++
		return &UnaryExpr{Op: op, X: p.parseUnaryExpr()}
	case KwSizeof:
		p.pos++
		if p.at(LParen) && p.startsTypeNameAfterLParen() {
			p.pos++
			typ := p.parseTypeName()
			p.expect(RParen)
			return &SizeofExpr{Type: typ}
		}
		return &SizeofExpr{X: p.parseUnaryExpr()}
	}
	return p.parsePostfixExpr()
}

func (p *Parser) parsePostfixExpr() Expr {
	x := p.parsePrimaryExpr()
	for {
		switch p.cur().Kind {
		case LBracket:
			p.pos++
			idx := p.parseExpr()
			p.expect(RBracket)
			x = &IndexExpr{X: x, Idx: idx}
		case LParen:
			tok := p.cur()
			p.pos++
			call := &CallExpr{Fun: x, Line: tok.Line, Col: tok.Col}
			for !p.at(RParen) && !p.at(EOF) {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(Comma) {
					break
				}
			}
			p.expect(RParen)
			x = call
		case Dot:
			p.pos++
			x = &MemberExpr{X: x, Name: p.expect(Ident).Text}
		case Arrow:
			p.pos++
			x = &MemberExpr{X: x, Name: p.expect(Ident).Text, Arrow: true}
		case Inc, Dec:
			x = &PostfixExpr{Op: p.cur().Kind, X: x}
			p.pos++
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimaryExpr() Expr {
	t := p.cur()
	switch t.Kind {
	case Ident:
		p.pos++
		return &IdentExpr{Name: t.Text, Line: t.Line}
	case IntLit:
		p.pos++
		return &IntExpr{Text: t.Text}
	case CharLit:
		p.pos++
		return &IntExpr{Text: "'" + t.Text + "'"}
	case FloatLit:
		p.pos++
		return &FloatExpr{Text: t.Text}
	case StrLit:
		p.pos++
		// Adjacent string literals concatenate.
		text := t.Text
		for p.at(StrLit) {
			text += p.cur().Text
			p.pos++
		}
		return &StrExpr{Text: text, Line: t.Line, Col: t.Col}
	case LParen:
		p.pos++
		x := p.parseExpr()
		p.expect(RParen)
		return x
	}
	p.bail("expected expression, found %s %q", t.Kind, t.Text)
	return nil
}
