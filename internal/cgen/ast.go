package cgen

// This file defines the abstract syntax tree. The analysis is
// flow-insensitive, so the AST favours simplicity over fidelity: types are
// flattened to the shape information Andersen's analysis needs (pointer
// depth, array-ness, function signatures, struct identity) and constant
// expressions are kept only to be walked.

// TypeKind classifies the flattened type representation.
type TypeKind int

const (
	// TBase is any scalar base type (int, char, float, enum, ...).
	TBase TypeKind = iota
	// TVoid is void.
	TVoid
	// TPointer is a pointer; Elem is the pointee.
	TPointer
	// TArray is an array; Elem is the element type.
	TArray
	// TFunc is a function type; Ret and Params describe the signature.
	TFunc
	// TStruct is a struct or union type; Tag identifies it.
	TStruct
)

// Type is a flattened C type.
type Type struct {
	Kind     TypeKind
	Elem     *Type   // pointee or element type
	Ret      *Type   // function return type
	Params   []*Type // function parameter types
	Variadic bool    // function declared with ...
	Tag      string  // struct/union tag or typedef spelling
	Size     Expr    // array size expression, nil when omitted
}

// Ptr returns a pointer-to-t type.
func Ptr(t *Type) *Type { return &Type{Kind: TPointer, Elem: t} }

var (
	// IntType is the canonical scalar type.
	IntType = &Type{Kind: TBase, Tag: "int"}
	// VoidType is void.
	VoidType = &Type{Kind: TVoid}
)

// IsPointerLike reports whether values of the type carry locations: a
// pointer, or an array (which decays to a pointer to its collapsed
// element).
func (t *Type) IsPointerLike() bool {
	return t != nil && (t.Kind == TPointer || t.Kind == TArray)
}

// String renders the type, mainly for tests and diagnostics.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case TBase:
		if t.Tag != "" {
			return t.Tag
		}
		return "int"
	case TVoid:
		return "void"
	case TPointer:
		return t.Elem.String() + "*"
	case TArray:
		return t.Elem.String() + "[]"
	case TStruct:
		return "struct " + t.Tag
	case TFunc:
		s := t.Ret.String() + "("
		for i, p := range t.Params {
			if i > 0 {
				s += ","
			}
			s += p.String()
		}
		if t.Variadic {
			s += ",..."
		}
		return s + ")"
	}
	return "?"
}

// File is a parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Decl is a top-level or block-level declaration.
type Decl interface{ isDecl() }

// VarDecl declares one variable (multi-declarator declarations are split).
type VarDecl struct {
	Name string
	Type *Type
	Init Expr // nil if none; an InitList for brace initialisers
	Line int
}

// FuncDecl is a function definition or prototype (Body nil for
// prototypes).
type FuncDecl struct {
	Name   string
	Type   *Type // always TFunc
	Params []*VarDecl
	Body   *Block
	Line   int
}

// RecordDecl declares a struct or union's fields (field-insensitive
// analysis keeps only the names for node counting).
type RecordDecl struct {
	Tag    string
	Union  bool
	Fields []*VarDecl
}

// TypedefDecl records a typedef; the parser resolves later uses, so the
// analysis can ignore it.
type TypedefDecl struct {
	Name string
	Type *Type
}

// EnumDecl declares an enum; enumerators behave as integer constants.
type EnumDecl struct {
	Tag   string
	Names []string
}

func (*VarDecl) isDecl()     {}
func (*FuncDecl) isDecl()    {}
func (*RecordDecl) isDecl()  {}
func (*TypedefDecl) isDecl() {}
func (*EnumDecl) isDecl()    {}

// Stmt is a statement.
type Stmt interface{ isStmt() }

// Block is a brace-enclosed statement list.
type Block struct{ Stmts []Stmt }

// DeclStmt wraps block-level declarations.
type DeclStmt struct{ Decls []Decl }

// ExprStmt evaluates an expression for effect.
type ExprStmt struct{ X Expr }

// If is an if/else statement.
type If struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Cond Expr
	Body Stmt
}

// DoWhile is a do ... while loop.
type DoWhile struct {
	Body Stmt
	Cond Expr
}

// For is a for loop; any of Init/Cond/Post may be nil. Init may be a
// DeclStmt (C99 style).
type For struct {
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// Return returns from a function; X may be nil.
type Return struct{ X Expr }

// Switch is a switch statement; the body is parsed as an ordinary block
// whose statements may be Case-labelled.
type Switch struct {
	Tag  Expr
	Body *Block
}

// Case labels a statement inside a switch (nil X for default).
type Case struct {
	X    Expr
	Body Stmt
}

// Label is a goto label.
type Label struct {
	Name string
	Body Stmt
}

// Goto jumps to a label (ignored by the flow-insensitive analysis).
type Goto struct{ Name string }

// Break and Continue are loop controls.
type Break struct{}

// Continue continues the innermost loop.
type Continue struct{}

// Empty is the lone-semicolon statement.
type Empty struct{}

func (*Block) isStmt()    {}
func (*DeclStmt) isStmt() {}
func (*ExprStmt) isStmt() {}
func (*If) isStmt()       {}
func (*While) isStmt()    {}
func (*DoWhile) isStmt()  {}
func (*For) isStmt()      {}
func (*Return) isStmt()   {}
func (*Switch) isStmt()   {}
func (*Case) isStmt()     {}
func (*Label) isStmt()    {}
func (*Goto) isStmt()     {}
func (*Break) isStmt()    {}
func (*Continue) isStmt() {}
func (*Empty) isStmt()    {}

// Expr is an expression.
type Expr interface{ isExpr() }

// IdentExpr names a variable, function or enumerator.
type IdentExpr struct {
	Name string
	Line int
}

// IntExpr is an integer (or char) constant.
type IntExpr struct{ Text string }

// FloatExpr is a floating constant.
type FloatExpr struct{ Text string }

// StrExpr is a string literal; each literal is an abstract location.
type StrExpr struct {
	Text string
	Line int
	Col  int
}

// UnaryExpr covers & * + - ! ~ and prefix ++/--.
type UnaryExpr struct {
	Op Kind // Amp, Star, Plus, Minus, Not, Tilde, Inc, Dec
	X  Expr
}

// PostfixExpr covers postfix ++/--.
type PostfixExpr struct {
	Op Kind // Inc or Dec
	X  Expr
}

// BinaryExpr covers the arithmetic, relational and logical binaries.
type BinaryExpr struct {
	Op   Kind
	L, R Expr
}

// AssignExpr covers = and the compound assignments.
type AssignExpr struct {
	Op   Kind // Assign, AddAssign, ...
	L, R Expr
}

// CondExpr is the ternary conditional.
type CondExpr struct {
	Cond, Then, Else Expr
}

// CommaExpr is the comma operator.
type CommaExpr struct{ L, R Expr }

// CallExpr is a function call, direct or through a pointer.
type CallExpr struct {
	Fun  Expr
	Args []Expr
	Line int
	Col  int
}

// IndexExpr is array subscripting.
type IndexExpr struct{ X, Idx Expr }

// MemberExpr is field selection; Arrow distinguishes -> from '.'.
type MemberExpr struct {
	X     Expr
	Name  string
	Arrow bool
}

// CastExpr is a C cast; Andersen passes values through casts untouched.
type CastExpr struct {
	Type *Type
	X    Expr
}

// SizeofExpr is sizeof(expr) or sizeof(type); X nil for the type form.
type SizeofExpr struct {
	X    Expr
	Type *Type
}

// InitList is a brace initialiser { e1, e2, ... }.
type InitList struct{ Elems []Expr }

func (*IdentExpr) isExpr()   {}
func (*IntExpr) isExpr()     {}
func (*FloatExpr) isExpr()   {}
func (*StrExpr) isExpr()     {}
func (*UnaryExpr) isExpr()   {}
func (*PostfixExpr) isExpr() {}
func (*BinaryExpr) isExpr()  {}
func (*AssignExpr) isExpr()  {}
func (*CondExpr) isExpr()    {}
func (*CommaExpr) isExpr()   {}
func (*CallExpr) isExpr()    {}
func (*IndexExpr) isExpr()   {}
func (*MemberExpr) isExpr()  {}
func (*CastExpr) isExpr()    {}
func (*SizeofExpr) isExpr()  {}
func (*InitList) isExpr()    {}
