// Package cgen is a small C front end: a lexer, abstract syntax tree and
// recursive-descent parser for the subset of (preprocessed) C that
// Andersen's points-to analysis needs — declarations with full declarator
// syntax (pointers, arrays, function pointers), struct/union/enum and
// typedef declarations, function definitions, the statement forms, and the
// full expression grammar. Control flow is parsed faithfully but the
// points-to analysis is flow-insensitive, so clients mostly just walk every
// statement.
//
// It substitutes for the C front end the paper used on its 25 real C
// benchmarks; see DESIGN.md for the substitution argument.
package cgen

import "fmt"

// Kind classifies a lexical token.
type Kind int

// Token kinds. Single-character operators use their own rune value space
// via the named constants below so the parser can switch on Kind alone.
const (
	EOF Kind = iota
	Ident
	TypeName // identifier known to be a typedef name (set by the parser feedback)
	IntLit
	FloatLit
	CharLit
	StrLit

	// keywords
	KwInt
	KwChar
	KwShort
	KwLong
	KwFloat
	KwDouble
	KwVoid
	KwUnsigned
	KwSigned
	KwStruct
	KwUnion
	KwEnum
	KwTypedef
	KwStatic
	KwExtern
	KwConst
	KwVolatile
	KwRegister
	KwAuto
	KwIf
	KwElse
	KwWhile
	KwFor
	KwDo
	KwReturn
	KwBreak
	KwContinue
	KwSwitch
	KwCase
	KwDefault
	KwGoto
	KwSizeof

	// punctuation and operators
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Colon
	Question
	Ellipsis

	Assign    // =
	AddAssign // +=
	SubAssign // -=
	MulAssign // *=
	DivAssign // /=
	ModAssign // %=
	AndAssign // &=
	OrAssign  // |=
	XorAssign // ^=
	ShlAssign // <<=
	ShrAssign // >>=

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Not
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	EqEq
	NotEq
	AndAnd
	OrOr
	Inc
	Dec
	Dot
	Arrow
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", TypeName: "type name",
	IntLit: "integer literal", FloatLit: "float literal",
	CharLit: "char literal", StrLit: "string literal",
	KwInt: "int", KwChar: "char", KwShort: "short", KwLong: "long",
	KwFloat: "float", KwDouble: "double", KwVoid: "void",
	KwUnsigned: "unsigned", KwSigned: "signed", KwStruct: "struct",
	KwUnion: "union", KwEnum: "enum", KwTypedef: "typedef",
	KwStatic: "static", KwExtern: "extern", KwConst: "const",
	KwVolatile: "volatile", KwRegister: "register", KwAuto: "auto",
	KwIf: "if", KwElse: "else", KwWhile: "while", KwFor: "for",
	KwDo: "do", KwReturn: "return", KwBreak: "break",
	KwContinue: "continue", KwSwitch: "switch", KwCase: "case",
	KwDefault: "default", KwGoto: "goto", KwSizeof: "sizeof",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",",
	Colon: ":", Question: "?", Ellipsis: "...",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", ModAssign: "%=", AndAssign: "&=", OrAssign: "|=",
	XorAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||",
	Inc: "++", Dec: "--", Dot: ".", Arrow: "->",
}

// String names the token kind in error messages.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "short": KwShort, "long": KwLong,
	"float": KwFloat, "double": KwDouble, "void": KwVoid,
	"unsigned": KwUnsigned, "signed": KwSigned, "struct": KwStruct,
	"union": KwUnion, "enum": KwEnum, "typedef": KwTypedef,
	"static": KwStatic, "extern": KwExtern, "const": KwConst,
	"volatile": KwVolatile, "register": KwRegister, "auto": KwAuto,
	"if": KwIf, "else": KwElse, "while": KwWhile, "for": KwFor,
	"do": KwDo, "return": KwReturn, "break": KwBreak,
	"continue": KwContinue, "switch": KwSwitch, "case": KwCase,
	"default": KwDefault, "goto": KwGoto, "sizeof": KwSizeof,
}

// Token is one lexical token with its source position.
type Token struct {
	Kind Kind
	Text string // identifier or literal spelling
	Line int
	Col  int
}

// Pos renders the token's position for diagnostics.
func (t Token) Pos() string { return fmt.Sprintf("%d:%d", t.Line, t.Col) }
