// Package solver is a deprecated alias of the root polce package.
//
// The façade was promoted to the module root so external clients get a
// public import path; every name here is a true alias of its polce
// counterpart, so existing internal clients keep compiling unchanged for
// one release.
//
// Deprecated: import the root package polce instead.
package solver

import (
	"polce"
)

type (
	// Solver is an alias of polce.Solver.
	Solver = polce.Solver
	// Snapshot is an alias of polce.Snapshot.
	Snapshot = polce.Snapshot
	// Constraint is an alias of polce.Constraint.
	Constraint = polce.Constraint

	// Options through Intersection alias the constraint vocabulary; see
	// the root polce package for documentation.
	Options       = polce.Options
	Form          = polce.Form
	CyclePolicy   = polce.CyclePolicy
	OrderStrategy = polce.OrderStrategy
	Oracle        = polce.Oracle
	Stats         = polce.Stats
	GraphStats    = polce.GraphStats
	MetricsSink   = polce.MetricsSink
	LSPass        = polce.LSPass
	Event         = polce.Event
	EventKind     = polce.EventKind
	Variance      = polce.Variance
	Constructor   = polce.Constructor
	Expr          = polce.Expr
	Var           = polce.Var
	Term          = polce.Term
	Union         = polce.Union
	Intersection  = polce.Intersection

	// BatchID and RetractReport alias the retraction vocabulary; see the
	// root polce package for documentation.
	BatchID       = polce.BatchID
	RetractReport = polce.RetractReport

	// InconsistentError is an alias of polce.InconsistentError.
	InconsistentError = polce.InconsistentError
)

const (
	SF = polce.SF
	IF = polce.IF

	CycleNone             = polce.CycleNone
	CycleOnline           = polce.CycleOnline
	CycleOnlineIncreasing = polce.CycleOnlineIncreasing
	CycleOracle           = polce.CycleOracle
	CyclePeriodic         = polce.CyclePeriodic

	OrderRandom          = polce.OrderRandom
	OrderCreation        = polce.OrderCreation
	OrderReverseCreation = polce.OrderReverseCreation

	Covariant     = polce.Covariant
	Contravariant = polce.Contravariant

	EventSourceEdge = polce.EventSourceEdge
	EventSinkEdge   = polce.EventSinkEdge
	EventVarEdge    = polce.EventVarEdge
	EventCycle      = polce.EventCycle
	EventSweep      = polce.EventSweep
)

var (
	Zero = polce.Zero
	One  = polce.One

	ErrInconsistent   = polce.ErrInconsistent
	ErrQueueFull      = polce.ErrQueueFull
	ErrSolverClosed   = polce.ErrSolverClosed
	ErrUnknownBatch   = polce.ErrUnknownBatch
	ErrNotRetractable = polce.ErrNotRetractable
)

// Constructors and helpers forwarded to the root package.
var (
	New             = polce.New
	NewInitialGraph = polce.NewInitialGraph
	BuildOracle     = polce.BuildOracle
	NewConstructor  = polce.NewConstructor
	NewTerm         = polce.NewTerm
	NewUnion        = polce.NewUnion
	NewIntersection = polce.NewIntersection
)
