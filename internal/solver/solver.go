// Package solver is the public façade of the inclusion-constraint solver:
// the top of the three-layer stack over the resolution engine
// (internal/core) and the graph storage layer (internal/core/graph).
//
// A Solver wraps one core.System with a mutex, so one goroutine can ingest
// constraints while others take Snapshots and run least-solution queries
// against them; snapshots are immutable and read without locking. The
// façade also re-exports the whole constraint vocabulary (variables,
// terms, options, events), so clients need only this import.
package solver

import (
	"io"
	"sync"

	"polce/internal/core"
)

// Constraint is one pending inclusion L ⊆ R for AddBatch.
type Constraint struct {
	L, R Expr
}

// Solver is a thread-safe façade over one constraint system. All methods
// are safe for concurrent use; each takes the solver's lock, so a method
// call is one atomic step of the underlying online solver. For bulk
// ingestion use AddBatch, which holds the lock across the whole batch; for
// concurrent reads use Snapshot, which is lock-free after capture.
type Solver struct {
	mu  sync.Mutex
	sys *core.System

	// snap is the last snapshot taken, reused (copy-on-write) while the
	// graph version is unchanged.
	snap *Snapshot
}

// New creates an empty constraint system with the given options.
func New(opt Options) *Solver {
	return &Solver{sys: core.NewSystem(opt)}
}

// NewInitialGraph creates a solver that resolves constraints to atomic
// edges but performs no closure and no cycle elimination (the paper's
// "initial graph").
func NewInitialGraph(opt Options) *Solver {
	return &Solver{sys: core.NewInitialGraph(opt)}
}

// BuildOracle derives a cycle oracle from a solved system; see
// core.BuildOracle.
func BuildOracle(s *Solver) *Oracle {
	s.mu.Lock()
	defer s.mu.Unlock()
	return core.BuildOracle(s.sys)
}

// Fresh creates a new set variable.
func (s *Solver) Fresh(name string) *Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Fresh(name)
}

// AddConstraint adds l ⊆ r and immediately restores closure.
func (s *Solver) AddConstraint(l, r Expr) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.AddConstraint(l, r)
}

// AddBatch adds every constraint of the batch under one lock acquisition.
// The constraints are applied in order through the same online path as
// AddConstraint — closure and cycle elimination run at each one — so a
// batch is exactly a sequence of AddConstraint calls that no concurrent
// reader can interleave.
func (s *Solver) AddBatch(batch []Constraint) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range batch {
		s.sys.AddConstraint(c.L, c.R)
	}
}

// Fresh variables and constraints in one locked step are not needed by any
// current client; compose Fresh + AddBatch instead.

// ComputeLeastSolutions materialises the least solution for every
// variable (a no-op under standard form or while the cache is hot).
func (s *Solver) ComputeLeastSolutions() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sys.ComputeLeastSolutions()
}

// LeastSolution returns the source terms in the least solution of v, in
// first-reached order. The returned slice must not be modified, and — as
// it may alias live solver storage — must be consumed before further
// constraints are added. Concurrent readers should use Snapshot instead.
func (s *Solver) LeastSolution(v *Var) []*Term {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.LeastSolution(v)
}

// Stats returns the solver's counters so far.
func (s *Solver) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Stats()
}

// Errors returns the retained inconsistency errors.
func (s *Solver) Errors() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Errors()
}

// ErrorCount returns the total number of inconsistencies seen.
func (s *Solver) ErrorCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.ErrorCount()
}

// CollapseCycles runs an offline Tarjan pass and collapses every
// non-trivial strongly connected component.
func (s *Solver) CollapseCycles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CollapseCycles()
}

// CycleClassStats reports how many variables belong to cyclic equivalence
// classes and the size of the largest class.
func (s *Solver) CycleClassStats() (inCycles, maxClass int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CycleClassStats()
}

// TotalEdges returns the total number of distinct edges in the graph.
func (s *Solver) TotalEdges() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.TotalEdges()
}

// EdgeCounts tallies the distinct edges in the current graph.
func (s *Solver) EdgeCounts() (varVar, source, sink int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.EdgeCounts()
}

// CurrentGraphStats measures the graph as it stands.
func (s *Solver) CurrentGraphStats() GraphStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CurrentGraphStats()
}

// WriteDOT renders the current constraint graph in Graphviz DOT format.
func (s *Solver) WriteDOT(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.WriteDOT(w)
}

// NumCreated returns the number of Fresh calls so far.
func (s *Solver) NumCreated() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.NumCreated()
}

// CreatedVar returns the variable handed out for creation index i.
func (s *Solver) CreatedVar(i int) *Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CreatedVar(i)
}

// Find returns the canonical representative of v.
func (s *Solver) Find(v *Var) *Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Find(v)
}

// CanonicalVars returns the canonical (non-eliminated) variables in
// creation order.
func (s *Solver) CanonicalVars() []*Var {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.CanonicalVars()
}

// VarAdjacency builds the directed inclusion adjacency over vars.
func (s *Solver) VarAdjacency(vars []*Var) (adj [][]int, index map[*Var]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.VarAdjacency(vars)
}

// Form returns the graph representation in use.
func (s *Solver) Form() Form {
	// The representation is fixed at construction; no lock needed.
	return s.sys.Form()
}

// Policy returns the cycle-elimination policy in use.
func (s *Solver) Policy() CyclePolicy {
	// The policy is fixed at construction; no lock needed.
	return s.sys.Policy()
}

// Version returns the least-solution epoch of the graph; it advances
// exactly when a mutation that can change some least solution is applied.
func (s *Solver) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sys.Version()
}
