package solver_test

import (
	"testing"

	"polce"
	solver "polce/internal/solver"
)

// TestAliasesAreIdentities pins the deprecation contract: the alias
// package's values and constructors are the root package's, so a client
// built against either interoperates with the other.
func TestAliasesAreIdentities(t *testing.T) {
	var s *solver.Solver = solver.New(solver.Options{Form: solver.IF, Cycles: solver.CycleOnline, Seed: 1})
	var p *polce.Solver = s // same type, by alias
	a := solver.NewTerm(solver.NewConstructor("a"))
	x := p.Fresh("X")
	s.AddConstraint(a, x)
	snap := p.Snapshot()
	if got := snap.LeastSolution(x); len(got) != 1 || got[0] != a {
		t.Fatalf("LS through aliased façade = %v", got)
	}
	if solver.ErrQueueFull != polce.ErrQueueFull || solver.Zero != polce.Zero {
		t.Fatal("alias package re-declares values instead of aliasing them")
	}
	if solver.ErrUnknownBatch != polce.ErrUnknownBatch || solver.ErrNotRetractable != polce.ErrNotRetractable {
		t.Fatal("alias package re-declares retraction sentinels instead of aliasing them")
	}
}

// TestRetractionAliases pins the retraction vocabulary through the alias
// package: BatchID and RetractReport are the root package's types, and a
// retraction driven entirely through aliased names behaves identically.
func TestRetractionAliases(t *testing.T) {
	s := solver.New(solver.Options{Form: solver.IF, Cycles: solver.CycleOnline, Seed: 2, Retractable: true})
	a := solver.NewTerm(solver.NewConstructor("a"))
	x := s.Fresh("X")
	var id polce.BatchID = s.AddConstraint(a, x) // solver.BatchID = polce.BatchID, by alias
	var rep solver.RetractReport
	rep, err := s.RetractBatch(id)
	if err != nil {
		t.Fatalf("RetractBatch through alias: %v", err)
	}
	if rep.NoOp {
		t.Fatal("retracting the only justification reported NoOp")
	}
	if got := s.Snapshot().LeastSolution(x); len(got) != 0 {
		t.Fatalf("LS after aliased retraction = %v, want empty", got)
	}
}
