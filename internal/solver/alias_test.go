package solver_test

import (
	"testing"

	"polce"
	solver "polce/internal/solver"
)

// TestAliasesAreIdentities pins the deprecation contract: the alias
// package's values and constructors are the root package's, so a client
// built against either interoperates with the other.
func TestAliasesAreIdentities(t *testing.T) {
	var s *solver.Solver = solver.New(solver.Options{Form: solver.IF, Cycles: solver.CycleOnline, Seed: 1})
	var p *polce.Solver = s // same type, by alias
	a := solver.NewTerm(solver.NewConstructor("a"))
	x := p.Fresh("X")
	s.AddConstraint(a, x)
	snap := p.Snapshot()
	if got := snap.LeastSolution(x); len(got) != 1 || got[0] != a {
		t.Fatalf("LS through aliased façade = %v", got)
	}
	if solver.ErrQueueFull != polce.ErrQueueFull || solver.Zero != polce.Zero {
		t.Fatal("alias package re-declares values instead of aliasing them")
	}
}
