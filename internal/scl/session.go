package scl

// Incremental parsing and lowering, for long-lived sessions (the HTTP
// constraint service foremost) that grow one constraint program across
// many requests instead of parsing a file once: ParseAppend extends a File
// atomically, and a Binder lowers surface constraints into a live solver
// while interning variables by name and terms structurally across calls.

import (
	"fmt"

	"polce"
)

// ParseAppend parses additional statements into f and returns the
// constraints they added, in order. The append is atomic: on a parse
// error, every constructor declaration, variable first-use, query and
// constraint introduced by src is rolled back and f is exactly as before
// the call. Returned constraints are also recorded in f.Constraints.
func (f *File) ParseAppend(src string) ([]Constraint, error) {
	nCons := len(f.consNames)
	nVars := len(f.varNames)
	nConstraints := len(f.Constraints)
	nQueries := len(f.Queries)
	if err := f.parseAll(src); err != nil {
		for _, name := range f.consNames[nCons:] {
			delete(f.Cons, name)
		}
		f.consNames = f.consNames[:nCons]
		for _, name := range f.varNames[nVars:] {
			delete(f.varSet, name)
		}
		f.varNames = f.varNames[:nVars]
		f.Constraints = f.Constraints[:nConstraints]
		f.Queries = f.Queries[:nQueries]
		return nil, err
	}
	return f.Constraints[nConstraints:], nil
}

// A Binder lowers surface expressions into solver expressions against one
// live solver. Variables are interned by name — the first occurrence calls
// Fresh, later ones reuse the handle — and terms structurally, so every
// occurrence of the same written term denotes the same *polce.Term across
// the binder's whole lifetime. A Binder is not safe for concurrent use;
// callers serialise (the service holds its session lock).
type Binder struct {
	Sys  *polce.Solver
	Vars map[string]*polce.Var

	file  *File
	terms map[string]*polce.Term
}

// NewBinder returns a binder lowering f's vocabulary into sys. No
// variables are created yet; they appear on first use (or via EnsureVars).
func NewBinder(f *File, sys *polce.Solver) *Binder {
	return &Binder{
		Sys:   sys,
		Vars:  map[string]*polce.Var{},
		file:  f,
		terms: map[string]*polce.Term{},
	}
}

// EnsureVars creates, in order, any of the named variables the binder has
// not seen yet. Callers that need a deterministic creation order (seeded
// variable orders, golden outputs) pass File.VarNames before lowering.
func (b *Binder) EnsureVars(names []string) {
	for _, name := range names {
		b.Var(name)
	}
}

// Var returns the solver variable interned under name, creating it on
// first use.
func (b *Binder) Var(name string) *polce.Var {
	if v, ok := b.Vars[name]; ok {
		return v
	}
	v := b.Sys.Fresh(name)
	b.Vars[name] = v
	return v
}

// Bind lowers one surface expression.
func (b *Binder) Bind(e Expr) polce.Expr {
	switch x := e.(type) {
	case *VarExpr:
		return b.Var(x.Name)
	case *ZeroExpr:
		return polce.Zero
	case *OneExpr:
		return polce.One
	case *TermExpr:
		// Terms are interned structurally: since variables are interned by
		// name and sub-terms recursively, identity of the built argument
		// expressions is a sound structural key.
		args := make([]polce.Expr, len(x.Args))
		key := x.Con
		for i, a := range x.Args {
			args[i] = b.Bind(a)
			key += fmt.Sprintf("|%p", args[i])
		}
		if t, ok := b.terms[key]; ok {
			return t
		}
		t := polce.NewTerm(b.file.Cons[x.Con], args...)
		b.terms[key] = t
		return t
	case *OpExpr:
		if x.Op == '|' {
			return polce.NewUnion(b.Bind(x.L), b.Bind(x.R))
		}
		return polce.NewIntersection(b.Bind(x.L), b.Bind(x.R))
	}
	panic(fmt.Sprintf("scl: unknown expression %T", e))
}

// Lower lowers a batch of surface constraints into solver constraints,
// ready for Solver.AddBatch.
func (b *Binder) Lower(cs []Constraint) []polce.Constraint {
	out := make([]polce.Constraint, len(cs))
	for i, c := range cs {
		out[i] = polce.Constraint{L: b.Bind(c.L), R: b.Bind(c.R)}
	}
	return out
}
