// Package scl implements a small textual set-constraint language, so the
// solver can be driven standalone — the way the authors' BANE toolkit
// exposed their solver — without going through a program analysis.
//
// Syntax (line oriented; '#' starts a comment; ';' also separates
// statements):
//
//	cons c(+, -)        declare constructor c with covariant and
//	                    contravariant arguments (“cons a” is nullary)
//	e1 <= e2            an inclusion constraint
//	query X             print X's least solution when the system is run
//
// Expressions:
//
//	X, Y, result        variables (auto-created on first use)
//	c(e1, e2)           constructed terms; a nullary constructor is
//	                    written bare: a
//	0, 1                the empty and universal sets
//	e1 | e2             union (left-hand sides only)
//	e1 & e2             intersection (right-hand sides only)
//	( e )               grouping
//
// A parsed System can be solved under any representation and cycle
// policy, which makes .scl files convenient solver test corpora.
package scl

import (
	"fmt"
	"sort"
	"strings"

	"polce"
)

// Constraint is one inclusion of the source file.
type Constraint struct {
	L, R Expr
	Line int
}

// File is a parsed constraint program.
type File struct {
	Cons        map[string]*polce.Constructor
	Constraints []Constraint
	Queries     []string // variable names, in order
	varNames    []string // first-use order
	varSet      map[string]bool
	consNames   []string // declaration order, for ParseAppend rollback
}

// Expr is the surface syntax tree for a set expression.
type Expr interface{ isExpr() }

// VarExpr names a variable.
type VarExpr struct{ Name string }

// TermExpr is a constructed term.
type TermExpr struct {
	Con  string
	Args []Expr
}

// OpExpr is a union ('|') or intersection ('&').
type OpExpr struct {
	Op   byte // '|' or '&'
	L, R Expr
}

// ZeroExpr and OneExpr are the constant sets.
type ZeroExpr struct{}

// OneExpr is the universal set.
type OneExpr struct{}

func (*VarExpr) isExpr()  {}
func (*TermExpr) isExpr() {}
func (*OpExpr) isExpr()   {}
func (*ZeroExpr) isExpr() {}
func (*OneExpr) isExpr()  {}

// VarNames returns the variables in first-use order.
func (f *File) VarNames() []string { return f.varNames }

// Parse reads a constraint program.
func Parse(src string) (*File, error) {
	f := &File{Cons: map[string]*polce.Constructor{}, varSet: map[string]bool{}}
	if err := f.parseAll(src); err != nil {
		return nil, err
	}
	return f, nil
}

// parseAll feeds every statement of src through parseStmt.
func (f *File) parseAll(src string) error {
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		if i := strings.IndexByte(raw, '#'); i >= 0 {
			raw = raw[:i]
		}
		for _, stmt := range strings.Split(raw, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			if err := f.parseStmt(stmt, ln+1); err != nil {
				return err
			}
		}
	}
	return nil
}

// MustParse parses or panics (tests, embedded corpora).
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *File) parseStmt(stmt string, line int) error {
	switch {
	case strings.HasPrefix(stmt, "cons "):
		return f.parseCons(strings.TrimSpace(stmt[5:]), line)
	case strings.HasPrefix(stmt, "query "):
		name := strings.TrimSpace(stmt[6:])
		if name == "" {
			return fmt.Errorf("scl:%d: empty query", line)
		}
		f.touchVar(name)
		f.Queries = append(f.Queries, name)
		return nil
	}
	idx := strings.Index(stmt, "<=")
	if idx < 0 {
		return fmt.Errorf("scl:%d: statement is not a declaration, query or constraint: %q", line, stmt)
	}
	l, err := f.parseExpr(stmt[:idx], line)
	if err != nil {
		return err
	}
	r, err := f.parseExpr(stmt[idx+2:], line)
	if err != nil {
		return err
	}
	f.Constraints = append(f.Constraints, Constraint{L: l, R: r, Line: line})
	return nil
}

func (f *File) parseCons(decl string, line int) error {
	name := decl
	var sig []polce.Variance
	if i := strings.IndexByte(decl, '('); i >= 0 {
		if !strings.HasSuffix(decl, ")") {
			return fmt.Errorf("scl:%d: malformed constructor declaration %q", line, decl)
		}
		name = strings.TrimSpace(decl[:i])
		inner := strings.TrimSpace(decl[i+1 : len(decl)-1])
		if inner != "" {
			for _, v := range strings.Split(inner, ",") {
				switch strings.TrimSpace(v) {
				case "+":
					sig = append(sig, polce.Covariant)
				case "-":
					sig = append(sig, polce.Contravariant)
				default:
					return fmt.Errorf("scl:%d: variance must be + or -, got %q", line, v)
				}
			}
		}
	}
	if !isIdent(name) {
		return fmt.Errorf("scl:%d: bad constructor name %q", line, name)
	}
	if _, dup := f.Cons[name]; dup {
		return fmt.Errorf("scl:%d: constructor %s redeclared", line, name)
	}
	f.Cons[name] = polce.NewConstructor(name, sig...)
	f.consNames = append(f.consNames, name)
	return nil
}

func (f *File) touchVar(name string) {
	if !f.varSet[name] {
		f.varSet[name] = true
		f.varNames = append(f.varNames, name)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// --- expression parsing (tiny recursive descent over a rune scanner) -----

type exprParser struct {
	file *File
	src  string
	pos  int
	line int
}

func (f *File) parseExpr(src string, line int) (Expr, error) {
	p := &exprParser{file: f, src: src, line: line}
	e, err := p.parseOps()
	if err != nil {
		return nil, err
	}
	p.skip()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("scl:%d: trailing input %q", line, p.src[p.pos:])
	}
	return e, nil
}

func (p *exprParser) skip() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *exprParser) parseOps() (Expr, error) {
	l, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		p.skip()
		if p.pos >= len(p.src) || (p.src[p.pos] != '|' && p.src[p.pos] != '&') {
			return l, nil
		}
		op := p.src[p.pos]
		p.pos++
		r, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		l = &OpExpr{Op: op, L: l, R: r}
	}
}

func (p *exprParser) parseAtom() (Expr, error) {
	p.skip()
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("scl:%d: expected expression", p.line)
	}
	c := p.src[p.pos]
	switch {
	case c == '(':
		p.pos++
		e, err := p.parseOps()
		if err != nil {
			return nil, err
		}
		p.skip()
		if p.pos >= len(p.src) || p.src[p.pos] != ')' {
			return nil, fmt.Errorf("scl:%d: missing ')'", p.line)
		}
		p.pos++
		return e, nil
	case c == '0':
		p.pos++
		return &ZeroExpr{}, nil
	case c == '1':
		p.pos++
		return &OneExpr{}, nil
	}
	start := p.pos
	for p.pos < len(p.src) && isIdentByte(p.src[p.pos], p.pos > start) {
		p.pos++
	}
	name := p.src[start:p.pos]
	if name == "" {
		return nil, fmt.Errorf("scl:%d: unexpected character %q", p.line, c)
	}
	p.skip()
	if _, isCon := p.file.Cons[name]; isCon {
		term := &TermExpr{Con: name}
		if p.pos < len(p.src) && p.src[p.pos] == '(' {
			p.pos++
			for {
				arg, err := p.parseOps()
				if err != nil {
					return nil, err
				}
				term.Args = append(term.Args, arg)
				p.skip()
				if p.pos < len(p.src) && p.src[p.pos] == ',' {
					p.pos++
					continue
				}
				break
			}
			if p.pos >= len(p.src) || p.src[p.pos] != ')' {
				return nil, fmt.Errorf("scl:%d: missing ')' after arguments of %s", p.line, name)
			}
			p.pos++
		}
		if got, want := len(term.Args), p.file.Cons[name].Arity(); got != want {
			return nil, fmt.Errorf("scl:%d: %s expects %d argument(s), got %d", p.line, name, want, got)
		}
		return term, nil
	}
	p.file.touchVar(name)
	return &VarExpr{Name: name}, nil
}

func isIdentByte(c byte, notFirst bool) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
		(notFirst && c >= '0' && c <= '9')
}

// --- evaluation -----------------------------------------------------------

// Solved is a constraint program loaded into a live solver.
type Solved struct {
	Sys  *polce.Solver
	Vars map[string]*polce.Var
	file *File
}

// Solve builds a polce.Solver from the file under the given options and
// adds every constraint. Variables are created up front in first-use order
// so seeded variable orders stay deterministic.
func (f *File) Solve(opt polce.Options) *Solved {
	b := NewBinder(f, polce.New(opt))
	b.EnsureVars(f.varNames)
	for _, c := range f.Constraints {
		b.Sys.AddConstraint(b.Bind(c.L), b.Bind(c.R))
	}
	return &Solved{Sys: b.Sys, Vars: b.Vars, file: f}
}

// QueryResults renders each `query` line's least solution as
// "name = {t1, t2, ...}" with sorted members.
func (s *Solved) QueryResults() []string {
	var out []string
	for _, name := range s.file.Queries {
		v := s.Vars[name]
		var members []string
		for _, t := range s.Sys.LeastSolution(v) {
			members = append(members, t.String())
		}
		sort.Strings(members)
		out = append(out, fmt.Sprintf("%s = {%s}", name, strings.Join(members, ", ")))
	}
	return out
}
