package scl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"polce"
)

// TestCorpus runs every .scl file under testdata against every solver
// configuration. Expected query results are written inline as
// "# expect NAME = {members}" comments, so each corpus file is a
// self-contained solver test.
func TestCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.scl")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)

			var want []string
			for _, line := range strings.Split(src, "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "# expect "); ok {
					want = append(want, strings.TrimSpace(rest))
				}
			}
			if len(want) == 0 {
				t.Fatalf("%s has no # expect lines", path)
			}

			f, err := Parse(src)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if len(f.Queries) != len(want) {
				t.Fatalf("%d queries but %d expectations", len(f.Queries), len(want))
			}

			for _, form := range []polce.Form{polce.SF, polce.IF} {
				for _, pol := range []polce.CyclePolicy{polce.CycleNone, polce.CycleOnline, polce.CyclePeriodic} {
					for seed := int64(0); seed < 3; seed++ {
						s := f.Solve(polce.Options{Form: form, Cycles: pol, Seed: seed, PeriodicInterval: 8})
						got := s.QueryResults()
						for i := range want {
							if got[i] != want[i] {
								t.Errorf("%v/%v seed %d: query %d = %q, want %q",
									form, pol, seed, i, got[i], want[i])
							}
						}
						if n := s.Sys.ErrorCount(); n != 0 {
							t.Errorf("%v/%v seed %d: %d solver errors: %v", form, pol, seed, n, s.Sys.Errors()[0])
						}
					}
				}
			}
		})
	}
}
