package scl

import (
	"strings"
	"testing"

	"polce"
)

// TestParseAppendGrowsOneProgram checks that a file parsed in increments
// solves identically to the same program parsed at once, with constructor
// and variable identities shared across increments.
func TestParseAppendGrowsOneProgram(t *testing.T) {
	whole := MustParse("cons a; cons c(+)\na <= X; X <= Y\nc(Y) <= Z; query Z")

	inc := MustParse("cons a; cons c(+)")
	cs1, err := inc.ParseAppend("a <= X; X <= Y")
	if err != nil || len(cs1) != 2 {
		t.Fatalf("ParseAppend 1 = %v, %v", cs1, err)
	}
	cs2, err := inc.ParseAppend("c(Y) <= Z; query Z")
	if err != nil || len(cs2) != 1 {
		t.Fatalf("ParseAppend 2 = %v, %v", cs2, err)
	}

	opt := polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3}
	a := whole.Solve(opt).QueryResults()
	b := inc.Solve(opt).QueryResults()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("incremental parse diverges:\n%v\n%v", a, b)
	}
}

// TestParseAppendRollsBackOnError pins atomicity: a failing append leaves
// no trace — its declarations, variables and constraints all unwind, and
// the same statements can be re-submitted after fixing the error.
func TestParseAppendRollsBackOnError(t *testing.T) {
	f := MustParse("cons a\na <= X")
	if _, err := f.ParseAppend("cons d(+); d(Y) <= Z; query Q; what is this"); err == nil {
		t.Fatal("malformed append did not error")
	}
	if _, ok := f.Cons["d"]; ok {
		t.Fatal("rolled-back constructor survived")
	}
	if len(f.Constraints) != 1 || len(f.Queries) != 0 {
		t.Fatalf("rolled-back statements survived: %d constraints, %d queries", len(f.Constraints), len(f.Queries))
	}
	if got := f.VarNames(); len(got) != 1 || got[0] != "X" {
		t.Fatalf("rolled-back variables survived: %v", got)
	}
	// Re-declaring d after the rollback works (no phantom duplicate).
	if _, err := f.ParseAppend("cons d(+); d(X) <= Z"); err != nil {
		t.Fatalf("re-append after rollback: %v", err)
	}
}

// TestBinderIncrementalLowering drives a Binder the way the serve session
// does: lower each appended batch into a live solver, with vars created on
// first use and term identity preserved across batches.
func TestBinderIncrementalLowering(t *testing.T) {
	f := MustParse("cons a; cons c(+)")
	sys := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 7})
	b := NewBinder(f, sys)

	cs, err := f.ParseAppend("a <= X; c(X) <= Y")
	if err != nil {
		t.Fatal(err)
	}
	sys.AddBatch(b.Lower(cs))
	cs, err = f.ParseAppend("Y <= Z; c(X) <= W")
	if err != nil {
		t.Fatal(err)
	}
	lowered := b.Lower(cs)
	sys.AddBatch(lowered)

	// The c(X) in batch 2 must be the same *Term as in batch 1.
	zLS := sys.LeastSolution(b.Var("Z"))
	wLS := sys.LeastSolution(b.Var("W"))
	if len(zLS) != 1 || len(wLS) != 1 || zLS[0] != wLS[0] {
		t.Fatalf("term identity broke across batches: LS(Z)=%v LS(W)=%v", zLS, wLS)
	}
	if got := sys.LeastSolution(b.Var("X")); len(got) != 1 || got[0].String() != "a" {
		t.Fatalf("LS(X) = %v", got)
	}
}
