package scl

import (
	"fmt"
	"strings"
	"testing"

	"polce"
)

func solve(t *testing.T, src string, opt polce.Options) *Solved {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Solve(opt)
}

func TestBasicProgram(t *testing.T) {
	src := `
# a tiny system
cons apple
cons pear
apple <= X
X <= Y ; pear <= Y
query X
query Y
`
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		s := solve(t, src, polce.Options{Form: form, Cycles: polce.CycleOnline, Seed: 1})
		got := s.QueryResults()
		want := []string{"X = {apple}", "Y = {apple, pear}"}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%v: query %d = %q, want %q", form, i, got[i], want[i])
			}
		}
	}
}

func TestConstructorsAndVariance(t *testing.T) {
	src := `
cons a
cons box(+)
cons sink(-)
a <= X
box(X) <= box(Y)
sink(Z) <= sink(X)
query Y
query Z
`
	s := solve(t, src, polce.Options{Form: polce.IF, Seed: 2})
	got := s.QueryResults()
	if got[0] != "Y = {a}" {
		t.Errorf("covariant flow: %q", got[0])
	}
	if got[1] != "Z = {a}" {
		t.Errorf("contravariant flow: %q", got[1])
	}
}

func TestCyclesCollapse(t *testing.T) {
	src := `
cons a
a <= X
X <= Y
Y <= Z
Z <= X
query Z
`
	s := solve(t, src, polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 3})
	if s.Sys.Stats().VarsEliminated != 2 {
		t.Errorf("eliminated = %d, want 2", s.Sys.Stats().VarsEliminated)
	}
	if got := s.QueryResults()[0]; got != "Z = {a}" {
		t.Errorf("query = %q", got)
	}
}

func TestSetOpsAndConstants(t *testing.T) {
	src := `
cons a
cons b
a <= X
b <= Y
X | Y <= Z
Z <= U & V
0 <= W
W <= 1
query Z
query U
query V
`
	s := solve(t, src, polce.Options{Form: polce.SF, Seed: 4})
	got := s.QueryResults()
	if got[0] != "Z = {a, b}" || got[1] != "U = {a, b}" || got[2] != "V = {a, b}" {
		t.Errorf("results: %v", got)
	}
	if s.Sys.ErrorCount() != 0 {
		t.Errorf("errors: %v", s.Sys.Errors())
	}
}

func TestNestedTerms(t *testing.T) {
	src := `
cons a
cons pair(+, -)
cons wrap(+)
a <= L
pair(wrap(L), R) <= X
X <= pair(wrap(M), a | L)
query M
`
	s := solve(t, src, polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 5})
	if got := s.QueryResults()[0]; got != "M = {a}" {
		t.Errorf("M = %q", got)
	}
	// Contravariant side: (a | L) ⊆ R — a union from decomposition.
	r := s.Vars["R"]
	if len(s.Sys.LeastSolution(r)) != 1 {
		t.Errorf("LS(R) = %v", s.Sys.LeastSolution(r))
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"cons":                  "statement is not",
		"cons 9bad":             "bad constructor name",
		"cons a\ncons a":        "redeclared",
		"cons c(+,*)":           "variance",
		"X <= ":                 "expected expression",
		"X Y":                   "statement is not",
		"cons box(+)\nbox <= X": "expects 1 argument",
		"X <= (Y":               "missing ')'",
		"query":                 "statement is not",
		"X <= Y extra":          "trailing input",
	}
	for src, wantSub := range bad {
		_, err := Parse(src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", src, wantSub)
			continue
		}
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("Parse(%q) error %q, want substring %q", src, err, wantSub)
		}
	}
}

func TestIllegalPositionsSurfaceAsSolverErrors(t *testing.T) {
	src := `
cons a
a <= X
X <= Y | Z
`
	s := solve(t, src, polce.Options{Form: polce.SF, Seed: 6})
	if s.Sys.ErrorCount() == 0 {
		t.Error("union on the right did not produce a solver error")
	}
}

func TestVarNamesFirstUseOrder(t *testing.T) {
	f := MustParse("cons a\na <= Zed\nZed <= Alpha\nquery Mid")
	got := fmt.Sprint(f.VarNames())
	if got != "[Zed Alpha Mid]" {
		t.Errorf("VarNames = %v", got)
	}
}

// TestAllConfigsAgreeOnSCL reuses a cyclic program as a solver corpus
// across every configuration.
func TestAllConfigsAgreeOnSCL(t *testing.T) {
	src := `
cons a
cons b
cons box(+)
a <= V0 ; b <= V1
V0 <= V2 ; V2 <= V4 ; V4 <= V0      # a 3-cycle
V1 <= V3 ; V3 <= V1                 # a 2-cycle
box(V0) <= box(V5)
V4 <= V5
query V0 ; query V3 ; query V5
`
	f := MustParse(src)
	ref := f.Solve(polce.Options{Form: polce.SF, Cycles: polce.CycleNone, Seed: 0})
	want := fmt.Sprint(ref.QueryResults())
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		for _, pol := range []polce.CyclePolicy{polce.CycleNone, polce.CycleOnline, polce.CyclePeriodic} {
			for seed := int64(0); seed < 5; seed++ {
				s := f.Solve(polce.Options{Form: form, Cycles: pol, Seed: seed, PeriodicInterval: 4})
				if got := fmt.Sprint(s.QueryResults()); got != want {
					t.Fatalf("%v/%v seed %d:\n got %s\nwant %s", form, pol, seed, got, want)
				}
			}
		}
	}
}
