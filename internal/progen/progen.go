// Package progen generates synthetic but realistic pointer-manipulating C
// programs. It substitutes for the paper's suite of 25 real C benchmarks
// (allroots … gcc-2.7.2), which we cannot ship: the generator is tuned so
// the *initial constraint graphs* of the generated programs match the
// statistics the paper reports in Table 1 — edge density around one edge
// per variable, roughly one set variable per handful of AST nodes, few
// variables on cycles initially — while pointer-copy chains, parameter
// passing, recursion and calls through function pointers make most cycles
// appear during resolution, exactly the regime the paper studies.
//
// Programs are organised into regions (clusters of functions with their
// own globals, weakly connected through a shared hub and neighbouring
// calls), which mirrors real programs' module structure and yields many
// medium-sized strongly connected components rather than one giant one.
//
// Generation is deterministic in Config: the same configuration always
// yields byte-identical source, which the oracle experiments rely on.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterises one generated program.
type Config struct {
	// Seed drives all random choices.
	Seed int64
	// Functions is the number of function definitions.
	Functions int
	// StmtsPerFunc is the average number of statements per function body.
	StmtsPerFunc int
	// FuncsPerRegion controls module locality (default 8).
	FuncsPerRegion int
	// DataTables emits this many large initialised integer arrays — bulk
	// that inflates the AST without adding pointer constraints. The
	// paper's flex benchmark was exactly this kind of outlier (its
	// footnote 5: "although flex is a large program, it contains large
	// initialized arrays. Thus as far as points-to analysis is concerned,
	// it actually behaves like a small program").
	DataTables int
}

// ByScaleDataHeavy sizes a program like ByScale but spends most of the
// AST budget on initialised data tables, reproducing the paper's flex
// outlier: large in AST nodes, small as a constraint problem.
func ByScaleDataHeavy(seed int64, ast int) Config {
	code := ast / 5 // a fifth of the budget is real code
	cfg := ByScale(seed, code)
	cfg.DataTables = (ast - code) / 135 // ≈133 AST nodes per table
	return cfg
}

// ByScale returns a configuration sized so the generated program has
// roughly `ast` AST nodes (as counted by cgen.CountNodes).
func ByScale(seed int64, ast int) Config {
	funcs := ast / 230
	if funcs < 3 {
		funcs = 3
	}
	return Config{Seed: seed, Functions: funcs, StmtsPerFunc: 28, FuncsPerRegion: 8}
}

// pools is one region's (or the hub's) variable pools, grouped by shape.
type pools struct {
	objs   []string // int
	p1s    []string // int *
	p2s    []string // int **
	nodes  []string // struct node
	pnodes []string // struct node *
	fps    []string // int *(*)(int *, int *)
	arrs   []string // int *[8]
}

// fnSig describes a generated function's interface.
type fnSig struct {
	name   string
	node   bool // node-flavoured: struct node *f(struct node *, int *)
	region int
}

// generator carries the emission state.
type generator struct {
	rng *rand.Rand
	b   strings.Builder
	cfg Config

	regions []pools
	hub     pools
	funcs   []fnSig
	indent  int

	// ord assigns every variable a declaration ordinal. Direct copies are
	// emitted mostly low→high ordinal: real programs' direct assignments
	// rarely form syntactic cycles (most cyclic flow goes through the
	// heap and appears only during resolution, as the paper observes),
	// and the occasional reversal supplies the initial cycles Table 1
	// does report.
	ord    map[string]int
	nextID int
}

// order registers (or looks up) a variable's ordinal.
func (g *generator) order(name string) int {
	if o, ok := g.ord[name]; ok {
		return o
	}
	g.nextID++
	g.ord[name] = g.nextID
	return g.nextID
}

// directed orders a (dst, src) pair so flow runs low→high ordinal, with a
// small chance of reversal.
func (g *generator) directed(dst, src string) (string, string) {
	if g.order(dst) < g.order(src) && g.rng.Intn(100) >= 12 {
		return src, dst
	}
	return dst, src
}

// callShape orders a call site's destination and arguments: the
// destination takes the highest ordinal of the candidates (and differs
// from the arguments when possible), so that values flow low→high through
// function interfaces and syntactic cycles stay rare, as in real code.
// A small fraction is left unordered to provide the initial cycles the
// paper's Table 1 reports.
func (g *generator) callShape(cands ...string) (dst string, args []string) {
	if g.rng.Intn(100) < 12 {
		return cands[0], cands[1:]
	}
	hi := 0
	for i, c := range cands {
		if g.order(c) > g.order(cands[hi]) {
			hi = i
		}
	}
	dst = cands[hi]
	for i, c := range cands {
		if i != hi {
			args = append(args, c)
		}
	}
	return dst, args
}

// Generate emits one C translation unit.
func Generate(cfg Config) string {
	if cfg.FuncsPerRegion <= 0 {
		cfg.FuncsPerRegion = 8
	}
	if cfg.StmtsPerFunc <= 0 {
		cfg.StmtsPerFunc = 28
	}
	g := &generator{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg, ord: map[string]int{}}
	g.prelude()
	g.dataTables()
	g.declareGlobals()
	g.prototypes()
	for i := range g.funcs {
		g.function(i)
	}
	g.main()
	return g.b.String()
}

func (g *generator) line(format string, args ...any) {
	for i := 0; i < g.indent; i++ {
		g.b.WriteByte('\t')
	}
	fmt.Fprintf(&g.b, format, args...)
	g.b.WriteByte('\n')
}

func (g *generator) pick(pool []string) string {
	return pool[g.rng.Intn(len(pool))]
}

func (g *generator) numRegions() int {
	n := (g.cfg.Functions + g.cfg.FuncsPerRegion - 1) / g.cfg.FuncsPerRegion
	if n < 1 {
		n = 1
	}
	return n
}

func (g *generator) prelude() {
	g.line("/* generated by polce progen; seed=%d funcs=%d */", g.cfg.Seed, g.cfg.Functions)
	g.line("struct node { struct node *next; struct node *prev; int *data; int key; };")
	g.line("")
}

// dataTables emits the flex-style initialised integer tables: lots of AST
// nodes, no pointer flow.
func (g *generator) dataTables() {
	for i := 0; i < g.cfg.DataTables; i++ {
		g.b.WriteString(fmt.Sprintf("int data_tab%d[] = { ", i))
		n := 128
		for j := 0; j < n; j++ {
			if j > 0 {
				g.b.WriteString(", ")
			}
			fmt.Fprintf(&g.b, "%d", g.rng.Intn(512))
		}
		g.b.WriteString(" };\n")
	}
	if g.cfg.DataTables > 0 {
		g.line("")
	}
}

// declareGlobals emits per-region pools plus a small shared hub.
func (g *generator) declareGlobals() {
	emit := func(p *pools, tag string, scale int) {
		add := func(dst *[]string, decl, pfx string, n int) {
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("%s%s%d", pfx, tag, i)
				*dst = append(*dst, name)
				g.line(decl, name)
			}
		}
		add(&p.objs, "int %s;", "o", 3*scale)
		add(&p.p1s, "int *%s;", "p", 3*scale)
		add(&p.p2s, "int **%s;", "q", scale)
		add(&p.nodes, "struct node %s;", "n", scale)
		add(&p.pnodes, "struct node *%s;", "m", 2*scale)
		add(&p.fps, "int *(*%s)(int *, int *);", "f", scale)
		add(&p.arrs, "int *%s[8];", "a", scale)
	}
	emit(&g.hub, "h", 2)
	for r := 0; r < g.numRegions(); r++ {
		g.regions = append(g.regions, pools{})
		emit(&g.regions[r], fmt.Sprintf("r%d_", r), 3)
	}
	g.line("")
}

func (g *generator) prototypes() {
	for i := 0; i < g.cfg.Functions; i++ {
		sig := fnSig{
			name:   fmt.Sprintf("fn%d", i),
			node:   g.rng.Intn(3) == 0,
			region: i / g.cfg.FuncsPerRegion,
		}
		g.funcs = append(g.funcs, sig)
	}
	for _, f := range g.funcs {
		if f.node {
			g.line("struct node *%s(struct node *n0, int *a0);", f.name)
		} else {
			g.line("int *%s(int *a0, int *a1);", f.name)
		}
	}
	g.line("")
}

// scope is the set of names usable inside one function body. Locals are
// kept separately so statement templates can bias toward them (real code
// shuffles data through locals, which keeps the *initial* graph nearly
// acyclic — cycles appear during resolution). The shared hub is touched
// rarely: it is the weak link between modules, not a freeway.
type scope struct {
	g      *generator
	region pools // this region's globals
	hub    pools
	local  pools
}

// pickg draws from the region's globals, with a small chance of the hub.
func (sc *scope) pickg(region, hub []string) string {
	if len(hub) > 0 && (len(region) == 0 || sc.g.rng.Intn(100) < 7) {
		return sc.g.pick(hub)
	}
	return sc.g.pick(region)
}

// lhs picks a destination: mostly a local, sometimes a global.
func (sc *scope) lhs(local, region, hub []string) string {
	if len(local) > 0 && (len(region) == 0 || sc.g.rng.Intn(100) < 70) {
		return sc.g.pick(local)
	}
	return sc.pickg(region, hub)
}

// rhs picks a source: evenly local or global.
func (sc *scope) rhs(local, region, hub []string) string {
	if len(local) > 0 && (len(region) == 0 || sc.g.rng.Intn(100) < 50) {
		return sc.g.pick(local)
	}
	return sc.pickg(region, hub)
}

// callee picks a function to call from region r: usually local, often the
// next region (a layered architecture), rarely anyone — the backward calls
// that occasionally tie distant modules into one component.
func (g *generator) callee(r int) fnSig {
	nr := g.numRegions()
	target := r
	switch p := g.rng.Intn(100); {
	case p < 75:
		// same region
	case p < 95:
		target = (r + 1) % nr
	default:
		target = g.rng.Intn(nr)
	}
	lo := target * g.cfg.FuncsPerRegion
	hi := lo + g.cfg.FuncsPerRegion
	if hi > len(g.funcs) {
		hi = len(g.funcs)
	}
	if lo >= hi {
		return g.funcs[g.rng.Intn(len(g.funcs))]
	}
	return g.funcs[lo+g.rng.Intn(hi-lo)]
}

func (g *generator) function(idx int) {
	f := g.funcs[idx]
	sc := &scope{g: g, region: g.regions[f.region], hub: g.hub}
	if f.node {
		g.line("struct node *%s(struct node *n0, int *a0) {", f.name)
		sc.local.pnodes = append(sc.local.pnodes, "n0")
		sc.local.p1s = append(sc.local.p1s, "a0")
	} else {
		g.line("int *%s(int *a0, int *a1) {", f.name)
		sc.local.p1s = append(sc.local.p1s, "a0", "a1")
	}
	g.indent++

	nl := 3 + g.rng.Intn(4)
	for i := 0; i < nl; i++ {
		switch g.rng.Intn(6) {
		case 0:
			g.line("int lo%d;", i)
			sc.local.objs = append(sc.local.objs, fmt.Sprintf("lo%d", i))
		case 1, 2, 3:
			g.line("int *lp%d;", i)
			sc.local.p1s = append(sc.local.p1s, fmt.Sprintf("lp%d", i))
		case 4:
			g.line("int **lq%d;", i)
			sc.local.p2s = append(sc.local.p2s, fmt.Sprintf("lq%d", i))
		default:
			g.line("struct node *lm%d;", i)
			sc.local.pnodes = append(sc.local.pnodes, fmt.Sprintf("lm%d", i))
		}
	}
	g.line("int li = 0;")

	n := g.cfg.StmtsPerFunc/2 + g.rng.Intn(g.cfg.StmtsPerFunc)
	for i := 0; i < n; i++ {
		g.stmt(sc, f, 0)
	}

	// Returning parameters and locals threads return values back into
	// argument flows, creating resolution-time cycles through the call
	// graph.
	if f.node {
		switch g.rng.Intn(10) {
		case 0, 1:
			g.line("return n0;")
		case 2, 3:
			g.line("return %s;", sc.rhs(sc.local.pnodes, sc.region.pnodes, sc.hub.pnodes))
		default:
			g.line("return (struct node *)malloc(sizeof(struct node));")
		}
	} else {
		switch g.rng.Intn(10) {
		case 0, 1:
			g.line("return a0;")
		case 2, 3:
			g.line("return %s;", sc.rhs(sc.local.p1s, sc.region.p1s, sc.hub.p1s))
		case 4, 5, 6:
			g.line("return &%s;", sc.rhs(sc.local.objs, sc.region.objs, sc.hub.objs))
		default:
			g.line("return (int *)malloc(sizeof(int));")
		}
	}
	g.indent--
	g.line("}")
	g.line("")
}

// stmt emits one statement; depth bounds control-flow nesting.
func (g *generator) stmt(sc *scope, f fnSig, depth int) {
	loc, reg, hub := &sc.local, &sc.region, &sc.hub
	r := g.rng.Intn(100)
	switch {
	case r < 11: // address-of
		g.line("%s = &%s;", sc.lhs(loc.p1s, reg.p1s, hub.p1s), sc.rhs(loc.objs, reg.objs, hub.objs))
	case r < 24: // pointer copy, mostly ordinal-directed
		dst, src := g.directed(sc.lhs(loc.p1s, reg.p1s, hub.p1s), sc.rhs(loc.p1s, reg.p1s, hub.p1s))
		g.line("%s = %s;", dst, src)
	case r < 28:
		g.line("%s = &%s;", sc.lhs(loc.p2s, reg.p2s, hub.p2s), sc.rhs(loc.p1s, reg.p1s, hub.p1s))
	case r < 33:
		g.line("%s = *%s;", sc.lhs(loc.p1s, reg.p1s, hub.p1s), sc.rhs(loc.p2s, reg.p2s, hub.p2s))
	case r < 38:
		g.line("*%s = %s;", sc.rhs(loc.p2s, reg.p2s, hub.p2s), sc.rhs(loc.p1s, reg.p1s, hub.p1s))
	case r < 43:
		g.line("%s = %s->next;", sc.lhs(loc.pnodes, reg.pnodes, hub.pnodes), sc.rhs(loc.pnodes, reg.pnodes, hub.pnodes))
	case r < 48:
		g.line("%s->next = %s;", sc.rhs(loc.pnodes, reg.pnodes, hub.pnodes), sc.rhs(loc.pnodes, reg.pnodes, hub.pnodes))
	case r < 51:
		g.line("%s->data = %s;", sc.rhs(loc.pnodes, reg.pnodes, hub.pnodes), sc.rhs(loc.p1s, reg.p1s, hub.p1s))
	case r < 54:
		g.line("%s = %s->data;", sc.lhs(loc.p1s, reg.p1s, hub.p1s), sc.rhs(loc.pnodes, reg.pnodes, hub.pnodes))
	case r < 57:
		g.line("%s = (int *)malloc(sizeof(int));", sc.lhs(loc.p1s, reg.p1s, hub.p1s))
	case r < 59:
		g.line("%s = &%s;", sc.lhs(loc.pnodes, reg.pnodes, hub.pnodes), sc.pickg(reg.nodes, hub.nodes))
	case r < 67: // direct call
		callee := g.callee(f.region)
		if callee.node {
			dst, args := g.callShape(sc.lhs(loc.pnodes, reg.pnodes, hub.pnodes),
				sc.rhs(loc.pnodes, reg.pnodes, hub.pnodes))
			g.line("%s = %s(%s, %s);", dst, callee.name, args[0], sc.rhs(loc.p1s, reg.p1s, hub.p1s))
		} else {
			dst, args := g.callShape(sc.lhs(loc.p1s, reg.p1s, hub.p1s),
				sc.rhs(loc.p1s, reg.p1s, hub.p1s), sc.rhs(loc.p1s, reg.p1s, hub.p1s))
			g.line("%s = %s(%s, %s);", dst, callee.name, args[0], args[1])
		}
	case r < 70: // take a function pointer
		if name := g.flatCallee(f.region); name != "" {
			if g.rng.Intn(2) == 0 {
				g.line("%s = %s;", sc.pickg(reg.fps, hub.fps), name)
			} else {
				g.line("%s = &%s;", sc.pickg(reg.fps, hub.fps), name)
			}
		}
	case r < 74: // call through a function pointer
		fp := sc.pickg(reg.fps, hub.fps)
		dst, args := g.callShape(sc.lhs(loc.p1s, reg.p1s, hub.p1s),
			sc.rhs(loc.p1s, reg.p1s, hub.p1s), sc.rhs(loc.p1s, reg.p1s, hub.p1s))
		if g.rng.Intn(2) == 0 {
			g.line("%s = %s(%s, %s);", dst, fp, args[0], args[1])
		} else {
			g.line("%s = (*%s)(%s, %s);", dst, fp, args[0], args[1])
		}
	case r < 76: // array writes carry fresh sources; reads feed locals.
		// Writing arbitrary pointers into shared tables and reading them
		// back everywhere would weld a region's variables into one
		// initial SCC; real tables are mostly written at initialisation.
		if g.rng.Intn(2) == 0 {
			g.line("%s[li %% 8] = &%s;", sc.pickg(reg.arrs, hub.arrs), sc.rhs(loc.objs, reg.objs, hub.objs))
		} else {
			g.line("%s[li %% 8] = (int *)malloc(sizeof(int));", sc.pickg(reg.arrs, hub.arrs))
		}
	case r < 80:
		g.line("%s = %s[li %% 8];", sc.lhs(loc.p1s, reg.p1s, hub.p1s), sc.pickg(reg.arrs, hub.arrs))
	case r < 88 && depth < 2: // control flow around a nested block
		switch g.rng.Intn(3) {
		case 0:
			g.line("if (li < %d) {", g.rng.Intn(100))
		case 1:
			g.line("while (li > %d) {", g.rng.Intn(10))
		default:
			g.line("for (li = 0; li < %d; li++) {", 2+g.rng.Intn(8))
		}
		g.indent++
		inner := 1 + g.rng.Intn(3)
		for i := 0; i < inner; i++ {
			g.stmt(sc, f, depth+1)
		}
		g.indent--
		g.line("}")
	default: // integer noise, matching real programs' non-pointer bulk
		g.line("li = li * %d + %d;", 1+g.rng.Intn(7), g.rng.Intn(97))
	}
}

// flatCallee picks a non-node function, preferring the caller's region.
func (g *generator) flatCallee(region int) string {
	for tries := 0; tries < 8; tries++ {
		f := g.callee(region)
		if !f.node {
			return f.name
		}
	}
	return ""
}

func (g *generator) main() {
	g.line("int main(int argc, char **argv) {")
	g.indent++
	g.line("int li = argc;")
	// Seed the data structures region by region.
	for r := range g.regions {
		p := &g.regions[r]
		for i, pn := range p.pnodes {
			g.line("%s = &%s;", pn, p.nodes[i%len(p.nodes)])
		}
		for i, p1 := range p.p1s {
			if i%3 == 0 {
				g.line("%s = &%s;", p1, p.objs[i%len(p.objs)])
			}
		}
	}
	for i, pn := range g.hub.pnodes {
		g.line("%s = &%s;", pn, g.hub.nodes[i%len(g.hub.nodes)])
	}
	// Call every function so nothing is dead.
	for _, f := range g.funcs {
		reg := g.regions[f.region]
		if f.node {
			g.line("%s = %s(%s, %s);", g.pick(reg.pnodes), f.name, g.pick(reg.pnodes), g.pick(reg.p1s))
		} else {
			g.line("%s = %s(%s, %s);", g.pick(reg.p1s), f.name, g.pick(reg.p1s), g.pick(reg.p1s))
		}
	}
	g.line("return li;")
	g.indent--
	g.line("}")
}
