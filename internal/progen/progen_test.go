package progen

import (
	"testing"

	"polce"
	"polce/internal/andersen"
	"polce/internal/cgen"
)

func TestDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Functions: 10, StmtsPerFunc: 20}
	a := Generate(cfg)
	b := Generate(cfg)
	if a != b {
		t.Fatal("generation is not deterministic")
	}
	c := Generate(Config{Seed: 43, Functions: 10, StmtsPerFunc: 20})
	if a == c {
		t.Fatal("different seeds produced identical programs")
	}
}

func TestGeneratedProgramParses(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		src := Generate(Config{Seed: seed, Functions: 12, StmtsPerFunc: 25})
		if _, err := cgen.MustParse("gen.c", src); err != nil {
			t.Fatalf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
}

func TestGeneratedProgramAnalyses(t *testing.T) {
	src := Generate(Config{Seed: 7, Functions: 15, StmtsPerFunc: 25})
	f, err := cgen.MustParse("gen.c", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, form := range []polce.Form{polce.SF, polce.IF} {
		for _, pol := range []polce.CyclePolicy{polce.CycleNone, polce.CycleOnline} {
			r := andersen.Analyze(f, andersen.Options{Form: form, Cycles: pol, Seed: 3})
			if n := r.Sys.ErrorCount(); n != 0 {
				t.Errorf("%v/%v: %d constraint errors, e.g. %v", form, pol, n, r.Sys.Errors()[0])
			}
			if r.PointsToEdges() == 0 {
				t.Errorf("%v/%v: empty points-to graph", form, pol)
			}
		}
	}
}

func TestCyclesAriseDuringResolution(t *testing.T) {
	// The paper's regime: most variables on cycles in the final graph are
	// not on cycles initially.
	src := Generate(Config{Seed: 11, Functions: 20, StmtsPerFunc: 30})
	f, err := cgen.MustParse("gen.c", src)
	if err != nil {
		t.Fatal(err)
	}
	initial := andersen.AnalyzeInitial(f, andersen.Options{Form: polce.IF, Seed: 1})
	closed := andersen.Analyze(f, andersen.Options{Form: polce.IF, Cycles: polce.CycleNone, Seed: 1})
	initIn, _ := initial.Sys.CycleClassStats()
	finalIn, _ := closed.Sys.CycleClassStats()
	if finalIn == 0 {
		t.Fatal("no cyclic variables in the closed graph; generator too weak")
	}
	if initIn >= finalIn {
		t.Errorf("initial cyclic vars %d not below final %d", initIn, finalIn)
	}
}

func TestDataHeavyOutlier(t *testing.T) {
	// The flex personality: similar AST size, far fewer set variables.
	normal := Generate(ByScale(9, 16000))
	heavy := Generate(ByScaleDataHeavy(9, 16000))
	fn, err := cgen.MustParse("n.c", normal)
	if err != nil {
		t.Fatal(err)
	}
	fh, err := cgen.MustParse("h.c", heavy)
	if err != nil {
		t.Fatal(err)
	}
	nn, nh := cgen.CountNodes(fn), cgen.CountNodes(fh)
	if nh < nn/2 || nh > 2*nn {
		t.Fatalf("sizes diverge too much: %d vs %d", nn, nh)
	}
	vn := andersen.AnalyzeInitial(fn, andersen.Options{Form: polce.SF, Seed: 1}).Sys.Stats().VarsCreated
	vh := andersen.AnalyzeInitial(fh, andersen.Options{Form: polce.SF, Seed: 1}).Sys.Stats().VarsCreated
	if vh*3 > vn {
		t.Errorf("data-heavy program has %d vars vs %d — not an outlier", vh, vn)
	}
}

func TestByScale(t *testing.T) {
	small := ByScale(1, 1000)
	big := ByScale(1, 40000)
	if big.Functions <= small.Functions {
		t.Errorf("scaling broken: %+v vs %+v", small, big)
	}
	srcSmall := Generate(small)
	srcBig := Generate(big)
	fs, err := cgen.MustParse("s.c", srcSmall)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := cgen.MustParse("b.c", srcBig)
	if err != nil {
		t.Fatal(err)
	}
	ns, nb := cgen.CountNodes(fs), cgen.CountNodes(fb)
	if nb < 10*ns {
		t.Errorf("node counts don't scale: %d vs %d", ns, nb)
	}
	// The small target should land within a factor ~4 of the request.
	if ns < 250 || ns > 8000 {
		t.Errorf("ByScale(1000) produced %d nodes", ns)
	}
	if nb < 10000 || nb > 160000 {
		t.Errorf("ByScale(40000) produced %d nodes", nb)
	}
}
