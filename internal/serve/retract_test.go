package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"polce"
)

// retractableConfig returns a Config whose solver tracks batches, so DELETE
// is live.
func retractableConfig() Config {
	return Config{Solver: polce.New(polce.Options{
		Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1, Retractable: true,
	})}
}

func doReq(t *testing.T, method, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "text/plain")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

// TestRouteTable walks the declared routing surface: every row is reachable
// through real HTTP (routed — not the mux's bare 404), every row's metrics
// label is a registered route name, and exactly the alias rows answer with
// the Deprecation header.
func TestRouteTable(t *testing.T) {
	_, hs := newTestServer(t, retractableConfig())

	// Seed both the default session (for the alias rows) and a named one.
	if resp, body := postSCL(t, hs.URL, "cons a\na <= X", true); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed default session = %d %v", resp.StatusCode, body)
	}
	resp, body := doReq(t, "POST", hs.URL+"/v1/constraints/s1?wait=1", "cons b\nb <= X")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed session s1 = %d %v", resp.StatusCode, body)
	}
	s1Batch := uint64(body["batch"].(float64))

	names := make(map[string]bool)
	for _, n := range routeNames {
		names[n] = true
	}
	for _, rt := range routeTable {
		if !names[rt.name] {
			t.Errorf("route %q (%s) has no metrics label in routeNames", rt.name, rt.pattern)
		}
		method, path, _ := strings.Cut(rt.pattern, " ")
		path = strings.NewReplacer(
			"{session}", "s1",
			"{var}", "X",
			"{batch}", fmt.Sprint(s1Batch),
		).Replace(path)
		resp, body := doReq(t, method, hs.URL+path, "")
		if resp.StatusCode == http.StatusNotFound && body["kind"] == "not_found" {
			t.Errorf("%s %s fell through to the catch-all", method, path)
			continue
		}
		if dep := resp.Header.Get("Deprecation"); (dep == "true") != rt.deprecated {
			t.Errorf("%s %s Deprecation header = %q, want deprecated=%v", method, path, dep, rt.deprecated)
		}
	}
}

// TestSessionsPartitionNamespace pins the point of sessionizing: two
// sessions declare the same variable name and get distinct solver
// variables, each query resolving through its own session's binder.
func TestSessionsPartitionNamespace(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	if resp, _ := doReq(t, "POST", hs.URL+"/v1/constraints/alpha?wait=1", "cons a\na <= V"); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha ingest failed: %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, "POST", hs.URL+"/v1/constraints/beta?wait=1", "cons b\nb <= V"); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta ingest failed: %d", resp.StatusCode)
	}

	_, body := getJSON(t, hs.URL+"/v1/least-solution/alpha/V")
	if fmt.Sprint(body["terms"]) != "[a]" {
		t.Fatalf("alpha's V = %v, want [a]", body["terms"])
	}
	_, body = getJSON(t, hs.URL+"/v1/least-solution/beta/V")
	if fmt.Sprint(body["terms"]) != "[b]" {
		t.Fatalf("beta's V = %v, want [b]", body["terms"])
	}

	// The snapshot is per-session too: each session interned exactly one
	// variable, and the registry has seen both.
	_, body = getJSON(t, hs.URL+"/v1/snapshot/alpha")
	if body["session"] != "alpha" || body["session_vars"].(float64) != 1 || body["sessions"].(float64) != 2 {
		t.Fatalf("snapshot/alpha = %v", body)
	}

	// A read against a session nobody wrote resolves nothing and creates
	// nothing.
	if resp, body := getJSON(t, hs.URL+"/v1/least-solution/ghost/V"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ghost session read = %d %v", resp.StatusCode, body)
	}
	if _, body := getJSON(t, hs.URL+"/v1/snapshot/alpha"); body["sessions"].(float64) != 2 {
		t.Fatalf("ghost read minted a session: %v", body["sessions"])
	}

	// Bad labels are 400s, not new sessions.
	if resp, body := doReq(t, "POST", hs.URL+"/v1/constraints/bad%2Flabel?wait=1", "cons c\nc <= W"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad label = %d %v", resp.StatusCode, body)
	}
}

// TestRetractHTTP drives the DELETE route end to end: a batch is added,
// observed, retracted by its handle, and its consequences disappear while
// independently justified facts survive.
func TestRetractHTTP(t *testing.T) {
	_, hs := newTestServer(t, retractableConfig())

	resp, body := postSCL(t, hs.URL, "cons a; cons b\na <= X", true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch 1 = %d %v", resp.StatusCode, body)
	}
	keep := uint64(body["batch"].(float64))
	if keep == 0 {
		t.Fatal("retractable server issued no batch handle")
	}
	resp, body = postSCL(t, hs.URL, "b <= X; X <= Y", true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch 2 = %d %v", resp.StatusCode, body)
	}
	drop := uint64(body["batch"].(float64))

	if _, body = getJSON(t, hs.URL+"/v1/least-solution/Y"); fmt.Sprint(body["terms"]) != "[a b]" {
		t.Fatalf("LS(Y) before retract = %v", body["terms"])
	}

	resp, body = doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", hs.URL, drop), "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d %v", resp.StatusCode, body)
	}
	report := body["report"].(map[string]any)
	if report["no_op"].(bool) || report["dirty_vars"].(float64) == 0 {
		t.Fatalf("retraction report = %v, want a non-trivial cone", report)
	}

	// Y lost its only justification; X keeps a from the surviving batch.
	if _, body = getJSON(t, hs.URL+"/v1/least-solution/Y"); len(body["terms"].([]any)) != 0 {
		t.Fatalf("LS(Y) after retract = %v, want empty", body["terms"])
	}
	if _, body = getJSON(t, hs.URL+"/v1/least-solution/X"); fmt.Sprint(body["terms"]) != "[a]" {
		t.Fatalf("LS(X) after retract = %v, want [a]", body["terms"])
	}

	// The handle is consumed: a second DELETE is a 404 and retracts nothing.
	resp, body = doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", hs.URL, drop), "")
	if resp.StatusCode != http.StatusNotFound || body["kind"] != "unknown_batch" {
		t.Fatalf("double DELETE = %d %v", resp.StatusCode, body)
	}

	// A handle issued under one session cannot be retracted through another.
	resp, body = doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/other/%d", hs.URL, keep), "")
	if resp.StatusCode != http.StatusNotFound || body["kind"] != "unknown_batch" {
		t.Fatalf("cross-session DELETE = %d %v", resp.StatusCode, body)
	}
	if _, body = getJSON(t, hs.URL+"/v1/least-solution/X"); fmt.Sprint(body["terms"]) != "[a]" {
		t.Fatalf("failed DELETE mutated state: LS(X) = %v", body["terms"])
	}

	// Malformed handles are client errors.
	if resp, body = doReq(t, "DELETE", hs.URL+"/v1/constraints/default/nope", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad handle = %d %v", resp.StatusCode, body)
	}
}

// TestRetractNotImplemented: without Options.Retractable the POST issues no
// handle and the DELETE route answers 501.
func TestRetractNotImplemented(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := postSCL(t, hs.URL, "cons a\na <= X", false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d %v", resp.StatusCode, body)
	}
	if _, ok := body["batch"]; ok {
		t.Fatalf("non-retractable server issued a handle: %v", body)
	}
	resp, body = doReq(t, "DELETE", hs.URL+"/v1/constraints/default/1", "")
	if resp.StatusCode != http.StatusNotImplemented || body["kind"] != "not_retractable" {
		t.Fatalf("DELETE = %d %v, want 501 not_retractable", resp.StatusCode, body)
	}
}

// TestConditionalGET pins the ETag contract: reads carry a version-derived
// tag, If-None-Match on an unchanged graph is a 304 with no body, and a
// mutation invalidates the tag.
func TestConditionalGET(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	postSCL(t, hs.URL, "cons a\na <= X", true)

	for _, path := range []string{"/v1/snapshot", "/v1/least-solution/X", "/v1/points-to/X"} {
		resp, _ := getJSON(t, hs.URL+path)
		etag := resp.Header.Get("ETag")
		if etag == "" {
			t.Fatalf("%s: no ETag", path)
		}

		req, _ := http.NewRequest("GET", hs.URL+path, nil)
		req.Header.Set("If-None-Match", etag)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := func() ([]byte, error) {
			defer resp.Body.Close()
			buf := make([]byte, 16)
			n, _ := resp.Body.Read(buf)
			return buf[:n], nil
		}()
		if resp.StatusCode != http.StatusNotModified || len(b) != 0 {
			t.Fatalf("%s conditional = %d with %d body bytes, want bare 304", path, resp.StatusCode, len(b))
		}
		if resp.Header.Get("ETag") != etag {
			t.Fatalf("%s: 304 ETag %q, want %q", path, resp.Header.Get("ETag"), etag)
		}

		// A weak-form or multi-candidate header still matches.
		req, _ = http.NewRequest("GET", hs.URL+path, nil)
		req.Header.Set("If-None-Match", `"v999", W/`+etag)
		if resp, err = http.DefaultClient.Do(req); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotModified {
			t.Fatalf("%s weak conditional = %d, want 304", path, resp.StatusCode)
		}
	}

	// Mutating the graph moves the version, so the old tag misses.
	resp, _ := getJSON(t, hs.URL+"/v1/snapshot")
	old := resp.Header.Get("ETag")
	postSCL(t, hs.URL, "a <= Y", true)
	req, _ := http.NewRequest("GET", hs.URL+"/v1/snapshot", nil)
	req.Header.Set("If-None-Match", old)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale tag = %d, want full 200", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == old {
		t.Fatalf("ETag did not move with the version: %v", body["version"])
	}
}

// TestRetractionHammer races N writers — each adding a batch then
// immediately retracting it — against M snapshot/least-solution readers.
// The invariant at the end: every writer's constraints are gone, the
// permanently seeded facts survive, and nothing raced (the test earns its
// keep under -race).
func TestRetractionHammer(t *testing.T) {
	_, hs := newTestServer(t, retractableConfig())
	if resp, _ := postSCL(t, hs.URL, "cons keep\nkeep <= K", true); resp.StatusCode != http.StatusOK {
		t.Fatal("seeding failed")
	}

	const writers, readers, rounds = 4, 3, 8
	errs := make(chan error, writers+readers)
	var writeWG, readWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writeWG.Add(1)
		go func(w int) {
			defer writeWG.Done()
			for i := 0; i < rounds; i++ {
				prog := fmt.Sprintf("cons t%d_%d\nt%d_%d <= K", w, i, w, i)
				resp, body := postSCL(t, hs.URL, prog, true)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d round %d: POST = %d %v", w, i, resp.StatusCode, body)
					return
				}
				h := uint64(body["batch"].(float64))
				resp, body = doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", hs.URL, h), "")
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("writer %d round %d: DELETE = %d %v", w, i, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		readWG.Add(1)
		go func() {
			defer readWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if resp, _ := getJSON(t, hs.URL+"/v1/snapshot"); resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader: snapshot = %d", resp.StatusCode)
					return
				}
				if resp, _ := getJSON(t, hs.URL+"/v1/least-solution/K"); resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("reader: least-solution = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	readWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	_, body := getJSON(t, hs.URL+"/v1/least-solution/K")
	if fmt.Sprint(body["terms"]) != "[keep]" {
		t.Fatalf("LS(K) after hammer = %v, want only the seeded fact", body["terms"])
	}
	_, body = getJSON(t, hs.URL+"/v1/snapshot")
	if body["batches"].(float64) != 1 {
		t.Fatalf("live batches after hammer = %v, want 1 (the seed)", body["batches"])
	}
}
