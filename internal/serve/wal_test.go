package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polce"
	"polce/internal/telemetry"
	"polce/internal/wal"
	"polce/internal/walreplay"
)

// walOptions are the solver options every WAL test pins — cycle
// elimination on, fixed seed, so replay equivalence exercises the seeded
// edge orientations too.
func walOptions() polce.Options {
	return polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 42}
}

// walCorpus is a deterministic batch stream: a declaration-only opener
// (replay must preserve vocabulary order), then var-var chains that close
// into cycles among V0..V7 plus constructed sources, so the replayed graph
// exercises parsing, lowering, closure and online cycle elimination.
func walCorpus() []string {
	batches := []string{"cons a; cons b; cons ref(+)"}
	for i := 0; i < 12; i++ {
		var sb strings.Builder
		fmt.Fprintf(&sb, "a <= V%d\n", i%8)
		fmt.Fprintf(&sb, "V%d <= V%d\n", i%8, (i*5+3)%8)
		fmt.Fprintf(&sb, "ref(V%d) <= R%d\n", (i*3)%8, i%4)
		if i%3 == 0 {
			fmt.Fprintf(&sb, "V%d <= V%d\n", (i+1)%8, i%8)
		}
		batches = append(batches, sb.String())
	}
	return batches
}

// openWAL opens a constraint log pinned to opt's replay meta.
func openWAL(t *testing.T, dir string, opt polce.Options, sync wal.SyncPolicy) (*wal.Log, *wal.Recovered) {
	t.Helper()
	l, rec, err := wal.Open(dir, wal.Options{Sync: sync, Meta: walreplay.OptionsMeta(opt)})
	if err != nil {
		t.Fatalf("wal.Open(%s): %v", dir, err)
	}
	return l, rec
}

// TestWALRecoverEquivalence is the kill-and-recover contract: ingest a
// prefix of the corpus through a WAL-backed server, "crash" it (abandon it
// without Shutdown — with SyncAlways every acked frame is already on
// disk), then recover into a fresh server and check the recovered graph is
// bit-identical — version, partition signature, sampled least solutions,
// mutation counters — to both a standalone walreplay of the log and an
// uninterrupted live server that ingested the same prefix.
func TestWALRecoverEquivalence(t *testing.T) {
	opt := walOptions()
	dir := t.TempDir()
	corpus := walCorpus()
	prefix := corpus[:9] // stop mid-stream: the crash point

	// Server A: WAL-backed, ingests the prefix, then vanishes.
	logA, rec := openWAL(t, dir, opt, wal.SyncAlways)
	if len(rec.Frames) != 0 {
		t.Fatalf("fresh log recovered %d frames", len(rec.Frames))
	}
	srvA := New(Config{Solver: polce.New(opt), WAL: logA})
	hsA := httptest.NewServer(srvA.Handler())
	for i, b := range prefix {
		if resp, body := postSCL(t, hsA.URL, b, true); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d = %d %v", i, resp.StatusCode, body)
		}
	}
	hsA.Close() // no Shutdown, no log Close: the process just died

	// Recovery: reopen the log, replay through a fresh server.
	logB, recB := openWAL(t, dir, opt, wal.SyncAlways)
	defer logB.Close()
	if len(recB.Frames) != len(prefix) || recB.TruncatedBytes != 0 {
		t.Fatalf("recovered %d frames, truncated %d; want %d/0",
			len(recB.Frames), recB.TruncatedBytes, len(prefix))
	}
	srvB := New(Config{Solver: polce.New(opt), WAL: logB})
	if _, err := srvB.Recover(recB.Frames); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if got := srvB.walReplayed.Load(); got != int64(len(prefix)) {
		t.Fatalf("walReplayed = %d, want %d", got, len(prefix))
	}

	// Reference 1: standalone replay of the same frames.
	refSolver, _, _, err := walreplay.Replay(recB.Frames, opt)
	if err != nil {
		t.Fatalf("walreplay.Replay: %v", err)
	}

	// Reference 2: an uninterrupted live server over the same prefix.
	srvC, hsC := newTestServer(t, Config{Solver: polce.New(opt)})
	for i, b := range prefix {
		if resp, body := postSCL(t, hsC.URL, b, true); resp.StatusCode != http.StatusOK {
			t.Fatalf("reference batch %d = %d %v", i, resp.StatusCode, body)
		}
	}

	recovered := walreplay.Fingerprint(srvB.solver, 32)
	replayed := walreplay.Fingerprint(refSolver, 32)
	live := walreplay.Fingerprint(srvC.solver, 32)
	if diffs := recovered.Diff(replayed); len(diffs) != 0 {
		t.Fatalf("recovered server vs standalone replay:\n  %s", strings.Join(diffs, "\n  "))
	}
	if diffs := recovered.Diff(live); len(diffs) != 0 {
		t.Fatalf("recovered server vs uninterrupted live run:\n  %s", strings.Join(diffs, "\n  "))
	}
	if recovered.Version == 0 || recovered.PartitionSig == "" {
		t.Fatalf("degenerate manifest: %+v", recovered)
	}

	// The recovered server keeps serving: the log continues the sequence
	// and new ingestion lands on top of the replayed graph.
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	resp, body := postSCL(t, hsB.URL, corpus[9], true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery ingest = %d %v", resp.StatusCode, body)
	}
	if logB.LastSeq() != uint64(len(prefix)+1) {
		t.Fatalf("post-recovery LastSeq = %d, want %d", logB.LastSeq(), len(prefix)+1)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvB.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALTornTailRecovery simulates a crash mid-frame-write: the log's
// tail is chopped inside the last frame, and startup must truncate the
// torn frame and recover the intact prefix — never fail.
func TestWALTornTailRecovery(t *testing.T) {
	opt := walOptions()
	dir := t.TempDir()
	corpus := walCorpus()[:5]

	logA, _ := openWAL(t, dir, opt, wal.SyncAlways)
	srvA := New(Config{Solver: polce.New(opt), WAL: logA})
	hsA := httptest.NewServer(srvA.Handler())
	for i, b := range corpus {
		if resp, body := postSCL(t, hsA.URL, b, true); resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d = %d %v", i, resp.StatusCode, body)
		}
	}
	hsA.Close()

	// Tear the last frame: remove 3 bytes from inside its payload.
	path := filepath.Join(dir, "wal.log")
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	logB, recB := openWAL(t, dir, opt, wal.SyncAlways)
	defer logB.Close()
	if recB.TruncatedBytes == 0 {
		t.Fatal("torn tail not detected")
	}
	if len(recB.Frames) != len(corpus)-1 {
		t.Fatalf("recovered %d frames, want the %d-frame prefix", len(recB.Frames), len(corpus)-1)
	}
	srvB := New(Config{Solver: polce.New(opt), WAL: logB})
	if _, err := srvB.Recover(recB.Frames); err != nil {
		t.Fatalf("Recover after torn tail: %v", err)
	}

	// The recovered graph equals a replay of the intact prefix, and the
	// server answers queries over it.
	refSolver, _, _, err := walreplay.Replay(recB.Frames, opt)
	if err != nil {
		t.Fatal(err)
	}
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	if resp, body := getJSON(t, hsB.URL+"/v1/least-solution/V0"); resp.StatusCode != http.StatusOK || len(body["terms"].([]any)) == 0 {
		t.Fatalf("LS(V0) after recovery = %d %v", resp.StatusCode, body)
	}
	recovered := walreplay.Fingerprint(srvB.solver, 32)
	if diffs := recovered.Diff(walreplay.Fingerprint(refSolver, 32)); len(diffs) != 0 {
		t.Fatalf("torn-tail recovery diverged from prefix replay:\n  %s", strings.Join(diffs, "\n  "))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvB.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestWALMetaMismatchRefusesOpen: reopening a log under different solver
// options is a configuration error, not a torn tail — it must fail loudly
// instead of replaying into a solver that would orient edges differently.
func TestWALMetaMismatchRefusesOpen(t *testing.T) {
	dir := t.TempDir()
	opt := walOptions()
	l, _ := openWAL(t, dir, opt, wal.SyncOff)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	other := opt
	other.Seed = 7
	if _, _, err := wal.Open(dir, wal.Options{Meta: walreplay.OptionsMeta(other)}); err == nil {
		t.Fatal("Open accepted a log recorded under different options")
	}
}

// TestQueueOldestAgeGauge pins the satellite bugfix: with the ingester
// parked and batches queued, the oldest-age gauge must report the queue
// head's age — the old applyingSince-only derivation read 0 here, hiding
// a stalled ingester behind an idle-looking gauge.
func TestQueueOldestAgeGauge(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newServer(Config{
		Solver:     polce.New(walOptions()),
		Registry:   reg,
		QueueDepth: 4,
	}) // no ingester: the queue can only grow

	if got := scrapeGauge(t, reg, "polce_serve_queue_oldest_age_seconds"); got != 0 {
		t.Fatalf("idle gauge = %v, want 0", got)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.accept(context.Background(), s.cfg.WALSession, fmt.Sprintf("A%d <= B%d", i, i)); err != nil {
			t.Fatalf("accept %d: %v", i, err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if got := scrapeGauge(t, reg, "polce_serve_queue_oldest_age_seconds"); got < 0.02 {
		t.Fatalf("stalled-queue gauge = %v, want >= 0.02 (the queue head's age)", got)
	}

	// Draining the queue the way the ingester does returns the gauge to 0.
	for i := 0; i < 2; i++ {
		job := <-s.queue
		s.ages.pop()
		<-s.slots
		job.done <- ingestResult{}
	}
	if got := scrapeGauge(t, reg, "polce_serve_queue_oldest_age_seconds"); got != 0 {
		t.Fatalf("drained gauge = %v, want 0", got)
	}
}

// scrapeGauge reads one gauge value from the registry's Prometheus
// exposition.
func scrapeGauge(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("gauge %s not found in exposition", name)
	return 0
}

// TestWALFailurePoisonsIngestion: once a log append fails, every further
// write must refuse with wal_failed (500) — the log on disk stays a
// consistent prefix of the acked stream — while reads keep answering.
func TestWALFailurePoisonsIngestion(t *testing.T) {
	opt := walOptions()
	dir := t.TempDir()
	l, _ := openWAL(t, dir, opt, wal.SyncOff)
	s, hs := newTestServer(t, Config{Solver: polce.New(opt), WAL: l})
	defer l.Close()

	if resp, body := postSCL(t, hs.URL, "cons a\na <= X", true); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest = %d %v", resp.StatusCode, body)
	}
	s.walFailed.Store(true) // simulate a failed append/fsync
	resp, body := postSCL(t, hs.URL, "a <= Y", false)
	if resp.StatusCode != http.StatusInternalServerError || body["kind"] != "wal_failed" {
		t.Fatalf("poisoned ingest = %d %v, want 500 wal_failed", resp.StatusCode, body)
	}
	if resp, _ := getJSON(t, hs.URL+"/v1/least-solution/X"); resp.StatusCode != http.StatusOK {
		t.Fatalf("read during poisoning = %d, want 200", resp.StatusCode)
	}
}

// TestWALRecoverWithRetractions extends the kill-and-recover contract to
// retraction frames: a retractable WAL-backed server ingests across two
// sessions, retracts a batch, logs one failed DELETE (a 404 whose frame
// replay must skip), then crashes. The recovered server, a standalone
// replay and an uninterrupted live run must agree bit-for-bit, and a
// pre-crash batch must stay retractable through the recovered server.
func TestWALRecoverWithRetractions(t *testing.T) {
	opt := walOptions()
	opt.Retractable = true
	dir := t.TempDir()

	// drive replays the write sequence against one server, returning the
	// handle of the batch left live for post-crash retraction.
	drive := func(t *testing.T, base string) uint64 {
		t.Helper()
		post := func(session, prog string) uint64 {
			resp, body := doReq(t, "POST", base+"/v1/constraints/"+session+"?wait=1", prog)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("POST %s = %d %v", session, resp.StatusCode, body)
			}
			return uint64(body["batch"].(float64))
		}
		post("default", "cons a; cons b; cons ref(+)")
		chain := post("default", "a <= V0\nV0 <= V1")
		aux := post("aux", "cons c\nc <= W")
		keep := post("default", "b <= V0")
		if resp, body := doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", base, chain), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE = %d %v", resp.StatusCode, body)
		}
		// The repeated DELETE is refused live (404) but its frame is already
		// logged; replay must skip it the same way.
		if resp, body := doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", base, chain), ""); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("double DELETE = %d %v, want 404", resp.StatusCode, body)
		}
		// A cross-session DELETE targets a handle that is live but owned by
		// another session: refused live (404), frame logged, and replay must
		// refuse it for the same reason — liveness alone is not enough.
		if resp, body := doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", base, aux), ""); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("cross-session DELETE = %d %v, want 404", resp.StatusCode, body)
		}
		post("default", "V0 <= V2")
		return keep
	}

	// Server A: WAL-backed, runs the sequence, then vanishes mid-flight.
	logA, _ := openWAL(t, dir, opt, wal.SyncAlways)
	srvA := New(Config{Solver: polce.New(opt), WAL: logA})
	hsA := httptest.NewServer(srvA.Handler())
	drive(t, hsA.URL)
	hsA.Close()

	logB, recB := openWAL(t, dir, opt, wal.SyncAlways)
	defer logB.Close()
	if len(recB.Frames) != 8 || recB.TruncatedBytes != 0 {
		t.Fatalf("recovered %d frames, truncated %d; want 8/0", len(recB.Frames), recB.TruncatedBytes)
	}
	srvB := New(Config{Solver: polce.New(opt), WAL: logB})
	if _, err := srvB.Recover(recB.Frames); err != nil {
		t.Fatalf("Recover: %v", err)
	}

	refSolver, _, _, err := walreplay.Replay(recB.Frames, opt)
	if err != nil {
		t.Fatalf("walreplay.Replay: %v", err)
	}
	srvC, hsC := newTestServer(t, Config{Solver: polce.New(opt)})
	keep := drive(t, hsC.URL)

	recovered := walreplay.Fingerprint(srvB.solver, 32)
	if diffs := recovered.Diff(walreplay.Fingerprint(refSolver, 32)); len(diffs) != 0 {
		t.Fatalf("recovered server vs standalone replay:\n  %s", strings.Join(diffs, "\n  "))
	}
	if diffs := recovered.Diff(walreplay.Fingerprint(srvC.solver, 32)); len(diffs) != 0 {
		t.Fatalf("recovered server vs uninterrupted live run:\n  %s", strings.Join(diffs, "\n  "))
	}

	// The retraction's effect is visible through the recovered server: the
	// chain batch is gone, the surviving justification stands.
	hsB := httptest.NewServer(srvB.Handler())
	defer hsB.Close()
	if _, body := getJSON(t, hsB.URL+"/v1/least-solution/V1"); len(body["terms"].([]any)) != 0 {
		t.Fatalf("LS(V1) after recovery = %v, want empty (retracted)", body["terms"])
	}
	if _, body := getJSON(t, hsB.URL+"/v1/least-solution/V0"); fmt.Sprint(body["terms"]) != "[b]" {
		t.Fatalf("LS(V0) after recovery = %v, want [b]", body["terms"])
	}
	if _, body := getJSON(t, hsB.URL+"/v1/least-solution/aux/W"); fmt.Sprint(body["terms"]) != "[c]" {
		t.Fatalf("aux session after recovery: LS(W) = %v, want [c]", body["terms"])
	}

	// Handles survive the crash: the recovered server retracts a pre-crash
	// batch by its original handle, and both its LS cone and the live
	// reference (same retraction applied) stay in lockstep.
	if resp, body := doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", hsB.URL, keep), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery DELETE = %d %v", resp.StatusCode, body)
	}
	if resp, body := doReq(t, "DELETE", fmt.Sprintf("%s/v1/constraints/default/%d", hsC.URL, keep), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("reference DELETE = %d %v", resp.StatusCode, body)
	}
	if _, body := getJSON(t, hsB.URL+"/v1/least-solution/V0"); len(body["terms"].([]any)) != 0 {
		t.Fatalf("LS(V0) after post-recovery retraction = %v, want empty", body["terms"])
	}
	if diffs := walreplay.Fingerprint(srvB.solver, 32).Diff(walreplay.Fingerprint(srvC.solver, 32)); len(diffs) != 0 {
		t.Fatalf("post-recovery retraction diverged from live reference:\n  %s", strings.Join(diffs, "\n  "))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srvB.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}
