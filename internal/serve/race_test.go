package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"polce"
)

// TestConcurrentQueriesRaceIngestion is the service-level race test: 8
// query goroutines hammer the read endpoints through real HTTP while one
// writer streams constraint batches in, all against the same solver. Under
// -race this exercises the snapshot epoch guard, the session lock and the
// queue; functionally each reader asserts the snapshot version it observes
// never goes backwards.
func TestConcurrentQueriesRaceIngestion(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	// Seed the program so readers always have a variable to query.
	if resp, body := postSCL(t, hs.URL, "cons a0\na0 <= v0", true); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed batch = %d %v", resp.StatusCode, body)
	}

	const (
		readers  = 8
		batches  = 40
		duration = 300 * time.Millisecond
	)
	var (
		stop    atomic.Bool
		queries atomic.Int64
		wg      sync.WaitGroup
	)

	// The writer: one goroutine growing the chain a batch at a time, each
	// batch synchronous so the queue never saturates and every write lands.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 1; i <= batches; i++ {
			prog := fmt.Sprintf("cons a%d\na%d <= v%d; v%d <= v%d", i, i, i, i-1, i)
			resp, err := http.Post(hs.URL+"/v1/constraints?wait=1", "text/plain", strings.NewReader(prog))
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("writer batch %d: status %d", i, resp.StatusCode)
				return
			}
		}
		time.Sleep(duration) // let readers run against the finished graph too
	}()

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			var lastVersion float64
			for !stop.Load() {
				var body map[string]any
				var resp *http.Response
				switch queries.Add(1) % 3 {
				case 0:
					resp, body = getJSON(t, hs.URL+"/v1/snapshot")
				case 1:
					resp, body = getJSON(t, hs.URL+"/v1/least-solution/v0")
				default:
					resp, body = getJSON(t, hs.URL+"/v1/points-to/v0")
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d body %v", r, resp.StatusCode, body)
					return
				}
				v := body["version"].(float64)
				if v < lastVersion {
					t.Errorf("reader %d: snapshot version went backwards: %v -> %v", r, lastVersion, v)
					return
				}
				lastVersion = v
			}
		}(r)
	}
	wg.Wait()

	// The final least solution of the chain head holds every atom.
	resp, body := getJSON(t, hs.URL+fmt.Sprintf("/v1/least-solution/v%d", batches))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final query = %d %v", resp.StatusCode, body)
	}
	if got := len(body["terms"].([]any)); got != batches+1 {
		t.Fatalf("LS(v%d) has %d terms, want %d", batches, got, batches+1)
	}
	t.Logf("%d queries raced %d ingestion batches", queries.Load(), batches)
}

// TestGracefulShutdown drains a server with a loaded queue and an in-flight
// synchronous request: the in-flight request must complete successfully,
// every queued batch must be applied, and once the listener is down new
// connections must be refused.
func TestGracefulShutdown(t *testing.T) {
	solver := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	s := New(Config{Solver: solver, QueueDepth: 128})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	go httpSrv.Serve(ln)
	base := "http://" + ln.Addr().String()

	// Load the queue: async batches first, then one synchronous request
	// that is necessarily still in flight until the whole queue drains.
	post := func(prog, query string) (*http.Response, error) {
		return http.Post(base+"/v1/constraints"+query, "text/plain", strings.NewReader(prog))
	}
	if resp, err := post("cons a\na <= seed", "?wait=1"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("seed: %v %v", err, resp)
	}
	const queued = 30
	for i := 0; i < queued; i++ {
		var b strings.Builder
		for j := 0; j < 50; j++ {
			fmt.Fprintf(&b, "a <= q%d_%d\n", i, j)
		}
		resp, err := post(b.String(), "")
		if err != nil || resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued batch %d: %v %v", i, err, resp)
		}
		resp.Body.Close()
	}
	inflight := make(chan error, 1)
	go func() {
		resp, err := post("a <= last", "?wait=1")
		if err != nil {
			inflight <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			inflight <- fmt.Errorf("in-flight request finished with %d", resp.StatusCode)
			return
		}
		inflight <- nil
	}()
	time.Sleep(10 * time.Millisecond) // let the in-flight POST reach the server

	// Drain exactly like cmd/polce-serve: stop the listener and wait for
	// in-flight requests, then flush the queue and close the solver.
	drainCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		t.Fatalf("http drain: %v", err)
	}
	if err := s.Shutdown(drainCtx); err != nil {
		t.Fatalf("queue drain: %v", err)
	}

	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request: %v", err)
	}
	if got := s.QueueLen(); got != 0 {
		t.Fatalf("queue not drained: %d batches left", got)
	}
	// seed 1 + queued*50 + in-flight 1 constraints all applied.
	if want := int64(1 + queued*50 + 1); s.Ingested() != want {
		t.Fatalf("ingested = %d, want %d", s.Ingested(), want)
	}
	if !solver.Closed() {
		t.Fatal("solver not closed after drain")
	}

	// The listener is gone: new connections are refused.
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		t.Fatal("expected connection error after shutdown, got a response")
	} else if !errors.Is(err, syscall.ECONNREFUSED) {
		t.Logf("post-shutdown dial failed as expected (non-ECONNREFUSED): %v", err)
	}
}

// TestEnqueueShutdownRace is the regression test for the accepted-then-lost
// race: enqueue used to check draining and then send to the queue without
// holding anything across the two, so a batch accepted in the window after
// Shutdown's flag flip but before the ingester's final empty-queue poll was
// silently dropped — its async client kept a 202 for nothing and its
// ?wait=1 client stalled to the deadline. The fix must guarantee that every
// batch accept returns a job for is either applied before the drain
// completes or resolved with ErrSolverClosed, promptly. Rounds of writers
// race Shutdown directly at the accept level (no HTTP) to maximise
// interleavings under -race.
func TestEnqueueShutdownRace(t *testing.T) {
	const (
		rounds  = 25
		writers = 8
		tries   = 30
	)
	for round := 0; round < rounds; round++ {
		solver := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: int64(round)})
		s := New(Config{Solver: solver, QueueDepth: 8})

		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			accepted []*ingestJob
		)
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < tries; i++ {
					job, err := s.accept(context.Background(), s.cfg.WALSession, fmt.Sprintf("a%d_%d <= b%d_%d", w, i, w, i))
					switch {
					case err == nil:
						mu.Lock()
						accepted = append(accepted, job)
						mu.Unlock()
					case errors.Is(err, polce.ErrQueueFull):
						// Backpressure, not loss: the batch was refused
						// before anything mutated.
					case errors.Is(err, polce.ErrSolverClosed):
						return // drained: no further accepts can succeed
					default:
						t.Errorf("round %d writer %d: accept = %v", round, w, err)
						return
					}
				}
			}(w)
		}
		// Shut down while the writers are mid-hammer.
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		if err := s.Shutdown(ctx); err != nil {
			t.Fatalf("round %d: Shutdown: %v", round, err)
		}
		cancel()
		wg.Wait()

		// Every accepted job resolved: applied, or refused with
		// ErrSolverClosed. A job whose done channel never fires is the bug.
		var applied int64
		for i, job := range accepted {
			select {
			case res := <-job.done:
				switch {
				case res.err == nil:
					applied += int64(res.applied)
				case errors.Is(res.err, polce.ErrSolverClosed):
					// accepted but drained: the waiter was told, not stalled
				default:
					t.Fatalf("round %d: job %d resolved with %v", round, i, res.err)
				}
			case <-time.After(2 * time.Second):
				t.Fatalf("round %d: job %d of %d never resolved — accepted batch lost",
					round, i, len(accepted))
			}
		}
		if got := s.Ingested(); got != applied {
			t.Fatalf("round %d: solver ingested %d constraints but jobs reported %d applied",
				round, got, applied)
		}
		if !solver.Closed() {
			t.Fatalf("round %d: solver not closed after Shutdown", round)
		}
	}
}
