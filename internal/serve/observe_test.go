package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"polce"
	"polce/internal/telemetry"
)

// tracedConfig builds a Config with tracing, solver metrics and a registry
// wired the way polce-serve wires them, writing spans into buf.
func tracedConfig(buf *bytes.Buffer) (Config, *telemetry.TraceWriter) {
	reg := telemetry.NewRegistry()
	sm := telemetry.NewSolverMetrics(reg)
	solver := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1, Metrics: sm})
	tw := telemetry.NewTraceWriter(buf)
	return Config{
		Solver:        solver,
		Registry:      reg,
		Tracer:        telemetry.NewTracer(tw),
		SolverMetrics: sm,
	}, tw
}

// spansOf indexes one request's spans by name.
func spansOf(t *testing.T, recs []telemetry.TraceRecord, trace string) map[string]telemetry.TraceRecord {
	t.Helper()
	out := map[string]telemetry.TraceRecord{}
	for _, r := range telemetry.SpanTree(recs)[trace] {
		out[r.Name] = r
	}
	return out
}

// TestRequestSpansLinked drives a synchronous ingest and a read through a
// traced server and rebuilds the span trees: every span of a request must
// share the request ID (which the response echoes in X-Request-Id), the
// write path must show queue-wait and ingest-drain as children of the
// http root, and the read path a snapshot-capture child.
func TestRequestSpansLinked(t *testing.T) {
	var buf bytes.Buffer
	cfg, tw := tracedConfig(&buf)
	_, hs := newTestServer(t, cfg)

	const writeID = "deadbeefdeadbeef"
	req, _ := http.NewRequest("POST", hs.URL+"/v1/constraints?wait=1",
		strings.NewReader("cons a; cons ref(+)\na <= X; X <= Y; Y <= X; ref(X) <= P"))
	req.Header.Set("X-Request-Id", writeID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != writeID {
		t.Fatalf("X-Request-Id echoed %q, want %q", got, writeID)
	}

	readResp, err := http.Get(hs.URL + "/v1/points-to/Y")
	if err != nil {
		t.Fatal(err)
	}
	readResp.Body.Close()
	readID := readResp.Header.Get("X-Request-Id")
	if readID == "" {
		t.Fatal("read response has no generated X-Request-Id")
	}

	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	recs, err := telemetry.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}

	write := spansOf(t, recs, writeID)
	httpSpan, ok := write["http"]
	if !ok {
		t.Fatalf("write trace %q has no http span; spans: %v", writeID, write)
	}
	if httpSpan.Parent != "" {
		t.Errorf("http span has parent %q, want root", httpSpan.Parent)
	}
	if route := httpSpan.Attrs["route"]; route != "constraints" {
		t.Errorf("http span route = %v, want constraints", route)
	}
	for _, name := range []string{"queue-wait", "ingest-drain"} {
		sp, ok := write[name]
		if !ok {
			t.Fatalf("write trace missing %s span", name)
		}
		if sp.Parent != httpSpan.Span {
			t.Errorf("%s span parent = %q, want http span %q", name, sp.Parent, httpSpan.Span)
		}
	}
	// The batch closes a cycle, so closure time accrued and the drain must
	// carry a cycle-search child.
	if cs, ok := write["cycle-search"]; !ok {
		t.Error("write trace missing cycle-search span")
	} else if cs.Parent != write["ingest-drain"].Span {
		t.Errorf("cycle-search parent = %q, want ingest-drain %q", cs.Parent, write["ingest-drain"].Span)
	}
	// queue-wait + ingest-drain must account for time inside the http span.
	if sum := write["queue-wait"].DurMicros + write["ingest-drain"].DurMicros; sum > httpSpan.DurMicros+1000 {
		t.Errorf("children (%dµs) exceed http span (%dµs)", sum, httpSpan.DurMicros)
	}

	read := spansOf(t, recs, readID)
	if _, ok := read["http"]; !ok {
		t.Fatalf("read trace %q has no http span", readID)
	}
	capture, ok := read["snapshot-capture"]
	if !ok {
		t.Fatalf("read trace missing snapshot-capture span; spans: %v", read)
	}
	if capture.Parent != read["http"].Span {
		t.Errorf("snapshot-capture parent = %q, want http %q", capture.Parent, read["http"].Span)
	}
	// The read is the first snapshot at this version, so an LS pass ran.
	if ls, ok := read["ls-pass"]; !ok {
		t.Error("read trace missing ls-pass span")
	} else if ls.Parent != capture.Span {
		t.Errorf("ls-pass parent = %q, want snapshot-capture %q", ls.Parent, capture.Span)
	}
}

// TestSlowQueryLog sets a sub-nanosecond slow-query threshold so every
// request is an outlier, and checks the warn lines carry the request ID,
// route, variable, version and phase breakdown.
func TestSlowQueryLog(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := Config{
		Logger:    telemetry.NewLogger(&logBuf, slog.LevelInfo),
		SlowQuery: time.Nanosecond,
	}
	_, hs := newTestServer(t, cfg)

	if resp, body := postSCL(t, hs.URL, "cons a\na <= X; X <= Y", true); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d %v", resp.StatusCode, body)
	}
	if resp, _ := getJSON(t, hs.URL+"/v1/points-to/Y"); resp.StatusCode != http.StatusOK {
		t.Fatalf("read status = %d", resp.StatusCode)
	}

	type line struct {
		Level     string `json:"level"`
		Msg       string `json:"msg"`
		RequestID string `json:"request_id"`
		Route     string `json:"route"`
		Var       string `json:"var"`
		Version   uint64 `json:"version"`
		Phases    map[string]any
	}
	byRoute := map[string]line{}
	sc := bufio.NewScanner(&logBuf)
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("log line is not JSON: %q: %v", sc.Text(), err)
		}
		var raw map[string]json.RawMessage
		_ = json.Unmarshal(sc.Bytes(), &raw)
		if ph, ok := raw["phases"]; ok {
			_ = json.Unmarshal(ph, &l.Phases)
		}
		byRoute[l.Route] = l
	}

	ingest, ok := byRoute["constraints"]
	if !ok {
		t.Fatalf("no log line for constraints route; got %v", byRoute)
	}
	if ingest.Msg != "slow query" || ingest.Level != "WARN" {
		t.Errorf("ingest line = %q/%q, want slow query at WARN", ingest.Msg, ingest.Level)
	}
	if ingest.RequestID == "" || ingest.Version == 0 {
		t.Errorf("ingest line missing request_id/version: %+v", ingest)
	}
	for _, phase := range []string{"queue_wait", "ingest_drain"} {
		if _, ok := ingest.Phases[phase]; !ok {
			t.Errorf("ingest line phases missing %s: %v", phase, ingest.Phases)
		}
	}

	read, ok := byRoute["points_to"]
	if !ok {
		t.Fatal("no log line for points_to route")
	}
	if read.Var != "Y" || read.Version == 0 {
		t.Errorf("read line var/version = %q/%d, want Y at a positive version", read.Var, read.Version)
	}
	if _, ok := read.Phases["snapshot_capture"]; !ok {
		t.Errorf("read line phases missing snapshot_capture: %v", read.Phases)
	}
}

// TestOtherRouteCounted sends a request no route claims and checks it is
// a typed 404 counted under the "other" metrics instead of being dropped.
func TestOtherRouteCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, hs := newTestServer(t, Config{Registry: reg})

	resp, body := getJSON(t, hs.URL+"/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unrouted status = %d, want 404", resp.StatusCode)
	}
	if body["kind"] != "not_found" {
		t.Errorf("kind = %v, want not_found", body["kind"])
	}

	var out bytes.Buffer
	if err := reg.WritePrometheus(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "polce_http_requests_other_4xx 1") {
		t.Errorf("metrics missing other-route 4xx count:\n%s", out.String())
	}
}

// TestStatusRecorderFlush checks the Flusher passthrough: flushing the
// recorder must reach the underlying writer, and a non-Flusher underlying
// writer must not panic.
func TestStatusRecorderFlush(t *testing.T) {
	w := httptest.NewRecorder()
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	var f http.Flusher = rec
	f.Flush()
	if !w.Flushed {
		t.Error("Flush did not reach the underlying ResponseWriter")
	}

	plain := &statusRecorder{ResponseWriter: nonFlusher{}, status: http.StatusOK}
	plain.Flush() // must not panic
}

type nonFlusher struct{ http.ResponseWriter }

// TestDebugStats exercises the introspection endpoint against a known
// program: a collapsed 3-cycle and one fat variable.
func TestDebugStats(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	prog := "cons a; cons b; cons c\n" +
		"X <= Y; Y <= Z; Z <= X\n" + // a 3-cycle for the SCC stats
		"a <= Big; b <= Big; c <= Big; a <= X"
	if resp, body := postSCL(t, hs.URL, prog, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d %v", resp.StatusCode, body)
	}

	resp, body := getJSON(t, hs.URL+"/v1/debug/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/stats status = %d body %v", resp.StatusCode, body)
	}
	scc := body["scc"].(map[string]any)
	if scc["collapsed_classes"].(float64) != 1 || scc["max_class"].(float64) != 3 {
		t.Errorf("scc = %v, want one collapsed class of 3", scc)
	}
	hist := scc["size_histogram"].(map[string]any)
	if hist["3-4"].(float64) != 1 {
		t.Errorf("size_histogram = %v, want one class in 3-4", hist)
	}
	if eliminated := scc["vars_eliminated"].(float64); eliminated != 2 {
		t.Errorf("vars_eliminated = %v, want 2", eliminated)
	}
	graph := body["graph"].(map[string]any)
	if graph["live_vars"].(float64) <= 0 {
		t.Errorf("graph = %v, want live vars", graph)
	}
	ls := body["ls_cache"].(map[string]any)
	if ls["hot"] != true {
		t.Errorf("ls_cache = %v, want hot after snapshot", ls)
	}
	queue := body["queue"].(map[string]any)
	if queue["ingested"].(float64) != 7 {
		t.Errorf("queue.ingested = %v, want 7", queue["ingested"])
	}
}

// TestDebugTop checks ranking, the k parameter, and its validation.
func TestDebugTop(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	prog := "cons a; cons b; cons c\n" +
		"a <= Big; b <= Big; c <= Big; a <= Small"
	if resp, body := postSCL(t, hs.URL, prog, true); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d %v", resp.StatusCode, body)
	}

	resp, body := getJSON(t, hs.URL+"/v1/debug/top?k=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/top status = %d body %v", resp.StatusCode, body)
	}
	top := body["top"].([]any)
	if len(top) != 1 {
		t.Fatalf("top has %d rows, want 1", len(top))
	}
	first := top[0].(map[string]any)
	if first["var"] != "Big" || first["terms"].(float64) != 3 {
		t.Errorf("top[0] = %v, want Big with 3 terms", first)
	}

	if resp, _ := getJSON(t, hs.URL+"/v1/debug/top?k=0"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=0 status = %d, want 400", resp.StatusCode)
	}
	if resp, _ := getJSON(t, hs.URL+"/v1/debug/top?k=junk"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("k=junk status = %d, want 400", resp.StatusCode)
	}
}

// TestDebugEndpointsRaceIngestion hammers both debug endpoints from many
// readers while a writer streams batches in — under -race this proves the
// introspection surface reads only frozen snapshot state.
func TestDebugEndpointsRaceIngestion(t *testing.T) {
	_, hs := newTestServer(t, Config{SnapshotMaxStale: time.Millisecond})
	if resp, body := postSCL(t, hs.URL, "cons a0\na0 <= v0", true); resp.StatusCode != http.StatusOK {
		t.Fatalf("seed = %d %v", resp.StatusCode, body)
	}

	var (
		stop atomic.Bool
		hits atomic.Int64
		wg   sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		for i := 1; i <= 30; i++ {
			prog := fmt.Sprintf("cons a%d\na%d <= v%d; v%d <= v%d; v%d <= v%d", i, i, i, i-1, i, i, i-1)
			resp, err := http.Post(hs.URL+"/v1/constraints?wait=1", "text/plain", strings.NewReader(prog))
			if err != nil {
				t.Errorf("writer: %v", err)
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("writer batch %d: status %d", i, resp.StatusCode)
				return
			}
		}
	}()
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			url := hs.URL + "/v1/debug/stats"
			if g%2 == 1 {
				url = hs.URL + "/v1/debug/top?k=5"
			}
			for !stop.Load() {
				resp, err := http.Get(url)
				if err != nil {
					t.Errorf("reader: %v", err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader: status %d from %s", resp.StatusCode, url)
					return
				}
				hits.Add(1)
			}
		}(g)
	}
	wg.Wait()
	if hits.Load() == 0 {
		t.Error("debug readers never completed a request")
	}
}
