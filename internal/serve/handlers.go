package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"time"

	"polce"
	"polce/internal/telemetry"
	"polce/internal/wal"
)

// routes wires the v1 API onto the server's mux, each handler wrapped with
// the per-request deadline and the per-route instrumentation. With a
// registry configured the telemetry surface is mounted alongside, so one
// listener serves both the API and /metrics.
func (s *Server) routes() {
	s.handle("constraints", "POST /v1/constraints", s.handleConstraints)
	s.handle("points_to", "GET /v1/points-to/{var}", s.handlePointsTo)
	s.handle("least_solution", "GET /v1/least-solution/{var}", s.handleLeastSolution)
	s.handle("snapshot", "GET /v1/snapshot", s.handleSnapshot)
	s.handle("healthz", "GET /v1/healthz", s.handleHealthz)
	s.handle("debug_stats", "GET /v1/debug/stats", s.handleDebugStats)
	s.handle("debug_top", "GET /v1/debug/top", s.handleDebugTop)
	if s.cfg.Registry != nil {
		tm := telemetry.NewMux(s.cfg.Registry)
		s.mux.Handle("/metrics", tm)
		s.mux.Handle("/metrics.json", tm)
		s.mux.Handle("/debug/", tm)
	}
	// The "/" catch-all turns unrouted requests into instrumented 404s, so
	// they land in the "other" route metrics and the request log instead of
	// the mux's bare response. (Method mismatches on known patterns are
	// still the mux's own 405s — the pattern matched, so the catch-all
	// never sees them.)
	s.handle("other", "/", s.handleUnmatched)
}

// handle wraps one route with the serve middleware: a request ID (taken
// from the client's X-Request-Id or generated) echoed in the response
// header and threaded through the context as the trace ID, an "http" root
// span when tracing is on, the per-request deadline, a status recorder
// for the metrics, centralised error rendering, and the structured
// request log.
func (s *Server) handle(route, pattern string, h func(http.ResponseWriter, *http.Request) error) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = telemetry.NewTraceID()
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		track := &reqTrack{id: reqID}
		ctx = withTrack(telemetry.WithTraceID(ctx, reqID), track)
		ctx, span := s.tracer.StartSpan(ctx, "http")
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		err := h(rec, r.WithContext(ctx))
		if err != nil {
			s.writeError(rec, err)
		}
		elapsed := time.Since(start)
		span.SetAttr("status", rec.status)
		span.End()
		s.metrics.observe(route, rec.status, elapsed)
		s.logRequest(r, route, rec.status, elapsed, track, err)
	})
}

// writeError renders err through the status table, attaching the backoff
// hint to 503s.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := StatusOf(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, code, map[string]any{"error": err.Error(), "kind": kindOf(err)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// constraintsRequest is the POST /v1/constraints body: a fragment of SCL —
// constructor declarations and inclusion constraints — appended to the
// session's constraint program.
type constraintsRequest struct {
	Program string `json:"program"`
}

// handleConstraints ingests one batch. Admission is synchronous — parse
// (400 on malformed SCL, atomically rolled back), constraint-log append,
// enqueue, all one atomic step in accept — and the solve is queued: by
// default the response is a 202 once the batch is durably accepted, and
// ?wait=1 blocks until the batch has been applied, reporting the graph
// version it produced (or a 409 if it made the system inconsistent).
// Declaration-only batches queue (and log) too: replay needs every
// vocabulary change in stream order, not just the constraint-bearing ones.
func (s *Server) handleConstraints(w http.ResponseWriter, r *http.Request) error {
	src, err := readProgram(r, s.cfg.MaxBodyBytes)
	if err != nil {
		return err
	}
	job, err := s.accept(r.Context(), src)
	if err != nil {
		return err
	}
	// Under SyncAlways the frame reaches stable storage before any ack —
	// outside the session lock, so concurrent accepts share one fsync and
	// reads never queue behind the disk.
	if s.wal != nil && s.wal.Policy() == wal.SyncAlways {
		if err := s.durable(job); err != nil {
			return err
		}
	}
	if r.URL.Query().Get("wait") == "" {
		resp := map[string]any{"accepted": len(job.batch), "queue_len": s.QueueLen()}
		if job.seq != 0 {
			resp["wal_seq"] = job.seq
		}
		writeJSON(w, http.StatusAccepted, resp)
		return nil
	}
	// The await-apply span is the handler-side view of the same interval
	// the ingester decomposes into queue-wait + ingest-drain; the remainder
	// — result-handoff — is the scheduling delay between the ingester
	// finishing the batch and this goroutine waking up, measured rather
	// than inferred so the breakdown sums to the observed wait.
	_, await := s.tracer.StartSpan(r.Context(), "await-apply")
	select {
	case res := <-job.done:
		await.SetAttr("applied", res.applied)
		await.End()
		if handoff := time.Since(job.at) - res.wait - res.drain; handoff > 0 {
			s.tracer.Emit(r.Context(), "result-handoff", time.Now().Add(-handoff), handoff, nil)
		}
		track := trackFrom(r.Context())
		track.phase("queue_wait", res.wait)
		track.phase("ingest_drain", res.drain)
		track.versioned(res.version)
		if res.err != nil {
			return res.err
		}
		writeJSON(w, http.StatusOK, map[string]any{"applied": res.applied, "version": res.version})
		return nil
	case <-r.Context().Done():
		await.SetAttr("error", r.Context().Err().Error())
		await.End()
		// The batch stays queued and will still be applied; the client just
		// stopped waiting for it.
		return r.Context().Err()
	}
}

// readProgram accepts either a JSON {"program": "..."} body or raw SCL
// text (text/plain or no content type).
func readProgram(r *http.Request, maxBytes int64) (string, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		return "", fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if int64(len(body)) > maxBytes {
		return "", fmt.Errorf("%w: body exceeds %d bytes", ErrBadRequest, maxBytes)
	}
	ct := r.Header.Get("Content-Type")
	if ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil {
			ct = mt
		}
	}
	if ct == "application/json" {
		var req constraintsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("%w: decoding JSON body: %v", ErrBadRequest, err)
		}
		return req.Program, nil
	}
	return string(body), nil
}

// query resolves the {var} path element against a fresh snapshot. Reads
// never touch the live graph: the snapshot is captured once per graph
// version and shared by every concurrent query.
func (s *Server) query(r *http.Request) (*polce.Snapshot, *polce.Var, error) {
	name := r.PathValue("var")
	snap, err := s.snapshot(r.Context())
	if err != nil {
		return nil, nil, err
	}
	trackFrom(r.Context()).queried(name, snap.Version())
	if v, ok := s.session.lookup(name); ok {
		return snap, v, nil
	}
	if v := snap.VarByName(name); v != nil {
		return snap, v, nil
	}
	return nil, nil, fmt.Errorf("%w: %q", ErrUnknownVar, name)
}

// handleLeastSolution reports the full least solution of one variable as
// rendered terms, stamped with the snapshot version that produced it.
func (s *Server) handleLeastSolution(w http.ResponseWriter, r *http.Request) error {
	snap, v, err := s.query(r)
	if err != nil {
		return err
	}
	terms, err := snap.LeastSolutionContext(r.Context(), v)
	if err != nil {
		return err
	}
	rendered := make([]string, len(terms))
	for i, t := range terms {
		rendered[i] = t.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"var": v.Name(), "version": snap.Version(), "terms": rendered,
	})
	return nil
}

// handlePointsTo reports the abstract-location view of a least solution:
// nullary constructors name themselves, and for constructed terms the
// first argument names the location when it is a variable (the ref-term
// convention of Andersen-style analyses); anything else falls back to the
// rendered term.
func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) error {
	snap, v, err := s.query(r)
	if err != nil {
		return err
	}
	terms, err := snap.LeastSolutionContext(r.Context(), v)
	if err != nil {
		return err
	}
	locs := make([]string, 0, len(terms))
	for _, t := range terms {
		switch {
		case t.Con().Arity() == 0:
			locs = append(locs, t.Con().Name())
		default:
			if av, ok := t.Arg(0).(*polce.Var); ok {
				locs = append(locs, av.Name())
			} else {
				locs = append(locs, t.String())
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"var": v.Name(), "version": snap.Version(), "points_to": locs,
	})
	return nil
}

// handleSnapshot reports the graph version, solver counters and queue
// state — the service's dashboard endpoint.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	snap, err := s.snapshot(r.Context())
	if err != nil {
		return err
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":      snap.Version(),
		"form":         snap.Form().String(),
		"vars":         snap.NumVars(),
		"session_vars": s.session.vars(),
		"errors":       snap.ErrorCount(),
		"stats":        snap.Stats(),
		"queue_len":    s.QueueLen(),
		"queue_cap":    s.QueueCap(),
		"ingested":     s.Ingested(),
	})
	return nil
}

// handleHealthz is the liveness probe: cheap and lock-free — no snapshot
// capture, no solver lock (the version is the ingester's last applied one,
// tracked atomically) — and honest about draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"queue_len":      s.QueueLen(),
		"queue_cap":      s.QueueCap(),
		"version":        s.lastVersion.Load(),
		"ingested":       s.Ingested(),
	})
	return nil
}
