package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"time"

	"polce"
	"polce/internal/telemetry"
	"polce/internal/wal"
)

// routes wires the v1 API onto the server's mux, each handler wrapped with
// the per-request deadline and the per-route instrumentation. With a
// registry configured the telemetry surface is mounted alongside, so one
// listener serves both the API and /metrics.
func (s *Server) routes() {
	for _, rt := range routeTable {
		h := rt.handler(s)
		if rt.deprecated {
			h = s.deprecated(h)
		}
		s.handle(rt.name, rt.pattern, h)
	}
	if s.cfg.Registry != nil {
		tm := telemetry.NewMux(s.cfg.Registry)
		s.mux.Handle("/metrics", tm)
		s.mux.Handle("/metrics.json", tm)
		s.mux.Handle("/debug/", tm)
	}
	// The "/" catch-all turns unrouted requests into instrumented 404s, so
	// they land in the "other" route metrics and the request log instead of
	// the mux's bare response. (Method mismatches on known patterns are
	// still the mux's own 405s — the pattern matched, so the catch-all
	// never sees them.)
	s.handle("other", "/", s.handleUnmatched)
}

// routeTable is the v1 routing surface as data, one row per pattern: the
// sessionized routes, the deprecated pre-session aliases (which resolve to
// the default session and answer with a Deprecation header), and the
// session-free service routes. The router test walks this table, so a
// route added here is exercised automatically.
var routeTable = []struct {
	name       string // route-metrics label
	pattern    string
	deprecated bool
	handler    func(*Server) func(http.ResponseWriter, *http.Request) error
}{
	{"constraints", "POST /v1/constraints/{session}", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleConstraints }},
	{"retract", "DELETE /v1/constraints/{session}/{batch}", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleRetract }},
	{"points_to", "GET /v1/points-to/{session}/{var}", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handlePointsTo }},
	{"least_solution", "GET /v1/least-solution/{session}/{var}", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleLeastSolution }},
	{"snapshot", "GET /v1/snapshot/{session}", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleSnapshot }},
	{"constraints", "POST /v1/constraints", true, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleConstraints }},
	{"points_to", "GET /v1/points-to/{var}", true, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handlePointsTo }},
	{"least_solution", "GET /v1/least-solution/{var}", true, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleLeastSolution }},
	{"snapshot", "GET /v1/snapshot", true, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleSnapshot }},
	{"healthz", "GET /v1/healthz", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleHealthz }},
	{"debug_stats", "GET /v1/debug/stats", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleDebugStats }},
	{"debug_top", "GET /v1/debug/top", false, func(s *Server) func(http.ResponseWriter, *http.Request) error { return s.handleDebugTop }},
}

// deprecated wraps a pre-session alias route: the handler behaves exactly
// like its sessionized successor against the default session, and the
// response advertises the deprecation (RFC 8594-style header) so clients
// can migrate without breaking.
func (s *Server) deprecated(h func(http.ResponseWriter, *http.Request) error) func(http.ResponseWriter, *http.Request) error {
	return func(w http.ResponseWriter, r *http.Request) error {
		w.Header().Set("Deprecation", "true")
		return h(w, r)
	}
}

// sessionLabel resolves the {session} path element, defaulting the
// pre-session alias routes to the configured default session.
func (s *Server) sessionLabel(r *http.Request) (string, error) {
	label := r.PathValue("session")
	if label == "" {
		return s.cfg.WALSession, nil
	}
	if err := validSessionLabel(label); err != nil {
		return "", err
	}
	return label, nil
}

// etagOf renders the strong entity tag of a snapshot version. The graph
// version is monotone and advances exactly on mutations that can change
// some least solution, so equal tags imply byte-equal response bodies for
// the same resource.
func etagOf(version uint64) string { return fmt.Sprintf("%q", fmt.Sprintf("v%d", version)) }

// notModified reports whether the request's If-None-Match matches etag,
// per RFC 9110 §13.1.2 (weak comparison; "*" matches anything).
func notModified(r *http.Request, etag string) bool {
	inm := r.Header.Get("If-None-Match")
	if inm == "" {
		return false
	}
	for _, cand := range strings.Split(inm, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || strings.TrimPrefix(cand, "W/") == etag {
			return true
		}
	}
	return false
}

// handle wraps one route with the serve middleware: a request ID (taken
// from the client's X-Request-Id or generated) echoed in the response
// header and threaded through the context as the trace ID, an "http" root
// span when tracing is on, the per-request deadline, a status recorder
// for the metrics, centralised error rendering, and the structured
// request log.
func (s *Server) handle(route, pattern string, h func(http.ResponseWriter, *http.Request) error) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqID := r.Header.Get("X-Request-Id")
		if reqID == "" {
			reqID = telemetry.NewTraceID()
		}
		w.Header().Set("X-Request-Id", reqID)
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		track := &reqTrack{id: reqID}
		ctx = withTrack(telemetry.WithTraceID(ctx, reqID), track)
		ctx, span := s.tracer.StartSpan(ctx, "http")
		span.SetAttr("route", route)
		span.SetAttr("method", r.Method)
		span.SetAttr("path", r.URL.Path)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		err := h(rec, r.WithContext(ctx))
		if err != nil {
			s.writeError(rec, err)
		}
		elapsed := time.Since(start)
		span.SetAttr("status", rec.status)
		span.End()
		s.metrics.observe(route, rec.status, elapsed)
		s.logRequest(r, route, rec.status, elapsed, track, err)
	})
}

// writeError renders err through the status table, attaching the backoff
// hint to 503s.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	code := StatusOf(err)
	if code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
	}
	writeJSON(w, code, map[string]any{"error": err.Error(), "kind": kindOf(err)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// constraintsRequest is the POST /v1/constraints body: a fragment of SCL —
// constructor declarations and inclusion constraints — appended to the
// session's constraint program.
type constraintsRequest struct {
	Program string `json:"program"`
}

// handleConstraints ingests one batch. Admission is synchronous — parse
// (400 on malformed SCL, atomically rolled back), constraint-log append,
// enqueue, all one atomic step in accept — and the solve is queued: by
// default the response is a 202 once the batch is durably accepted, and
// ?wait=1 blocks until the batch has been applied, reporting the graph
// version it produced (or a 409 if it made the system inconsistent).
// Declaration-only batches queue (and log) too: replay needs every
// vocabulary change in stream order, not just the constraint-bearing ones.
func (s *Server) handleConstraints(w http.ResponseWriter, r *http.Request) error {
	label, err := s.sessionLabel(r)
	if err != nil {
		return err
	}
	src, err := readProgram(r, s.cfg.MaxBodyBytes)
	if err != nil {
		return err
	}
	job, err := s.accept(r.Context(), label, src)
	if err != nil {
		return err
	}
	// Under SyncAlways the frame reaches stable storage before any ack —
	// outside the session lock, so concurrent accepts share one fsync and
	// reads never queue behind the disk.
	if s.wal != nil && s.wal.Policy() == wal.SyncAlways {
		if err := s.durable(job); err != nil {
			return err
		}
	}
	if r.URL.Query().Get("wait") == "" {
		resp := map[string]any{"accepted": len(job.batch), "queue_len": s.QueueLen(), "session": label}
		if job.seq != 0 {
			resp["wal_seq"] = job.seq
		}
		if job.handle != 0 {
			// The batch handle names this POST for a later DELETE; on a
			// durable server it is the WAL sequence number, so the log and
			// the API share one naming scheme.
			resp["batch"] = job.handle
		}
		writeJSON(w, http.StatusAccepted, resp)
		return nil
	}
	// The await-apply span is the handler-side view of the same interval
	// the ingester decomposes into queue-wait + ingest-drain; the remainder
	// — result-handoff — is the scheduling delay between the ingester
	// finishing the batch and this goroutine waking up, measured rather
	// than inferred so the breakdown sums to the observed wait.
	_, await := s.tracer.StartSpan(r.Context(), "await-apply")
	select {
	case res := <-job.done:
		await.SetAttr("applied", res.applied)
		await.End()
		if handoff := time.Since(job.at) - res.wait - res.drain; handoff > 0 {
			s.tracer.Emit(r.Context(), "result-handoff", time.Now().Add(-handoff), handoff, nil)
		}
		track := trackFrom(r.Context())
		track.phase("queue_wait", res.wait)
		track.phase("ingest_drain", res.drain)
		track.versioned(res.version)
		if res.err != nil {
			return res.err
		}
		resp := map[string]any{"applied": res.applied, "version": res.version, "session": label}
		if job.handle != 0 {
			resp["batch"] = job.handle
		}
		writeJSON(w, http.StatusOK, resp)
		return nil
	case <-r.Context().Done():
		await.SetAttr("error", r.Context().Err().Error())
		await.End()
		// The batch stays queued and will still be applied; the client just
		// stopped waiting for it.
		return r.Context().Err()
	}
}

// handleRetract withdraws one previously accepted batch by its handle:
// every consequence whose last remaining justification came from that batch
// disappears, facts still derivable from surviving batches stay. The
// retraction is synchronous — by the time the 200 arrives the dirty cone
// has been replayed — and atomic: an unknown or foreign handle is a 404
// with nothing retracted. On a non-retractable solver the route answers
// 501.
func (s *Server) handleRetract(w http.ResponseWriter, r *http.Request) error {
	label, err := s.sessionLabel(r)
	if err != nil {
		return err
	}
	handle, err := strconv.ParseUint(r.PathValue("batch"), 10, 64)
	if err != nil || handle == 0 {
		return fmt.Errorf("%w: batch handle must be a positive integer", ErrBadRequest)
	}
	job, err := s.acceptRetract(r.Context(), label, []uint64{handle})
	if err != nil {
		return err
	}
	if s.wal != nil && s.wal.Policy() == wal.SyncAlways {
		if err := s.durable(job); err != nil {
			return err
		}
	}
	// Unlike POST there is no fire-and-forget mode: the client needs the
	// validation outcome (the handle may be unknown), so DELETE always
	// waits for the ingester.
	_, await := s.tracer.StartSpan(r.Context(), "await-retract")
	select {
	case res := <-job.done:
		await.End()
		track := trackFrom(r.Context())
		track.phase("queue_wait", res.wait)
		track.phase("ingest_drain", res.drain)
		track.versioned(res.version)
		if res.err != nil {
			return res.err
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"session": label,
			"batch":   handle,
			"version": res.version,
			"report": map[string]any{
				"no_op":                res.report.NoOp,
				"dirty_vars":           res.report.DirtyVars,
				"total_vars":           res.report.TotalVars,
				"replayed_batches":     res.report.ReplayedBatches,
				"replayed_constraints": res.report.ReplayedConstraints,
				"duration_seconds":     res.report.Duration.Seconds(),
			},
		})
		return nil
	case <-r.Context().Done():
		await.SetAttr("error", r.Context().Err().Error())
		await.End()
		// The retraction stays queued and will still be applied; the client
		// just stopped waiting for the outcome.
		return r.Context().Err()
	}
}

// readProgram accepts either a JSON {"program": "..."} body or raw SCL
// text (text/plain or no content type).
func readProgram(r *http.Request, maxBytes int64) (string, error) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBytes+1))
	if err != nil {
		return "", fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if int64(len(body)) > maxBytes {
		return "", fmt.Errorf("%w: body exceeds %d bytes", ErrBadRequest, maxBytes)
	}
	ct := r.Header.Get("Content-Type")
	if ct != "" {
		if mt, _, err := mime.ParseMediaType(ct); err == nil {
			ct = mt
		}
	}
	if ct == "application/json" {
		var req constraintsRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("%w: decoding JSON body: %v", ErrBadRequest, err)
		}
		return req.Program, nil
	}
	return string(body), nil
}

// query resolves the {session} and {var} path elements against a fresh
// snapshot. Reads never touch the live graph: the snapshot is captured
// once per graph version and shared by every concurrent query. The
// session's binder resolves first (sessions partition the SCL namespace);
// the solver-wide name index is a fallback for the default session only,
// so variables minted outside any session — embedders driving the solver
// directly — stay reachable through the legacy routes without leaking one
// session's names into another's.
func (s *Server) query(r *http.Request) (*polce.Snapshot, *polce.Var, error) {
	label, err := s.sessionLabel(r)
	if err != nil {
		return nil, nil, err
	}
	name := r.PathValue("var")
	snap, err := s.snapshot(r.Context())
	if err != nil {
		return nil, nil, err
	}
	trackFrom(r.Context()).queried(name, snap.Version())
	if ss, ok := s.sessions.peek(label); ok {
		if v, ok := ss.lookup(name); ok {
			return snap, v, nil
		}
	}
	if label == s.cfg.WALSession {
		if v := snap.VarByName(name); v != nil {
			return snap, v, nil
		}
	}
	return nil, nil, fmt.Errorf("%w: %q", ErrUnknownVar, name)
}

// handleLeastSolution reports the full least solution of one variable as
// rendered terms, stamped with the snapshot version that produced it.
func (s *Server) handleLeastSolution(w http.ResponseWriter, r *http.Request) error {
	snap, v, err := s.query(r)
	if err != nil {
		return err
	}
	etag := etagOf(snap.Version())
	w.Header().Set("ETag", etag)
	if notModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil
	}
	terms, err := snap.LeastSolutionContext(r.Context(), v)
	if err != nil {
		return err
	}
	rendered := make([]string, len(terms))
	for i, t := range terms {
		rendered[i] = t.String()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"var": v.Name(), "version": snap.Version(), "terms": rendered,
	})
	return nil
}

// handlePointsTo reports the abstract-location view of a least solution:
// nullary constructors name themselves, and for constructed terms the
// first argument names the location when it is a variable (the ref-term
// convention of Andersen-style analyses); anything else falls back to the
// rendered term.
func (s *Server) handlePointsTo(w http.ResponseWriter, r *http.Request) error {
	snap, v, err := s.query(r)
	if err != nil {
		return err
	}
	etag := etagOf(snap.Version())
	w.Header().Set("ETag", etag)
	if notModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil
	}
	terms, err := snap.LeastSolutionContext(r.Context(), v)
	if err != nil {
		return err
	}
	locs := make([]string, 0, len(terms))
	for _, t := range terms {
		switch {
		case t.Con().Arity() == 0:
			locs = append(locs, t.Con().Name())
		default:
			if av, ok := t.Arg(0).(*polce.Var); ok {
				locs = append(locs, av.Name())
			} else {
				locs = append(locs, t.String())
			}
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"var": v.Name(), "version": snap.Version(), "points_to": locs,
	})
	return nil
}

// handleSnapshot reports the graph version, solver counters and queue
// state — the service's dashboard endpoint.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) error {
	label, err := s.sessionLabel(r)
	if err != nil {
		return err
	}
	snap, err := s.snapshot(r.Context())
	if err != nil {
		return err
	}
	etag := etagOf(snap.Version())
	w.Header().Set("ETag", etag)
	if notModified(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return nil
	}
	sessionVars := 0
	if ss, ok := s.sessions.peek(label); ok {
		sessionVars = ss.vars()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version":      snap.Version(),
		"form":         snap.Form().String(),
		"vars":         snap.NumVars(),
		"session":      label,
		"session_vars": sessionVars,
		"sessions":     s.sessions.count(),
		"retractable":  s.solver.Retractable(),
		"batches":      s.solver.BatchCount(),
		"retracted":    s.retracted.Load(),
		"errors":       snap.ErrorCount(),
		"stats":        snap.Stats(),
		"queue_len":    s.QueueLen(),
		"queue_cap":    s.QueueCap(),
		"ingested":     s.Ingested(),
	})
	return nil
}

// handleHealthz is the liveness probe: cheap and lock-free — no snapshot
// capture, no solver lock (the version is the ingester's last applied one,
// tracked atomically) — and honest about draining.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         status,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"queue_len":      s.QueueLen(),
		"queue_cap":      s.QueueCap(),
		"version":        s.lastVersion.Load(),
		"ingested":       s.Ingested(),
	})
	return nil
}
