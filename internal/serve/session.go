package serve

import (
	"fmt"
	"sync"

	"polce"
	"polce/internal/scl"
)

// session is one named constraint program: an scl.File grown across every
// POST against the session's label, and a Binder interning variables by
// name and terms structurally into the shared solver. Sessions partition
// the SCL namespace — two sessions can both declare `x` and get distinct
// solver variables — while every session's constraints flow into the same
// graph. Parsing and lowering mutate shared parser state, so they
// serialise on the session lock; that lock is never held while constraints
// are applied (the ingester does that), so a slow drain never blocks
// parsing.
type session struct {
	label  string
	mu     sync.Mutex
	file   *scl.File
	binder *scl.Binder
}

func newSession(label string, solver *polce.Solver) *session {
	f := scl.MustParse("")
	return &session{label: label, file: f, binder: scl.NewBinder(f, solver)}
}

// parse appends src's statements to the session program and lowers the new
// constraints. The append is atomic: on a parse error nothing is
// registered and the same batch can be corrected and resubmitted.
func (ss *session) parse(src string) ([]polce.Constraint, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	cs, err := ss.file.ParseAppend(src)
	if err != nil {
		return nil, err
	}
	return ss.binder.Lower(cs), nil
}

// lookup resolves a variable name registered by some earlier batch of this
// session.
func (ss *session) lookup(name string) (*polce.Var, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	v, ok := ss.binder.Vars[name]
	return v, ok
}

// vars returns the number of variables the session has interned.
func (ss *session) vars() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.binder.Vars)
}

// sessionSet is the registry of named sessions over one shared solver.
// Sessions are created on first write and live for the server's lifetime.
type sessionSet struct {
	mu     sync.Mutex
	solver *polce.Solver
	m      map[string]*session
}

func newSessionSet(solver *polce.Solver) *sessionSet {
	return &sessionSet{solver: solver, m: map[string]*session{}}
}

// get returns the session for label, creating it on first use.
func (st *sessionSet) get(label string) *session {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.m[label]
	if !ok {
		ss = newSession(label, st.solver)
		st.m[label] = ss
	}
	return ss
}

// peek returns the session for label without creating it — the read-path
// accessor, so a GET against a session no batch ever wrote does not mint
// an empty namespace.
func (st *sessionSet) peek(label string) (*session, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ss, ok := st.m[label]
	return ss, ok
}

// count returns the number of live sessions.
func (st *sessionSet) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// totalVars sums the interned-variable counts across all sessions.
func (st *sessionSet) totalVars() int {
	st.mu.Lock()
	labels := make([]*session, 0, len(st.m))
	for _, ss := range st.m {
		labels = append(labels, ss)
	}
	st.mu.Unlock()
	n := 0
	for _, ss := range labels {
		n += ss.vars()
	}
	return n
}

// validSessionLabel bounds what a {session} path element may be: 1–64
// bytes of letters, digits, dot, underscore and dash. The bound keeps
// labels safe for WAL frames, log lines and metric help text alike.
func validSessionLabel(label string) error {
	if label == "" || len(label) > 64 {
		return fmt.Errorf("%w: session label must be 1-64 characters", ErrBadRequest)
	}
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("%w: session label may contain only letters, digits, '.', '_' and '-'", ErrBadRequest)
		}
	}
	return nil
}
