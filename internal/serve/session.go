package serve

import (
	"sync"

	"polce"
	"polce/internal/scl"
)

// session is the service's constraint program: one scl.File grown across
// every POST of the server's lifetime, and a Binder interning variables by
// name and terms structurally into the live solver. Parsing and lowering
// mutate shared parser state, so they serialise on the session lock;
// that lock is never held while constraints are applied (the ingester does
// that), so a slow drain never blocks parsing.
type session struct {
	mu     sync.Mutex
	file   *scl.File
	binder *scl.Binder
}

func newSession(solver *polce.Solver) *session {
	f := scl.MustParse("")
	return &session{file: f, binder: scl.NewBinder(f, solver)}
}

// parse appends src's statements to the session program and lowers the new
// constraints. The append is atomic: on a parse error nothing is
// registered and the same batch can be corrected and resubmitted.
func (ss *session) parse(src string) ([]polce.Constraint, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	cs, err := ss.file.ParseAppend(src)
	if err != nil {
		return nil, err
	}
	return ss.binder.Lower(cs), nil
}

// parseLocked is parse's body for callers already holding ss.mu — the
// accept path, which must keep the lock across parse, log append and
// enqueue so that frame order equals variable-creation order.
func (ss *session) parseLocked(src string) ([]scl.Constraint, error) {
	return ss.file.ParseAppend(src)
}

// lookup resolves a variable name registered by some earlier batch.
func (ss *session) lookup(name string) (*polce.Var, bool) {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	v, ok := ss.binder.Vars[name]
	return v, ok
}

// vars returns the number of variables the session has interned.
func (ss *session) vars() int {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	return len(ss.binder.Vars)
}
