package serve

import (
	"fmt"
	"net/http"
	"time"

	"polce/internal/telemetry"
)

// routeMetrics instruments each route with a latency histogram and
// per-status-class counters in the shared telemetry registry. Routes are
// known statically, so every metric is registered once at construction and
// the request path stays allocation-free. A nil registry degrades to
// no-ops at the cost of one nil check per request.
type routeMetrics struct {
	byRoute map[string]*routeEntry
}

type routeEntry struct {
	latency *telemetry.Histogram
	status  [3]*telemetry.Counter // 2xx, 4xx, 5xx
}

// routeNames are the metric-name suffixes, one per API route. "other" is
// the catch-all for requests that match no known route (404s, routes
// added before their metrics), so unmatched traffic is still counted.
var routeNames = []string{
	"constraints", "points_to", "least_solution", "snapshot", "healthz",
	"debug_stats", "debug_top", "other",
}

// latencyBuckets spans 100µs to ~13s in powers of ~3.2 — wide enough for a
// loopback read (tens of µs) and a deadline-bounded ingest wait alike.
func latencyBuckets() []float64 {
	return telemetry.LogBuckets(100e-6, 3.2, 10)
}

func newRouteMetrics(reg *telemetry.Registry) *routeMetrics {
	if reg == nil {
		return nil
	}
	m := &routeMetrics{byRoute: map[string]*routeEntry{}}
	for _, name := range routeNames {
		help := fmt.Sprintf("/v1/%s", name)
		if name == "other" {
			help = "unmatched routes"
		}
		e := &routeEntry{
			latency: reg.Histogram(
				fmt.Sprintf("polce_http_request_seconds_%s", name),
				fmt.Sprintf("request latency of %s in seconds", help),
				latencyBuckets()),
		}
		for i, class := range []string{"2xx", "4xx", "5xx"} {
			e.status[i] = reg.Counter(
				fmt.Sprintf("polce_http_requests_%s_%s", name, class),
				fmt.Sprintf("responses of %s with a %s status", help, class))
		}
		m.byRoute[name] = e
	}
	return m
}

// observe records one finished request. A route without its own entry is
// counted under "other", so no response is ever silently dropped from the
// metrics.
func (m *routeMetrics) observe(route string, status int, elapsed time.Duration) {
	if m == nil {
		return
	}
	e, ok := m.byRoute[route]
	if !ok {
		e = m.byRoute["other"]
		if e == nil {
			return
		}
	}
	e.latency.Observe(elapsed.Seconds())
	switch {
	case status >= 500:
		e.status[2].Inc()
	case status >= 400:
		e.status[1].Inc()
	default:
		e.status[0].Inc()
	}
}

// queueMetrics is the ingestion-queue and snapshot-cache observability:
// depth and age gauges plus a wait-time histogram for the queue, and
// hit/miss/stale counters for the snapshot cache. All fields are nil when
// the server has no registry; use the observe helpers, which no-op then.
type queueMetrics struct {
	wait      *telemetry.Histogram
	batchSize *telemetry.Histogram
	snapHit   *telemetry.Counter
	snapMiss  *telemetry.Counter
	snapStale *telemetry.Counter
}

// newQueueMetrics registers the queue and snapshot-cache metrics. The
// depth and age gauges are computed at exposition time from the server's
// own state, so they cost nothing on the request path.
func newQueueMetrics(reg *telemetry.Registry, s *Server) *queueMetrics {
	if reg == nil {
		return nil
	}
	reg.GaugeFunc("polce_serve_queue_depth", "batches waiting in the ingestion queue",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("polce_serve_queue_cap", "capacity of the ingestion queue in batches",
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("polce_serve_queue_oldest_age_seconds",
		"time since the batch now being applied was enqueued (0 while ingestion is idle)",
		func() float64 {
			if at := s.applyingSince.Load(); at != 0 {
				return time.Since(time.Unix(0, at)).Seconds()
			}
			return 0
		})
	return &queueMetrics{
		wait: reg.Histogram("polce_serve_queue_wait_seconds",
			"time a batch waited in the ingestion queue before the ingester picked it up",
			telemetry.LogBuckets(10e-6, 4, 12)),
		batchSize: reg.Histogram("polce_serve_ingest_batch_constraints",
			"constraints per applied ingestion batch",
			telemetry.LogBuckets(1, 4, 10)),
		snapHit: reg.Counter("polce_serve_snapshot_hits_total",
			"reads served from the cached snapshot within the staleness window"),
		snapMiss: reg.Counter("polce_serve_snapshot_misses_total",
			"reads that captured a snapshot (the solver's epoch guard makes unchanged-graph captures cheap)"),
		snapStale: reg.Counter("polce_serve_snapshot_stale_total",
			"reads served a stale snapshot while another reader refreshed (or a refresh was cancelled)"),
	}
}

func (m *queueMetrics) observeWait(d time.Duration, batch int) {
	if m == nil {
		return
	}
	m.wait.Observe(d.Seconds())
	m.batchSize.Observe(float64(batch))
}

func (m *queueMetrics) hit() {
	if m != nil {
		m.snapHit.Inc()
	}
}

func (m *queueMetrics) miss() {
	if m != nil {
		m.snapMiss.Inc()
	}
}

func (m *queueMetrics) stale() {
	if m != nil {
		m.snapStale.Inc()
	}
}

// statusRecorder captures the status a handler wrote, defaulting to 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher to the underlying writer, so streaming
// responses (chunked bulk ingestion, long polls) flush through the
// recorder instead of buffering until the handler returns.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
