package serve

import (
	"fmt"
	"net/http"
	"time"

	"polce/internal/telemetry"
)

// routeMetrics instruments each route with a latency histogram and
// per-status-class counters in the shared telemetry registry. Routes are
// known statically, so every metric is registered once at construction and
// the request path stays allocation-free. A nil registry degrades to
// no-ops at the cost of one nil check per request.
type routeMetrics struct {
	byRoute map[string]*routeEntry
}

type routeEntry struct {
	latency *telemetry.Histogram
	status  [3]*telemetry.Counter // 2xx, 4xx, 5xx
}

// routeNames are the metric-name suffixes, one per API route.
var routeNames = []string{"constraints", "points_to", "least_solution", "snapshot", "healthz"}

// latencyBuckets spans 100µs to ~13s in powers of ~3.2 — wide enough for a
// loopback read (tens of µs) and a deadline-bounded ingest wait alike.
func latencyBuckets() []float64 {
	return telemetry.LogBuckets(100e-6, 3.2, 10)
}

func newRouteMetrics(reg *telemetry.Registry) *routeMetrics {
	if reg == nil {
		return nil
	}
	m := &routeMetrics{byRoute: map[string]*routeEntry{}}
	for _, name := range routeNames {
		e := &routeEntry{
			latency: reg.Histogram(
				fmt.Sprintf("polce_http_request_seconds_%s", name),
				fmt.Sprintf("request latency of /v1/%s in seconds", name),
				latencyBuckets()),
		}
		for i, class := range []string{"2xx", "4xx", "5xx"} {
			e.status[i] = reg.Counter(
				fmt.Sprintf("polce_http_requests_%s_%s", name, class),
				fmt.Sprintf("responses of /v1/%s with a %s status", name, class))
		}
		m.byRoute[name] = e
	}
	return m
}

// observe records one finished request.
func (m *routeMetrics) observe(route string, status int, elapsed time.Duration) {
	if m == nil {
		return
	}
	e, ok := m.byRoute[route]
	if !ok {
		return
	}
	e.latency.Observe(elapsed.Seconds())
	switch {
	case status >= 500:
		e.status[2].Inc()
	case status >= 400:
		e.status[1].Inc()
	default:
		e.status[0].Inc()
	}
}

// statusRecorder captures the status a handler wrote, defaulting to 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}
