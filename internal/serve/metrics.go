package serve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"polce"
	"polce/internal/telemetry"
)

// ageTracker records the enqueue times of batches that are queued but not
// yet picked up, in FIFO order — the data behind the oldest-age gauge. The
// queue channel itself cannot be inspected, so accept pushes here right
// before the channel send and the ingester pops right after receiving.
// A plain slice with a moving head: pushes and pops are O(1), and the
// occasional compaction keeps memory bounded by queue depth.
type ageTracker struct {
	mu   sync.Mutex
	at   []time.Time
	head int
}

func (a *ageTracker) push(t time.Time) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.head > 0 && a.head == len(a.at) {
		a.at = a.at[:0]
		a.head = 0
	}
	a.at = append(a.at, t)
}

func (a *ageTracker) pop() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.head < len(a.at) {
		a.head++
		if a.head == len(a.at) {
			a.at = a.at[:0]
			a.head = 0
		}
	}
}

// oldest returns the enqueue time of the oldest still-queued batch, or the
// zero time when the queue is empty.
func (a *ageTracker) oldest() time.Time {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.head < len(a.at) {
		return a.at[a.head]
	}
	return time.Time{}
}

// routeMetrics instruments each route with a latency histogram and
// per-status-class counters in the shared telemetry registry. Routes are
// known statically, so every metric is registered once at construction and
// the request path stays allocation-free. A nil registry degrades to
// no-ops at the cost of one nil check per request.
type routeMetrics struct {
	byRoute map[string]*routeEntry
}

type routeEntry struct {
	latency *telemetry.Histogram
	status  [3]*telemetry.Counter // 2xx, 4xx, 5xx
}

// routeNames are the metric-name suffixes, one per API route. "other" is
// the catch-all for requests that match no known route (404s, routes
// added before their metrics), so unmatched traffic is still counted.
var routeNames = []string{
	"constraints", "retract", "points_to", "least_solution", "snapshot", "healthz",
	"debug_stats", "debug_top", "other",
}

// latencyBuckets spans 100µs to ~13s in powers of ~3.2 — wide enough for a
// loopback read (tens of µs) and a deadline-bounded ingest wait alike.
func latencyBuckets() []float64 {
	return telemetry.LogBuckets(100e-6, 3.2, 10)
}

func newRouteMetrics(reg *telemetry.Registry) *routeMetrics {
	if reg == nil {
		return nil
	}
	m := &routeMetrics{byRoute: map[string]*routeEntry{}}
	for _, name := range routeNames {
		help := fmt.Sprintf("/v1/%s", name)
		if name == "other" {
			help = "unmatched routes"
		}
		e := &routeEntry{
			latency: reg.Histogram(
				fmt.Sprintf("polce_http_request_seconds_%s", name),
				fmt.Sprintf("request latency of %s in seconds", help),
				latencyBuckets()),
		}
		for i, class := range []string{"2xx", "4xx", "5xx"} {
			e.status[i] = reg.Counter(
				fmt.Sprintf("polce_http_requests_%s_%s", name, class),
				fmt.Sprintf("responses of %s with a %s status", help, class))
		}
		m.byRoute[name] = e
	}
	return m
}

// observe records one finished request. A route without its own entry is
// counted under "other", so no response is ever silently dropped from the
// metrics.
func (m *routeMetrics) observe(route string, status int, elapsed time.Duration) {
	if m == nil {
		return
	}
	e, ok := m.byRoute[route]
	if !ok {
		e = m.byRoute["other"]
		if e == nil {
			return
		}
	}
	e.latency.Observe(elapsed.Seconds())
	switch {
	case status >= 500:
		e.status[2].Inc()
	case status >= 400:
		e.status[1].Inc()
	default:
		e.status[0].Inc()
	}
}

// queueMetrics is the ingestion-queue and snapshot-cache observability:
// depth and age gauges plus a wait-time histogram for the queue, and
// hit/miss/stale counters for the snapshot cache. All fields are nil when
// the server has no registry; use the observe helpers, which no-op then.
type queueMetrics struct {
	wait       *telemetry.Histogram
	batchSize  *telemetry.Histogram
	walAppendH *telemetry.Histogram
	snapHit    *telemetry.Counter
	snapMiss   *telemetry.Counter
	snapStale  *telemetry.Counter
}

// newQueueMetrics registers the queue and snapshot-cache metrics. The
// depth and age gauges are computed at exposition time from the server's
// own state, so they cost nothing on the request path.
func newQueueMetrics(reg *telemetry.Registry, s *Server) *queueMetrics {
	if reg == nil {
		return nil
	}
	reg.GaugeFunc("polce_serve_queue_depth", "batches waiting in the ingestion queue",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("polce_serve_queue_cap", "capacity of the ingestion queue in batches",
		func() float64 { return float64(cap(s.queue)) })
	reg.GaugeFunc("polce_serve_queue_oldest_age_seconds",
		"age of the oldest unapplied batch: the one mid-apply, else the queue head (0 when idle)",
		func() float64 {
			// The batch being applied entered the queue before anything
			// still queued (single FIFO ingester), so it is the oldest
			// whenever one is in flight. A stalled ingester with a full
			// queue has applyingSince 0 but a non-zero queue head — the
			// case the old applyingSince-only gauge reported as 0.
			if at := s.applyingSince.Load(); at != 0 {
				return time.Since(time.Unix(0, at)).Seconds()
			}
			if at := s.ages.oldest(); !at.IsZero() {
				return time.Since(at).Seconds()
			}
			return 0
		})
	// Storage-backend gauges: the solver's StorageStats read is O(1)
	// counters under the solver lock, cheap enough per scrape.
	reg.GaugeFunc("polce_core_repr_csr", "1 when the solver uses the arena-backed CSR representation, 0 for hybrid",
		func() float64 {
			if s.solver.StorageStats().Repr == polce.ReprCSR.String() {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("polce_core_arena_chunks", "edge-arena chunks currently allocated",
		func() float64 { return float64(s.solver.StorageStats().Arena.Chunks) })
	reg.GaugeFunc("polce_core_arena_handed_out", "arena elements handed out since the last compaction",
		func() float64 { return float64(s.solver.StorageStats().Arena.HandedOut) })
	reg.GaugeFunc("polce_core_arena_retired", "arena elements retired (garbage) since the last compaction",
		func() float64 { return float64(s.solver.StorageStats().Arena.Retired) })
	reg.GaugeFunc("polce_core_arena_compactions", "arena compactions performed so far",
		func() float64 { return float64(s.solver.StorageStats().Arena.Compactions) })
	reg.GaugeFunc("polce_core_arena_epoch", "arena placement epoch (advances at each compaction)",
		func() float64 { return float64(s.solver.StorageStats().Arena.Epoch) })
	reg.GaugeFunc("polce_core_worklist_hwm", "high-water mark of the closure worklist",
		func() float64 { return float64(s.solver.StorageStats().WorklistHWM) })
	reg.GaugeFunc("polce_core_delta_ranges", "delta range entries pushed by the CSR drain loop",
		func() float64 { return float64(s.solver.StorageStats().DeltaRanges) })
	reg.GaugeFunc("polce_core_delta_max_span", "widest delta range pushed by the CSR drain loop",
		func() float64 { return float64(s.solver.StorageStats().DeltaMaxSpan) })
	if s.wal != nil {
		reg.GaugeFunc("polce_serve_wal_frames", "frames in the constraint log, recovered plus appended",
			func() float64 { return float64(s.wal.Frames()) })
		reg.GaugeFunc("polce_serve_wal_bytes", "size of the constraint log in bytes",
			func() float64 { return float64(s.wal.Bytes()) })
		reg.GaugeFunc("polce_serve_wal_syncs", "fsyncs issued against the constraint log",
			func() float64 { return float64(s.wal.Syncs()) })
		reg.GaugeFunc("polce_serve_wal_last_seq", "sequence number of the last logged frame",
			func() float64 { return float64(s.wal.LastSeq()) })
		reg.GaugeFunc("polce_serve_wal_replayed_frames", "frames replayed from the log at startup",
			func() float64 { return float64(s.walReplayed.Load()) })
		reg.GaugeFunc("polce_serve_wal_truncated_bytes", "torn-tail bytes truncated from the log at startup",
			func() float64 { return float64(s.wal.TruncatedBytes()) })
	}
	qm := &queueMetrics{
		wait: reg.Histogram("polce_serve_queue_wait_seconds",
			"time a batch waited in the ingestion queue before the ingester picked it up",
			telemetry.LogBuckets(10e-6, 4, 12)),
		batchSize: reg.Histogram("polce_serve_ingest_batch_constraints",
			"constraints per applied ingestion batch",
			telemetry.LogBuckets(1, 4, 10)),
		snapHit: reg.Counter("polce_serve_snapshot_hits_total",
			"reads served from the cached snapshot within the staleness window"),
		snapMiss: reg.Counter("polce_serve_snapshot_misses_total",
			"reads that captured a snapshot (the solver's epoch guard makes unchanged-graph captures cheap)"),
		snapStale: reg.Counter("polce_serve_snapshot_stale_total",
			"reads served a stale snapshot while another reader refreshed (or a refresh was cancelled)"),
	}
	if s.wal != nil {
		qm.walAppendH = reg.Histogram("polce_serve_wal_append_seconds",
			"time to append one frame to the constraint log (excluding fsync)",
			telemetry.LogBuckets(1e-6, 4, 12))
	}
	return qm
}

func (m *queueMetrics) observeWait(d time.Duration, batch int) {
	if m == nil {
		return
	}
	m.wait.Observe(d.Seconds())
	m.batchSize.Observe(float64(batch))
}

func (m *queueMetrics) walAppend(d time.Duration) {
	if m == nil || m.walAppendH == nil {
		return
	}
	m.walAppendH.Observe(d.Seconds())
}

func (m *queueMetrics) hit() {
	if m != nil {
		m.snapHit.Inc()
	}
}

func (m *queueMetrics) miss() {
	if m != nil {
		m.snapMiss.Inc()
	}
}

func (m *queueMetrics) stale() {
	if m != nil {
		m.snapStale.Inc()
	}
}

// statusRecorder captures the status a handler wrote, defaulting to 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards http.Flusher to the underlying writer, so streaming
// responses (chunked bulk ingestion, long polls) flush through the
// recorder instead of buffering until the handler returns.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
