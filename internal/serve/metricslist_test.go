package serve

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"polce"
	"polce/internal/telemetry"
	"polce/internal/wal"
)

var updateMetricsList = flag.Bool("update", false, "rewrite api/metrics.list with the currently exported metric names")

const metricsListPath = "../../api/metrics.list"

// TestMetricNamesGolden scrapes /metrics from a fully wired server (route
// metrics, queue metrics, solver metrics) and diffs the exported
// metric-name set against api/metrics.list. Metric names are API: dashboards
// and alerts break silently when one disappears or is renamed, so a rename
// must show up in review as a golden-file change. Regenerate with
//
//	go test ./internal/serve -run TestMetricNamesGolden -update
func TestMetricNamesGolden(t *testing.T) {
	reg := telemetry.NewRegistry()
	sm := telemetry.NewSolverMetrics(reg)
	solver := polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1, Metrics: sm})
	// A WAL is wired in so the polce_serve_wal_* names are part of the
	// golden surface too.
	l, _, err := wal.Open(t.TempDir(), wal.Options{Sync: wal.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	_, hs := newTestServer(t, Config{Solver: solver, Registry: reg, SolverMetrics: sm, WAL: l})

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}

	// `# TYPE <name> <kind>` is emitted once per registered metric whether
	// or not it has data, so the scraped name set is deterministic.
	var names []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 4 && fields[0] == "#" && fields[1] == "TYPE" {
			names = append(names, fmt.Sprintf("%s %s", fields[2], fields[3]))
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sort.Strings(names)
	got := strings.Join(names, "\n") + "\n"

	if *updateMetricsList {
		if err := os.MkdirAll(filepath.Dir(metricsListPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metricsListPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d metric names to %s", len(names), metricsListPath)
		return
	}

	want, err := os.ReadFile(metricsListPath)
	if err != nil {
		t.Fatalf("reading golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("exported metric names differ from %s — dashboards and alerts may break.\n"+
			"If the change is intended, regenerate with: go test ./internal/serve -run TestMetricNamesGolden -update\n"+
			"got:\n%swant:\n%s", metricsListPath, got, want)
	}
}
