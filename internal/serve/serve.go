// Package serve is the snapshot-backed HTTP constraint query service: a
// stdlib-only JSON API v1 over one polce.Solver, built so queries never
// contend with ingestion.
//
// Writes go through a bounded ingestion queue drained by a single
// ingester goroutine (backpressure is a 503 with Retry-After when the
// queue is full); every read is answered from a polce.Snapshot, which is
// captured under the solver lock once per graph version and then read
// lock-free, so any number of concurrent queries race an ingesting writer
// safely. Constraints arrive as SCL text (internal/scl) and grow one
// session-long constraint program; variables are addressed by their SCL
// names.
//
// The API surface is sessionized: every write and query names a session —
// an independent SCL namespace over the one shared solver — and batches
// are first-class resources that can be retracted by the handle their POST
// returned:
//
//	POST   /v1/constraints/{session}          ingest a batch of SCL statements
//	DELETE /v1/constraints/{session}/{batch}  retract a previously added batch
//	GET    /v1/points-to/{session}/{var}      abstract locations in var's least solution
//	GET    /v1/least-solution/{session}/{var} full least-solution terms of var
//	GET    /v1/snapshot/{session}             graph version, solver stats, queue state
//	GET    /v1/healthz                        liveness and queue occupancy
//
// The pre-session routes (POST /v1/constraints, GET /v1/points-to/{var},
// GET /v1/least-solution/{var}, GET /v1/snapshot) remain as deprecated
// aliases of the default session and answer with a Deprecation header.
// Snapshot and least-solution responses carry a strong ETag derived from
// the monotone graph version; an If-None-Match hit short-circuits to 304.
//
// Error mapping is table-driven (see StatusOf): inconsistent constraint
// systems report 409, a full ingestion queue 503, a closed (drained)
// solver 410, an unknown retraction handle 404, retraction against a
// non-retractable solver 501. With a telemetry.Registry configured, per-route latency
// histograms and status-class counters flow into the shared /metrics
// surface, which is mounted on the same handler.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"polce"
	"polce/internal/telemetry"
	"polce/internal/wal"
	"polce/internal/walreplay"
)

// Config configures a Server. Solver is required; everything else has a
// serviceable default.
type Config struct {
	// Solver is the live solver the service ingests into and snapshots
	// from.
	Solver *polce.Solver
	// Registry, when non-nil, receives per-route request metrics and is
	// served on /metrics, /metrics.json and /debug/ alongside the API.
	Registry *telemetry.Registry
	// QueueDepth bounds the ingestion queue (batches, not constraints).
	// Zero means 64.
	QueueDepth int
	// RequestTimeout is the per-request deadline applied to every
	// handler's context. Zero means 10s.
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint returned with 503 responses. Zero
	// means 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds a POST body. Zero means 1 MiB.
	MaxBodyBytes int64
	// SnapshotMaxStale, when positive, lets reads share the last captured
	// snapshot for up to this long even if ingestion has moved the graph
	// version on — bounded staleness. Under heavy write churn this keeps
	// reads lock-free (an atomic load) instead of serialising every reader
	// behind an O(vars) capture per version bump. Zero means reads are
	// always served from the current version.
	SnapshotMaxStale time.Duration
	// Logger, when non-nil, receives one structured log line per request:
	// debug level normally, warn past the SlowQuery threshold, error for
	// 5xx responses. Every line carries the request ID, joining the log
	// against the trace spans of the same request.
	Logger *slog.Logger
	// Tracer, when non-nil, emits request-scoped NDJSON spans: an "http"
	// root span per request, with "queue-wait"/"ingest-drain"/
	// "cycle-search" children on the write path and "snapshot-capture"/
	// "ls-pass" children on the read path, all sharing the request ID.
	Tracer *telemetry.Tracer
	// SolverMetrics, when set alongside Tracer, lets the server attribute
	// solver phase time (closure, least-solution) to individual spans by
	// reading phase-timer deltas around single-writer sections. Install the
	// same sink as the solver's Options.Metrics.
	SolverMetrics *telemetry.SolverMetrics
	// SlowQuery, when positive and Logger is set, logs requests that took
	// at least this long at warn level with their phase breakdown.
	SlowQuery time.Duration
	// WAL, when non-nil, is the durable constraint log. Every accepted
	// batch's SCL text is appended (and, under SyncAlways, fsynced) before
	// the 202/200 goes out, so an acknowledged batch survives a process
	// crash: on the next start, Recover replays the log through the normal
	// parse → lower → solve path and reconstructs a bit-identical graph.
	// The caller opens the log (wal.Open pins the solver options into the
	// log's meta) and closes it after Shutdown returns.
	WAL *wal.Log
	// WALSession is the session label recorded in each frame. Empty means
	// "default".
	WALSession string
}

func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.WALSession == "" {
		c.WALSession = "default"
	}
	return c
}

// Server is the service: an ingestion queue, an SCL session, and the v1
// HTTP handlers. Create one with New, expose Handler() through an
// http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	solver   *polce.Solver
	sessions *sessionSet
	metrics  *routeMetrics
	qmetrics *queueMetrics
	logger   *slog.Logger
	tracer   *telemetry.Tracer
	sm       *telemetry.SolverMetrics
	mux      *http.ServeMux
	start    time.Time

	queue    chan *ingestJob
	slots    chan struct{} // queue-slot semaphore: reserved in accept before any mutation
	drainReq chan struct{} // closed by Shutdown: ingester drains and exits
	done     chan struct{} // closed when the ingester has exited
	draining atomic.Bool
	drainMu  sync.RWMutex // accept holds R across admission; Shutdown's W is the barrier
	acceptMu sync.Mutex   // serialises admission across sessions: creation order = frame order

	handleSeq atomic.Uint64          // retraction handles when the WAL is off
	handleMu  sync.Mutex             // guards handles
	handles   map[uint64]handleEntry // issued handle → session + solver batch id
	retracted atomic.Int64           // batches retracted by the ingester

	wal         *wal.Log
	walFailed   atomic.Bool  // a log write failed: ingestion refuses until restart
	walReplayed atomic.Int64 // frames replayed by Recover at startup

	ingested      atomic.Int64  // constraints applied by the ingester
	lastVersion   atomic.Uint64 // graph version after the last applied batch
	applyingSince atomic.Int64  // enqueue time (unix nanos) of the batch being applied; 0 idle
	ages          *ageTracker   // enqueue times of queued-but-unapplied batches, FIFO

	snapMu         sync.Mutex                // serialises strict (always-fresh) captures
	snapCur        atomic.Pointer[snapEntry] // last capture, shared by stale reads
	snapRefreshing atomic.Bool               // a bounded-staleness refresh is in flight
}

// snapEntry is one cached capture: the snapshot and when it was taken.
type snapEntry struct {
	snap *polce.Snapshot
	at   time.Time
}

// snapshot returns the snapshot reads are served from. With
// SnapshotMaxStale zero (the default) every read captures the current
// version, serialised on snapMu — the solver's epoch guard makes repeat
// captures of an unchanged graph free. With a staleness bound the scheme is
// stale-while-revalidate: within the window a read is one atomic load; past
// it, the first reader through refreshes while every other reader keeps
// the previous snapshot, so no query ever waits out an O(vars) capture
// behind a hot writer. Effective staleness is therefore the window plus one
// capture time.
func (s *Server) snapshot(ctx context.Context) (*polce.Snapshot, error) {
	max := s.cfg.SnapshotMaxStale
	if e := s.snapCur.Load(); max > 0 && e != nil {
		if time.Since(e.at) < max {
			s.qmetrics.hit()
			return e.snap, nil
		}
		if !s.snapRefreshing.CompareAndSwap(false, true) {
			s.qmetrics.stale()
			return e.snap, nil // someone else is refreshing; stay on the stale view
		}
		defer s.snapRefreshing.Store(false)
		snap, err := s.capture(ctx)
		if err != nil {
			s.qmetrics.stale()
			return e.snap, nil // cancelled mid-refresh: the stale view still answers
		}
		s.snapCur.Store(&snapEntry{snap: snap, at: time.Now()})
		return snap, nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	if e := s.snapCur.Load(); max > 0 && e != nil && time.Since(e.at) < max {
		s.qmetrics.hit()
		return e.snap, nil
	}
	snap, err := s.capture(ctx)
	if err != nil {
		return nil, err
	}
	s.snapCur.Store(&snapEntry{snap: snap, at: time.Now()})
	return snap, nil
}

// capture performs one snapshot capture, counted as a cache miss (the
// solver's epoch guard makes unchanged-graph captures cheap, so a miss is
// an upper bound on real work). On a traced request it wraps the capture
// in a "snapshot-capture" span and, when the capture ran a least-solution
// pass, emits an "ls-pass" child sized by the phase-timer delta — safe to
// attribute because captures are serialised by the callers (snapMu, or
// the refresh CAS) and nothing else runs LS passes.
func (s *Server) capture(ctx context.Context) (*polce.Snapshot, error) {
	s.qmetrics.miss()
	ctx, span := s.tracer.StartSpan(ctx, "snapshot-capture")
	var ls0 time.Duration
	if s.sm != nil && span != nil {
		ls0, _ = s.sm.Phases.Get(telemetry.PhaseLeastSolution)
	}
	start := time.Now()
	snap, err := s.solver.SnapshotContext(ctx)
	if err != nil {
		span.SetAttr("error", err.Error())
		span.End()
		return nil, err
	}
	if s.sm != nil && span != nil {
		ls1, _ := s.sm.Phases.Get(telemetry.PhaseLeastSolution)
		if d := ls1 - ls0; d > 0 {
			s.tracer.Emit(ctx, "ls-pass", start, d, map[string]any{"version": snap.Version()})
		}
	}
	span.SetAttr("version", snap.Version())
	span.End()
	trackFrom(ctx).phase("snapshot_capture", time.Since(start))
	return snap, nil
}

// New builds a Server over cfg.Solver and starts its ingester goroutine.
func New(cfg Config) *Server {
	s := newServer(cfg)
	go s.ingest()
	return s
}

// newServer builds a Server without starting the ingester — tests that
// need a parked ingester (queue-full paths, age gauges) use it directly.
func newServer(cfg Config) *Server {
	if cfg.Solver == nil {
		panic("serve: Config.Solver is required")
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		solver:   cfg.Solver,
		sessions: newSessionSet(cfg.Solver),
		metrics:  newRouteMetrics(cfg.Registry),
		logger:   cfg.Logger,
		tracer:   cfg.Tracer,
		sm:       cfg.SolverMetrics,
		mux:      http.NewServeMux(),
		start:    time.Now(),
		queue:    make(chan *ingestJob, cfg.QueueDepth),
		slots:    make(chan struct{}, cfg.QueueDepth),
		drainReq: make(chan struct{}),
		done:     make(chan struct{}),
		wal:      cfg.WAL,
		ages:     &ageTracker{},
		handles:  map[uint64]handleEntry{},
	}
	s.qmetrics = newQueueMetrics(cfg.Registry, s)
	s.routes()
	return s
}

// Recover replays frames recovered from the constraint log through the
// normal session path — ParseAppend, Binder.Lower, AddBatch, routed to
// each frame's session — exactly as the live accept path ran them, so the
// recovered graph is bit-identical to the pre-crash one: same variable
// creation order, same constraint order, same seeded edge orientations,
// same partition. Retract frames replay in stream order against the batch
// ids the recovery itself issued; a frame whose targets are not live at
// its position retracted nothing on the live server (the DELETE failed
// validation after its frame was logged) and is skipped here the same way.
// Recovered handles stay registered, so pre-crash batches can still be
// retracted after the restart. Call Recover after New and before serving
// traffic; frames bypass the queue and are NOT re-appended to the log
// (they are already in it).
func (s *Server) Recover(frames []wal.Frame) (int, error) {
	constraints := 0
	retractable := s.solver.Retractable()
	for _, f := range frames {
		switch f.Kind {
		case wal.FrameRetract:
			targets, err := walreplay.ParseRetractText(f.Text)
			if err != nil {
				return constraints, fmt.Errorf("serve: wal frame %d: %w", f.Seq, err)
			}
			ids := make([]polce.BatchID, 0, len(targets))
			live := true
			for _, h := range targets {
				e, ok := s.handles[h]
				if !ok || e.session != f.Session {
					live = false
					break
				}
				ids = append(ids, e.id)
			}
			if live {
				if _, err := s.solver.RetractBatch(ids...); err != nil {
					return constraints, fmt.Errorf("serve: wal frame %d retract: %w", f.Seq, err)
				}
				for _, h := range targets {
					delete(s.handles, h)
				}
				s.retracted.Add(int64(len(targets)))
			}
		default:
			batch, err := s.sessions.get(f.Session).parse(f.Text)
			if err != nil {
				return constraints, fmt.Errorf("serve: wal frame %d does not parse: %w", f.Seq, err)
			}
			id := s.solver.AddBatch(batch)
			if retractable {
				s.handles[f.Seq] = handleEntry{session: f.Session, id: id}
			}
			constraints += len(batch)
		}
		s.walReplayed.Add(1)
	}
	s.ingested.Add(int64(constraints))
	s.lastVersion.Store(s.solver.Version())
	return constraints, nil
}

// Handler returns the service's HTTP handler: the v1 API plus, when a
// registry is configured, the telemetry surface (/metrics, /metrics.json,
// /debug/vars, /debug/pprof).
func (s *Server) Handler() http.Handler { return s.mux }

// Shutdown drains the service: new ingestion is refused with
// ErrSolverClosed (410) immediately, queued batches are applied, and the
// solver is closed once the queue is empty. It returns nil when the drain
// completed, or ctx's error if the deadline expired first (queued batches
// past the deadline are dropped). Shutdown is idempotent; reads keep
// working before and after.
func (s *Server) Shutdown(ctx context.Context) error {
	// The write lock is the barrier against the accepted-then-lost race:
	// accept holds the read side across its draining check and queue send,
	// so once this Lock is granted no admission is mid-flight — every
	// accepted job is already in the queue, where the ingester's final
	// flush (which only starts after drainReq closes, i.e. after this
	// barrier) is guaranteed to see it.
	s.drainMu.Lock()
	first := s.draining.CompareAndSwap(false, true)
	s.drainMu.Unlock()
	if first {
		close(s.drainReq)
	}
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// QueueLen returns the number of batches waiting in the ingestion queue.
func (s *Server) QueueLen() int { return len(s.queue) }

// QueueCap returns the ingestion queue's capacity.
func (s *Server) QueueCap() int { return cap(s.queue) }

// Ingested returns the total number of constraints applied so far.
func (s *Server) Ingested() int64 { return s.ingested.Load() }
