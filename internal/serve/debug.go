package serve

import (
	"fmt"
	"net/http"
	"strconv"
)

// This file is the live introspection surface: two read-only endpoints
// answered entirely from copy-on-write snapshots, so they are safe to hit
// on a production server under full ingestion load — a debug query never
// takes the solver lock beyond the shared snapshot capture, and never
// blocks the ingester.
//
//	GET /v1/debug/stats   graph size/density, collapsed-SCC histogram,
//	                      least-solution cache state, queue + cache health
//	GET /v1/debug/top?k=N hottest variables by points-to set size

// handleDebugStats reports the solver's internal state as of the current
// snapshot: live variables and edges, what online cycle elimination has
// collapsed so far (class count, largest class, size histogram), the
// least-solution cache, and the serving-side queue and snapshot-cache
// state.
func (s *Server) handleDebugStats(w http.ResponseWriter, r *http.Request) error {
	snap, err := s.snapshot(r.Context())
	if err != nil {
		return err
	}
	trackFrom(r.Context()).versioned(snap.Version())
	classes := snap.CollapsedClasses()
	eliminated, maxClass := 0, 0
	hist := map[string]int{}
	for _, sz := range classes {
		eliminated += sz - 1
		if sz > maxClass {
			maxClass = sz
		}
		hist[classBucket(sz)]++
	}
	g := snap.Graph()
	walBlock := map[string]any{"enabled": s.wal != nil}
	if s.wal != nil {
		walBlock["sync"] = s.wal.Policy().String()
		walBlock["frames"] = s.wal.Frames()
		walBlock["bytes"] = s.wal.Bytes()
		walBlock["syncs"] = s.wal.Syncs()
		walBlock["last_seq"] = s.wal.LastSeq()
		walBlock["replayed_frames"] = s.walReplayed.Load()
		walBlock["truncated_bytes"] = s.wal.TruncatedBytes()
		walBlock["failed"] = s.walFailed.Load()
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": snap.Version(),
		"form":    snap.Form().String(),
		"vars":    snap.NumVars(),
		"errors":  snap.ErrorCount(),
		"graph": map[string]any{
			"live_vars":     g.Vars,
			"var_var_edges": g.VarVarEdges,
			"source_edges":  g.SourceEdges,
			"sink_edges":    g.SinkEdges,
			"density":       g.Density,
		},
		"scc": map[string]any{
			"collapsed_classes": len(classes),
			"vars_eliminated":   eliminated,
			"max_class":         maxClass,
			"size_histogram":    hist,
		},
		"ls_cache": snap.LSCache(),
		"queue": map[string]any{
			"len":      s.QueueLen(),
			"cap":      s.QueueCap(),
			"ingested": s.Ingested(),
			"draining": s.draining.Load(),
		},
		"wal":   walBlock,
		"core":  snap.Storage(),
		"stats": snap.Stats(),
	})
	return nil
}

// classBucket buckets a collapsed-class size into power-of-two ranges:
// "2", "3-4", "5-8", "9-16", ... — coarse enough to stay readable on a
// graph with thousands of collapsed cycles, fine enough to show whether
// elimination is finding the long chains or only trivial 2-cycles.
func classBucket(sz int) string {
	lo, hi := 2, 2
	for sz > hi {
		lo, hi = hi+1, hi*2
	}
	if lo == hi {
		return strconv.Itoa(lo)
	}
	return fmt.Sprintf("%d-%d", lo, hi)
}

// handleDebugTop reports the k variables with the largest least solutions
// (points-to sets), largest first — the "which variables are blowing up"
// question. k defaults to 10 and is capped at 10000; the ranking is
// computed from the frozen snapshot, so repeated calls at one version are
// deterministic.
func (s *Server) handleDebugTop(w http.ResponseWriter, r *http.Request) error {
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n <= 0 {
			return fmt.Errorf("%w: k must be a positive integer, got %q", ErrBadRequest, q)
		}
		k = n
	}
	if k > 10000 {
		k = 10000
	}
	snap, err := s.snapshot(r.Context())
	if err != nil {
		return err
	}
	trackFrom(r.Context()).versioned(snap.Version())
	top := snap.Top(k)
	rows := make([]map[string]any, len(top))
	for i, tv := range top {
		rows[i] = map[string]any{"var": tv.Var.Name(), "terms": tv.Terms}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"version": snap.Version(),
		"k":       len(rows),
		"top":     rows,
	})
	return nil
}

// handleUnmatched is the catch-all for requests no route claimed: a 404
// counted under the "other" route metrics instead of vanishing.
func (s *Server) handleUnmatched(w http.ResponseWriter, r *http.Request) error {
	return fmt.Errorf("%w: no route for %s %s", ErrNotFound, r.Method, r.URL.Path)
}
