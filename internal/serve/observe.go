package serve

import (
	"context"
	"log/slog"
	"net/http"
	"time"
)

// trackCtxKey keys the per-request tracker in the request context.
type trackCtxKey struct{}

// reqTrack accumulates what one request touched, for the structured
// request log: which variable was queried, the snapshot (or post-ingest)
// version that answered, and named phase durations — queue wait, ingest
// drain, snapshot capture. It is owned by the handler goroutine; nothing
// else writes it, so no synchronisation is needed. All methods are
// nil-safe so instrumented paths need no "is this request tracked?"
// conditionals.
type reqTrack struct {
	id      string
	varName string
	version uint64
	phases  []phaseSample
}

type phaseSample struct {
	name string
	d    time.Duration
}

// withTrack attaches a tracker to ctx; trackFrom retrieves it (nil when
// the request isn't tracked — e.g. a context that never passed through
// the serve middleware).
func withTrack(ctx context.Context, t *reqTrack) context.Context {
	return context.WithValue(ctx, trackCtxKey{}, t)
}

func trackFrom(ctx context.Context) *reqTrack {
	t, _ := ctx.Value(trackCtxKey{}).(*reqTrack)
	return t
}

// phase records one named duration in request order.
func (t *reqTrack) phase(name string, d time.Duration) {
	if t != nil {
		t.phases = append(t.phases, phaseSample{name: name, d: d})
	}
}

// queried records the variable a read resolved and the snapshot version
// that answered.
func (t *reqTrack) queried(varName string, version uint64) {
	if t != nil {
		t.varName = varName
		t.version = version
	}
}

// versioned records the graph version a write produced.
func (t *reqTrack) versioned(version uint64) {
	if t != nil {
		t.version = version
	}
}

// logRequest writes the structured per-request log line: debug level for
// routine traffic, warn with a "slow query" message past the SlowQuery
// threshold, error for 5xx responses. Every line carries the request ID,
// so log lines join against the NDJSON trace spans of the same request,
// and slow-query lines carry the route, variable, snapshot version and
// phase breakdown the issue of "where did the time go" needs.
func (s *Server) logRequest(r *http.Request, route string, status int, elapsed time.Duration, track *reqTrack, err error) {
	if s.logger == nil {
		return
	}
	level, msg := slog.LevelDebug, "request"
	switch {
	case status >= 500:
		level, msg = slog.LevelError, "request failed"
	case s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery:
		level, msg = slog.LevelWarn, "slow query"
	}
	ctx := context.Background() // the request context may already be cancelled
	if !s.logger.Enabled(ctx, level) {
		return
	}
	attrs := make([]any, 0, 12)
	attrs = append(attrs,
		slog.String("request_id", track.id),
		slog.String("route", route),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Duration("elapsed", elapsed),
	)
	if track.varName != "" {
		attrs = append(attrs, slog.String("var", track.varName))
	}
	if track.version != 0 {
		attrs = append(attrs, slog.Uint64("version", track.version))
	}
	if err != nil {
		attrs = append(attrs, slog.String("error", err.Error()))
	}
	if len(track.phases) > 0 {
		ph := make([]any, 0, len(track.phases))
		for _, p := range track.phases {
			ph = append(ph, slog.Duration(p.name, p.d))
		}
		attrs = append(attrs, slog.Group("phases", ph...))
	}
	s.logger.Log(ctx, level, msg, attrs...)
}
