package serve

import (
	"context"
	"errors"
	"net/http"

	"polce"
)

// ErrBadRequest is wrapped around client mistakes the solver never sees:
// malformed SCL, an unreadable body, an unknown variable name.
var ErrBadRequest = errors.New("serve: bad request")

// ErrUnknownVar is wrapped around queries for a variable no batch has
// introduced. It is a kind of bad request with its own status (404), so
// clients can distinguish "typo in the program" from "not defined yet".
var ErrUnknownVar = errors.New("serve: unknown variable")

// ErrNotFound is the catch-all for requests that match no route. It gets
// its own sentinel (rather than reusing ErrBadRequest) so the 404 carries
// kind "not_found" and unmatched traffic is distinguishable in logs.
var ErrNotFound = errors.New("serve: not found")

// ErrWALFailed means a constraint-log write failed after the batch was
// already admitted. The server poisons ingestion — every further write is
// refused with this error until a restart re-opens the log — because
// continuing to ack batches the log cannot record would break the
// "202 means durable" promise and leave a gap in the replayable stream.
// Reads are unaffected.
var ErrWALFailed = errors.New("serve: constraint log write failed; ingestion disabled until restart")

// statusTable is the one place the solver's typed errors meet HTTP. Order
// matters only for readability; the sentinels are disjoint.
var statusTable = []struct {
	sentinel error
	code     int
}{
	{polce.ErrInconsistent, http.StatusConflict},          // 409
	{polce.ErrQueueFull, http.StatusServiceUnavailable},   // 503 (+ Retry-After)
	{polce.ErrSolverClosed, http.StatusGone},              // 410
	{polce.ErrUnknownBatch, http.StatusNotFound},          // 404: handle never issued or already retracted
	{polce.ErrNotRetractable, http.StatusNotImplemented},  // 501: server runs without -retractable
	{ErrUnknownVar, http.StatusNotFound},                  // 404
	{ErrNotFound, http.StatusNotFound},                    // 404
	{ErrBadRequest, http.StatusBadRequest},                // 400
	{context.DeadlineExceeded, http.StatusGatewayTimeout}, // 504
	{context.Canceled, http.StatusServiceUnavailable},     // client went away / draining
}

// StatusOf maps an error to its HTTP status via the table; unrecognised
// errors are 500s.
func StatusOf(err error) int {
	for _, row := range statusTable {
		if errors.Is(err, row.sentinel) {
			return row.code
		}
	}
	return http.StatusInternalServerError
}

// kindOf names the error kind for the JSON body, mirroring the table.
func kindOf(err error) string {
	switch {
	case errors.Is(err, polce.ErrInconsistent):
		return "inconsistent"
	case errors.Is(err, polce.ErrQueueFull):
		return "queue_full"
	case errors.Is(err, polce.ErrSolverClosed):
		return "closed"
	case errors.Is(err, polce.ErrUnknownBatch):
		return "unknown_batch"
	case errors.Is(err, polce.ErrNotRetractable):
		return "not_retractable"
	case errors.Is(err, ErrUnknownVar):
		return "unknown_var"
	case errors.Is(err, ErrNotFound):
		return "not_found"
	case errors.Is(err, ErrBadRequest):
		return "bad_request"
	case errors.Is(err, ErrWALFailed):
		return "wal_failed"
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, context.Canceled):
		return "canceled"
	}
	return "internal"
}
