package serve

import (
	"context"
	"fmt"
	"time"

	"polce"
	"polce/internal/telemetry"
	"polce/internal/wal"
	"polce/internal/walreplay"
)

// ingestJob is one accepted write awaiting the ingester — a constraint
// batch or a retraction, tagged by kind. done is buffered so the ingester
// never blocks on a caller that stopped waiting. ctx carries the request's
// trace values (request ID, enclosing span) without its cancellation: a
// client that disconnects after the 202 must not cancel a batch the server
// already accepted.
type ingestJob struct {
	kind    wal.FrameKind
	session string
	batch   []polce.Constraint // constraints job: the lowered batch
	targets []uint64           // retract job: the retraction handles
	ctx     context.Context
	at      time.Time // when the job was accepted into the queue
	seq     uint64    // WAL sequence number (0 when the log is off)
	handle  uint64    // retraction handle issued to the client (0 when not retractable)
	done    chan ingestResult
}

// ingestResult reports how a batch fared: how many constraints were
// applied, the graph version afterwards, how long the batch waited in the
// queue and how long the drain took, and the typed error, if any
// (ErrInconsistent when the batch introduced inconsistencies,
// ErrSolverClosed when a drain raced the batch past the solver's close).
type ingestResult struct {
	applied int
	version uint64
	wait    time.Duration
	drain   time.Duration
	report  polce.RetractReport // retract jobs: what the retraction rolled back
	err     error
}

// handleEntry resolves one issued retraction handle: the session it was
// issued under and the solver batch the ingester recorded at apply time.
type handleEntry struct {
	session string
	id      polce.BatchID
}

// accept is the whole write-side admission path, one atomic step under the
// session lock: reserve a queue slot, parse and lower the SCL text, append
// the frame to the constraint log, and hand the job to the ingester.
//
// The ordering discipline here is what makes WAL replay bit-identical to
// the live run. Lowering creates solver variables (first use calls Fresh),
// and the seeded variable order o(·) — which decides edge orientation —
// depends on creation order; so the log must record frames in exactly the
// order lowering ran. Holding the session lock across parse + append +
// enqueue forces accept order = frame order = queue order = apply order,
// and replaying frames in sequence reproduces both the variable creation
// order and the constraint application order.
//
// The slot is reserved before anything mutates: a full queue
// (ErrQueueFull → 503 + Retry-After) and a draining server
// (ErrSolverClosed → 410) are refused while the session, the log and the
// solver are still exactly as before the call, so a refused batch leaves
// no trace — in particular no orphan variables that would skew the seeded
// order of later batches against replay.
//
// With multiple sessions the serialisation point is acceptMu, held across
// every session: lowering interns variables into the one shared solver, so
// cross-session creation order must equal frame order too.
func (s *Server) accept(ctx context.Context, label, src string) (*ingestJob, error) {
	// Fast refusals, before any lock.
	if s.draining.Load() {
		return nil, polce.ErrSolverClosed
	}
	if s.walFailed.Load() {
		return nil, ErrWALFailed
	}

	// drainMu (read side) brackets the whole admission: Shutdown flips
	// draining under the write lock, so once Shutdown proceeds, no accept
	// is mid-flight — every job is either already in the queue (the
	// ingester's final flush will apply it) or will be refused by the
	// draining check below. This closes the accepted-then-lost race.
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return nil, polce.ErrSolverClosed
	}

	s.acceptMu.Lock()
	defer s.acceptMu.Unlock()

	// Reserve a queue slot. slots and queue share a capacity, and a held
	// slot guarantees the channel send below cannot block.
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, polce.ErrQueueFull
	}
	held := true
	defer func() {
		if held {
			<-s.slots
		}
	}()

	batch, err := s.sessions.get(label).parse(src)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	job := &ingestJob{
		kind:    wal.FrameConstraints,
		session: label,
		batch:   batch,
		ctx:     context.WithoutCancel(ctx),
		at:      time.Now(),
		done:    make(chan ingestResult, 1),
	}

	if s.wal != nil {
		start := time.Now()
		seq, err := s.wal.Append(wal.FrameConstraints, label, src)
		if err != nil {
			// The session already absorbed the batch but the log did not.
			// Appending further frames would leave a gap, so the log is
			// poisoned: ingestion refuses with ErrWALFailed until restart
			// (reads keep working) and the log on disk stays a consistent
			// prefix of what was acknowledged.
			s.walFailed.Store(true)
			s.logError("wal append failed; refusing further ingestion", err)
			return nil, fmt.Errorf("%w: %v", ErrWALFailed, err)
		}
		job.seq = seq
		s.qmetrics.walAppend(time.Since(start))
	}
	if s.solver.Retractable() {
		// The retraction handle is the WAL sequence number — the log and
		// the API share one naming scheme, so a logged retract frame's
		// targets are frame seqs — or a process-local counter when the
		// log is off.
		if job.seq != 0 {
			job.handle = job.seq
		} else {
			job.handle = s.handleSeq.Add(1)
		}
	}

	s.ages.push(job.at)
	s.queue <- job // cannot block: the slot is held
	held = false
	return job, nil
}

// acceptRetract is accept for DELETE: it logs a retract frame naming the
// target handles and enqueues the retraction behind every already-accepted
// batch, so a retraction applies against exactly the state its stream
// position implies — on the live solver and under replay alike. Handle
// validation happens at apply time (the target batch may still be queued
// ahead of us); a retraction that fails validation has still consumed a
// frame, which replay skips the same way the live apply refused it.
func (s *Server) acceptRetract(ctx context.Context, label string, targets []uint64) (*ingestJob, error) {
	if !s.solver.Retractable() {
		return nil, polce.ErrNotRetractable
	}
	if s.draining.Load() {
		return nil, polce.ErrSolverClosed
	}
	if s.walFailed.Load() {
		return nil, ErrWALFailed
	}
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining.Load() {
		return nil, polce.ErrSolverClosed
	}
	s.acceptMu.Lock()
	defer s.acceptMu.Unlock()
	select {
	case s.slots <- struct{}{}:
	default:
		return nil, polce.ErrQueueFull
	}
	held := true
	defer func() {
		if held {
			<-s.slots
		}
	}()
	job := &ingestJob{
		kind:    wal.FrameRetract,
		session: label,
		targets: targets,
		ctx:     context.WithoutCancel(ctx),
		at:      time.Now(),
		done:    make(chan ingestResult, 1),
	}
	if s.wal != nil {
		start := time.Now()
		seq, err := s.wal.Append(wal.FrameRetract, label, walreplay.FormatRetractText(targets))
		if err != nil {
			s.walFailed.Store(true)
			s.logError("wal append failed; refusing further ingestion", err)
			return nil, fmt.Errorf("%w: %v", ErrWALFailed, err)
		}
		job.seq = seq
		s.qmetrics.walAppend(time.Since(start))
	}
	s.ages.push(job.at)
	s.queue <- job // cannot block: the slot is held
	held = false
	return job, nil
}

// durable blocks until the job's frame is on stable storage under
// SyncAlways (concurrent accepts share one fsync); under batch/off it
// returns immediately — the policy's documented trade-off.
func (s *Server) durable(job *ingestJob) error {
	if s.wal == nil || job.seq == 0 {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		s.walFailed.Store(true)
		s.logError("wal fsync failed; refusing further ingestion", err)
		return fmt.Errorf("%w: %v", ErrWALFailed, err)
	}
	return nil
}

func (s *Server) logError(msg string, err error) {
	if s.logger != nil {
		s.logger.Error(msg, "error", err.Error())
	}
}

// ingest is the single writer: it applies queued batches in arrival order
// until Shutdown asks it to drain, then flushes what is queued and closes
// the solver. One writer means every batch is one atomic span of the
// online solver, and readers only ever contend on the snapshot epoch
// check.
func (s *Server) ingest() {
	defer close(s.done)
	for {
		select {
		case job := <-s.queue:
			s.apply(job)
			s.syncAtIdle()
		case <-s.drainReq:
			for {
				select {
				case job := <-s.queue:
					s.apply(job)
				default:
					if s.wal != nil {
						if err := s.wal.Sync(); err != nil {
							s.logError("wal fsync at drain", err)
						}
					}
					_ = s.solver.Close()
					// Defence in depth: Shutdown's drainMu barrier means no
					// job can land after the flush above saw an empty queue,
					// but if one ever did, resolving it here with
					// ErrSolverClosed (→ 410) beats silently dropping it —
					// its waiter would otherwise stall to its deadline.
					s.resolveStragglers()
					return
				}
			}
		}
	}
}

// syncAtIdle lands appended frames whenever the queue goes empty — the
// batch boundary of the SyncBatch policy. Under SyncAlways frames were
// already synced at accept; under SyncOff Sync is a no-op.
func (s *Server) syncAtIdle() {
	if s.wal == nil || len(s.queue) > 0 {
		return
	}
	if err := s.wal.Sync(); err != nil {
		s.walFailed.Store(true)
		s.logError("wal fsync failed; refusing further ingestion", err)
	}
}

// resolveStragglers drains any job that slipped into the queue after the
// final flush and resolves its waiter with ErrSolverClosed.
func (s *Server) resolveStragglers() {
	for {
		select {
		case job := <-s.queue:
			s.ages.pop()
			<-s.slots
			job.done <- ingestResult{err: polce.ErrSolverClosed}
		default:
			return
		}
	}
}

// apply runs one batch against the solver and resolves its waiter. A batch
// that introduced inconsistent constraints still applies in full — the
// solver records the inconsistency and keeps going, matching AddConstraint
// semantics — but the result carries an ErrInconsistent so synchronous
// clients see a 409.
//
// On a traced request, apply emits the write-path spans under the
// request's http root: "queue-wait" (measured from enqueue to pickup) and
// "ingest-drain" around the solve, with a "cycle-search" child sized by
// the closure phase-timer delta — attributable because this single
// goroutine is the only closure driver.
func (s *Server) apply(job *ingestJob) {
	if job.kind == wal.FrameRetract {
		s.applyRetract(job)
		return
	}
	wait := time.Since(job.at)
	s.qmetrics.observeWait(wait, len(job.batch))
	// Order matters for the oldest-age gauge: the batch becomes "applying"
	// before it stops being "queued", so the gauge never reads idle while
	// work is outstanding. The slot frees at pickup, restoring queue
	// capacity the moment the channel has room again.
	s.applyingSince.Store(job.at.UnixNano())
	defer s.applyingSince.Store(0)
	s.ages.pop()
	<-s.slots
	s.tracer.Emit(job.ctx, "queue-wait", job.at, wait, map[string]any{"batch": len(job.batch)})
	drainCtx, span := s.tracer.StartSpan(job.ctx, "ingest-drain")
	span.SetAttr("batch", len(job.batch))
	if job.seq != 0 {
		span.SetAttr("wal_seq", job.seq)
	}
	var closure0 time.Duration
	if s.sm != nil && span != nil {
		closure0, _ = s.sm.Phases.Get(telemetry.PhaseClosure)
	}
	drainStart := time.Now()
	errsBefore := s.solver.ErrorCount()
	applied, batchID, err := s.solver.AddBatchContext(drainCtx, job.batch)
	if job.handle != 0 && batchID != 0 {
		s.handleMu.Lock()
		s.handles[job.handle] = handleEntry{session: job.session, id: batchID}
		s.handleMu.Unlock()
	}
	s.ingested.Add(int64(applied))
	if err == nil {
		if delta := s.solver.ErrorCount() - errsBefore; delta > 0 {
			retained := s.solver.Errors()
			if len(retained) > 0 {
				err = fmt.Errorf("%d new inconsistency(ies), last: %w", delta, retained[len(retained)-1])
			} else {
				err = fmt.Errorf("%d new inconsistency(ies): %w", delta, polce.ErrInconsistent)
			}
		}
	}
	if s.sm != nil && span != nil {
		closure1, _ := s.sm.Phases.Get(telemetry.PhaseClosure)
		if d := closure1 - closure0; d > 0 {
			s.tracer.Emit(drainCtx, "cycle-search", drainStart, d, map[string]any{"applied": applied})
		}
	}
	version := s.solver.Version()
	s.lastVersion.Store(version)
	drain := time.Since(drainStart)
	span.SetAttr("applied", applied)
	span.SetAttr("version", version)
	span.End()
	job.done <- ingestResult{applied: applied, version: version, wait: wait, drain: drain, err: err}
}

// applyRetract runs one retraction against the solver and resolves its
// waiter. Handles resolve here — after every earlier job has applied, so a
// handle issued for a batch that was still queued when the DELETE arrived
// resolves correctly — and an unknown or cross-session handle refuses the
// whole retraction with ErrUnknownBatch (→ 404), retracting nothing.
func (s *Server) applyRetract(job *ingestJob) {
	wait := time.Since(job.at)
	s.applyingSince.Store(job.at.UnixNano())
	defer s.applyingSince.Store(0)
	s.ages.pop()
	<-s.slots
	s.tracer.Emit(job.ctx, "queue-wait", job.at, wait, map[string]any{"targets": len(job.targets)})
	drainCtx, span := s.tracer.StartSpan(job.ctx, "retract-drain")
	span.SetAttr("targets", len(job.targets))
	if job.seq != 0 {
		span.SetAttr("wal_seq", job.seq)
	}
	drainStart := time.Now()

	var (
		report polce.RetractReport
		err    error
	)
	ids := make([]polce.BatchID, 0, len(job.targets))
	s.handleMu.Lock()
	for _, h := range job.targets {
		e, ok := s.handles[h]
		if !ok || e.session != job.session {
			err = fmt.Errorf("%w: batch %d", polce.ErrUnknownBatch, h)
			break
		}
		ids = append(ids, e.id)
	}
	s.handleMu.Unlock()
	if err == nil {
		report, err = s.solver.RetractBatchContext(drainCtx, ids...)
	}
	if err == nil {
		s.handleMu.Lock()
		for _, h := range job.targets {
			delete(s.handles, h)
		}
		s.handleMu.Unlock()
		s.retracted.Add(int64(len(job.targets)))
	}

	version := s.solver.Version()
	s.lastVersion.Store(version)
	drain := time.Since(drainStart)
	span.SetAttr("dirty_vars", report.DirtyVars)
	span.SetAttr("version", version)
	if err != nil {
		span.SetAttr("error", err.Error())
	}
	span.End()
	job.done <- ingestResult{version: version, wait: wait, drain: drain, report: report, err: err}
}
