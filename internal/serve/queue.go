package serve

import (
	"context"
	"fmt"
	"time"

	"polce"
	"polce/internal/telemetry"
)

// ingestJob is one accepted batch awaiting the ingester. done is buffered
// so the ingester never blocks on a caller that stopped waiting. ctx
// carries the request's trace values (request ID, enclosing span) without
// its cancellation: a client that disconnects after the 202 must not
// cancel a batch the server already accepted.
type ingestJob struct {
	batch []polce.Constraint
	ctx   context.Context
	at    time.Time // when the batch was accepted into the queue
	done  chan ingestResult
}

// ingestResult reports how a batch fared: how many constraints were
// applied, the graph version afterwards, how long the batch waited in the
// queue and how long the drain took, and the typed error, if any
// (ErrInconsistent when the batch introduced inconsistencies).
type ingestResult struct {
	applied int
	version uint64
	wait    time.Duration
	drain   time.Duration
	err     error
}

// enqueue hands a lowered batch to the ingester without blocking: a full
// queue is backpressure (ErrQueueFull → 503 + Retry-After), a draining
// server refuses outright (ErrSolverClosed → 410).
func (s *Server) enqueue(ctx context.Context, batch []polce.Constraint) (*ingestJob, error) {
	if s.draining.Load() {
		return nil, polce.ErrSolverClosed
	}
	job := &ingestJob{
		batch: batch,
		ctx:   context.WithoutCancel(ctx),
		at:    time.Now(),
		done:  make(chan ingestResult, 1),
	}
	select {
	case s.queue <- job:
		return job, nil
	default:
		return nil, polce.ErrQueueFull
	}
}

// ingest is the single writer: it applies queued batches in arrival order
// until Shutdown asks it to drain, then flushes what is queued and closes
// the solver. One writer means every batch is one atomic span of the
// online solver, and readers only ever contend on the snapshot epoch
// check.
func (s *Server) ingest() {
	defer close(s.done)
	for {
		select {
		case job := <-s.queue:
			s.apply(job)
		case <-s.drainReq:
			for {
				select {
				case job := <-s.queue:
					s.apply(job)
				default:
					_ = s.solver.Close()
					return
				}
			}
		}
	}
}

// apply runs one batch against the solver and resolves its waiter. A batch
// that introduced inconsistent constraints still applies in full — the
// solver records the inconsistency and keeps going, matching AddConstraint
// semantics — but the result carries an ErrInconsistent so synchronous
// clients see a 409.
//
// On a traced request, apply emits the write-path spans under the
// request's http root: "queue-wait" (measured from enqueue to pickup) and
// "ingest-drain" around the solve, with a "cycle-search" child sized by
// the closure phase-timer delta — attributable because this single
// goroutine is the only closure driver.
func (s *Server) apply(job *ingestJob) {
	wait := time.Since(job.at)
	s.qmetrics.observeWait(wait, len(job.batch))
	s.applyingSince.Store(job.at.UnixNano())
	defer s.applyingSince.Store(0)
	s.tracer.Emit(job.ctx, "queue-wait", job.at, wait, map[string]any{"batch": len(job.batch)})
	drainCtx, span := s.tracer.StartSpan(job.ctx, "ingest-drain")
	span.SetAttr("batch", len(job.batch))
	var closure0 time.Duration
	if s.sm != nil && span != nil {
		closure0, _ = s.sm.Phases.Get(telemetry.PhaseClosure)
	}
	drainStart := time.Now()
	errsBefore := s.solver.ErrorCount()
	applied, err := s.solver.AddBatchContext(drainCtx, job.batch)
	s.ingested.Add(int64(applied))
	if err == nil {
		if delta := s.solver.ErrorCount() - errsBefore; delta > 0 {
			retained := s.solver.Errors()
			if len(retained) > 0 {
				err = fmt.Errorf("%d new inconsistency(ies), last: %w", delta, retained[len(retained)-1])
			} else {
				err = fmt.Errorf("%d new inconsistency(ies): %w", delta, polce.ErrInconsistent)
			}
		}
	}
	if s.sm != nil && span != nil {
		closure1, _ := s.sm.Phases.Get(telemetry.PhaseClosure)
		if d := closure1 - closure0; d > 0 {
			s.tracer.Emit(drainCtx, "cycle-search", drainStart, d, map[string]any{"applied": applied})
		}
	}
	version := s.solver.Version()
	s.lastVersion.Store(version)
	drain := time.Since(drainStart)
	span.SetAttr("applied", applied)
	span.SetAttr("version", version)
	span.End()
	job.done <- ingestResult{applied: applied, version: version, wait: wait, drain: drain, err: err}
}
