package serve

import (
	"context"
	"fmt"

	"polce"
)

// ingestJob is one accepted batch awaiting the ingester. done is buffered
// so the ingester never blocks on a caller that stopped waiting.
type ingestJob struct {
	batch []polce.Constraint
	done  chan ingestResult
}

// ingestResult reports how a batch fared: how many constraints were
// applied, the graph version afterwards, and the typed error, if any
// (ErrInconsistent when the batch introduced inconsistencies).
type ingestResult struct {
	applied int
	version uint64
	err     error
}

// enqueue hands a lowered batch to the ingester without blocking: a full
// queue is backpressure (ErrQueueFull → 503 + Retry-After), a draining
// server refuses outright (ErrSolverClosed → 410).
func (s *Server) enqueue(batch []polce.Constraint) (*ingestJob, error) {
	if s.draining.Load() {
		return nil, polce.ErrSolverClosed
	}
	job := &ingestJob{batch: batch, done: make(chan ingestResult, 1)}
	select {
	case s.queue <- job:
		return job, nil
	default:
		return nil, polce.ErrQueueFull
	}
}

// ingest is the single writer: it applies queued batches in arrival order
// until Shutdown asks it to drain, then flushes what is queued and closes
// the solver. One writer means every batch is one atomic span of the
// online solver, and readers only ever contend on the snapshot epoch
// check.
func (s *Server) ingest() {
	defer close(s.done)
	for {
		select {
		case job := <-s.queue:
			s.apply(job)
		case <-s.drainReq:
			for {
				select {
				case job := <-s.queue:
					s.apply(job)
				default:
					_ = s.solver.Close()
					return
				}
			}
		}
	}
}

// apply runs one batch against the solver and resolves its waiter. A batch
// that introduced inconsistent constraints still applies in full — the
// solver records the inconsistency and keeps going, matching AddConstraint
// semantics — but the result carries an ErrInconsistent so synchronous
// clients see a 409.
func (s *Server) apply(job *ingestJob) {
	errsBefore := s.solver.ErrorCount()
	applied, err := s.solver.AddBatchContext(context.Background(), job.batch)
	s.ingested.Add(int64(applied))
	if err == nil {
		if delta := s.solver.ErrorCount() - errsBefore; delta > 0 {
			retained := s.solver.Errors()
			if len(retained) > 0 {
				err = fmt.Errorf("%d new inconsistency(ies), last: %w", delta, retained[len(retained)-1])
			} else {
				err = fmt.Errorf("%d new inconsistency(ies): %w", delta, polce.ErrInconsistent)
			}
		}
	}
	version := s.solver.Version()
	s.lastVersion.Store(version)
	job.done <- ingestResult{applied: applied, version: version, err: err}
}
