package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"polce"
	"polce/internal/telemetry"
)

// newTestServer builds a Server with small deterministic settings and
// registers a cleanup drain.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Solver == nil {
		cfg.Solver = polce.New(polce.Options{Form: polce.IF, Cycles: polce.CycleOnline, Seed: 1})
	}
	s := New(cfg)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, hs
}

func postSCL(t *testing.T, base, program string, wait bool) (*http.Response, map[string]any) {
	t.Helper()
	url := base + "/v1/constraints"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "text/plain", strings.NewReader(program))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeBody(t, resp)
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return m
}

// TestAPIRoundTrip drives the whole v1 surface once: ingest, query both
// read endpoints, inspect the snapshot and health.
func TestAPIRoundTrip(t *testing.T) {
	_, hs := newTestServer(t, Config{})

	resp, body := postSCL(t, hs.URL, "cons a; cons ref(+)\na <= X; X <= Y; ref(X) <= P", true)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait ingest status = %d body %v", resp.StatusCode, body)
	}
	if body["applied"].(float64) != 3 {
		t.Fatalf("applied = %v", body["applied"])
	}

	resp, body = getJSON(t, hs.URL+"/v1/least-solution/Y")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("least-solution status = %d", resp.StatusCode)
	}
	if terms := body["terms"].([]any); len(terms) != 1 || terms[0] != "a" {
		t.Fatalf("LS(Y) = %v", body["terms"])
	}

	// P's least solution is {ref(X)}: points-to projects the first argument.
	resp, body = getJSON(t, hs.URL+"/v1/points-to/P")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("points-to status = %d", resp.StatusCode)
	}
	if locs := body["points_to"].([]any); len(locs) != 1 || locs[0] != "X" {
		t.Fatalf("points-to(P) = %v", body["points_to"])
	}
	// X's own points-to view names the nullary constructor.
	if _, body = getJSON(t, hs.URL+"/v1/points-to/X"); fmt.Sprint(body["points_to"]) != "[a]" {
		t.Fatalf("points-to(X) = %v", body["points_to"])
	}

	resp, body = getJSON(t, hs.URL+"/v1/snapshot")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	if body["form"] != "IF" || body["vars"].(float64) != 3 || body["errors"].(float64) != 0 {
		t.Fatalf("snapshot = %v", body)
	}
	if body["stats"].(map[string]any)["Work"].(float64) <= 0 {
		t.Fatalf("snapshot stats = %v", body["stats"])
	}

	resp, body = getJSON(t, hs.URL+"/v1/healthz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", resp.StatusCode, body)
	}
}

// TestAsyncIngestIsEventuallyVisible covers the default 202 path: the
// batch is accepted, and a later read observes it once the ingester has
// drained.
func TestAsyncIngestIsEventuallyVisible(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	resp, body := postSCL(t, hs.URL, "cons a\na <= X", false)
	if resp.StatusCode != http.StatusAccepted || body["accepted"].(float64) != 1 {
		t.Fatalf("async ingest = %d %v", resp.StatusCode, body)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, body = getJSON(t, hs.URL+"/v1/least-solution/X")
		if resp.StatusCode == http.StatusOK && fmt.Sprint(body["terms"]) == "[a]" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never became visible: %d %v", resp.StatusCode, body)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJSONBody covers the {"program": ...} body variant.
func TestJSONBody(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	req := `{"program": "cons a; a <= X"}`
	resp, err := http.Post(hs.URL+"/v1/constraints?wait=1", "application/json", strings.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	if body := decodeBody(t, resp); resp.StatusCode != http.StatusOK || body["applied"].(float64) != 1 {
		t.Fatalf("JSON ingest = %d %v", resp.StatusCode, body)
	}
}

// TestErrorMapping drives each typed error through real HTTP and checks
// the table-driven status it lands on.
func TestErrorMapping(t *testing.T) {
	srv, hs := newTestServer(t, Config{})

	// 400: malformed SCL, atomically rolled back.
	resp, body := postSCL(t, hs.URL, "this is not scl", true)
	if resp.StatusCode != http.StatusBadRequest || body["kind"] != "bad_request" {
		t.Fatalf("parse error = %d %v", resp.StatusCode, body)
	}

	// 404: unknown variable.
	resp, body = getJSON(t, hs.URL+"/v1/least-solution/nope")
	if resp.StatusCode != http.StatusNotFound || body["kind"] != "unknown_var" {
		t.Fatalf("unknown var = %d %v", resp.StatusCode, body)
	}

	// 409: the batch makes the system inconsistent (distinct constructors).
	resp, body = postSCL(t, hs.URL, "cons a; cons b\na <= b", true)
	if resp.StatusCode != http.StatusConflict || body["kind"] != "inconsistent" {
		t.Fatalf("inconsistent = %d %v", resp.StatusCode, body)
	}

	// 410: a draining server refuses new ingestion but keeps serving reads.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body = postSCL(t, hs.URL, "a <= Z9", true)
	if resp.StatusCode != http.StatusGone || body["kind"] != "closed" {
		t.Fatalf("closed = %d %v", resp.StatusCode, body)
	}
	if resp, _ = getJSON(t, hs.URL+"/v1/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while drained = %d", resp.StatusCode)
	}
}

// TestQueueFullBackpressure fills the bounded queue with no ingester
// running (newServer does not start one) and checks the 503 + Retry-After
// contract end to end.
func TestQueueFullBackpressure(t *testing.T) {
	s := newServer(Config{
		Solver:     polce.New(polce.Options{Form: polce.IF, Seed: 1}),
		QueueDepth: 1,
		RetryAfter: 2 * time.Second,
	}) // note: no ingester goroutine — the queue never drains
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	if resp, body := postSCL(t, hs.URL, "cons a\na <= X", false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first batch = %d %v", resp.StatusCode, body)
	}
	resp, body := postSCL(t, hs.URL, "a <= Y", false)
	if resp.StatusCode != http.StatusServiceUnavailable || body["kind"] != "queue_full" {
		t.Fatalf("full queue = %d %v", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want 2", ra)
	}
}

// TestBoundedStaleness pins the SnapshotMaxStale contract: within the
// window, reads share the cached capture even though ingestion has moved
// the graph version on; with the default (zero) every read is current.
func TestBoundedStaleness(t *testing.T) {
	_, hs := newTestServer(t, Config{SnapshotMaxStale: time.Hour})

	_, body := postSCL(t, hs.URL, "cons a\na <= X", true)
	v1 := body["version"].(float64)
	if resp, body := getJSON(t, hs.URL+"/v1/snapshot"); resp.StatusCode != http.StatusOK || body["version"].(float64) != v1 {
		t.Fatalf("first read = %d %v, want version %v", resp.StatusCode, body, v1)
	}

	// A second applied batch moves the live version, but reads inside the
	// staleness window keep serving the cached snapshot.
	_, body = postSCL(t, hs.URL, "a <= Y", true)
	if v2 := body["version"].(float64); v2 <= v1 {
		t.Fatalf("ingestion did not move the version: %v -> %v", v1, v2)
	}
	if _, body := getJSON(t, hs.URL+"/v1/snapshot"); body["version"].(float64) != v1 {
		t.Fatalf("stale read version = %v, want cached %v", body["version"], v1)
	}
	// Y exists in the session but postdates the cached capture: its least
	// solution reads as empty until the window lapses.
	if resp, body := getJSON(t, hs.URL+"/v1/least-solution/Y"); resp.StatusCode != http.StatusOK || len(body["terms"].([]any)) != 0 {
		t.Fatalf("stale LS(Y) = %d %v, want empty", resp.StatusCode, body)
	}
}

// TestStatusTable pins the error → status mapping directly, including
// wrapped errors, so the table can't rot behind the HTTP tests.
func TestStatusTable(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{polce.ErrInconsistent, http.StatusConflict},
		{fmt.Errorf("wrapping: %w", polce.ErrInconsistent), http.StatusConflict},
		{polce.ErrQueueFull, http.StatusServiceUnavailable},
		{polce.ErrSolverClosed, http.StatusGone},
		{ErrUnknownVar, http.StatusNotFound},
		{ErrBadRequest, http.StatusBadRequest},
		{fmt.Errorf("%w: details", ErrBadRequest), http.StatusBadRequest},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{io.ErrUnexpectedEOF, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := StatusOf(c.err); got != c.want {
			t.Errorf("StatusOf(%v) = %d, want %d", c.err, got, c.want)
		}
	}
	// An *InconsistentError from the solver maps like the sentinel.
	sys := polce.New(polce.Options{Seed: 1})
	sys.AddConstraint(polce.NewTerm(polce.NewConstructor("x")), polce.NewTerm(polce.NewConstructor("y")))
	if errs := sys.Errors(); len(errs) != 1 || StatusOf(errs[0]) != http.StatusConflict {
		t.Fatalf("solver inconsistency maps to %d", StatusOf(sys.Errors()[0]))
	}
}

// TestRouteMetrics checks the per-route instrumentation reaches the shared
// registry and the mounted /metrics endpoint.
func TestRouteMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, hs := newTestServer(t, Config{Registry: reg})

	postSCL(t, hs.URL, "cons a\na <= X", true)
	getJSON(t, hs.URL+"/v1/least-solution/X")
	getJSON(t, hs.URL+"/v1/least-solution/missing") // a 4xx

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"polce_http_request_seconds_constraints_count 1",
		"polce_http_request_seconds_least_solution_count 2",
		"polce_http_requests_least_solution_2xx 1",
		"polce_http_requests_least_solution_4xx 1",
		"polce_http_requests_constraints_2xx 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
