package core_test

import (
	"fmt"
	"os"

	"polce/internal/core"
)

// The basic workflow: create a system, add inclusion constraints, read
// least solutions. Cycles are collapsed as the constraints arrive.
func ExampleSystem_AddConstraint() {
	sys := core.NewSystem(core.Options{Form: core.IF, Cycles: core.CycleOnline, Seed: 7})

	apple := core.NewTerm(core.NewConstructor("apple"))
	x := sys.Fresh("X")
	y := sys.Fresh("Y")

	sys.AddConstraint(apple, x) // apple ⊆ X
	sys.AddConstraint(x, y)     // X ⊆ Y
	sys.AddConstraint(y, x)     // closes a cycle: X and Y collapse

	fmt.Println(sys.LeastSolution(y))
	fmt.Println(sys.Find(x) == sys.Find(y))
	// Output:
	// [apple]
	// true
}

// Constructors decompose structurally by variance: covariant positions
// flow forward, contravariant positions flow backward.
func ExampleNewConstructor() {
	sys := core.NewSystem(core.Options{Form: core.SF, Seed: 1})
	// ref(get, s̄et): one covariant and one contravariant argument, the
	// shape Andersen's points-to analysis uses.
	ref := core.NewConstructor("ref", core.Covariant, core.Contravariant)

	content := sys.Fresh("content")
	loc := core.NewTerm(ref, content, content)

	p := sys.Fresh("p")
	sys.AddConstraint(loc, p) // p points to loc

	val := core.NewTerm(core.NewConstructor("value"))
	v := sys.Fresh("v")
	sys.AddConstraint(val, v)
	// Write through p: p ⊆ ref(1, v̄) sends v into the content.
	sys.AddConstraint(p, core.NewTerm(ref, core.One, v))

	fmt.Println(sys.LeastSolution(content))
	// Output:
	// [value]
}

// Unions decompose on the left of a constraint, intersections on the
// right.
func ExampleNewUnion() {
	sys := core.NewSystem(core.Options{Form: core.IF, Seed: 3})
	a := core.NewTerm(core.NewConstructor("a"))
	b := core.NewTerm(core.NewConstructor("b"))
	x := sys.Fresh("X")
	y := sys.Fresh("Y")
	z := sys.Fresh("Z")
	sys.AddConstraint(a, x)
	sys.AddConstraint(b, y)
	sys.AddConstraint(core.NewUnion(x, y), z) // (X ∪ Y) ⊆ Z
	fmt.Println(len(sys.LeastSolution(z)))
	// Output:
	// 2
}

// BuildOracle captures a finished run's eventual cycle structure so a
// second run can pre-collapse it — the paper's perfect-elimination lower
// bound.
func ExampleBuildOracle() {
	build := func(opt core.Options) *core.System {
		sys := core.NewSystem(opt)
		x := sys.Fresh("X")
		y := sys.Fresh("Y")
		z := sys.Fresh("Z")
		sys.AddConstraint(x, y)
		sys.AddConstraint(y, z)
		sys.AddConstraint(z, x)
		return sys
	}
	first := build(core.Options{Form: core.IF, Cycles: core.CycleOnline, Seed: 1})
	oracle := core.BuildOracle(first)

	second := build(core.Options{Form: core.IF, Cycles: core.CycleOracle, Seed: 1, Oracle: oracle})
	fmt.Println(second.Stats().VarsCreated)    // only the witness is allocated
	fmt.Println(second.Stats().VarsEliminated) // the other two were pre-merged
	// Output:
	// 1
	// 2
}

// WriteDOT renders the constraint graph for inspection with Graphviz.
func ExampleSystem_WriteDOT() {
	sys := core.NewSystem(core.Options{Form: core.SF, Seed: 2})
	a := core.NewTerm(core.NewConstructor("a"))
	x := sys.Fresh("X")
	sys.AddConstraint(a, x)
	_ = sys.WriteDOT(os.Stdout)
	// Output:
	// digraph constraints {
	//   rankdir=LR;
	//   node [fontsize=10];
	//   v0 [label="X"];
	//   t0 [label="a", shape=box];
	//   t0 -> v0 [style=dashed];
	// }
}
