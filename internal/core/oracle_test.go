package core

import (
	"fmt"
	"testing"
)

// partitionSig canonically labels the fully-collapsed equivalence classes
// of creation indices: sig[i] is the smallest creation index sharing i's
// class after every remaining strongly connected component has been
// collapsed. Two systems over the same script are solution-equivalent
// partitions exactly when their signatures are equal element-wise.
func partitionSig(s *System) []int {
	s.CollapseCycles()
	sig := make([]int, s.NumCreated())
	first := map[*Var]int{}
	for i := 0; i < s.NumCreated(); i++ {
		r := find(s.CreatedVar(i))
		w, ok := first[r]
		if !ok {
			w = i
			first[r] = i
		}
		sig[i] = w
	}
	return sig
}

// TestOraclePartitionMatchesOnline is the differential oracle test: across
// random graphs (seeds × order strategies), pre-merging at Fresh time under
// the oracle must land in exactly the canonical-variable partition that
// online elimination (completed offline) reaches, with the same least
// solutions — perfect elimination changes when classes merge, never what
// the classes are.
func TestOraclePartitionMatchesOnline(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, order := range []OrderStrategy{OrderRandom, OrderCreation, OrderReverseCreation} {
			ops := genScript(seed, 60, 220)
			opt := Options{Form: IF, Cycles: CycleOnline, Seed: seed, Order: order}
			online, onlineVars := runScript(opt, ops)
			oracle := BuildOracle(online)

			opt.Cycles = CycleOracle
			opt.Oracle = oracle
			guided, guidedVars := runScript(opt, ops)

			for i := range onlineVars {
				want := lsAtoms(online, onlineVars[i])
				got := lsAtoms(guided, guidedVars[i])
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Fatalf("seed %d order %v: LS(v%d) mismatch\n got %v\nwant %v",
						seed, order, i, got, want)
				}
			}

			wantSig := partitionSig(online)
			gotSig := partitionSig(guided)
			for i := range wantSig {
				if wantSig[i] != gotSig[i] {
					t.Fatalf("seed %d order %v: partition differs at index %d: witness %d vs %d",
						seed, order, i, gotSig[i], wantSig[i])
				}
			}
		}
	}
}

// TestOracleSourcePolicyIrrelevant: the oracle derived from any solved run
// of the same script — whatever representation or policy produced it —
// encodes the same witness map, because the classes are a property of the
// constraint system.
func TestOracleSourcePolicyIrrelevant(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := genScript(seed, 50, 180)
		ref, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed}, ops)
		want := BuildOracle(ref)
		for _, opt := range []Options{
			{Form: SF, Cycles: CycleOnline, Seed: seed},
			{Form: IF, Cycles: CycleNone, Seed: seed},
			{Form: IF, Cycles: CyclePeriodic, Seed: seed, PeriodicInterval: 40},
		} {
			s, _ := runScript(opt, ops)
			got := BuildOracle(s)
			if got.Len() != want.Len() {
				t.Fatalf("seed %d %v/%v: oracle len %d, want %d", seed, opt.Form, opt.Cycles, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.witnessOf(i) != want.witnessOf(i) {
					t.Fatalf("seed %d %v/%v: witnessOf(%d) = %d, want %d",
						seed, opt.Form, opt.Cycles, i, got.witnessOf(i), want.witnessOf(i))
				}
			}
		}
	}
}

// TestOracleWitnessContract pins witnessOf's invariants directly: every
// witness is the smallest index of its class (so witnesses are fixpoints
// and never exceed their index), and indices beyond the recorded run
// report -1.
func TestOracleWitnessContract(t *testing.T) {
	s, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 13}, genScript(13, 60, 220))
	o := BuildOracle(s)
	if o.Len() != s.NumCreated() {
		t.Fatalf("Len = %d, want %d", o.Len(), s.NumCreated())
	}
	for i := 0; i < o.Len(); i++ {
		w := o.witnessOf(i)
		if w < 0 || w > i {
			t.Fatalf("witnessOf(%d) = %d out of range", i, w)
		}
		if o.witnessOf(w) != w {
			t.Fatalf("witness %d of %d is not a fixpoint: witnessOf(%d) = %d", w, i, w, o.witnessOf(w))
		}
	}
	for _, i := range []int{o.Len(), o.Len() + 7} {
		if got := o.witnessOf(i); got != -1 {
			t.Fatalf("witnessOf(%d) = %d beyond coverage, want -1", i, got)
		}
	}
}

// TestOracleBeyondCoverage: a guided run may create more variables than
// the oracle recorded; the uncovered tail must allocate normally and solve
// correctly.
func TestOracleBeyondCoverage(t *testing.T) {
	short := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 2})
	a := atoms(1)
	x := short.Fresh("X")
	y := short.Fresh("Y")
	short.AddConstraint(x, y)
	short.AddConstraint(y, x)
	short.AddConstraint(a[0], x)
	oracle := BuildOracle(short)

	s := NewSystem(Options{Form: IF, Cycles: CycleOracle, Seed: 2, Oracle: oracle})
	gx := s.Fresh("X")
	gy := s.Fresh("Y")
	if gx != gy {
		t.Fatal("covered cyclic pair not pre-merged")
	}
	gz := s.Fresh("Z") // beyond the oracle's coverage
	if gz == gx {
		t.Fatal("uncovered variable aliased")
	}
	s.AddConstraint(a[0], gx)
	s.AddConstraint(gx, gz)
	if got := lsNames(s, gz); len(got) != 1 || got[0] != "a0" {
		t.Fatalf("LS(Z) = %v, want [a0]", got)
	}
	if st := s.Stats(); st.VarsCreated != 2 || st.VarsEliminated != 1 {
		t.Fatalf("stats = %+v, want 2 created / 1 eliminated", st)
	}
}
