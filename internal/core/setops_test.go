package core

import (
	"strings"
	"testing"
)

func TestUnionOnLeft(t *testing.T) {
	for _, form := range []Form{SF, IF} {
		s := NewSystem(Options{Form: form, Cycles: CycleOnline, Seed: 1})
		a := atoms(2)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		z := s.Fresh("Z")
		s.AddConstraint(a[0], x)
		s.AddConstraint(a[1], y)
		// (X ∪ Y) ⊆ Z
		s.AddConstraint(NewUnion(x, y), z)
		if got := lsNames(s, z); len(got) != 2 {
			t.Errorf("%v: LS(Z) = %v, want both atoms", form, got)
		}
		if s.ErrorCount() != 0 {
			t.Errorf("%v: errors %v", form, s.Errors())
		}
	}
}

func TestIntersectionOnRight(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 2})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	z := s.Fresh("Z")
	s.AddConstraint(a[0], x)
	// X ⊆ (Y ∩ Z): the atom must reach both.
	s.AddConstraint(x, NewIntersection(y, z))
	if got := lsNames(s, y); len(got) != 1 || got[0] != "a0" {
		t.Errorf("LS(Y) = %v", got)
	}
	if got := lsNames(s, z); len(got) != 1 || got[0] != "a0" {
		t.Errorf("LS(Z) = %v", got)
	}
}

func TestNestedSetOps(t *testing.T) {
	s := NewSystem(Options{Form: SF, Seed: 3})
	a := atoms(3)
	vars := make([]*Var, 4)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	s.AddConstraint(a[0], vars[0])
	s.AddConstraint(a[1], vars[1])
	s.AddConstraint(a[2], vars[2])
	// ((v0 ∪ v1) ∪ v2) ⊆ (v3 ∩ (v3 ∩ v3))
	s.AddConstraint(
		NewUnion(NewUnion(vars[0], vars[1]), vars[2]),
		NewIntersection(vars[3], NewIntersection(vars[3], vars[3])))
	if got := lsNames(s, vars[3]); len(got) != 3 {
		t.Errorf("LS(v3) = %v, want all three atoms", got)
	}
}

func TestUnionInsideTermArg(t *testing.T) {
	// box(X ∪ Y) ⊆ box(Z): the covariant decomposition puts the union on
	// the left of the derived constraint, which is legal.
	box := NewConstructor("box", Covariant)
	s := NewSystem(Options{Form: IF, Seed: 4})
	a := atoms(2)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	z := s.Fresh("Z")
	s.AddConstraint(a[0], x)
	s.AddConstraint(a[1], y)
	s.AddConstraint(NewTerm(box, NewUnion(x, y)), NewTerm(box, z))
	if got := lsNames(s, z); len(got) != 2 {
		t.Errorf("LS(Z) = %v", got)
	}
}

func TestIllegalPositionsRejected(t *testing.T) {
	s := NewSystem(Options{Form: SF, Seed: 5})
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(x, NewUnion(x, y)) // union on the right: rejected
	if s.ErrorCount() != 1 {
		t.Fatalf("union on rhs not rejected: %d errors", s.ErrorCount())
	}
	s.AddConstraint(NewIntersection(x, y), x) // intersection on the left
	if s.ErrorCount() != 2 {
		t.Fatalf("intersection on lhs not rejected: %d errors", s.ErrorCount())
	}
	for _, err := range s.Errors() {
		if !strings.Contains(err.Error(), "not expressible") {
			t.Errorf("unexpected error text: %v", err)
		}
	}
}

func TestSetOpStrings(t *testing.T) {
	s := NewSystem(Options{Form: SF, Seed: 6})
	x := s.Fresh("X")
	y := s.Fresh("Y")
	if got := NewUnion(x, y).String(); got != "(X ∪ Y)" {
		t.Errorf("union string %q", got)
	}
	if got := NewIntersection(x, y).String(); got != "(X ∩ Y)" {
		t.Errorf("intersection string %q", got)
	}
	if exprs := NewUnion(x, y).Exprs(); len(exprs) != 2 {
		t.Errorf("Exprs() = %v", exprs)
	}
	if exprs := NewIntersection(x).Exprs(); len(exprs) != 1 {
		t.Errorf("Exprs() = %v", exprs)
	}
}
