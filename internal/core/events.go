package core

// EventKind classifies solver events delivered to Options.Observer.
type EventKind int

const (
	// EventSourceEdge reports a new source edge c(...) ⊆ X.
	EventSourceEdge EventKind = iota
	// EventSinkEdge reports a new sink edge X ⊆ c(...).
	EventSinkEdge
	// EventVarEdge reports a new variable-variable edge.
	EventVarEdge
	// EventCycle reports an online cycle collapse.
	EventCycle
	// EventSweep reports a periodic offline elimination sweep.
	EventSweep
)

// String names the event kind.
func (k EventKind) String() string {
	switch k {
	case EventSourceEdge:
		return "source-edge"
	case EventSinkEdge:
		return "sink-edge"
	case EventVarEdge:
		return "var-edge"
	case EventCycle:
		return "cycle"
	case EventSweep:
		return "sweep"
	}
	return "?"
}

// Event is one solver occurrence, delivered synchronously to the observer.
// The observer must not mutate the system or retain the Vars slice.
type Event struct {
	Kind EventKind

	// From/To identify the edge for the edge events: From is the source
	// expression (a *Term for source edges, a *Var otherwise) and To the
	// target (a *Var, or a *Term for sink edges).
	From, To Expr

	// Witness is the surviving variable of a collapse; Vars are the
	// variables merged into it (EventCycle), or nil for sweeps. The
	// slice is freshly allocated per event: the solver neither retains
	// nor mutates it after delivery (the observer-side contract is the
	// converse — do not retain it into later solver activity).
	Witness *Var
	Vars    []*Var

	// Collapsed is the number of variables eliminated: len(Vars) for a
	// cycle collapse, the sweep's total for a sweep.
	Collapsed int

	// Work is the solver's edge-addition counter at the time of the
	// event.
	Work int64
}

// emit delivers an event if an observer is installed.
func (s *System) emit(ev Event) {
	if s.opt.Observer != nil {
		ev.Work = s.stats.Work
		s.opt.Observer(ev)
	}
}
