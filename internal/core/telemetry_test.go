package core

import (
	"strings"
	"testing"
	"time"
)

// cyclicWorkload builds a system with several overlapping variable cycles
// so that online collapses (and their events) actually fire.
func cyclicWorkload(t *testing.T, opt Options) (*System, []*Var) {
	t.Helper()
	s := NewSystem(opt)
	vars := make([]*Var, 24)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	// Three chained cycles of size 8, then a back edge joining them all.
	for c := 0; c < 3; c++ {
		base := c * 8
		for i := 0; i < 8; i++ {
			s.AddConstraint(vars[base+i], vars[base+(i+1)%8])
		}
	}
	s.AddConstraint(vars[0], vars[8])
	s.AddConstraint(vars[8], vars[16])
	s.AddConstraint(vars[16], vars[0])
	return s, vars
}

// TestStatsStringIncludesSweepCounters is the regression test for the
// String method silently omitting the periodic-sweep counters.
func TestStatsStringIncludesSweepCounters(t *testing.T) {
	st := Stats{PeriodicSweeps: 3, SweepVisits: 71}
	got := st.String()
	if !strings.Contains(got, "sweeps=3") {
		t.Errorf("Stats.String() = %q; missing PeriodicSweeps (want sweeps=3)", got)
	}
	if !strings.Contains(got, "sweepvisits=71") {
		t.Errorf("Stats.String() = %q; missing SweepVisits (want sweepvisits=71)", got)
	}
}

// TestEventVarsNotMutatedAfterDelivery asserts the documented Event
// contract from the solver's side: the Vars slice delivered with an
// EventCycle is freshly allocated and never aliased or mutated by later
// solver activity (events.go says the observer must not retain it; this
// verifies the solver does not either).
func TestEventVarsNotMutatedAfterDelivery(t *testing.T) {
	type delivered struct {
		vars []*Var // the slice as delivered (retained on purpose here)
		copy []*Var // a snapshot taken at delivery time
	}
	var got []delivered
	opt := Options{
		Form:   IF,
		Cycles: CycleOnline,
		Seed:   7,
		Observer: func(ev Event) {
			if ev.Kind != EventCycle {
				return
			}
			if ev.Collapsed != len(ev.Vars) {
				t.Errorf("EventCycle Collapsed = %d, want len(Vars) = %d", ev.Collapsed, len(ev.Vars))
			}
			got = append(got, delivered{vars: ev.Vars, copy: append([]*Var(nil), ev.Vars...)})
		},
	}
	s, _ := cyclicWorkload(t, opt)
	if len(got) == 0 {
		t.Fatal("workload produced no cycle collapses")
	}
	if s.Stats().CyclesFound == 0 {
		t.Fatal("expected online cycles to be found")
	}
	for i, d := range got {
		if len(d.vars) != len(d.copy) {
			t.Fatalf("event %d: Vars length changed after delivery: %d != %d", i, len(d.vars), len(d.copy))
		}
		for j := range d.vars {
			if d.vars[j] != d.copy[j] {
				t.Errorf("event %d: Vars[%d] mutated after delivery", i, j)
			}
		}
	}
	// Distinct events must not share backing storage either (an aliased
	// scratch buffer would make retained slices see later collapses).
	for i := 1; i < len(got); i++ {
		if len(got[i-1].vars) > 0 && len(got[i].vars) > 0 && &got[i-1].vars[0] == &got[i].vars[0] {
			t.Errorf("events %d and %d share Vars backing storage", i-1, i)
		}
	}
}

// recordingSink captures every MetricsSink callback.
type recordingSink struct {
	attempts  int64
	redundant int64
	searches  []int
	collapses []int
	worklists []int
	closures  []time.Duration
	lsPasses  []LSPass
	retracts  []RetractReport
}

func (r *recordingSink) EdgeAttempt(red bool) {
	r.attempts++
	if red {
		r.redundant++
	}
}
func (r *recordingSink) CycleSearch(visits int)      { r.searches = append(r.searches, visits) }
func (r *recordingSink) Collapse(merged int)         { r.collapses = append(r.collapses, merged) }
func (r *recordingSink) WorklistLen(n int)           { r.worklists = append(r.worklists, n) }
func (r *recordingSink) ClosureDone(d time.Duration) { r.closures = append(r.closures, d) }
func (r *recordingSink) LeastSolutionDone(p LSPass)  { r.lsPasses = append(r.lsPasses, p) }
func (r *recordingSink) RetractDone(p RetractReport) { r.retracts = append(r.retracts, p) }

// TestMetricsSinkAgreesWithStats cross-checks the per-operation hook
// deltas against the aggregate Stats counters.
func TestMetricsSinkAgreesWithStats(t *testing.T) {
	for _, form := range []Form{SF, IF} {
		sink := &recordingSink{}
		s, _ := cyclicWorkload(t, Options{Form: form, Cycles: CycleOnline, Seed: 11, Metrics: sink})
		st := s.Stats()

		if sink.attempts != st.Work {
			t.Errorf("%v: EdgeAttempt count = %d, Stats.Work = %d", form, sink.attempts, st.Work)
		}
		if sink.redundant != st.Redundant {
			t.Errorf("%v: redundant attempts = %d, Stats.Redundant = %d", form, sink.redundant, st.Redundant)
		}
		if int64(len(sink.searches)) != st.CycleSearches {
			t.Errorf("%v: CycleSearch calls = %d, Stats.CycleSearches = %d", form, len(sink.searches), st.CycleSearches)
		}
		var visits int64
		for _, v := range sink.searches {
			visits += int64(v)
		}
		if visits != st.CycleVisits {
			t.Errorf("%v: summed search depths = %d, Stats.CycleVisits = %d", form, visits, st.CycleVisits)
		}
		var merged int
		for _, m := range sink.collapses {
			merged += m
		}
		if merged != st.VarsEliminated {
			t.Errorf("%v: summed collapse sizes = %d, Stats.VarsEliminated = %d", form, merged, st.VarsEliminated)
		}
		if len(sink.closures) == 0 {
			t.Errorf("%v: no ClosureDone callbacks", form)
		}
	}
}

// TestClosureDoneOnlyFromAddConstraint is the regression test for phase
// misattribution: ClosureDone samples must come only from top-level
// AddConstraint drains. CollapseCycles drains the worklist too, but its
// time is offline collapse work, not closure — reporting it double-counts
// closure time in the phase timers.
func TestClosureDoneOnlyFromAddConstraint(t *testing.T) {
	sink := &recordingSink{}
	s := NewSystem(Options{Form: IF, Cycles: CycleNone, Seed: 5, Metrics: sink})
	vars := make([]*Var, 12)
	for i := range vars {
		vars[i] = s.Fresh("v")
	}
	a := atoms(1)
	s.AddConstraint(a[0], vars[0])
	for i := range vars {
		s.AddConstraint(vars[i], vars[(i+1)%len(vars)])
	}
	adds := len(vars) + 1
	if got := len(sink.closures); got != adds {
		t.Fatalf("ClosureDone samples after %d AddConstraint calls = %d", adds, got)
	}

	// The offline collapse drains re-inserted constraints but must not
	// report its drain as closure time.
	if n := s.CollapseCycles(); n == 0 {
		t.Fatal("offline collapse found no cycles")
	}
	if got := len(sink.closures); got != adds {
		t.Errorf("CollapseCycles added %d ClosureDone sample(s); offline drains must not report closure time", got-adds)
	}
	// The collapse itself is still observed through its own hook.
	if len(sink.collapses) == 0 {
		t.Error("offline collapse reported no Collapse sample")
	}
}

// TestWorklistSampling drives enough constraints through the solver to
// cross the sampling interval and checks samples arrive.
func TestWorklistSampling(t *testing.T) {
	sink := &recordingSink{}
	s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 3, Metrics: sink})
	atoms := atoms(4)
	vars := make([]*Var, 64)
	for i := range vars {
		vars[i] = s.Fresh("w")
	}
	for i := range vars {
		s.AddConstraint(atoms[i%len(atoms)], vars[i])
		s.AddConstraint(vars[i], vars[(i*7+1)%len(vars)])
		s.AddConstraint(vars[(i*13+5)%len(vars)], vars[i])
	}
	if len(sink.worklists) == 0 {
		t.Fatalf("no worklist samples after %d worklist steps", s.Stats().Work)
	}
	for _, n := range sink.worklists {
		if n < 0 {
			t.Fatalf("negative worklist sample %d", n)
		}
	}
}
