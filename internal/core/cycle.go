package core

// This file implements the paper's partial online cycle elimination
// (Section 2.5, Figure 3) as the online CycleStrategy. When a
// variable-variable edge is about to be inserted, the strategy searches
// for a chain that would close a cycle:
//
//   - inserting a successor edge X → Y (constraint X ⊆ Y): search along
//     predecessor edges starting at X for a predecessor chain Y ⋯→ X;
//   - inserting a predecessor edge X ⋯→ Y: search along successor edges
//     starting at Y for a successor chain Y → ⋯ → X.
//
// The search differs from depth-first search only in that each step must
// move to a variable *smaller* in the total order o(·). Under inductive
// form this restriction is already implied by the representation; under
// standard form (where every variable-variable edge is a successor edge)
// the restriction is what keeps the search cheap — and what makes
// detection partial. The CycleOnlineIncreasing ablation flips the
// restriction for SF, which detects more cycles but visits far more nodes.
//
// The collapse machinery itself (collapse, absorb, the offline Tarjan
// pass) stays on System: every strategy that finds a cycle funnels into
// the same engine-owned merge path, so their accounting cannot drift.

// onlineStrategy is the paper's partial online elimination. It owns the
// chain-search scratch state (epoch mark, found path, explicit stack);
// the search marks are parked in each variable's Mark slot.
type onlineStrategy struct {
	sys        *System
	increasing bool // SF ablation: search up-order instead of down

	searchEpoch uint64       // current cycle-search mark
	path        []*Var       // scratch: nodes on the chain found by the last search
	frames      []chainFrame // scratch: explicit stack for chainSearch
}

func (o *onlineStrategy) Policy() CyclePolicy {
	if o.increasing {
		return CycleOnlineIncreasing
	}
	return CycleOnline
}

func (o *onlineStrategy) ReuseVar(int) *Var { return nil }
func (o *onlineStrategy) BeforeStep()       {}

// PendingEdge searches for a chain closing a cycle with the pending edge
// x ⊆ y and, if one is found, collapses every variable on the cycle onto
// the lowest-ordered witness. It reports whether a collapse happened (in
// which case the pending edge must not be inserted: it lies inside the
// witness).
func (o *onlineStrategy) PendingEdge(x, y *Var, asSucc bool) bool {
	s := o.sys
	s.stats.CycleSearches++
	visitsBefore := s.stats.CycleVisits
	o.searchEpoch++
	o.path = o.path[:0]
	var found bool
	if s.opt.Form == IF {
		if asSucc {
			found = o.predChain(x, y)
		} else {
			found = o.succChain(y, x)
		}
	} else {
		// SF: the pending edge is x → y; a cycle needs a successor chain
		// y → ⋯ → x.
		found = o.succChainSF(y, x, o.increasing)
	}
	if s.opt.Metrics != nil {
		s.opt.Metrics.CycleSearch(int(s.stats.CycleVisits - visitsBefore))
	}
	if !found {
		return false
	}
	s.stats.CyclesFound++
	s.collapse(o.path)
	return true
}

// predChain reports whether a predecessor chain to ⋯→ from exists,
// following only predecessor edges to lower-ordered variables. On success
// o.path holds every variable on the chain, endpoints included.
func (o *onlineStrategy) predChain(from, to *Var) bool {
	return o.chainSearch(from, to, false, false)
}

// succChain is the successor-edge dual of predChain.
func (o *onlineStrategy) succChain(from, to *Var) bool {
	return o.chainSearch(from, to, true, false)
}

// succChainSF searches successor chains under standard form. With
// increasing=false each step must decrease in the variable order (the
// paper's cheap partial search); with increasing=true each step must
// increase (the §4 ablation, which finds more cycles at much higher cost).
func (o *onlineStrategy) succChainSF(from, to *Var, increasing bool) bool {
	return o.chainSearch(from, to, true, increasing)
}

// chainFrame is one node on the explicit chain-search stack; next is the
// adjacency index to resume from.
type chainFrame struct {
	node *Var
	next int
}

// chainSearch is the order-restricted depth-first chain search behind
// predChain, succChain and succChainSF, run on an explicit stack so chain
// depth is bounded by the heap, not the goroutine stack (input graphs can
// hold chains of 10^5+ variables). It preserves the recursive search
// exactly: a node's visit is counted on entry, the to-test precedes the
// visited mark, adjacency is scanned in stored order, and on success
// o.path holds the chain with `to` first and `from` last.
func (o *onlineStrategy) chainSearch(from, to *Var, succ, increasing bool) bool {
	s := o.sys
	s.stats.CycleVisits++
	if from == to {
		o.path = append(o.path, from)
		return true
	}
	from.Mark = o.searchEpoch
	frames := append(o.frames[:0], chainFrame{node: from})
	defer func() { o.frames = frames[:0] }()
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		cur := f.node
		adj := cur.PredV.List()
		if succ {
			adj = cur.SuccV.List()
		}
		descended := false
		for f.next < len(adj) {
			v := find(adj[f.next])
			f.next++
			if v == cur || v.Mark == o.searchEpoch {
				continue
			}
			ok := before(v, cur)
			if increasing {
				ok = before(cur, v)
			}
			if !ok {
				continue
			}
			s.stats.CycleVisits++
			if v == to {
				o.path = append(o.path, to)
				for i := len(frames) - 1; i >= 0; i-- {
					o.path = append(o.path, frames[i].node)
				}
				return true
			}
			v.Mark = o.searchEpoch
			frames = append(frames, chainFrame{node: v})
			descended = true
			break
		}
		if !descended {
			frames = frames[:len(frames)-1]
		}
	}
	return false
}

// collapse merges every variable on a detected cycle into a single witness.
// The witness is the lowest-ordered variable, which preserves the inductive
// form invariant (every surviving edge still points from lower to higher
// order once re-oriented). The absorbed variables' constraints are
// re-inserted through the normal constraint path, so the closure rule fires
// for every new combination and inductive form re-orients inherited edges.
func (s *System) collapse(nodes []*Var) {
	witness := find(nodes[0])
	for _, v := range nodes[1:] {
		v = find(v)
		if before(v, witness) {
			witness = v
		}
	}
	s.store.BumpMergeEpoch()
	var merged []*Var
	for _, v := range nodes {
		v = find(v)
		if v != witness {
			s.absorb(v, witness)
			merged = append(merged, v)
		}
	}
	if len(merged) > 0 {
		if s.retract != nil {
			s.retractCollapse(witness, merged)
		}
		// The witness inherits every absorbed variable's edges (and any
		// dirty mark they carried), so it seeds the recomputation cone;
		// consumers holding a now-forwarded predecessor reach it through
		// the witness when the next pass canonicalises their adjacency.
		s.markLS(witness)
		if s.opt.Metrics != nil {
			s.opt.Metrics.Collapse(len(merged))
		}
		if s.opt.Observer != nil {
			s.emit(Event{Kind: EventCycle, Witness: witness, Vars: merged, Collapsed: len(merged)})
		}
	}
}

// absorb forwards a to w and re-inserts a's constraints onto w. Under
// delta propagation the term-set re-insertions are pushed as range
// entries over a's (now frozen) sets instead of being taken out: a is
// forwarded, so every future Add canonicalises past it, making its term
// sets immutable for exactly as long as the ranges are pending. The
// storage is released when the drain ends (flushDelta).
func (s *System) absorb(a, w *Var) {
	s.store.Forward(a, w)
	s.stats.VarsEliminated++
	if s.delta {
		s.pushSrcRange(a, w, a.PredS.Size())
	} else {
		for _, t := range a.PredS.Take() {
			s.push(t, w) // t ⊆ a becomes t ⊆ w
		}
	}
	for _, v := range a.PredV.Take() {
		s.push(v, w) // v ⊆ a becomes v ⊆ w
	}
	for _, v := range a.SuccV.Take() {
		s.push(w, v) // a ⊆ v becomes w ⊆ v
	}
	if s.delta {
		s.pushSinkRange(w, a, a.SuccK.Size())
		s.deferredFree = append(s.deferredFree, a)
	} else {
		for _, k := range a.SuccK.Take() {
			s.push(w, k) // a ⊆ k becomes w ⊆ k
		}
	}
}

// collapseSCCGroups runs Tarjan over the current variable-variable graph
// and collapses every non-trivial strongly connected component onto its
// witness. It is the shared group-and-collapse core of the periodic
// strategy's sweep and CollapseCycles, so their accounting cannot drift.
// It returns the number of variables examined and the number merged away.
func (s *System) collapseSCCGroups() (visited, collapsed int) {
	vars := s.CanonicalVars()
	comp, count, _ := sccStrong(s, vars)
	groups := make(map[int][]*Var)
	for i, c := range comp {
		groups[c] = append(groups[c], vars[i])
	}
	for c := 0; c < count; c++ {
		if g := groups[c]; len(g) >= 2 {
			s.collapse(g)
			collapsed += len(g) - 1
		}
	}
	return len(vars), collapsed
}

// CollapseCycles runs an offline Tarjan pass over the current
// variable-variable graph and collapses every non-trivial strongly
// connected component. It is exposed for tests and for periodic-offline
// comparison experiments; the online policies never need it.
func (s *System) CollapseCycles() int {
	// Each collapse marks its witness and bumps the graph version, so the
	// least-solution cache is invalidated exactly when something merged —
	// a cycle-free offline pass leaves the cache hot.
	_, collapsed := s.collapseSCCGroups()
	s.drain(false)
	return collapsed
}
