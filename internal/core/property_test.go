package core

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestLSMonotonic: adding constraints can only grow least solutions.
func TestLSMonotonic(t *testing.T) {
	property := func(seed16 uint16) bool {
		seed := int64(seed16)
		ops := genScript(seed, 40, 160)
		s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: seed})
		var vars []*Var
		prev := map[int]int{} // var index → |LS| seen so far
		for i, op := range ops {
			if op.fresh {
				vars = append(vars, s.Fresh(fmt.Sprintf("v%d", len(vars))))
				continue
			}
			s.AddConstraint(op.l.build(vars), op.r.build(vars))
			if i%37 == 0 { // sample: full recomputation is expensive
				for j, v := range vars {
					n := len(lsAtoms(s, v))
					if n < prev[j] {
						t.Logf("seed %d: LS(v%d) shrank from %d to %d", seed, j, prev[j], n)
						return false
					}
					prev[j] = n
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestIdempotentReAdd: re-adding every constraint of a solved system —
// the same expression objects, since terms are identified by pointer —
// changes nothing: no new edges, no new collapses, identical least
// solutions.
func TestIdempotentReAdd(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ops := genScript(seed, 50, 180)
		s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: seed})
		var vars []*Var
		type pair struct{ l, r Expr }
		var added []pair
		for _, op := range ops {
			if op.fresh {
				vars = append(vars, s.Fresh(fmt.Sprintf("v%d", len(vars))))
				continue
			}
			p := pair{op.l.build(vars), op.r.build(vars)}
			added = append(added, p)
			s.AddConstraint(p.l, p.r)
		}

		before := make([][]string, len(vars))
		for i, v := range vars {
			before[i] = lsNames(s, v)
		}
		edgesBefore := s.TotalEdges()
		elimBefore := s.Stats().VarsEliminated

		for _, p := range added {
			s.AddConstraint(p.l, p.r)
		}

		if got := s.TotalEdges(); got != edgesBefore {
			t.Fatalf("seed %d: edges changed on re-add: %d -> %d", seed, edgesBefore, got)
		}
		if got := s.Stats().VarsEliminated; got != elimBefore {
			t.Fatalf("seed %d: re-add collapsed more variables: %d -> %d", seed, elimBefore, got)
		}
		for i, v := range vars {
			if fmt.Sprint(lsNames(s, v)) != fmt.Sprint(before[i]) {
				t.Fatalf("seed %d: LS(v%d) changed on re-add", seed, i)
			}
		}
	}
}

// TestFindIdempotentAndAcyclic: union-find representatives are stable
// fixpoints and forwarding chains terminate.
func TestFindIdempotentAndAcyclic(t *testing.T) {
	s := randomSystem(t, IF, CycleOnline, 21, 150, 500)
	for i := 0; i < s.NumCreated(); i++ {
		v := s.CreatedVar(i)
		r := find(v)
		if find(r) != r {
			t.Fatalf("find not idempotent for %s", v)
		}
		if r.Forwarded() {
			t.Fatalf("representative %s has a parent", r)
		}
	}
}

// TestMergedVarsShareLS: every variable merged into a witness has exactly
// the witness's least solution — cycle collapse means equality in all
// solutions.
func TestMergedVarsShareLS(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		s := randomSystem(t, IF, CycleOnline, seed, 100, 400)
		for i := 0; i < s.NumCreated(); i++ {
			v := s.CreatedVar(i)
			w := find(v)
			if v == w {
				continue
			}
			if fmt.Sprint(lsNames(s, v)) != fmt.Sprint(lsNames(s, w)) {
				t.Fatalf("seed %d: merged var %s disagrees with witness %s", seed, v, w)
			}
		}
	}
}

// TestWorkloadOrderIndependence: the final least solutions do not depend
// on the order constraints arrive in (set-constraint systems are
// order-insensitive even though the collapse history is not).
func TestWorkloadOrderIndependence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ops := genScript(seed, 40, 150)
		forward, fv := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed}, ops)

		// Reverse only the constraint ops, keeping creations first.
		var creates, constraints []scriptOp
		for _, op := range ops {
			if op.fresh {
				creates = append(creates, op)
			} else {
				constraints = append(constraints, op)
			}
		}
		for i, j := 0, len(constraints)-1; i < j; i, j = i+1, j-1 {
			constraints[i], constraints[j] = constraints[j], constraints[i]
		}
		reversed := append(append([]scriptOp{}, creates...), constraints...)
		backward, bv := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed}, reversed)

		for i := range fv {
			a := fmt.Sprint(lsNames(forward, fv[i]))
			b := fmt.Sprint(lsNames(backward, bv[i]))
			if a != b {
				t.Fatalf("seed %d: order-dependent result at v%d:\n%s\n%s", seed, i, a, b)
			}
		}
	}
}

// TestOrderStrategiesAgree: the least solution is independent of the
// order strategy (only the collapse history and work counters vary).
func TestOrderStrategiesAgree(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := genScript(seed, 50, 180)
		ref, refVars := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed, Order: OrderRandom}, ops)
		for _, strat := range []OrderStrategy{OrderCreation, OrderReverseCreation} {
			s, vars := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed, Order: strat}, ops)
			for i, v := range vars {
				if fmt.Sprint(lsNames(s, v)) != fmt.Sprint(lsNames(ref, refVars[i])) {
					t.Fatalf("seed %d order %v: LS differs at v%d", seed, strat, i)
				}
			}
		}
	}
}

func TestOrderStrategyAssignment(t *testing.T) {
	s := NewSystem(Options{Form: IF, Order: OrderCreation, Seed: 1})
	a := s.Fresh("a")
	b := s.Fresh("b")
	if !before(a, b) {
		t.Error("creation order not increasing")
	}
	s2 := NewSystem(Options{Form: IF, Order: OrderReverseCreation, Seed: 1})
	c := s2.Fresh("c")
	d := s2.Fresh("d")
	if !before(d, c) {
		t.Error("reverse creation order not decreasing")
	}
	for _, strat := range []OrderStrategy{OrderRandom, OrderCreation, OrderReverseCreation} {
		if strat.String() == "?" {
			t.Errorf("strategy %d unnamed", strat)
		}
	}
}

// TestHybridSetEdgeCountsAcrossConfigs checks the observational property
// at the graph level: over random constraint streams with collapses, the
// closed-graph edge counts agree across forms, policies and seeds exactly
// as they did under the map-backed sets (edge counts are a property of the
// constraint system, not of the adjacency representation).
func TestHybridSetEdgeCountsAcrossConfigs(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ops := genScript(seed, 50, 180)
		// Within one form+policy, edge counts must be identical for any
		// variable order after full offline collapse.
		type cell struct {
			form Form
			pol  CyclePolicy
		}
		for _, c := range []cell{{IF, CycleOnline}, {SF, CycleOnline}, {IF, CycleNone}} {
			s1, _ := runScript(Options{Form: c.form, Cycles: c.pol, Seed: seed}, ops)
			s2, _ := runScript(Options{Form: c.form, Cycles: c.pol, Seed: seed}, ops)
			a1, b1, c1 := s1.EdgeCounts()
			a2, b2, c2 := s2.EdgeCounts()
			if a1 != a2 || b1 != b2 || c1 != c2 {
				t.Fatalf("seed %d %v/%v: duplicate runs disagree on edge counts (%d,%d,%d) vs (%d,%d,%d)",
					seed, c.form, c.pol, a1, b1, c1, a2, b2, c2)
			}
			// Replaying the closed system's atomic edges into a fresh map
			// of canonical endpoints must match the counted totals — the
			// hybrid sets hold no duplicates and no self-edges.
			s1.CollapseCycles()
			vv, src, snk := s1.EdgeCounts()
			seenVV := map[[2]*Var]bool{}
			seenSrc := map[*Var]map[*Term]bool{}
			seenSnk := map[*Var]map[*Term]bool{}
			for _, v := range s1.CanonicalVars() {
				for _, w := range v.SuccV.Compact(v) {
					if v == w {
						t.Fatalf("seed %d: self succ edge survived compaction", seed)
					}
					seenVV[[2]*Var{v, w}] = true
				}
				for _, w := range v.PredV.Compact(v) {
					seenVV[[2]*Var{w, v}] = true
				}
				if seenSrc[v] == nil {
					seenSrc[v] = map[*Term]bool{}
				}
				for _, tm := range v.PredS.List() {
					if seenSrc[v][tm] {
						t.Fatalf("seed %d: duplicate source edge", seed)
					}
					seenSrc[v][tm] = true
				}
				if seenSnk[v] == nil {
					seenSnk[v] = map[*Term]bool{}
				}
				for _, tm := range v.SuccK.List() {
					if seenSnk[v][tm] {
						t.Fatalf("seed %d: duplicate sink edge", seed)
					}
					seenSnk[v][tm] = true
				}
			}
			var srcN, snkN int
			for _, m := range seenSrc {
				srcN += len(m)
			}
			for _, m := range seenSnk {
				snkN += len(m)
			}
			if len(seenVV) != vv || srcN != src || snkN != snk {
				t.Fatalf("seed %d %v/%v: EdgeCounts (%d,%d,%d) != recount (%d,%d,%d)",
					seed, c.form, c.pol, vv, src, snk, len(seenVV), srcN, snkN)
			}
		}
	}
}

// TestStressManyCollapses drives a workload designed to merge almost
// everything, checking the adjacency canonicalisation machinery under
// heavy forwarding.
func TestStressManyCollapses(t *testing.T) {
	for _, form := range []Form{SF, IF} {
		s := NewSystem(Options{Form: form, Cycles: CycleOnline, Seed: 5})
		a := atoms(2)
		const n = 200
		vars := make([]*Var, n)
		for i := range vars {
			vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
		}
		// Ring + chords: one giant SCC in the end.
		for i := 0; i < n; i++ {
			s.AddConstraint(vars[i], vars[(i+1)%n])
		}
		for i := 0; i < n; i += 3 {
			s.AddConstraint(vars[(i+n/2)%n], vars[i])
		}
		s.AddConstraint(a[0], vars[0])
		s.AddConstraint(vars[n-1], vars[0])
		// Force any stragglers together offline and verify the result is
		// consistent.
		s.CollapseCycles()
		w := s.Find(vars[0])
		for _, v := range vars {
			if s.Find(v) != w {
				t.Fatalf("%v: ring not fully merged", form)
			}
		}
		if got := lsNames(s, vars[n/2]); len(got) != 1 || got[0] != "a0" {
			t.Fatalf("%v: LS after heavy merging = %v", form, got)
		}
	}
}
