package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// atoms returns n nullary constructor terms named a0..a(n-1). Nullary terms
// are the "sources" whose propagation the least solution reports.
func atoms(n int) []*Term {
	out := make([]*Term, n)
	for i := range out {
		out[i] = NewTerm(NewConstructor(fmt.Sprintf("a%d", i)))
	}
	return out
}

func lsNames(s *System, v *Var) []string {
	ts := s.LeastSolution(v)
	names := make([]string, 0, len(ts))
	for _, t := range ts {
		names = append(names, t.String())
	}
	sort.Strings(names)
	return names
}

// lsAtoms returns only the nullary terms of LS(v), deduplicated. Nullary
// terms are stable identities across runs even when the oracle aliases
// variables at creation time (which renames variable arguments inside
// constructed terms).
func lsAtoms(s *System, v *Var) []string {
	seen := map[string]bool{}
	var names []string
	for _, t := range s.LeastSolution(v) {
		if t.Con().Arity() == 0 && !seen[t.String()] {
			seen[t.String()] = true
			names = append(names, t.String())
		}
	}
	sort.Strings(names)
	return names
}

func TestBasicPropagation(t *testing.T) {
	for _, form := range []Form{SF, IF} {
		for _, pol := range []CyclePolicy{CycleNone, CycleOnline} {
			t.Run(fmt.Sprintf("%v-%v", form, pol), func(t *testing.T) {
				s := NewSystem(Options{Form: form, Cycles: pol, Seed: 1})
				a := atoms(2)
				x := s.Fresh("X")
				y := s.Fresh("Y")
				z := s.Fresh("Z")
				s.AddConstraint(a[0], x) // a0 ⊆ X
				s.AddConstraint(x, y)    // X ⊆ Y
				s.AddConstraint(y, z)    // Y ⊆ Z
				s.AddConstraint(a[1], y) // a1 ⊆ Y

				if got := lsNames(s, x); len(got) != 1 || got[0] != "a0" {
					t.Errorf("LS(X) = %v, want [a0]", got)
				}
				if got := lsNames(s, y); len(got) != 2 {
					t.Errorf("LS(Y) = %v, want [a0 a1]", got)
				}
				if got := lsNames(s, z); len(got) != 2 {
					t.Errorf("LS(Z) = %v, want [a0 a1]", got)
				}
				if s.ErrorCount() != 0 {
					t.Errorf("unexpected errors: %v", s.Errors())
				}
			})
		}
	}
}

func TestCovariantDecomposition(t *testing.T) {
	box := NewConstructor("box", Covariant)
	for _, form := range []Form{SF, IF} {
		s := NewSystem(Options{Form: form, Seed: 7})
		a := atoms(1)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(a[0], x)
		// box(X) ⊆ box(Y) should yield X ⊆ Y.
		s.AddConstraint(NewTerm(box, x), NewTerm(box, y))
		if got := lsNames(s, y); len(got) != 1 || got[0] != "a0" {
			t.Errorf("%v: LS(Y) = %v, want [a0]", form, got)
		}
	}
}

func TestContravariantDecomposition(t *testing.T) {
	sink := NewConstructor("sink", Contravariant)
	for _, form := range []Form{SF, IF} {
		s := NewSystem(Options{Form: form, Seed: 7})
		a := atoms(1)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(a[0], y)
		// sink(X̄) ⊆ sink(Ȳ) should yield Y ⊆ X.
		s.AddConstraint(NewTerm(sink, x), NewTerm(sink, y))
		if got := lsNames(s, x); len(got) != 1 || got[0] != "a0" {
			t.Errorf("%v: LS(X) = %v, want [a0]", form, got)
		}
	}
}

func TestProjectionThroughSink(t *testing.T) {
	// ref(get, s̄et) mimics the points-to encoding: reading through a sink
	// ref(T, 0) and writing through a sink ref(1, V̄).
	ref := NewConstructor("ref", Covariant, Contravariant)
	for _, form := range []Form{SF, IF} {
		for _, pol := range []CyclePolicy{CycleNone, CycleOnline} {
			s := NewSystem(Options{Form: form, Cycles: pol, Seed: 3})
			a := atoms(1)
			content := s.Fresh("Xl")
			p := s.Fresh("P")
			loc := NewTerm(ref, content, content)
			s.AddConstraint(loc, p) // p points to loc

			// Write: p ⊆ ref(1, V̄) with a0 ⊆ V forces a0 into content.
			v := s.Fresh("V")
			s.AddConstraint(a[0], v)
			s.AddConstraint(p, NewTerm(ref, One, v))

			// Read: p ⊆ ref(T, 0) pulls content into T.
			tv := s.Fresh("T")
			s.AddConstraint(p, NewTerm(ref, tv, Zero))

			if got := lsNames(s, content); len(got) != 1 || got[0] != "a0" {
				t.Errorf("%v/%v: LS(content) = %v, want [a0]", form, pol, got)
			}
			if got := lsNames(s, tv); len(got) != 1 || got[0] != "a0" {
				t.Errorf("%v/%v: LS(T) = %v, want [a0]", form, pol, got)
			}
			if s.ErrorCount() != 0 {
				t.Errorf("%v/%v: unexpected errors %v", form, pol, s.Errors())
			}
		}
	}
}

func TestZeroOneRules(t *testing.T) {
	box := NewConstructor("box", Covariant)
	s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 5})
	x := s.Fresh("X")
	s.AddConstraint(Zero, x)                  // trivial
	s.AddConstraint(x, One)                   // trivial
	s.AddConstraint(Zero, NewTerm(box, Zero)) // trivial
	if s.Stats().Work != 0 {
		t.Errorf("trivial constraints should add no edges, work=%d", s.Stats().Work)
	}
	if s.ErrorCount() != 0 {
		t.Errorf("unexpected errors: %v", s.Errors())
	}
}

func TestInconsistency(t *testing.T) {
	a := atoms(2)
	s := NewSystem(Options{Form: SF, Seed: 5})
	x := s.Fresh("X")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, a[1]) // a0 ⊆ X ⊆ a1 is inconsistent
	if s.ErrorCount() != 1 {
		t.Fatalf("want 1 inconsistency, got %d", s.ErrorCount())
	}
	// 1 ⊆ c(...) and c(...) ⊆ 0 are inconsistent too.
	s.AddConstraint(One, a[0])
	s.AddConstraint(a[0], Zero)
	if s.ErrorCount() != 3 {
		t.Fatalf("want 3 inconsistencies, got %d", s.ErrorCount())
	}
}

func TestMaxErrorsBound(t *testing.T) {
	a := atoms(2)
	s := NewSystem(Options{Form: SF, Seed: 5, MaxErrors: 2})
	for i := 0; i < 10; i++ {
		x := s.Fresh("X")
		s.AddConstraint(a[0], x)
		s.AddConstraint(x, a[1])
	}
	if got := len(s.Errors()); got != 2 {
		t.Errorf("retained errors = %d, want 2", got)
	}
	if s.ErrorCount() != 10 {
		t.Errorf("counted errors = %d, want 10", s.ErrorCount())
	}
}

func TestSimpleCycleCollapse(t *testing.T) {
	for _, form := range []Form{SF, IF} {
		s := NewSystem(Options{Form: form, Cycles: CycleOnline, Seed: 11})
		a := atoms(1)
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(x, y)
		s.AddConstraint(y, x) // closes a 2-cycle; must always be caught
		if s.Stats().VarsEliminated != 1 {
			t.Errorf("%v: eliminated = %d, want 1", form, s.Stats().VarsEliminated)
		}
		if s.Find(x) != s.Find(y) {
			t.Errorf("%v: X and Y not merged", form)
		}
		s.AddConstraint(a[0], x)
		if got := lsNames(s, y); len(got) != 1 || got[0] != "a0" {
			t.Errorf("%v: LS(Y) = %v, want [a0]", form, got)
		}
	}
}

func TestTwoCycleAlwaysDetectedIF(t *testing.T) {
	// Under inductive form a direct 2-cycle is always detected, whatever
	// the variable order: the closing edge's chain search starts at the
	// higher-ordered endpoint and the existing edge necessarily points
	// down-order. (This is the base case of the paper's theorem that IF
	// exposes at least a 2-cycle of every non-trivial SCC; it does NOT
	// hold for SF, whose search can be blocked by the order filter.)
	for seed := int64(0); seed < 50; seed++ {
		s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: seed})
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(x, y)
		s.AddConstraint(y, x)
		if s.Find(x) != s.Find(y) {
			t.Fatalf("IF seed %d: 2-cycle not collapsed", seed)
		}
	}
}

func TestSFMissesSomeTwoCycles(t *testing.T) {
	// The complementary fact: across many random orders, SF's
	// order-restricted successor search misses roughly half of direct
	// 2-cycles (it detects the cycle only when the closing step moves
	// down-order).
	detected := 0
	const trials = 200
	for seed := int64(0); seed < trials; seed++ {
		s := NewSystem(Options{Form: SF, Cycles: CycleOnline, Seed: seed})
		x := s.Fresh("X")
		y := s.Fresh("Y")
		s.AddConstraint(x, y)
		s.AddConstraint(y, x)
		if s.Find(x) == s.Find(y) {
			detected++
		}
	}
	if detected == 0 || detected == trials {
		t.Errorf("SF detected %d/%d 2-cycles; expected a strict subset", detected, trials)
	}
	if detected < trials/4 || detected > 3*trials/4 {
		t.Errorf("SF detected %d/%d 2-cycles; expected about half", detected, trials)
	}
}

func TestWitnessIsMinOrder(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 13})
	vars := make([]*Var, 5)
	for i := range vars {
		vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < len(vars); i++ {
		s.AddConstraint(vars[i], vars[(i+1)%len(vars)])
	}
	min := vars[0]
	for _, v := range vars[1:] {
		if before(v, min) {
			min = v
		}
	}
	// All variables the solver merged must forward to a witness that is
	// minimal among the variables of its class.
	for _, v := range vars {
		w := s.Find(v)
		if w != v && !before(w, v) {
			t.Errorf("witness %s does not precede %s", w, v)
		}
	}
	_ = min
}

// TestInductiveInvariant checks that after an IF run with collapses, every
// canonical variable-variable edge still points from lower to higher order:
// predecessors of y precede y, successors of x precede x.
func TestInductiveInvariant(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		s := randomSystem(t, IF, CycleOnline, seed, 200, 600)
		for _, y := range s.CanonicalVars() {
			s.store.Clean(y)
			for _, p := range y.PredV.List() {
				p = find(p)
				if !before(p, y) {
					t.Fatalf("seed %d: pred edge violates order: o(%s) !< o(%s)", seed, p, y)
				}
			}
			for _, w := range y.SuccV.List() {
				w = find(w)
				if !before(w, y) {
					t.Fatalf("seed %d: succ edge violates order: o(%s) !< o(%s)", seed, w, y)
				}
			}
		}
	}
}

// TestSFNoVarPreds checks the SF representation invariant: predecessor
// lists only ever contain sources.
func TestSFNoVarPreds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, pol := range []CyclePolicy{CycleNone, CycleOnline} {
			s := randomSystem(t, SF, pol, seed, 200, 600)
			for _, v := range s.CanonicalVars() {
				if v.PredV.Size() != 0 {
					t.Fatalf("seed %d: SF variable %s has variable predecessors", seed, v)
				}
			}
		}
	}
}

// --- random constraint-system scripts -----------------------------------

// scriptOp is one step of a reproducible constraint-generation script, so
// the same abstract system can be replayed against different solver
// configurations.
type scriptOp struct {
	fresh bool
	l, r  exprSpec
}

type exprSpec struct {
	kind int // 0 var, 1 atom, 2 box(var), 3 wsink(var), 4 pair(var,var), 5 zero, 6 one
	a, b int
}

var (
	testAtoms = atoms(6)
	testBox   = NewConstructor("box", Covariant)
	testWSink = NewConstructor("wsink", Contravariant)
	testPair  = NewConstructor("pair", Covariant, Contravariant)
)

func (e exprSpec) build(vars []*Var) Expr {
	switch e.kind {
	case 0:
		return vars[e.a%len(vars)]
	case 1:
		return testAtoms[e.a%len(testAtoms)]
	case 2:
		return NewTerm(testBox, vars[e.a%len(vars)])
	case 3:
		return NewTerm(testWSink, vars[e.a%len(vars)])
	case 4:
		return NewTerm(testPair, vars[e.a%len(vars)], vars[e.b%len(vars)])
	case 5:
		return Zero
	default:
		return One
	}
}

// genScript produces a random script with roughly nv variables and nc
// constraints, biased toward variable-variable constraints so cycles form.
func genScript(seed int64, nv, nc int) []scriptOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []scriptOp
	for i := 0; i < nv; i++ {
		ops = append(ops, scriptOp{fresh: true})
	}
	for i := 0; i < nc; i++ {
		var op scriptOp
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // var ⊆ var
			op.l = exprSpec{kind: 0, a: rng.Intn(nv)}
			op.r = exprSpec{kind: 0, a: rng.Intn(nv)}
		case 5: // atom ⊆ var
			op.l = exprSpec{kind: 1, a: rng.Intn(6)}
			op.r = exprSpec{kind: 0, a: rng.Intn(nv)}
		case 6: // box(var) ⊆ var
			op.l = exprSpec{kind: 2, a: rng.Intn(nv)}
			op.r = exprSpec{kind: 0, a: rng.Intn(nv)}
		case 7: // var ⊆ box(var) — projection
			op.l = exprSpec{kind: 0, a: rng.Intn(nv)}
			op.r = exprSpec{kind: 2, a: rng.Intn(nv)}
		case 8: // pair(var, var̄) source and sink
			op.l = exprSpec{kind: 4, a: rng.Intn(nv), b: rng.Intn(nv)}
			op.r = exprSpec{kind: 0, a: rng.Intn(nv)}
		default: // var ⊆ pair(var, var̄)
			op.l = exprSpec{kind: 0, a: rng.Intn(nv)}
			op.r = exprSpec{kind: 4, a: rng.Intn(nv), b: rng.Intn(nv)}
		}
		ops = append(ops, op)
	}
	return ops
}

// runScript replays a script against a fresh system with the given
// configuration. The order seed is fixed so that IF's variable order — and
// hence its work counters — are reproducible; correctness must hold for
// any order, which the seed loop in callers exercises.
func runScript(opt Options, ops []scriptOp) (*System, []*Var) {
	s := NewSystem(opt)
	var vars []*Var
	for _, op := range ops {
		if op.fresh {
			vars = append(vars, s.Fresh(fmt.Sprintf("v%d", len(vars))))
			continue
		}
		s.AddConstraint(op.l.build(vars), op.r.build(vars))
	}
	return s, vars
}

func randomSystem(t *testing.T, form Form, pol CyclePolicy, seed int64, nv, nc int) *System {
	t.Helper()
	s, _ := runScript(Options{Form: form, Cycles: pol, Seed: seed}, genScript(seed, nv, nc))
	return s
}

// TestAllConfigurationsAgree is the central correctness property: every
// representation × policy combination computes the same least solution for
// every variable of the same constraint system.
func TestAllConfigurationsAgree(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ops := genScript(seed, 60, 200)
		ref, refVars := runScript(Options{Form: SF, Cycles: CycleNone, Seed: seed}, ops)

		configs := []Options{
			{Form: IF, Cycles: CycleNone, Seed: seed},
			{Form: SF, Cycles: CycleOnline, Seed: seed},
			{Form: IF, Cycles: CycleOnline, Seed: seed},
			{Form: SF, Cycles: CycleOnlineIncreasing, Seed: seed},
			{Form: IF, Cycles: CycleOnline, Seed: seed + 1000}, // different order
			{Form: SF, Cycles: CycleOnline, Seed: seed + 1000},
		}
		for _, cfg := range configs {
			s, vars := runScript(cfg, ops)
			for i, v := range vars {
				want := lsNames(ref, refVars[i])
				got := lsNames(s, v)
				if len(want) != len(got) {
					t.Fatalf("seed %d %v/%v var v%d: LS mismatch\n got %v\nwant %v",
						seed, cfg.Form, cfg.Cycles, i, got, want)
				}
				for j := range want {
					if want[j] != got[j] {
						t.Fatalf("seed %d %v/%v var v%d: LS mismatch\n got %v\nwant %v",
							seed, cfg.Form, cfg.Cycles, i, got, want)
					}
				}
			}
		}
	}
}

// TestOracleAgreesAndIsAcyclic builds an oracle from an online run and
// checks that (a) the oracle run computes the same least solutions and (b)
// its canonical constraint graph is acyclic — the paper's perfect
// elimination.
func TestOracleAgreesAndIsAcyclic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ops := genScript(seed, 60, 200)
		pass1, vars1 := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed}, ops)
		oracle := BuildOracle(pass1)

		for _, form := range []Form{SF, IF} {
			s, vars := runScript(Options{Form: form, Cycles: CycleOracle, Seed: seed, Oracle: oracle}, ops)
			for i, v := range vars {
				// Compare the nullary-term content: oracle aliasing renames
				// variable arguments inside constructed terms, but the
				// propagated atoms must be identical.
				want := lsAtoms(pass1, vars1[i])
				got := lsAtoms(s, v)
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Fatalf("seed %d oracle/%v var v%d: LS mismatch\n got %v\nwant %v", seed, form, i, got, want)
				}
			}
			canon := s.CanonicalVars()
			comp, _, index := sccStrong(s, canon)
			sizes := make(map[int]int)
			for _, v := range canon {
				sizes[comp[index[v]]]++
			}
			for c, sz := range sizes {
				if sz >= 2 {
					t.Fatalf("seed %d oracle/%v: non-trivial SCC %d of size %d survived", seed, form, c, sz)
				}
			}
		}
	}
}

// TestOracleEliminatesEverything: with a perfect oracle no online run can
// eliminate more; the oracle must pre-merge exactly the cyclic classes.
func TestOracleEliminatesEverything(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		ops := genScript(seed, 60, 200)
		pass1, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed}, ops)
		inCycles, _ := pass1.CycleClassStats()
		oracle := BuildOracle(pass1)

		s, _ := runScript(Options{Form: IF, Cycles: CycleOracle, Seed: seed, Oracle: oracle}, ops)
		st := s.Stats()
		// Every variable in a cyclic class except its witness is
		// pre-merged: eliminated = inCycles - #classes. Online elimination
		// during the oracle run must find nothing.
		if st.CyclesFound != 0 {
			t.Fatalf("seed %d: oracle run still found %d cycles", seed, st.CyclesFound)
		}
		if inCycles > 0 && st.VarsEliminated == 0 {
			t.Fatalf("seed %d: oracle eliminated nothing though %d vars are cyclic", seed, inCycles)
		}
	}
}

// TestCycleClassStatsConsistency: the cyclic-equivalence statistics must
// agree across representations and policies, since they are a property of
// the constraint system, not of the implementation.
func TestCycleClassStatsConsistency(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ops := genScript(seed, 50, 160)
		var got [][2]int
		for _, cfg := range []Options{
			{Form: SF, Cycles: CycleNone, Seed: seed},
			{Form: IF, Cycles: CycleNone, Seed: seed},
			{Form: SF, Cycles: CycleOnline, Seed: seed},
			{Form: IF, Cycles: CycleOnline, Seed: seed},
		} {
			s, _ := runScript(cfg, ops)
			in, max := s.CycleClassStats()
			got = append(got, [2]int{in, max})
		}
		for i := 1; i < len(got); i++ {
			if got[i] != got[0] {
				t.Fatalf("seed %d: cycle class stats differ across configs: %v", seed, got)
			}
		}
	}
}

// TestOnlineEliminationHelps: on cyclic workloads online elimination should
// do no more work than plain resolution (the entire point of the paper).
func TestOnlineEliminationHelps(t *testing.T) {
	ops := genScript(42, 300, 1500)
	plain, _ := runScript(Options{Form: IF, Cycles: CycleNone, Seed: 42}, ops)
	online, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 42}, ops)
	if online.Stats().Work > plain.Stats().Work {
		t.Errorf("online work %d exceeds plain work %d", online.Stats().Work, plain.Stats().Work)
	}
	if online.Stats().VarsEliminated == 0 {
		t.Errorf("online run eliminated no variables on a cyclic workload")
	}
}

func TestEdgeCountsAndRedundant(t *testing.T) {
	s := NewSystem(Options{Form: SF, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(x, y)
	s.AddConstraint(x, y) // redundant
	s.AddConstraint(a[0], x)
	vv, src, snk := s.EdgeCounts()
	if vv != 1 || src != 2 || snk != 0 {
		t.Errorf("EdgeCounts = (%d,%d,%d), want (1,2,0)", vv, src, snk)
	}
	if s.Stats().Redundant == 0 {
		t.Errorf("redundant addition not counted")
	}
	if s.TotalEdges() != 3 {
		t.Errorf("TotalEdges = %d, want 3", s.TotalEdges())
	}
}

func TestInitialGraphMode(t *testing.T) {
	s := NewInitialGraph(Options{Form: SF, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	// No closure: a0 must not have propagated to Y.
	vv, src, _ := s.EdgeCounts()
	if vv != 1 || src != 1 {
		t.Errorf("initial graph EdgeCounts = (%d,%d), want (1,1)", vv, src)
	}
}

func TestCollapseCyclesOffline(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CycleNone, Seed: 9})
	vars := make([]*Var, 6)
	for i := range vars {
		vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
	}
	for i := range vars {
		s.AddConstraint(vars[i], vars[(i+1)%len(vars)])
	}
	n := s.CollapseCycles()
	if n != len(vars)-1 {
		t.Errorf("CollapseCycles = %d, want %d", n, len(vars)-1)
	}
	w := s.Find(vars[0])
	for _, v := range vars[1:] {
		if s.Find(v) != w {
			t.Errorf("offline collapse left %s unmerged", v)
		}
	}
}

func TestFreshDeterminism(t *testing.T) {
	s1 := NewSystem(Options{Form: IF, Seed: 77})
	s2 := NewSystem(Options{Form: IF, Seed: 77})
	for i := 0; i < 100; i++ {
		a := s1.Fresh("x")
		b := s2.Fresh("x")
		if a.Order() != b.Order() || a.ID() != b.ID() {
			t.Fatalf("variable order not reproducible at index %d", i)
		}
	}
}

func TestTermValidation(t *testing.T) {
	box := NewConstructor("box", Covariant)
	defer func() {
		if recover() == nil {
			t.Errorf("arity mismatch did not panic")
		}
	}()
	NewTerm(box) // wrong arity
}

func TestStatsString(t *testing.T) {
	s := randomSystem(t, IF, CycleOnline, 5, 50, 150)
	if s.Stats().String() == "" {
		t.Error("empty stats string")
	}
	if s.Stats().CycleSearches > 0 && s.Stats().VisitsPerSearch() <= 0 {
		t.Error("VisitsPerSearch inconsistent")
	}
}
