package core

import "fmt"

// Stats holds the solver's work counters. Work and Redundant follow the
// paper's accounting: Work is the total number of attempted edge additions
// (a constraint solver does work proportional to this, including additions
// of edges already present), and Redundant counts the attempts that found
// the edge already present.
type Stats struct {
	// VarsCreated is the number of variables actually allocated.
	VarsCreated int
	// VarsEliminated counts variables merged away, by online collapse or
	// by the oracle's pre-merging.
	VarsEliminated int
	// Work is the total number of attempted edge additions, including
	// redundant ones.
	Work int64
	// Redundant counts edge additions that found the edge already present.
	Redundant int64
	// CycleSearches counts online closing-chain searches performed.
	CycleSearches int64
	// CycleVisits counts nodes visited across all searches; CycleVisits /
	// CycleSearches is the empirical analogue of E(R_X) in Theorem 5.2.
	CycleVisits int64
	// CyclesFound counts searches that found (and collapsed) a cycle.
	CyclesFound int64
	// LSWork counts terms materialised by the inductive-form
	// least-solution engine. Interned nodes are shared, so a suffix reused
	// across many variables is counted once — unlike the naive pass, which
	// recopied it per variable.
	LSWork int64
	// LSPasses counts least-solution engine passes actually run (cache
	// misses); a hot cache answers LeastSolution without a pass.
	LSPasses int64
	// LSConeVars counts variables recomputed across all passes — the sum
	// of dirty-cone sizes, the engine's cost measure.
	LSConeVars int64
	// LSLevels is the number of topological levels of the predecessor DAG
	// in the most recent pass.
	LSLevels int64
	// LSUnionHits and LSUnionMisses count memoized-union lookups across
	// all passes: a hit reuses an interned result, a miss computes one.
	LSUnionHits   int64
	LSUnionMisses int64
	// PeriodicSweeps counts offline elimination passes under
	// CyclePeriodic.
	PeriodicSweeps int64
	// SweepVisits counts variables examined by periodic sweeps (their
	// cost measure, the counterpart of CycleVisits for the online
	// policies).
	SweepVisits int64
	// Retractions counts RetractBatches calls; RetractConeVars sums the
	// dirty-cone sizes they rolled back (the retract-side counterpart of
	// LSConeVars: cone ≪ graph is the win being measured), and
	// RetractReplayed counts the surviving constraints re-applied during
	// rebuilds.
	Retractions     int64
	RetractConeVars int64
	RetractReplayed int64
}

// VisitsPerSearch returns the mean number of nodes visited per online
// cycle search (the measured counterpart of Theorem 5.2's bound).
func (st Stats) VisitsPerSearch() float64 {
	if st.CycleSearches == 0 {
		return 0
	}
	return float64(st.CycleVisits) / float64(st.CycleSearches)
}

// LSUnionHitRate returns the fraction of memoized-union lookups answered
// from the memo (0 when no unions were attempted).
func (st Stats) LSUnionHitRate() float64 {
	total := st.LSUnionHits + st.LSUnionMisses
	if total == 0 {
		return 0
	}
	return float64(st.LSUnionHits) / float64(total)
}

// String summarises the counters on one line.
func (st Stats) String() string {
	return fmt.Sprintf("vars=%d elim=%d work=%d redundant=%d searches=%d visits=%d cycles=%d lswork=%d lspasses=%d lscone=%d lslevels=%d lsunionhits=%d lsunionmisses=%d sweeps=%d sweepvisits=%d retracts=%d retractcone=%d retractreplayed=%d",
		st.VarsCreated, st.VarsEliminated, st.Work, st.Redundant,
		st.CycleSearches, st.CycleVisits, st.CyclesFound, st.LSWork,
		st.LSPasses, st.LSConeVars, st.LSLevels, st.LSUnionHits, st.LSUnionMisses,
		st.PeriodicSweeps, st.SweepVisits, st.Retractions, st.RetractConeVars, st.RetractReplayed)
}
