package core

import (
	"fmt"
	"runtime/debug"
	"testing"
)

// TestDeepChainNoStackOverflow is the regression test for the cycle search
// recursing once per chain node: a strictly decreasing predecessor chain of
// 100k variables forces the closing-chain search to walk the entire chain.
// The explicit-stack search keeps its frames on the heap; the goroutine
// stack is capped tightly enough here that a one-call-per-node recursion
// would overflow (fatally), while the iterative search stays well inside.
func TestDeepChainNoStackOverflow(t *testing.T) {
	defer debug.SetMaxStack(debug.SetMaxStack(4 << 20))

	const n = 100_000
	s := NewSystem(Options{Form: IF, Order: OrderCreation, Cycles: CycleOnline, Seed: 1})
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
	}
	// v0 ⊆ v1 ⊆ ... ⊆ v(n-1): under creation order each edge is stored as
	// a predecessor edge of the higher variable, so the chain search from
	// v(n-1) descends through all n variables.
	for i := 0; i+1 < n; i++ {
		s.AddConstraint(vars[i], vars[i+1])
	}
	visitsBefore := s.Stats().CycleVisits
	// The closing edge v(n-1) ⊆ v0 triggers predChain(v(n-1), v0), which
	// must walk the whole decreasing chain and collapse the cycle.
	s.AddConstraint(vars[n-1], vars[0])

	st := s.Stats()
	if st.CyclesFound == 0 {
		t.Fatalf("deep chain cycle not found (searches=%d)", st.CycleSearches)
	}
	if got := st.CycleVisits - visitsBefore; got < n {
		t.Errorf("closing search visited %d nodes, want >= %d (did it walk the chain?)", got, n)
	}
	if st.VarsEliminated != n-1 {
		t.Errorf("eliminated %d variables, want %d", st.VarsEliminated, n-1)
	}
	w := s.Find(vars[0])
	for _, v := range []*Var{vars[1], vars[n/2], vars[n-1]} {
		if s.Find(v) != w {
			t.Fatalf("chain not fully collapsed onto one witness")
		}
	}
}
