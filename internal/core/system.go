package core

import (
	"fmt"
	"math/rand"
	"time"

	"polce/internal/core/graph"
)

// worklistSampleInterval is how many worklist steps pass between
// MetricsSink.WorklistLen samples.
const worklistSampleInterval = 64

// constraint is a pending inclusion awaiting resolution. A conSingle
// entry is the inclusion l ⊆ r. Under delta propagation (ReprCSR) the
// engine also pushes *range* entries, each standing for a batch of
// inclusions over a prefix of a term set:
//
//	conSrcRange:  from.PredS.List()[i] ⊆ r   for i in [0, hi)
//	conSinkRange: l ⊆ from.SuccK.List()[i]   for i in [0, hi)
//
// A range entry is sound because term sets are append-only (terms never
// forward and TermSet never compacts), so the window [0, hi) keeps
// denoting the same elements no matter how the set grows — only the
// *backing storage* may move, and the elements are re-read from the set
// at pop time. Draining a range pops one element per step, highest index
// first, re-pushing the narrowed window below any work the element
// generates — exactly the LIFO order the equivalent conSingle pushes
// would produce, which is what keeps the CSR path bit-identical to the
// hybrid path (same closure, same cycle collapses, same Stats).
type constraint struct {
	l, r Expr
	from *Var  // range entries: variable whose term set the window indexes
	hi   int32 // window [0, hi) into from's term set
	kind uint8 // conSingle, conSrcRange, conSinkRange
}

const (
	conSingle uint8 = iota
	conSrcRange
	conSinkRange
)

// System is an online inclusion-constraint solver: the resolution engine of
// the three-layer stack. It owns the worklist and the resolution rules
// (step/decompose/drain) and the closure rule; the variables and edges live
// in a graph.Store, and the representation choice and cycle policy are
// delegated to a Representation and a CycleStrategy (see strategy.go).
// Constraints added with AddConstraint are resolved to atomic form and the
// constraint graph is kept closed under the transitive closure rule after
// every update; with an online cycle policy, cyclic constraints are
// detected and collapsed at every variable-variable edge insertion.
//
// A System is not safe for concurrent use; internal/solver adds locking.
type System struct {
	opt Options
	rng *rand.Rand

	store graph.Store

	rep Representation
	cyc CycleStrategy

	// Capability flags cached off the concrete strategy so the engine's
	// hot paths keep one plain branch per site — exactly what the
	// pre-strategy code paid — instead of an interface call per step.
	cycDetect bool // strategy intercepts pending var-var edges (online)
	cycSweep  bool // strategy runs between worklist steps (periodic)
	cycReuse  bool // strategy can pre-merge at Fresh time (oracle)

	work  []constraint // LIFO worklist of pending constraints
	stats Stats

	// Delta-propagation state (ReprCSR; see the constraint type). Term-set
	// crossings push one range entry instead of one entry per term, so a
	// drain moves only the "new since last crossing" window across each
	// edge. deferredFree holds collapsed variables whose term sets pending
	// ranges may still reference; their storage is released when the
	// worklist empties.
	delta        bool
	deferredFree []*Var
	deltaRanges  int64 // range entries pushed
	deltaMaxSpan int   // widest range window pushed
	workHWM      int   // worklist high-water mark (entries, ranges count once)

	errs     []error
	errCount int

	skipClosure bool   // build the initial graph only (no closure, no cycles)
	drainSteps  uint64 // worklist steps processed; drives worklist sampling

	// Least-solution engine state (inductive form; see lsengine.go).
	// graphVersion is bumped only by mutations that can change a least
	// solution — new source edges, new predecessor edges, collapses — so
	// redundant re-additions leave the cache hot. lsVersion is the graph
	// version the last pass ran at, and lsPending seeds the next pass's
	// dirty cone.
	graphVersion uint64
	lsVersion    uint64
	lsEngine     *lsEngine
	lsPending    []*Var

	// Retraction bookkeeping (see retract.go); nil unless
	// Options.Retractable, so every hook site pays one branch.
	retract *retractState

	maxErr int
}

// NewSystem creates an empty constraint system with the given options.
func NewSystem(opt Options) *System {
	if opt.Cycles == CycleOracle && opt.Oracle == nil {
		panic("core: CycleOracle requires Options.Oracle")
	}
	maxErr := opt.MaxErrors
	if maxErr == 0 {
		maxErr = 16
	}
	s := &System{
		opt:    opt,
		rng:    rand.New(rand.NewSource(opt.Seed)),
		maxErr: maxErr,
		delta:  opt.Repr == ReprCSR,
	}
	if opt.Retractable {
		if opt.Cycles == CyclePeriodic {
			panic("core: Options.Retractable requires a local cycle policy; periodic sweeps couple batches through a global edge counter")
		}
		s.retract = newRetractState()
	}
	s.store.SetRepr(opt.Repr)
	if opt.Form == SF {
		s.rep = standardForm{}
	} else {
		s.rep = inductiveForm{}
	}
	switch opt.Cycles {
	case CycleOnline, CycleOnlineIncreasing:
		s.cyc = &onlineStrategy{sys: s, increasing: opt.Cycles == CycleOnlineIncreasing}
		s.cycDetect = true
	case CyclePeriodic:
		interval := opt.PeriodicInterval
		if interval <= 0 {
			interval = 1000
		}
		s.cyc = &periodicStrategy{sys: s, interval: int64(interval)}
		s.cycSweep = true
	case CycleOracle:
		s.cyc = &oracleStrategy{sys: s, oracle: opt.Oracle}
		s.cycReuse = true
	default:
		s.cyc = noneStrategy{}
	}
	return s
}

// NewInitialGraph creates a system that resolves constraints to atomic
// edges but performs no closure and no cycle elimination. The resulting
// graph is the paper's "initial graph", used for Table 1's initial node,
// edge and SCC statistics.
func NewInitialGraph(opt Options) *System {
	s := NewSystem(opt)
	s.skipClosure = true
	return s
}

// Form returns the graph representation in use.
func (s *System) Form() Form { return s.rep.Form() }

// Policy returns the cycle-elimination policy in use.
func (s *System) Policy() CyclePolicy { return s.cyc.Policy() }

// Fresh creates a new set variable. Under the oracle policy, a fresh
// variable whose creation index the oracle maps into an earlier strongly
// connected component is not allocated at all: the component's witness is
// returned instead, so cycles never materialise.
func (s *System) Fresh(name string) *Var {
	idx := s.store.NumCreated()
	if s.cycReuse {
		if v := s.cyc.ReuseVar(idx); v != nil {
			s.store.AddAlias(v)
			s.stats.VarsEliminated++
			return v
		}
	}
	var order uint64
	switch s.opt.Order {
	case OrderCreation:
		order = uint64(idx)
	case OrderReverseCreation:
		order = ^uint64(idx)
	default:
		order = s.rng.Uint64()
	}
	v := s.store.Fresh(name, order)
	s.stats.VarsCreated++
	return v
}

// AddConstraint adds l ⊆ r and immediately restores closure (this is the
// "online" in online cycle elimination: the graph is updated and searched
// at every constraint). The least-solution cache is invalidated by the
// edge insertions themselves (markLS), so a constraint whose edges are
// all already present leaves the cache hot.
func (s *System) AddConstraint(l, r Expr) {
	if s.retract != nil {
		if b := s.retract.active; b != nil {
			b.cons = append(b.cons, retractCon{l: l, r: r})
		}
	}
	s.push(l, r)
	s.drain(true)
}

func (s *System) push(l, r Expr) {
	s.work = append(s.work, constraint{l: l, r: r})
}

// pushSrcRange batches the inclusions from.PredS.List()[0:n] ⊆ target as
// one worklist entry (delta propagation; no-op window when n is zero).
func (s *System) pushSrcRange(from *Var, target Expr, n int) {
	if n == 0 {
		return
	}
	s.work = append(s.work, constraint{r: target, from: from, hi: int32(n), kind: conSrcRange})
	s.deltaRanges++
	if n > s.deltaMaxSpan {
		s.deltaMaxSpan = n
	}
}

// pushSinkRange batches the inclusions l ⊆ from.SuccK.List()[0:n].
func (s *System) pushSinkRange(l Expr, from *Var, n int) {
	if n == 0 {
		return
	}
	s.work = append(s.work, constraint{l: l, from: from, hi: int32(n), kind: conSinkRange})
	s.deltaRanges++
	if n > s.deltaMaxSpan {
		s.deltaMaxSpan = n
	}
}

// drain empties the worklist. topLevel marks drains triggered directly by
// AddConstraint: only those report ClosureDone, so offline collapse drains
// (CollapseCycles, periodic sweeps' re-inserted constraints) are not
// misattributed as closure time.
func (s *System) drain(topLevel bool) {
	report := topLevel && s.opt.Metrics != nil
	var t0 time.Time
	if report {
		t0 = time.Now()
	}
	for len(s.work) > 0 {
		if s.cycSweep {
			s.cyc.BeforeStep()
		}
		if len(s.work) > s.workHWM {
			s.workHWM = len(s.work)
		}
		if s.opt.Metrics != nil {
			s.drainSteps++
			if s.drainSteps%worklistSampleInterval == 0 {
				s.opt.Metrics.WorklistLen(len(s.work))
			}
		}
		c := s.work[len(s.work)-1]
		switch c.kind {
		case conSrcRange:
			// Consume the highest-indexed element by narrowing the window
			// in place at the top of the stack (popping it when this was
			// the last element), so work the element generates drains
			// before the rest of the window — the exact order the
			// equivalent per-term pushes would drain in, at one worklist
			// operation per element instead of a pop plus a re-push.
			if c.hi > 1 {
				s.work[len(s.work)-1].hi--
			} else {
				s.work = s.work[:len(s.work)-1]
			}
			s.step(c.from.PredS.List()[c.hi-1], c.r)
		case conSinkRange:
			if c.hi > 1 {
				s.work[len(s.work)-1].hi--
			} else {
				s.work = s.work[:len(s.work)-1]
			}
			s.step(c.l, c.from.SuccK.List()[c.hi-1])
		default:
			s.work = s.work[:len(s.work)-1]
			s.step(c.l, c.r)
		}
	}
	if s.delta {
		s.flushDelta()
	}
	if report {
		s.opt.Metrics.ClosureDone(time.Since(t0))
	}
}

// flushDelta runs at the end of every drain, when no range entry is
// pending: collapsed variables' storage (kept alive for in-flight ranges)
// is released, and the arenas are repacked into CSR layout if enough
// garbage has accumulated. This is the only point a compaction can run,
// which is what makes it safe — no worklist entry, iterator or chain
// search references arena storage here.
func (s *System) flushDelta() {
	if len(s.deferredFree) > 0 {
		for _, a := range s.deferredFree {
			a.ReleaseStorage()
		}
		s.deferredFree = s.deferredFree[:0]
	}
	s.store.MaybeCompactArenas()
}

// step resolves one constraint to atomic form, applying the resolution
// rules R of Figure 1 plus the set-operation rules of the full language:
// unions decompose on the left, intersections on the right.
func (s *System) step(l, r Expr) {
	if isZero(l) || isOne(r) {
		return // 0 ⊆ R and L ⊆ 1 always hold
	}
	if u, ok := l.(*Union); ok {
		for _, e := range u.Exprs() {
			s.push(e, r)
		}
		return
	}
	if i, ok := r.(*Intersection); ok {
		for _, e := range i.Exprs() {
			s.push(l, e)
		}
		return
	}
	if _, ok := r.(*Union); ok {
		s.failExpr("union on the right-hand side of", l, r)
		return
	}
	if _, ok := l.(*Intersection); ok {
		s.failExpr("intersection on the left-hand side of", l, r)
		return
	}
	switch lv := l.(type) {
	case *Var:
		lv = find(lv)
		switch rv := r.(type) {
		case *Var:
			s.addVarEdge(lv, find(rv))
		case *Term:
			s.addSink(lv, rv)
		default:
			panic(fmt.Sprintf("core: unknown rhs expression %T", r))
		}
	case *Term:
		switch rv := r.(type) {
		case *Var:
			s.addSource(lv, find(rv))
		case *Term:
			s.decompose(lv, rv)
		default:
			panic(fmt.Sprintf("core: unknown rhs expression %T", r))
		}
	default:
		panic(fmt.Sprintf("core: unknown lhs expression %T", l))
	}
}

// decompose applies the structural rule: c(a1..an) ⊆ c(b1..bn) holds iff
// ai ⊆ bi at covariant positions and bi ⊆ ai at contravariant ones.
// Distinct constructors are inconsistent.
func (s *System) decompose(l, r *Term) {
	c := l.Con()
	if c != r.Con() {
		s.fail(l, r)
		return
	}
	for i := 0; i < c.Arity(); i++ {
		if c.Variance(i) == Covariant {
			s.push(l.Arg(i), r.Arg(i))
		} else {
			s.push(r.Arg(i), l.Arg(i))
		}
	}
}

// fail records an inconsistent constraint between constructed terms.
func (s *System) fail(l, r *Term) {
	s.errCount++
	retained := len(s.errs) < s.maxErr
	if retained {
		s.errs = append(s.errs, inconsistentf(l, r, "core: inconsistent constraint %s ⊆ %s", l, r))
	}
	if s.retract != nil {
		s.retractErr(retained)
	}
}

// failExpr records an unsupported expression position.
func (s *System) failExpr(what string, l, r Expr) {
	s.errCount++
	retained := len(s.errs) < s.maxErr
	if retained {
		s.errs = append(s.errs, inconsistentf(l, r, "core: %s a constraint is not expressible: %s ⊆ %s", what, l, r))
	}
	if s.retract != nil {
		s.retractErr(retained)
	}
}

// Errors returns the retained inconsistency errors (bounded by
// Options.MaxErrors).
func (s *System) Errors() []error { return s.errs }

// ErrorCount returns the total number of inconsistencies seen, including
// dropped ones.
func (s *System) ErrorCount() int { return s.errCount }

// metricEdge reports one attempted edge addition to the metrics sink.
func (s *System) metricEdge(redundant bool) {
	if s.opt.Metrics != nil {
		s.opt.Metrics.EdgeAttempt(redundant)
	}
}

// addSource inserts the source edge t ⊆ x and pairs t with x's successors.
func (s *System) addSource(t *Term, x *Var) {
	s.stats.Work++
	if !x.PredS.Add(t) {
		s.stats.Redundant++
		s.metricEdge(true)
		if s.retract != nil {
			s.retractSrc(t, x, false)
		}
		return
	}
	if s.retract != nil {
		s.retractSrc(t, x, true)
	}
	s.markLS(x)
	s.metricEdge(false)
	if s.opt.Observer != nil {
		s.emit(Event{Kind: EventSourceEdge, From: t, To: x})
	}
	if s.skipClosure {
		return
	}
	s.store.Clean(x)
	for _, y := range x.SuccV.List() {
		s.push(t, find(y))
	}
	if s.delta {
		s.pushSinkRange(t, x, x.SuccK.Size())
	} else {
		for _, k := range x.SuccK.List() {
			s.push(t, k)
		}
	}
}

// addSink inserts the sink edge x ⊆ t and pairs x's predecessors with t.
func (s *System) addSink(x *Var, t *Term) {
	s.stats.Work++
	if !x.SuccK.Add(t) {
		s.stats.Redundant++
		s.metricEdge(true)
		if s.retract != nil {
			s.retractSink(x, t, false)
		}
		return
	}
	if s.retract != nil {
		s.retractSink(x, t, true)
	}
	s.metricEdge(false)
	if s.opt.Observer != nil {
		s.emit(Event{Kind: EventSinkEdge, From: x, To: t})
	}
	if s.skipClosure {
		return
	}
	s.store.Clean(x)
	if s.delta {
		s.pushSrcRange(x, t, x.PredS.Size())
	} else {
		for _, src := range x.PredS.List() {
			s.push(src, t)
		}
	}
	for _, v := range x.PredV.List() {
		s.push(find(v), t)
	}
}

// addVarEdge inserts the variable-variable constraint x ⊆ y. The edge is
// oriented by the Representation: standard form always stores it as a
// successor edge of x; inductive form stores it on the higher-ordered
// endpoint. With an online policy the strategy's closing-chain search runs
// first and, if a cycle is found, the whole chain is collapsed instead of
// inserting the edge.
func (s *System) addVarEdge(x, y *Var) {
	if x == y {
		return // self-inclusion is trivial
	}
	s.store.Clean(x)
	s.store.Clean(y)
	asSucc := s.rep.StoreAsSucc(x, y)
	s.stats.Work++
	if asSucc && x.SuccV.Has(y) || !asSucc && y.PredV.Has(x) {
		s.stats.Redundant++
		s.metricEdge(true)
		if s.retract != nil {
			s.retractVarEdge(x, y, false)
		}
		return
	}
	if s.retract != nil {
		s.retractVarEdge(x, y, true)
	}
	s.metricEdge(false)
	if !s.skipClosure && s.cycDetect {
		if s.cyc.PendingEdge(x, y, asSucc) {
			return
		}
	}
	if s.opt.Observer != nil {
		s.emit(Event{Kind: EventVarEdge, From: x, To: y})
	}
	if asSucc {
		x.SuccV.Add(y)
		if s.skipClosure {
			return
		}
		if s.delta {
			s.pushSrcRange(x, y, x.PredS.Size())
		} else {
			for _, src := range x.PredS.List() {
				s.push(src, y)
			}
		}
		for _, v := range x.PredV.List() {
			s.push(find(v), y)
		}
	} else {
		y.PredV.Add(x)
		s.markLS(y)
		if s.skipClosure {
			return
		}
		for _, w := range y.SuccV.List() {
			s.push(x, find(w))
		}
		if s.delta {
			s.pushSinkRange(x, y, y.SuccK.Size())
		} else {
			for _, k := range y.SuccK.List() {
				s.push(x, k)
			}
		}
	}
}

// Stats returns the solver's counters so far.
func (s *System) Stats() Stats {
	st := s.stats
	return st
}

// StorageStats describes the storage backend and drain shape: which
// representation is active, the arena's edge-block state (zero under
// ReprHybrid), the worklist high-water mark, and how the delta worklist
// batched term crossings. These are deliberately *not* part of Stats —
// Stats is bit-identical across representations; this is where the
// representations are allowed to differ.
type StorageStats struct {
	// Repr is the active representation's flag spelling ("hybrid", "csr").
	Repr string `json:"repr"`
	// Arena is the flat-memory backend state; see graph.ArenaStats.
	Arena graph.ArenaStats `json:"arena"`
	// WorklistHWM is the worklist's high-water mark in entries (a range
	// entry counts once however wide its window).
	WorklistHWM int `json:"worklist_hwm"`
	// DeltaRanges counts range entries pushed; DeltaMaxSpan is the widest
	// window among them. Both zero under ReprHybrid.
	DeltaRanges  int64 `json:"delta_ranges"`
	DeltaMaxSpan int   `json:"delta_max_span"`
}

// StorageStats reports the storage backend and drain-shape counters.
func (s *System) StorageStats() StorageStats {
	return StorageStats{
		Repr:         s.store.Repr().String(),
		Arena:        s.store.ArenaStats(),
		WorklistHWM:  s.workHWM,
		DeltaRanges:  s.deltaRanges,
		DeltaMaxSpan: s.deltaMaxSpan,
	}
}

// Version returns the least-solution epoch of the graph: it advances
// exactly when a mutation that can change some least solution is applied
// (a new source edge, a new predecessor edge, a collapse), and holds still
// across redundant re-additions. Snapshot layers key their caches on it.
func (s *System) Version() uint64 { return s.graphVersion }

// NumCreated returns the number of Fresh calls so far (the creation-index
// space, shared across oracle-aligned runs).
func (s *System) NumCreated() int { return s.store.NumCreated() }

// CreatedVar returns the variable handed out for creation index i.
func (s *System) CreatedVar(i int) *Var { return s.store.CreatedVar(i) }

// Find returns the canonical representative of v (its cycle witness once v
// has been eliminated).
func (s *System) Find(v *Var) *Var { return find(v) }

// CanonicalVars returns the canonical (non-eliminated) variables in
// creation order.
func (s *System) CanonicalVars() []*Var { return s.store.CanonicalVars() }

// EdgeCounts tallies the distinct edges in the current graph: variable →
// variable edges (counted once regardless of orientation), source edges
// c(...) ⊆ X and sink edges X ⊆ c(...).
func (s *System) EdgeCounts() (varVar, source, sink int) {
	return s.store.EdgeCounts()
}

// TotalEdges returns the total number of distinct edges in the graph.
func (s *System) TotalEdges() int {
	a, b, c := s.EdgeCounts()
	return a + b + c
}

// VarAdjacency builds, over the canonical variables vars, the directed
// inclusion adjacency: an edge u → w meaning u ⊆ w. The returned index
// maps each canonical variable to its position in vars.
func (s *System) VarAdjacency(vars []*Var) (adj [][]int, index map[*Var]int) {
	return s.store.VarAdjacency(vars)
}
