package core

import (
	"fmt"
	"math/rand"
	"time"
)

// worklistSampleInterval is how many worklist steps pass between
// MetricsSink.WorklistLen samples.
const worklistSampleInterval = 64

// constraint is a pending inclusion l ⊆ r awaiting resolution.
type constraint struct {
	l, r Expr
}

// System is an online inclusion-constraint solver. Constraints added with
// AddConstraint are resolved to atomic form and the constraint graph is
// kept closed under the transitive closure rule after every update; with an
// online cycle policy, cyclic constraints are detected and collapsed at
// every variable-variable edge insertion.
//
// A System is not safe for concurrent use.
type System struct {
	opt Options
	rng *rand.Rand

	vars     []*Var // live variables in creation order, lazily compacted
	deadVars int    // eliminated variables still present in vars
	created  []*Var // creation-index → variable handed out (oracle aliases included)

	work  []constraint // LIFO worklist of pending constraints
	stats Stats

	errs     []error
	errCount int

	searchEpoch uint64       // current cycle-search mark
	mergeEpoch  uint64       // bumped on every collapse; drives lazy compaction
	path        []*Var       // scratch: nodes on the chain found by the last search
	frames      []chainFrame // scratch: explicit stack for chainSearch

	skipClosure bool   // build the initial graph only (no closure, no cycles)
	lastSweep   int64  // Work count at the last periodic sweep
	drainSteps  uint64 // worklist steps processed; drives worklist sampling

	// Least-solution engine state (inductive form; see lsengine.go).
	// graphVersion is bumped only by mutations that can change a least
	// solution — new source edges, new predecessor edges, collapses — so
	// redundant re-additions leave the cache hot. lsVersion is the graph
	// version the last pass ran at, and lsPending seeds the next pass's
	// dirty cone.
	graphVersion uint64
	lsVersion    uint64
	lsEngine     *lsEngine
	lsPending    []*Var

	maxErr int
}

// NewSystem creates an empty constraint system with the given options.
func NewSystem(opt Options) *System {
	if opt.Cycles == CycleOracle && opt.Oracle == nil {
		panic("core: CycleOracle requires Options.Oracle")
	}
	maxErr := opt.MaxErrors
	if maxErr == 0 {
		maxErr = 16
	}
	return &System{
		opt:    opt,
		rng:    rand.New(rand.NewSource(opt.Seed)),
		maxErr: maxErr,
	}
}

// NewInitialGraph creates a system that resolves constraints to atomic
// edges but performs no closure and no cycle elimination. The resulting
// graph is the paper's "initial graph", used for Table 1's initial node,
// edge and SCC statistics.
func NewInitialGraph(opt Options) *System {
	s := NewSystem(opt)
	s.skipClosure = true
	return s
}

// Form returns the graph representation in use.
func (s *System) Form() Form { return s.opt.Form }

// Policy returns the cycle-elimination policy in use.
func (s *System) Policy() CyclePolicy { return s.opt.Cycles }

// Fresh creates a new set variable. Under the oracle policy, a fresh
// variable whose creation index the oracle maps into an earlier strongly
// connected component is not allocated at all: the component's witness is
// returned instead, so cycles never materialise.
func (s *System) Fresh(name string) *Var {
	idx := len(s.created)
	if s.opt.Cycles == CycleOracle {
		if w := s.opt.Oracle.witnessOf(idx); w >= 0 && w < idx {
			v := find(s.created[w])
			s.created = append(s.created, v)
			s.stats.VarsEliminated++
			return v
		}
	}
	var order uint64
	switch s.opt.Order {
	case OrderCreation:
		order = uint64(idx)
	case OrderReverseCreation:
		order = ^uint64(idx)
	default:
		order = s.rng.Uint64()
	}
	v := &Var{name: name, id: idx, order: order}
	s.created = append(s.created, v)
	s.vars = append(s.vars, v)
	s.stats.VarsCreated++
	return v
}

// before reports whether a precedes b in the total order o(·). Random
// 64-bit orders collide with negligible probability, but creation index
// breaks ties so the order is always total.
func before(a, b *Var) bool {
	if a.order != b.order {
		return a.order < b.order
	}
	return a.id < b.id
}

// AddConstraint adds l ⊆ r and immediately restores closure (this is the
// "online" in online cycle elimination: the graph is updated and searched
// at every constraint). The least-solution cache is invalidated by the
// edge insertions themselves (markLS), so a constraint whose edges are
// all already present leaves the cache hot.
func (s *System) AddConstraint(l, r Expr) {
	s.push(l, r)
	s.drain(true)
}

func (s *System) push(l, r Expr) {
	s.work = append(s.work, constraint{l, r})
}

// drain empties the worklist. topLevel marks drains triggered directly by
// AddConstraint: only those report ClosureDone, so offline collapse drains
// (CollapseCycles, periodic sweeps' re-inserted constraints) are not
// misattributed as closure time.
func (s *System) drain(topLevel bool) {
	report := topLevel && s.opt.Metrics != nil
	var t0 time.Time
	if report {
		t0 = time.Now()
	}
	for len(s.work) > 0 {
		if s.opt.Cycles == CyclePeriodic && s.stats.Work-s.lastSweep >= int64(s.periodicInterval()) {
			s.lastSweep = s.stats.Work
			s.periodicSweep()
		}
		if s.opt.Metrics != nil {
			s.drainSteps++
			if s.drainSteps%worklistSampleInterval == 0 {
				s.opt.Metrics.WorklistLen(len(s.work))
			}
		}
		c := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		s.step(c.l, c.r)
	}
	if report {
		s.opt.Metrics.ClosureDone(time.Since(t0))
	}
}

// periodicInterval returns the configured sweep interval (default 1000).
func (s *System) periodicInterval() int {
	if s.opt.PeriodicInterval > 0 {
		return s.opt.PeriodicInterval
	}
	return 1000
}

// collapseSCCGroups runs Tarjan over the current variable-variable graph
// and collapses every non-trivial strongly connected component onto its
// witness. It is the shared group-and-collapse core of periodicSweep and
// CollapseCycles, so their accounting cannot drift. It returns the number
// of variables examined and the number merged away.
func (s *System) collapseSCCGroups() (visited, collapsed int) {
	vars := s.CanonicalVars()
	comp, count, _ := sccStrong(s, vars)
	groups := make(map[int][]*Var)
	for i, c := range comp {
		groups[c] = append(groups[c], vars[i])
	}
	for c := 0; c < count; c++ {
		if g := groups[c]; len(g) >= 2 {
			s.collapse(g)
			collapsed += len(g) - 1
		}
	}
	return len(vars), collapsed
}

// periodicSweep runs one offline elimination pass (the prior-work
// strategy): Tarjan over the current variable-variable graph, collapsing
// every non-trivial component. Runs between worklist steps so no adjacency
// iteration is in flight.
func (s *System) periodicSweep() {
	visited, collapsed := s.collapseSCCGroups()
	s.stats.PeriodicSweeps++
	s.stats.SweepVisits += int64(visited)
	s.emit(Event{Kind: EventSweep, Collapsed: collapsed})
}

// step resolves one constraint to atomic form, applying the resolution
// rules R of Figure 1 plus the set-operation rules of the full language:
// unions decompose on the left, intersections on the right.
func (s *System) step(l, r Expr) {
	if isZero(l) || isOne(r) {
		return // 0 ⊆ R and L ⊆ 1 always hold
	}
	if u, ok := l.(*Union); ok {
		for _, e := range u.exprs {
			s.push(e, r)
		}
		return
	}
	if i, ok := r.(*Intersection); ok {
		for _, e := range i.exprs {
			s.push(l, e)
		}
		return
	}
	if _, ok := r.(*Union); ok {
		s.failExpr("union on the right-hand side of", l, r)
		return
	}
	if _, ok := l.(*Intersection); ok {
		s.failExpr("intersection on the left-hand side of", l, r)
		return
	}
	switch lv := l.(type) {
	case *Var:
		lv = find(lv)
		switch rv := r.(type) {
		case *Var:
			s.addVarEdge(lv, find(rv))
		case *Term:
			s.addSink(lv, rv)
		default:
			panic(fmt.Sprintf("core: unknown rhs expression %T", r))
		}
	case *Term:
		switch rv := r.(type) {
		case *Var:
			s.addSource(lv, find(rv))
		case *Term:
			s.decompose(lv, rv)
		default:
			panic(fmt.Sprintf("core: unknown rhs expression %T", r))
		}
	default:
		panic(fmt.Sprintf("core: unknown lhs expression %T", l))
	}
}

// decompose applies the structural rule: c(a1..an) ⊆ c(b1..bn) holds iff
// ai ⊆ bi at covariant positions and bi ⊆ ai at contravariant ones.
// Distinct constructors are inconsistent.
func (s *System) decompose(l, r *Term) {
	if l.con != r.con {
		s.fail(l, r)
		return
	}
	for i, a := range l.args {
		if l.con.sig[i] == Covariant {
			s.push(a, r.args[i])
		} else {
			s.push(r.args[i], a)
		}
	}
}

// fail records an inconsistent constraint between constructed terms.
func (s *System) fail(l, r *Term) {
	s.errCount++
	if len(s.errs) < s.maxErr {
		s.errs = append(s.errs, fmt.Errorf("core: inconsistent constraint %s ⊆ %s", l, r))
	}
}

// failExpr records an unsupported expression position.
func (s *System) failExpr(what string, l, r Expr) {
	s.errCount++
	if len(s.errs) < s.maxErr {
		s.errs = append(s.errs, fmt.Errorf("core: %s a constraint is not expressible: %s ⊆ %s", what, l, r))
	}
}

// Errors returns the retained inconsistency errors (bounded by
// Options.MaxErrors).
func (s *System) Errors() []error { return s.errs }

// ErrorCount returns the total number of inconsistencies seen, including
// dropped ones.
func (s *System) ErrorCount() int { return s.errCount }

// clean lazily canonicalises x's variable adjacency after collapses.
func (s *System) clean(x *Var) {
	if x.visitedClean == s.mergeEpoch {
		return
	}
	x.visitedClean = s.mergeEpoch
	x.predV.compact(x)
	x.succV.compact(x)
}

// metricEdge reports one attempted edge addition to the metrics sink.
func (s *System) metricEdge(redundant bool) {
	if s.opt.Metrics != nil {
		s.opt.Metrics.EdgeAttempt(redundant)
	}
}

// addSource inserts the source edge t ⊆ x and pairs t with x's successors.
func (s *System) addSource(t *Term, x *Var) {
	s.stats.Work++
	if !x.predS.add(t) {
		s.stats.Redundant++
		s.metricEdge(true)
		return
	}
	s.markLS(x)
	s.metricEdge(false)
	if s.opt.Observer != nil {
		s.emit(Event{Kind: EventSourceEdge, From: t, To: x})
	}
	if s.skipClosure {
		return
	}
	s.clean(x)
	for _, y := range x.succV.list {
		s.push(t, find(y))
	}
	for _, k := range x.succK.list {
		s.push(t, k)
	}
}

// addSink inserts the sink edge x ⊆ t and pairs x's predecessors with t.
func (s *System) addSink(x *Var, t *Term) {
	s.stats.Work++
	if !x.succK.add(t) {
		s.stats.Redundant++
		s.metricEdge(true)
		return
	}
	s.metricEdge(false)
	if s.opt.Observer != nil {
		s.emit(Event{Kind: EventSinkEdge, From: x, To: t})
	}
	if s.skipClosure {
		return
	}
	s.clean(x)
	for _, src := range x.predS.list {
		s.push(src, t)
	}
	for _, v := range x.predV.list {
		s.push(find(v), t)
	}
}

// addVarEdge inserts the variable-variable constraint x ⊆ y. The edge is
// oriented by the representation: standard form always stores it as a
// successor edge of x; inductive form stores it on the higher-ordered
// endpoint. With an online policy the closing-chain search runs first and,
// if a cycle is found, the whole chain is collapsed instead of inserting
// the edge.
func (s *System) addVarEdge(x, y *Var) {
	if x == y {
		return // self-inclusion is trivial
	}
	s.clean(x)
	s.clean(y)
	asSucc := s.opt.Form == SF || before(y, x)
	s.stats.Work++
	if asSucc && x.succV.has(y) || !asSucc && y.predV.has(x) {
		s.stats.Redundant++
		s.metricEdge(true)
		return
	}
	s.metricEdge(false)
	if !s.skipClosure && (s.opt.Cycles == CycleOnline || s.opt.Cycles == CycleOnlineIncreasing) {
		if s.detectAndCollapse(x, y, asSucc) {
			return
		}
	}
	if s.opt.Observer != nil {
		s.emit(Event{Kind: EventVarEdge, From: x, To: y})
	}
	if asSucc {
		x.succV.add(y)
		if s.skipClosure {
			return
		}
		for _, src := range x.predS.list {
			s.push(src, y)
		}
		for _, v := range x.predV.list {
			s.push(find(v), y)
		}
	} else {
		y.predV.add(x)
		s.markLS(y)
		if s.skipClosure {
			return
		}
		for _, w := range y.succV.list {
			s.push(x, find(w))
		}
		for _, k := range y.succK.list {
			s.push(x, k)
		}
	}
}

// Stats returns the solver's counters so far.
func (s *System) Stats() Stats {
	st := s.stats
	return st
}

// NumCreated returns the number of Fresh calls so far (the creation-index
// space, shared across oracle-aligned runs).
func (s *System) NumCreated() int { return len(s.created) }

// CreatedVar returns the variable handed out for creation index i.
func (s *System) CreatedVar(i int) *Var { return s.created[i] }

// Find returns the canonical representative of v (its cycle witness once v
// has been eliminated).
func (s *System) Find(v *Var) *Var { return find(v) }

// compactLive drops eliminated variables from s.vars once a quarter of the
// list is dead, so whole-graph walks cost O(live), not O(ever created).
// Compaction preserves creation order and is amortised O(1) per
// elimination. Callers must not be mid-iteration over s.vars.
func (s *System) compactLive() {
	if s.deadVars == 0 || s.deadVars < len(s.vars)/4 {
		return
	}
	out := s.vars[:0]
	for _, v := range s.vars {
		if v.parent == nil {
			out = append(out, v)
		}
	}
	s.vars = out
	s.deadVars = 0
}

// CanonicalVars returns the canonical (non-eliminated) variables in
// creation order.
func (s *System) CanonicalVars() []*Var {
	s.compactLive()
	out := make([]*Var, 0, len(s.vars)-s.deadVars)
	for _, v := range s.vars {
		if v.parent == nil {
			out = append(out, v)
		}
	}
	return out
}

// EdgeCounts tallies the distinct edges in the current graph: variable →
// variable edges (counted once regardless of orientation), source edges
// c(...) ⊆ X and sink edges X ⊆ c(...). Stale aliases left by collapses are
// canonicalised before counting.
func (s *System) EdgeCounts() (varVar, source, sink int) {
	s.compactLive()
	for _, v := range s.vars {
		if v.parent != nil {
			continue
		}
		s.clean(v)
		varVar += v.predV.size() + v.succV.size()
		source += v.predS.size()
		sink += v.succK.size()
	}
	return varVar, source, sink
}

// TotalEdges returns the total number of distinct edges in the graph.
func (s *System) TotalEdges() int {
	a, b, c := s.EdgeCounts()
	return a + b + c
}

// VarAdjacency builds, over the canonical variables vars, the directed
// inclusion adjacency: an edge u → w meaning u ⊆ w, combining successor
// edges (stored at u) and predecessor edges (stored at w). The returned
// index maps each canonical variable to its position in vars.
func (s *System) VarAdjacency(vars []*Var) (adj [][]int, index map[*Var]int) {
	index = make(map[*Var]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	adj = make([][]int, len(vars))
	for i, v := range vars {
		s.clean(v)
		for _, w := range v.succV.list {
			if j, ok := index[find(w)]; ok {
				adj[i] = append(adj[i], j)
			}
		}
		for _, p := range v.predV.list {
			if j, ok := index[find(p)]; ok {
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj, index
}
