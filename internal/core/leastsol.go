package core

import "sort"

// This file computes the least solution LS of a closed constraint system.
//
// Under standard form the least solution is explicit: the closure rule has
// already propagated every source forward, so LS(X) is exactly X's source
// predecessor list.
//
// Under inductive form the least solution is recovered by equation (1) of
// the paper:
//
//	LS(Y) = { c(...) | c(...) ⋯→ Y } ∪ ⋃ { LS(X) | X ⋯→ Y }
//
// Every variable predecessor X of Y satisfies o(X) < o(Y), so a single pass
// over the variables in increasing order computes LS for every variable.
// As in the paper, inductive-form experiment timings always include this
// pass.

// ComputeLeastSolutions materialises the least solution for every
// variable. It is a no-op under standard form, where the closed graph is
// already the least solution. The result is cached until the next
// constraint is added.
func (s *System) ComputeLeastSolutions() {
	if s.opt.Form == SF {
		return
	}
	if !s.lsDirty && s.ls != nil {
		return
	}
	vars := s.CanonicalVars()
	sort.Slice(vars, func(i, j int) bool { return before(vars[i], vars[j]) })

	s.ls = make(map[*Var][]*Term, len(vars))
	for _, y := range vars {
		s.clean(y)
		set := make(map[*Term]struct{}, y.predS.size())
		list := make([]*Term, 0, y.predS.size())
		for _, t := range y.predS.list {
			if _, ok := set[t]; !ok {
				set[t] = struct{}{}
				list = append(list, t)
				s.stats.LSWork++
			}
		}
		for _, x := range y.predV.list {
			for _, t := range s.ls[find(x)] {
				if _, ok := set[t]; !ok {
					set[t] = struct{}{}
					list = append(list, t)
					s.stats.LSWork++
				}
			}
		}
		s.ls[y] = list
	}
	s.lsDirty = false
}

// LeastSolution returns the source terms in the least solution of v, in
// first-reached order. Under inductive form this triggers (or reuses) the
// least-solution pass; under standard form it reads the closed graph
// directly. The returned slice must not be modified.
func (s *System) LeastSolution(v *Var) []*Term {
	v = find(v)
	if s.opt.Form == SF {
		return v.predS.list
	}
	s.ComputeLeastSolutions()
	return s.ls[v]
}
