package core

import "sort"

// This file computes the least solution LS of a closed constraint system.
//
// Under standard form the least solution is explicit: the closure rule has
// already propagated every source forward, so LS(X) is exactly X's source
// predecessor list.
//
// Under inductive form the least solution is recovered by equation (1) of
// the paper:
//
//	LS(Y) = { c(...) | c(...) ⋯→ Y } ∪ ⋃ { LS(X) | X ⋯→ Y }
//
// Every variable predecessor X of Y satisfies o(X) < o(Y), so a pass over
// the variables in increasing order computes LS for every variable. As in
// the paper, inductive-form experiment timings always include this pass.
//
// The pass itself is implemented by the engine in lsengine.go: interned
// shared term-sets combined by memoized unions, evaluated level-parallel
// over the predecessor DAG, and recomputed incrementally for only the
// dirty cone after an update. The straightforward algorithm is retained
// below as leastSolutionsReference, the oracle the engine is
// property-tested against.

// ComputeLeastSolutions materialises the least solution for every
// variable. It is a no-op under standard form, where the closed graph is
// already the least solution, and a no-op under inductive form while the
// cache is hot: the cache is keyed on a graph version bumped only by real
// edge insertions and collapses, so redundant constraint re-additions do
// not trigger a pass, and after real updates only the affected cone is
// recomputed.
// LSCacheState describes the least-solution cache for introspection
// surfaces: whether a LeastSolution read right now would be answered
// without a pass, and how much interned state the engine holds.
type LSCacheState struct {
	// Hot reports that the cache is valid at the current graph version
	// (standard form is always "hot": the closed graph is the solution).
	Hot bool `json:"hot"`
	// Passes is the number of engine passes run so far.
	Passes int64 `json:"passes"`
	// InternedNodes is the number of hash-consed term-set nodes alive in
	// the engine's intern table; MemoEntries the memoized-union entries.
	// Both are zero under standard form or before the first pass.
	InternedNodes int `json:"interned_nodes"`
	MemoEntries   int `json:"memo_entries"`
	// PendingDirty is the number of variables marked dirty since the last
	// pass — the seed of the next pass's cone.
	PendingDirty int `json:"pending_dirty"`
}

// LSCacheState reports the least-solution cache's current state.
func (s *System) LSCacheState() LSCacheState {
	st := LSCacheState{
		Hot:          s.opt.Form == SF || (s.lsEngine != nil && s.lsVersion == s.graphVersion),
		Passes:       s.stats.LSPasses,
		PendingDirty: len(s.lsPending),
	}
	if e := s.lsEngine; e != nil {
		e.mu.Lock()
		for _, bucket := range e.interned {
			st.InternedNodes += len(bucket)
		}
		st.MemoEntries = len(e.memo)
		e.mu.Unlock()
	}
	return st
}

func (s *System) ComputeLeastSolutions() {
	if s.opt.Form == SF {
		return
	}
	if s.lsEngine != nil && s.lsVersion == s.graphVersion {
		return
	}
	s.runLeastSolutionPass()
}

// LeastSolution returns the source terms in the least solution of v, in
// first-reached order. Under inductive form this triggers (or reuses) the
// least-solution pass; under standard form it reads the closed graph
// directly. The returned slice must not be modified.
func (s *System) LeastSolution(v *Var) []*Term {
	v = find(v)
	if s.opt.Form == SF {
		return v.PredS.List()
	}
	s.ComputeLeastSolutions()
	n := lsNodeOf(v)
	if n == nil {
		return nil
	}
	return n.terms
}

// leastSolutionsReference is the naive least-solution computation the
// engine replaced: one fresh map and slice per variable, every term
// copied, no caching. It is deliberately kept (not exported) as the
// reference implementation for the engine's property tests — the engine
// must produce exactly these slices, order included, for every canonical
// variable.
func (s *System) leastSolutionsReference() map[*Var][]*Term {
	if s.opt.Form == SF {
		out := make(map[*Var][]*Term)
		for _, v := range s.CanonicalVars() {
			out[v] = v.PredS.List()
		}
		return out
	}
	vars := s.CanonicalVars()
	sort.Slice(vars, func(i, j int) bool { return before(vars[i], vars[j]) })
	ls := make(map[*Var][]*Term, len(vars))
	for _, y := range vars {
		s.store.Clean(y)
		set := make(map[*Term]struct{}, y.PredS.Size())
		list := make([]*Term, 0, y.PredS.Size())
		for _, t := range y.PredS.List() {
			if _, ok := set[t]; !ok {
				set[t] = struct{}{}
				list = append(list, t)
			}
		}
		for _, x := range y.PredV.List() {
			for _, t := range ls[find(x)] {
				if _, ok := set[t]; !ok {
					set[t] = struct{}{}
					list = append(list, t)
				}
			}
		}
		ls[y] = list
	}
	return ls
}
