package core

import (
	"fmt"
	"strings"
	"testing"
)

func TestPeriodicEliminatesCycles(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ops := genScript(seed, 80, 300)
		ref, refVars := runScript(Options{Form: SF, Cycles: CycleNone, Seed: seed}, ops)
		for _, form := range []Form{SF, IF} {
			s, vars := runScript(Options{Form: form, Cycles: CyclePeriodic, Seed: seed, PeriodicInterval: 50}, ops)
			st := s.Stats()
			if st.PeriodicSweeps == 0 {
				t.Fatalf("seed %d %v: no sweeps ran", seed, form)
			}
			// Correctness: least solutions must match the plain run.
			for i, v := range vars {
				want := lsNames(ref, refVars[i])
				got := lsNames(s, v)
				if fmt.Sprint(want) != fmt.Sprint(got) {
					t.Fatalf("seed %d %v: LS mismatch at v%d\n got %v\nwant %v", seed, form, i, got, want)
				}
			}
		}
	}
}

func TestPeriodicFindsAllCyclesEventually(t *testing.T) {
	// With a small interval, periodic sweeps catch every cyclic variable
	// that has materialised — unlike the partial online search, offline
	// Tarjan is complete over the current graph.
	ops := genScript(3, 100, 400)
	s, _ := runScript(Options{Form: IF, Cycles: CyclePeriodic, Seed: 3, PeriodicInterval: 25}, ops)
	inCycles, _ := s.CycleClassStats()
	// After the last sweep a few new cycles may have formed, so allow a
	// small tail, but the bulk must be eliminated.
	if elim := s.Stats().VarsEliminated; inCycles > 0 && elim == 0 {
		t.Fatalf("periodic eliminated nothing (%d cyclic vars)", inCycles)
	}
}

func TestPeriodicIntervalControlsSweepCount(t *testing.T) {
	ops := genScript(5, 80, 300)
	frequent, _ := runScript(Options{Form: IF, Cycles: CyclePeriodic, Seed: 5, PeriodicInterval: 20}, ops)
	rare, _ := runScript(Options{Form: IF, Cycles: CyclePeriodic, Seed: 5, PeriodicInterval: 2000}, ops)
	if frequent.Stats().PeriodicSweeps <= rare.Stats().PeriodicSweeps {
		t.Errorf("sweeps: frequent=%d rare=%d", frequent.Stats().PeriodicSweeps, rare.Stats().PeriodicSweeps)
	}
	if frequent.Stats().SweepVisits <= rare.Stats().SweepVisits {
		t.Errorf("sweep visits should grow with frequency: %d vs %d",
			frequent.Stats().SweepVisits, rare.Stats().SweepVisits)
	}
}

func TestPeriodicDefaultInterval(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CyclePeriodic, Seed: 1})
	p, ok := s.cyc.(*periodicStrategy)
	if !ok {
		t.Fatalf("periodic system uses strategy %T", s.cyc)
	}
	if p.interval != 1000 {
		t.Errorf("default interval = %d, want 1000", p.interval)
	}
}

func TestObserverEvents(t *testing.T) {
	var kinds []EventKind
	var collapsedVars int
	s := NewSystem(Options{
		Form: IF, Cycles: CycleOnline, Seed: 2,
		Observer: func(ev Event) {
			kinds = append(kinds, ev.Kind)
			if ev.Kind == EventCycle {
				collapsedVars += len(ev.Vars)
				if ev.Witness == nil {
					t.Error("cycle event without witness")
				}
			}
		},
	})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	s.AddConstraint(y, x)

	counts := map[EventKind]int{}
	for _, k := range kinds {
		counts[k]++
	}
	if counts[EventSourceEdge] == 0 {
		t.Error("no source-edge event")
	}
	if counts[EventVarEdge] == 0 {
		t.Error("no var-edge event")
	}
	if counts[EventCycle] != 1 || collapsedVars != 1 {
		t.Errorf("cycle events=%d collapsed=%d, want 1/1", counts[EventCycle], collapsedVars)
	}
}

func TestObserverSweepEvent(t *testing.T) {
	sweeps := 0
	opt := Options{
		Form: SF, Cycles: CyclePeriodic, Seed: 3, PeriodicInterval: 10,
		Observer: func(ev Event) {
			if ev.Kind == EventSweep {
				sweeps++
			}
		},
	}
	s := NewSystem(opt)
	vars := make([]*Var, 20)
	for i := range vars {
		vars[i] = s.Fresh(fmt.Sprintf("v%d", i))
	}
	a := atoms(1)
	for i := range vars {
		s.AddConstraint(a[0], vars[i])
		s.AddConstraint(vars[i], vars[(i+1)%len(vars)])
	}
	if sweeps == 0 {
		t.Error("no sweep events observed")
	}
}

func TestEventKindString(t *testing.T) {
	for _, k := range []EventKind{EventSourceEdge, EventSinkEdge, EventVarEdge, EventCycle, EventSweep} {
		if k.String() == "?" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	if EventKind(99).String() != "?" {
		t.Error("unknown kind should render ?")
	}
}

func TestWriteDOT(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 4})
	a := atoms(1)
	box := NewConstructor("box", Covariant)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	s.AddConstraint(y, NewTerm(box, x))
	var sb strings.Builder
	if err := s.WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"digraph constraints", "\"X\"", "\"Y\"", "\"a0\"", "->", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var sb2 strings.Builder
	if err := s.WriteDOT(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("DOT output not deterministic")
	}
}

func TestCurrentGraphStats(t *testing.T) {
	s := NewSystem(Options{Form: SF, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	st := s.CurrentGraphStats()
	if st.Vars != 2 || st.VarVarEdges != 1 || st.SourceEdges != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.Density <= 0 {
		t.Errorf("density = %v", st.Density)
	}
}

// The Theorem 5.2 density premise (closed graphs near k ≈ 2) is checked
// on realistic points-to workloads in internal/andersen's tests; the
// synthetic scripts here are deliberately atom-dense and not
// representative.
