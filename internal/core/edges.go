package core

// varSet is an insertion-ordered set of variables. The slice preserves
// insertion order so that graph closure — and therefore cycle detection,
// which is sensitive to the order in which edges appear — is deterministic
// for a deterministic client. After cycles are collapsed, entries may
// become stale (their variable forwarded to a witness); stale entries are
// canonicalised lazily by compact.
type varSet struct {
	list []*Var
	set  map[*Var]struct{}
}

// add inserts v and reports whether it was new.
func (s *varSet) add(v *Var) bool {
	if _, ok := s.set[v]; ok {
		return false
	}
	if s.set == nil {
		s.set = make(map[*Var]struct{})
	}
	s.set[v] = struct{}{}
	s.list = append(s.list, v)
	return true
}

// has reports whether v is present (under the exact pointer; callers
// canonicalise first).
func (s *varSet) has(v *Var) bool {
	_, ok := s.set[v]
	return ok
}

// len returns the number of stored entries, including stale aliases.
func (s *varSet) size() int { return len(s.list) }

// take removes and returns all entries, leaving the set empty. Used when a
// collapsed variable's edges are re-inserted onto the witness.
func (s *varSet) take() []*Var {
	l := s.list
	s.list = nil
	s.set = nil
	return l
}

// compact canonicalises every entry under find, dropping duplicates and
// any entry equal to self. It returns the canonical slice, which aliases
// the set's own storage.
func (s *varSet) compact(self *Var) []*Var {
	out := s.list[:0]
	var seen map[*Var]struct{}
	if s.set != nil {
		seen = s.set
		clear(seen)
	} else {
		seen = make(map[*Var]struct{})
		s.set = seen
	}
	for _, v := range s.list {
		v = find(v)
		if v == self {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	s.list = out
	return out
}

// termSet is an insertion-ordered set of terms, used for source and sink
// adjacency. Terms never become stale, so no compaction is needed.
type termSet struct {
	list []*Term
	set  map[*Term]struct{}
}

// add inserts t and reports whether it was new.
func (s *termSet) add(t *Term) bool {
	if _, ok := s.set[t]; ok {
		return false
	}
	if s.set == nil {
		s.set = make(map[*Term]struct{})
	}
	s.set[t] = struct{}{}
	s.list = append(s.list, t)
	return true
}

// has reports whether t is present.
func (s *termSet) has(t *Term) bool {
	_, ok := s.set[t]
	return ok
}

// size returns the number of stored terms.
func (s *termSet) size() int { return len(s.list) }

// take removes and returns all entries, leaving the set empty.
func (s *termSet) take() []*Term {
	l := s.list
	s.list = nil
	s.set = nil
	return l
}

// find follows forwarding pointers to v's representative, compressing the
// path as it goes.
func find(v *Var) *Var {
	if v.parent == nil {
		return v
	}
	root := v
	for root.parent != nil {
		root = root.parent
	}
	for v.parent != nil {
		next := v.parent
		v.parent = root
		v = next
	}
	return root
}
