package core

import (
	"fmt"
	"testing"
)

// TestLeastSolutionInvalidatedByOfflineCollapse is the regression test for
// CollapseCycles leaving the least-solution cache valid: a cache computed
// before an offline collapse is keyed by now-eliminated variables, and on
// an initial graph (where no closure has propagated sources around the
// cycle) the stale entries are observably wrong — here the absorbed
// variable's sources vanish entirely, because the lookup lands on the
// witness's pre-collapse entry.
func TestLeastSolutionInvalidatedByOfflineCollapse(t *testing.T) {
	s := NewInitialGraph(Options{Form: IF, Order: OrderCreation, Seed: 1})
	a := atoms(1)
	x := s.Fresh("X")
	y := s.Fresh("Y")
	s.AddConstraint(a[0], y) // a0 ⊆ Y
	s.AddConstraint(x, y)    // X ⊆ Y
	s.AddConstraint(y, x)    // Y ⊆ X: closes the cycle

	// Prime the cache before the collapse. On the unclosed graph a0 has
	// not propagated to X.
	if got := lsNames(s, x); len(got) != 0 {
		t.Fatalf("pre-collapse LS(X) = %v, want empty on the initial graph", got)
	}
	if got := lsNames(s, y); len(got) != 1 || got[0] != "a0" {
		t.Fatalf("pre-collapse LS(Y) = %v, want [a0]", got)
	}

	if n := s.CollapseCycles(); n != 1 {
		t.Fatalf("CollapseCycles = %d, want 1", n)
	}
	if s.Find(y) != x {
		t.Fatalf("expected Y to be absorbed into the lower-ordered witness X")
	}

	// Querying the absorbed variable must see the collapsed graph, not the
	// cache keyed by the pre-collapse variables.
	if got := lsNames(s, y); len(got) != 1 || got[0] != "a0" {
		t.Errorf("post-collapse LS(Y) = %v, want [a0] (stale cache?)", got)
	}
	if got := lsNames(s, x); len(got) != 1 || got[0] != "a0" {
		t.Errorf("post-collapse LS(X) = %v, want [a0] (stale cache?)", got)
	}
}

// TestLeastSolutionAfterOfflineCollapseClosed covers the same sequence on
// fully closed systems: prime the cache, collapse offline, and check every
// variable — absorbed ones included — against a plain reference run of the
// same script.
func TestLeastSolutionAfterOfflineCollapseClosed(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		ops := genScript(seed, 40, 160)
		ref, refVars := runScript(Options{Form: SF, Cycles: CycleNone, Seed: seed}, ops)
		s, vars := runScript(Options{Form: IF, Cycles: CycleNone, Seed: seed}, ops)

		// Prime the cache, then collapse every cycle offline.
		for _, v := range vars {
			_ = s.LeastSolution(v)
		}
		s.CollapseCycles()

		for i, v := range vars {
			want := lsNames(ref, refVars[i])
			got := lsNames(s, v)
			if fmt.Sprint(want) != fmt.Sprint(got) {
				t.Fatalf("seed %d: LS(v%d) after offline collapse = %v, want %v", seed, i, got, want)
			}
		}
	}
}
