package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// This file is the differential gate for constraint retraction: a live
// system interleaving adds and retracts must end bit-identical — partition
// signature and least solutions, element order included — to a fresh,
// non-retractable solve of the surviving batches in their original order.
// The specs below are pure data so the live run and every reference run
// construct their own variables and terms; both call Fresh for the full
// vocabulary in the same order, so the random total order o(·) aligns.

// rtTermSpec describes one constructed term: a constructor from rtCons and
// variable-index arguments (the arity fixes the length used).
type rtTermSpec struct {
	con  int
	args [2]int
}

// rtConSpec is one constraint: kind selects the expression shapes, a/b are
// variable indices, s/t term-spec indices.
type rtConSpec struct {
	kind uint8 // 0: Va ⊆ Vb, 1: Ts ⊆ Va, 2: Va ⊆ Ts, 3: Ts ⊆ Tt
	a, b int
	s, t int
}

// rtEnv is one solver run over a shared spec vocabulary.
type rtEnv struct {
	sys   *System
	vars  []*Var
	terms []*Term
}

// rtConstructors builds the run's constructor pool: a nullary leaf, unary
// covariant, binary mixed-variance, and a second unary constructor so
// term ⊆ term pairs can be inconsistent.
func rtConstructors() []*Constructor {
	return []*Constructor{
		NewConstructor("leaf"),
		NewConstructor("box", Covariant),
		NewConstructor("pair", Covariant, Contravariant),
		NewConstructor("tag", Covariant),
	}
}

func newRTEnv(opt Options, nVars int, tspecs []rtTermSpec) *rtEnv {
	e := &rtEnv{sys: NewSystem(opt)}
	for i := 0; i < nVars; i++ {
		e.vars = append(e.vars, e.sys.Fresh(fmt.Sprintf("v%d", i)))
	}
	cons := rtConstructors()
	for _, ts := range tspecs {
		c := cons[ts.con]
		args := make([]Expr, c.Arity())
		for i := range args {
			args[i] = e.vars[ts.args[i]]
		}
		e.terms = append(e.terms, NewTerm(c, args...))
	}
	return e
}

func (e *rtEnv) exprs(c rtConSpec) (Expr, Expr) {
	switch c.kind {
	case 0:
		return e.vars[c.a], e.vars[c.b]
	case 1:
		return e.terms[c.s], e.vars[c.a]
	case 2:
		return e.vars[c.a], e.terms[c.s]
	default:
		return e.terms[c.s], e.terms[c.t]
	}
}

// applyBatch adds one batch through the batch-tracking path and returns
// its retraction handle (0 on non-retractable systems).
func (e *rtEnv) applyBatch(specs []rtConSpec) uint64 {
	id := e.sys.BeginBatch()
	for _, c := range specs {
		l, r := e.exprs(c)
		e.sys.AddConstraint(l, r)
	}
	e.sys.EndBatch()
	return id
}

// genTermSpecs draws nTerms term shapes over nVars variables.
func genTermSpecs(rng *rand.Rand, nTerms, nVars int) []rtTermSpec {
	out := make([]rtTermSpec, nTerms)
	for i := range out {
		out[i] = rtTermSpec{
			con:  rng.Intn(4),
			args: [2]int{rng.Intn(nVars), rng.Intn(nVars)},
		}
	}
	return out
}

// genBatches draws batches of constraint specs. Variable-variable edges
// dominate (they drive closure and cycle collapses); term ⊆ term pairs are
// rare and mostly inconsistent, exercising error retraction.
func genBatches(rng *rand.Rand, nBatches, nVars, nTerms int) [][]rtConSpec {
	out := make([][]rtConSpec, nBatches)
	for i := range out {
		n := 1 + rng.Intn(6)
		batch := make([]rtConSpec, n)
		for j := range batch {
			c := rtConSpec{a: rng.Intn(nVars), b: rng.Intn(nVars), s: rng.Intn(nTerms), t: rng.Intn(nTerms)}
			switch r := rng.Intn(10); {
			case r < 5:
				c.kind = 0
			case r < 7:
				c.kind = 1
			case r < 9:
				c.kind = 2
			default:
				c.kind = 3
			}
			batch[j] = c
		}
		out[i] = batch
	}
	return out
}

// rawPartitionSig labels every creation index with the smallest creation
// index of its union-find class — like partitionSig in oracle_test.go but
// without the offline collapse (the comparison is bit-level, not semantic).
func rawPartitionSig(s *System) []int {
	n := s.NumCreated()
	sig := make([]int, n)
	first := make(map[*Var]int, n)
	for i := 0; i < n; i++ {
		root := s.Find(s.CreatedVar(i))
		if j, ok := first[root]; ok {
			sig[i] = j
		} else {
			first[root] = i
			sig[i] = i
		}
	}
	return sig
}

// lsRender materialises every creation index's least solution as term
// strings, order preserved.
func lsRender(s *System) [][]string {
	n := s.NumCreated()
	out := make([][]string, n)
	for i := 0; i < n; i++ {
		for _, t := range s.LeastSolution(s.CreatedVar(i)) {
			out[i] = append(out[i], t.String())
		}
	}
	return out
}

func sigEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func lsEqual(a, b [][]string) (int, bool) {
	if len(a) != len(b) {
		return -1, false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return i, false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return i, false
			}
		}
	}
	return 0, true
}

// checkAgainstReference solves the surviving batches from scratch on a
// fresh non-retractable system and compares partition, least solutions and
// error counts against the live run.
func checkAgainstReference(t *testing.T, live *rtEnv, opt Options, nVars int, tspecs []rtTermSpec, surviving [][]rtConSpec, label string) {
	t.Helper()
	refOpt := opt
	refOpt.Retractable = false
	ref := newRTEnv(refOpt, nVars, tspecs)
	for _, b := range surviving {
		ref.applyBatch(b)
	}
	if got, want := rawPartitionSig(live.sys), rawPartitionSig(ref.sys); !sigEqual(got, want) {
		t.Fatalf("%s: partition signature diverged from from-scratch solve\nlive: %v\nref:  %v", label, got, want)
	}
	if i, ok := lsEqual(lsRender(live.sys), lsRender(ref.sys)); !ok {
		t.Fatalf("%s: least solution diverged at creation index %d\nlive: %v\nref:  %v",
			label, i, lsRender(live.sys)[i], lsRender(ref.sys)[i])
	}
	if got, want := live.sys.ErrorCount(), ref.sys.ErrorCount(); got != want {
		t.Fatalf("%s: error count = %d, from-scratch = %d", label, got, want)
	}
}

// retractMatrix is the differential grid: both forms, both
// representations, the online policy and no elimination.
func retractMatrix() []Options {
	var out []Options
	for _, form := range []Form{SF, IF} {
		for _, repr := range []StorageRepr{ReprHybrid, ReprCSR} {
			for _, cyc := range []CyclePolicy{CycleOnline, CycleNone} {
				out = append(out, Options{Form: form, Repr: repr, Cycles: cyc, Retractable: true})
			}
		}
	}
	return out
}

// TestRetractInterleavedDifferential is the property gate: random
// add/retract interleavings over ≥5 seeds × the full form/representation
// grid must match a from-scratch solve of the survivors bit-identically.
func TestRetractInterleavedDifferential(t *testing.T) {
	const nVars, nTerms, nBatches = 48, 24, 36
	for _, opt := range retractMatrix() {
		for seed := int64(1); seed <= 6; seed++ {
			opt := opt
			opt.Seed = seed
			name := fmt.Sprintf("%s/%s/%s/seed%d", opt.Form, opt.Repr, opt.Cycles, seed)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 7919))
				tspecs := genTermSpecs(rng, nTerms, nVars)
				batches := genBatches(rng, nBatches, nVars, nTerms)
				live := newRTEnv(opt, nVars, tspecs)

				type liveBatch struct {
					id   uint64
					spec []rtConSpec
				}
				var alive []liveBatch
				surviving := func() [][]rtConSpec {
					out := make([][]rtConSpec, len(alive))
					for i, b := range alive {
						out[i] = b.spec
					}
					return out
				}
				for i, b := range batches {
					alive = append(alive, liveBatch{id: live.applyBatch(b), spec: b})
					// Retract a random live batch about a third of the time,
					// occasionally two at once.
					if rng.Intn(3) == 0 && len(alive) > 1 {
						n := 1 + rng.Intn(2)
						var ids []uint64
						for k := 0; k < n && len(alive) > 0; k++ {
							j := rng.Intn(len(alive))
							ids = append(ids, alive[j].id)
							alive = append(alive[:j], alive[j+1:]...)
						}
						if _, err := live.sys.RetractBatches(ids); err != nil {
							t.Fatalf("RetractBatches(%v): %v", ids, err)
						}
					}
					if i == nBatches/2 {
						checkAgainstReference(t, live, opt, nVars, tspecs, surviving(), "midpoint")
					}
				}
				checkAgainstReference(t, live, opt, nVars, tspecs, surviving(), "final")
			})
		}
	}
}

// TestRetractThenReaddEquivalence retracts a batch and re-adds the same
// constraints; the result must be semantically identical — full-SCC
// partition after an offline collapse, least solutions as sets, error
// count — to a run that never retracted. (Bit-level equality is not the
// claim here: re-adding at the tail is a different insertion order, and
// partial online elimination is order-sensitive; the offline collapse
// canonicalises the partition.)
func TestRetractThenReaddEquivalence(t *testing.T) {
	const nVars, nTerms, nBatches = 40, 20, 24
	for _, opt := range retractMatrix() {
		for seed := int64(1); seed <= 5; seed++ {
			opt := opt
			opt.Seed = seed
			name := fmt.Sprintf("%s/%s/%s/seed%d", opt.Form, opt.Repr, opt.Cycles, seed)
			t.Run(name, func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed * 104729))
				tspecs := genTermSpecs(rng, nTerms, nVars)
				batches := genBatches(rng, nBatches, nVars, nTerms)

				live := newRTEnv(opt, nVars, tspecs)
				ids := make([]uint64, len(batches))
				for i, b := range batches {
					ids[i] = live.applyBatch(b)
				}
				// Retract a third of the batches, then re-add the same specs.
				var retract []uint64
				var readd [][]rtConSpec
				for i := 0; i < len(batches); i += 3 {
					retract = append(retract, ids[i])
					readd = append(readd, batches[i])
				}
				if _, err := live.sys.RetractBatches(retract); err != nil {
					t.Fatalf("RetractBatches: %v", err)
				}
				for _, b := range readd {
					live.applyBatch(b)
				}

				refOpt := opt
				refOpt.Retractable = false
				ref := newRTEnv(refOpt, nVars, tspecs)
				for _, b := range batches {
					ref.applyBatch(b)
				}

				live.sys.CollapseCycles()
				ref.sys.CollapseCycles()
				if got, want := partitionSig(live.sys), partitionSig(ref.sys); !sigEqual(got, want) {
					t.Fatalf("partition after collapse diverged\nretract+readd: %v\nnever-retracted: %v", got, want)
				}
				lg, lr := lsRender(live.sys), lsRender(ref.sys)
				for i := range lg {
					if !sameStringSet(lg[i], lr[i]) {
						t.Fatalf("least solution (as set) diverged at creation index %d: %v vs %v", i, lg[i], lr[i])
					}
				}
				// Error *counts* are per-discovery-event and so insertion-order
				// sensitive; the order-invariant fact is whether any mismatched
				// source/sink pair meets in the closed graph.
				if got, want := live.sys.ErrorCount() > 0, ref.sys.ErrorCount() > 0; got != want {
					t.Fatalf("inconsistency presence = %v, never-retracted = %v", got, want)
				}
			})
		}
	}
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := make(map[string]int, len(a))
	for _, s := range a {
		m[s]++
	}
	for _, s := range b {
		m[s]--
		if m[s] < 0 {
			return false
		}
	}
	return true
}

// TestRetractReasonMultiset asserts the ICDGraph multiset semantics: a
// fact justified by two batches survives retracting one and disappears
// only when the last justification goes.
func TestRetractReasonMultiset(t *testing.T) {
	opt := Options{Form: IF, Cycles: CycleOnline, Seed: 3, Retractable: true}
	s := NewSystem(opt)
	x := s.Fresh("x")
	y := s.Fresh("y")
	leaf := NewTerm(NewConstructor("leaf"))

	add := func(cs ...[2]Expr) uint64 {
		id := s.BeginBatch()
		for _, c := range cs {
			s.AddConstraint(c[0], c[1])
		}
		s.EndBatch()
		return id
	}
	b1 := add([2]Expr{leaf, x}, [2]Expr{x, y})
	b2 := add([2]Expr{leaf, x}, [2]Expr{x, y}) // same facts, second justification

	wantLS := func(label string, want int) {
		t.Helper()
		if got := len(s.LeastSolution(y)); got != want {
			t.Fatalf("%s: len(LS(y)) = %d, want %d", label, got, want)
		}
	}
	wantLS("both batches live", 1)

	rep, err := s.RetractBatches([]uint64{b2})
	if err != nil {
		t.Fatalf("retract b2: %v", err)
	}
	if !rep.NoOp {
		t.Errorf("retracting the redundant batch should be a no-op, got %+v", rep)
	}
	wantLS("after retracting second justification", 1)

	if _, err := s.RetractBatches([]uint64{b1}); err != nil {
		t.Fatalf("retract b1: %v", err)
	}
	wantLS("after retracting last justification", 0)
	if got := s.BatchCount(); got != 0 {
		t.Errorf("BatchCount = %d, want 0", got)
	}
}

// TestRetractNoOpKeepsVersionAndCache asserts the fast path: retracting a
// batch whose every attempt was redundant leaves the graph version (and so
// every snapshot and least-solution cache) untouched.
func TestRetractNoOpKeepsVersionAndCache(t *testing.T) {
	opt := Options{Form: IF, Cycles: CycleOnline, Seed: 9, Retractable: true}
	s := NewSystem(opt)
	x := s.Fresh("x")
	y := s.Fresh("y")
	leaf := NewTerm(NewConstructor("leaf"))

	s.BeginBatch()
	s.AddConstraint(leaf, x)
	s.AddConstraint(x, y)
	s.EndBatch()

	id2 := s.BeginBatch()
	s.AddConstraint(leaf, x)
	s.EndBatch()
	v0 := s.Version()
	rep, err := s.RetractBatches([]uint64{id2})
	if err != nil {
		t.Fatalf("retract: %v", err)
	}
	if !rep.NoOp || rep.DirtyVars != 0 {
		t.Errorf("report = %+v, want no-op with empty cone", rep)
	}
	if got := s.Version(); got != v0 {
		t.Errorf("version moved %d → %d on a no-op retraction", v0, got)
	}
}

// TestRetractUnknownBatch asserts validation: an unknown id fails with
// ErrUnknownBatch and nothing changes.
func TestRetractUnknownBatch(t *testing.T) {
	opt := Options{Form: SF, Cycles: CycleOnline, Seed: 1, Retractable: true}
	s := NewSystem(opt)
	x := s.Fresh("x")
	y := s.Fresh("y")
	id := s.BeginBatch()
	s.AddConstraint(x, y)
	s.EndBatch()
	v0 := s.Version()
	if _, err := s.RetractBatches([]uint64{id, id + 999}); !errors.Is(err, ErrUnknownBatch) {
		t.Fatalf("err = %v, want ErrUnknownBatch", err)
	}
	if s.Version() != v0 || s.BatchCount() != 1 {
		t.Errorf("failed retraction mutated state: version %d→%d, batches %d", v0, s.Version(), s.BatchCount())
	}
	if _, err := s.RetractBatches(nil); err != nil {
		t.Errorf("empty retraction should succeed, got %v", err)
	}
}

// TestRetractNotRetractable asserts both refusal paths: a system without
// Options.Retractable, and a retractable system tainted by an offline
// collapse outside batch tracking.
func TestRetractNotRetractable(t *testing.T) {
	plain := NewSystem(Options{Form: SF, Cycles: CycleOnline})
	if _, err := plain.RetractBatches([]uint64{1}); !errors.Is(err, ErrNotRetractable) {
		t.Fatalf("non-retractable: err = %v, want ErrNotRetractable", err)
	}

	s := NewSystem(Options{Form: SF, Cycles: CycleNone, Seed: 2, Retractable: true})
	x, y, z := s.Fresh("x"), s.Fresh("y"), s.Fresh("z")
	id := s.BeginBatch()
	s.AddConstraint(x, y)
	s.AddConstraint(y, z)
	s.AddConstraint(z, x)
	s.EndBatch()
	s.CollapseCycles() // collapses the cycle with no batch open → taints
	if _, err := s.RetractBatches([]uint64{id}); !errors.Is(err, ErrNotRetractable) {
		t.Fatalf("tainted: err = %v, want ErrNotRetractable", err)
	}
}

// TestRetractablePeriodicPanics asserts the construction-time guard.
func TestRetractablePeriodicPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSystem(Retractable+CyclePeriodic) did not panic")
		}
	}()
	NewSystem(Options{Cycles: CyclePeriodic, Retractable: true})
}

// TestRetractConeLocality builds many disjoint clusters and retracts one
// batch: the dirty cone must stay inside that cluster — measurably smaller
// than the graph — and the retract counters must report it.
func TestRetractConeLocality(t *testing.T) {
	const clusters, size = 20, 8
	for _, repr := range []StorageRepr{ReprHybrid, ReprCSR} {
		t.Run(repr.String(), func(t *testing.T) {
			opt := Options{Form: IF, Cycles: CycleOnline, Seed: 5, Repr: repr, Retractable: true}
			s := NewSystem(opt)
			leaf := NewTerm(NewConstructor("leaf"))
			var vars [][]*Var
			for c := 0; c < clusters; c++ {
				var vs []*Var
				for i := 0; i < size; i++ {
					vs = append(vs, s.Fresh(fmt.Sprintf("c%dv%d", c, i)))
				}
				vars = append(vars, vs)
			}
			ids := make([]uint64, clusters)
			for c := 0; c < clusters; c++ {
				ids[c] = s.BeginBatch()
				s.AddConstraint(leaf, vars[c][0])
				for i := 0; i+1 < size; i++ {
					s.AddConstraint(vars[c][i], vars[c][i+1])
				}
				s.EndBatch()
			}
			total := len(s.CanonicalVars())
			rep, err := s.RetractBatches([]uint64{ids[3]})
			if err != nil {
				t.Fatalf("retract: %v", err)
			}
			if rep.DirtyVars == 0 || rep.DirtyVars > size {
				t.Errorf("DirtyVars = %d, want within cluster size %d", rep.DirtyVars, size)
			}
			if rep.DirtyVars*4 > total {
				t.Errorf("dirty cone %d not measurably smaller than graph %d", rep.DirtyVars, total)
			}
			st := s.Stats()
			if st.Retractions != 1 || st.RetractConeVars != int64(rep.DirtyVars) {
				t.Errorf("stats = retracts %d cone %d, want 1/%d", st.Retractions, st.RetractConeVars, rep.DirtyVars)
			}
			// The retracted cluster's solutions are gone; neighbours keep theirs.
			if got := len(s.LeastSolution(vars[3][size-1])); got != 0 {
				t.Errorf("retracted cluster still has LS of size %d", got)
			}
			if got := len(s.LeastSolution(vars[4][size-1])); got != 1 {
				t.Errorf("untouched cluster lost its LS (got %d terms)", got)
			}
		})
	}
}
