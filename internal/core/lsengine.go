package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file is the least-solution engine for inductive form. The naive
// algorithm in leastsol.go materialises every LS(Y) from scratch into a
// fresh map; on closed graphs most least solutions are unions of a few
// predecessor sets, so that pass copies the same suffixes over and over.
// The engine replaces it with three cooperating pieces:
//
//  1. Shared interned term-sets. A least solution is an immutable lsNode
//     holding a deduplicated term list in first-reached order. Nodes are
//     hash-consed (equal content → same node) and combined by a memoized
//     union, so LS(Y) = leaf(Y) ∪ ⋃ LS(X) reuses its inputs' storage:
//     a variable whose solution equals a predecessor's shares the node
//     outright, and a repeated (a, b) union is a map hit.
//
//  2. Level-parallel evaluation. Predecessor edges strictly decrease in
//     the order o(·), so the predecessor graph is a DAG and level(Y) =
//     1 + max level of Y's variable predecessors partitions the
//     variables into antichains. Each level is evaluated across a worker
//     pool (Options.LSWorkers, default GOMAXPROCS) with a barrier between
//     levels; every worker writes only its own variables' nodes, so the
//     pass is race-free and its results are bit-identical to the
//     sequential pass at any worker count.
//
//  3. Dirty-cone incremental recomputation. The solver bumps a graph
//     version only on mutations that can change a least solution (new
//     source edge, new predecessor edge, collapse) and marks the affected
//     variable; redundant re-additions keep the cache hot. A pass then
//     recomputes only the marked variables and their downstream cone —
//     computed in the same ascending sweep that assigns levels, since a
//     variable is stale exactly when one of its predecessors is — and
//     every other variable keeps its cached node.

// lsIndexThreshold is the node size above which membership tests build a
// lazily-cached hash index instead of scanning the term list.
const lsIndexThreshold = 16

// lsParallelThreshold is the minimum number of cone variables on one
// level before the level is fanned across workers; smaller levels are
// evaluated inline to avoid goroutine overhead.
const lsParallelThreshold = 32

// lsNode is one interned, immutable least-solution term-set. terms is
// deduplicated and in first-reached order (own sources first, then each
// predecessor's contribution in stored edge order — the exact order the
// naive pass produces). Nodes must never be mutated after interning.
type lsNode struct {
	hash  uint64
	terms []*Term

	once  sync.Once      // builds index on first large membership probe
	index map[*Term]int8 // nil until built; larger nodes only
}

// has reports whether t is in the node's term set.
func (n *lsNode) has(t *Term) bool {
	if len(n.terms) <= lsIndexThreshold {
		for _, u := range n.terms {
			if u == t {
				return true
			}
		}
		return false
	}
	n.once.Do(func() {
		idx := make(map[*Term]int8, 2*len(n.terms))
		for _, u := range n.terms {
			idx[u] = 1
		}
		n.index = idx
	})
	_, ok := n.index[t]
	return ok
}

// lsPair keys the union memo by the identity of both operands. Operands
// are interned nodes, so pointer identity is content identity.
type lsPair struct{ a, b *lsNode }

// lsEngine holds the hash-cons table and union memo shared by every pass
// of one System. It persists across incremental passes — the memo is what
// makes re-unions of unchanged suffixes free.
type lsEngine struct {
	mu       sync.Mutex           // guards interned and memo during parallel levels
	interned map[uint64][]*lsNode // content hash → nodes (bucketed, equality-checked)
	memo     map[lsPair]*lsNode

	empty *lsNode

	// Counters are atomics because level workers update them concurrently.
	hits   atomic.Int64 // union memo hits
	misses atomic.Int64 // union memo misses (union actually computed)
	work   atomic.Int64 // terms materialised into newly interned nodes
}

func newLSEngine() *lsEngine {
	e := &lsEngine{
		interned: make(map[uint64][]*lsNode),
		memo:     make(map[lsPair]*lsNode),
	}
	e.empty = &lsNode{hash: 0}
	return e
}

// hashTerms is FNV-1a over the terms' creation sequence numbers. Equal
// sequences hash equal; collisions are resolved by sameTerms in intern.
func hashTerms(ts []*Term) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, t := range ts {
		x := t.Seq()
		for i := 0; i < 4; i++ {
			h ^= uint64(x & 0xff)
			h *= prime64
			x >>= 8
		}
	}
	return h
}

func sameTerms(a, b []*Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// intern returns the canonical node for terms, creating one if the exact
// sequence has not been seen. When copyOnCreate is set the slice is
// cloned before a node is built around it — callers pass it for lists
// that alias mutable storage (predS.list grows in place between passes);
// lookups never need the copy, which keeps warm passes allocation-free.
func (e *lsEngine) intern(terms []*Term, copyOnCreate bool) *lsNode {
	if len(terms) == 0 {
		return e.empty
	}
	h := hashTerms(terms)
	e.mu.Lock()
	for _, n := range e.interned[h] {
		if sameTerms(n.terms, terms) {
			e.mu.Unlock()
			return n
		}
	}
	if copyOnCreate {
		terms = append([]*Term(nil), terms...)
	}
	n := &lsNode{hash: h, terms: terms}
	e.interned[h] = append(e.interned[h], n)
	e.mu.Unlock()
	e.work.Add(int64(len(terms)))
	return n
}

// leaf interns a variable's own source predecessors.
func (e *lsEngine) leaf(terms []*Term) *lsNode {
	return e.intern(terms, true)
}

// union returns the node for a.terms ++ (b.terms \ a), memoized on the
// operand pair. When b adds nothing the result is a itself — no copy, no
// new node — which is the common case on closed graphs.
func (e *lsEngine) union(a, b *lsNode) *lsNode {
	if a == b || len(b.terms) == 0 {
		return a
	}
	if len(a.terms) == 0 {
		return b
	}
	key := lsPair{a, b}
	e.mu.Lock()
	r, ok := e.memo[key]
	e.mu.Unlock()
	if ok {
		e.hits.Add(1)
		return r
	}
	e.misses.Add(1)
	var out []*Term
	for _, t := range b.terms {
		if !a.has(t) {
			if out == nil {
				out = make([]*Term, len(a.terms), len(a.terms)+len(b.terms))
				copy(out, a.terms)
			}
			out = append(out, t)
		}
	}
	if out == nil {
		r = a // b ⊆ a: share a's node
	} else {
		r = e.intern(out, false)
	}
	e.mu.Lock()
	e.memo[key] = r
	e.mu.Unlock()
	return r
}

// lsNodeOf reads the engine node parked in v's storage-layer Sol slot
// (nil when no pass has evaluated v yet).
func lsNodeOf(v *Var) *lsNode {
	n, _ := v.Sol.Node.(*lsNode)
	return n
}

// evalVar computes y's least-solution node from its (already cleaned,
// hence canonical) adjacency. Every variable predecessor sits on a lower
// level, so its node was published before this level's barrier opened.
func (e *lsEngine) evalVar(y *Var) *lsNode {
	n := e.leaf(y.PredS.List())
	for _, x := range y.PredV.List() {
		n = e.union(n, lsNodeOf(x))
	}
	return n
}

// ResolveLSWorkers resolves an Options.LSWorkers setting to the effective
// pool size (<= 0 → GOMAXPROCS), for callers that want to report it.
func ResolveLSWorkers(w int) int {
	if w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// lsWorkers resolves the configured worker count (<= 0 → GOMAXPROCS).
func (s *System) lsWorkers() int {
	return ResolveLSWorkers(s.opt.LSWorkers)
}

// runLeastSolutionPass brings every canonical variable's lsNode up to
// date with the current graph version. See the file comment for the
// three-part design. Callers have checked Form == IF and staleness.
func (s *System) runLeastSolutionPass() {
	start := time.Now()
	full := s.lsEngine == nil
	if full {
		s.lsEngine = newLSEngine()
	}
	e := s.lsEngine
	hits0, misses0 := e.hits.Load(), e.misses.Load()

	vars := s.CanonicalVars()
	sort.Slice(vars, func(i, j int) bool { return before(vars[i], vars[j]) })

	// Ascending sweep: canonicalise adjacency, assign topological levels
	// over the predecessor DAG, and mark the dirty cone. A variable is in
	// the cone when it has no node yet, was marked by a mutation, or has a
	// predecessor in the cone; predecessors strictly precede in o(·), so
	// one pass settles both level and cone membership. Sweep positions
	// live in Var.Sol.Idx so pred lookups cost an indexed load, not a map
	// probe.
	for i, v := range vars {
		v.Sol.Idx = int32(i)
	}
	level := make([]int, len(vars))
	inCone := make([]bool, len(vars))
	maxLevel, cone := 0, 0
	for i, y := range vars {
		s.store.Clean(y)
		lv := 0
		rec := full || y.Sol.Node == nil || y.Sol.Pending
		for _, x := range y.PredV.List() {
			j := x.Sol.Idx
			if level[j] >= lv {
				lv = level[j] + 1
			}
			if inCone[j] {
				rec = true
			}
		}
		level[i] = lv
		if lv > maxLevel {
			maxLevel = lv
		}
		if rec {
			inCone[i] = true
			cone++
		}
	}

	buckets := make([][]int, maxLevel+1)
	for i := range vars {
		if inCone[i] {
			buckets[level[i]] = append(buckets[level[i]], i)
		}
	}

	workers := s.lsWorkers()
	for _, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if workers <= 1 || len(b) < lsParallelThreshold {
			for _, i := range b {
				vars[i].Sol.Node = e.evalVar(vars[i])
			}
			continue
		}
		// One chunk per worker; each worker writes only its own
		// variables' nodes, and the WaitGroup barrier publishes them to
		// the next level's readers.
		n := workers
		if n > len(b) {
			n = len(b)
		}
		chunk := (len(b) + n - 1) / n
		var wg sync.WaitGroup
		for lo := 0; lo < len(b); lo += chunk {
			hi := lo + chunk
			if hi > len(b) {
				hi = len(b)
			}
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				for _, i := range part {
					vars[i].Sol.Node = e.evalVar(vars[i])
				}
			}(b[lo:hi])
		}
		wg.Wait()
	}

	for _, v := range s.lsPending {
		v.Sol.Pending = false
	}
	s.lsPending = s.lsPending[:0]
	s.lsVersion = s.graphVersion

	s.stats.LSPasses++
	s.stats.LSConeVars += int64(cone)
	s.stats.LSLevels = int64(len(buckets))
	s.stats.LSUnionHits = e.hits.Load()
	s.stats.LSUnionMisses = e.misses.Load()
	s.stats.LSWork = e.work.Load()

	if s.opt.Metrics != nil {
		s.opt.Metrics.LeastSolutionDone(LSPass{
			Duration:    time.Since(start),
			Levels:      len(buckets),
			ConeVars:    cone,
			TotalVars:   len(vars),
			UnionHits:   e.hits.Load() - hits0,
			UnionMisses: e.misses.Load() - misses0,
			Workers:     workers,
		})
	}
}

// markLS records that y's least solution may have changed: a real edge
// mutation bumps the graph version (invalidating the version-keyed cache)
// and seeds y into the next pass's dirty cone. Redundant edge additions
// never reach this, which is what keeps the cache hot under re-adds.
func (s *System) markLS(y *Var) {
	s.graphVersion++
	if !y.Sol.Pending {
		y.Sol.Pending = true
		s.lsPending = append(s.lsPending, y)
	}
}
