package core

import (
	"fmt"
	"testing"
)

// checkLSAgainstReference asserts the engine's least solution equals the
// retained naive reference exactly — same terms, same first-reached
// order — for every canonical variable.
func checkLSAgainstReference(t *testing.T, s *System, ctx string) {
	t.Helper()
	s.ComputeLeastSolutions()
	ref := s.leastSolutionsReference()
	for _, v := range s.CanonicalVars() {
		got := s.LeastSolution(v)
		want := ref[v]
		if len(got) != len(want) {
			t.Fatalf("%s: LS(%s) engine has %d terms, reference %d", ctx, v.Name(), len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%s: LS(%s)[%d] = %v, reference %v", ctx, v.Name(), i, got[i], want[i])
			}
		}
	}
}

// TestLSEngineMatchesReference is the engine's central property test: on
// random systems across orders, seeds and worker counts, the interned /
// level-parallel / incremental engine must reproduce the naive
// reference's output exactly — including after interleaved offline
// collapses and after incremental updates on a warm cache.
func TestLSEngineMatchesReference(t *testing.T) {
	for _, order := range []OrderStrategy{OrderRandom, OrderCreation, OrderReverseCreation} {
		for seed := int64(0); seed < 5; seed++ {
			for _, workers := range []int{1, 4} {
				const nv, nc = 60, 180
				ops := genScript(seed, nv, nc)
				s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: seed, Order: order, LSWorkers: workers})
				var vars []*Var
				apply := func(from, to int) {
					for _, op := range ops[from:to] {
						if op.fresh {
							vars = append(vars, s.Fresh(fmt.Sprintf("v%d", len(vars))))
							continue
						}
						s.AddConstraint(op.l.build(vars), op.r.build(vars))
					}
				}
				ctx := func(phase string) string {
					return fmt.Sprintf("order=%v seed=%d workers=%d %s", order, seed, workers, phase)
				}

				split := nv + nc/2
				apply(0, split)
				checkLSAgainstReference(t, s, ctx("half"))

				// Offline collapse on a warm cache, then verify again.
				s.CollapseCycles()
				checkLSAgainstReference(t, s, ctx("after-collapse"))

				// Incremental updates: the remaining constraints land on a
				// warm cache, so only dirty cones are recomputed.
				apply(split, len(ops))
				checkLSAgainstReference(t, s, ctx("full"))

				s.CollapseCycles()
				checkLSAgainstReference(t, s, ctx("final-collapse"))
			}
		}
	}
}

// TestRedundantConstraintKeepsLSCacheHot is the regression test for the
// cache-invalidation fix: re-adding constraints whose edges are already
// present must not trigger a new least-solution pass.
func TestRedundantConstraintKeepsLSCacheHot(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CycleNone, Seed: 7})
	a := atoms(2)
	x, y := s.Fresh("X"), s.Fresh("Y")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	_ = s.LeastSolution(y)
	if got := s.Stats().LSPasses; got != 1 {
		t.Fatalf("after first query: LSPasses = %d, want 1", got)
	}

	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	if s.Stats().Redundant == 0 {
		t.Fatal("expected the re-added constraints to be redundant")
	}
	_ = s.LeastSolution(y)
	if got := s.Stats().LSPasses; got != 1 {
		t.Fatalf("redundant constraints invalidated the LS cache: LSPasses = %d, want 1", got)
	}

	// A genuinely new edge must invalidate.
	s.AddConstraint(a[1], y)
	_ = s.LeastSolution(y)
	if got := s.Stats().LSPasses; got != 2 {
		t.Fatalf("new constraint did not trigger a pass: LSPasses = %d, want 2", got)
	}
}

// TestLSIncrementalConeRecomputation pins the dirty-cone behaviour: after
// a warm full pass, a single new source edge recomputes only the marked
// variable and its downstream cone, not the whole graph.
func TestLSIncrementalConeRecomputation(t *testing.T) {
	const n = 12
	s := NewSystem(Options{Form: IF, Cycles: CycleNone, Seed: 1, Order: OrderCreation})
	a := atoms(2)
	vars := make([]*Var, n)
	for i := range vars {
		vars[i] = s.Fresh(fmt.Sprintf("c%d", i))
	}
	for i := 0; i+1 < n; i++ {
		s.AddConstraint(vars[i], vars[i+1]) // chain: c0 ⊆ c1 ⊆ ... ⊆ c11
	}
	s.AddConstraint(a[0], vars[0])
	s.ComputeLeastSolutions()
	st := s.Stats()
	if st.LSPasses != 1 || st.LSConeVars != n {
		t.Fatalf("first pass: passes=%d cone=%d, want 1 and %d", st.LSPasses, st.LSConeVars, n)
	}

	// New source in the middle: the cone is the marked variable plus its
	// order-downstream dependents (c6..c11), not the whole chain.
	s.AddConstraint(a[1], vars[6])
	s.ComputeLeastSolutions()
	st = s.Stats()
	if st.LSPasses != 2 {
		t.Fatalf("second pass: passes=%d, want 2", st.LSPasses)
	}
	if delta := st.LSConeVars - n; delta != n-6 {
		t.Fatalf("incremental cone recomputed %d vars, want %d", delta, n-6)
	}
	for i, v := range vars {
		names := lsNames(s, v)
		wantA1 := i >= 6
		hasA1 := false
		for _, nm := range names {
			if nm == a[1].String() {
				hasA1 = true
			}
		}
		if hasA1 != wantA1 {
			t.Fatalf("LS(c%d) = %v: a1 presence = %v, want %v", i, names, hasA1, wantA1)
		}
	}
}

// TestLSParallelBitIdentical runs the same script through a sequential
// and a parallel system and requires every variable's least solution to
// match term-for-term, in order — the engine's determinism contract.
func TestLSParallelBitIdentical(t *testing.T) {
	ops := genScript(3, 400, 1200)
	seq, seqVars := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 3, LSWorkers: 1}, ops)
	par, parVars := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 3, LSWorkers: 4}, ops)
	seq.ComputeLeastSolutions()
	par.ComputeLeastSolutions()
	if len(seqVars) != len(parVars) {
		t.Fatalf("variable counts differ: %d vs %d", len(seqVars), len(parVars))
	}
	for i := range seqVars {
		a := seq.LeastSolution(seqVars[i])
		b := par.LeastSolution(parVars[i])
		if len(a) != len(b) {
			t.Fatalf("LS(v%d): sequential %d terms, parallel %d", i, len(a), len(b))
		}
		for j := range a {
			if a[j].String() != b[j].String() {
				t.Fatalf("LS(v%d)[%d]: sequential %v, parallel %v", i, j, a[j], b[j])
			}
		}
	}
}

// TestLSParallelPass exercises the level-parallel code path (the system
// is large enough that levels cross lsParallelThreshold) at both worker
// settings, including an incremental pass on a warm engine — this is the
// test the CI race job leans on for the pass's race-freedom.
func TestLSParallelPass(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s, vars := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 9, LSWorkers: workers}, genScript(9, 400, 1200))
		s.ComputeLeastSolutions()
		if got := s.Stats().LSPasses; got != 1 {
			t.Fatalf("workers=%d: LSPasses = %d, want 1", workers, got)
		}
		// Warm-cache incremental pass.
		s.AddConstraint(atoms(1)[0], vars[0])
		s.ComputeLeastSolutions()
		if got := s.Stats().LSPasses; got != 2 {
			t.Fatalf("workers=%d: LSPasses = %d, want 2", workers, got)
		}
		if s.Stats().LSLevels == 0 {
			t.Fatalf("workers=%d: LSLevels not recorded", workers)
		}
	}
}
