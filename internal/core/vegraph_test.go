package core

import (
	"fmt"
	"sort"
	"testing"
)

// veSorted returns the online engine's LS(v) as a Seq-sorted, deduped
// slice — the set view the vertex-elimination closure reports in.
func veSorted(s *System, v *Var) []*Term {
	src := s.LeastSolution(v)
	out := make([]*Term, len(src))
	copy(out, src)
	sort.Slice(out, func(a, b int) bool { return out[a].Seq() < out[b].Seq() })
	w := 0
	for i, t := range out {
		if i > 0 && t == out[i-1] {
			continue
		}
		out[w] = t
		w++
	}
	return out[:w]
}

func veSameTerms(a, b []*Term) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestVEClosureMatchesOnline is the oracle property: for every variable,
// the vertex-elimination closure computes exactly the online engine's
// least solution, as a set — across forms, cycle policies, orders, both
// representations and both elimination orders.
func TestVEClosureMatchesOnline(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ops := genScript(seed, 50, 200)
		for _, form := range []Form{SF, IF} {
			for _, pol := range []CyclePolicy{CycleNone, CycleOnline} {
				for _, repr := range []StorageRepr{ReprHybrid, ReprCSR} {
					s, vars := runScript(Options{Form: form, Cycles: pol, Seed: seed, Repr: repr}, ops)
					for _, ord := range []VEOrder{VEOrderMinDegree, VEOrderTotal} {
						ve := s.BuildVEClosure(ord)
						for i, v := range vars {
							want := veSorted(s, v)
							got := ve.LeastSolution(v)
							if !veSameTerms(got, want) {
								t.Fatalf("seed=%d %v/%v/%v/%v: VE LS(v%d) = %v, online = %v",
									seed, form, pol, repr, ord, i, got, want)
							}
						}
					}
				}
			}
		}
	}
}

// TestVEClosureDeterministic: two builds over the same system agree
// element-wise, min-degree included (the lazy queue breaks ties by o(·)).
func TestVEClosureDeterministic(t *testing.T) {
	s, vars := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 7}, genScript(7, 60, 240))
	for _, ord := range []VEOrder{VEOrderMinDegree, VEOrderTotal} {
		a := s.BuildVEClosure(ord)
		b := s.BuildVEClosure(ord)
		if a.Stats() != b.Stats() {
			t.Fatalf("%v: stats differ across builds: %+v vs %+v", ord, a.Stats(), b.Stats())
		}
		for i, v := range vars {
			if !veSameTerms(a.LeastSolution(v), b.LeastSolution(v)) {
				t.Fatalf("%v: LS(v%d) differs across builds", ord, i)
			}
		}
	}
}

// TestVEClosureShape sanity-checks stats and the staleness contract.
func TestVEClosureShape(t *testing.T) {
	s := NewSystem(Options{Form: IF, Cycles: CycleOnline, Seed: 1})
	a := atoms(2)
	x, y, z := s.Fresh("x"), s.Fresh("y"), s.Fresh("z")
	s.AddConstraint(a[0], x)
	s.AddConstraint(x, y)
	s.AddConstraint(y, z)
	ve := s.BuildVEClosure(VEOrderMinDegree)
	if ve.Version() != s.Version() {
		t.Fatalf("closure version %d != system version %d", ve.Version(), s.Version())
	}
	st := ve.Stats()
	if st.Vars != 3 || st.Edges != 2 {
		t.Fatalf("unexpected shape: %+v", st)
	}
	if got := ve.LeastSolution(z); len(got) != 1 || got[0] != a[0] {
		t.Fatalf("VE LS(z) = %v, want [a0]", got)
	}
	// A variable created after the build is unknown to the closure.
	w := s.Fresh("w")
	s.AddConstraint(a[1], w)
	if got := ve.LeastSolution(w); got != nil {
		t.Fatalf("stale closure answered for post-build var: %v", got)
	}
	if ve.Version() == s.Version() {
		t.Fatal("version did not advance past the closure's")
	}
	if ve.Order().String() != "mindegree" || VEOrderTotal.String() != "total" {
		t.Fatalf("order names wrong: %q %q", ve.Order(), VEOrderTotal)
	}
}

// TestVEClosureCycles: variables on a collapsed cycle share one closure
// entry through their witness; with CycleNone the cycle survives in the
// graph and vertex elimination must still close over it correctly.
func TestVEClosureCycles(t *testing.T) {
	for _, pol := range []CyclePolicy{CycleOnline, CycleNone} {
		s := NewSystem(Options{Form: IF, Cycles: pol, Seed: 2})
		a := atoms(1)
		vs := make([]*Var, 6)
		for i := range vs {
			vs[i] = s.Fresh(fmt.Sprintf("v%d", i))
		}
		for i := range vs {
			s.AddConstraint(vs[i], vs[(i+1)%len(vs)])
		}
		s.AddConstraint(a[0], vs[3])
		ve := s.BuildVEClosure(VEOrderMinDegree)
		for i, v := range vs {
			if got := ve.LeastSolution(v); len(got) != 1 || got[0] != a[0] {
				t.Fatalf("%v: VE LS(v%d) = %v, want [a0]", pol, i, got)
			}
		}
	}
}
