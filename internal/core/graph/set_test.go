package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// refVarSet is the pre-hybrid, always-map-backed reference implementation
// of the adjacency set: an insertion-ordered slice plus a membership map,
// as core used before the hybrid small-set representation. The hybrid set
// must be observationally identical to it.
type refVarSet struct {
	list []*Var
	set  map[*Var]struct{}
}

func (s *refVarSet) add(v *Var) bool {
	if _, ok := s.set[v]; ok {
		return false
	}
	if s.set == nil {
		s.set = make(map[*Var]struct{})
	}
	s.set[v] = struct{}{}
	s.list = append(s.list, v)
	return true
}

func (s *refVarSet) has(v *Var) bool {
	_, ok := s.set[v]
	return ok
}

func (s *refVarSet) compact(self *Var) []*Var {
	out := s.list[:0]
	seen := make(map[*Var]struct{})
	s.set = seen
	for _, v := range s.list {
		v = Find(v)
		if v == self {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	s.list = out
	return out
}

// TestHybridSetMatchesMapReference drives random operation streams —
// inserts, membership probes, collapse-style forwarding and compaction —
// through the hybrid small-set and the map-backed reference in lockstep,
// crossing the promotion threshold in both directions, and demands
// identical membership answers and identical insertion order throughout.
func TestHybridSetMatchesMapReference(t *testing.T) {
	property := func(seed16 uint16) bool {
		rng := rand.New(rand.NewSource(int64(seed16)))
		pool := make([]*Var, 3*smallSetThreshold)
		for i := range pool {
			pool[i] = NewVar(fmt.Sprintf("p%d", i), i, uint64(i))
		}
		var hy VarSet
		var ref refVarSet
		self := pool[0]
		for op := 0; op < 400; op++ {
			v := pool[rng.Intn(len(pool))]
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // insert
				if hy.Add(v) != ref.add(v) {
					t.Logf("seed %d op %d: add(%s) disagrees", seed16, op, v)
					return false
				}
			case 5, 6, 7: // membership probe
				if hy.Has(v) != ref.has(v) {
					t.Logf("seed %d op %d: has(%s) disagrees", seed16, op, v)
					return false
				}
			case 8: // collapse: forward a pool variable to a lower one
				if v != self && v.parent == nil && rng.Intn(2) == 0 {
					v.parent = pool[rng.Intn(v.id+1)]
					if v.parent == v {
						v.parent = nil
					}
				}
			default: // canonicalise both sets
				h := hy.Compact(self)
				r := ref.compact(self)
				if len(h) != len(r) {
					t.Logf("seed %d op %d: compact length %d != %d", seed16, op, len(h), len(r))
					return false
				}
				for i := range h {
					if h[i] != r[i] {
						t.Logf("seed %d op %d: compact order differs at %d", seed16, op, i)
						return false
					}
				}
			}
			// Insertion order must agree at every step.
			if len(hy.list) != len(ref.list) {
				t.Logf("seed %d op %d: list length %d != %d", seed16, op, len(hy.list), len(ref.list))
				return false
			}
			for i := range hy.list {
				if hy.list[i] != ref.list[i] {
					t.Logf("seed %d op %d: insertion order differs at %d", seed16, op, i)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestHybridSetPromotionBoundary pins the promotion behaviour: a set stays
// map-free up to the threshold, promotes beyond it, and keeps answering
// identically around the boundary.
func TestHybridSetPromotionBoundary(t *testing.T) {
	vars := make([]*Var, 2*smallSetThreshold)
	for i := range vars {
		vars[i] = NewVar(fmt.Sprintf("b%d", i), i, uint64(i))
	}
	var s VarSet
	for i, v := range vars {
		if !s.Add(v) {
			t.Fatalf("add(%d) not new", i)
		}
		if s.Add(v) {
			t.Fatalf("re-add(%d) reported new", i)
		}
		wantMap := len(s.list) > smallSetThreshold
		if (s.set != nil) != wantMap {
			t.Fatalf("after %d inserts: map present = %v, want %v", i+1, s.set != nil, wantMap)
		}
		for j := 0; j <= i; j++ {
			if !s.Has(vars[j]) {
				t.Fatalf("after %d inserts: has(%d) = false", i+1, j)
			}
		}
		if s.Has(vars[len(vars)-1]) && i < len(vars)-1 {
			t.Fatalf("after %d inserts: phantom membership", i+1)
		}
		if s.Size() != i+1 {
			t.Fatalf("size = %d, want %d", s.Size(), i+1)
		}
	}
	for i, v := range s.list {
		if v != vars[i] {
			t.Fatalf("insertion order broken at %d", i)
		}
	}
}

// TestTakeEmptiesSet pins Take's contract: it hands back the stored list
// and leaves the set empty and reusable in slice mode.
func TestTakeEmptiesSet(t *testing.T) {
	var s VarSet
	vars := make([]*Var, smallSetThreshold+4)
	for i := range vars {
		vars[i] = NewVar(fmt.Sprintf("t%d", i), i, uint64(i))
		s.Add(vars[i])
	}
	got := s.Take()
	if len(got) != len(vars) {
		t.Fatalf("Take returned %d entries, want %d", len(got), len(vars))
	}
	if s.Size() != 0 || s.set != nil {
		t.Fatalf("set not emptied by Take")
	}
	if !s.Add(vars[0]) {
		t.Fatalf("re-add after Take not new")
	}
}
