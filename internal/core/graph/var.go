package graph

// Var is a set variable. Variables are created through a Store (normally
// via the solver façade's Fresh) and belong to the store that created
// them; they must not be shared across stores.
//
// The store owns the identity fields (name, creation index, total-order
// position, union-find forwarding pointer) and the four adjacency sets.
// Mark and Sol are slots the layers above hang per-variable state on: the
// cycle strategy uses Mark as its search-epoch mark, and the
// least-solution engine keeps its cached node in Sol. The store itself
// never interprets either.
type Var struct {
	name  string
	id    int    // creation index within the owning store
	order uint64 // position in the random total order o(·)

	parent *Var // union-find forwarding pointer; nil when representative

	PredV VarSet  // variable predecessors (inductive form only)
	PredS TermSet // source predecessors c(...) ⊆ X
	SuccV VarSet  // variable successors
	SuccK TermSet // sink successors X ⊆ c(...)

	// Mark is an epoch mark owned by the cycle strategy's chain search.
	Mark uint64

	cleanEpoch uint64 // last merge epoch at which adjacency was compacted

	// Sol is the least-solution engine's per-variable cache slot.
	Sol SolSlot
}

// SolSlot is per-variable storage for a least-solution engine: an opaque
// solution node (engine-owned; nil means never computed), a dirty mark for
// the next pass's recomputation cone, and a scratch index for the pass's
// ascending sweep.
type SolSlot struct {
	Node    any
	Pending bool
	Idx     int32
}

// NewVar constructs a detached variable. Most callers go through
// Store.Fresh, which also registers the variable; NewVar exists for tests
// that exercise the adjacency machinery in isolation.
func NewVar(name string, id int, order uint64) *Var {
	return &Var{name: name, id: id, order: order}
}

// Name returns the name the variable was created with.
func (v *Var) Name() string { return v.name }

// ID returns the variable's creation index in its owning store. Creation
// indices are dense and deterministic for a deterministic client, which is
// what allows the oracle to align two runs.
func (v *Var) ID() int { return v.id }

// Order returns the variable's position in the total order o(·).
func (v *Var) Order() uint64 { return v.order }

// Forwarded reports whether the variable has been merged away (it forwards
// to another variable; Find returns its representative).
func (v *Var) Forwarded() bool { return v.parent != nil }

// String returns the variable's name.
func (v *Var) String() string { return v.name }

func (v *Var) isExpr() {}

// Find follows forwarding pointers to v's representative, compressing the
// path as it goes.
func Find(v *Var) *Var {
	if v.parent == nil {
		return v
	}
	root := v
	for root.parent != nil {
		root = root.parent
	}
	for v.parent != nil {
		next := v.parent
		v.parent = root
		v = next
	}
	return root
}

// Before reports whether a precedes b in the total order o(·). Random
// 64-bit orders collide with negligible probability, but creation index
// breaks ties so the order is always total.
func Before(a, b *Var) bool {
	if a.order != b.order {
		return a.order < b.order
	}
	return a.id < b.id
}
