package graph

// This file is the flat-memory adjacency backend: a chunked arena that
// owns the element storage of every adjacency set in a store, plus the
// compaction pass that repacks it into CSR layout (each canonical
// variable's edge blocks contiguous, blocks laid out in creation order).
//
// The arena changes *where* adjacency elements live, never what a set
// contains or the order it iterates in: SmallSet still appends in
// insertion order and still promotes to a membership map past the
// threshold, so closure, cycle detection and every counter are
// bit-identical to the hybrid (per-set Go slice) representation. That
// invariance is what lets the engine select the representation purely by
// Options and gate it with differential tests.
//
// Lifetime rules:
//
//   - Segments are append-only views into arena chunks. A set grows by
//     relocating to a fresh segment of twice the capacity; the old
//     segment's capacity is retired (it becomes garbage until the next
//     compaction).
//   - Compaction rebuilds every live set densely in a fresh chunk
//     sequence and bumps the arena epoch. It must only run at quiescent
//     points — no worklist entry, snapshot or iterator may reference the
//     old storage. The engine compacts at the end of a drain; snapshot
//     layers copy or intern what they capture, so they never alias arena
//     memory (the epoch exists so that invariant is checkable).

// Repr selects the adjacency storage representation of a Store.
type Repr int

const (
	// ReprHybrid is the classic layout: each adjacency set owns a plain
	// Go slice (plus a membership map once it outgrows the threshold).
	ReprHybrid Repr = iota
	// ReprCSR backs every adjacency set with chunked arena segments and
	// periodically repacks them into CSR layout. Propagation results are
	// bit-identical to ReprHybrid; only memory layout and cost change.
	ReprCSR
)

// String returns the flag spelling of the representation.
func (r Repr) String() string {
	if r == ReprCSR {
		return "csr"
	}
	return "hybrid"
}

const (
	// arenaChunkCap is the number of elements per arena chunk. Segments
	// never span chunks; a request larger than arenaMaxSegInChunk gets a
	// dedicated chunk of exactly its capacity.
	arenaChunkCap      = 8192
	arenaMaxSegInChunk = arenaChunkCap / 4
	// arenaMinSegCap is the capacity of the first segment a set receives.
	arenaMinSegCap = 4
	// arenaCompactMin and arenaCompactFrac gate compaction: at least
	// arenaCompactMin retired elements, and retired capacity at least
	// 1/arenaCompactFrac of everything handed out.
	arenaCompactMin  = 1 << 14
	arenaCompactFrac = 2
)

// arena is a chunked slab allocator for adjacency segments of one element
// type. It hands out zero-length, fixed-capacity segments carved from
// large chunks; sets append into their segment in place and come back for
// a bigger one when full.
type arena[T comparable] struct {
	chunk []T // current chunk being carved
	used  int // elements of chunk already carved

	chunks  int   // chunks allocated since the last compaction
	handed  int64 // segment capacity handed out since the last compaction
	retired int64 // capacity retired (relocation, collapse) since then

	compactions uint64 // total compactions over the arena's lifetime
	epoch       uint64 // bumped by each compaction
}

// alloc returns an empty segment with the given capacity.
func (a *arena[T]) alloc(capacity int) []T {
	if capacity > arenaMaxSegInChunk {
		a.chunks++
		a.handed += int64(capacity)
		return make([]T, 0, capacity)
	}
	if a.used+capacity > cap(a.chunk) {
		a.chunk = make([]T, arenaChunkCap)
		a.used = 0
		a.chunks++
	}
	seg := a.chunk[a.used : a.used : a.used+capacity]
	a.used += capacity
	a.handed += int64(capacity)
	return seg
}

// grow relocates a full segment to one of twice the capacity, retiring
// the old storage.
func (a *arena[T]) grow(old []T) []T {
	newCap := arenaMinSegCap
	if c := cap(old); c > 0 {
		newCap = 2 * c
	}
	seg := a.alloc(newCap)
	seg = append(seg, old...)
	a.retired += int64(cap(old))
	return seg
}

// retire returns a segment's capacity to the garbage pool (the set no
// longer references it).
func (a *arena[T]) retire(capacity int) {
	a.retired += int64(capacity)
}

// shouldCompact reports whether enough retired capacity has accumulated
// to make a repack worthwhile.
func (a *arena[T]) shouldCompact() bool {
	return a.retired >= arenaCompactMin && a.retired*arenaCompactFrac >= a.handed
}

// reset clears the carving state for a compaction rebuild and opens a new
// epoch. Live segments are re-allocated by the caller afterwards.
func (a *arena[T]) reset() {
	a.chunk = nil
	a.used = 0
	a.chunks = 0
	a.handed = 0
	a.retired = 0
	a.compactions++
	a.epoch++
}

// ArenaStats describes the flat-memory backend of a store: how many edge
// blocks (chunks) are allocated, how much segment capacity is live vs
// retired, and how many compaction epochs have passed. All zero under
// ReprHybrid.
type ArenaStats struct {
	// Chunks is the number of edge-block chunks currently allocated
	// across the variable and term arenas.
	Chunks int `json:"chunks"`
	// HandedOut is the total segment capacity handed out since the last
	// compaction; Retired is how much of it is no longer referenced.
	HandedOut int64 `json:"handed_out"`
	Retired   int64 `json:"retired"`
	// Compactions is the number of CSR repacks run over the store's
	// lifetime; Epoch is the current arena epoch (bumped per repack).
	Compactions uint64 `json:"compactions"`
	Epoch       uint64 `json:"epoch"`
}

// SetRepr selects the adjacency storage representation. It must be called
// before the first Fresh; the representation is fixed for the store's
// lifetime.
func (st *Store) SetRepr(r Repr) {
	if len(st.created) > 0 {
		panic("graph: SetRepr after Fresh")
	}
	st.repr = r
	if r == ReprCSR && st.varArena == nil {
		st.varArena = &arena[*Var]{}
		st.termArena = &arena[*Term]{}
	}
}

// Repr returns the adjacency storage representation in use.
func (st *Store) Repr() Repr { return st.repr }

// attachArenas points a fresh variable's adjacency sets at the store's
// arenas (no-op under ReprHybrid).
func (st *Store) attachArenas(v *Var) {
	if st.repr != ReprCSR {
		return
	}
	v.PredV.ar = st.varArena
	v.SuccV.ar = st.varArena
	v.PredS.ar = st.termArena
	v.SuccK.ar = st.termArena
}

// ReleaseStorage detaches v's adjacency sets and retires their arena
// capacity. The engine calls it for collapsed variables once no pending
// worklist entry can reference their term sets.
func (v *Var) ReleaseStorage() {
	v.PredV.release()
	v.PredS.release()
	v.SuccV.release()
	v.SuccK.release()
}

// MaybeCompactArenas runs a CSR repack when enough retired capacity has
// accumulated. The caller must be at a quiescent point: an empty
// worklist and no live iteration over any adjacency list.
func (st *Store) MaybeCompactArenas() bool {
	if st.repr != ReprCSR {
		return false
	}
	if !st.varArena.shouldCompact() && !st.termArena.shouldCompact() {
		return false
	}
	st.CompactArenas()
	return true
}

// CompactArenas repacks every live adjacency set densely into fresh
// chunks, in creation order of the canonical variables — the CSR layout:
// each variable's four edge blocks contiguous, blocks of consecutive
// variables adjacent. Forwarded variables' leftover storage is released
// first so no old chunk stays pinned. Bumps the arena epoch.
func (st *Store) CompactArenas() {
	if st.repr != ReprCSR {
		return
	}
	for _, v := range st.vars {
		if v.parent != nil {
			v.ReleaseStorage()
		}
	}
	st.compactLive()
	st.varArena.reset()
	st.termArena.reset()
	for _, v := range st.vars {
		if v.parent != nil {
			continue
		}
		v.PredV.repack(st.varArena)
		v.SuccV.repack(st.varArena)
		v.PredS.repack(st.termArena)
		v.SuccK.repack(st.termArena)
	}
}

// ArenaStats reports the combined state of the store's arenas.
func (st *Store) ArenaStats() ArenaStats {
	if st.repr != ReprCSR {
		return ArenaStats{}
	}
	return ArenaStats{
		Chunks:      st.varArena.chunks + st.termArena.chunks,
		HandedOut:   st.varArena.handed + st.termArena.handed,
		Retired:     st.varArena.retired + st.termArena.retired,
		Compactions: st.varArena.compactions + st.termArena.compactions,
		Epoch:       st.varArena.epoch,
	}
}
