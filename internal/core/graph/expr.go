package graph

import (
	"strings"
	"sync/atomic"
)

// Variance describes how a constructor argument position behaves under
// inclusion: a covariant position grows the constructed set as the argument
// grows, a contravariant position shrinks it.
type Variance int8

const (
	// Covariant argument positions decompose c(a) ⊆ c(b) into a ⊆ b.
	Covariant Variance = iota
	// Contravariant argument positions decompose c(a) ⊆ c(b) into b ⊆ a.
	Contravariant
)

// String returns "+" for covariant and "-" for contravariant positions.
func (v Variance) String() string {
	if v == Covariant {
		return "+"
	}
	return "-"
}

// A Constructor is an n-ary set constructor with a fixed signature. Two
// constructed terms are comparable only if they share the same
// *Constructor; constraints between terms of distinct constructors are
// inconsistent.
type Constructor struct {
	name string
	sig  []Variance
}

// NewConstructor returns a fresh constructor with the given name and
// per-argument variance signature. Constructors are compared by identity,
// so two calls with the same name yield incompatible constructors.
func NewConstructor(name string, sig ...Variance) *Constructor {
	return &Constructor{name: name, sig: sig}
}

// Name returns the constructor's display name.
func (c *Constructor) Name() string { return c.name }

// Arity returns the number of arguments the constructor takes.
func (c *Constructor) Arity() int { return len(c.sig) }

// Variance returns the variance of argument position i.
func (c *Constructor) Variance(i int) Variance { return c.sig[i] }

// Expr is a set expression: a variable, a constructed term, or one of the
// special sets Zero (the empty set) and One (the universal set).
type Expr interface {
	// String renders the expression in the paper's surface syntax.
	String() string
	isExpr()
}

// Term is a constructed set expression c(se1, ..., sen). Terms are compared
// by identity: reusing one *Term for repeated occurrences of the same
// abstract object (as the points-to analysis does for each location's ref
// term) is what makes redundant-edge detection meaningful.
type Term struct {
	con  *Constructor
	args []Expr
	seq  uint32 // global creation sequence; hashed by the LS engine
}

// NewTerm builds a constructed term. It panics if the number of arguments
// does not match the constructor's arity, since that is always a client
// bug.
func NewTerm(c *Constructor, args ...Expr) *Term {
	if len(args) != c.Arity() {
		panic("core: term arity mismatch for constructor " + c.name)
	}
	return &Term{con: c, args: args, seq: termSeq.Add(1)}
}

// termSeq numbers terms at creation. The sequence exists so a
// least-solution engine can content-hash term lists without touching
// pointer values; it is atomic because clients may build terms from
// multiple goroutines even though each solver is single-threaded.
var termSeq atomic.Uint32

// Con returns the term's constructor.
func (t *Term) Con() *Constructor { return t.con }

// Arg returns the i-th argument expression.
func (t *Term) Arg(i int) Expr { return t.args[i] }

// Seq returns the term's global creation sequence number, a stable
// content-hashing key for engines that index term lists.
func (t *Term) Seq() uint32 { return t.seq }

// String renders the term as c(arg1,...,argn).
func (t *Term) String() string {
	if len(t.args) == 0 {
		return t.con.name
	}
	var b strings.Builder
	b.WriteString(t.con.name)
	b.WriteByte('(')
	for i, a := range t.args {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(a.String())
	}
	b.WriteByte(')')
	return b.String()
}

func (t *Term) isExpr() {}

// Union is a set union usable on the left-hand side of a constraint:
// (L₁ ∪ L₂) ⊆ R decomposes into L₁ ⊆ R and L₂ ⊆ R. (On a right-hand side
// a union would require disjunctive reasoning, which inclusion constraint
// resolution does not support; the resolution engine rejects it.)
type Union struct {
	exprs []Expr
}

// NewUnion builds the union of the given expressions.
func NewUnion(exprs ...Expr) *Union { return &Union{exprs: exprs} }

// Exprs returns the union's members.
func (u *Union) Exprs() []Expr { return u.exprs }

// String renders (e1 ∪ e2 ∪ ...).
func (u *Union) String() string { return joinExprs(u.exprs, " ∪ ") }

func (u *Union) isExpr() {}

// Intersection is a set intersection usable on the right-hand side of a
// constraint: L ⊆ (R₁ ∩ R₂) decomposes into L ⊆ R₁ and L ⊆ R₂. (On a
// left-hand side an intersection is not expressible in this fragment; the
// resolution engine rejects it.)
type Intersection struct {
	exprs []Expr
}

// NewIntersection builds the intersection of the given expressions.
func NewIntersection(exprs ...Expr) *Intersection {
	return &Intersection{exprs: exprs}
}

// Exprs returns the intersection's members.
func (i *Intersection) Exprs() []Expr { return i.exprs }

// String renders (e1 ∩ e2 ∩ ...).
func (i *Intersection) String() string { return joinExprs(i.exprs, " ∩ ") }

func (i *Intersection) isExpr() {}

func joinExprs(exprs []Expr, sep string) string {
	var b strings.Builder
	b.WriteByte('(')
	for i, e := range exprs {
		if i > 0 {
			b.WriteString(sep)
		}
		b.WriteString(e.String())
	}
	b.WriteByte(')')
	return b.String()
}

var (
	zeroCon = NewConstructor("0")
	oneCon  = NewConstructor("1")

	// Zero is the empty set. 0 ⊆ R holds trivially for every R, and a
	// constraint c(...) ⊆ 0 is inconsistent.
	Zero Expr = NewTerm(zeroCon)
	// One is the universal set. L ⊆ 1 holds trivially for every L, and a
	// constraint 1 ⊆ c(...) is inconsistent.
	One Expr = NewTerm(oneCon)
)

// IsZero reports whether e is the Zero singleton.
func IsZero(e Expr) bool { return e == Zero }

// IsOne reports whether e is the One singleton.
func IsOne(e Expr) bool { return e == One }
