package graph

import (
	"errors"
	"strings"
	"testing"
)

// collapsedStore builds a tiny store with one collapse applied: X, Y and Z
// where Z has been merged into X, a source a ⊆ X, the successor edge
// X → Y, a predecessor edge recorded against the dead Z, and a sink
// Y ⊆ end. The DOT renderer must route the dead variable through its
// witness and never mention it.
func collapsedStore() *Store {
	var st Store
	x := st.Fresh("X", 1)
	y := st.Fresh("Y", 2)
	z := st.Fresh("Z", 3)
	a := NewTerm(NewConstructor("a"))
	end := NewTerm(NewConstructor("end"))
	x.PredS.Add(a)
	x.SuccV.Add(y)
	y.PredV.Add(z)
	y.SuccK.Add(end)
	st.Forward(z, x)
	st.BumpMergeEpoch()
	return &st
}

// TestWriteDOTGolden pins the exact rendering of the collapsed graph —
// node declarations in id order, then per variable the dashed source and
// predecessor edges and the solid successor and sink edges.
func TestWriteDOTGolden(t *testing.T) {
	const want = `digraph constraints {
  rankdir=LR;
  node [fontsize=10];
  v0 [label="X"];
  v1 [label="Y"];
  t0 [label="a", shape=box];
  t0 -> v0 [style=dashed];
  v0 -> v1;
  v0 -> v1 [style=dashed];
  t1 [label="end", shape=box, style=dashed];
  v1 -> t1;
}
`
	var sb strings.Builder
	if err := collapsedStore().WriteDOT(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != want {
		t.Errorf("DOT output mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// failAfterWriter accepts n writes and then fails every subsequent one
// with its sentinel error.
type failAfterWriter struct {
	n   int
	err error
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, w.err
	}
	w.n--
	return len(p), nil
}

// TestWriteDOTPropagatesErrors fails the underlying writer at every write
// position in turn: WriteDOT must surface exactly the injected error no
// matter where in the stream it strikes, and succeed once the writer
// outlasts the stream.
func TestWriteDOTPropagatesErrors(t *testing.T) {
	st := collapsedStore()
	var count strings.Builder
	if err := st.WriteDOT(&count); err != nil {
		t.Fatal(err)
	}
	writes := strings.Count(count.String(), "\n") // one Fprint per line

	sentinel := errors.New("sink failed")
	for n := 0; n < writes; n++ {
		if err := st.WriteDOT(&failAfterWriter{n: n, err: sentinel}); !errors.Is(err, sentinel) {
			t.Fatalf("writer failing at write %d: got %v, want sentinel", n, err)
		}
	}
	if err := st.WriteDOT(&failAfterWriter{n: writes, err: sentinel}); err != nil {
		t.Fatalf("writer with exact capacity errored: %v", err)
	}
}

// TestErrWriterLatchesFirstError pins the latch: after one failure the
// wrapper reports the first error forever and stops touching the sink.
func TestErrWriterLatchesFirstError(t *testing.T) {
	first := errors.New("first")
	ew := &errWriter{w: &failAfterWriter{n: 1, err: first}}
	if _, err := ew.Write([]byte("ok")); err != nil {
		t.Fatalf("first write failed: %v", err)
	}
	if _, err := ew.Write([]byte("boom")); !errors.Is(err, first) {
		t.Fatalf("second write: %v", err)
	}
	if _, err := ew.Write([]byte("after")); !errors.Is(err, first) {
		t.Fatalf("latched error lost: %v", err)
	}
	if ew.err != first {
		t.Fatalf("latched %v, want first", ew.err)
	}
}
