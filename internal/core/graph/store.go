// Package graph is the storage layer of the inclusion-constraint solver:
// the variable store, the union-find forwarding structure, the hybrid
// small-set adjacency representation, and the source/sink/variable edge
// sets. It makes no policy decisions — which endpoint stores an edge,
// when cycles are searched for or collapsed, and how least solutions are
// computed all live in the resolution/strategy layer (internal/core) and
// the public façade (internal/solver) built on top of it.
package graph

// Store owns the variables of one constraint system: the live list walked
// by whole-graph operations, the creation-index space shared with the
// oracle, and the merge epoch that drives lazy adjacency canonicalisation
// after collapses.
//
// A Store is not safe for concurrent use; the solver façade serialises
// access.
type Store struct {
	vars    []*Var // live variables in creation order, lazily compacted
	dead    int    // eliminated variables still present in vars
	created []*Var // creation-index → variable handed out (aliases included)

	mergeEpoch uint64 // bumped on every collapse; drives lazy compaction

	// Flat-memory backend (see csr.go). Both arenas are nil under
	// ReprHybrid; under ReprCSR every adjacency set of every variable is
	// a segment of one of them.
	repr      Repr
	varArena  *arena[*Var]
	termArena *arena[*Term]
}

// Fresh allocates a variable with the next creation index and the given
// total-order position, and registers it as live.
func (st *Store) Fresh(name string, order uint64) *Var {
	v := NewVar(name, len(st.created), order)
	st.attachArenas(v)
	st.created = append(st.created, v)
	st.vars = append(st.vars, v)
	return v
}

// AddAlias records an existing variable as the one handed out for the next
// creation index without allocating. The oracle policy uses this to
// pre-merge a fresh variable into its predicted cycle witness.
func (st *Store) AddAlias(v *Var) {
	st.created = append(st.created, v)
}

// NumCreated returns the number of creation indices handed out (the
// creation-index space, shared across oracle-aligned runs).
func (st *Store) NumCreated() int { return len(st.created) }

// CreatedVar returns the variable handed out for creation index i.
func (st *Store) CreatedVar(i int) *Var { return st.created[i] }

// Forward merges a into w: a forwards to w under Find and is counted dead
// for lazy live-list compaction. The caller re-inserts a's edges onto w
// through the resolution engine (they carry closure obligations the store
// cannot discharge).
func (st *Store) Forward(a, w *Var) {
	a.parent = w
	st.dead++
}

// BumpMergeEpoch starts a new merge epoch. Clean canonicalises each
// variable's adjacency at most once per epoch, so the engine bumps it
// once per collapse.
func (st *Store) BumpMergeEpoch() { st.mergeEpoch++ }

// ResetVar returns v to its freshly-created state: adjacency cleared (arena
// capacity retired, arenas stay attached), forwarding pointer removed,
// search mark and least-solution slot zeroed. The retraction engine calls
// it for every variable in a dirty cone before replaying the surviving
// constraints; callers must follow up with RebuildLive so the live list and
// dead count reflect the un-forwarded variables.
func (st *Store) ResetVar(v *Var) {
	v.ReleaseStorage()
	v.parent = nil
	v.Mark = 0
	v.cleanEpoch = 0
	v.Sol = SolSlot{}
}

// RebuildLive reconstructs the live list from the creation-index space:
// every distinct created variable, in creation order, with the dead count
// recomputed from the forwarding pointers. Oracle pre-merged aliases occupy
// several creation indices with one variable; they are listed once.
func (st *Store) RebuildLive() {
	seen := make(map[*Var]struct{}, len(st.created))
	st.vars = st.vars[:0]
	st.dead = 0
	for _, v := range st.created {
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		st.vars = append(st.vars, v)
		if v.parent != nil {
			st.dead++
		}
	}
}

// Clean lazily canonicalises v's variable adjacency after collapses.
func (st *Store) Clean(v *Var) {
	if v.cleanEpoch == st.mergeEpoch {
		return
	}
	v.cleanEpoch = st.mergeEpoch
	v.PredV.Compact(v)
	v.SuccV.Compact(v)
}

// compactLive drops eliminated variables from st.vars once a quarter of
// the list is dead, so whole-graph walks cost O(live), not O(ever
// created). Compaction preserves creation order and is amortised O(1) per
// elimination. Callers must not be mid-iteration over st.vars.
func (st *Store) compactLive() {
	if st.dead == 0 || st.dead < len(st.vars)/4 {
		return
	}
	out := st.vars[:0]
	for _, v := range st.vars {
		if v.parent == nil {
			out = append(out, v)
		}
	}
	st.vars = out
	st.dead = 0
}

// CanonicalVars returns the canonical (non-eliminated) variables in
// creation order.
func (st *Store) CanonicalVars() []*Var {
	st.compactLive()
	out := make([]*Var, 0, len(st.vars)-st.dead)
	for _, v := range st.vars {
		if v.parent == nil {
			out = append(out, v)
		}
	}
	return out
}

// EdgeCounts tallies the distinct edges in the current graph: variable →
// variable edges (counted once regardless of orientation), source edges
// c(...) ⊆ X and sink edges X ⊆ c(...). Stale aliases left by collapses
// are canonicalised before counting.
func (st *Store) EdgeCounts() (varVar, source, sink int) {
	st.compactLive()
	for _, v := range st.vars {
		if v.parent != nil {
			continue
		}
		st.Clean(v)
		varVar += v.PredV.Size() + v.SuccV.Size()
		source += v.PredS.Size()
		sink += v.SuccK.Size()
	}
	return varVar, source, sink
}

// VarAdjacency builds, over the canonical variables vars, the directed
// inclusion adjacency: an edge u → w meaning u ⊆ w, combining successor
// edges (stored at u) and predecessor edges (stored at w). The returned
// index maps each canonical variable to its position in vars.
func (st *Store) VarAdjacency(vars []*Var) (adj [][]int, index map[*Var]int) {
	index = make(map[*Var]int, len(vars))
	for i, v := range vars {
		index[v] = i
	}
	adj = make([][]int, len(vars))
	for i, v := range vars {
		st.Clean(v)
		for _, w := range v.SuccV.List() {
			if j, ok := index[Find(w)]; ok {
				adj[i] = append(adj[i], j)
			}
		}
		for _, p := range v.PredV.List() {
			if j, ok := index[Find(p)]; ok {
				adj[j] = append(adj[j], i)
			}
		}
	}
	return adj, index
}
