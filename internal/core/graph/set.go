package graph

// Threshold is the size at which a hybrid adjacency set promotes from a
// plain linear-scanned slice to slice + membership map. Most variables in
// real constraint graphs have only a handful of edges (the closed graphs
// sit near density k ≈ 2, see the paper's Section 5), so staying below the
// threshold avoids a map allocation per adjacency set — up to four per
// variable.
const smallSetThreshold = 8

// SmallSet is an insertion-ordered hybrid set. The slice preserves
// insertion order so that graph closure — and therefore cycle detection,
// which is sensitive to the order in which edges appear — is deterministic
// for a deterministic client. Membership is answered by scanning the slice
// while the set is small; once it outgrows the threshold a map is built
// and kept in sync.
type SmallSet[T comparable] struct {
	list []T
	set  map[T]struct{} // nil while len(list) <= smallSetThreshold
	ar   *arena[T]      // nil under ReprHybrid; owns list's storage otherwise
}

// Add inserts v and reports whether it was new.
func (s *SmallSet[T]) Add(v T) bool {
	if s.set != nil {
		if _, ok := s.set[v]; ok {
			return false
		}
		s.set[v] = struct{}{}
		s.append(v)
		return true
	}
	for _, w := range s.list {
		if w == v {
			return false
		}
	}
	s.append(v)
	if len(s.list) > smallSetThreshold {
		s.promote()
	}
	return true
}

// append grows the backing storage through the arena when one is
// attached; the element order and every observable set behavior are
// identical either way.
func (s *SmallSet[T]) append(v T) {
	if s.ar != nil && len(s.list) == cap(s.list) {
		s.list = s.ar.grow(s.list)
	}
	s.list = append(s.list, v)
}

// promote builds the membership map from the current slice.
func (s *SmallSet[T]) promote() {
	m := make(map[T]struct{}, 2*len(s.list))
	for _, w := range s.list {
		m[w] = struct{}{}
	}
	s.set = m
}

// Has reports whether v is present (under the exact value; callers
// canonicalise variables first).
func (s *SmallSet[T]) Has(v T) bool {
	if s.set != nil {
		_, ok := s.set[v]
		return ok
	}
	for _, w := range s.list {
		if w == v {
			return true
		}
	}
	return false
}

// Size returns the number of stored entries, including stale aliases.
func (s *SmallSet[T]) Size() int { return len(s.list) }

// List returns the stored entries in insertion order. The slice aliases
// the set's own storage: callers must not mutate it, and must not hold it
// across an Add or Compact.
func (s *SmallSet[T]) List() []T { return s.list }

// Take removes and returns all entries, leaving the set empty. Used when a
// collapsed variable's edges are re-inserted onto the witness.
func (s *SmallSet[T]) Take() []T {
	l := s.list
	if s.ar != nil {
		s.ar.retire(cap(l))
	}
	s.list = nil
	s.set = nil
	return l
}

// release drops the set's contents and retires its arena storage.
func (s *SmallSet[T]) release() {
	if s.ar != nil {
		s.ar.retire(cap(s.list))
	}
	s.list = nil
	s.set = nil
}

// repack re-allocates the set's elements densely in a (post-reset) arena.
func (s *SmallSet[T]) repack(a *arena[T]) {
	s.ar = a
	if len(s.list) == 0 {
		s.list = nil
		return
	}
	seg := a.alloc(len(s.list))
	s.list = append(seg, s.list...)
}

// VarSet is the variable adjacency set. After cycles are collapsed,
// entries may become stale (their variable forwarded to a witness); stale
// entries are canonicalised lazily by Compact.
type VarSet struct {
	SmallSet[*Var]
}

// Compact canonicalises every entry under Find, dropping duplicates and
// any entry equal to self. It returns the canonical slice, which aliases
// the set's own storage. A set that shrinks back under the threshold
// demotes to the plain-slice representation.
func (s *VarSet) Compact(self *Var) []*Var {
	out := s.list[:0]
	if s.set == nil {
		for _, v := range s.list {
			v = Find(v)
			if v == self || sliceHas(out, v) {
				continue
			}
			out = append(out, v)
		}
		s.list = out
		return out
	}
	seen := s.set
	clear(seen)
	for _, v := range s.list {
		v = Find(v)
		if v == self {
			continue
		}
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	s.list = out
	if len(out) <= smallSetThreshold {
		s.set = nil
	}
	return out
}

func sliceHas(xs []*Var, v *Var) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// TermSet is the source/sink adjacency set. Terms never become stale, so
// no compaction is needed.
type TermSet = SmallSet[*Term]
