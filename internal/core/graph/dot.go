package graph

import (
	"fmt"
	"io"
	"sort"
)

// errWriter forwards writes to an underlying writer and latches the first
// error it sees; subsequent writes are suppressed. It lets WriteDOT stream
// dozens of Fprint calls and still report the first failure instead of
// silently discarding mid-stream errors.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err != nil {
		return 0, ew.err
	}
	n, err := ew.w.Write(p)
	if err != nil {
		ew.err = err
	}
	return n, err
}

// WriteDOT renders the current constraint graph in Graphviz DOT format:
// canonical variables as ellipses, sources and sinks as boxes, successor
// edges solid and predecessor edges dashed (the paper's dotted arrows).
// Intended for debugging and for visualising small systems; the output is
// deterministic. The first write error encountered is returned.
func (st *Store) WriteDOT(w io.Writer) error {
	ew := &errWriter{w: w}
	fmt.Fprintln(ew, "digraph constraints {")
	fmt.Fprintln(ew, "  rankdir=LR;")
	fmt.Fprintln(ew, "  node [fontsize=10];")

	vars := st.CanonicalVars()
	sort.Slice(vars, func(i, j int) bool { return vars[i].id < vars[j].id })

	termID := map[*Term]string{}
	nextTerm := 0
	termNode := func(t *Term, sink bool) string {
		if id, ok := termID[t]; ok {
			return id
		}
		id := fmt.Sprintf("t%d", nextTerm)
		nextTerm++
		termID[t] = id
		shape := "box"
		if sink {
			shape = "box, style=dashed"
		}
		fmt.Fprintf(ew, "  %s [label=%q, shape=%s];\n", id, t.String(), shape)
		return id
	}

	for _, v := range vars {
		fmt.Fprintf(ew, "  v%d [label=%q];\n", v.id, v.name)
	}
	for _, v := range vars {
		st.Clean(v)
		for _, t := range v.PredS.List() {
			fmt.Fprintf(ew, "  %s -> v%d [style=dashed];\n", termNode(t, false), v.id)
		}
		for _, p := range v.PredV.List() {
			fmt.Fprintf(ew, "  v%d -> v%d [style=dashed];\n", Find(p).id, v.id)
		}
		for _, y := range v.SuccV.List() {
			fmt.Fprintf(ew, "  v%d -> v%d;\n", v.id, Find(y).id)
		}
		for _, t := range v.SuccK.List() {
			fmt.Fprintf(ew, "  v%d -> %s;\n", v.id, termNode(t, true))
		}
	}
	fmt.Fprintln(ew, "}")
	return ew.err
}
