package core

import "polce/internal/scc"

// Oracle predicts, for each variable creation index, the creation index of
// the witness of the strongly connected component the variable will
// eventually belong to. The paper uses it to measure perfect, zero-cost
// cycle elimination: under CycleOracle, System.Fresh returns the witness
// variable instead of allocating a new one, so every SCC is a single node
// for the whole run and the constraint graphs stay acyclic.
//
// An Oracle is built from a completed run (any policy) with BuildOracle and
// is valid for any later run that creates variables in the same order —
// which holds for any deterministic client on the same input, since
// constraint generation does not depend on solver internals.
type Oracle struct {
	witness []int
}

// witnessOf returns the witness creation index for creation index idx, or
// -1 when the oracle has no prediction (a variable beyond the recorded
// run).
func (o *Oracle) witnessOf(idx int) int {
	if idx < len(o.witness) {
		return o.witness[idx]
	}
	return -1
}

// Len returns the number of creation indices the oracle covers.
func (o *Oracle) Len() int { return len(o.witness) }

// sccStrong computes SCCs over the canonical variable-variable inclusion
// graph of s restricted to vars.
func sccStrong(s *System, vars []*Var) (comp []int, count int, index map[*Var]int) {
	adj, index := s.VarAdjacency(vars)
	comp, count = scc.Strong(len(vars), func(i int) []int { return adj[i] })
	return comp, count, index
}

// BuildOracle derives an oracle from a solved system. Two creation indices
// are equivalent when their variables have been merged by online collapse
// or when their representatives lie in the same strongly connected
// component of the closed graph; the witness of a class is its smallest
// creation index. Cycle collapse preserves the solution space, so the
// classes are the same whichever representation or policy produced s.
func BuildOracle(s *System) *Oracle {
	vars := s.CanonicalVars()
	comp, _, index := sccStrong(s, vars)
	witness := make([]int, s.NumCreated())
	classWitness := make(map[int]int)
	for i := range witness {
		c := comp[index[find(s.CreatedVar(i))]]
		w, ok := classWitness[c]
		if !ok {
			w = i
			classWitness[c] = w
		}
		witness[i] = w
	}
	return &Oracle{witness: witness}
}

// CycleClassStats reports, over creation indices, how many variables belong
// to cyclic equivalence classes (classes of size ≥ 2 under
// collapsed-or-same-SCC) and the size of the largest class. On a closed
// system this is the paper's "variables in strongly connected components"
// statistic; it is independent of representation and cycle policy.
func (s *System) CycleClassStats() (inCycles, maxClass int) {
	vars := s.CanonicalVars()
	comp, count, index := sccStrong(s, vars)
	classSize := make([]int, count)
	for i := 0; i < s.NumCreated(); i++ {
		classSize[comp[index[find(s.CreatedVar(i))]]]++
	}
	for _, sz := range classSize {
		if sz >= 2 {
			inCycles += sz
			if sz > maxClass {
				maxClass = sz
			}
		}
	}
	return inCycles, maxClass
}
