package core

import (
	"container/heap"
	"sort"
)

// This file is the offline vertex-elimination closure mode: a
// preprocessing pass in the style of Rankooh–Rintanen's vertex-elimination
// encoding of reachability. Vertices of the (collapsed) inclusion graph
// are eliminated one at a time; eliminating v adds a shortcut edge p → s
// for every live predecessor p and successor s of v. In the resulting
// *filled* graph every original path x →* y is witnessed by an up-down
// path: ascending elimination positions from x to a peak, then descending
// to y (take any path and repeatedly shortcut its earliest-eliminated
// interior vertex — its neighbors on the path are eliminated later, so
// the shortcut exists). Reachability — and hence the least solution —
// then needs only two linear sweeps over the filled graph instead of a
// per-query graph walk:
//
//	ascending sweep:   D(u)  = own(u) ∪ ⋃ D(p)   over filled p → u with
//	                   earlier-eliminated p (sources that reach u going up)
//	descending sweep:  LS(y) = D(y) ∪ ⋃ LS(m)    over filled m → y with
//	                   later-eliminated m (fold each peak's D down to y)
//
// The sweeps are the closure-side counterpart of the LS engine's
// level-scheduled passes; under VEOrderTotal the elimination order is the
// ascending total order o(·) itself, so the ascending sweep visits
// variables in exactly the order the LS engine's o(·)-levelled DAG sweep
// does. VEOrderMinDegree instead eliminates a minimum-degree vertex each
// step (lazy priority queue), which keeps fill low on sparse graphs.
//
// A VEClosure is closed-world: it is built from a drained system at
// snapshot time and answers queries immutably afterwards; constraints
// added later are not reflected (check Version against System.Version).

// VEOrder selects the elimination order of a vertex-elimination closure.
type VEOrder int

const (
	// VEOrderMinDegree eliminates a minimum-degree vertex each step,
	// breaking ties by the total order o(·). This is the classic
	// fill-reducing heuristic and the default.
	VEOrderMinDegree VEOrder = iota
	// VEOrderTotal eliminates in ascending total order o(·) — the same
	// order the LS engine's levelled sweep uses, so the ascending sweep
	// is exactly a sequential replay of those levels.
	VEOrderTotal
)

// String names the order for flags and reports.
func (o VEOrder) String() string {
	if o == VEOrderTotal {
		return "total"
	}
	return "mindegree"
}

// VEStats describes the shape of a built vertex-elimination closure.
type VEStats struct {
	// Vars is the number of canonical variables eliminated.
	Vars int `json:"vars"`
	// Edges is the number of distinct original inclusion edges.
	Edges int `json:"edges"`
	// Fill is the number of shortcut edges elimination added.
	Fill int `json:"fill"`
	// Terms is the total number of term entries materialised across all
	// least solutions (the closure's output size).
	Terms int64 `json:"terms"`
}

// VEClosure is a materialised closed-world least-solution table computed
// by vertex elimination. It is immutable after Build and safe for
// concurrent readers.
type VEClosure struct {
	order   VEOrder
	version uint64
	index   map[*Var]int
	ls      [][]*Term // per canonical variable, sorted by Term.Seq
	stats   VEStats
}

// BuildVEClosure eliminates the current canonical inclusion graph in the
// given order and materialises every variable's least solution. The
// system must be drained (it always is between AddConstraint calls); the
// result reflects the graph as of System.Version() at the time of the
// call.
func (s *System) BuildVEClosure(ord VEOrder) *VEClosure {
	vars := s.CanonicalVars()
	n := len(vars)
	c := &VEClosure{
		order:   ord,
		version: s.Version(),
		index:   make(map[*Var]int, n),
		ls:      make([][]*Term, n),
	}
	c.stats.Vars = n
	for i, v := range vars {
		c.index[v] = i
	}
	if n == 0 {
		return c
	}

	// Dynamic adjacency for the elimination game. VarAdjacency yields each
	// stored edge once, but fill insertion needs O(1) membership, so both
	// directions are kept as index sets.
	adj, _ := s.store.VarAdjacency(vars)
	preds := make([]map[int32]struct{}, n)
	succs := make([]map[int32]struct{}, n)
	for i := range preds {
		preds[i] = make(map[int32]struct{})
		succs[i] = make(map[int32]struct{})
	}
	for u, ws := range adj {
		for _, w := range ws {
			if u == w {
				continue
			}
			if _, dup := succs[u][int32(w)]; dup {
				continue
			}
			succs[u][int32(w)] = struct{}{}
			preds[w][int32(u)] = struct{}{}
			c.stats.Edges++
		}
	}

	// Eliminate every vertex, recording at each one its live predecessors
	// and successors at elimination time — the filled edges toward
	// later-eliminated vertices, which are exactly what the two sweeps
	// consume.
	elimSeq := make([]int32, 0, n) // elimination order, as var indices
	upPreds := make([][]int32, n)  // filled p → u with u eliminated first
	upSuccs := make([][]int32, n)  // filled u → s with u eliminated first
	eliminate := func(u int32) {
		up := sortedKeys(preds[u])
		us := sortedKeys(succs[u])
		upPreds[u] = up
		upSuccs[u] = us
		for _, p := range up {
			delete(succs[p], u)
		}
		for _, w := range us {
			delete(preds[w], u)
		}
		for _, p := range up {
			for _, w := range us {
				if p == w {
					continue
				}
				if _, ok := succs[p][w]; ok {
					continue
				}
				succs[p][w] = struct{}{}
				preds[w][p] = struct{}{}
				c.stats.Fill++
			}
		}
		elimSeq = append(elimSeq, u)
	}

	if ord == VEOrderTotal {
		byOrder := make([]int32, n)
		for i := range byOrder {
			byOrder[i] = int32(i)
		}
		sort.Slice(byOrder, func(a, b int) bool {
			return before(vars[byOrder[a]], vars[byOrder[b]])
		})
		for _, u := range byOrder {
			eliminate(u)
		}
	} else {
		// Lazy min-degree queue (snippet-style): entries carry the degree
		// they were pushed with; stale entries are re-pushed on pop.
		q := make(veQueue, 0, n)
		for i := 0; i < n; i++ {
			q = append(q, veItem{deg: len(preds[i]) + len(succs[i]), order: vars[i].Order(), id: vars[i].ID(), idx: int32(i)})
		}
		heap.Init(&q)
		done := make([]bool, n)
		for q.Len() > 0 {
			it := heap.Pop(&q).(veItem)
			if done[it.idx] {
				continue
			}
			if d := len(preds[it.idx]) + len(succs[it.idx]); d != it.deg {
				it.deg = d
				heap.Push(&q, it)
				continue
			}
			done[it.idx] = true
			eliminate(it.idx)
		}
	}

	// Ascending sweep: push each vertex's D set to its later-eliminated
	// filled successors. D(u) collects every source term that reaches u
	// along a chain of strictly ascending elimination positions.
	d := make([][]*Term, n)
	pending := make([][][]*Term, n) // contributions received so far
	for _, u := range elimSeq {
		own := vars[u].PredS.List()
		d[u] = mergeTermSets(own, pending[u])
		pending[u] = nil
		for _, w := range upSuccs[u] {
			pending[w] = append(pending[w], d[u])
		}
	}

	// Descending sweep: fold each peak's D down. LS(y) = D(y) joined with
	// the LS of every later-eliminated filled predecessor.
	for i := n - 1; i >= 0; i-- {
		u := elimSeq[i]
		var contrib [][]*Term
		for _, m := range upPreds[u] {
			contrib = append(contrib, c.ls[m])
		}
		c.ls[u] = mergeTermSets(d[u], contrib)
		c.stats.Terms += int64(len(c.ls[u]))
	}
	return c
}

// sortedKeys returns a set's indices in ascending order (map iteration is
// randomised; the closure's recorded fill lists must be deterministic).
func sortedKeys(m map[int32]struct{}) []int32 {
	if len(m) == 0 {
		return nil
	}
	out := make([]int32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// mergeTermSets unions a base term list with already-deduplicated
// contribution sets, returning a slice sorted by Term.Seq. Single-source
// nodes alias their input — the common case on chain-shaped graphs — so
// shared suffixes are stored once.
func mergeTermSets(base []*Term, contrib [][]*Term) []*Term {
	nonEmpty := contrib[:0:0]
	for _, c := range contrib {
		if len(c) > 0 {
			nonEmpty = append(nonEmpty, c)
		}
	}
	if len(base) == 0 && len(nonEmpty) == 1 {
		return nonEmpty[0]
	}
	if len(base) == 0 && len(nonEmpty) == 0 {
		return nil
	}
	total := len(base)
	for _, c := range nonEmpty {
		total += len(c)
	}
	out := make([]*Term, 0, total)
	out = append(out, base...)
	for _, c := range nonEmpty {
		out = append(out, c...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq() < out[b].Seq() })
	// Dedup in place (sorted by unique sequence numbers).
	w := 0
	for i, t := range out {
		if i > 0 && t == out[i-1] {
			continue
		}
		out[w] = t
		w++
	}
	return out[:w]
}

// Order returns the elimination order the closure was built with.
func (c *VEClosure) Order() VEOrder { return c.order }

// Version returns the graph version the closure was built at; compare
// against System.Version (or Solver.Version) to detect staleness.
func (c *VEClosure) Version() uint64 { return c.version }

// Stats returns the closure's shape counters.
func (c *VEClosure) Stats() VEStats { return c.stats }

// LeastSolution returns the source terms of v's least solution, sorted by
// term sequence number (not first-reached order — compare against the
// online engine as sets). The slice is owned by the closure and must not
// be modified. Variables unknown to the closure (created after it was
// built) yield nil.
func (c *VEClosure) LeastSolution(v *Var) []*Term {
	i, ok := c.index[find(v)]
	if !ok {
		return nil
	}
	return c.ls[i]
}

// veItem is one lazy min-degree queue entry.
type veItem struct {
	deg   int
	order uint64
	id    int
	idx   int32
}

// veQueue is a min-heap of veItems ordered by (degree, o(·), id) so pops
// are deterministic.
type veQueue []veItem

func (q veQueue) Len() int { return len(q) }
func (q veQueue) Less(a, b int) bool {
	if q[a].deg != q[b].deg {
		return q[a].deg < q[b].deg
	}
	if q[a].order != q[b].order {
		return q[a].order < q[b].order
	}
	return q[a].id < q[b].id
}
func (q veQueue) Swap(a, b int) { q[a], q[b] = q[b], q[a] }
func (q *veQueue) Push(x any)   { *q = append(*q, x.(veItem)) }
func (q *veQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}
