// Package core implements the inclusion (set) constraint solver of
// Fähndrich, Foster, Su and Aiken, "Partial Online Cycle Elimination in
// Inclusion Constraint Graphs" (PLDI 1998).
//
// The constraint language is
//
//	L, R ::= X | c(se1, ..., sen) | 0 | 1
//
// where X ranges over set variables and each constructor c carries a
// signature giving the variance (covariant or contravariant) of each
// argument. Constraints L ⊆ R are resolved online to atomic form — the
// three shapes X ⊆ Y, c(...) ⊆ X and X ⊆ c(...) — and the atomic
// constraints are kept closed under the transitive closure rule as edges of
// a constraint graph.
//
// Two graph representations are provided: standard form (SF), in which
// every variable-variable edge is a successor edge, and inductive form
// (IF), in which a variable-variable edge is stored on the endpoint with
// the larger index in a fixed random total order o(·). On top of either
// representation the solver can run the paper's partial online cycle
// elimination: at each variable-variable edge insertion a bounded search
// along order-decreasing chains looks for a closing path, and any cycle
// found is collapsed onto a witness variable.
//
// The package is the middle of a three-layer stack. The storage layer,
// internal/core/graph, owns the object model, the variable store, the
// union-find forwarding structure and the adjacency sets; core owns the
// resolution engine (System) and the pluggable Representation and
// CycleStrategy policies that drive it; the public façade,
// internal/solver, adds locking, batching and snapshot-isolated concurrent
// queries on top. Clients should normally use the façade.
package core

import "polce/internal/core/graph"

// The object model lives in the storage layer; core aliases it so the
// resolution engine, the strategies and every existing client share one
// vocabulary. The aliases are re-exported again by internal/solver.
type (
	// Variance describes how a constructor argument position behaves
	// under inclusion.
	Variance = graph.Variance
	// Constructor is an n-ary set constructor with a fixed signature.
	Constructor = graph.Constructor
	// Expr is a set expression: a variable, a constructed term, or one of
	// the special sets Zero and One.
	Expr = graph.Expr
	// Var is a set variable, created with System.Fresh.
	Var = graph.Var
	// Term is a constructed set expression c(se1, ..., sen).
	Term = graph.Term
	// Union is a set union usable on the left-hand side of a constraint.
	Union = graph.Union
	// Intersection is a set intersection usable on the right-hand side of
	// a constraint.
	Intersection = graph.Intersection
	// ArenaStats describes the flat-memory (CSR) storage backend; see
	// StorageStats.
	ArenaStats = graph.ArenaStats
)

const (
	// Covariant argument positions decompose c(a) ⊆ c(b) into a ⊆ b.
	Covariant = graph.Covariant
	// Contravariant argument positions decompose c(a) ⊆ c(b) into b ⊆ a.
	Contravariant = graph.Contravariant
)

var (
	// Zero is the empty set. 0 ⊆ R holds trivially for every R, and a
	// constraint c(...) ⊆ 0 is inconsistent.
	Zero = graph.Zero
	// One is the universal set. L ⊆ 1 holds trivially for every L, and a
	// constraint 1 ⊆ c(...) is inconsistent.
	One = graph.One
)

// NewConstructor returns a fresh constructor with the given name and
// per-argument variance signature. Constructors are compared by identity,
// so two calls with the same name yield incompatible constructors.
func NewConstructor(name string, sig ...Variance) *Constructor {
	return graph.NewConstructor(name, sig...)
}

// NewTerm builds a constructed term. It panics if the number of arguments
// does not match the constructor's arity, since that is always a client
// bug.
func NewTerm(c *Constructor, args ...Expr) *Term {
	return graph.NewTerm(c, args...)
}

// NewUnion builds the union of the given expressions.
func NewUnion(exprs ...Expr) *Union { return graph.NewUnion(exprs...) }

// NewIntersection builds the intersection of the given expressions.
func NewIntersection(exprs ...Expr) *Intersection {
	return graph.NewIntersection(exprs...)
}

// find follows forwarding pointers to v's representative, compressing the
// path as it goes.
func find(v *Var) *Var { return graph.Find(v) }

// before reports whether a precedes b in the total order o(·).
func before(a, b *Var) bool { return graph.Before(a, b) }

// isZero reports whether e is the Zero singleton.
func isZero(e Expr) bool { return graph.IsZero(e) }

// isOne reports whether e is the One singleton.
func isOne(e Expr) bool { return graph.IsOne(e) }
