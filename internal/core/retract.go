package core

import (
	"errors"
	"fmt"
	"time"
)

// This file implements constraint retraction with reason tracking. The
// design (DESIGN.md §12) has three parts:
//
//  1. Batch footprints. With Options.Retractable set, every top-level
//     constraint is added inside a batch (BeginBatch/EndBatch; the façade
//     wraps single adds in implicit one-constraint batches). While a batch
//     is open the engine records, in the batch's record, every variable an
//     edge attempt or collapse touches — the *post-find endpoints*, fresh
//     and redundant attempts alike. Because both endpoints of every
//     insertion land in the inserting batch's footprint, no edge ever
//     crosses from a variable inside a union of footprints to one outside
//     it: footprint-connected components of batches are edge-disjoint
//     regions of the graph.
//
//  2. Reason multisets. Every edge attempt bumps a per-edge bag keyed by
//     the batch id (ICDGraph-style multiset semantics): a fact asserted
//     two ways holds two justifications and survives losing one. The bags
//     drive the no-op fast path — retracting a batch that never mutated
//     the graph (every attempt redundant, no collapse) only removes its
//     justifications and leaves the graph, version, and least-solution
//     cache untouched — and are the retract-side counterpart of the
//     Stats.Redundant accounting.
//
//  3. Rollback + ordered replay. RetractBatches computes the entanglement
//     fixpoint: the dirty region is the union of footprints of every batch
//     reachable from the retracted ones through footprint intersection.
//     Every dirty variable is reset wholesale to its freshly-created state
//     (adjacency cleared, forwarding removed — this un-collapses every
//     witness in the region and is the CSR story as well: the variable's
//     arena segments are retired and rebuilt, no per-edge surgery), and
//     the surviving dirty batches are replayed in their original order
//     through the normal push/drain path. Clean components are untouched
//     and replay is confined to the dirty region, so the result is
//     bit-identical — partition signature and least solutions — to a
//     from-scratch solve of the surviving constraints (the differential
//     suite in retract_test.go is the gate). The least-solution cache is
//     invalidated for exactly the dirty cone via the existing
//     graphVersion/markLS machinery.
//
// The replay argument needs every mutation to happen inside a tracked
// batch: CyclePeriodic's interval-coupled global sweeps are rejected at
// construction, and an offline CollapseCycles on a retractable system
// taints it (subsequent retraction fails with ErrNotRetractable rather
// than returning wrong answers). Variable creation is never undone — the
// vocabulary (creation indices, random orders, interned terms) is
// monotone, which is what lets a replayed batch reuse its original
// expression pointers.

// ErrUnknownBatch is returned by RetractBatches when an id does not name a
// live (previously added, not yet retracted) batch.
var ErrUnknownBatch = errors.New("polce: unknown constraint batch")

// ErrNotRetractable is returned by RetractBatches when the system was not
// built with Options.Retractable, or when the graph has been mutated
// outside batch tracking (an offline CollapseCycles) so replay could no
// longer reproduce it.
var ErrNotRetractable = errors.New("polce: solver not configured for retraction")

// RetractReport describes one RetractBatches pass: how many batches were
// retracted, the size of the dirty cone that was rolled back (DirtyVars out
// of TotalVars canonical variables at entry — the cone being much smaller
// than the graph is the whole point), and how much surviving work was
// replayed. NoOp reports the fast path: no retracted batch had ever
// mutated the graph, so only justification bags changed. The same struct
// is delivered to MetricsSink.RetractDone.
type RetractReport struct {
	// Duration is the wall-clock time of the whole retraction, rollback
	// and replay included.
	Duration time.Duration `json:"duration_ns"`
	// Batches is the number of batches retracted by this call.
	Batches int `json:"batches"`
	// DirtyVars is the number of variables in the rolled-back dirty cone;
	// TotalVars is the number of canonical variables when the call began.
	DirtyVars int `json:"dirty_vars"`
	TotalVars int `json:"total_vars"`
	// ReplayedBatches and ReplayedConstraints count the surviving batches
	// (and their top-level constraints) re-applied during the rebuild.
	ReplayedBatches     int `json:"replayed_batches"`
	ReplayedConstraints int `json:"replayed_constraints"`
	// NoOp reports that the graph was left physically untouched: every
	// retracted batch's attempts were redundant and it caused no collapse.
	NoOp bool `json:"noop"`
}

// edgeKey identifies one atomic edge for the reason bags: a variable edge
// x ⊆ y, a source edge t ⊆ x, or a sink edge x ⊆ t. Variables and terms
// key by identity, matching the adjacency sets themselves.
type edgeKey struct {
	kind uint8
	x, y *Var
	t    *Term
}

const (
	keyVarEdge uint8 = iota
	keySrcEdge
	keySinkEdge
)

// retractCon is one recorded top-level constraint of a batch, kept for
// replay. The expression pointers stay valid across rollback because the
// vocabulary is never undone.
type retractCon struct{ l, r Expr }

// batchRecord is the undo-log entry for one batch: its constraints in
// application order, its variable footprint, the reason-bag keys it
// bumped, and its mutation counters.
type batchRecord struct {
	id      uint64
	cons    []retractCon
	touched map[*Var]struct{}
	keys    []edgeKey

	inserted  int // fresh edge insertions (including edges consumed by a collapse)
	collapses int // collapses this batch triggered
	errs      int // inconsistencies recorded while this batch was open
}

// mutated reports whether the batch changed the graph at all.
func (b *batchRecord) mutated() bool { return b.inserted > 0 || b.collapses > 0 }

// resetForReplay clears the footprint and counters while keeping the
// recorded constraints; the replay re-records them as it re-applies.
func (b *batchRecord) resetForReplay() {
	b.touched = make(map[*Var]struct{}, len(b.touched))
	b.keys = b.keys[:0]
	b.inserted, b.collapses, b.errs = 0, 0, 0
}

// retractState is the per-system retraction bookkeeping, allocated only
// when Options.Retractable is set; a nil *retractState costs one branch
// per hook site on the hot paths.
type retractState struct {
	nextID  uint64
	active  *batchRecord
	batches map[uint64]*batchRecord
	order   []uint64 // live batch ids in application order

	// reasons is the per-edge justification multiset: edge → batch id →
	// number of attempts by that batch.
	reasons map[edgeKey]map[uint64]int

	// errBatch runs parallel to System.errs: the batch id each retained
	// error is attributed to (0 when recorded outside any batch).
	errBatch []uint64

	// tainted is set when the graph is mutated with no batch open (an
	// offline CollapseCycles); retraction then refuses rather than replay
	// from an unreproducible state.
	tainted bool
}

func newRetractState() *retractState {
	return &retractState{
		batches: make(map[uint64]*batchRecord),
		reasons: make(map[edgeKey]map[uint64]int),
	}
}

// bump adds one justification for edge k by batch b.
func (r *retractState) bump(b *batchRecord, k edgeKey) {
	bag := r.reasons[k]
	if bag == nil {
		bag = make(map[uint64]int, 1)
		r.reasons[k] = bag
	}
	bag[b.id]++
	b.keys = append(b.keys, k)
}

// dropReasons removes every justification b holds, deleting bags that
// empty — the multiset semantics: a fact loses only this batch's votes.
func (r *retractState) dropReasons(b *batchRecord) {
	for _, k := range b.keys {
		bag := r.reasons[k]
		if bag == nil {
			continue
		}
		if bag[b.id] <= 1 {
			delete(bag, b.id)
		} else {
			bag[b.id]--
		}
		if len(bag) == 0 {
			delete(r.reasons, k)
		}
	}
	b.keys = b.keys[:0]
}

// Retractable reports whether the system tracks batches for retraction.
func (s *System) Retractable() bool { return s.retract != nil }

// BatchCount returns the number of live (added, not yet retracted) batches
// tracked for retraction; zero when the system is not retractable.
func (s *System) BatchCount() int {
	if s.retract == nil {
		return 0
	}
	return len(s.retract.batches)
}

// BeginBatch opens a batch: until EndBatch, every AddConstraint is
// recorded under one retraction handle, returned here. On a
// non-retractable system it returns 0 and records nothing.
func (s *System) BeginBatch() uint64 {
	r := s.retract
	if r == nil {
		return 0
	}
	if r.active != nil {
		panic("core: BeginBatch inside an open batch")
	}
	r.nextID++
	b := &batchRecord{id: r.nextID, touched: make(map[*Var]struct{})}
	r.batches[b.id] = b
	r.order = append(r.order, b.id)
	r.active = b
	return b.id
}

// EndBatch closes the open batch (no-op when none is open).
func (s *System) EndBatch() {
	if r := s.retract; r != nil {
		r.active = nil
	}
}

// Hook helpers, called from the resolution engine behind a nil check on
// s.retract so the non-retractable hot path pays one branch per site.

func (s *System) retractSrc(t *Term, x *Var, fresh bool) {
	r := s.retract
	b := r.active
	if b == nil {
		if fresh {
			r.tainted = true
		}
		return
	}
	b.touched[x] = struct{}{}
	r.bump(b, edgeKey{kind: keySrcEdge, x: x, t: t})
	if fresh {
		b.inserted++
	}
}

func (s *System) retractSink(x *Var, t *Term, fresh bool) {
	r := s.retract
	b := r.active
	if b == nil {
		if fresh {
			r.tainted = true
		}
		return
	}
	b.touched[x] = struct{}{}
	r.bump(b, edgeKey{kind: keySinkEdge, x: x, t: t})
	if fresh {
		b.inserted++
	}
}

// retractVarEdge records an attempted variable edge x ⊆ y. A fresh attempt
// that the cycle strategy consumes (collapsing instead of inserting) still
// counts as a mutation: the collapse hook adds the merged variables, and
// the inserted counter keeps the batch off the no-op fast path.
func (s *System) retractVarEdge(x, y *Var, fresh bool) {
	r := s.retract
	b := r.active
	if b == nil {
		if fresh {
			r.tainted = true
		}
		return
	}
	b.touched[x] = struct{}{}
	b.touched[y] = struct{}{}
	r.bump(b, edgeKey{kind: keyVarEdge, x: x, y: y})
	if fresh {
		b.inserted++
	}
}

func (s *System) retractCollapse(witness *Var, merged []*Var) {
	r := s.retract
	b := r.active
	if b == nil {
		r.tainted = true
		return
	}
	b.touched[witness] = struct{}{}
	for _, v := range merged {
		b.touched[v] = struct{}{}
	}
	b.collapses++
}

func (s *System) retractErr(retained bool) {
	r := s.retract
	var id uint64
	if b := r.active; b != nil {
		b.errs++
		id = b.id
	}
	if retained {
		r.errBatch = append(r.errBatch, id)
	}
}

// dropErrors removes every retained error attributed to a dirty batch and
// subtracts the dirty batches' full error counts (dropped ones included)
// from the running total. Survivors' errors are re-recorded by the replay.
func (s *System) dropErrors(dirty map[uint64]*batchRecord) {
	r := s.retract
	for _, b := range dirty {
		s.errCount -= b.errs
		b.errs = 0
	}
	errs := s.errs[:0]
	ids := r.errBatch[:0]
	for i, e := range s.errs {
		id := r.errBatch[i]
		if _, isDirty := dirty[id]; isDirty {
			continue
		}
		errs = append(errs, e)
		ids = append(ids, id)
	}
	s.errs = errs
	r.errBatch = ids
}

// RetractBatches removes the named batches' constraints as if they had
// never been added, preserving everything the surviving constraints
// justify. It validates every id first (ErrUnknownBatch names the first
// unknown one; nothing is retracted), computes the entangled dirty region,
// rolls it back, and replays the surviving batches of the region in their
// original order. Duplicate ids are allowed and retract once.
//
// The call must not run inside an open batch, and the worklist is empty
// between top-level adds, so the façade can call this under the same lock
// as AddConstraint.
func (s *System) RetractBatches(ids []uint64) (RetractReport, error) {
	r := s.retract
	if r == nil {
		return RetractReport{}, ErrNotRetractable
	}
	if r.active != nil {
		panic("core: RetractBatches inside an open batch")
	}
	if len(s.work) != 0 {
		panic("core: RetractBatches with a non-empty worklist")
	}
	targets := make(map[uint64]*batchRecord, len(ids))
	for _, id := range ids {
		b, ok := r.batches[id]
		if !ok {
			return RetractReport{}, fmt.Errorf("%w: batch %d", ErrUnknownBatch, id)
		}
		targets[id] = b
	}
	if r.tainted {
		return RetractReport{}, fmt.Errorf("%w: graph was mutated outside batch tracking (offline collapse)", ErrNotRetractable)
	}
	start := time.Now()
	rep := RetractReport{
		Batches:   len(targets),
		TotalVars: len(s.CanonicalVars()),
	}

	// Seed the entanglement fixpoint with the retracted batches that
	// actually mutated the graph.
	var queue []*batchRecord
	for _, b := range targets {
		if b.mutated() {
			queue = append(queue, b)
		}
	}

	if len(queue) == 0 {
		// Fast path: no retracted batch ever mutated the graph. Remove
		// their justifications and errors; edges stay (their inserting
		// batches survive), the version moves only if errors changed, and
		// the least-solution cache stays hot.
		anyErrs := false
		for _, b := range targets {
			r.dropReasons(b)
			if b.errs > 0 {
				anyErrs = true
			}
		}
		if anyErrs {
			s.dropErrors(targets)
			s.graphVersion++
		}
		s.removeBatches(targets)
		rep.NoOp = !anyErrs
		rep.Duration = time.Since(start)
		s.finishRetract(rep)
		return rep, nil
	}

	// Entanglement fixpoint: a batch is dirty when its footprint meets a
	// dirty variable; a variable is dirty when a dirty batch touched it.
	// Because every insertion put both endpoints in its batch's footprint,
	// the dirty variables form edge-closed components: no edge connects
	// them to the clean remainder.
	varIndex := make(map[*Var][]*batchRecord)
	for _, id := range r.order {
		b := r.batches[id]
		for v := range b.touched {
			varIndex[v] = append(varIndex[v], b)
		}
	}
	dirtyBatches := make(map[uint64]*batchRecord, len(queue))
	dirtyVars := make(map[*Var]struct{})
	for _, b := range queue {
		dirtyBatches[b.id] = b
	}
	for len(queue) > 0 {
		b := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for v := range b.touched {
			if _, ok := dirtyVars[v]; ok {
				continue
			}
			dirtyVars[v] = struct{}{}
			for _, nb := range varIndex[v] {
				if _, ok := dirtyBatches[nb.id]; !ok {
					dirtyBatches[nb.id] = nb
					queue = append(queue, nb)
				}
			}
		}
	}
	// Fold in no-op targets so bookkeeping below removes them uniformly.
	for id, b := range targets {
		if _, ok := dirtyBatches[id]; !ok {
			dirtyBatches[id] = b
		}
	}

	// Rollback: reset every dirty variable to its created state (this
	// un-collapses every witness in the region and retires its arena
	// segments), rebuild the live list, drop the dirty batches'
	// justifications and errors, and invalidate the dirty cone's
	// least-solution entries.
	for v := range dirtyVars {
		s.store.ResetVar(v)
	}
	s.store.RebuildLive()
	anyErrs := false
	for _, b := range dirtyBatches {
		r.dropReasons(b)
		if b.errs > 0 {
			anyErrs = true
		}
	}
	if anyErrs {
		s.dropErrors(dirtyBatches)
	}
	for v := range dirtyVars {
		s.markLS(v)
	}

	// Replay the surviving dirty batches in original application order.
	// Clean batches' regions are untouched; dirty survivors rebuild their
	// components exactly as a from-scratch solve of the survivors would.
	newOrder := r.order[:0]
	for _, id := range r.order {
		b := r.batches[id]
		if _, isTarget := targets[id]; isTarget {
			continue
		}
		newOrder = append(newOrder, id)
		if _, isDirty := dirtyBatches[id]; !isDirty {
			continue
		}
		b.resetForReplay()
		r.active = b
		for _, c := range b.cons {
			s.push(c.l, c.r)
			s.drain(false)
		}
		r.active = nil
		rep.ReplayedBatches++
		rep.ReplayedConstraints += len(b.cons)
	}
	r.order = newOrder
	s.removeBatches(targets)

	rep.DirtyVars = len(dirtyVars)
	rep.Duration = time.Since(start)
	s.finishRetract(rep)
	return rep, nil
}

// removeBatches deletes the retracted batches' records. Order filtering is
// done by the caller when it rebuilds r.order; the fast path has no
// rebuild, so it filters here.
func (s *System) removeBatches(targets map[uint64]*batchRecord) {
	r := s.retract
	for id := range targets {
		delete(r.batches, id)
	}
	order := r.order[:0]
	for _, id := range r.order {
		if _, ok := r.batches[id]; ok {
			order = append(order, id)
		}
	}
	r.order = order
}

// finishRetract updates the retraction counters and notifies the sink.
func (s *System) finishRetract(rep RetractReport) {
	s.stats.Retractions++
	s.stats.RetractConeVars += int64(rep.DirtyVars)
	s.stats.RetractReplayed += int64(rep.ReplayedConstraints)
	if s.opt.Metrics != nil {
		s.opt.Metrics.RetractDone(rep)
	}
}
