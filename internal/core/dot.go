package core

import (
	"fmt"
	"io"
	"sort"
)

// WriteDOT renders the current constraint graph in Graphviz DOT format:
// canonical variables as ellipses, sources and sinks as boxes, successor
// edges solid and predecessor edges dashed (the paper's dotted arrows).
// Intended for debugging and for visualising small systems; the output is
// deterministic.
func (s *System) WriteDOT(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "digraph constraints {"); err != nil {
		return err
	}
	fmt.Fprintln(w, "  rankdir=LR;")
	fmt.Fprintln(w, "  node [fontsize=10];")

	vars := s.CanonicalVars()
	sort.Slice(vars, func(i, j int) bool { return vars[i].id < vars[j].id })

	termID := map[*Term]string{}
	nextTerm := 0
	termNode := func(t *Term, sink bool) string {
		if id, ok := termID[t]; ok {
			return id
		}
		id := fmt.Sprintf("t%d", nextTerm)
		nextTerm++
		termID[t] = id
		shape := "box"
		if sink {
			shape = "box, style=dashed"
		}
		fmt.Fprintf(w, "  %s [label=%q, shape=%s];\n", id, t.String(), shape)
		return id
	}

	for _, v := range vars {
		fmt.Fprintf(w, "  v%d [label=%q];\n", v.id, v.name)
	}
	for _, v := range vars {
		s.clean(v)
		for _, t := range v.predS.list {
			fmt.Fprintf(w, "  %s -> v%d [style=dashed];\n", termNode(t, false), v.id)
		}
		for _, p := range v.predV.list {
			fmt.Fprintf(w, "  v%d -> v%d [style=dashed];\n", find(p).id, v.id)
		}
		for _, y := range v.succV.list {
			fmt.Fprintf(w, "  v%d -> v%d;\n", v.id, find(y).id)
		}
		for _, t := range v.succK.list {
			fmt.Fprintf(w, "  v%d -> %s;\n", v.id, termNode(t, true))
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

// GraphStats summarises the current graph's size and density — the
// quantities the analytical model of Section 5 is parameterised by.
type GraphStats struct {
	// Vars is the number of canonical (live) variables.
	Vars int
	// VarVarEdges, SourceEdges and SinkEdges partition the edges.
	VarVarEdges, SourceEdges, SinkEdges int
	// Density is total edges divided by (Vars + constructed endpoints):
	// the model's p·n, i.e. k such that p = k/n. Closed constraint graphs
	// sit near k ≈ 2, where Theorem 5.2 bounds chain searches at ≈2.2
	// visited nodes.
	Density float64
}

// CurrentGraphStats measures the graph as it stands.
func (s *System) CurrentGraphStats() GraphStats {
	vv, src, snk := s.EdgeCounts()
	st := GraphStats{
		Vars:        len(s.CanonicalVars()),
		VarVarEdges: vv, SourceEdges: src, SinkEdges: snk,
	}
	if st.Vars > 0 {
		st.Density = float64(vv+src+snk) / float64(st.Vars)
	}
	return st
}
