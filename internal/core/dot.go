package core

import "io"

// WriteDOT renders the current constraint graph in Graphviz DOT format;
// see graph.Store.WriteDOT. The first write error encountered is returned.
func (s *System) WriteDOT(w io.Writer) error { return s.store.WriteDOT(w) }

// GraphStats summarises the current graph's size and density — the
// quantities the analytical model of Section 5 is parameterised by.
type GraphStats struct {
	// Vars is the number of canonical (live) variables.
	Vars int
	// VarVarEdges, SourceEdges and SinkEdges partition the edges.
	VarVarEdges, SourceEdges, SinkEdges int
	// Density is total edges divided by (Vars + constructed endpoints):
	// the model's p·n, i.e. k such that p = k/n. Closed constraint graphs
	// sit near k ≈ 2, where Theorem 5.2 bounds chain searches at ≈2.2
	// visited nodes.
	Density float64
}

// CurrentGraphStats measures the graph as it stands.
func (s *System) CurrentGraphStats() GraphStats {
	vv, src, snk := s.EdgeCounts()
	st := GraphStats{
		Vars:        len(s.CanonicalVars()),
		VarVarEdges: vv, SourceEdges: src, SinkEdges: snk,
	}
	if st.Vars > 0 {
		st.Density = float64(vv+src+snk) / float64(st.Vars)
	}
	return st
}
