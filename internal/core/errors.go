package core

import (
	"errors"
	"fmt"
)

// ErrInconsistent is the sentinel every recorded inconsistency matches via
// errors.Is. The concrete values are *InconsistentError.
var ErrInconsistent = errors.New("polce: inconsistent constraint system")

// InconsistentError records one inconsistent constraint L ⊆ R: either a
// structural mismatch between distinct constructors or a set operation in
// an inexpressible position (union on the right, intersection on the
// left). L and R are the endpoints as seen by the resolution step that
// failed — for structural mismatches both are *Term.
type InconsistentError struct {
	L, R Expr
	msg  string
}

// Error returns the human-readable description.
func (e *InconsistentError) Error() string { return e.msg }

// Is matches the ErrInconsistent sentinel.
func (e *InconsistentError) Is(target error) bool { return target == ErrInconsistent }

// inconsistentf builds an *InconsistentError with a formatted message.
func inconsistentf(l, r Expr, format string, args ...any) error {
	return &InconsistentError{L: l, R: r, msg: fmt.Sprintf(format, args...)}
}
