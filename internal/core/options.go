package core

import (
	"fmt"
	"strings"
	"time"

	"polce/internal/core/graph"
)

// StorageRepr selects the adjacency storage representation: ReprHybrid is
// the per-set slice/map layout, ReprCSR the arena-backed flat-memory
// layout with delta (range) propagation. The two produce bit-identical
// partition signatures, least solutions and Stats counters; they differ
// only in memory layout and constant factors. See graph.Repr.
type StorageRepr = graph.Repr

const (
	// ReprHybrid is the classic hybrid small-set layout (the default).
	ReprHybrid = graph.ReprHybrid
	// ReprCSR is the arena-backed CSR layout with delta propagation.
	ReprCSR = graph.ReprCSR
)

// ParseRepr parses a -repr flag value ("hybrid" or "csr").
func ParseRepr(s string) (StorageRepr, error) {
	switch strings.ToLower(s) {
	case "", "hybrid":
		return ReprHybrid, nil
	case "csr":
		return ReprCSR, nil
	}
	return ReprHybrid, fmt.Errorf("unknown storage representation %q (want hybrid or csr)", s)
}

// MetricsSink receives per-operation solver measurements as they happen.
// It is the distribution-level counterpart of Options.Observer: where the
// observer delivers discrete events, the sink records the per-operation
// costs — search depth, collapse size, worklist pressure — that exist only
// as aggregates in Stats. internal/telemetry.SolverMetrics is the standard
// implementation. Hooks fire on the solver's hot path, so implementations
// must be cheap; a nil Options.Metrics costs one branch per hook site.
type MetricsSink interface {
	// EdgeAttempt fires on every attempted edge addition (each Work
	// increment); redundant reports whether the edge was already present.
	EdgeAttempt(redundant bool)
	// CycleSearch fires after each online closing-chain search with the
	// number of nodes visited — the per-search distribution behind
	// Theorem 5.2, which Stats collapses to the VisitsPerSearch mean.
	CycleSearch(visits int)
	// Collapse fires after each collapse with the number of variables
	// merged away, for online cycles and periodic sweeps alike.
	Collapse(merged int)
	// WorklistLen samples the pending-constraint worklist length every
	// worklistSampleInterval steps.
	WorklistLen(n int)
	// ClosureDone reports the wall-clock time one closure drain took —
	// the solver-side share of a client's constraint-generation phase.
	ClosureDone(d time.Duration)
	// LeastSolutionDone fires after each inductive-form least-solution
	// pass with its shape and cost; see LSPass.
	LeastSolutionDone(p LSPass)
	// RetractDone fires after each RetractBatches call with its shape and
	// cost — in particular the dirty-cone size against the total variable
	// count; see RetractReport.
	RetractDone(p RetractReport)
}

// LSPass describes one least-solution engine pass for MetricsSink
// consumers: how long it took, how the predecessor DAG levelled, how much
// of the graph was stale (ConeVars out of TotalVars), and how the union
// memo fared during this pass specifically (hit/miss deltas, not running
// totals).
type LSPass struct {
	// Duration is the wall-clock time of the pass.
	Duration time.Duration
	// Levels is the number of topological levels in the predecessor DAG.
	Levels int
	// ConeVars is the number of variables actually recomputed (the dirty
	// cone); TotalVars is the number of canonical variables swept.
	ConeVars  int
	TotalVars int
	// UnionHits and UnionMisses count memoized-union lookups during this
	// pass: a hit reuses an interned result, a miss computes the union.
	UnionHits   int64
	UnionMisses int64
	// Workers is the resolved worker count the pass ran with.
	Workers int
}

// Form selects the constraint-graph representation.
type Form int

const (
	// SF is standard form: every variable-variable constraint X ⊆ Y is a
	// successor edge X → Y, and only sources appear in predecessor lists.
	// The closed graph contains the least solution explicitly.
	SF Form = iota
	// IF is inductive form: a variable-variable constraint X ⊆ Y is stored
	// as a successor edge of X when o(X) > o(Y) and as a predecessor edge
	// of Y when o(X) < o(Y). The least solution is computed afterwards by
	// an ascending-order pass over predecessor edges.
	IF
)

// String returns "SF" or "IF".
func (f Form) String() string {
	if f == SF {
		return "SF"
	}
	return "IF"
}

// CyclePolicy selects how (and whether) cyclic constraints are eliminated.
type CyclePolicy int

const (
	// CycleNone performs no cycle elimination (the paper's "Plain" runs).
	CycleNone CyclePolicy = iota
	// CycleOnline runs the paper's partial online cycle elimination: at
	// each variable-variable edge insertion, search order-decreasing
	// chains for a closing path and collapse any cycle found.
	CycleOnline
	// CycleOnlineIncreasing is the §4 ablation for standard form: the
	// search follows successor edges toward *higher*-ordered variables.
	// It detects more cycles than CycleOnline on SF but visits many more
	// nodes. It behaves exactly like CycleOnline under IF.
	CycleOnlineIncreasing
	// CycleOracle consults a precomputed Oracle that predicts, at
	// variable-creation time, the strongly connected component each
	// variable will eventually join; every SCC is represented by a single
	// witness for the whole run, so the graphs stay acyclic. This is the
	// paper's perfect, zero-cost elimination lower bound.
	CycleOracle
	// CyclePeriodic runs an offline Tarjan sweep over the whole graph
	// every Options.PeriodicInterval edge additions, collapsing every
	// strongly connected component found. This is the *prior-work*
	// strategy ([FA96, FF97, MW97]) the paper's online approach replaces;
	// it is provided as an ablation baseline.
	CyclePeriodic
)

// String names the policy as in the paper's experiment table.
func (p CyclePolicy) String() string {
	switch p {
	case CycleNone:
		return "Plain"
	case CycleOnline:
		return "Online"
	case CycleOnlineIncreasing:
		return "Online+Incr"
	case CycleOracle:
		return "Oracle"
	case CyclePeriodic:
		return "Periodic"
	}
	return "?"
}

// OrderStrategy selects how the total order o(·) is assigned to fresh
// variables. The paper assumes a random order and reports that "a random
// order performs as well or better than any other order we picked"
// (§2.4); the alternatives exist to reproduce that comparison.
type OrderStrategy int

const (
	// OrderRandom draws each variable's position uniformly (the paper's
	// choice and the default).
	OrderRandom OrderStrategy = iota
	// OrderCreation orders variables by creation time (older = smaller).
	OrderCreation
	// OrderReverseCreation orders variables by reverse creation time.
	OrderReverseCreation
)

// String names the strategy.
func (o OrderStrategy) String() string {
	switch o {
	case OrderRandom:
		return "random"
	case OrderCreation:
		return "creation"
	case OrderReverseCreation:
		return "reverse"
	}
	return "?"
}

// Options configures a System.
type Options struct {
	// Form selects the graph representation (default SF).
	Form Form
	// Order selects the variable-order strategy (default OrderRandom).
	Order OrderStrategy
	// Cycles selects the cycle-elimination policy (default CycleNone).
	Cycles CyclePolicy
	// Seed seeds the random total order o(·) on variables. Two systems
	// with the same seed assign the same order to the same creation
	// indices.
	Seed int64
	// Oracle must be non-nil when Cycles is CycleOracle; see BuildOracle.
	Oracle *Oracle
	// PeriodicInterval is the number of edge additions between offline
	// sweeps under CyclePeriodic. Zero means 1000.
	PeriodicInterval int
	// MaxErrors bounds how many inconsistent-constraint errors are
	// retained (further ones are counted but dropped). Zero means 16.
	MaxErrors int
	// Observer, when non-nil, receives solver events (edge insertions,
	// cycle collapses, sweeps) as they happen. Intended for traces,
	// visualisation and tests; it must not mutate the system.
	Observer func(Event)
	// Metrics, when non-nil, receives per-operation measurements (edge
	// attempts, search depths, collapse sizes, worklist samples, closure
	// times); see MetricsSink. It must not mutate the system.
	Metrics MetricsSink
	// LSWorkers is the worker count for the inductive-form least-solution
	// pass. Levels of the predecessor DAG with enough stale variables are
	// fanned across this many goroutines; results are bit-identical at any
	// setting. Zero or negative means GOMAXPROCS; 1 forces the sequential
	// pass.
	LSWorkers int
	// Repr selects the adjacency storage representation (default
	// ReprHybrid). ReprCSR additionally switches the drain loop to delta
	// (range) propagation; results are bit-identical at either setting.
	Repr StorageRepr
	// Retractable enables constraint retraction: every batch added
	// between BeginBatch/EndBatch is recorded (constraints, variable
	// footprint, per-edge reason multisets) so RetractBatches can later
	// remove it and rebuild only the entangled dirty cone. Off by
	// default: tracking costs memory proportional to the added
	// constraints and a branch per edge attempt, and a non-retractable
	// system's behavior is bit-identical to previous releases.
	// Incompatible with CyclePeriodic (NewSystem panics), whose global
	// sweeps couple otherwise-independent batches.
	Retractable bool
}
