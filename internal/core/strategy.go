package core

// This file is the strategy layer: the two policy axes of the solver —
// which endpoint of a variable-variable edge stores it (Representation)
// and how cyclic constraints are eliminated (CycleStrategy) — expressed as
// interfaces the resolution engine (System) drives. The engine caches one
// capability flag per strategy hook (System.cycDetect/cycSweep/cycReuse),
// so configurations that do not use a hook pay a single predictable branch
// on the hot path, exactly as the pre-layered code did.

// Representation decides where a variable-variable edge lives in the
// store. It is the SF/IF axis of the paper: standard form keeps the least
// solution explicit in the closed graph, inductive form halves the stored
// edges and recovers the least solution by an ascending pass.
type Representation interface {
	// Form names the representation.
	Form() Form
	// StoreAsSucc reports whether the pending edge x ⊆ y is stored as a
	// successor edge of x (true) or as a predecessor edge of y (false).
	StoreAsSucc(x, y *Var) bool
}

// standardForm stores every variable-variable edge as a successor edge, so
// the closure rule propagates every source all the way forward.
type standardForm struct{}

func (standardForm) Form() Form                 { return SF }
func (standardForm) StoreAsSucc(x, y *Var) bool { return true }

// inductiveForm stores the edge on the higher-ordered endpoint: x ⊆ y is a
// successor edge of x when o(y) < o(x) and a predecessor edge of y
// otherwise, which keeps every stored edge pointing down-order.
type inductiveForm struct{}

func (inductiveForm) Form() Form                 { return IF }
func (inductiveForm) StoreAsSucc(x, y *Var) bool { return before(y, x) }

// CycleStrategy is a pluggable cycle-elimination policy. Each hook
// corresponds to one point where the engine yields control: variable
// creation (ReuseVar — the oracle's pre-merge), a novel variable-variable
// edge about to be stored (PendingEdge — the online chain search), and the
// gap between worklist steps (BeforeStep — periodic offline sweeps). The
// engine consults a hook only when the strategy's capability flag is set,
// so no-op hooks cost nothing.
//
// Strategies are stateful and bound to one System; they may mutate the
// system (collapse cycles, update stats) but must not reenter the
// worklist.
type CycleStrategy interface {
	// Policy names the strategy.
	Policy() CyclePolicy
	// ReuseVar returns an existing variable to hand out for creation
	// index idx instead of allocating a fresh one, or nil to allocate.
	ReuseVar(idx int) *Var
	// PendingEdge runs the policy's per-edge work for the novel edge
	// x ⊆ y about to be stored with the given orientation, and reports
	// whether the edge was consumed (a cycle was found and collapsed, so
	// the edge must not be inserted: it lies inside the witness).
	PendingEdge(x, y *Var, asSucc bool) bool
	// BeforeStep runs between worklist steps, when no adjacency
	// iteration is in flight.
	BeforeStep()
}

// noneStrategy performs no cycle elimination (the paper's "Plain" runs).
type noneStrategy struct{}

func (noneStrategy) Policy() CyclePolicy                { return CycleNone }
func (noneStrategy) ReuseVar(int) *Var                  { return nil }
func (noneStrategy) PendingEdge(x, y *Var, s bool) bool { return false }
func (noneStrategy) BeforeStep()                        {}

// periodicStrategy runs an offline Tarjan sweep over the whole graph every
// interval edge additions — the prior-work strategy the paper's online
// approach replaces, kept as an ablation baseline.
type periodicStrategy struct {
	sys       *System
	interval  int64
	lastSweep int64 // Work count at the last sweep
}

func (p *periodicStrategy) Policy() CyclePolicy                { return CyclePeriodic }
func (p *periodicStrategy) ReuseVar(int) *Var                  { return nil }
func (p *periodicStrategy) PendingEdge(x, y *Var, s bool) bool { return false }

// BeforeStep runs one offline elimination pass when the interval has
// elapsed: Tarjan over the current variable-variable graph, collapsing
// every non-trivial component.
func (p *periodicStrategy) BeforeStep() {
	s := p.sys
	if s.stats.Work-p.lastSweep < p.interval {
		return
	}
	p.lastSweep = s.stats.Work
	visited, collapsed := s.collapseSCCGroups()
	s.stats.PeriodicSweeps++
	s.stats.SweepVisits += int64(visited)
	s.emit(Event{Kind: EventSweep, Collapsed: collapsed})
}

// oracleStrategy consults a precomputed Oracle at variable-creation time:
// a variable whose creation index maps into an earlier strongly connected
// component is never allocated, so the graphs stay acyclic for the whole
// run. This is the paper's perfect, zero-cost elimination lower bound.
type oracleStrategy struct {
	sys    *System
	oracle *Oracle
}

func (o *oracleStrategy) Policy() CyclePolicy                { return CycleOracle }
func (o *oracleStrategy) PendingEdge(x, y *Var, s bool) bool { return false }
func (o *oracleStrategy) BeforeStep()                        {}

func (o *oracleStrategy) ReuseVar(idx int) *Var {
	if w := o.oracle.witnessOf(idx); w >= 0 && w < idx {
		return find(o.sys.store.CreatedVar(w))
	}
	return nil
}
