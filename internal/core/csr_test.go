package core

import (
	"fmt"
	"testing"
)

// This file is the differential gate on the flat-memory core: the CSR
// (arena + delta-propagation) representation must be observationally
// *bit-identical* to the hybrid representation — not merely equivalent.
// Same partition signature, same least solutions in the same first-reached
// order, same Stats counters, same edge counts, same graph version. The
// delta worklist is constructed to replicate the hybrid LIFO drain order
// exactly (see the constraint type in system.go), so any divergence here
// is a bug, not a tolerance.

// lsSeq returns LS(v) term strings in first-reached order (no sorting:
// order is part of the bit-identity contract).
func lsSeq(s *System, v *Var) []string {
	ts := s.LeastSolution(v)
	names := make([]string, 0, len(ts))
	for _, t := range ts {
		names = append(names, t.String())
	}
	return names
}

// reprPartitionSig returns, for every creation index, the creation index
// of its canonical representative — the exact collapse partition of the
// run as it stands (unlike partitionSig in oracle_test.go, it does not
// collapse remaining components first: the bit-identity contract is on
// the online collapse history itself).
func reprPartitionSig(s *System) []int {
	sig := make([]int, s.NumCreated())
	for i := range sig {
		sig[i] = s.Find(s.CreatedVar(i)).ID()
	}
	return sig
}

// diffConfigs is the grid the differential suite drives: both forms, the
// cycle policies that exercise collapse (plus none), and every order
// strategy.
type diffConfig struct {
	form  Form
	pol   CyclePolicy
	order OrderStrategy
}

func diffConfigs() []diffConfig {
	var out []diffConfig
	for _, form := range []Form{SF, IF} {
		for _, pol := range []CyclePolicy{CycleNone, CycleOnline, CycleOnlineIncreasing, CyclePeriodic} {
			for _, ord := range []OrderStrategy{OrderRandom, OrderCreation, OrderReverseCreation} {
				out = append(out, diffConfig{form, pol, ord})
			}
		}
	}
	return out
}

// assertBitIdentical runs one script under both representations and
// asserts the full observational equality contract.
func assertBitIdentical(t *testing.T, opt Options, ops []scriptOp, label string) {
	t.Helper()
	optH, optC := opt, opt
	optH.Repr = ReprHybrid
	optC.Repr = ReprCSR
	h, hv := runScript(optH, ops)
	c, cv := runScript(optC, ops)

	if hs, cs := h.Stats(), c.Stats(); hs != cs {
		t.Fatalf("%s: Stats diverge\nhybrid: %v\ncsr:    %v", label, hs, cs)
	}
	if hp, cp := fmt.Sprint(reprPartitionSig(h)), fmt.Sprint(reprPartitionSig(c)); hp != cp {
		t.Fatalf("%s: partition signatures diverge\nhybrid: %s\ncsr:    %s", label, hp, cp)
	}
	ha, hb, hc := h.EdgeCounts()
	ca, cb, cc := c.EdgeCounts()
	if ha != ca || hb != cb || hc != cc {
		t.Fatalf("%s: edge counts diverge: hybrid (%d,%d,%d) csr (%d,%d,%d)", label, ha, hb, hc, ca, cb, cc)
	}
	if h.Version() != c.Version() {
		t.Fatalf("%s: graph versions diverge: %d vs %d", label, h.Version(), c.Version())
	}
	for i := range hv {
		hls, cls := fmt.Sprint(lsSeq(h, hv[i])), fmt.Sprint(lsSeq(c, cv[i]))
		if hls != cls {
			t.Fatalf("%s: LS(v%d) diverges\nhybrid: %s\ncsr:    %s", label, i, hls, cls)
		}
	}
	if got := c.StorageStats().Repr; got != "csr" {
		t.Fatalf("%s: csr run reports repr %q", label, got)
	}
	if got := h.StorageStats().Repr; got != "hybrid" {
		t.Fatalf("%s: hybrid run reports repr %q", label, got)
	}
}

// TestCSRBitIdenticalAcrossConfigs is the differential property suite:
// seeds × forms × cycle policies × order strategies.
func TestCSRBitIdenticalAcrossConfigs(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		ops := genScript(seed, 50, 200)
		for _, cfg := range diffConfigs() {
			opt := Options{Form: cfg.form, Cycles: cfg.pol, Order: cfg.order, Seed: seed}
			assertBitIdentical(t, opt, ops,
				fmt.Sprintf("seed=%d %v/%v/%v", seed, cfg.form, cfg.pol, cfg.order))
		}
	}
}

// TestCSRBitIdenticalOracle covers the oracle policy: the oracle is built
// from a hybrid reference run, then replayed under both representations.
func TestCSRBitIdenticalOracle(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := genScript(seed, 40, 160)
		ref, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: seed}, ops)
		oracle := BuildOracle(ref)
		opt := Options{Form: IF, Cycles: CycleOracle, Oracle: oracle, Seed: seed}
		assertBitIdentical(t, opt, ops, fmt.Sprintf("seed=%d oracle", seed))
	}
}

// TestCSRBitIdenticalOffline covers the offline Tarjan pass (whose absorb
// path also runs through delta ranges) and the initial-graph mode.
func TestCSRBitIdenticalOffline(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := genScript(seed, 50, 200)
		for _, form := range []Form{SF, IF} {
			optH := Options{Form: form, Cycles: CycleNone, Seed: seed, Repr: ReprHybrid}
			optC := optH
			optC.Repr = ReprCSR
			h, hv := runScript(optH, ops)
			c, cv := runScript(optC, ops)
			if hn, cn := h.CollapseCycles(), c.CollapseCycles(); hn != cn {
				t.Fatalf("seed=%d %v: offline collapse counts diverge: %d vs %d", seed, form, hn, cn)
			}
			if hs, cs := h.Stats(), c.Stats(); hs != cs {
				t.Fatalf("seed=%d %v: Stats diverge after CollapseCycles\nhybrid: %v\ncsr:    %v", seed, form, hs, cs)
			}
			if hp, cp := fmt.Sprint(reprPartitionSig(h)), fmt.Sprint(reprPartitionSig(c)); hp != cp {
				t.Fatalf("seed=%d %v: partitions diverge after CollapseCycles", seed, form)
			}
			for i := range hv {
				if a, b := fmt.Sprint(lsSeq(h, hv[i])), fmt.Sprint(lsSeq(c, cv[i])); a != b {
					t.Fatalf("seed=%d %v: LS(v%d) diverges after CollapseCycles", seed, form, i)
				}
			}
		}
	}
}

// TestCSRCompactionPreservesGraph forces arena compactions mid-run and
// checks the graph is unchanged: compaction moves storage, never content.
func TestCSRCompactionPreservesGraph(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		ops := genScript(seed, 40, 160)
		opt := Options{Form: IF, Cycles: CycleOnline, Seed: seed, Repr: ReprCSR}
		s := NewSystem(opt)
		var vars []*Var
		for i, op := range ops {
			if op.fresh {
				vars = append(vars, s.Fresh(fmt.Sprintf("v%d", len(vars))))
				continue
			}
			s.AddConstraint(op.l.build(vars), op.r.build(vars))
			if i%23 == 0 {
				a, b, c := s.EdgeCounts()
				ls := fmt.Sprint(lsSeq(s, vars[i%len(vars)]))
				epochBefore := s.store.ArenaStats().Epoch
				s.store.CompactArenas()
				if got := s.store.ArenaStats().Epoch; got != epochBefore+1 {
					t.Fatalf("seed=%d: compaction did not bump epoch (%d -> %d)", seed, epochBefore, got)
				}
				a2, b2, c2 := s.EdgeCounts()
				if a != a2 || b != b2 || c != c2 {
					t.Fatalf("seed=%d: compaction changed edge counts (%d,%d,%d) -> (%d,%d,%d)", seed, a, b, c, a2, b2, c2)
				}
				if ls2 := fmt.Sprint(lsSeq(s, vars[i%len(vars)])); ls != ls2 {
					t.Fatalf("seed=%d: compaction changed LS: %s -> %s", seed, ls, ls2)
				}
			}
		}
	}
}

// TestCSRStorageStats sanity-checks the divergence-allowed counters: the
// CSR run batches term crossings into ranges, the hybrid run never does.
func TestCSRStorageStats(t *testing.T) {
	ops := genScript(3, 50, 200)
	h, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 3, Repr: ReprHybrid}, ops)
	c, _ := runScript(Options{Form: IF, Cycles: CycleOnline, Seed: 3, Repr: ReprCSR}, ops)
	hs, cs := h.StorageStats(), c.StorageStats()
	if hs.DeltaRanges != 0 || hs.DeltaMaxSpan != 0 {
		t.Fatalf("hybrid run pushed delta ranges: %+v", hs)
	}
	if cs.DeltaRanges == 0 {
		t.Fatalf("csr run pushed no delta ranges: %+v", cs)
	}
	if cs.Arena.HandedOut == 0 || cs.Arena.Chunks == 0 {
		t.Fatalf("csr run allocated nothing from the arena: %+v", cs.Arena)
	}
	if hs.Arena != (ArenaStats{}) {
		t.Fatalf("hybrid run has arena state: %+v", hs.Arena)
	}
	if hs.WorklistHWM == 0 || cs.WorklistHWM == 0 {
		t.Fatalf("worklist high-water mark untracked: hybrid %d, csr %d", hs.WorklistHWM, cs.WorklistHWM)
	}
}
