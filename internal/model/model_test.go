package model

import (
	"math"
	"testing"
)

func TestRatio51ApproachesPaperValue(t *testing.T) {
	// Theorem 5.1: for p = 1/n and m/n = 2/3, E(X_SF)/E(X_IF) ≈ 2.5
	// asymptotically.
	r := Ratio51(1_000_000, 2.0/3.0)
	if r < 2.2 || r > 2.8 {
		t.Errorf("Ratio51(1e6) = %.3f, want ≈2.5", r)
	}
	// The ratio grows toward the limit with n.
	small := Ratio51(1000, 2.0/3.0)
	if small >= r+0.3 {
		t.Errorf("ratio not increasing with n: %.3f at 1e3 vs %.3f at 1e6", small, r)
	}
}

func TestRatioMonotoneInN(t *testing.T) {
	prev := 0.0
	for _, n := range []int{100, 1000, 10000, 100000} {
		r := Ratio51(n, 2.0/3.0)
		if r <= 1 {
			t.Fatalf("n=%d: ratio %.3f ≤ 1; SF must do more work than IF", n, r)
		}
		if r < prev-0.05 {
			t.Errorf("n=%d: ratio %.3f dropped from %.3f", n, r, prev)
		}
		prev = r
	}
}

func TestClosedFormApproximations(t *testing.T) {
	// The paper's √(πn/2)-based approximations should track the exact
	// sums within a few percent for large n at p = 1/n.
	for _, n := range []int{10000, 100000} {
		m := 2 * n / 3
		p := 1 / float64(n)
		exact := EdgeAdditionsSF(n, m, p)
		approx := ApproxSF(n, m)
		if rel := math.Abs(exact-approx) / exact; rel > 0.10 {
			t.Errorf("n=%d: SF approx off by %.1f%% (exact %.0f approx %.0f)", n, 100*rel, exact, approx)
		}
		exactIF := EdgeAdditionsIF(n, m, p)
		approxIF := ApproxIF(n, m)
		if rel := math.Abs(exactIF-approxIF) / exactIF; rel > 0.15 {
			t.Errorf("n=%d: IF approx off by %.1f%% (exact %.0f approx %.0f)", n, 100*rel, exactIF, approxIF)
		}
	}
}

func TestExpectedReachBound(t *testing.T) {
	// Theorem 5.2: at k = 2 the bound is (e² − 3)/2 ≈ 2.19.
	got := ExpectedReachBound(2)
	want := (math.E*math.E - 3) / 2
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedReachBound(2) = %v, want %v", got, want)
	}
	if got < 2.1 || got > 2.3 {
		t.Errorf("bound %v not ≈2.2", got)
	}
}

func TestExpectedReachExactBelowBound(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		k := 2.0
		exact := ExpectedReachExact(n, k/float64(n))
		bound := ExpectedReachBound(k)
		if exact > bound {
			t.Errorf("n=%d: exact %.4f exceeds bound %.4f", n, exact, bound)
		}
		if exact < 0.5*bound {
			t.Errorf("n=%d: exact %.4f implausibly far below bound %.4f", n, exact, bound)
		}
	}
}

func TestReachGrowsSharplyPastK2(t *testing.T) {
	// The paper warns the method relies on sparse graphs: E(R_X) climbs
	// sharply for denser graphs.
	atTwo := ExpectedReachBound(2)
	atFour := ExpectedReachBound(4)
	if atFour < 3*atTwo {
		t.Errorf("bound should climb sharply: k=2 → %.2f, k=4 → %.2f", atTwo, atFour)
	}
}

func TestEdgeAdditionsPositiveAndOrdered(t *testing.T) {
	for _, n := range []int{100, 1000, 10000} {
		m := 2 * n / 3
		p := 1 / float64(n)
		sf := EdgeAdditionsSF(n, m, p)
		inf := EdgeAdditionsIF(n, m, p)
		if sf <= 0 || inf <= 0 {
			t.Fatalf("n=%d: non-positive expectations sf=%v if=%v", n, sf, inf)
		}
		if sf <= inf {
			t.Errorf("n=%d: SF %.0f not above IF %.0f", n, sf, inf)
		}
	}
}
