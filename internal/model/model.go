// Package model implements the analytical model of the paper's Section 5:
// closed-form expected edge-addition counts for standard and inductive
// form on random constraint graphs G(n, p) with n variable nodes and m
// source/sink nodes (Theorem 5.1), and the expected number of nodes
// reachable through order-decreasing chains (Theorem 5.2, the cost bound
// for partial online cycle detection).
//
// All sums are evaluated exactly in floating point with iteratively
// maintained terms (C(n,i)·i!·pⁱ⁺¹ never materialises a factorial), so the
// formulas are stable up to n in the millions.
package model

import "math"

// sumPaths evaluates Σ_{i=1}^{top} C(pool, i) · i! · p^(i+1) · w(i), the
// common skeleton of the expected-additions sums: pool is the number of
// candidate intermediate variables, and w(i) weights each path length (the
// probability P_l(u,v) that inductive form actually adds the edge through
// a path with l = i+2 nodes).
func sumPaths(pool int, p float64, w func(i int) float64) float64 {
	// term_i = pool·(pool−1)·…·(pool−i+1) · p^(i+1)
	term := p // will be multiplied into shape for i = 1 below
	sum := 0.0
	for i := 1; i <= pool; i++ {
		term *= float64(pool-i+1) * p
		if term == 0 || math.IsInf(term, 0) {
			break
		}
		contrib := term * w(i)
		sum += contrib
		// The terms decay super-exponentially once i·p outgrows 1; stop
		// when contributions vanish.
		if contrib < sum*1e-16 && i > 4 {
			break
		}
	}
	return sum
}

// EdgeAdditionsSF returns E(X_SF): the expected number of edge additions
// (including redundant ones) to close a random graph in standard form,
// per Section 5.1:
//
//	E = m·n·E(X^(c,X)) + m·(m−1)·E(X^(c,c'))
func EdgeAdditionsSF(n, m int, p float64) float64 {
	eCX := sumPaths(n-1, p, func(int) float64 { return 1 })
	eCC := sumPaths(n, p, func(int) float64 { return 1 })
	return float64(m)*float64(n)*eCX + float64(m)*float64(m-1)*eCC
}

// EdgeAdditionsIF returns E(X_IF) for inductive form, per Section 5.2:
//
//	E = n·(n−1)·E(X^(X1,X2)) + 2·m·n·E(X^(X,c)) + m·(m−1)·E(X^(c,c'))
//
// with the path probabilities of Lemma 5.3: 2/(l(l−1)) between variables,
// 1/(l−1) between a variable and a constructed node, and 1 between
// constructed nodes, where l = i+2 is the node count of the path.
func EdgeAdditionsIF(n, m int, p float64) float64 {
	eXX := sumPaths(n-2, p, func(i int) float64 {
		l := float64(i + 2)
		return 2 / (l * (l - 1))
	})
	eXC := sumPaths(n-1, p, func(i int) float64 {
		return 1 / float64(i+1) // 1/(l−1), l = i+2
	})
	eCC := sumPaths(n, p, func(int) float64 { return 1 })
	return float64(n)*float64(n-1)*eXX + 2*float64(m)*float64(n)*eXC + float64(m)*float64(m-1)*eCC
}

// Ratio51 returns E(X_SF)/E(X_IF) at the paper's operating point
// p = 1/n and m/n ratio (Theorem 5.1 uses m/n = 2/3 and concludes the
// ratio approaches ≈2.5 as n grows).
func Ratio51(n int, mOverN float64) float64 {
	m := int(mOverN * float64(n))
	p := 1 / float64(n)
	return EdgeAdditionsSF(n, m, p) / EdgeAdditionsIF(n, m, p)
}

// ApproxSF is the paper's closed-form approximation of E(X_SF) at p = 1/n:
//
//	E(X_SF) ≈ m(√(πn/2) − 1) + (m(m−1)/n)·√(πn/2)
func ApproxSF(n, m int) float64 {
	s := math.Sqrt(math.Pi * float64(n) / 2)
	return float64(m)*(s-1) + float64(m)*float64(m-1)/float64(n)*s
}

// ApproxIF is the paper's closed-form approximation of E(X_IF) at p = 1/n:
//
//	E(X_IF) ≈ (m(m−1)/n)·√(πn/2) + 2m·ln n + n
func ApproxIF(n, m int) float64 {
	s := math.Sqrt(math.Pi * float64(n) / 2)
	return float64(m)*float64(m-1)/float64(n)*s + 2*float64(m)*math.Log(float64(n)) + float64(n)
}

// ExpectedReachBound returns the paper's bound on E(R_X), the expected
// number of variables reachable from a node through an order-decreasing
// chain when the graph has edge probability p = k/n:
//
//	E(R_X) < (e^k − 1 − k)/k
//
// At k = 2 (the observed density of closed constraint graphs) the bound is
// ≈2.2, which is Theorem 5.2 — and why partial online cycle detection
// costs only a constant per edge insertion.
func ExpectedReachBound(k float64) float64 {
	return (math.Exp(k) - 1 - k) / k
}

// ExpectedReachExact evaluates the finite sum the bound approximates:
//
//	E(R_X) ≤ Σ_{i=1}^{n−1} C(n−1, i) · i! · pⁱ · 1/(i+1)!
//	       = Σ_{i=1}^{n−1} C(n−1, i) · pⁱ / (i+1)
//
// — one term per chain length i: C(n−1,i)·i! orderings of intermediate
// variables, path-existence probability pⁱ, and probability 1/(i+1)! that
// the random order is strictly decreasing along the chain.
func ExpectedReachExact(n int, p float64) float64 {
	binomP := 1.0 // C(n−1, i)·pⁱ, maintained iteratively
	sum := 0.0
	for i := 1; i < n; i++ {
		binomP *= float64(n-i) * p / float64(i)
		c := binomP * factorialF(i) / factorialF(i+1)
		sum += c
		if c < sum*1e-16 && i > 4 {
			break
		}
	}
	return sum
}

// factorialF returns i! as a float; inputs stay small because the series
// is truncated once terms vanish.
func factorialF(i int) float64 {
	f := 1.0
	for j := 2; j <= i; j++ {
		f *= float64(j)
	}
	return f
}
