// Package walreplay replays a constraint log standalone — outside any
// server — and fingerprints the graph it reconstructs. It is the
// substrate of `polce-bench -wal-verify` and of the crash-recovery
// equivalence tests: replay the frames through the normal parse → lower →
// solve path, then compare the recovered graph's manifest (version,
// partition signature, sampled least solutions, mutation-path counters)
// against a reference.
//
// Replay is deterministic because the log captures everything the solver's
// state depends on: the solver options (graph form, cycle policy, seed)
// are pinned in the log's meta, the frames hold the accepted SCL text in
// accept order, and the serve layer serialises accept so that variable
// creation order and constraint application order both equal frame order.
package walreplay

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"

	"polce"
	"polce/internal/scl"
	"polce/internal/wal"
)

// OptionsMeta renders the replay-relevant solver options as the string map
// pinned into a log directory's meta.json. LSWorkers and metrics sinks are
// deliberately absent: they never change the graph.
func OptionsMeta(opt polce.Options) map[string]string {
	return map[string]string{
		"form":        opt.Form.String(),
		"cycles":      opt.Cycles.String(),
		"seed":        strconv.FormatInt(opt.Seed, 10),
		"retractable": strconv.FormatBool(opt.Retractable),
	}
}

// OptionsFromMeta reconstructs solver options from a recorded meta map.
func OptionsFromMeta(meta map[string]string) (polce.Options, error) {
	var opt polce.Options
	switch meta["form"] {
	case "SF":
		opt.Form = polce.SF
	case "IF":
		opt.Form = polce.IF
	default:
		return opt, fmt.Errorf("walreplay: meta has unknown form %q", meta["form"])
	}
	switch meta["cycles"] {
	case "Plain":
		opt.Cycles = polce.CycleNone
	case "Online":
		opt.Cycles = polce.CycleOnline
	case "Online+Incr":
		opt.Cycles = polce.CycleOnlineIncreasing
	case "Periodic":
		opt.Cycles = polce.CyclePeriodic
	default:
		return opt, fmt.Errorf("walreplay: meta has unknown cycle policy %q", meta["cycles"])
	}
	seed, err := strconv.ParseInt(meta["seed"], 10, 64)
	if err != nil {
		return opt, fmt.Errorf("walreplay: meta has bad seed %q", meta["seed"])
	}
	opt.Seed = seed
	if r, ok := meta["retractable"]; ok {
		opt.Retractable, err = strconv.ParseBool(r)
		if err != nil {
			return opt, fmt.Errorf("walreplay: meta has bad retractable %q", r)
		}
	}
	return opt, nil
}

// ParseRetractText parses a retract frame's text — the comma-separated
// decimal sequence numbers of the retracted constraint frames.
func ParseRetractText(text string) ([]uint64, error) {
	if text == "" {
		return nil, nil
	}
	parts := strings.Split(text, ",")
	out := make([]uint64, len(parts))
	for i, p := range parts {
		seq, err := strconv.ParseUint(strings.TrimSpace(p), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("walreplay: bad retract target %q", p)
		}
		out[i] = seq
	}
	return out, nil
}

// FormatRetractText renders retract targets as a retract frame's text.
func FormatRetractText(seqs []uint64) string {
	parts := make([]string, len(seqs))
	for i, s := range seqs {
		parts[i] = strconv.FormatUint(s, 10)
	}
	return strings.Join(parts, ",")
}

// Replay runs the frames through fresh per-session SCL state and one
// solver — the same ParseAppend → Binder.Lower → AddBatch path the server
// ingests through, frame order preserved across sessions — and returns the
// solver, the binders by session label (for name lookups) and the number
// of constraints applied. A constraints frame that fails to parse aborts
// the replay: it parsed when it was logged, so a parse failure means the
// log does not belong to this vocabulary or was damaged beyond the CRC's
// reach.
//
// Retract frames replay in stream order: each frame's text names the
// sequence numbers of the constraint frames it retracts, resolved against
// the batch ids the replay itself issued. A target that is not live at the
// frame's position — never logged, or already retracted — skips the whole
// frame, mirroring RetractBatch's all-or-nothing validation on the live
// server (a DELETE that failed there was logged but retracted nothing).
func Replay(frames []wal.Frame, opt polce.Options) (*polce.Solver, map[string]*scl.Binder, int, error) {
	solver := polce.New(opt)
	type sess struct {
		file   *scl.File
		binder *scl.Binder
	}
	sessions := map[string]*sess{}
	binders := map[string]*scl.Binder{}
	sessionOf := func(label string) *sess {
		ss, ok := sessions[label]
		if !ok {
			f := scl.MustParse("")
			ss = &sess{file: f, binder: scl.NewBinder(f, solver)}
			sessions[label] = ss
			binders[label] = ss.binder
		}
		return ss
	}
	type liveBatch struct {
		session string
		id      polce.BatchID
	}
	ids := map[uint64]liveBatch{} // live frame seq → owning session + batch id
	constraints := 0
	for _, f := range frames {
		switch f.Kind {
		case wal.FrameRetract:
			targets, err := ParseRetractText(f.Text)
			if err != nil {
				return nil, nil, constraints, fmt.Errorf("walreplay: frame %d: %w", f.Seq, err)
			}
			batchIDs := make([]polce.BatchID, 0, len(targets))
			live := true
			for _, seq := range targets {
				// Mirror the serve layer's validation exactly: a target
				// must be live AND owned by the frame's session — a
				// cross-session DELETE failed live, so it must be a no-op
				// on replay too.
				b, ok := ids[seq]
				if !ok || b.session != f.Session {
					live = false
					break
				}
				batchIDs = append(batchIDs, b.id)
			}
			if !live {
				continue // the live DELETE failed validation and retracted nothing
			}
			if _, err := solver.RetractBatch(batchIDs...); err != nil {
				return nil, nil, constraints, fmt.Errorf("walreplay: frame %d retract: %w", f.Seq, err)
			}
			for _, seq := range targets {
				delete(ids, seq)
			}
		default:
			ss := sessionOf(f.Session)
			cs, err := ss.file.ParseAppend(f.Text)
			if err != nil {
				return nil, nil, constraints, fmt.Errorf("walreplay: frame %d does not parse: %w", f.Seq, err)
			}
			batch := ss.binder.Lower(cs)
			ids[f.Seq] = liveBatch{session: f.Session, id: solver.AddBatch(batch)}
			constraints += len(batch)
		}
	}
	return solver, binders, constraints, nil
}

// Sample is one recorded least solution: a variable and its rendered
// terms, in the engine's deterministic first-reached order.
type Sample struct {
	Var   string   `json:"var"`
	Terms []string `json:"terms"`
}

// Manifest fingerprints a recovered graph. Two runs over the same accepted
// stream under the same options produce equal manifests; any divergence —
// a lost batch, a reordered frame, a mismatched seed — shows up in the
// version, the partition signature or a sampled least solution.
type Manifest struct {
	// Options is the meta map the graph was solved under.
	Options map[string]string `json:"options"`
	// Frames and Constraints describe the replayed stream.
	Frames      int    `json:"frames"`
	LastSeq     uint64 `json:"last_seq"`
	Constraints int    `json:"constraints"`

	// Version is the least-solution epoch after replay; it advances only
	// on real mutations, so it is deterministic across runs.
	Version uint64 `json:"version"`
	// Vars is the number of variables created (eliminated ones included).
	Vars int `json:"vars"`
	// Errors is the number of inconsistencies the stream introduced.
	Errors int `json:"errors"`
	// PartitionSig hashes the canonical labelling of the fully-collapsed
	// equivalence classes: FNV-1a over, for each creation index, the
	// smallest creation index sharing its class.
	PartitionSig string `json:"partition_sig"`
	// Work, Redundant, CycleSearches, CycleVisits and CyclesFound are the
	// solver's mutation-path counters — deterministic functions of the
	// accepted stream (read-path counters like LS passes are excluded:
	// they depend on query traffic).
	Work          int64 `json:"work"`
	Redundant     int64 `json:"redundant"`
	CycleSearches int64 `json:"cycle_searches"`
	CycleVisits   int64 `json:"cycle_visits"`
	CyclesFound   int64 `json:"cycles_found"`
	// Retractions, RetractConeVars and RetractReplayed are the retraction
	// counters — deterministic too: the dirty cone is a function of the
	// stream position, not of map iteration order.
	Retractions     int64 `json:"retractions"`
	RetractConeVars int64 `json:"retract_cone_vars"`
	RetractReplayed int64 `json:"retract_replayed"`
	// Samples are least solutions of variables sampled evenly across
	// creation order (all of them when there are at most maxSamples).
	Samples []Sample `json:"samples"`
}

// Fingerprint computes the manifest of a solved graph, sampling at most
// maxSamples least solutions (0 means 64). It runs an offline collapse to
// canonicalise the partition, so call it on graphs whose online serving
// life is over — recovered-for-verification solvers, test references.
func Fingerprint(s *polce.Solver, maxSamples int) Manifest {
	if maxSamples <= 0 {
		maxSamples = 64
	}
	stats := s.Stats()
	m := Manifest{
		Version:         s.Version(),
		Vars:            s.NumCreated(),
		Errors:          s.ErrorCount(),
		Work:            stats.Work,
		Redundant:       stats.Redundant,
		CycleSearches:   stats.CycleSearches,
		CycleVisits:     stats.CycleVisits,
		CyclesFound:     stats.CyclesFound,
		Retractions:     stats.Retractions,
		RetractConeVars: stats.RetractConeVars,
		RetractReplayed: stats.RetractReplayed,
	}

	// Sample least solutions before collapsing: collapse preserves them,
	// but the samples should reflect the graph exactly as recovered.
	n := s.NumCreated()
	stride := 1
	if n > maxSamples {
		stride = (n + maxSamples - 1) / maxSamples
	}
	for i := 0; i < n; i += stride {
		v := s.CreatedVar(i)
		terms := s.LeastSolution(v)
		rendered := make([]string, len(terms))
		for j, t := range terms {
			rendered[j] = t.String()
		}
		m.Samples = append(m.Samples, Sample{Var: v.Name(), Terms: rendered})
	}

	// Canonical partition signature: collapse every remaining SCC offline,
	// then label each creation index with the smallest index in its class
	// (the idiom of the core oracle tests), and hash the labelling.
	s.CollapseCycles()
	h := fnv.New64a()
	var buf [8]byte
	first := map[*polce.Var]int{}
	for i := 0; i < n; i++ {
		r := s.Find(s.CreatedVar(i))
		w, ok := first[r]
		if !ok {
			w = i
			first[r] = i
		}
		binary.LittleEndian.PutUint64(buf[:], uint64(w))
		h.Write(buf[:])
	}
	m.PartitionSig = fmt.Sprintf("fnv1a:%016x", h.Sum64())
	return m
}

// Diff compares two manifests field by field and returns a list of
// human-readable mismatches (nil when equal). Samples compare by variable
// name and rendered term sequence.
func (m Manifest) Diff(other Manifest) []string {
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	for k, v := range m.Options {
		if other.Options[k] != v {
			add("options[%s]: %q vs %q", k, v, other.Options[k])
		}
	}
	if m.Frames != other.Frames {
		add("frames: %d vs %d", m.Frames, other.Frames)
	}
	if m.LastSeq != other.LastSeq {
		add("last_seq: %d vs %d", m.LastSeq, other.LastSeq)
	}
	if m.Constraints != other.Constraints {
		add("constraints: %d vs %d", m.Constraints, other.Constraints)
	}
	if m.Version != other.Version {
		add("version: %d vs %d", m.Version, other.Version)
	}
	if m.Vars != other.Vars {
		add("vars: %d vs %d", m.Vars, other.Vars)
	}
	if m.Errors != other.Errors {
		add("errors: %d vs %d", m.Errors, other.Errors)
	}
	if m.PartitionSig != other.PartitionSig {
		add("partition_sig: %s vs %s", m.PartitionSig, other.PartitionSig)
	}
	if m.Work != other.Work {
		add("work: %d vs %d", m.Work, other.Work)
	}
	if m.Redundant != other.Redundant {
		add("redundant: %d vs %d", m.Redundant, other.Redundant)
	}
	if m.CycleSearches != other.CycleSearches {
		add("cycle_searches: %d vs %d", m.CycleSearches, other.CycleSearches)
	}
	if m.CycleVisits != other.CycleVisits {
		add("cycle_visits: %d vs %d", m.CycleVisits, other.CycleVisits)
	}
	if m.CyclesFound != other.CyclesFound {
		add("cycles_found: %d vs %d", m.CyclesFound, other.CyclesFound)
	}
	if m.Retractions != other.Retractions {
		add("retractions: %d vs %d", m.Retractions, other.Retractions)
	}
	if m.RetractConeVars != other.RetractConeVars {
		add("retract_cone_vars: %d vs %d", m.RetractConeVars, other.RetractConeVars)
	}
	if m.RetractReplayed != other.RetractReplayed {
		add("retract_replayed: %d vs %d", m.RetractReplayed, other.RetractReplayed)
	}
	if len(m.Samples) != len(other.Samples) {
		add("samples: %d vs %d", len(m.Samples), len(other.Samples))
		return diffs
	}
	for i := range m.Samples {
		a, b := m.Samples[i], other.Samples[i]
		if a.Var != b.Var {
			add("samples[%d].var: %q vs %q", i, a.Var, b.Var)
			continue
		}
		if strings.Join(a.Terms, ",") != strings.Join(b.Terms, ",") {
			add("samples[%d] (%s): LS %v vs %v", i, a.Var, a.Terms, b.Terms)
		}
	}
	return diffs
}

// StateDiff compares only the state-bearing fields of two manifests: the
// variable population, the error count, the canonical partition signature
// and the sampled least solutions. The history counters (version, work,
// cycle searches, retraction telemetry) are excluded — they fingerprint
// how a graph was reached, and two equivalent graphs reached by different
// histories (a retract-and-replay run versus a from-scratch solve of the
// survivors) legitimately disagree on them. Use Diff when both sides ran
// the same stream; use StateDiff when only the final graph must match.
func (m Manifest) StateDiff(other Manifest) []string {
	var diffs []string
	add := func(format string, args ...any) {
		diffs = append(diffs, fmt.Sprintf(format, args...))
	}
	if m.Vars != other.Vars {
		add("vars: %d vs %d", m.Vars, other.Vars)
	}
	if m.Errors != other.Errors {
		add("errors: %d vs %d", m.Errors, other.Errors)
	}
	if m.PartitionSig != other.PartitionSig {
		add("partition_sig: %s vs %s", m.PartitionSig, other.PartitionSig)
	}
	if len(m.Samples) != len(other.Samples) {
		add("samples: %d vs %d", len(m.Samples), len(other.Samples))
		return diffs
	}
	for i := range m.Samples {
		a, b := m.Samples[i], other.Samples[i]
		if a.Var != b.Var {
			add("samples[%d].var: %q vs %q", i, a.Var, b.Var)
			continue
		}
		if strings.Join(a.Terms, ",") != strings.Join(b.Terms, ",") {
			add("samples[%d] (%s): LS %v vs %v", i, a.Var, a.Terms, b.Terms)
		}
	}
	return diffs
}
