package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mustOpen(t *testing.T, dir string, opt Options) (*Log, *Recovered) {
	t.Helper()
	l, rec, err := Open(dir, opt)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { l.Close() })
	return l, rec
}

func appendFrames(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		seq, err := l.Append(FrameConstraints, "s", fmt.Sprintf("cons c%d; c%d <= x%d", i, i, i))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("Append %d returned seq %d", i, seq)
		}
	}
}

// TestRoundTrip: frames written are the frames recovered, in order, with
// monotone sequence numbers, across a close/reopen cycle.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := mustOpen(t, dir, Options{Sync: SyncAlways})
	if len(rec.Frames) != 0 || rec.LastSeq != 0 {
		t.Fatalf("fresh log recovered %+v", rec)
	}
	appendFrames(t, l, 5)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := mustOpen(t, dir, Options{})
	if len(rec2.Frames) != 5 || rec2.LastSeq != 5 || rec2.TruncatedBytes != 0 {
		t.Fatalf("recovered %d frames, lastSeq %d, truncated %d; want 5/5/0",
			len(rec2.Frames), rec2.LastSeq, rec2.TruncatedBytes)
	}
	for i, f := range rec2.Frames {
		if f.Seq != uint64(i+1) || f.Session != "s" {
			t.Fatalf("frame %d = %+v", i, f)
		}
		if want := fmt.Sprintf("cons c%d; c%d <= x%d", i+1, i+1, i+1); f.Text != want {
			t.Fatalf("frame %d text = %q, want %q", i, f.Text, want)
		}
	}
	// Appending continues the sequence.
	if seq, err := l2.Append(FrameConstraints, "s", "x1 <= x2"); err != nil || seq != 6 {
		t.Fatalf("continued append = seq %d, %v; want 6", seq, err)
	}
}

// TestTornTailTruncation covers the three crash signatures: a partial
// frame header, a partial payload, and a payload whose bytes were torn
// (CRC mismatch). Each must recover the intact prefix and drop the tail —
// never fail the open.
func TestTornTailTruncation(t *testing.T) {
	for _, tc := range []struct {
		name       string
		wantFrames int
		tear       func(path string, t *testing.T)
	}{
		{"partial frame header", 3, func(path string, t *testing.T) { chop(t, path, 3) }},
		{"partial payload", 3, func(path string, t *testing.T) { chop(t, path, 12) }},
		{"torn payload bytes", 3, func(path string, t *testing.T) { flipLastByte(t, path) }},
		{"garbage appended", 4, func(path string, t *testing.T) {
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.Write([]byte{0xff, 0x13, 0x37}); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
			appendFrames(t, l, 4)
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.tear(filepath.Join(dir, logName), t)

			l2, rec := mustOpen(t, dir, Options{})
			if rec.TruncatedBytes == 0 {
				t.Fatal("tear not detected")
			}
			if len(rec.Frames) != tc.wantFrames || rec.LastSeq != uint64(tc.wantFrames) {
				t.Fatalf("recovered %d frames lastSeq %d, want the %d-frame prefix",
					len(rec.Frames), rec.LastSeq, tc.wantFrames)
			}
			// The torn tail is gone from disk: appends continue the intact
			// sequence and a further reopen is clean.
			next := uint64(tc.wantFrames + 1)
			if seq, err := l2.Append(FrameConstraints, "s", "x1 <= x3"); err != nil || seq != next {
				t.Fatalf("append after truncation = seq %d, %v; want %d", seq, err, next)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
			_, rec3 := mustOpen(t, dir, Options{})
			if len(rec3.Frames) != tc.wantFrames+1 || rec3.TruncatedBytes != 0 {
				t.Fatalf("reopen after truncation: %d frames, truncated %d; want %d/0",
					len(rec3.Frames), rec3.TruncatedBytes, tc.wantFrames+1)
			}
		})
	}
}

// chop removes the last n bytes of the file.
func chop(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-n); err != nil {
		t.Fatal(err)
	}
}

// flipLastByte corrupts the final payload byte so the CRC fails.
func flipLastByte(t *testing.T, path string) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-1] ^= 0xff
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReadDirIsReadOnly: a standalone scan reports the torn tail without
// removing it.
func TestReadDirIsReadOnly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendFrames(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	chop(t, path, 2)

	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frames) != 2 || rec.TruncatedBytes == 0 {
		t.Fatalf("ReadDir recovered %d frames, truncated %d", len(rec.Frames), rec.TruncatedBytes)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-2 {
		t.Fatalf("ReadDir modified the log: %d -> %d bytes", before.Size()-2, after.Size())
	}
}

// TestMetaPinning: the first open records the options; a matching reopen
// succeeds, a mismatched one fails with ErrMetaMismatch, and ReadMeta
// returns the recorded map.
func TestMetaPinning(t *testing.T) {
	dir := t.TempDir()
	meta := map[string]string{"form": "IF", "cycles": "Online", "seed": "1"}
	l, _ := mustOpen(t, dir, Options{Meta: meta})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got["form"] != "IF" || got["cycles"] != "Online" || got["seed"] != "1" {
		t.Fatalf("ReadMeta = %v", got)
	}

	if l2, _, err := Open(dir, Options{Meta: meta}); err != nil {
		t.Fatalf("matching reopen: %v", err)
	} else {
		l2.Close()
	}
	bad := map[string]string{"form": "SF", "cycles": "Online", "seed": "1"}
	if _, _, err := Open(dir, Options{Meta: bad}); !errors.Is(err, ErrMetaMismatch) {
		t.Fatalf("mismatched reopen = %v, want ErrMetaMismatch", err)
	}
	// A nil meta skips the check (read-only tooling).
	if l3, _, err := Open(dir, Options{}); err != nil {
		t.Fatalf("meta-less reopen: %v", err)
	} else {
		l3.Close()
	}
}

// TestSyncPolicies pins the fsync accounting: always-mode callers sync per
// append, batch-mode shares syncs, off never syncs (but a clean Close
// still lands everything).
func TestSyncPolicies(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendFrames(t, l, 2)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil { // idempotent: nothing dirty
		t.Fatal(err)
	}
	if got := l.Syncs(); got != 1 {
		t.Fatalf("syncs = %d, want 1 (second Sync saw a clean log)", got)
	}

	off, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncOff})
	if _, err := off.Append(FrameConstraints, "s", "cons a"); err != nil {
		t.Fatal(err)
	}
	if err := off.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := off.Syncs(); got != 0 {
		t.Fatalf("SyncOff synced %d times, want 0", got)
	}
}

// TestSequenceDiscontinuityIsATear: a frame whose sequence number does not
// continue the chain marks the tear even if its CRC is intact.
func TestSequenceDiscontinuityIsATear(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	a, _ := mustOpen(t, dirA, Options{Sync: SyncAlways})
	appendFrames(t, a, 2)
	a.Close()
	b, _ := mustOpen(t, dirB, Options{Sync: SyncAlways})
	appendFrames(t, b, 4)
	b.Close()

	// Graft the 4th frame of log B (seq 4) onto log A (last seq 2).
	bBytes, err := os.ReadFile(filepath.Join(dirB, logName))
	if err != nil {
		t.Fatal(err)
	}
	aBytes, err := os.ReadFile(filepath.Join(dirA, logName))
	if err != nil {
		t.Fatal(err)
	}
	recB, err := ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	// Locate frame 4's start: the intact prefix of B minus its last frame.
	last := recB.Frames[3]
	lastSize := int64(frameHeaderSize + payloadMinSize + len(last.Session) + len(last.Text))
	graft := bBytes[recB.Bytes-lastSize:]
	if err := os.WriteFile(filepath.Join(dirA, logName), append(aBytes, graft...), 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frames) != 2 || rec.TruncatedBytes != lastSize {
		t.Fatalf("recovered %d frames, truncated %d; want 2 frames and %d bytes dropped",
			len(rec.Frames), rec.TruncatedBytes, lastSize)
	}
}

// TestNotALog: a file that is not a constraint log fails loudly rather
// than being silently truncated to nothing.
func TestNotALog(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("definitely not a wal"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a non-log file")
	}
}

// TestRetractFrameRoundTrip: retraction frames carry their kind, session
// and target list through a close/reopen cycle, interleaved with
// constraint frames in stream order.
func TestRetractFrameRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendFrames(t, l, 2)
	seq, err := l.Append(FrameRetract, "s", "1")
	if err != nil || seq != 3 {
		t.Fatalf("retract append = seq %d, %v; want 3", seq, err)
	}
	if _, err := l.Append(FrameConstraints, "other", "cons d; d <= y"); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(FrameRetract, "other", "2,4"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec := mustOpen(t, dir, Options{})
	if len(rec.Frames) != 5 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovered %d frames, truncated %d; want 5/0", len(rec.Frames), rec.TruncatedBytes)
	}
	want := []struct {
		kind    FrameKind
		session string
		text    string
	}{
		{FrameConstraints, "s", "cons c1; c1 <= x1"},
		{FrameConstraints, "s", "cons c2; c2 <= x2"},
		{FrameRetract, "s", "1"},
		{FrameConstraints, "other", "cons d; d <= y"},
		{FrameRetract, "other", "2,4"},
	}
	for i, w := range want {
		f := rec.Frames[i]
		if f.Kind != w.kind || f.Session != w.session || f.Text != w.text {
			t.Fatalf("frame %d = %+v, want %+v", i, f, w)
		}
	}
}

// TestTornTailMidRetract: a crash that tears the final retraction frame
// recovers the constraint prefix and drops the retraction — the batch it
// targeted stays live, exactly as if the DELETE had never been acked.
func TestTornTailMidRetract(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendFrames(t, l, 3)
	if _, err := l.Append(FrameRetract, "s", "2"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	chop(t, path, 2) // tear inside the retract frame's payload

	l2, rec := mustOpen(t, dir, Options{})
	if len(rec.Frames) != 3 || rec.LastSeq != 3 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovered %d frames lastSeq %d truncated %d; want the 3-frame constraint prefix",
			len(rec.Frames), rec.LastSeq, rec.TruncatedBytes)
	}
	for _, f := range rec.Frames {
		if f.Kind != FrameConstraints {
			t.Fatalf("recovered a non-constraint frame: %+v", f)
		}
	}
	// The log is writable again and a re-issued retraction lands as seq 4.
	if seq, err := l2.Append(FrameRetract, "s", "2"); err != nil || seq != 4 {
		t.Fatalf("re-issued retraction = seq %d, %v; want 4", seq, err)
	}
}

// TestUnknownFrameKindIsATear: a payload claiming a kind this build does
// not know marks the tear point even with an intact CRC, so logs from a
// future format revision degrade to their understood prefix.
func TestUnknownFrameKindIsATear(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{Sync: SyncAlways})
	appendFrames(t, l, 2)
	if _, err := l.Append(FrameRetract, "s", "1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The final frame's kind byte sits at payload offset 8; its payload is
	// 11 bytes of fixed header + 1 session byte + 1 text byte.
	kindOff := len(b) - 2 - payloadMinSize + 8
	b[kindOff] = byte(maxFrameKind) + 1
	// Rewrite the CRC over the edited payload, so the tear is detected by
	// the kind check specifically rather than a checksum mismatch.
	payload := b[len(b)-payloadMinSize-2:]
	binary.LittleEndian.PutUint32(b[len(b)-payloadMinSize-2-4:], crc32.ChecksumIEEE(payload))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	rec, err := ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Frames) != 2 || rec.TruncatedBytes == 0 {
		t.Fatalf("recovered %d frames, truncated %d; want the 2-frame prefix dropped tail", len(rec.Frames), rec.TruncatedBytes)
	}
}

// TestV1LogRejected: a log written by the previous format revision fails
// the open with a descriptive error instead of being truncated to nothing.
func TestV1LogRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte(oldMagic), 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(dir, Options{})
	if err == nil {
		t.Fatal("Open accepted a v1 log")
	}
	if !strings.Contains(err.Error(), "v1 constraint log") {
		t.Fatalf("v1 rejection error %q does not mention the format", err)
	}
}
