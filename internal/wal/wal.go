// Package wal is the durable constraint log: an append-only file of
// length-prefixed, CRC-checked frames, each carrying one accepted batch of
// SCL wire text together with its session name and a monotone sequence
// number.
//
// The online solver computes a deterministic least solution from the
// constraint stream — replaying the exact accepted stream through the
// normal ingestion path reconstructs a bit-identical graph — so the log of
// accepted batches is a complete durability primitive: no graph state is
// ever persisted, only the stream that produced it.
//
// On Open the tail of the log is validated frame by frame. A partial frame
// or a CRC mismatch — the signature of a torn write from a crash — drops
// the bad suffix by truncating the file back to the last intact frame;
// opening never fails on a torn tail. Everything before the tear replays.
//
// File layout (all integers little-endian):
//
//	header   8 bytes   magic "PLCEWAL2"
//	frame    4 bytes   payload length
//	         4 bytes   CRC32 (IEEE) of the payload
//	         payload:  8 bytes sequence number
//	                   1 byte  frame kind (0 constraints, 1 retract)
//	                   2 bytes session-name length, session name
//	                   frame text (the rest): SCL wire text for a
//	                   constraints frame, the decimal sequence numbers of
//	                   the retracted frames (comma-separated) for a
//	                   retract frame
//
// A wal directory also carries meta.json, pinning the solver options the
// log was written under (graph form, cycle policy, variable-order seed).
// Replay is only deterministic under the same options, so Open refuses a
// directory whose recorded options differ from the caller's — a
// configuration error reported at startup rather than a silently divergent
// graph.
package wal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

const (
	magic    = "PLCEWAL2"
	oldMagic = "PLCEWAL1"
	logName  = "wal.log"
	metaName = "meta.json"

	frameHeaderSize = 8  // payload length + CRC32
	payloadMinSize  = 11 // sequence number + frame kind + session-name length

	// maxFrameSize bounds a single frame. A length prefix beyond it is
	// treated as corruption (a torn length field reads as garbage), not as
	// an instruction to allocate gigabytes.
	maxFrameSize = 64 << 20
)

// SyncPolicy selects when appended frames are fsynced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs before an append is acknowledged: a batch the
	// client saw accepted survives power loss. The slowest mode — one
	// fsync per accepted request (concurrent accepts may share one).
	SyncAlways SyncPolicy = iota
	// SyncBatch fsyncs at batch boundaries — when the server's ingestion
	// queue drains and at shutdown — so a crash loses at most the batches
	// accepted since the queue last went idle.
	SyncBatch
	// SyncOff never fsyncs; the OS flushes on its own schedule and a clean
	// Close still lands everything. A power loss can lose the unflushed
	// suffix, which the torn-tail scan then drops on the next open.
	SyncOff
)

// ParseSyncPolicy parses the -wal-sync flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(s) {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	case "off":
		return SyncOff, nil
	}
	return 0, fmt.Errorf("wal: unknown sync policy %q (always, batch, off)", s)
}

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	case SyncOff:
		return "off"
	}
	return "?"
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// Meta, when non-nil, pins the options the log is valid under. On the
	// first open it is written to meta.json; on later opens it must equal
	// the recorded map exactly, or Open fails with ErrMetaMismatch.
	Meta map[string]string
}

// ErrMetaMismatch reports an Open against a log written under different
// solver options — replaying it would not reconstruct the same graph.
var ErrMetaMismatch = errors.New("wal: meta mismatch")

// FrameKind tags what a frame carries: a batch of constraints or a
// retraction of earlier frames.
type FrameKind uint8

const (
	// FrameConstraints carries one accepted batch of SCL wire text.
	FrameConstraints FrameKind = 0
	// FrameRetract carries a retraction: its text is the comma-separated
	// decimal sequence numbers of the constraint frames being retracted.
	// Replay must honour retract frames in stream order — a retraction
	// rolls back exactly the state its position in the stream implies.
	FrameRetract FrameKind = 1

	maxFrameKind = FrameRetract
)

// String names the kind.
func (k FrameKind) String() string {
	switch k {
	case FrameConstraints:
		return "constraints"
	case FrameRetract:
		return "retract"
	}
	return "?"
}

// Frame is one logged record: an accepted batch's SCL wire text, or a
// retraction naming earlier frames, exactly as the server accepted it.
type Frame struct {
	Seq     uint64
	Kind    FrameKind
	Session string
	Text    string
}

// Recovered reports what a scan of an existing log found.
type Recovered struct {
	// Frames are the intact frames, in sequence order.
	Frames []Frame
	// LastSeq is the sequence number of the last intact frame (0 when the
	// log is empty).
	LastSeq uint64
	// TruncatedBytes is the size of the torn tail that was (or, for a
	// read-only scan, would be) dropped.
	TruncatedBytes int64
	// Bytes is the size of the intact prefix, header included.
	Bytes int64
}

// Log is an open, appendable constraint log. Append and Sync are safe for
// concurrent use; Close must not race either.
type Log struct {
	mu      sync.Mutex
	f       *os.File
	dirty   bool // bytes written since the last fsync
	nextSeq uint64
	policy  SyncPolicy

	frames    atomic.Int64
	bytes     atomic.Int64
	syncs     atomic.Int64
	lastSeq   atomic.Uint64
	truncated atomic.Int64 // torn-tail bytes dropped at Open
}

// Open opens (creating if needed) the log in dir, validates any existing
// frames, truncates a torn tail, and positions the writer after the last
// intact frame. The returned Recovered holds every intact frame, ready for
// replay.
func Open(dir string, opt Options) (*Log, *Recovered, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	if err := checkMeta(dir, opt.Meta); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening log: %w", err)
	}
	rec, err := scanFile(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if rec.Bytes == 0 {
		// Fresh log: write the header.
		if _, err := f.Write([]byte(magic)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: writing header: %w", err)
		}
		rec.Bytes = int64(len(magic))
	}
	if rec.TruncatedBytes > 0 {
		if err := f.Truncate(rec.Bytes); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
	}
	if _, err := f.Seek(rec.Bytes, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking to tail: %w", err)
	}
	l := &Log{f: f, nextSeq: rec.LastSeq + 1, policy: opt.Sync}
	l.lastSeq.Store(rec.LastSeq)
	l.truncated.Store(rec.TruncatedBytes)
	l.frames.Store(int64(len(rec.Frames)))
	l.bytes.Store(rec.Bytes)
	return l, rec, nil
}

// ReadDir scans the log in dir read-only: the intact frames are returned
// and a torn tail is reported (TruncatedBytes) but not removed. Use it for
// standalone replay and verification of a log another process owns.
func ReadDir(dir string) (*Recovered, error) {
	f, err := os.Open(filepath.Join(dir, logName))
	if err != nil {
		return nil, fmt.Errorf("wal: opening log: %w", err)
	}
	defer f.Close()
	return scanFile(f)
}

// ReadMeta returns the options map recorded in dir's meta.json.
func ReadMeta(dir string) (map[string]string, error) {
	b, err := os.ReadFile(filepath.Join(dir, metaName))
	if err != nil {
		return nil, fmt.Errorf("wal: reading meta: %w", err)
	}
	var m map[string]string
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("wal: decoding meta: %w", err)
	}
	return m, nil
}

// checkMeta records want into dir on first open and compares strictly on
// later ones. A nil want skips the check entirely.
func checkMeta(dir string, want map[string]string) error {
	if want == nil {
		return nil
	}
	path := filepath.Join(dir, metaName)
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		out, err := json.MarshalIndent(want, "", "  ")
		if err != nil {
			return fmt.Errorf("wal: encoding meta: %w", err)
		}
		return os.WriteFile(path, append(out, '\n'), 0o644)
	}
	if err != nil {
		return fmt.Errorf("wal: reading meta: %w", err)
	}
	var got map[string]string
	if err := json.Unmarshal(b, &got); err != nil {
		return fmt.Errorf("wal: decoding meta: %w", err)
	}
	if len(got) != len(want) {
		return metaMismatch(got, want)
	}
	for k, v := range want {
		if got[k] != v {
			return metaMismatch(got, want)
		}
	}
	return nil
}

func metaMismatch(got, want map[string]string) error {
	return fmt.Errorf("%w: log was written under %s, solver configured as %s — "+
		"restart with the recorded options or point -wal at a fresh directory",
		ErrMetaMismatch, renderMeta(got), renderMeta(want))
}

func renderMeta(m map[string]string) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = k + "=" + m[k]
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// scanFile validates f from the start and reports the intact prefix. Any
// defect — short header, partial frame, CRC mismatch, impossible length,
// non-monotone sequence — marks the tear; everything from the first defect
// on is the torn tail. An entirely empty file is a valid empty log.
func scanFile(f *os.File) (*Recovered, error) {
	size, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		return nil, fmt.Errorf("wal: sizing log: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("wal: rewinding log: %w", err)
	}
	rec := &Recovered{}
	if size == 0 {
		return rec, nil
	}
	hdr := make([]byte, len(magic))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != magic {
		if err == nil && string(hdr) == oldMagic {
			return nil, fmt.Errorf("wal: %s is a v1 constraint log; this build writes v2 (retraction frames) — replay it with a v1 build or point at a fresh directory", f.Name())
		}
		return nil, fmt.Errorf("wal: %s is not a constraint log (bad header)", f.Name())
	}
	good := int64(len(magic))
	buf := make([]byte, frameHeaderSize)
	for {
		if _, err := io.ReadFull(f, buf); err != nil {
			if err == io.EOF {
				break // clean end on a frame boundary
			}
			rec.TruncatedBytes = size - good // partial frame header
			break
		}
		n := binary.LittleEndian.Uint32(buf[0:4])
		sum := binary.LittleEndian.Uint32(buf[4:8])
		if n < payloadMinSize || n > maxFrameSize || good+frameHeaderSize+int64(n) > size {
			rec.TruncatedBytes = size - good
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			rec.TruncatedBytes = size - good
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			rec.TruncatedBytes = size - good
			break
		}
		seq := binary.LittleEndian.Uint64(payload[0:8])
		kind := FrameKind(payload[8])
		sessLen := int(binary.LittleEndian.Uint16(payload[9:11]))
		if kind > maxFrameKind || payloadMinSize+sessLen > len(payload) || seq != rec.LastSeq+1 {
			rec.TruncatedBytes = size - good
			break
		}
		rec.Frames = append(rec.Frames, Frame{
			Seq:     seq,
			Kind:    kind,
			Session: string(payload[payloadMinSize : payloadMinSize+sessLen]),
			Text:    string(payload[payloadMinSize+sessLen:]),
		})
		rec.LastSeq = seq
		good += frameHeaderSize + int64(n)
	}
	rec.Bytes = good
	return rec, nil
}

// Append writes one frame of the given kind carrying text for session and
// returns its sequence number. The frame is written in a single write;
// durability follows the sync policy — SyncAlways callers must call Sync
// before acknowledging (Append itself never fsyncs, so concurrent accepts
// can share one fsync).
func (l *Log) Append(kind FrameKind, session, text string) (uint64, error) {
	if kind > maxFrameKind {
		return 0, fmt.Errorf("wal: unknown frame kind %d", kind)
	}
	if len(session) > 1<<16-1 {
		return 0, fmt.Errorf("wal: session name of %d bytes exceeds the 2-byte length field", len(session))
	}
	if payloadMinSize+len(session)+len(text) > maxFrameSize {
		return 0, fmt.Errorf("wal: frame of %d bytes exceeds the %d-byte frame bound", len(session)+len(text), maxFrameSize)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq := l.nextSeq
	payload := make([]byte, payloadMinSize+len(session)+len(text))
	binary.LittleEndian.PutUint64(payload[0:8], seq)
	payload[8] = byte(kind)
	binary.LittleEndian.PutUint16(payload[9:11], uint16(len(session)))
	copy(payload[payloadMinSize:], session)
	copy(payload[payloadMinSize+len(session):], text)
	frame := make([]byte, frameHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderSize:], payload)
	if _, err := l.f.Write(frame); err != nil {
		// The file may now hold a partial frame; the next open's torn-tail
		// scan drops it. The in-memory sequence is not advanced.
		return 0, fmt.Errorf("wal: appending frame %d: %w", seq, err)
	}
	l.nextSeq++
	l.dirty = true
	l.frames.Add(1)
	l.bytes.Add(int64(len(frame)))
	l.lastSeq.Store(seq)
	return seq, nil
}

// Sync fsyncs appended frames to stable storage. It is a no-op when
// nothing was appended since the last sync, or under SyncOff.
func (l *Log) Sync() error {
	if l.policy == SyncOff {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.syncs.Add(1)
	return nil
}

// Close fsyncs outstanding frames (regardless of policy — a clean shutdown
// should never lose acknowledged batches) and closes the file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	syncErr := l.syncLocked()
	closeErr := l.f.Close()
	l.f = nil
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Policy returns the sync policy the log was opened with.
func (l *Log) Policy() SyncPolicy { return l.policy }

// Frames returns how many frames this process appended.
func (l *Log) Frames() int64 { return l.frames.Load() }

// Bytes returns how many bytes this process appended (frame headers
// included).
func (l *Log) Bytes() int64 { return l.bytes.Load() }

// Syncs returns how many fsyncs actually reached the file.
func (l *Log) Syncs() int64 { return l.syncs.Load() }

// LastSeq returns the sequence number of the last durable-or-pending
// frame, recovered frames included.
func (l *Log) LastSeq() uint64 { return l.lastSeq.Load() }

// TruncatedBytes returns the size of the torn tail dropped when the log
// was opened (0 for a clean log).
func (l *Log) TruncatedBytes() int64 { return l.truncated.Load() }
